(* Per-rank message matching.

   Matching follows MPI semantics: a receive names (context, source, tag),
   where source and tag may be wildcards; messages between a fixed
   (context, source, tag) triple are non-overtaking.  We keep an exact-key
   hash of FIFO queues for the common case and use global sequence numbers
   to arbitrate wildcard matches (oldest message wins, as a sane
   deterministic policy).

   Hot-path data structures are O(1) amortized:

   - posted receives live in a FIFO queue; retiring or cancelling marks a
     tombstone that is reclaimed lazily (popped when it reaches the front,
     compacted when tombstones outnumber live entries), so post/retire
     never walk the queue the way the previous list-append design did;
   - unexpected messages are indexed context-first: an exact-key receive
     is two hash lookups, and a wildcard scan folds only over the keys of
     its own context instead of the whole table;
   - a per-key queue that drains is removed from the index immediately, so
     long runs with many distinct (src, tag) pairs cannot grow the table
     without bound. *)

let any_source = -1

let any_tag = -1

type key = { k_src : int; k_tag : int }

type posted = {
  p_context : int;
  p_src : int;  (* may be [any_source] *)
  p_tag : int;  (* may be [any_tag] *)
  p_id : int;
  p_clock : float;  (* receiver's virtual clock when the recv was posted *)
  mutable p_msg : Message.t option;  (* set when matched *)
  mutable p_cancelled : bool;
  mutable p_dead : bool;  (* tombstone: retired or cancelled, skip on scan *)
  mutable p_deferred : bool;  (* model checker owns this match choice *)
}

type t = {
  (* context id -> (src, tag) -> FIFO of unexpected messages *)
  unexpected : (int, (key, Message.t Queue.t) Hashtbl.t) Hashtbl.t;
  posted : posted Queue.t;  (* in posting order, with tombstones *)
  mutable n_tombstones : int;
  mutable next_posted_id : int;
  (* O(1) depth counters so the runtime can histogram queue depths without
     walking the structures on every delivery. *)
  mutable n_unexpected : int;
  mutable n_posted : int;
}

let create () =
  {
    unexpected = Hashtbl.create 4;
    posted = Queue.create ();
    n_tombstones = 0;
    next_posted_id = 0;
    n_unexpected = 0;
    n_posted = 0;
  }

let posted_matches (p : posted) (m : Message.t) =
  p.p_msg = None && (not p.p_cancelled) && (not p.p_deferred)
  && p.p_context = m.Message.context
  && (p.p_src = any_source || p.p_src = m.Message.src)
  && (p.p_tag = any_tag || p.p_tag = m.Message.tag)

(* Deliver [m] to the oldest compatible posted receive, if any.  The match
   time — which is when a synchronous sender may complete — is when both
   the message has arrived AND the receiver was ready for it.  The scan
   visits entries in posting order and stops at the first live match;
   tombstones are skipped (and reclaimed when they reach the front). *)
let try_match_posted t (m : Message.t) =
  (* Reclaim any dead prefix first: cheap, and it keeps the common
     post/match/retire cycle from accumulating queue nodes. *)
  let rec drop_dead_prefix () =
    match Queue.peek_opt t.posted with
    | Some p when p.p_dead ->
        ignore (Queue.pop t.posted);
        t.n_tombstones <- t.n_tombstones - 1;
        drop_dead_prefix ()
    | _ -> ()
  in
  drop_dead_prefix ();
  let matched = ref false in
  (try
     Queue.iter
       (fun p ->
         if (not p.p_dead) && posted_matches p m then begin
           p.p_msg <- Some m;
           m.Message.matched_time <- Float.max m.Message.arrival p.p_clock;
           matched := true;
           raise Exit
         end)
       t.posted
   with Exit -> ());
  !matched

let context_table t ~context =
  match Hashtbl.find_opt t.unexpected context with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.unexpected context tbl;
      tbl

let enqueue_unexpected t (m : Message.t) =
  let tbl = context_table t ~context:m.Message.context in
  let k = { k_src = m.Message.src; k_tag = m.Message.tag } in
  let q =
    match Hashtbl.find_opt tbl k with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace tbl k q;
        q
  in
  Queue.add m q;
  t.n_unexpected <- t.n_unexpected + 1

(* Entry point for the runtime: a message has arrived at this rank.
   Returns [true] if the message matched an already-posted receive. *)
let deliver t (m : Message.t) =
  if try_match_posted t m then true
  else begin
    enqueue_unexpected t m;
    false
  end

(* Find (and optionally remove) the oldest unexpected message matching the
   (context, src, tag) pattern.  Exact patterns are two hash lookups;
   wildcards fold over the keys of their context only.  Removal that
   drains a queue reclaims its table entry immediately. *)
let find_unexpected ?(remove = true) t ~context ~src ~tag =
  match Hashtbl.find_opt t.unexpected context with
  | None -> None
  | Some tbl ->
      let best =
        if src <> any_source && tag <> any_tag then
          match Hashtbl.find_opt tbl { k_src = src; k_tag = tag } with
          | Some q when not (Queue.is_empty q) -> Some (Queue.peek q, q, { k_src = src; k_tag = tag })
          | _ -> None
        else
          Hashtbl.fold
            (fun k q acc ->
              if
                (src = any_source || k.k_src = src)
                && (tag = any_tag || k.k_tag = tag)
                && not (Queue.is_empty q)
              then begin
                let m = Queue.peek q in
                match acc with
                | Some (m', _, _) when m'.Message.seq <= m.Message.seq -> acc
                | _ -> Some (m, q, k)
              end
              else acc)
            tbl None
      in
      (match best with
      | None -> None
      | Some (m, q, k) ->
          if remove then begin
            let taken = Queue.pop q in
            assert (taken == m);
            t.n_unexpected <- t.n_unexpected - 1;
            if Queue.is_empty q then begin
              Hashtbl.remove tbl k;
              if Hashtbl.length tbl = 0 then Hashtbl.remove t.unexpected context
            end
          end;
          Some m)

(* Number of unexpected messages a (context, src, tag) pattern could match
   right now.  The sanitizer's wildcard-race check calls this (heavy level
   only) just before posting a wildcard receive: two or more eligible
   candidates mean the match is arbitrated by sequence number — i.e. by the
   schedule — and a real MPI run could return a different message. *)
let count_eligible t ~context ~src ~tag =
  match Hashtbl.find_opt t.unexpected context with
  | None -> 0
  | Some tbl ->
      Hashtbl.fold
        (fun k q acc ->
          if (src = any_source || k.k_src = src) && (tag = any_tag || k.k_tag = tag) then
            acc + Queue.length q
          else acc)
        tbl 0

(* Post a receive at receiver-clock [now].  If a compatible unexpected
   message exists it is matched immediately (match time: both sides
   ready).

   Under the model checker (Choice installed), wildcard receives are NOT
   matched eagerly: the match is the decision point being explored, so
   the post parks as deferred and the explorer's quiescence resolver
   picks among the candidates.  Exact (src, tag) receives stay eager —
   non-overtaking makes their match unique, so deferring them would only
   multiply equivalent schedules. *)
let post t ~context ~src ~tag ~now =
  let p =
    {
      p_context = context;
      p_src = src;
      p_tag = tag;
      p_id = t.next_posted_id;
      p_clock = now;
      p_msg = None;
      p_cancelled = false;
      p_dead = false;
      p_deferred = false;
    }
  in
  t.next_posted_id <- t.next_posted_id + 1;
  if Choice.deferring () && (src = any_source || tag = any_tag) then begin
    p.p_deferred <- true;
    Queue.add p t.posted;
    t.n_posted <- t.n_posted + 1
  end
  else
    (match find_unexpected t ~context ~src ~tag with
    | Some m ->
        p.p_msg <- Some m;
        m.Message.matched_time <- Float.max m.Message.arrival now
    | None ->
        Queue.add p t.posted;
        t.n_posted <- t.n_posted + 1);
  p

(* ---- Model-checker resolver API (only used while Choice is installed) ---- *)

(* Visit every live deferred receive, in posting order. *)
let iter_deferred t f =
  Queue.iter (fun p -> if (not p.p_dead) && p.p_deferred && p.p_msg = None then f p) t.posted

(* The candidate set for a deferred receive: the *heads* of each matching
   per-(src, tag) queue, sorted by global seq.  Non-head messages in those
   queues are unreachable choices — MPI non-overtaking forces the head of
   each queue to match first — so they are pruned from the branching
   factor and only counted.  This is the persistent/sleep-set-style
   reduction: schedules differing only in the order of same-link messages
   are equivalent and explored once. *)
let candidate_heads t ~context ~src ~tag =
  match Hashtbl.find_opt t.unexpected context with
  | None -> ([], 0)
  | Some tbl ->
      let heads, eligible =
        Hashtbl.fold
          (fun k q (heads, eligible) ->
            if
              (src = any_source || k.k_src = src)
              && (tag = any_tag || k.k_tag = tag)
              && not (Queue.is_empty q)
            then (Queue.peek q :: heads, eligible + Queue.length q)
            else (heads, eligible))
          tbl ([], 0)
      in
      let heads =
        List.sort (fun a b -> compare a.Message.seq b.Message.seq) heads
      in
      (heads, eligible - List.length heads)

(* Apply a resolver decision: match deferred receive [p] with candidate
   [m], which must be the head of its exact-key unexpected queue. *)
let resolve_deferred t (p : posted) (m : Message.t) =
  assert (p.p_deferred && p.p_msg = None);
  (match Hashtbl.find_opt t.unexpected m.Message.context with
  | None -> invalid_arg "Mailbox.resolve_deferred: candidate not queued"
  | Some tbl ->
      let k = { k_src = m.Message.src; k_tag = m.Message.tag } in
      (match Hashtbl.find_opt tbl k with
      | Some q when (not (Queue.is_empty q)) && Queue.peek q == m ->
          ignore (Queue.pop q);
          t.n_unexpected <- t.n_unexpected - 1;
          if Queue.is_empty q then begin
            Hashtbl.remove tbl k;
            if Hashtbl.length tbl = 0 then Hashtbl.remove t.unexpected m.Message.context
          end
      | _ -> invalid_arg "Mailbox.resolve_deferred: candidate is not a queue head"));
  p.p_deferred <- false;
  p.p_msg <- Some m;
  m.Message.matched_time <- Float.max m.Message.arrival p.p_clock

(* Rebuild the posted queue without tombstones.  Amortized O(1): it runs
   only when tombstones outnumber live entries, and each removed entry was
   added exactly once. *)
let compact_posted t =
  let live = Queue.create () in
  Queue.iter (fun p -> if not p.p_dead then Queue.add p live) t.posted;
  Queue.clear t.posted;
  Queue.transfer live t.posted;
  t.n_tombstones <- 0

let drop_posted t (p : posted) =
  if not p.p_dead then begin
    p.p_dead <- true;
    t.n_posted <- t.n_posted - 1;
    t.n_tombstones <- t.n_tombstones + 1;
    if t.n_tombstones > t.n_posted + 16 then compact_posted t
  end

(* Cancel a posted receive that has NOT matched.  Per MPI semantics a
   receive that has already been matched must complete — cancelling it
   here would silently drop the matched message. *)
let cancel t p =
  (match p.p_msg with
  | Some m ->
      Errdefs.usage_error
        "Mailbox.cancel: receive already matched message from rank %d (tag %d); a \
         matched receive must be completed, not cancelled"
        m.Message.src m.Message.tag
  | None -> ());
  p.p_cancelled <- true;
  drop_posted t p

(* Once a posted receive has matched, drop it from the posted list. *)
let retire t p = drop_posted t p

let unexpected_depth t = t.n_unexpected

let posted_depth t = t.n_posted

let pending_counts t = (t.n_unexpected, t.n_posted)

(* Structure-size observers for tests: live (key, queue) entries in the
   unexpected index, and physical entries (live + tombstones) in the
   posted queue. *)
let unexpected_key_count t =
  Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.unexpected 0

let posted_physical_length t = Queue.length t.posted
