(* Per-rank message matching.

   Matching follows MPI semantics: a receive names (context, source, tag),
   where source and tag may be wildcards; messages between a fixed
   (context, source, tag) triple are non-overtaking.  We keep an exact-key
   hash of FIFO queues for the common case and use global sequence numbers
   to arbitrate wildcard matches (oldest message wins, as a sane
   deterministic policy).

   Posted receives live in a FIFO list; an arriving message matches the
   oldest compatible posted receive, otherwise joins the unexpected store. *)

let any_source = -1

let any_tag = -1

type key = { k_context : int; k_src : int; k_tag : int }

type posted = {
  p_context : int;
  p_src : int;  (* may be [any_source] *)
  p_tag : int;  (* may be [any_tag] *)
  p_id : int;
  p_clock : float;  (* receiver's virtual clock when the recv was posted *)
  mutable p_msg : Message.t option;  (* set when matched *)
  mutable p_cancelled : bool;
}

type t = {
  unexpected : (key, Message.t Queue.t) Hashtbl.t;
  mutable posted : posted list;  (* in posting order *)
  mutable next_posted_id : int;
  (* O(1) depth counters so the runtime can histogram queue depths without
     walking the structures on every delivery. *)
  mutable n_unexpected : int;
  mutable n_posted : int;
}

let create () =
  {
    unexpected = Hashtbl.create 16;
    posted = [];
    next_posted_id = 0;
    n_unexpected = 0;
    n_posted = 0;
  }

let key_of_msg (m : Message.t) =
  { k_context = m.Message.context; k_src = m.Message.src; k_tag = m.Message.tag }

let posted_matches (p : posted) (m : Message.t) =
  p.p_msg = None && (not p.p_cancelled)
  && p.p_context = m.Message.context
  && (p.p_src = any_source || p.p_src = m.Message.src)
  && (p.p_tag = any_tag || p.p_tag = m.Message.tag)

(* Deliver [m] to the oldest compatible posted receive, if any.  The match
   time — which is when a synchronous sender may complete — is when both
   the message has arrived AND the receiver was ready for it. *)
let try_match_posted t (m : Message.t) =
  let rec go = function
    | [] -> false
    | p :: rest ->
        if posted_matches p m then begin
          p.p_msg <- Some m;
          m.Message.matched_time <- Float.max m.Message.arrival p.p_clock;
          true
        end
        else go rest
  in
  go t.posted

let enqueue_unexpected t (m : Message.t) =
  let k = key_of_msg m in
  let q =
    match Hashtbl.find_opt t.unexpected k with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.unexpected k q;
        q
  in
  Queue.add m q;
  t.n_unexpected <- t.n_unexpected + 1

(* Entry point for the runtime: a message has arrived at this rank.
   Returns [true] if the message matched an already-posted receive. *)
let deliver t (m : Message.t) =
  if try_match_posted t m then true
  else begin
    enqueue_unexpected t m;
    false
  end

(* Find (and optionally remove) the oldest unexpected message matching the
   (context, src, tag) pattern. *)
let find_unexpected ?(remove = true) t ~context ~src ~tag =
  let candidate_queues =
    if src <> any_source && tag <> any_tag then
      match Hashtbl.find_opt t.unexpected { k_context = context; k_src = src; k_tag = tag } with
      | Some q when not (Queue.is_empty q) -> [ q ]
      | _ -> []
    else
      Hashtbl.fold
        (fun k q acc ->
          if
            k.k_context = context
            && (src = any_source || k.k_src = src)
            && (tag = any_tag || k.k_tag = tag)
            && not (Queue.is_empty q)
          then q :: acc
          else acc)
        t.unexpected []
  in
  let best =
    List.fold_left
      (fun acc q ->
        let m = Queue.peek q in
        match acc with
        | None -> Some (m, q)
        | Some (m', _) -> if m.Message.seq < m'.Message.seq then Some (m, q) else acc)
      None candidate_queues
  in
  match best with
  | None -> None
  | Some (m, q) ->
      if remove then begin
        let taken = Queue.pop q in
        assert (taken == m);
        t.n_unexpected <- t.n_unexpected - 1
      end;
      Some m

(* Number of unexpected messages a (context, src, tag) pattern could match
   right now.  The sanitizer's wildcard-race check calls this (heavy level
   only) just before posting a wildcard receive: two or more eligible
   candidates mean the match is arbitrated by sequence number — i.e. by the
   schedule — and a real MPI run could return a different message. *)
let count_eligible t ~context ~src ~tag =
  Hashtbl.fold
    (fun k q acc ->
      if
        k.k_context = context
        && (src = any_source || k.k_src = src)
        && (tag = any_tag || k.k_tag = tag)
      then acc + Queue.length q
      else acc)
    t.unexpected 0

(* Post a receive at receiver-clock [now].  If a compatible unexpected
   message exists it is matched immediately (match time: both sides
   ready). *)
let post t ~context ~src ~tag ~now =
  let p =
    {
      p_context = context;
      p_src = src;
      p_tag = tag;
      p_id = t.next_posted_id;
      p_clock = now;
      p_msg = None;
      p_cancelled = false;
    }
  in
  t.next_posted_id <- t.next_posted_id + 1;
  (match find_unexpected t ~context ~src ~tag with
  | Some m ->
      p.p_msg <- Some m;
      m.Message.matched_time <- Float.max m.Message.arrival now
  | None ->
      t.posted <- t.posted @ [ p ];
      t.n_posted <- t.n_posted + 1);
  p

let drop_posted t p =
  let before = List.length t.posted in
  t.posted <- List.filter (fun q -> q.p_id <> p.p_id) t.posted;
  t.n_posted <- t.n_posted - (before - List.length t.posted)

let cancel t p =
  p.p_cancelled <- true;
  drop_posted t p

(* Once a posted receive has matched, drop it from the posted list. *)
let retire t p = drop_posted t p

let unexpected_depth t = t.n_unexpected

let posted_depth t = t.n_posted

let pending_counts t = (t.n_unexpected, t.n_posted)
