(** Top-level entry point: run an N-rank message-passing program.

    Every rank is a cooperative fiber with deterministic round-robin
    scheduling.  Virtual time combines the network model's communication
    costs with either measured per-segment CPU time ([Measured], the
    default) or explicitly charged compute ([Virtual_only], bit-exactly
    deterministic across runs).

    A fiber that raises aborts the whole run ({!Scheduler.Aborted} is
    re-raised with the rank); injected process failures
    ([Runtime.Process_killed]) only mark the rank as killed. *)

type report = {
  ranks : int;
  times : float array;  (** per-rank virtual completion time (seconds) *)
  max_time : float;  (** makespan: the run's simulated duration *)
  killed : int list;  (** ranks that died via failure injection *)
  profile : Profiling.summary;  (** per-operation call/byte counters *)
  model : Net_model.t;
  busy : float array;
      (** per-rank virtual time spent working;
          [busy.(r) +. blocked.(r) = times.(r)] *)
  blocked : float array;  (** per-rank virtual time spent waiting *)
  stats : Stats.t;  (** the runtime's metrics registry *)
  trace : Trace.t;
      (** event recorder; empty unless [trace_capacity] was passed
          (streamed events live in the [trace_stream] file, not here) *)
  comm_matrix : Comm_matrix.t;
      (** per-(src,dst) traffic matrix; empty unless [comm_matrix] *)
  chaos_log : string option;
      (** the chaos plane's event log ([None] when chaos was off): one
          line per fault decision, byte-identical across runs with the
          same seed, plan and [Virtual_only] clock — diff two to verify
          replay *)
}

val pp_report : Format.formatter -> report -> unit

(** [resolve_domains d] is the scheduler width that [run ?domains:d] would
    use: [Some 1]/[None]-without-env is the sequential scheduler, [Some 0]
    (or [MPISIM_DOMAINS=auto]) auto-sizes to the machine (cores minus one,
    capped), and when [d] is [None] the [MPISIM_DOMAINS] environment
    variable is consulted.  Raises [Errdefs.Usage_error] on a negative or
    malformed request.  Exposed so front ends can pre-validate flag
    combinations (e.g. reject a sequential-only subcommand under
    [MPISIM_DOMAINS=4]) with the engine's exact resolution rules. *)
val resolve_domains : int option -> int

(** [run_collect ~ranks body] executes [body world_comm] on every rank and
    collects each rank's result ([None] for killed ranks).

    @param model network cost model (default {!Net_model.omnipath})
    @param clock_mode measured CPU (default) or fully virtual time
    @param assertion_level 0 = none, 1 = cheap checks (default),
           2 = heavy checks incl. the collective-order trace (§III-G)
    @param check_level {!Check} sanitizer level (defaults to the
           [MPISIM_CHECK] environment variable, else off).  With the
           sanitizer on, deadlocks are reported as
           [Mpi_error ERR_DEADLOCK] with a named wait-for cycle, and a
           clean run ends with a leak scan over non-blocking requests.
    @param chaos activate the fault-injection plane with this config
           (drop/duplicate/corrupt draws, fault-plan triggers, reliable
           retransmission); also activated implicitly when [model]
           carries a fault profile
    @param trace_capacity enable event tracing with a per-rank ring buffer
           of this many events (disabled — and free — when absent)
    @param trace_stream stream every trace event to this binary file
           instead of buffering ({!Trace.enable_stream}): no per-rank
           rings, nothing dropped; wins over [trace_capacity]; the file
           is flushed and closed before the report is returned
    @param comm_matrix record the per-(src,dst) traffic matrix with
           collective-algorithm attribution (default off)
    @param vector_clocks stamp full vector clocks on every send and
           match ({!Runtime.enable_vector_clocks}) — the input of the
           offline happens-before analyzer; O(ranks) per event, so off
           by default
    @param on_runtime observes the runtime right after creation (the
           model checker captures it to reach mailboxes and progress)
    @param on_quiescence forwarded to {!Scheduler.run}: called when a
           scheduler pass runs nothing and progress is stuck; return
           [true] after applying a deferred match decision to continue,
           [false] to let deadlock detection fire
    @param domains scheduler backend width: [1] (the default) is the
           deterministic sequential scheduler; [n > 1] runs fibers on a
           fixed pool of [n] OCaml domains
           ({!Scheduler.run_parallel}), [0] auto-sizes to the machine
           (one domain per core minus one, capped).  When absent, the
           [MPISIM_DOMAINS] environment variable ("auto"|integer) is
           consulted.  [domains > 1] is rejected with
           [Errdefs.Usage_error] when combined with chaos injection,
           the {!Check} sanitizer or [on_quiescence] — those planes
           need the sequential schedule. *)
val run_collect :
  ?model:Net_model.t ->
  ?clock_mode:Runtime.clock_mode ->
  ?assertion_level:int ->
  ?check_level:Check.level ->
  ?chaos:Chaos.config ->
  ?trace_capacity:int ->
  ?trace_stream:string ->
  ?comm_matrix:bool ->
  ?vector_clocks:bool ->
  ?on_runtime:(Runtime.t -> unit) ->
  ?on_quiescence:(unit -> bool) ->
  ?domains:int ->
  ranks:int ->
  (Comm.t -> 'a) ->
  'a option array * report

val run :
  ?model:Net_model.t ->
  ?clock_mode:Runtime.clock_mode ->
  ?assertion_level:int ->
  ?check_level:Check.level ->
  ?chaos:Chaos.config ->
  ?trace_capacity:int ->
  ?trace_stream:string ->
  ?comm_matrix:bool ->
  ?vector_clocks:bool ->
  ?on_runtime:(Runtime.t -> unit) ->
  ?on_quiescence:(unit -> bool) ->
  ?domains:int ->
  ranks:int ->
  (Comm.t -> unit) ->
  report

(** Like {!run_collect} but requires every rank to survive; raises
    [Failure] otherwise. *)
val run_values :
  ?model:Net_model.t ->
  ?clock_mode:Runtime.clock_mode ->
  ?assertion_level:int ->
  ranks:int ->
  (Comm.t -> 'a) ->
  'a array
