(** Collective-algorithm selection engine.

    Real MPI implementations switch between several algorithms per
    collective based on message size and communicator size (MPICH's 2KB
    recursive-doubling cutoff for allreduce, ring vs Bruck allgather,
    scatter+allgather bcast for long messages).  This module centralizes
    that decision for the simulator: {!Coll} asks {!choose} which
    algorithm to run, keyed on (payload bytes, communicator size,
    operator commutativity) against the thresholds in
    {!Net_model.coll_tuning}.

    The automatic choice can be overridden per operation, either
    programmatically ({!set_overrides}) or externally via the
    [MPISIM_COLL_ALGO] environment variable / [repro_cli --coll-algo],
    using specs like ["allreduce=rabenseifner,allgather=ring"].
    Overrides never bypass correctness guards: a non-commutative operator
    always stays on the order-safe reference lowering regardless of any
    override.

    Overrides are global, deliberately: algorithm selection must agree on
    every rank of a run, so they may only change between [Engine.run]s,
    never during one. *)

(** A collective with more than one algorithm available. *)
type op = Allreduce | Allgather | Bcast | Reduce_scatter

(** The algorithm families.  Not every algorithm applies to every op; see
    {!valid_for}. *)
type algo =
  | Reduce_bcast  (** allreduce reference lowering: reduce to 0 + bcast *)
  | Recursive_doubling  (** allreduce: log p full-vector exchanges *)
  | Rabenseifner
      (** allreduce: recursive-halving reduce-scatter followed by a
          recursive-doubling allgather; bandwidth-optimal for long
          messages *)
  | Bruck  (** allgather: log p doubling rounds *)
  | Ring  (** allgather: p-1 nearest-neighbour shifts *)
  | Binomial  (** bcast: binomial tree from the root *)
  | Scatter_allgather
      (** bcast: binomial scatter of blocks + ring allgather *)
  | Reduce_scatterv
      (** reduce_scatter reference lowering: reduce to 0 + scatterv *)
  | Pairwise
      (** reduce_scatter: p-1 pairwise exchanges, O(n) peak buffer *)

val op_name : op -> string
val algo_name : algo -> string

(** [valid_for op algo] is true when [algo] implements [op]. *)
val valid_for : op -> algo -> bool

(** Stats counter name ["coll.algo.<op>.<algo>"].  Preallocated: calling
    this never allocates. *)
val counter_name : op -> algo -> string

(** Trace span name ["<op>.<algo>"].  Preallocated. *)
val span_name : op -> algo -> string

(** {1 Selection} *)

(** [choose model op ~bytes ~size ~commutative ~elems] picks the
    algorithm for one collective call: the override for [op] if set and
    safe, otherwise the automatic bytes/size-keyed choice against
    [model.tuning].  [bytes] is the total payload (per-rank contribution
    for allgather), [size] the communicator size, [elems] the element
    count of the reduced vector (allreduce only; pass 0 elsewhere), and
    [commutative] whether the operator tolerates reassociation across
    ranks (pass [true] for non-reducing collectives).  Every rank of a
    communicator must pass identical arguments — MPI already requires
    matching signatures, and {!Check} enforces it. *)
val choose :
  Net_model.t -> op -> bytes:int -> size:int -> commutative:bool -> elems:int -> algo

(** {1 Frozen selection (persistent operations)}

    A persistent [*_init] request fixes its algorithm once at init.
    Because {!choose} is a pure function of inputs that only change
    between runs (tuning, overrides), the frozen choice is identical to
    what each ad-hoc call with the same signature would pick — so
    persistent and ad-hoc runs attribute to the same
    [coll.algo.<op>.<algo>] counter. *)

type frozen = {
  frozen_op : op;
  frozen_algo : algo;
  frozen_counter : string;  (** = [counter_name frozen_op frozen_algo] *)
  frozen_span : string;  (** = [span_name frozen_op frozen_algo] *)
}

(** Same arguments and semantics as {!choose}, with the names resolved. *)
val freeze :
  Net_model.t -> op -> bytes:int -> size:int -> commutative:bool -> elems:int -> frozen

(** {1 Overrides} *)

(** Per-op pinned algorithms; [None] restores automatic selection. *)
type spec = (op * algo option) list

(** Parse an override spec of the form ["op=alg[,op=alg]"], e.g.
    ["allreduce=rabenseifner,allgather=ring"].  [alg] may be ["auto"] to
    explicitly request automatic selection.  Separators [','] and [';']
    are both accepted.  Returns [Error msg] on unknown names or an
    algorithm that does not implement the op. *)
val parse_spec : string -> (spec, string) result

(** Install overrides (replacing any previous ones for the same ops).
    Must not be called while an [Engine.run] is in flight. *)
val set_overrides : spec -> unit

(** Drop every override, including any installed from the environment. *)
val clear_overrides : unit -> unit

(** The pinned algorithm for [op], if any. *)
val override_for : op -> algo option

(** Re-read [MPISIM_COLL_ALGO] and install it on top of a clean slate
    (an unset or empty variable clears everything).  Called once at
    module initialization; tests that mutate the environment call it
    directly.  An unparseable value is ignored with a warning on stderr
    rather than aborting the host program. *)
val refresh_from_env : unit -> unit

(** {1 Integer helpers shared with the algorithm implementations} *)

(** [ceil_log2 n] for [n >= 1]: smallest [k] with [2^k >= n]. *)
val ceil_log2 : int -> int

(** [floor_pow2 n] for [n >= 1]: largest power of two [<= n]. *)
val floor_pow2 : int -> int
