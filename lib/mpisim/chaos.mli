(** The chaos plane: a seeded, fully deterministic fault-injection engine
    plus the reliable-delivery model that keeps lossy runs terminating.

    All randomness comes from one xoshiro256** stream consumed in
    simulation order; with the deterministic scheduler, identical
    (seed, fault plan, program) triples produce a byte-identical chaos
    event log ({!log_contents}).

    [Chaos] makes fault {e decisions}; {!Runtime} acts on them — kills
    ranks, shifts arrival times, charges retransmission costs and raises
    [ERR_PROC_FAILED] when a transfer escalates.  See DESIGN.md §5 for
    the escalation ladder and determinism guarantees. *)

type config = {
  seed : int;
  rates : Net_model.link_rates option;
      (** default per-link rates; [None] falls back to the model's fault
          profile (or the standard lossy rates when [lossy]) *)
  links : ((int * int) * Net_model.link_rates) list;
  lossy : bool;
  plan : Fault_plan.t;
  max_retries : int option;
      (** retransmissions before escalating; [None] defers to the model's
          {!Net_model.retry_policy} (default 8) *)
  rto : float option;
      (** base retransmit timeout; [None] defers to the policy
          (default 4 x latency) *)
  backoff : float option;
      (** per-attempt timeout multiplier; [None] defers to the policy
          (default 2.0) *)
  jitter_cap : float option;
      (** accumulated-jitter bound in seconds; [None] defers to the
          policy (default unbounded) *)
  deliver_corrupt : bool;
      (** test knob: deliver corrupted payloads so the receiver-side CRC
          backstop fires instead of modelling corruption as loss *)
}

(** Build a config; defaults: seed 1, no rates, no plan, retransmission
    knobs deferred to the model's {!Net_model.retry_policy}. *)
val config :
  ?seed:int ->
  ?rates:Net_model.link_rates ->
  ?links:((int * int) * Net_model.link_rates) list ->
  ?lossy:bool ->
  ?plan:Fault_plan.t ->
  ?max_retries:int ->
  ?rto:float ->
  ?backoff:float ->
  ?jitter_cap:float ->
  ?deliver_corrupt:bool ->
  unit ->
  config

(** Parse a [--chaos] spec: ';'-separated clauses [seed=N], [lossy],
    [drop=F], [dup=F], [reorder=F], [corrupt=F], [jitter=F],
    [retries=N], [rto=F], [backoff=F], [jitter_cap=F],
    [deliver_corrupt], [link=A>B:drop=F,...], plus the {!Fault_plan}
    clauses ([fail=R\@ops:K], [fail=R\@t:T], [fail=R\@task:K],
    [droplink=A>B\@N], [partition=R,S\@T1-T2]).  A bare integer is
    shorthand for [seed=N;lossy]. *)
val config_of_string : string -> (config, string) result

(** A spec that {!config_of_string} parses back to an equivalent config
    (the replay line printed by the CLI and CI jobs). *)
val config_to_string : config -> string

type t

val create :
  size:int -> model:Net_model.t -> stats:Stats.t -> trace:Trace.t -> config -> t

val seed : t -> int

val deliver_corrupt : t -> bool

(** Chaos events decided so far. *)
val events : t -> int

(** The deterministic replay log (one line per chaos event). *)
val log_contents : t -> string

(** Count one runtime operation of [rank] (its own clock is [now]) and
    report whether a plan trigger fells the rank here.  The caller kills
    the rank and raises. *)
val tick : t -> rank:int -> now:float -> bool

(** Count one task execution beginning on [rank] (taskqueue plugin
    workloads; fed through [Runtime.task_tick]) and report whether a
    [fail=R\@task:K] plan trigger fells the rank here.  The caller kills
    the rank and raises. *)
val task_tick : t -> rank:int -> bool

(** Time-based plan triggers due at global progress point [now]: the
    ranks that must die now even though their fibers may be parked.  Each
    trigger fires once. *)
val due_time_failures : t -> now:float -> int list

(** The decided fate of one logical message transfer. *)
type transfer = {
  tr_escalated : bool;
      (** all attempts lost: declare the peer dead (ERR_PROC_FAILED) *)
  tr_attempts : int;  (** 1 = clean first transmission *)
  tr_delay : float;  (** extra arrival delay (backoff + jitter + reorder) *)
  tr_sender_busy : float;  (** retransmission cost charged to the sender *)
  tr_corrupt : bool;  (** payload delivered corrupted ([deliver_corrupt]) *)
  tr_link_seq : int;  (** reliable-layer per-link sequence number *)
}

(** Decide the fate of the message with global sequence number [seq]
    injected on link [src -> dst] at sender time [now].  Draws from the
    chaos PRNG; deterministic given (seed, plan, call order). *)
val on_transfer : t -> src:int -> dst:int -> seq:int -> bytes:int -> now:float -> transfer

(** Flip one random bit of the payload slice (the [deliver_corrupt]
    path). *)
val corrupt_payload : t -> Bytes.t -> pos:int -> len:int -> unit
