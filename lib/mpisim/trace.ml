(* Structured event tracing for the simulator.

   Spans mark the extent of operations — scheduler CPU segments, mpisim
   collectives and point-to-point calls, kamping-layer calls, timer keys —
   and instants mark point happenings (message injection, match,
   park/resume, failure injection), all stamped on the hybrid virtual
   clock (the same clock the scaling figures report).

   Two sinks:

   - [Ring] (default): each rank owns a bounded ring buffer.  When a ring
     overflows, the oldest events are evicted and counted; exports mention
     the loss rather than silently truncating.  This is the sink post-run
     analysis ([events], Trace_report) reads from.

   - [Stream]: every event is appended incrementally to a binary file
     (Trace_stream) with a per-rank sequence number.  No per-rank buffers
     are allocated at all — idle ranks cost O(1) memory — and nothing is
     ever dropped, which is the only viable shape at 10^5+ ranks.  The
     offline converter turns the file into Chrome-trace JSON.

   The recorder is created disabled and compiles down to a no-op in that
   state: every emit function first reads a single mutable bool and
   returns, without allocating, so the zero-overhead microbenchmarks are
   unaffected by the mere presence of instrumentation.  Because the
   emitters read the timestamp themselves (the recorder holds the
   runtime's clock array), call sites never box a float argument on the
   disabled path. *)

type kind = Trace_chrome.kind = Begin | End | Instant | Complete

type event = {
  kind : kind;
  cat : string;  (* layer: "sched" | "sim" | "coll" | "p2p" | "kamping" | "timer" *)
  name : string;
  ts : float;  (* virtual time; for [Complete], the span's *end* *)
  dur : float;  (* span length, [Complete] only *)
  a : int;  (* event-specific args, -1 when unused: *)
  b : int;  (* send: a=dst b=seq c=bytes; match: a=src b=seq c=bytes *)
  c : int;
  d : int;  (* the emitting rank's Lamport clock on send/match instants *)
}

type ring = {
  mutable ev : event array;
  mutable start : int;  (* index of oldest event *)
  mutable len : int;
  mutable dropped : int;
}

type sink = Ring | Stream of Trace_stream.t

type t = {
  mutable enabled : bool;
  clocks : float array;  (* the runtime's per-rank virtual clocks *)
  rings : ring array;
  mutable sink : sink;
}

let dummy_event =
  { kind = Instant; cat = ""; name = ""; ts = 0.; dur = 0.; a = -1; b = -1; c = -1; d = -1 }

let default_capacity = 1 lsl 16

let create ~clocks =
  {
    enabled = false;
    clocks;
    rings = Array.map (fun _ -> { ev = [||]; start = 0; len = 0; dropped = 0 }) clocks;
    sink = Ring;
  }

let ranks t = Array.length t.rings

let enabled t = t.enabled

let is_streaming t = match t.sink with Stream _ -> true | Ring -> false

let close_stream t =
  match t.sink with
  | Ring -> ()
  | Stream w ->
      Trace_stream.close w;
      t.enabled <- false

let reset_rings t capacity =
  Array.iter
    (fun r ->
      if Array.length r.ev <> capacity then
        r.ev <- (if capacity = 0 then [||] else Array.make capacity dummy_event);
      r.start <- 0;
      r.len <- 0;
      r.dropped <- 0)
    t.rings

let enable ?(capacity = default_capacity) t =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  close_stream t;
  t.sink <- Ring;
  reset_rings t capacity;
  t.enabled <- true

(* Stream sink: no ring storage at all (capacity 0), every event goes to
   the file as it is emitted. *)
let enable_stream t ~path =
  close_stream t;
  reset_rings t 0;
  t.sink <- Stream (Trace_stream.create ~path ~ranks:(ranks t));
  t.enabled <- true

let disable t = t.enabled <- false

let stream_events t =
  match t.sink with Ring -> 0 | Stream w -> Trace_stream.events_written w

(* Total ring slots currently allocated — 0 under the stream sink; the
   scale tests assert this stays 0 for arbitrarily large rank counts. *)
let ring_capacity_total t =
  Array.fold_left (fun acc r -> acc + Array.length r.ev) 0 t.rings

let push r e =
  let cap = Array.length r.ev in
  if r.len < cap then begin
    r.ev.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1
  end
  else begin
    (* Full: evict the oldest event. *)
    r.ev.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    r.dropped <- r.dropped + 1
  end

let emit t rank kind cat name dur a b c d =
  match t.sink with
  | Ring -> push t.rings.(rank) { kind; cat; name; ts = t.clocks.(rank); dur; a; b; c; d }
  | Stream w ->
      Trace_stream.write_event w ~rank ~kind ~cat ~name ~ts:t.clocks.(rank) ~dur ~a ~b
        ~c ~d

let span_begin t ~rank ~cat ~name =
  if t.enabled then emit t rank Begin cat name 0. (-1) (-1) (-1) (-1)

let span_end t ~rank ~cat ~name =
  if t.enabled then emit t rank End cat name 0. (-1) (-1) (-1) (-1)

let instant t ~rank ~cat ~name ~a ~b ~c =
  if t.enabled then emit t rank Instant cat name 0. a b c (-1)

(* An instant carrying the emitting rank's Lamport clock in [d] (send and
   match events; the causal walk and flow export read it back). *)
let instant_d t ~rank ~cat ~name ~a ~b ~c ~d =
  if t.enabled then emit t rank Instant cat name 0. a b c d

(* Vector-clock annotation for the rank's most recent event.  Only the
   stream sink persists these (ring analysis has the live runtime to ask);
   with tracing disabled or a ring sink this is a branch and nothing
   more. *)
let vector_clock t ~rank ~vc =
  if t.enabled then
    match t.sink with Stream w -> Trace_stream.write_vc w ~rank ~vc | Ring -> ()

(* A complete span reported after the fact (scheduler CPU segments): the
   timestamp is the current clock, [dur] reaches back. *)
let complete t ~rank ~cat ~name ~dur =
  if t.enabled then emit t rank Complete cat name dur (-1) (-1) (-1) (-1)

(* [with_span t ~rank ~cat ~name f] wraps [f] in a span; on the disabled
   path it is just a call through. *)
let with_span t ~rank ~cat ~name f =
  if not t.enabled then f ()
  else begin
    span_begin t ~rank ~cat ~name;
    Fun.protect ~finally:(fun () -> span_end t ~rank ~cat ~name) f
  end

let dropped t rank = t.rings.(rank).dropped

let total_dropped t = Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

let length t rank = t.rings.(rank).len

(* Events of one rank in chronological (emission) order. *)
let events t rank : event list =
  let r = t.rings.(rank) in
  let cap = Array.length r.ev in
  List.init r.len (fun i -> r.ev.((r.start + i) mod cap))

let iter_events t rank f =
  let r = t.rings.(rank) in
  let cap = Array.length r.ev in
  for i = 0 to r.len - 1 do
    f r.ev.((r.start + i) mod cap)
  done

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (chrome://tracing, Perfetto).

   Rendering rules (thread-per-rank layout, CPU tracks, flow arrows,
   zero-duration clamping) live in Trace_chrome, shared with the stream
   converter. *)

let chrome_json_into buf t =
  let n = ranks t in
  let root = Json_out.start_obj buf in
  Json_out.field_str root "displayTimeUnit" "ms";
  Json_out.key root "otherData";
  let od = Json_out.start_obj buf in
  Json_out.field_int od "droppedEvents" (total_dropped t);
  Json_out.end_obj od;
  Json_out.key root "traceEvents";
  let arr = Json_out.start_arr buf in
  Trace_chrome.thread_names buf arr ~nranks:n;
  for rank = 0 to n - 1 do
    iter_events t rank (fun e ->
        Trace_chrome.event buf arr ~nranks:n ~rank ~kind:e.kind ~cat:e.cat ~name:e.name
          ~ts:e.ts ~dur:e.dur ~a:e.a ~b:e.b ~c:e.c ~d:e.d)
  done;
  Json_out.end_arr arr;
  Json_out.end_obj root

let to_chrome_json t =
  let buf = Buffer.create 65536 in
  chrome_json_into buf t;
  Buffer.contents buf

let write_chrome_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      chrome_json_into buf t;
      Buffer.output_buffer oc buf)
