(* Structured event tracing for the simulator.

   Each rank owns a bounded ring buffer of events stamped on the hybrid
   virtual clock (the same clock the scaling figures report).  Spans mark
   the extent of operations — scheduler CPU segments, mpisim collectives
   and point-to-point calls, kamping-layer calls, timer keys — and
   instants mark point happenings (message injection, match, park/resume,
   failure injection).

   The recorder is created disabled and compiles down to a no-op in that
   state: every emit function first reads a single mutable bool and
   returns, without allocating, so the zero-overhead microbenchmarks are
   unaffected by the mere presence of instrumentation.  Because the
   emitters read the timestamp themselves (the recorder holds the
   runtime's clock array), call sites never box a float argument on the
   disabled path.

   When the buffer of a rank overflows, the oldest events are evicted and
   counted; exports mention the loss rather than silently truncating. *)

type kind = Begin | End | Instant | Complete

type event = {
  kind : kind;
  cat : string;  (* layer: "sched" | "sim" | "coll" | "p2p" | "kamping" | "timer" *)
  name : string;
  ts : float;  (* virtual time; for [Complete], the span's *end* *)
  dur : float;  (* span length, [Complete] only *)
  a : int;  (* event-specific args, -1 when unused: *)
  b : int;  (* send: a=dst b=seq c=bytes; match: a=src b=seq c=bytes *)
  c : int;
}

type ring = {
  mutable ev : event array;
  mutable start : int;  (* index of oldest event *)
  mutable len : int;
  mutable dropped : int;
}

type t = {
  mutable enabled : bool;
  clocks : float array;  (* the runtime's per-rank virtual clocks *)
  rings : ring array;
}

let dummy_event =
  { kind = Instant; cat = ""; name = ""; ts = 0.; dur = 0.; a = -1; b = -1; c = -1 }

let default_capacity = 1 lsl 16

let create ~clocks =
  {
    enabled = false;
    clocks;
    rings =
      Array.map (fun _ -> { ev = [||]; start = 0; len = 0; dropped = 0 }) clocks;
  }

let ranks t = Array.length t.rings

let enabled t = t.enabled

let enable ?(capacity = default_capacity) t =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  Array.iter
    (fun r ->
      if Array.length r.ev <> capacity then r.ev <- Array.make capacity dummy_event;
      r.start <- 0;
      r.len <- 0;
      r.dropped <- 0)
    t.rings;
  t.enabled <- true

let disable t = t.enabled <- false

let push r e =
  let cap = Array.length r.ev in
  if r.len < cap then begin
    r.ev.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1
  end
  else begin
    (* Full: evict the oldest event. *)
    r.ev.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    r.dropped <- r.dropped + 1
  end

let emit t rank kind cat name a b c =
  push t.rings.(rank)
    { kind; cat; name; ts = t.clocks.(rank); dur = 0.; a; b; c }

let span_begin t ~rank ~cat ~name = if t.enabled then emit t rank Begin cat name (-1) (-1) (-1)

let span_end t ~rank ~cat ~name = if t.enabled then emit t rank End cat name (-1) (-1) (-1)

let instant t ~rank ~cat ~name ~a ~b ~c = if t.enabled then emit t rank Instant cat name a b c

(* A complete span reported after the fact (scheduler CPU segments): the
   timestamp is the current clock, [dur] reaches back. *)
let complete t ~rank ~cat ~name ~dur =
  if t.enabled then
    push t.rings.(rank)
      { kind = Complete; cat; name; ts = t.clocks.(rank); dur; a = -1; b = -1; c = -1 }

(* [with_span t ~rank ~cat ~name f] wraps [f] in a span; on the disabled
   path it is just a call through. *)
let with_span t ~rank ~cat ~name f =
  if not t.enabled then f ()
  else begin
    span_begin t ~rank ~cat ~name;
    Fun.protect ~finally:(fun () -> span_end t ~rank ~cat ~name) f
  end

let dropped t rank = t.rings.(rank).dropped

let total_dropped t = Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

let length t rank = t.rings.(rank).len

(* Events of one rank in chronological (emission) order. *)
let events t rank : event list =
  let r = t.rings.(rank) in
  let cap = Array.length r.ev in
  List.init r.len (fun i -> r.ev.((r.start + i) mod cap))

let iter_events t rank f =
  let r = t.rings.(rank) in
  let cap = Array.length r.ev in
  for i = 0 to r.len - 1 do
    f r.ev.((r.start + i) mod cap)
  done

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (chrome://tracing, Perfetto).

   One "thread" per rank on the virtual timeline; scheduler CPU segments
   ([Complete] events) go to a separate per-rank track so their overlap
   with operation spans cannot break B/E nesting.  Timestamps are
   microseconds, as the format requires. *)

let us ts = ts *. 1e6

let write_event buf ~tid (e : event) =
  let o = Json_out.start_obj buf in
  Json_out.field_str o "name" e.name;
  Json_out.field_str o "cat" e.cat;
  Json_out.field_str o "ph"
    (match e.kind with Begin -> "B" | End -> "E" | Instant -> "i" | Complete -> "X");
  Json_out.field_int o "pid" 0;
  Json_out.field_int o "tid" tid;
  (match e.kind with
  | Complete ->
      Json_out.field_float o "ts" (us (e.ts -. e.dur));
      Json_out.field_float o "dur" (us e.dur)
  | Begin | End -> Json_out.field_float o "ts" (us e.ts)
  | Instant ->
      Json_out.field_float o "ts" (us e.ts);
      Json_out.field_str o "s" "t");
  if e.a >= 0 || e.b >= 0 || e.c >= 0 then begin
    Json_out.key o "args";
    let args = Json_out.start_obj buf in
    if e.a >= 0 then Json_out.field_int args "a" e.a;
    if e.b >= 0 then Json_out.field_int args "b" e.b;
    if e.c >= 0 then Json_out.field_int args "c" e.c;
    Json_out.end_obj args
  end;
  Json_out.end_obj o

let write_thread_name buf ~tid ~name =
  let o = Json_out.start_obj buf in
  Json_out.field_str o "name" "thread_name";
  Json_out.field_str o "ph" "M";
  Json_out.field_int o "pid" 0;
  Json_out.field_int o "tid" tid;
  Json_out.key o "args";
  let args = Json_out.start_obj buf in
  Json_out.field_str args "name" name;
  Json_out.end_obj args;
  Json_out.end_obj o

let chrome_json_into buf t =
  let n = ranks t in
  let root = Json_out.start_obj buf in
  Json_out.field_str root "displayTimeUnit" "ms";
  Json_out.key root "otherData";
  let od = Json_out.start_obj buf in
  Json_out.field_int od "droppedEvents" (total_dropped t);
  Json_out.end_obj od;
  Json_out.key root "traceEvents";
  let arr = Json_out.start_arr buf in
  for rank = 0 to n - 1 do
    Json_out.sep arr;
    write_thread_name buf ~tid:rank ~name:(Printf.sprintf "rank %d" rank);
    Json_out.sep arr;
    write_thread_name buf ~tid:(n + rank) ~name:(Printf.sprintf "rank %d cpu" rank);
    iter_events t rank (fun e ->
        Json_out.sep arr;
        let tid = if e.kind = Complete then n + rank else rank in
        write_event buf ~tid e)
  done;
  Json_out.end_arr arr;
  Json_out.end_obj root

let to_chrome_json t =
  let buf = Buffer.create 65536 in
  chrome_json_into buf t;
  Buffer.contents buf

let write_chrome_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      chrome_json_into buf t;
      Buffer.output_buffer oc buf)
