(** Point-to-point communication.

    Sends are eager (buffered): the payload is packed and injected
    immediately, so a blocking {!send} never deadlocks against another
    send.  {!ssend}/{!issend} are synchronous: they complete only when the
    receiver has matched the message — the property the NBX sparse
    all-to-all (paper §V-A) builds on.

    Receives are either dynamic ({!recv} allocates an exact-size result
    from the matched message) or MPI-style ({!recv_into} with truncation
    checking).  All ranks are communicator ranks.

    Failure semantics: sending to a failed rank, or receiving from a
    failed rank that left no matching message, raises ERR_PROC_FAILED
    through the communicator's error handler. *)

(** Wildcard source ([MPI_ANY_SOURCE]). *)
val any_source : int

(** Wildcard tag ([MPI_ANY_TAG]). *)
val any_tag : int

(** Reserved tags above the user tag space, for internal protocols. *)
val internal_tag : int -> int

(** {1 Sends} *)

(** Eager send of a whole array.  [tag] defaults to 0 and must lie in the
    user tag range. *)
val send : Comm.t -> 'a Datatype.t -> dest:int -> ?tag:int -> 'a array -> unit

(** Eager send of [count] elements starting at [pos]; does not validate
    the tag (internal protocols use reserved tags). *)
val send_range :
  Comm.t -> 'a Datatype.t -> dest:int -> ?tag:int -> 'a array -> pos:int -> count:int -> unit

(** Synchronous send: returns once the receiver has matched. *)
val ssend : Comm.t -> 'a Datatype.t -> dest:int -> ?tag:int -> 'a array -> unit

(** Non-blocking eager send; the request is immediately completable. *)
val isend : Comm.t -> 'a Datatype.t -> dest:int -> ?tag:int -> 'a array -> Request.t

(** Non-blocking synchronous send; completes when matched. *)
val issend : Comm.t -> 'a Datatype.t -> dest:int -> ?tag:int -> 'a array -> Request.t

(** Raw byte payload (the serialization fast path); element count equals
    the byte length. *)
val send_bytes : Comm.t -> dest:int -> ?tag:int -> Bytes.t -> unit

(** {1 Receives} *)

(** Dynamic receive: blocks until a matching message arrives and returns
    a fresh exact-size array. *)
val recv :
  Comm.t -> 'a Datatype.t -> ?source:int -> ?tag:int -> unit -> 'a array * Status.t

(** MPI-style receive into caller storage; raises ERR_TRUNCATE if the
    message exceeds [maxcount] (default: the space after [pos]). *)
val recv_into :
  Comm.t ->
  'a Datatype.t ->
  ?source:int ->
  ?tag:int ->
  ?pos:int ->
  ?maxcount:int ->
  'a array ->
  Status.t

(** Non-blocking receive into caller storage. *)
val irecv_into :
  Comm.t ->
  'a Datatype.t ->
  ?source:int ->
  ?tag:int ->
  ?pos:int ->
  ?maxcount:int ->
  'a array ->
  Request.t

val recv_bytes : Comm.t -> ?source:int -> ?tag:int -> unit -> Bytes.t * Status.t

(** A typed non-blocking receive whose result buffer is allocated at
    completion from the matched message — the substrate of the binding
    layer's ownership-safe results (§III-E). *)
type 'a dyn_request = { base : Request.t; cell : 'a array option ref }

val irecv_dyn : Comm.t -> 'a Datatype.t -> ?source:int -> ?tag:int -> unit -> 'a dyn_request

val dyn_wait : 'a dyn_request -> 'a array * Status.t

val dyn_test : 'a dyn_request -> ('a array * Status.t) option

(** {1 Persistent operations (MPI-4)}

    [*_init] builds a {!Request.p} once — validating arguments, compiling
    the datatype plan and pre-warming a pooled writer — and every later
    {!Request.start}/{!Request.wait_p} cycle reuses the frozen state.
    Buffers are fixed at init, per MPI persistent-request semantics. *)

(** Persistent eager send of [count] elements of [data] starting at
    [pos]; each [start] injects the current buffer contents. *)
val send_init :
  Comm.t ->
  'a Datatype.t ->
  dest:int ->
  ?tag:int ->
  'a array ->
  pos:int ->
  count:int ->
  Request.p

(** Persistent receive into caller storage; each cycle posts the receive
    at [start] and unpacks into [into] at [wait_p].  Truncation raises
    ERR_TRUNCATE like {!recv_into}. *)
val recv_init :
  Comm.t ->
  'a Datatype.t ->
  ?source:int ->
  ?tag:int ->
  ?pos:int ->
  ?maxcount:int ->
  'a array ->
  Request.p

(** {1 Probing} *)

(** Block until a matching message is available (without receiving it). *)
val probe : Comm.t -> ?source:int -> ?tag:int -> unit -> Status.t

(** Non-blocking probe. *)
val iprobe : Comm.t -> ?source:int -> ?tag:int -> unit -> Status.t option

(** Combined send+receive; deadlock-free because sends are eager. *)
val sendrecv :
  Comm.t ->
  'a Datatype.t ->
  dest:int ->
  ?send_tag:int ->
  source:int ->
  ?recv_tag:int ->
  'a array ->
  'a array * Status.t
