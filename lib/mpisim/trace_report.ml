(* Post-run analysis of the virtual-time accounting and the event trace.

   Two views:

   - [pp_utilization]: per-rank busy / blocked / idle breakdown.  This
     needs no trace: the runtime splits every clock movement into busy
     (charged cost) and blocked (sync jump), and idle is the tail between
     a rank's finish time and the makespan.

   - [critical_path]: the cross-rank causal chain that bounds the
     makespan.  Starting from the rank that finished last, walk backwards
     through "match_wait" instants (a receive that actually waited) to
     the send that released it, hop to the sending rank, and repeat.
     Every edge is verified against the send table (source rank, byte
     count, timestamp order, Lamport order) before the walk crosses it,
     and annotated with its latency and the receiver's wait slack.  Each
     hop is named after the tightest enclosing traced span (collective,
     kamping call or p2p op) so the report reads as "rank 3 waited in
     allgatherv for rank 1", not as raw message sequence numbers. *)

let pct ~of_ v = if of_ <= 0. then 0. else 100. *. v /. of_

let pp_utilization ppf ~busy ~blocked ~times ~max_time =
  let n = Array.length times in
  Format.fprintf ppf "rank        busy           blocked        idle@.";
  for r = 0 to n - 1 do
    let idle = Float.max 0. (max_time -. times.(r)) in
    Format.fprintf ppf "%4d  %9s (%5.1f%%) %9s (%5.1f%%) %9s (%5.1f%%)@." r
      (Sim_time.to_string busy.(r))
      (pct ~of_:max_time busy.(r))
      (Sim_time.to_string blocked.(r))
      (pct ~of_:max_time blocked.(r))
      (Sim_time.to_string idle)
      (pct ~of_:max_time idle)
  done;
  let total f = Array.fold_left ( +. ) 0. f in
  let denom = float_of_int (max 1 n) *. max_time in
  Format.fprintf ppf "mean  busy %.1f%%  blocked %.1f%%  idle %.1f%%  (makespan %s)@."
    (pct ~of_:denom (total busy))
    (pct ~of_:denom (total blocked))
    (pct ~of_:denom (Float.max 0. (denom -. total busy -. total blocked)))
    (Sim_time.to_string max_time)

(* ------------------------------------------------------------------ *)
(* Critical path *)

type hop = {
  hop_rank : int;
  hop_from : float;  (* start of the segment on this rank *)
  hop_to : float;  (* end of the segment (= previous hop's trigger) *)
  hop_name : string;  (* "cat/name" of the tightest enclosing span *)
  via_src : int;  (* sender that released this rank; -1 for the first segment *)
  via_seq : int;
  via_bytes : int;
  via_latency : float;  (* match ts minus send ts of the releasing message *)
  via_slack : float;  (* how long the receiver had been parked before the match *)
  via_verified : bool;  (* the edge is a checked send->recv pair (see below) *)
}


(* Reconstruct span intervals of one rank from its Begin/End/Complete
   events.  Eviction can orphan an End (its Begin was dropped) — such Ends
   are skipped; Begins still open at the end of the run close at the
   rank's finish time. *)
let spans_of_rank tr ~times rank =
  let stack = ref [] in
  let acc = ref [] in
  Trace.iter_events tr rank (fun (ev : Trace.event) ->
      match ev.kind with
      | Trace.Begin -> stack := (ev.cat, ev.name, ev.ts) :: !stack
      | Trace.End -> (
          match !stack with
          | (cat, name, t0) :: rest ->
              stack := rest;
              acc := (t0, ev.ts, cat, name) :: !acc
          | [] -> ())
      | Trace.Complete -> acc := (ev.ts -. ev.dur, ev.ts, ev.cat, ev.name) :: !acc
      | Trace.Instant -> ());
  List.iter (fun (cat, name, t0) -> acc := (t0, times.(rank), cat, name) :: !acc) !stack;
  !acc

(* Name the operation active at time [at]: the tightest enclosing span,
   preferring semantic layers (coll/kamping/timer) over raw p2p ops. *)
let name_at spans ~at =
  let best = ref None in
  List.iter
    (fun (lo, hi, cat, name) ->
      let pri =
        match cat with
        | "coll" | "kamping" | "timer" -> 0
        | "p2p" -> 1
        | _ -> 2
      in
      if pri < 2 && lo <= at && at <= hi then begin
        let key = (pri, hi -. lo) in
        match !best with
        | Some (bkey, _) when bkey <= key -> ()
        | _ -> best := Some (key, cat ^ "/" ^ name)
      end)
    spans;
  match !best with Some (_, n) -> n | None -> "compute"

let max_hops = 64

(* The cross-rank causal walk.

   A rank's finish time is bounded by the chain of binding waits: walking
   back from the last-finishing rank, each "match_wait" instant (a
   receive that actually blocked) was released by exactly one send, whose
   timestamp on the sending rank the walk jumps to.  Because a
   "match_wait" is emitted only when the arrival time exceeded the
   receiver's clock, the segment between two binding waits on a rank is
   pure local progress — so the chain of latest binding waits is the
   longest (critical) path through the send->recv DAG, not merely a
   heuristic.

   Each edge is verified against the global send table before the walk
   crosses it: the send event for the message sequence number must exist,
   name the receiver's claimed source rank, carry the same byte count,
   precede the match in time, and (when both sides stamped Lamport
   clocks) have a strictly smaller Lamport value.  An edge failing any of
   these (an evicted ring entry, a corrupted trace) ends the walk rather
   than fabricating causality. *)

type send_site = { snd_rank : int; snd_ts : float; snd_bytes : int; snd_lamport : int }

let critical_path tr ~times =
  let ranks = Trace.ranks tr in
  if ranks = 0 || Array.length times = 0 then []
  else begin
    (* Global send table: message seq -> send site. *)
    let sends = Hashtbl.create 1024 in
    (* Per-rank match_wait and park instants, reverse chronological. *)
    let waits = Array.make ranks [] in
    let parks = Array.make ranks [] in
    for r = 0 to ranks - 1 do
      Trace.iter_events tr r (fun (ev : Trace.event) ->
          if ev.kind = Trace.Instant then
            if ev.cat = "sim" then begin
              if ev.name = "send" then
                Hashtbl.replace sends ev.b
                  { snd_rank = r; snd_ts = ev.ts; snd_bytes = ev.c; snd_lamport = ev.d }
              else if ev.name = "match_wait" then waits.(r) <- ev :: waits.(r)
            end
            else if ev.cat = "sched" && ev.name = "park" then
              parks.(r) <- ev.ts :: parks.(r))
    done;
    let spans = Array.init ranks (fun r -> spans_of_rank tr ~times r) in
    let finish = ref 0 in
    Array.iteri (fun i v -> if v > times.(!finish) then finish := i) times;
    let hops = ref [] in
    let rec walk rank t budget =
      match List.find_opt (fun (ev : Trace.event) -> ev.ts <= t) waits.(rank) with
      | None ->
          hops :=
            {
              hop_rank = rank;
              hop_from = 0.;
              hop_to = t;
              hop_name = name_at spans.(rank) ~at:t;
              via_src = -1;
              via_seq = -1;
              via_bytes = -1;
              via_latency = -1.;
              via_slack = -1.;
              via_verified = false;
            }
            :: !hops
      | Some m ->
          let site = Hashtbl.find_opt sends m.b in
          let verified =
            match site with
            | Some s ->
                s.snd_rank = m.a && s.snd_ts <= m.ts
                && s.snd_bytes = m.c
                && (s.snd_lamport < 0 || m.d < 0 || s.snd_lamport < m.d)
            | None -> false
          in
          (* Slack: how long the receiver had already been parked when the
             message arrived — the headroom a faster sender would buy. *)
          let slack =
            match List.find_opt (fun p -> p <= m.ts) parks.(rank) with
            | Some p -> m.ts -. p
            | None -> -1.
          in
          let latency = match site with Some s -> m.ts -. s.snd_ts | None -> -1. in
          hops :=
            {
              hop_rank = rank;
              hop_from = m.ts;
              hop_to = t;
              hop_name = name_at spans.(rank) ~at:m.ts;
              via_src = m.a;
              via_seq = m.b;
              via_bytes = m.c;
              via_latency = latency;
              via_slack = slack;
              via_verified = verified;
            }
            :: !hops;
          if budget > 0 && verified then begin
            match site with
            | Some s when s.snd_ts < m.ts ->
                (* Strictly decreasing time, so the walk terminates even
                   on malformed traces. *)
                walk s.snd_rank s.snd_ts (budget - 1)
            | _ -> () (* a zero-latency self-edge: stop rather than loop *)
          end
    in
    walk !finish times.(!finish) max_hops;
    !hops (* prepended finish-first, so this is start -> finish order *)
  end

(* How many cross-rank edges of a critical path failed verification
   against the send table.  Published as the [obs.causal.unverified_edges]
   counter: nonzero means the causal chain shown to the user contains
   hops the trace could not prove. *)
let unverified_edges hops =
  List.length (List.filter (fun h -> h.via_src >= 0 && not h.via_verified) hops)

let pp_critical_path ppf tr ~times =
  match critical_path tr ~times with
  | [] -> Format.fprintf ppf "critical path: no trace events recorded@."
  | hops ->
      let finish = List.length hops - 1 in
      let edges = List.filter (fun h -> h.via_src >= 0) hops in
      let verified = List.filter (fun h -> h.via_verified) edges in
      Format.fprintf ppf
        "critical path (%d hops, %d/%d edges verified send->recv, finish at %s):@."
        (List.length hops) (List.length verified) (List.length edges)
        (Sim_time.to_string
           (List.fold_left (fun acc h -> Float.max acc h.hop_to) 0. hops));
      List.iteri
        (fun i h ->
          Format.fprintf ppf "  %2d. rank %d  [%s .. %s]  %s" i h.hop_rank
            (Sim_time.to_string h.hop_from)
            (Sim_time.to_string h.hop_to)
            h.hop_name;
          if h.via_src >= 0 then begin
            Format.fprintf ppf "  (released by %d B msg #%d from rank %d" h.via_bytes
              h.via_seq h.via_src;
            if h.via_latency >= 0. then
              Format.fprintf ppf ", latency %s" (Sim_time.to_string h.via_latency);
            if h.via_slack >= 0. then
              Format.fprintf ppf ", waited %s" (Sim_time.to_string h.via_slack);
            Format.fprintf ppf "%s)" (if h.via_verified then "" else ", UNVERIFIED")
          end
          else if i <> finish then Format.fprintf ppf "  (start of chain)";
          Format.fprintf ppf "@.")
        hops;
      let total_slack =
        List.fold_left (fun acc h -> if h.via_slack > 0. then acc +. h.via_slack else acc)
          0. edges
      in
      if edges <> [] then
        Format.fprintf ppf "  total wait slack along the path: %s@."
          (Sim_time.to_string total_slack);
      if Trace.total_dropped tr > 0 then
        Format.fprintf ppf "  (ring buffers dropped %d events; path may be truncated)@."
          (Trace.total_dropped tr)
