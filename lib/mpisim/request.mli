(** Request objects for non-blocking operations.

    A request separates cheap completion {e detection} ([ready], safe from
    the scheduler's poll loop) from {e finalization} ([finalize], which
    runs in the owning fiber: it unpacks data, updates the owner's clock,
    and may raise failure errors).  [test]/[wait] are idempotent after
    completion, matching MPI's inactive-request semantics. *)

type t

(** Sanitizer hook: [on_rewait] is called when any completion entry point
    — {!wait}, {!test}, {!wait_any} or {!test_some} — touches a request
    that already completed (MPI's "wait on an inactive request", which
    MUST-style tools flag as use of a freed request). *)
type observer = { on_rewait : unit -> unit }

val make :
  ready:(unit -> bool) ->
  finalize:(unit -> Status.t) ->
  describe:(unit -> string) ->
  t

(** Attach an observer (used by the {!Check} sanitizer on tracked
    requests).  Requests without one pay a single pointer comparison. *)
val set_observer : t -> observer -> unit

(** Human-readable description of the pending operation. *)
val describe : t -> string

(** An already-completed request (empty transfers etc.). *)
val completed : Status.t -> t

(** Non-blocking completion check; finalizes on first success. *)
val test : t -> Status.t option

(** Block (cooperatively) until complete. *)
val wait : t -> Status.t

val is_complete : t -> bool

val wait_all : t list -> Status.t list

(** Block until at least one request completes; returns its index and
    status.  Raises [Invalid_argument] on the empty list. *)
val wait_any : t list -> int * Status.t

(** Complete every currently-ready request without blocking; returns
    (index, status) pairs. *)
val test_some : t list -> (int * Status.t) list
