(** Request objects for non-blocking operations.

    A request separates cheap completion {e detection} ([ready], safe from
    the scheduler's poll loop) from {e finalization} ([finalize], which
    runs in the owning fiber: it unpacks data, updates the owner's clock,
    and may raise failure errors).  [test]/[wait] are idempotent after
    completion, matching MPI's inactive-request semantics. *)

type t

(** Sanitizer hook: [on_rewait] is called when any completion entry point
    — {!wait}, {!test}, {!wait_any} or {!test_some} — touches a request
    that already completed (MPI's "wait on an inactive request", which
    MUST-style tools flag as use of a freed request). *)
type observer = { on_rewait : unit -> unit }

val make :
  ready:(unit -> bool) ->
  finalize:(unit -> Status.t) ->
  describe:(unit -> string) ->
  t

(** Attach an observer (used by the {!Check} sanitizer on tracked
    requests).  Requests without one pay a single pointer comparison. *)
val set_observer : t -> observer -> unit

(** Human-readable description of the pending operation. *)
val describe : t -> string

(** An already-completed request (empty transfers etc.). *)
val completed : Status.t -> t

(** Non-blocking completion check; finalizes on first success. *)
val test : t -> Status.t option

(** Block (cooperatively) until complete. *)
val wait : t -> Status.t

val is_complete : t -> bool

val wait_all : t list -> Status.t list

(** Block until at least one request completes; returns its index and
    status.  Raises [Invalid_argument] on the empty list. *)
val wait_any : t list -> int * Status.t

(** Complete every currently-ready request without blocking; returns
    (index, status) pairs. *)
val test_some : t list -> (int * Status.t) list

(** {1 Persistent requests}

    MPI-4 [*_init] operations: validation, algorithm selection, datatype
    plan compilation and buffer pre-acquisition happen once at init; the
    request is then cycled through {!start}/{!wait_p} with no per-cycle
    allocation ([start] and the fast path of [wait_p] build no closures).

    Lifecycle: init → inactive; [start] activates (usage error if already
    active); [wait_p]/[test_p] return it to inactive and are no-ops on an
    inactive request; [free_p] is a usage error while active. *)

type p

(** [make_p ~describe ~start ~ready ~run] builds a persistent request from
    preallocated cycle closures: [start] begins one cycle, [ready] is the
    cheap scheduler-safe completion poll, [run] finishes the cycle in the
    owning fiber. *)
val make_p :
  describe:string ->
  start:(unit -> unit) ->
  ready:(unit -> bool) ->
  run:(unit -> unit) ->
  p

val describe_p : p -> string

(** Begin one cycle.  Usage error if the request is active or freed. *)
val start : p -> unit

(** Complete the current cycle (cooperatively blocking); no-op when
    inactive. *)
val wait_p : p -> unit

(** Non-blocking cycle completion: [true] when the request is (now)
    inactive, [false] if the cycle is still in flight. *)
val test_p : p -> bool

(** Release the request.  Usage error while active or on double free. *)
val free_p : p -> unit

val is_active : p -> bool

(** Number of [start]s so far (diagnostics and tests). *)
val started_cycles : p -> int
