(* Communicators.

   A communicator couples a process group with a private context id, so
   that point-to-point traffic and collectives on different communicators
   never cross-match.  Each rank holds its own handle ([t]); the [shared]
   record (context, group, revocation flag, debug trace) is common to all
   member ranks — mirroring how an MPI implementation keeps communicator
   state per process but semantically shared.

   Tag space: user tags are 0..[max_user_tag]; tags above that are reserved
   for the internal messages of collective algorithms. *)

let max_user_tag = (1 lsl 20) - 1

type topology = { sources : int array; destinations : int array }
(* Neighbor lists in comm ranks, for neighborhood collectives (§V-A). *)

(* Rendezvous state for a non-blocking barrier generation. *)
type ibarrier_state = {
  ib_target : int;
  mutable ib_entered : int;
  mutable ib_max_clock : float;
  mutable ib_finalized : int;
}

(* Rendezvous state for a ULFM shrink in progress.  [sh_survivors] is the
   survivor group decided by the first rank to pass the rendezvous; later
   ranks reuse it even if more failures have happened since — a rank that
   dies during the shrink collective must not make survivors compute
   differing groups (they would trip the registry's group-equality check).
   A failed member left in the stored group is correct ULFM behavior: the
   next operation on the shrunken communicator raises and the next
   recovery round shrinks it out. *)
type shrink_state = {
  sh_context : int;
  mutable sh_arrived : int list;  (* comm ranks of arrived survivors *)
  mutable sh_max_clock : float;
  mutable sh_done : int;
  mutable sh_survivors : int list option;  (* comm ranks, decided once *)
}

type bcast_count = {
  bc_count : int;
  mutable bc_consumed : int;
}

type shared = {
  context : int;
  group : Group.t;  (* comm rank -> world rank *)
  inverse : (int, int) Hashtbl.t Lazy.t;  (* world rank -> comm rank *)
  mutable revoked : bool;
  revoke_observed : bool array;  (* comm rank -> rank has observed the revoke *)
  ibarriers : (int, ibarrier_state) Hashtbl.t;  (* generation -> state *)
  bcast_counts : (int, bcast_count) Hashtbl.t;  (* generation -> root's count *)
  mutable pending_shrink : shrink_state option;
  (* Per-rank trace of collective operations, recorded at assertion level
     >= 2 and checked for consistency by the engine (a "strong debug mode",
     paper §II). *)
  mutable op_trace : string list array option;
}

type t = {
  rt : Runtime.t;
  shared : shared;
  rank : int;  (* my rank in this communicator *)
  mutable errhandler : Errdefs.handler;
  mutable my_ibarrier_gen : int;
  mutable my_agree_gen : int;
  mutable my_bcast_gen : int;
  topology : topology option;
}

let create_shared rt group =
  let op_trace =
    if rt.Runtime.assertion_level >= 2 then Some (Array.make (Group.size group) [])
    else None
  in
  let inverse =
    lazy
      (let h = Hashtbl.create (Group.size group) in
       Array.iteri (fun r w -> Hashtbl.replace h w r) group;
       h)
  in
  {
    context = Runtime.fresh_context rt;
    group;
    inverse;
    revoked = false;
    revoke_observed = Array.make (Group.size group) false;
    ibarriers = Hashtbl.create 4;
    bcast_counts = Hashtbl.create 4;
    pending_shrink = None;
    op_trace;
  }

(* NOTE: [create_shared] is completed by [register] below; use
   [create_registered_shared] unless you are the registry itself. *)

(* Registry of shared communicator records, keyed by (runtime id, context):
   all ranks creating the "same" communicator must end up pointing at one
   shared record so that revocation and rendezvous state propagate. *)
let registry : (int * int, shared) Hashtbl.t = Hashtbl.create 64

let register rt shared = Hashtbl.replace registry (rt.Runtime.id, shared.context) shared

let find_shared rt ~context = Hashtbl.find_opt registry (rt.Runtime.id, context)

(* Atomic with respect to fiber scheduling (no park inside).  Takes the
   runtime lock in multicore mode: several ranks build the "same"
   communicator concurrently and must converge on one shared record. *)
let get_or_create_shared rt ~context ~group =
  Runtime.locked rt @@ fun () ->
  match find_shared rt ~context with
  | Some s ->
      if not (Group.equal s.group group) then
        Errdefs.usage_error "communicator context %d created with differing groups" context;
      s
  | None ->
      let inverse =
        lazy
          (let h = Hashtbl.create (Group.size group) in
           Array.iteri (fun r w -> Hashtbl.replace h w r) group;
           h)
      in
      let op_trace =
        if rt.Runtime.assertion_level >= 2 then Some (Array.make (Group.size group) [])
        else None
      in
      let s =
        {
          context;
          group;
          inverse;
          revoked = false;
          revoke_observed = Array.make (Group.size group) false;
          ibarriers = Hashtbl.create 4;
          bcast_counts = Hashtbl.create 4;
          pending_shrink = None;
          op_trace;
        }
      in
      register rt s;
      s

let all_shared rt =
  Hashtbl.fold (fun (rid, _) s acc -> if rid = rt.Runtime.id then s :: acc else acc) registry []

let clear_registry rt =
  let keys =
    Hashtbl.fold (fun (rid, c) _ acc -> if rid = rt.Runtime.id then (rid, c) :: acc else acc)
      registry []
  in
  List.iter (Hashtbl.remove registry) keys

let create_registered_shared rt group =
  let s = create_shared rt group in
  register rt s;
  s

let attach ?topology rt shared ~rank =
  if rank < 0 || rank >= Group.size shared.group then
    Errdefs.usage_error "Comm.attach: rank %d out of range" rank;
  {
    rt;
    shared;
    rank;
    errhandler = Errdefs.Errors_raise;
    my_ibarrier_gen = 0;
    my_agree_gen = 0;
    my_bcast_gen = 0;
    topology;
  }

let rank t = t.rank

let size t = Group.size t.shared.group

let context t = t.shared.context

let group t = t.shared.group

let runtime t = t.rt

let world_rank t = Group.world_rank t.shared.group t.rank

let world_of_rank t r = Group.world_rank t.shared.group r

(* Comm rank of a world rank; raises if not a member. *)
let rank_of_world t w =
  match Hashtbl.find_opt (Lazy.force t.shared.inverse) w with
  | Some r -> r
  | None -> Errdefs.usage_error "world rank %d is not a member of this communicator" w

(* Revocation propagates rank to rank rather than instantaneously: each
   rank is marked as having observed it the first time the revocation
   becomes visible to that rank's own control flow (it revokes, queries
   [is_revoked], or has [Err_revoked] raised on it).  Receives parked
   before the revocation only abort once their source has observed it (or
   died) — see [revocation_reached] — so a collective that every member
   entered before the revoke can still drain to completion, as in real
   ULFM where revocation notice reaches ranks asynchronously. *)
let note_revocation_observed t =
  if not t.shared.revoke_observed.(t.rank) then begin
    t.shared.revoke_observed.(t.rank) <- true;
    Runtime.bump_progress t.rt
  end

let revoked_flag t = t.shared.revoked

let is_revoked t =
  if t.shared.revoked then note_revocation_observed t;
  t.shared.revoked

let revoke t =
  t.shared.revoked <- true;
  note_revocation_observed t;
  Runtime.bump_progress t.rt

let revocation_reached t ~world =
  t.shared.revoked
  && (t.shared.revoke_observed.(rank_of_world t world) || Runtime.is_failed t.rt world)

let set_errhandler t h = t.errhandler <- h

let errhandler t = t.errhandler

let topology t = t.topology

(* Raise (or otherwise handle) a runtime failure according to the
   communicator's error handler. *)
let error t code fmt =
  (match code with Errdefs.Err_revoked -> note_revocation_observed t | _ -> ());
  Printf.ksprintf
    (fun msg ->
      match t.errhandler with
      | Errdefs.Errors_raise -> raise (Errdefs.Mpi_error { code; msg })
      | Errdefs.Errors_are_fatal ->
          Printf.eprintf "FATAL MPI error on rank %d: %s: %s\n%!" t.rank
            (Errdefs.code_name code) msg;
          exit 2
      | Errdefs.Errors_custom f ->
          f code msg;
          (* A handler that returns cannot resume the operation. *)
          raise (Errdefs.Mpi_error { code; msg }))
    fmt

let check_rank t r =
  if r < 0 || r >= size t then Errdefs.usage_error "invalid rank %d (size %d)" r (size t)

let check_user_tag t tag =
  ignore t;
  if tag < 0 || tag > max_user_tag then Errdefs.usage_error "invalid tag %d" tag

(* Does any member of this communicator count as failed? *)
let any_member_failed t =
  Runtime.any_failed t.rt
  && Array.exists (fun w -> Runtime.is_failed t.rt w) t.shared.group

let failed_members t =
  Array.to_list t.shared.group
  |> List.mapi (fun r w -> (r, w))
  |> List.filter (fun (_, w) -> Runtime.is_failed t.rt w)
  |> List.map fst

(* Record a collective entry for the strong debug mode. *)
let trace_collective t op =
  match t.shared.op_trace with
  | None -> ()
  | Some traces -> traces.(t.rank) <- op :: traces.(t.rank)

(* Check that all ranks performed the same sequence of collectives; used at
   engine teardown when assertion level >= 2. *)
let collective_trace_mismatch shared =
  match shared.op_trace with
  | None -> None
  | Some traces ->
      if Array.length traces <= 1 then None
      else begin
        let reference = List.rev traces.(0) in
        let rec check r =
          if r >= Array.length traces then None
          else begin
            let mine = List.rev traces.(r) in
            (* Ranks may legitimately have stopped early only if the whole
               run aborted; for completed runs the sequences must agree. *)
            if mine <> reference then
              Some
                (Printf.sprintf
                   "collective sequence mismatch: rank 0 ran [%s], rank %d ran [%s]"
                   (String.concat "; " reference)
                   r
                   (String.concat "; " mine))
            else check (r + 1)
          end
        in
        check 1
      end

(* Entry checks common to all collectives.  [root] is the comm-rank root
   (-1 for unrooted collectives) and [ty] the element-type name ("" when
   untyped); both are plain immediates so the sanitizer-off path allocates
   nothing.  When the sanitizer is on, this is also the hook that feeds the
   collective call-order consistency check. *)
let check_collective t ~op ~root ~ty =
  if is_revoked t then error t Errdefs.Err_revoked "%s: communicator revoked" op;
  if any_member_failed t then
    error t Errdefs.Err_proc_failed "%s: failed ranks %s" op
      (String.concat "," (List.map string_of_int (failed_members t)));
  trace_collective t op;
  if Check.enabled t.rt.Runtime.check then
    Check.on_collective t.rt.Runtime.check ~context:t.shared.context ~rank:t.rank
      ~world_rank:(world_rank t) ~op ~root ~ty
