(** Process-failure injection — the substrate of the ULFM plugin
    (paper §V-B).

    A failed rank's fiber terminates; other ranks observe the failure as
    ERR_PROC_FAILED when they next depend on it (receives from it,
    collectives including it). *)

(** Terminate the calling rank as a process failure.  Never returns. *)
val die : Comm.t -> 'a

(** Mark a rank failed from outside (failure-injection schedules).  A
    running victim observes it at its next runtime operation; a parked
    victim (blocked in a receive that can no longer complete) is woken
    and discontinued by the scheduler on the next pass rather than
    surfacing as a deadlock. *)
val fail_world_rank : Runtime.t -> world_rank:int -> unit

(** Recognizer for the failure exception (used as the engine's kill
    filter). *)
val is_kill_exn : exn -> bool

val failed_ranks : Runtime.t -> int list
