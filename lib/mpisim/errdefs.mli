(** Error classes and exceptions of the runtime (paper §III-G).

    Two kinds are distinguished, as the paper's design does:

    - {b usage errors} (invalid rank/count/tag, uncommitted type, missing
      parameter): raised eagerly as {!Usage_error} — the class KaMPIng
      catches at compile time or with assertions;
    - {b failures} (process death, revoked communicator, truncation):
      raised as {!Mpi_error} — the recoverable class that error handlers
      and the ULFM plugin deal with. *)

type code =
  | Success
  | Err_truncate  (** receive buffer smaller than the incoming message *)
  | Err_type  (** type-signature mismatch on a matched message *)
  | Err_rank
  | Err_count
  | Err_tag
  | Err_comm
  | Err_request
  | Err_proc_failed  (** a participating process has failed (ULFM) *)
  | Err_revoked  (** communicator has been revoked (ULFM) *)
  | Err_deadlock
  | Err_rma_range  (** one-sided op out of the target window's bounds *)
  | Err_other of string

val code_name : code -> string

exception Mpi_error of { code : code; msg : string }

exception Usage_error of string

(** A sanitizer finding from the {!Check} layer: which check class fired
    ("collective", "request-leak", "double-wait", "send-buffer",
    "deadlock", "wildcard"), the world rank at the violation site and the
    full report.  Separate from {!Mpi_error} because a violation is a bug
    in the program under simulation, not a recoverable runtime failure. *)
exception Check_violation of { check : string; rank : int; msg : string }

(** [mpi_error code fmt ...] raises {!Mpi_error} with a formatted
    message. *)
val mpi_error : code -> ('a, unit, string, 'b) format4 -> 'a

val usage_error : ('a, unit, string, 'b) format4 -> 'a

val check_violation : check:string -> rank:int -> ('a, unit, string, 'b) format4 -> 'a

(** Per-communicator error-handling strategy (MPI_Errhandler analogue).
    [Errors_custom] is the plugin hook of §III-G; a handler that returns
    cannot resume the operation (the error is re-raised). *)
type handler =
  | Errors_raise
  | Errors_are_fatal
  | Errors_custom of (code -> string -> unit)
