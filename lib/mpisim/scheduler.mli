(** Cooperative fiber scheduler built on OCaml effects.

    Each simulated rank is a fiber.  A fiber blocks by performing
    {!park}: the scheduler parks it and re-polls on subsequent passes;
    when the poll yields [Some v] the fiber resumes with [v].  Scheduling
    is deterministic round-robin, so simulations are reproducible.

    Deadlock detection: a full pass that runs nothing while the progress
    counter is unchanged proves no poll can ever succeed again (all state
    changes come from fibers); the run aborts with per-fiber wait
    descriptions. *)

type 'a poll = unit -> 'a option

(** A fiber raised [exn]; parked peers were discontinued. *)
exception Aborted of { rank : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception Deadlock of { parked : (int * string) list; finished : int; total : int }

(** Block the current fiber until [poll] returns [Some v]; returns [v].
    Fast path: an immediately successful poll does not park.  [describe]
    feeds the deadlock diagnostics.  Polls run in scheduler context and
    must be cheap and side-effect-light. *)
val park : describe:(unit -> string) -> poll:'a poll -> 'a

(** Let every other runnable fiber run once. *)
val yield : unit -> unit

type outcome = Finished | Raised of exn * Printexc.raw_backtrace

(** Raised into parked fibers when another fiber's failure aborts the
    run. *)
exception Abandoned_fiber

(** [run ~progress ~nfibers body] executes [body rank] for every rank.

    @param progress a monotone counter that changes whenever shared state
           changes (drives deadlock detection)
    @param on_segment receives (rank, real seconds) for every executed
           fiber segment — the measured-compute feed of the hybrid clock
    @param on_park called when a fiber actually parks (its poll failed);
           voluntary yields do not count
    @param on_resume called with (rank, wall seconds parked) when a parked
           fiber's poll succeeds and it is about to resume
    @param kill_filter exceptions representing injected process failures:
           such fibers end as [Raised] without aborting the others
    @param wake_check consulted before polling a parked fiber: [Some exn]
           discontinues the fiber with [exn] instead of resuming it — how
           fault injection reaches a victim blocked in a receive whose
           poll can never succeed
    @param on_quiescence called when a full pass ran nothing and the
           progress counter is unchanged — the point where the model
           checker resolves a deferred match decision.  Returning [true]
           means "state changed, keep scheduling" (the hook must have
           bumped the progress counter or satisfied a poll, or detection
           loops forever); [false] falls through to the deadlock report.

    The park/resume hooks cost one extra [gettimeofday] per park when
    supplied and nothing when absent. *)
val run :
  ?on_segment:(int -> float -> unit) ->
  ?on_park:(int -> unit) ->
  ?on_resume:(int -> float -> unit) ->
  ?kill_filter:(exn -> bool) ->
  ?wake_check:(int -> exn option) ->
  ?on_quiescence:(unit -> bool) ->
  progress:(unit -> int) ->
  nfibers:int ->
  (int -> unit) ->
  outcome array

(** [run_parallel ~domains ~progress ~nfibers body] is {!run} on a fixed
    pool of [domains] OCaml 5 domains (the calling domain included as
    worker 0; [domains - 1] are spawned for the run and joined at the
    end).

    Execution is round-based: with every worker idle, the coordinator
    polls all fibers in rank order (so polls stay sequential and
    lock-free, exactly as in {!run}), then the runnable set executes
    concurrently on per-worker run queues with work stealing, then a
    barrier makes all writes visible before the next poll phase.  Each
    rank's fiber runs on exactly one domain at a time (asserted), so
    rank-owned state needs no locking; cross-rank state must be guarded
    by the runtime (see [Runtime.set_parallel]).

    Determinism: with a deterministic virtual clock the runnable set of
    each round is schedule-independent, so results and virtual times are
    reproducible across [domains] settings; wall-clock interleaving
    within a round is not.  [rank_time] reports a fiber's current
    virtual time; when [lookahead] (default: [MPISIM_LOOKAHEAD], else
    infinite) is finite, only fibers within [lookahead] of the round's
    earliest runnable virtual time run — the virtual-time barrier
    advances once they park.

    [on_quiescence] is not supported (the model checker requires
    sequential scheduling); callers must run sequentially instead.
    Deadlock detection is unchanged: a round that polls nothing runnable
    while [progress] is stationary raises {!Deadlock}.

    @raise Invalid_argument when [domains < 2] (use {!run}). *)
val run_parallel :
  ?on_segment:(int -> float -> unit) ->
  ?on_park:(int -> unit) ->
  ?on_resume:(int -> float -> unit) ->
  ?kill_filter:(exn -> bool) ->
  ?wake_check:(int -> exn option) ->
  ?rank_time:(int -> float) ->
  ?lookahead:float ->
  domains:int ->
  progress:(unit -> int) ->
  nfibers:int ->
  (int -> unit) ->
  outcome array
