(* Network cost model for the simulated message-passing runtime.

   We use a LogGP-flavoured alpha-beta model:

   - a point-to-point message of [b] bytes occupies the sender for
     [send_overhead + b * byte_time] seconds and arrives at the receiver
     [latency] seconds after injection completes;
   - the receiver pays [recv_overhead] plus an unpack cost of
     [copy_byte_time] per byte (unpacking is additionally measured as real
     CPU work when the hybrid clock is active, see {!Clock});
   - collectives are built from point-to-point messages, so their cost
     emerges from the algorithm's critical path rather than from a formula.

   Extra knobs model implementation artifacts the paper relies on:

   - [alltoallw_type_setup]: per-peer derived-datatype construction cost of
     MPI_Alltoallw-style calls.  MPL lowers variable-size collectives to
     alltoallw; this constant is why that lowering is slower (paper §II, [9]).
   - [dense_scan_byte]: per-rank cost of scanning the O(p) count arrays of
     dense variable collectives (paper §V-A: time linear in communicator
     size even when the pattern is sparse).
   - [topo_setup_per_rank]: cost, per member rank, of building a (neighbor)
     graph topology communicator. *)

(* Per-link fault rates for the chaos plane.  All probabilities are per
   transmission attempt; [jitter] is the upper bound of a uniform extra
   transit delay in seconds.  A rate structure with every field 0. is a
   perfect link. *)
type link_rates = {
  drop : float;  (* P(attempt is lost in transit) *)
  duplicate : float;  (* P(attempt arrives twice; dup is discarded by seq) *)
  reorder : float;  (* P(attempt is held back one extra latency) *)
  corrupt : float;  (* P(attempt arrives with flipped bits) *)
  jitter : float;  (* uniform extra transit delay in [0, jitter) seconds *)
}

(* Retransmission policy of the reliable-delivery layer (chaos plane).
   [rto = None] derives the base timeout from the model (4 x latency);
   [backoff] multiplies the timeout per failed attempt (2.0 = classic
   binary exponential backoff); [jitter_cap] bounds the accumulated
   random extra transit delay of one delivery in seconds. *)
type retry_policy = {
  max_retries : int;  (* retransmissions before escalating to ERR_PROC_FAILED *)
  rto : float option;  (* base retransmit timeout; None = 4 x latency *)
  backoff : float;  (* per-attempt timeout multiplier, >= 1 *)
  jitter_cap : float;  (* upper bound on accumulated jitter delay, seconds *)
}

let default_retry = { max_retries = 8; rto = None; backoff = 2.0; jitter_cap = infinity }

(* A fault profile: default rates for every link plus per-link overrides,
   keyed by (src world rank, dst world rank), and the retransmission
   policy the reliable layer applies on top of them. *)
type fault_profile = {
  default_rates : link_rates;
  link_overrides : ((int * int) * link_rates) list;
  retry : retry_policy;
}

(* Thresholds steering the collective-algorithm engine (Coll_algo).  All
   cutoffs are in payload bytes; defaults follow the switch-over points
   real MPI implementations use (MPICH: 2KB short-allreduce cutoff,
   long-message ring/pairwise algorithms past the eager range). *)
type coll_tuning = {
  allreduce_rdbl_max_bytes : int;
      (* at or below: recursive-doubling allreduce; above: Rabenseifner *)
  allgather_ring_min_bytes : int;
      (* per-rank contribution at or above which ring replaces Bruck *)
  bcast_scatter_min_bytes : int;
      (* total payload at or above which scatter+ring replaces binomial *)
  reduce_scatter_pairwise_min_bytes : int;
      (* total payload at or above which pairwise exchange replaces the
         reduce-to-root + scatter reference lowering *)
}

let default_tuning =
  {
    allreduce_rdbl_max_bytes = 2048;
    allgather_ring_min_bytes = 32768;
    bcast_scatter_min_bytes = 65536;
    reduce_scatter_pairwise_min_bytes = 2048;
  }

type t = {
  name : string;
  latency : float;  (* seconds of wire latency per message (alpha_net) *)
  send_overhead : float;  (* sender CPU seconds per message (o_s) *)
  recv_overhead : float;  (* receiver CPU seconds per message (o_r) *)
  byte_time : float;  (* seconds per byte on the wire (beta) *)
  copy_byte_time : float;  (* seconds per byte for local pack/unpack *)
  alltoallw_type_setup : float;  (* per-peer datatype setup in alltoallw *)
  dense_scan_byte : float;  (* per-rank scan cost of dense vector collectives *)
  topo_setup_per_rank : float;  (* graph-topology construction, per rank *)
  faults : fault_profile option;  (* lossy-network model; None = perfect links *)
  tuning : coll_tuning;  (* collective algorithm switch-over points *)
}

let perfect_link = { drop = 0.; duplicate = 0.; reorder = 0.; corrupt = 0.; jitter = 0. }

let no_faults = { default_rates = perfect_link; link_overrides = []; retry = default_retry }

(* A moderately lossy network: a few percent of attempts misbehave, with
   jitter on the order of the wire latency.  Chaos tests start here. *)
let lossy_rates ~latency =
  { drop = 0.02; duplicate = 0.01; reorder = 0.01; corrupt = 0.005; jitter = latency }

let lossy m =
  {
    m with
    faults =
      Some
        {
          default_rates = lossy_rates ~latency:m.latency;
          link_overrides = [];
          retry = default_retry;
        };
  }

let with_faults m profile = { m with faults = Some profile }

let rates_for profile ~src ~dst =
  match List.assoc_opt (src, dst) profile.link_overrides with
  | Some r -> r
  | None -> profile.default_rates

(* An OmniPath-like interconnect: ~1.5us latency, 100 Gbit/s = 12.5 GB/s. *)
let omnipath =
  {
    name = "omnipath";
    latency = 1.5e-6;
    send_overhead = 0.4e-6;
    recv_overhead = 0.4e-6;
    byte_time = 1. /. 12.5e9;
    copy_byte_time = 1. /. 40e9;
    alltoallw_type_setup = 0.8e-6;
    dense_scan_byte = 1.0e-9;
    topo_setup_per_rank = 0.5e-6;
    faults = None;
    tuning = default_tuning;
  }

(* Commodity ethernet: higher latency, 10 Gbit/s. *)
let ethernet =
  {
    name = "ethernet";
    latency = 25e-6;
    send_overhead = 2e-6;
    recv_overhead = 2e-6;
    byte_time = 1. /. 1.25e9;
    copy_byte_time = 1. /. 20e9;
    alltoallw_type_setup = 3e-6;
    dense_scan_byte = 2e-9;
    topo_setup_per_rank = 2e-6;
    faults = None;
    tuning = default_tuning;
  }

(* Free communication: useful for correctness tests where modelled time is
   irrelevant and for isolating binding-layer CPU overhead. *)
let zero_cost =
  {
    name = "zero";
    latency = 0.;
    send_overhead = 0.;
    recv_overhead = 0.;
    byte_time = 0.;
    copy_byte_time = 0.;
    alltoallw_type_setup = 0.;
    dense_scan_byte = 0.;
    topo_setup_per_rank = 0.;
    faults = None;
    tuning = default_tuning;
  }

let send_busy_time m ~bytes = m.send_overhead +. (float_of_int bytes *. m.byte_time)

let transit_time m = m.latency

let recv_busy_time m ~bytes =
  m.recv_overhead +. (float_of_int bytes *. m.copy_byte_time)

let pp ppf m =
  Format.fprintf ppf
    "%s(lat=%.2gus, 1/beta=%.3gGB/s, o_s=%.2gus, o_r=%.2gus)" m.name
    (m.latency *. 1e6)
    (1. /. m.byte_time /. 1e9)
    (m.send_overhead *. 1e6) (m.recv_overhead *. 1e6)
