(* In-flight messages.

   A message is fully packed at injection time.  [arrival] is the virtual
   time at which the payload is available at the receiver; [matched_time]
   is set when a receive matches it (used by synchronous-send requests,
   which complete only once the receiver has matched — the NBX sparse
   all-to-all relies on this).

   The payload is a (storage, offset, length) slice: the storage usually
   comes from the sender's pooled wire buffer (handed over without a copy
   at injection) and may be larger than the payload itself.  Whoever
   unpacks the message calls [Runtime.recycle_payload], which marks the
   slice consumed and returns the storage to a pool; [consumed] guards
   against double recycling and against reading a recycled slice. *)

type t = {
  context : int;  (* communicator context id *)
  src : int;  (* world rank of sender *)
  dst : int;  (* world rank of receiver *)
  tag : int;
  payload : Bytes.t;  (* storage; capacity may exceed the payload *)
  payload_off : int;
  payload_len : int;
  count : int;  (* element count *)
  signature : Signature.t;  (* full signature of the payload *)
  sent_at : float;  (* sender's virtual clock at injection (post send-busy) *)
  arrival : float;  (* virtual arrival time at the receiver *)
  seq : int;  (* global injection sequence, for wildcard ordering *)
  sync : bool;  (* synchronous send: sender completes on match *)
  crc : int;  (* reliable-layer CRC-32 of the payload; -1 = not framed *)
  link_seq : int;  (* reliable-layer per-link sequence number; -1 = none *)
  lamport : int;  (* sender's Lamport clock at injection; receivers merge it *)
  vc : int array;  (* sender's vector clock at injection; [||] when disabled *)
  mutable matched_time : float;  (* -1.0 until matched *)
  mutable consumed : bool;  (* payload storage handed back to a pool *)
}

let make ?(crc = -1) ?(link_seq = -1) ?(lamport = 0) ?(vc = [||]) ~context ~src ~dst ~tag
    ~payload ~payload_off ~payload_len ~count ~signature ~sent_at ~arrival ~seq ~sync () =
  if payload_off < 0 || payload_len < 0 || payload_off + payload_len > Bytes.length payload
  then invalid_arg "Message.make: payload slice out of bounds";
  {
    context;
    src;
    dst;
    tag;
    payload;
    payload_off;
    payload_len;
    count;
    signature;
    sent_at;
    arrival;
    seq;
    sync;
    crc;
    link_seq;
    lamport;
    vc;
    matched_time = -1.0;
    consumed = false;
  }

let is_matched t = t.matched_time >= 0.

let bytes t = t.payload_len

(* A bounded reader over the payload slice.  Must not be used after the
   message's storage has been recycled. *)
let reader t =
  if t.consumed then invalid_arg "Message.reader: payload already recycled";
  Wire.reader_of_bytes ~pos:t.payload_off ~len:t.payload_len t.payload

(* An owned copy of the payload (for APIs that return raw bytes). *)
let payload_copy t =
  if t.consumed then invalid_arg "Message.payload_copy: payload already recycled";
  Bytes.sub t.payload t.payload_off t.payload_len

let pp ppf t =
  Format.fprintf ppf "msg{ctx=%d; %d->%d; tag=%d; count=%d; %dB; arr=%a}" t.context
    t.src t.dst t.tag t.count (bytes t) Sim_time.pp t.arrival
