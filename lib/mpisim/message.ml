(* In-flight messages.

   A message is fully packed at injection time.  [arrival] is the virtual
   time at which the payload is available at the receiver; [matched_time]
   is set when a receive matches it (used by synchronous-send requests,
   which complete only once the receiver has matched — the NBX sparse
   all-to-all relies on this). *)

type t = {
  context : int;  (* communicator context id *)
  src : int;  (* world rank of sender *)
  dst : int;  (* world rank of receiver *)
  tag : int;
  payload : Bytes.t;
  count : int;  (* element count *)
  signature : Signature.t;  (* full signature of the payload *)
  sent_at : float;  (* sender's virtual clock at injection (post send-busy) *)
  arrival : float;  (* virtual arrival time at the receiver *)
  seq : int;  (* global injection sequence, for wildcard ordering *)
  sync : bool;  (* synchronous send: sender completes on match *)
  mutable matched_time : float;  (* -1.0 until matched *)
}

let make ~context ~src ~dst ~tag ~payload ~count ~signature ~sent_at ~arrival ~seq ~sync =
  {
    context;
    src;
    dst;
    tag;
    payload;
    count;
    signature;
    sent_at;
    arrival;
    seq;
    sync;
    matched_time = -1.0;
  }

let is_matched t = t.matched_time >= 0.

let bytes t = Bytes.length t.payload

let pp ppf t =
  Format.fprintf ppf "msg{ctx=%d; %d->%d; tag=%d; count=%d; %dB; arr=%a}" t.context
    t.src t.dst t.tag t.count (bytes t) Sim_time.pp t.arrival
