(** Process exit codes shared by every [repro_cli] subcommand: [ok] = 0,
    [violation] = 1 (bench-diff regression, analyzer race, model-checker
    finding), [file_error] = 2, [clean_failure] = 3 (well-defined failure
    under fault injection, with a replayable chaos log). *)

val ok : int

val violation : int

val file_error : int

val clean_failure : int

(** One-line meaning of a code (for --help and diagnostics). *)
val describe : int -> string
