(* Findings shared by the two verification engines.

   The offline happens-before analyzer (Hb) and the schedule-space model
   checker (Explore) report through the same record so repro_cli renders
   both uniformly and CI can grep one format.  [f_flow] is the global
   message sequence number of the send the finding anchors on — the same
   id the Chrome-trace exporter keys its flow arrows on, so a finding
   can be looked up visually in the converted trace. *)

type finding = {
  f_class : string;
      (* "wildcard-race" | "nc-order" | "buffer-reuse" | "deadlock"
         | "nondet-match" | a Check counter name *)
  f_rank : int;  (* rank the finding anchors on; -1 = whole run *)
  f_flow : int;  (* Chrome-trace flow id (global msg seq); -1 = none *)
  f_detail : string;
}

let make ~cls ~rank ~flow detail = { f_class = cls; f_rank = rank; f_flow = flow; f_detail = detail }

let pp_finding ppf f =
  Format.fprintf ppf "[%s]" f.f_class;
  if f.f_rank >= 0 then Format.fprintf ppf " rank %d" f.f_rank;
  if f.f_flow >= 0 then Format.fprintf ppf " flow %d" f.f_flow;
  Format.fprintf ppf ": %s" f.f_detail

let print_findings ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) findings

(* Stable class list of a finding set, for summaries and assertions. *)
let classes findings =
  List.sort_uniq compare (List.map (fun f -> f.f_class) findings)

let has_class findings cls = List.exists (fun f -> f.f_class = cls) findings

(* A vector clock rendered as "<1,0,3>" for witnesses in finding text. *)
let vc_to_string vc =
  "<" ^ String.concat "," (Array.to_list (Array.map string_of_int vc)) ^ ">"

(* Are two vector clocks causally incomparable (concurrent)?  [a <= b]
   component-wise means a happens-before (or equals) b; concurrency is
   neither direction holding. *)
let vc_concurrent a b =
  let n = Array.length a in
  if n <> Array.length b || n = 0 then false
  else begin
    let a_le_b = ref true and b_le_a = ref true in
    for i = 0 to n - 1 do
      if a.(i) > b.(i) then a_le_b := false;
      if b.(i) > a.(i) then b_le_a := false
    done;
    (not !a_le_b) && not !b_le_a
  end
