(* Offline happens-before analyzer over a binary trace stream.

   Input: a Trace_stream file recorded with vector clocks on
   (Engine ~vector_clocks:true, i.e. repro_cli --trace-stream): "send"
   instants annotated with tag-3 vector-clock records and "send_meta"
   instants (tag/context/sync), "post" instants for every posted
   receive, "matched" instants linking a post to the message it got,
   "match"/"match_wait" completion instants, and "nc_order" markers
   inside non-commutative reduction spans.

   The pass reconstructs the match relation (which send each receive
   consumed) and the happens-before partial order (from the vector
   clocks), then reports:

   - wildcard-race: a wildcard receive whose matched send has at least
     one pattern-compatible alternative sender with a causally
     {e incomparable} vector clock.  Unlike Mpicheck's runtime counter
     — which only sees candidates already queued when the receive is
     posted — this catches races where the receive parks first and the
     competing sends arrive later: the VCs prove the sends were
     concurrent, so a real MPI could have delivered either.
   - nc-order: a non-commutative reduction that consumed contributions
     from causally concurrent senders — on a real MPI, arrival order
     (and thus floating-point combine order) is schedule-dependent.
   - buffer-reuse: the window between a large (>= eager threshold)
     non-synchronous send returning and its match, during which a real
     MPI gives no buffer-ownership guarantee.

   Every finding carries the global message sequence number — the same
   id the Chrome-trace converter keys its flow arrows on — so findings
   can be located visually in the converted trace. *)

type send = {
  s_rank : int;
  s_dst : int;
  s_seq : int;
  s_bytes : int;
  s_ts : float;
  mutable s_tag : int;  (* from send_meta; min_int until seen *)
  mutable s_ctx : int;
  mutable s_sync : bool;
  mutable s_vc : int array;  (* [||] until the tag-3 record arrives *)
}

type post = {
  po_rank : int;
  po_src : int;  (* -1 = any_source *)
  po_tag : int;  (* -1 = any_tag *)
  po_ctx : int;
  po_id : int;
  mutable po_match_seq : int;  (* -1 until a matched instant links it *)
}

(* One open collective span on a rank's stack.  [matches] accumulates the
   message seqs consumed anywhere inside the span (including nested
   lowered collectives); [nc] is set by an "nc_order" instant. *)
type coll_span = { mutable nc : bool; mutable span_matches : int list }

type result_t = {
  findings : Report.finding list;
  ranks : int;
  events : int;
  sends : int;
  matches : int;
  wildcard_posts : int;
  vcs : int;
  had_vc : bool;  (* false: trace was recorded without vector clocks *)
}

(* What a tag-3 record at (rank, event seq) annotates. *)
type vc_target = Tsend of int | Tmatch of int

let default_eager_threshold = 64 * 1024

let analyze ?(eager_threshold = default_eager_threshold) ?(include_internal = false) path
    : (result_t, string) result =
  let sends : (int, send) Hashtbl.t = Hashtbl.create 256 in
  let posts : post list ref = ref [] in
  let posts_by_key : (int * int, post) Hashtbl.t = Hashtbl.create 256 in
  (* msg seq -> (receiver rank, receiver virtual time at match) *)
  let match_ts : (int, int * float) Hashtbl.t = Hashtbl.create 256 in
  let vc_targets : (int * int, vc_target) Hashtbl.t = Hashtbl.create 256 in
  let recv_vcs : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  let coll_stacks : coll_span list ref array ref = ref [||] in
  let vcs = ref 0 in
  let n_matches = ref 0 in
  let findings = ref [] in
  let add_finding f = findings := f :: !findings in
  let nc_span_done rank (sp : coll_span) =
    (* A non-commutative reduction span closed: were any two of the
       contributions it consumed causally concurrent? *)
    if sp.nc then begin
      let seqs = List.rev sp.span_matches in
      let svc q = match Hashtbl.find_opt sends q with Some s -> s.s_vc | None -> [||] in
      let rec first_pair = function
        | [] -> None
        | q :: rest -> (
            match List.find_opt (fun q' -> Report.vc_concurrent (svc q) (svc q')) rest with
            | Some q' -> Some (q, q')
            | None -> first_pair rest)
      in
      match first_pair seqs with
      | None -> ()
      | Some (q1, q2) ->
          let s1 = Hashtbl.find sends q1 and s2 = Hashtbl.find sends q2 in
          add_finding
            (Report.make ~cls:"nc-order" ~rank ~flow:q1
               (Printf.sprintf
                  "non-commutative reduction combined causally concurrent contributions: \
                   send %d from rank %d (vc %s) vs send %d from rank %d (vc %s); a real \
                   MPI's arrival order could change the result"
                  q1 s1.s_rank (Report.vc_to_string s1.s_vc) q2 s2.s_rank
                  (Report.vc_to_string s2.s_vc)))
    end
  in
  let on_event (ev : Trace_stream.event) =
    match ev.Trace_stream.ev_cat with
    | "sim" -> (
        match ev.ev_name with
        | "send" ->
            let s =
              {
                s_rank = ev.ev_rank;
                s_dst = ev.ev_a;
                s_seq = ev.ev_b;
                s_bytes = ev.ev_c;
                s_ts = ev.ev_ts;
                s_tag = min_int;
                s_ctx = min_int;
                s_sync = false;
                s_vc = [||];
              }
            in
            Hashtbl.replace sends ev.ev_b s;
            Hashtbl.replace vc_targets (ev.ev_rank, ev.ev_seq) (Tsend ev.ev_b)
        | "send_meta" -> (
            match Hashtbl.find_opt sends ev.ev_b with
            | Some s ->
                s.s_tag <- ev.ev_a;
                s.s_ctx <- ev.ev_c;
                s.s_sync <- ev.ev_d = 1
            | None -> ())
        | "post" ->
            let po =
              {
                po_rank = ev.ev_rank;
                po_src = ev.ev_a;
                po_tag = ev.ev_b;
                po_ctx = ev.ev_c;
                po_id = ev.ev_d;
                po_match_seq = -1;
              }
            in
            posts := po :: !posts;
            Hashtbl.replace posts_by_key (ev.ev_rank, ev.ev_d) po
        | "matched" -> (
            match Hashtbl.find_opt posts_by_key (ev.ev_rank, ev.ev_a) with
            | Some po -> po.po_match_seq <- ev.ev_b
            | None -> ())
        | "match" | "match_wait" ->
            incr n_matches;
            Hashtbl.replace match_ts ev.ev_b (ev.ev_rank, ev.ev_ts);
            Hashtbl.replace vc_targets (ev.ev_rank, ev.ev_seq) (Tmatch ev.ev_b);
            let stacks = !coll_stacks in
            if ev.ev_rank < Array.length stacks then
              List.iter
                (fun sp -> sp.span_matches <- ev.ev_b :: sp.span_matches)
                !(stacks.(ev.ev_rank))
        | _ -> ())
    | "coll" -> (
        let stacks = !coll_stacks in
        if ev.ev_rank < Array.length stacks then
          let stack = stacks.(ev.ev_rank) in
          match (ev.ev_kind, ev.ev_name) with
          | Trace_chrome.Begin, _ ->
              stack := { nc = false; span_matches = [] } :: !stack
          | Trace_chrome.End, _ -> (
              match !stack with
              | sp :: rest ->
                  stack := rest;
                  nc_span_done ev.ev_rank sp
              | [] -> ())
          | Trace_chrome.Instant, "nc_order" -> (
              match !stack with sp :: _ -> sp.nc <- true | [] -> ())
          | _ -> ())
    | _ -> ()
  in
  let fold =
    Trace_stream.fold_file path
      ~on_header:(fun nranks ->
        coll_stacks := Array.init nranks (fun _ -> ref []))
      ~on_vc:(fun ~rank ~seq vc ->
        incr vcs;
        match Hashtbl.find_opt vc_targets (rank, seq) with
        | Some (Tsend msg_seq) -> (
            match Hashtbl.find_opt sends msg_seq with
            | Some s -> s.s_vc <- vc
            | None -> ())
        | Some (Tmatch msg_seq) -> Hashtbl.replace recv_vcs msg_seq vc
        | None -> ())
      ~init:0
      ~f:(fun n ev ->
        on_event ev;
        n + 1)
  in
  match fold with
  | Error msg -> Error msg
  | Ok (events, summary) ->
      let internal s = s.s_tag > Comm.max_user_tag in
      (* Wildcard races: for each wildcard post that matched, find the
         pattern-compatible alternative sends concurrent with the chosen
         one. *)
      let wildcard_posts = ref 0 in
      List.iter
        (fun po ->
          if (po.po_src = -1 || po.po_tag = -1) && po.po_match_seq >= 0 then begin
            incr wildcard_posts;
            match Hashtbl.find_opt sends po.po_match_seq with
            | None -> ()
            | Some chosen ->
                if (include_internal || not (internal chosen)) && Array.length chosen.s_vc > 0
                then begin
                  let compatible s =
                    s.s_seq <> chosen.s_seq && s.s_dst = po.po_rank && s.s_ctx = po.po_ctx
                    && (po.po_src = -1 || s.s_rank = po.po_src)
                    && (po.po_tag = -1 || s.s_tag = po.po_tag)
                  in
                  let racing =
                    Hashtbl.fold
                      (fun _ s acc ->
                        if compatible s && Report.vc_concurrent chosen.s_vc s.s_vc then
                          s :: acc
                        else acc)
                      sends []
                    |> List.sort (fun a b -> compare a.s_seq b.s_seq)
                  in
                  if racing <> [] then
                    add_finding
                      (Report.make ~cls:"wildcard-race" ~rank:po.po_rank
                         ~flow:chosen.s_seq
                         (Printf.sprintf
                            "wildcard recv (src %s, tag %s) matched send %d from rank %d \
                             (vc %s), but %d concurrent candidate(s) could have matched \
                             instead: %s"
                            (if po.po_src = -1 then "any" else string_of_int po.po_src)
                            (if po.po_tag = -1 then "any" else string_of_int po.po_tag)
                            chosen.s_seq chosen.s_rank
                            (Report.vc_to_string chosen.s_vc)
                            (List.length racing)
                            (String.concat "; "
                               (List.map
                                  (fun s ->
                                    Printf.sprintf "send %d from rank %d (vc %s)" s.s_seq
                                      s.s_rank (Report.vc_to_string s.s_vc))
                                  racing))))
                end
          end)
        (List.rev !posts);
      (* Buffer-reuse windows: large eager sends whose buffer a real MPI
         does not own-protect until the match. *)
      Hashtbl.iter
        (fun _ s ->
          if
            (not s.s_sync) && s.s_bytes >= eager_threshold
            && (include_internal || not (internal s))
          then
            match Hashtbl.find_opt match_ts s.s_seq with
            | Some (mrank, mts) when mts > s.s_ts ->
                add_finding
                  (Report.make ~cls:"buffer-reuse" ~rank:s.s_rank ~flow:s.s_seq
                     (Printf.sprintf
                        "send %d (%d bytes >= eager threshold %d) to rank %d returned at \
                         t=%.9f but was only matched at t=%.9f: the %.9fs window is \
                         reuse-unsafe on a rendezvous-protocol MPI"
                        s.s_seq s.s_bytes eager_threshold mrank s.s_ts mts (mts -. s.s_ts)))
            | _ -> ())
        sends;
      let findings =
        List.sort
          (fun a b -> compare (a.Report.f_flow, a.Report.f_class) (b.Report.f_flow, b.Report.f_class))
          !findings
      in
      Ok
        {
          findings;
          ranks = summary.Trace_stream.s_ranks;
          events;
          sends = Hashtbl.length sends;
          matches = !n_matches;
          wildcard_posts = !wildcard_posts;
          vcs = !vcs;
          had_vc = !vcs > 0;
        }
