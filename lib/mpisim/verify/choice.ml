(* Recordable decision points for the schedule-space model checker.

   The simulator is deterministic: round-robin scheduling plus
   oldest-message-wins wildcard arbitration picks exactly one schedule
   per program.  The *space* of schedules a real MPI could exhibit hides
   in the wildcard-receive match choices.  This module makes those
   choices explicit: when a controller is installed, wildcard receives
   are deferred (Mailbox skips their immediate match), the scheduler's
   quiescence hook resolves them one at a time, and every resolution is
   recorded as a (site, candidate-count, chosen-index) decision.  A
   decision script replays a schedule exactly; the explorer (Explore)
   enumerates scripts.

   The module is deliberately dependency-free so Mailbox and Engine can
   consult it without cycles.  When no controller is installed —
   the only state every normal run ever sees — each hook is a single
   load-and-branch with no allocation (Gc-asserted in test_verify). *)

type decision = {
  d_rank : int;  (* receiver world rank of the resolved site *)
  d_pid : int;  (* posted-receive id within that rank's mailbox *)
  d_ncand : int;  (* eligible candidate messages at resolution time *)
  d_chosen : int;  (* index (by global seq order) actually matched *)
  d_pruned : int;  (* non-head eligible messages pruned by non-overtaking *)
}

type t = {
  mutable script : int array;  (* choices to replay; beyond the end: 0 *)
  mutable cursor : int;
  mutable log : decision list;  (* newest first *)
  mutable pruned : int;  (* total non-overtaking-pruned alternatives *)
}

(* The installed controller.  [None] is the fast path: [deferring] reads
   one word. *)
let installed : t option ref = ref None

let deferring () = !installed <> None

let active = deferring

let install ~script =
  installed := Some { script = Array.of_list script; cursor = 0; log = []; pruned = 0 }

let uninstall () = installed := None

(* The scripted (or default-0) choice for the next decision site with
   [ncand] candidates; records the decision.  Out-of-range scripted
   values clamp so a replayed trace from a different run cannot crash
   the resolver. *)
let next t ~rank ~pid ~ncand ~pruned =
  let wanted = if t.cursor < Array.length t.script then t.script.(t.cursor) else 0 in
  let chosen = if wanted < 0 then 0 else if wanted >= ncand then ncand - 1 else wanted in
  t.cursor <- t.cursor + 1;
  t.pruned <- t.pruned + pruned;
  t.log <-
    { d_rank = rank; d_pid = pid; d_ncand = ncand; d_chosen = chosen; d_pruned = pruned }
    :: t.log;
  chosen

(* Chronological decision log of the current (or last) installed run. *)
let decisions t = List.rev t.log

let pruned t = t.pruned

(* Decision-trace wire format: the chosen indices, comma-separated —
   "0,2,1" replays three decisions.  Compact enough for CI logs and
   --replay flags; parse accepts the empty string as the empty script. *)
let script_to_string (s : int list) = String.concat "," (List.map string_of_int s)

let script_of_string (s : string) : (int list, string) result =
  let s = String.trim s in
  if s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc tok ->
           match acc with
           | Error _ as e -> e
           | Ok acc -> (
               match int_of_string_opt (String.trim tok) with
               | Some v when v >= 0 -> Ok (v :: acc)
               | Some _ -> Error (Printf.sprintf "negative choice %S in decision trace" tok)
               | None -> Error (Printf.sprintf "%S is not a choice index" tok)))
         (Ok [])
    |> Result.map List.rev
