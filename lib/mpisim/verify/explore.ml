(* Bounded schedule-space model checker.

   The simulator's only source of schedule nondeterminism on a real MPI
   is the wildcard-receive match choice (everything else — round-robin
   fiber order, virtual-only clocks, zero-cost network — is fixed per
   decision script).  With a Choice controller installed, Mailbox defers
   wildcard matches and the scheduler's quiescence hook resolves them one
   at a time: the program runs until no fiber can move, the resolver
   picks a candidate for the oldest deferred receive that has one, and
   scheduling continues.  Each resolution is a recorded decision; a
   decision script replays a schedule bit-exactly.

   Exploration is ISP/MOPPER-style lazy matching with non-overtaking
   pruning: the candidate set of a decision is the *head* of each
   matching per-(src, tag) unexpected queue (deeper messages cannot be
   matched first on any real MPI — that is the sleep-set-style reduction;
   their count is reported as [pruned]), so two interleavings differing
   only in same-link delivery order collapse into one explored schedule.
   The frontier is breadth-first over decision prefixes — schedule [s]
   spawns [s @ [j]] for every alternative [j] at every decision at
   position >= |s|, which enumerates every decision sequence exactly
   once — so the first script that exhibits a violation is also a
   minimal replayable witness for it.

   Every run executes under the Heavy sanitizer with virtual-only clocks
   and the zero-cost network, so findings come from the same Check
   registry as Mpicheck and runs are bit-exactly reproducible. *)

type violation = {
  v_class : string;  (* "deadlock" | a Check class | exception name *)
  v_rank : int;  (* rank the violation anchors on; -1 = whole run *)
  v_detail : string;
  v_script : int list;  (* minimal decision trace replaying this *)
}

type run_outcome = Completed | Violated of { cls : string; rank : int; detail : string }

type result_t = {
  explored : int;  (* schedules executed *)
  pruned : int;  (* match alternatives removed by non-overtaking *)
  truncated : bool;  (* hit max_schedules before exhausting the space *)
  violations : violation list;  (* one witness per violation class *)
  max_branching : int;  (* widest decision point seen *)
  deadlock_free : bool;  (* no schedule deadlocked (meaningful if not truncated) *)
  match_deterministic : bool;  (* no decision ever had >= 2 candidates *)
}

let default_max_schedules = 10_000

(* Classify how one schedule ended.  Check violations surface wrapped in
   [Scheduler.Aborted] when raised inside a fiber and bare when raised by
   the finalize scan; deadlock surfaces as [Mpi_error Err_deadlock]
   (Check is always on here) with the named wait-for cycle as detail. *)
let classify = function
  | Errdefs.Check_violation { check; rank; msg } ->
      Violated { cls = check; rank; detail = msg }
  | Scheduler.Aborted { exn = Errdefs.Check_violation { check; rank; msg }; _ } ->
      Violated { cls = check; rank; detail = msg }
  | Errdefs.Mpi_error { code = Errdefs.Err_deadlock; msg } ->
      Violated { cls = "deadlock"; rank = -1; detail = msg }
  | Scheduler.Aborted { exn = Errdefs.Mpi_error { code = Errdefs.Err_deadlock; msg }; _ }
    ->
      Violated { cls = "deadlock"; rank = -1; detail = msg }
  | Scheduler.Deadlock _ as exn ->
      Violated { cls = "deadlock"; rank = -1; detail = Printexc.to_string exn }
  | Scheduler.Aborted { rank; exn; _ } ->
      Violated { cls = Printexc.exn_slot_name exn; rank; detail = Printexc.to_string exn }
  | exn -> Violated { cls = Printexc.exn_slot_name exn; rank = -1; detail = Printexc.to_string exn }

(* Execute one schedule of [body] under the given decision script.
   Returns the outcome plus the full decision log and pruned count of
   this run. *)
let run_one ?(check_level = Check.Heavy) ~ranks ~script body =
  Choice.install ~script;
  Fun.protect ~finally:Choice.uninstall (fun () ->
      let rt_ref = ref None in
      let resolve () =
        match !rt_ref with
        | None -> false
        | Some rt -> (
            (* The oldest deferred wildcard receive (lowest rank, then
               posting order) that has at least one candidate: resolve it
               with the scripted choice.  No such site means quiescence is
               a genuine deadlock — fall through to detection. *)
            let found = ref None in
            (try
               Array.iteri
                 (fun rank mb ->
                   Mailbox.iter_deferred mb (fun p ->
                       if !found = None then begin
                         let heads, pruned =
                           Mailbox.candidate_heads mb ~context:p.Mailbox.p_context
                             ~src:p.Mailbox.p_src ~tag:p.Mailbox.p_tag
                         in
                         if heads <> [] then begin
                           found := Some (rank, mb, p, heads, pruned);
                           raise Exit
                         end
                       end))
                 rt.Runtime.mailboxes
             with Exit -> ());
            match !found with
            | None -> false
            | Some (rank, mb, p, heads, pruned) ->
                let ctl =
                  match !Choice.installed with Some c -> c | None -> assert false
                in
                let j =
                  Choice.next ctl ~rank ~pid:p.Mailbox.p_id ~ncand:(List.length heads)
                    ~pruned
                in
                Mailbox.resolve_deferred mb p (List.nth heads j);
                (* The poll of the resolved receive can now succeed; bump
                   progress so the scheduler pass is not seen as stuck. *)
                Runtime.bump_progress rt;
                true)
      in
      let outcome =
        match
          (* ~domains:1 pins the sequential scheduler regardless of an
             inherited MPISIM_DOMAINS: schedule enumeration only makes
             sense against the deterministic backend. *)
          Engine.run ~model:Net_model.zero_cost ~clock_mode:Runtime.Virtual_only
            ~check_level ~domains:1
            ~on_runtime:(fun rt -> rt_ref := Some rt)
            ~on_quiescence:resolve ~ranks body
        with
        | (_ : Engine.report) -> Completed
        | exception exn -> classify exn
      in
      let ctl = match !Choice.installed with Some c -> c | None -> assert false in
      (outcome, Choice.decisions ctl, Choice.pruned ctl))

(* Explore all non-equivalent schedules of [body], breadth-first, up to
   [max_schedules].  Collects one (minimal, by BFS) witness script per
   violation class. *)
let explore ?(max_schedules = default_max_schedules) ?check_level ~ranks body : result_t =
  let frontier = Queue.create () in
  Queue.add [] frontier;
  let explored = ref 0 in
  let pruned = ref 0 in
  let truncated = ref false in
  let max_branching = ref 0 in
  let deadlocked = ref false in
  let violations : (string, violation) Hashtbl.t = Hashtbl.create 8 in
  while not (Queue.is_empty frontier) do
    if !explored >= max_schedules then begin
      truncated := true;
      Queue.clear frontier
    end
    else begin
      let script = Queue.pop frontier in
      incr explored;
      let outcome, decisions, run_pruned = run_one ?check_level ~ranks ~script body in
      pruned := !pruned + run_pruned;
      List.iter
        (fun (d : Choice.decision) ->
          if d.Choice.d_ncand > !max_branching then max_branching := d.Choice.d_ncand)
        decisions;
      (match outcome with
      | Completed -> ()
      | Violated { cls; rank; detail } ->
          if cls = "deadlock" then deadlocked := true;
          if not (Hashtbl.mem violations cls) then
            Hashtbl.replace violations cls
              { v_class = cls; v_rank = rank; v_detail = detail; v_script = script });
      let chosen = List.map (fun (d : Choice.decision) -> d.Choice.d_chosen) decisions in
      (* A decision with two or more candidates IS the wildcard race,
         made visible: which message the receive returns depends on the
         schedule.  Witness: the prefix script that drives a replay to
         exactly that decision point. *)
      (let rec first_wide i = function
         | [] -> ()
         | (d : Choice.decision) :: rest ->
             if d.Choice.d_ncand >= 2 then begin
               if not (Hashtbl.mem violations "nondet-match") then
                 Hashtbl.replace violations "nondet-match"
                   {
                     v_class = "nondet-match";
                     v_rank = d.Choice.d_rank;
                     v_detail =
                       Printf.sprintf
                         "wildcard receive (rank %d, post %d) had %d concurrent match \
                          candidates: which message it returns depends on the schedule"
                         d.Choice.d_rank d.Choice.d_pid d.Choice.d_ncand;
                     v_script = List.filteri (fun k _ -> k < i) chosen;
                   }
             end
             else first_wide (i + 1) rest
       in
       first_wide 0 decisions);
      (* Branch: alternatives of every decision made at or beyond this
         script's own length.  Decisions before |script| were forced by
         the script and already branched by an ancestor — re-branching
         them would enumerate duplicate schedules. *)
      let base = List.length script in
      List.iteri
        (fun i (d : Choice.decision) ->
          if i >= base then
            for j = 0 to d.Choice.d_ncand - 1 do
              if j <> d.Choice.d_chosen then
                Queue.add (List.filteri (fun k _ -> k < i) chosen @ [ j ]) frontier
            done)
        decisions
    end
  done;
  let violations =
    Hashtbl.fold (fun _ v acc -> v :: acc) violations []
    |> List.sort (fun a b -> compare a.v_class b.v_class)
  in
  {
    explored = !explored;
    pruned = !pruned;
    truncated = !truncated;
    violations;
    max_branching = !max_branching;
    deadlock_free = (not !deadlocked) && not !truncated;
    match_deterministic = !max_branching <= 1;
  }

(* Replay one decision script; returns how the schedule ended plus its
   decision log — the "minimal decision trace replays to the same
   finding" certificate (for [nondet-match] the finding is a decision
   with >= 2 candidates in the log, not an exception). *)
let replay ?check_level ~ranks ~script body = run_one ?check_level ~ranks ~script body

let outcome_class = function Completed -> "ok" | Violated { cls; _ } -> cls

(* The class a replayed (outcome, decisions) pair exhibits, mirroring
   [explore]'s classification: a raised violation wins; otherwise a
   decision with >= 2 candidates is the nondet-match finding. *)
let replay_class (outcome, decisions, _pruned) =
  match outcome with
  | Violated { cls; _ } -> cls
  | Completed ->
      if List.exists (fun (d : Choice.decision) -> d.Choice.d_ncand >= 2) decisions then
        "nondet-match"
      else "ok"

let pp_result ppf r =
  Format.fprintf ppf
    "schedules explored: %d%s; alternatives pruned (non-overtaking): %d; max branching: \
     %d@."
    r.explored
    (if r.truncated then " (truncated)" else "")
    r.pruned r.max_branching;
  if r.violations = [] then begin
    if r.truncated then
      Format.fprintf ppf "no violation within the bound (space not exhausted)@."
    else begin
      Format.fprintf ppf "certified deadlock-free over all explored schedules@.";
      if r.match_deterministic then
        Format.fprintf ppf "certified match-deterministic (no wildcard ambiguity)@."
      else
        Format.fprintf ppf
          "match-nondeterministic: wildcard choices exist but no schedule violates@."
    end
  end
  else
    List.iter
      (fun v ->
        Format.fprintf ppf "VIOLATION [%s]%s: %s@.  replay: --replay '%s'@." v.v_class
          (if v.v_rank >= 0 then Printf.sprintf " rank %d" v.v_rank else "")
          v.v_detail
          (Choice.script_to_string v.v_script))
      r.violations
