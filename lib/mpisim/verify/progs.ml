(* Named verification programs.

   A small registry of self-contained simulated MPI programs used by
   [repro_cli verify] / [repro_cli prog] and by the verify-smoke CI job:
   three seeded violation classes (wildcard nondeterminism, deadlock
   cycle, collective mismatch), one race that a single instrumented run
   cannot see (hidden_race — the analyzer's showcase), and clean
   programs the model checker certifies deadlock-free.

   Each body takes the communicator only; [ranks_hint] is the smallest
   process count at which the program exhibits its documented
   behaviour. *)

type prog = {
  name : string;
  ranks_hint : int;
  doc : string;
  body : Comm.t -> unit;
}

(* Rank 1 sends two different-tag messages to rank 0; rank 0 consumes
   them with two fully wildcard receives.  The two unexpected-queue
   heads are concurrent candidates for the first receive, so the model
   checker branches (nondet-match) and a real MPI may deliver either
   order. *)
let wildcard_race comm =
  let me = Comm.rank comm in
  if me = 0 then begin
    ignore (P2p.recv comm Datatype.int ());
    ignore (P2p.recv comm Datatype.int ())
  end
  else if me = 1 then begin
    P2p.send comm Datatype.int ~dest:0 ~tag:1 [| 10 |];
    P2p.send comm Datatype.int ~dest:0 ~tag:2 [| 20 |]
  end

(* Every non-root rank sends one message; the root drains them with
   wildcard receives.  Under the deterministic scheduler rank 0 posts
   each receive *before* the competing sends arrive, so Mpicheck's
   runtime wildcard counter (which probes candidates at post time) stays
   at zero — yet the senders are causally concurrent, which the offline
   vector-clock analyzer proves.  Run at p >= 3 for two senders. *)
let hidden_race comm =
  let me = Comm.rank comm in
  if me = 0 then
    for _ = 2 to Comm.size comm do
      ignore (P2p.recv comm Datatype.int ())
    done
  else P2p.send comm Datatype.int ~dest:0 ~tag:0 [| me |]

(* Head-to-head blocking receives with explicit sources and no sends:
   the classic wait-for cycle.  Deadlocks at any p >= 2. *)
let deadlock comm =
  let me = Comm.rank comm in
  let peer = (me + 1) mod Comm.size comm in
  ignore (P2p.recv comm Datatype.int ~source:peer ~tag:0 ())

(* Rank 0 enters a barrier while everyone else enters an allgather: a
   collective call-order mismatch the Heavy sanitizer flags. *)
let coll_mismatch comm =
  if Comm.rank comm = 0 then Coll.barrier comm
  else ignore (Coll.allgather comm Datatype.int [| Comm.rank comm |])

(* Deterministic ring shift: explicit sources and tags everywhere, so
   there is nothing to branch on — certified deadlock-free and
   match-deterministic. *)
let clean_ring comm =
  let n = Comm.size comm in
  let me = Comm.rank comm in
  P2p.send comm Datatype.int ~dest:((me + 1) mod n) ~tag:0 [| me |];
  ignore (P2p.recv comm Datatype.int ~source:((me - 1 + n) mod n) ~tag:0 ())

(* Collectives only (commutative allreduce + barrier): no wildcard
   receives at the user level, certified clean. *)
let clean_coll comm =
  ignore (Coll.allreduce comm Datatype.int Reduce_op.int_sum [| Comm.rank comm |]);
  Coll.barrier comm

(* Non-commutative float reduction: contributions from distinct ranks
   are causally concurrent, so the analyzer reports nc-order (the
   combine order is schedule-dependent on a real MPI). *)
let nc_reduce comm =
  let sub = Reduce_op.custom ~commutative:false ~name:"fsub" (fun a b -> a -. b) in
  ignore (Coll.reduce comm Datatype.float sub ~root:0 [| float_of_int (Comm.rank comm + 1) |])

(* One large (>= 64 KiB) eager send: returns before the receiver
   matches, so the analyzer reports the buffer-reuse window a
   rendezvous-protocol MPI would leave unprotected. *)
let big_send comm =
  let me = Comm.rank comm in
  if me = 0 then P2p.send comm Datatype.int ~dest:1 ~tag:0 (Array.make 16384 7)
  else if me = 1 then ignore (P2p.recv comm Datatype.int ~source:0 ~tag:0 ())

let all : prog list =
  [
    {
      name = "wildcard_race";
      ranks_hint = 2;
      doc = "two same-destination sends raced by wildcard receives (nondet-match)";
      body = wildcard_race;
    };
    {
      name = "hidden_race";
      ranks_hint = 3;
      doc =
        "wildcard race invisible to the single-run counter; the offline analyzer \
         proves it from vector clocks";
      body = hidden_race;
    };
    {
      name = "deadlock";
      ranks_hint = 2;
      doc = "head-to-head blocking receives, never satisfied (wait-for cycle)";
      body = deadlock;
    };
    {
      name = "coll_mismatch";
      ranks_hint = 2;
      doc = "rank 0 calls barrier while the others call allgather";
      body = coll_mismatch;
    };
    {
      name = "clean_ring";
      ranks_hint = 2;
      doc = "explicit-source ring shift; certified deadlock-free and deterministic";
      body = clean_ring;
    };
    {
      name = "clean_coll";
      ranks_hint = 2;
      doc = "commutative allreduce + barrier; certified clean";
      body = clean_coll;
    };
    {
      name = "nc_reduce";
      ranks_hint = 3;
      doc = "non-commutative reduction with concurrent contributions (nc-order)";
      body = nc_reduce;
    };
    {
      name = "big_send";
      ranks_hint = 2;
      doc = "large eager send with an unprotected buffer-reuse window";
      body = big_send;
    };
  ]

let find name = List.find_opt (fun p -> p.name = name) all

let names () = List.map (fun p -> p.name) all
