(* Typed datatype descriptors.

   A ['a t] describes how values of type ['a] are laid out on the wire:
   their per-element byte size, their type signature (for send/recv matching
   checks), and pack/unpack functions.  This is the simulator-side analogue
   of MPI_Datatype, and the substrate on which the binding layer's
   compile-time type mapping (paper §III-D) is built:

   - builtins ([int], [float], ...) correspond to MPI's basic types;
   - [record2]..[record5] build gap-skipping struct types from field lists,
     the analogue of MPI_Type_create_struct driven by PFR reflection: the
     layout cannot go out of sync with the data because the fields *are*
     the accessors;
   - [blob] maps a trivially-copyable value to an opaque contiguous byte
     block, the paper's preferred default (§III-D4): one bulk copy,
     alignment gaps included on the wire;
   - [contiguous], [pair], [option_], [create] cover derived and dynamic
     (runtime-sized) types.

   Derived types must be committed before use and freed afterwards; the
   global pool tracks this so tests can assert the absence of resource
   leaks (the paper notes MPL/RWTH-MPI leak committed types). *)

type kind = Builtin | Derived

(* Bulk fast-path kernel for fixed-size, contiguously-encoded element
   types (builtins, [blob], and compositions of them): [bk_write buf pos v]
   stores exactly [elem_size] bytes at [pos]; [bk_read buf pos] loads them.
   [pack_array]/[unpack_array]/[unpack_into] use it to do ONE bounds check
   and buffer reservation for a whole run of elements and a tight
   direct-store loop — no closure dispatch, no [Wire] cursor updates per
   element.  The kernel is chosen once when the type is constructed (for
   builtins, that is commit time: they are born committed), so the
   per-message cost of the dispatch is a single branch. *)
type 'a bulk_kernel = {
  bk_write : Bytes.t -> int -> 'a -> unit;
  bk_read : Bytes.t -> int -> 'a;
}

type 'a t = {
  name : string;
  id : int;
  kind : kind;
  elem_size : int;  (* wire bytes per element *)
  signature : Signature.t;  (* per element *)
  pack : Wire.writer -> 'a -> unit;
  unpack : Wire.reader -> 'a;
  bulk : 'a bulk_kernel option;  (* fast path; [None] = general path *)
}

(* ------------------------------------------------------------------ *)
(* Commit/free pool *)

type pool_entry = {
  pe_name : string;
  pe_kind : kind;
  mutable committed : bool;
  mutable freed : bool;
}

let pool : (int, pool_entry) Hashtbl.t = Hashtbl.create 64

let next_id = ref 0

let fresh_id ~name ~kind =
  let id = !next_id in
  incr next_id;
  Hashtbl.replace pool id
    { pe_name = name; pe_kind = kind; committed = (kind = Builtin); freed = false };
  id

let commit t =
  match Hashtbl.find_opt pool t.id with
  | None -> invalid_arg "Datatype.commit: unknown type"
  | Some e ->
      if e.freed then invalid_arg ("Datatype.commit: type already freed: " ^ t.name);
      e.committed <- true

let free t =
  match Hashtbl.find_opt pool t.id with
  | None -> invalid_arg "Datatype.free: unknown type"
  | Some e ->
      if t.kind = Builtin then invalid_arg "Datatype.free: cannot free builtin";
      if e.freed then invalid_arg ("Datatype.free: double free: " ^ t.name);
      e.freed <- true

let is_committed t =
  match Hashtbl.find_opt pool t.id with
  | None -> false
  | Some e -> e.committed && not e.freed

(* Number of derived types that were committed but never freed; builtins are
   permanently committed and not counted.  Tests use this to detect resource
   leakage (the paper notes that MPL and RWTH-MPI leak committed types). *)
let live_derived_count () =
  Hashtbl.fold
    (fun _id e acc ->
      if e.pe_kind = Derived && e.committed && not e.freed then acc + 1 else acc)
    pool 0

let pool_reset_for_tests () = Hashtbl.reset pool

(* ------------------------------------------------------------------ *)
(* Builtins *)

let builtin ~name ~size ~signature ~pack ~unpack ~bulk =
  {
    name;
    id = fresh_id ~name ~kind:Builtin;
    kind = Builtin;
    elem_size = size;
    signature;
    pack;
    unpack;
    bulk = Some bulk;
  }

(* Each builtin kernel must produce exactly the bytes its [Wire] put/get
   pair would — the fast-path≡general-path qcheck property enforces this. *)

let int : int t =
  builtin ~name:"int" ~size:8
    ~signature:(Signature.of_base Signature.Int64)
    ~pack:Wire.put_int ~unpack:Wire.get_int
    ~bulk:
      {
        bk_write = (fun b p v -> Bytes.set_int64_le b p (Int64.of_int v));
        bk_read = (fun b p -> Int64.to_int (Bytes.get_int64_le b p));
      }

let int32 : int32 t =
  builtin ~name:"int32" ~size:4
    ~signature:(Signature.of_base Signature.Int32)
    ~pack:Wire.put_int32 ~unpack:Wire.get_int32
    ~bulk:
      { bk_write = (fun b p v -> Bytes.set_int32_le b p v); bk_read = Bytes.get_int32_le }

let int64 : int64 t =
  builtin ~name:"int64" ~size:8
    ~signature:(Signature.of_base Signature.Int64)
    ~pack:Wire.put_int64 ~unpack:Wire.get_int64
    ~bulk:
      { bk_write = (fun b p v -> Bytes.set_int64_le b p v); bk_read = Bytes.get_int64_le }

let float : float t =
  builtin ~name:"float" ~size:8
    ~signature:(Signature.of_base Signature.Float64)
    ~pack:Wire.put_float ~unpack:Wire.get_float
    ~bulk:
      {
        bk_write = (fun b p v -> Bytes.set_int64_le b p (Int64.bits_of_float v));
        bk_read = (fun b p -> Int64.float_of_bits (Bytes.get_int64_le b p));
      }

let float32 : float t =
  builtin ~name:"float32" ~size:4
    ~signature:(Signature.of_base Signature.Float32)
    ~pack:Wire.put_float32 ~unpack:Wire.get_float32
    ~bulk:
      {
        bk_write = (fun b p v -> Bytes.set_int32_le b p (Int32.bits_of_float v));
        bk_read = (fun b p -> Int32.float_of_bits (Bytes.get_int32_le b p));
      }

let char_kernel =
  { bk_write = (fun b p c -> Bytes.unsafe_set b p c); bk_read = Bytes.get }

let char : char t =
  builtin ~name:"char" ~size:1
    ~signature:(Signature.of_base Signature.Char)
    ~pack:Wire.put_char ~unpack:Wire.get_char ~bulk:char_kernel

let byte : char t =
  builtin ~name:"byte" ~size:1
    ~signature:(Signature.of_base Signature.Blob)
    ~pack:Wire.put_char ~unpack:Wire.get_char ~bulk:char_kernel

let bool : bool t =
  builtin ~name:"bool" ~size:1
    ~signature:(Signature.of_base Signature.Bool)
    ~pack:Wire.put_bool ~unpack:Wire.get_bool
    ~bulk:
      {
        bk_write = (fun b p v -> Bytes.set b p (if v then '\001' else '\000'));
        bk_read =
          (fun b p ->
            match Bytes.get b p with
            | '\000' -> false
            | '\001' -> true
            | c ->
                raise
                  (Wire.Decode_error { what = "bool must be 0 or 1"; got = Char.code c }));
      }

(* ------------------------------------------------------------------ *)
(* Derived-type constructors *)

(* Internal constructor: derived type with an explicit (optional) bulk
   kernel.  The public [create] takes opaque pack/unpack closures, about
   which nothing can be assumed, so it always gets the general path. *)
let create_k ~name ~size ~signature ~pack ~unpack ~bulk =
  if size < 0 then invalid_arg "Datatype.create: negative size";
  {
    name;
    id = fresh_id ~name ~kind:Derived;
    kind = Derived;
    elem_size = size;
    signature;
    pack;
    unpack;
    bulk;
  }

(* Fully custom ("dynamic", §III-D2): the caller supplies everything, with
   sizes possibly known only at runtime. *)
let create ~name ~size ~signature ~pack ~unpack =
  create_k ~name ~size ~signature ~pack ~unpack ~bulk:None

let contiguous ~count (base : 'a t) : 'a array t =
  if count < 0 then invalid_arg "Datatype.contiguous: negative count";
  let name = Printf.sprintf "contiguous(%d,%s)" count base.name in
  let length_check (a : 'a array) =
    if Array.length a <> count then
      invalid_arg
        (Printf.sprintf "%s: expected %d elements, got %d" name count (Array.length a))
  in
  let pack w (a : 'a array) =
    length_check a;
    for i = 0 to count - 1 do
      base.pack w (Array.unsafe_get a i)
    done
  in
  let unpack r = Array.init count (fun _ -> base.unpack r) in
  (* A fixed run of a bulk-capable base is itself bulk-capable: the block
     kernel inherits the per-element stores. *)
  let bulk =
    match base.bulk with
    | None -> None
    | Some k ->
        let sz = base.elem_size in
        Some
          {
            bk_write =
              (fun buf pos (a : 'a array) ->
                length_check a;
                for i = 0 to count - 1 do
                  k.bk_write buf (pos + (i * sz)) (Array.unsafe_get a i)
                done);
            bk_read =
              (fun buf pos -> Array.init count (fun i -> k.bk_read buf (pos + (i * sz))));
          }
  in
  create_k ~name ~size:(count * base.elem_size)
    ~signature:(Signature.repeat base.signature count)
    ~pack ~unpack ~bulk

let pair (a : 'a t) (b : 'b t) : ('a * 'b) t =
  let name = Printf.sprintf "pair(%s,%s)" a.name b.name in
  let bulk =
    match (a.bulk, b.bulk) with
    | Some ka, Some kb ->
        let sza = a.elem_size in
        Some
          {
            bk_write =
              (fun buf pos (x, y) ->
                ka.bk_write buf pos x;
                kb.bk_write buf (pos + sza) y);
            bk_read = (fun buf pos -> (ka.bk_read buf pos, kb.bk_read buf (pos + sza)));
          }
    | _ -> None
  in
  create_k ~name ~size:(a.elem_size + b.elem_size)
    ~signature:(Signature.append a.signature b.signature)
    ~pack:(fun w (x, y) ->
      a.pack w x;
      b.pack w y)
    ~unpack:(fun r ->
      let x = a.unpack r in
      let y = b.unpack r in
      (x, y))
    ~bulk

let triple (a : 'a t) (b : 'b t) (c : 'c t) : ('a * 'b * 'c) t =
  let name = Printf.sprintf "triple(%s,%s,%s)" a.name b.name c.name in
  create ~name ~size:(a.elem_size + b.elem_size + c.elem_size)
    ~signature:(Signature.concat [ a.signature; b.signature; c.signature ])
    ~pack:(fun w (x, y, z) ->
      a.pack w x;
      b.pack w y;
      c.pack w z)
    ~unpack:(fun r ->
      let x = a.unpack r in
      let y = b.unpack r in
      let z = c.unpack r in
      (x, y, z))

(* Fixed-size option: a presence byte plus space for the payload either way,
   so that elements stay fixed-size (absent payloads are zero padding). *)
let option_ (base : 'a t) : 'a option t =
  let name = Printf.sprintf "option(%s)" base.name in
  create ~name
    ~size:(1 + base.elem_size)
    ~signature:(Signature.append (Signature.of_base Signature.Bool)
                  (Signature.of_base ~count:base.elem_size Signature.Blob))
    ~pack:(fun w v ->
      match v with
      | None ->
          Wire.put_bool w false;
          Wire.put_padding w base.elem_size
      | Some x ->
          Wire.put_bool w true;
          let before = Wire.length w in
          base.pack w x;
          let written = Wire.length w - before in
          if written <> base.elem_size then
            invalid_arg (name ^ ": payload size mismatch");
          ())
    ~unpack:(fun r ->
      if Wire.get_bool r then Some (base.unpack r)
      else begin
        Wire.skip r base.elem_size;
        None
      end)

(* ------------------------------------------------------------------ *)
(* Struct types from field lists (the PFR/struct_type analogue) *)

type ('r, 'a) field = {
  fname : string;
  ftype : 'a t;
  fget : 'r -> 'a;
  fpad_after : int;  (* alignment gap after this field (not sent) *)
}

let field ?(pad_after = 0) fname ftype fget =
  if pad_after < 0 then invalid_arg "Datatype.field: negative padding";
  { fname; ftype; fget; fpad_after = pad_after }

(* Gap-skipping struct type: packs field by field, omitting padding from
   the wire — the analogue of MPI_Type_create_struct. *)
let record2 name (fa : ('r, 'a) field) (fb : ('r, 'b) field) (make : 'a -> 'b -> 'r) : 'r t =
  create ~name
    ~size:(fa.ftype.elem_size + fb.ftype.elem_size)
    ~signature:(Signature.append fa.ftype.signature fb.ftype.signature)
    ~pack:(fun w r ->
      fa.ftype.pack w (fa.fget r);
      fb.ftype.pack w (fb.fget r))
    ~unpack:(fun rd ->
      let a = fa.ftype.unpack rd in
      let b = fb.ftype.unpack rd in
      make a b)

let record3 name (fa : ('r, 'a) field) (fb : ('r, 'b) field) (fc : ('r, 'c) field)
    (make : 'a -> 'b -> 'c -> 'r) : 'r t =
  create ~name
    ~size:(fa.ftype.elem_size + fb.ftype.elem_size + fc.ftype.elem_size)
    ~signature:
      (Signature.concat [ fa.ftype.signature; fb.ftype.signature; fc.ftype.signature ])
    ~pack:(fun w r ->
      fa.ftype.pack w (fa.fget r);
      fb.ftype.pack w (fb.fget r);
      fc.ftype.pack w (fc.fget r))
    ~unpack:(fun rd ->
      let a = fa.ftype.unpack rd in
      let b = fb.ftype.unpack rd in
      let c = fc.ftype.unpack rd in
      make a b c)

let record4 name (fa : ('r, 'a) field) (fb : ('r, 'b) field) (fc : ('r, 'c) field)
    (fd : ('r, 'd) field) (make : 'a -> 'b -> 'c -> 'd -> 'r) : 'r t =
  create ~name
    ~size:
      (fa.ftype.elem_size + fb.ftype.elem_size + fc.ftype.elem_size + fd.ftype.elem_size)
    ~signature:
      (Signature.concat
         [ fa.ftype.signature; fb.ftype.signature; fc.ftype.signature; fd.ftype.signature ])
    ~pack:(fun w r ->
      fa.ftype.pack w (fa.fget r);
      fb.ftype.pack w (fb.fget r);
      fc.ftype.pack w (fc.fget r);
      fd.ftype.pack w (fd.fget r))
    ~unpack:(fun rd ->
      let a = fa.ftype.unpack rd in
      let b = fb.ftype.unpack rd in
      let c = fc.ftype.unpack rd in
      let d = fd.ftype.unpack rd in
      make a b c d)

let record5 name (fa : ('r, 'a) field) (fb : ('r, 'b) field) (fc : ('r, 'c) field)
    (fd : ('r, 'd) field) (fe : ('r, 'e) field) (make : 'a -> 'b -> 'c -> 'd -> 'e -> 'r) :
    'r t =
  create ~name
    ~size:
      (fa.ftype.elem_size + fb.ftype.elem_size + fc.ftype.elem_size + fd.ftype.elem_size
     + fe.ftype.elem_size)
    ~signature:
      (Signature.concat
         [
           fa.ftype.signature;
           fb.ftype.signature;
           fc.ftype.signature;
           fd.ftype.signature;
           fe.ftype.signature;
         ])
    ~pack:(fun w r ->
      fa.ftype.pack w (fa.fget r);
      fb.ftype.pack w (fb.fget r);
      fc.ftype.pack w (fc.fget r);
      fd.ftype.pack w (fd.fget r);
      fe.ftype.pack w (fe.fget r))
    ~unpack:(fun rd ->
      let a = fa.ftype.unpack rd in
      let b = fb.ftype.unpack rd in
      let c = fc.ftype.unpack rd in
      let d = fd.ftype.unpack rd in
      let e = fe.ftype.unpack rd in
      make a b c d e)

(* Gap-including struct type: like record*, but alignment gaps are sent as
   zero padding in a single pass — the trivially-copyable "contiguous bytes"
   default of §III-D4.  Wire size includes padding; the signature is Blob
   so it matches any equally-sized blob. *)
let record3_with_gaps name (fa : ('r, 'a) field) (fb : ('r, 'b) field) (fc : ('r, 'c) field)
    (make : 'a -> 'b -> 'c -> 'r) : 'r t =
  let size =
    fa.ftype.elem_size + fa.fpad_after + fb.ftype.elem_size + fb.fpad_after
    + fc.ftype.elem_size + fc.fpad_after
  in
  create ~name ~size
    ~signature:(Signature.of_base ~count:size Signature.Blob)
    ~pack:(fun w r ->
      fa.ftype.pack w (fa.fget r);
      Wire.put_padding w fa.fpad_after;
      fb.ftype.pack w (fb.fget r);
      Wire.put_padding w fb.fpad_after;
      fc.ftype.pack w (fc.fget r);
      Wire.put_padding w fc.fpad_after)
    ~unpack:(fun rd ->
      let a = fa.ftype.unpack rd in
      Wire.skip rd fa.fpad_after;
      let b = fb.ftype.unpack rd in
      Wire.skip rd fb.fpad_after;
      let c = fc.ftype.unpack rd in
      Wire.skip rd fc.fpad_after;
      make a b c)

(* Opaque contiguous byte block for trivially-copyable values: a single bulk
   write/read per element.  [write buf pos v] must fill exactly [size]
   bytes at [pos]; [read buf pos] must read exactly [size] bytes. *)
let blob ~name ~size ~(write : Bytes.t -> int -> 'a -> unit) ~(read : Bytes.t -> int -> 'a) :
    'a t =
  if size <= 0 then invalid_arg "Datatype.blob: size must be positive";
  (* Single-pass, zero-copy: the value is written directly into (and read
     directly from) the wire buffer. *)
  let pack w v =
    let buf, pos = Wire.reserve w size in
    write buf pos v
  in
  let unpack r =
    let buf, pos = Wire.read_raw r size in
    read buf pos
  in
  create_k ~name ~size
    ~signature:(Signature.of_base ~count:size Signature.Blob)
    ~pack ~unpack
    ~bulk:(Some { bk_write = write; bk_read = read })

(* ------------------------------------------------------------------ *)
(* Array pack/unpack helpers used by the runtime *)

(* Each helper dispatches ONCE on the type's kernel: the fast path does a
   single [Wire.reserve]/[read_raw] for the whole run and a tight
   direct-store loop; the general path keeps per-element closure calls
   (derived/struct types, dynamic sizes). *)

let pack_array (t : 'a t) (w : Wire.writer) (a : 'a array) ~pos ~count =
  if pos < 0 || count < 0 || pos + count > Array.length a then
    invalid_arg "Datatype.pack_array: range out of bounds";
  match t.bulk with
  | Some k ->
      let sz = t.elem_size in
      let buf, base = Wire.reserve w (count * sz) in
      let off = ref base in
      for i = pos to pos + count - 1 do
        k.bk_write buf !off (Array.unsafe_get a i);
        off := !off + sz
      done
  | None ->
      for i = pos to pos + count - 1 do
        t.pack w (Array.unsafe_get a i)
      done

let unpack_array (t : 'a t) (r : Wire.reader) ~count : 'a array =
  if count < 0 then invalid_arg "Datatype.unpack_array: negative count";
  match t.bulk with
  | Some k ->
      let sz = t.elem_size in
      let buf, base = Wire.read_raw r (count * sz) in
      Array.init count (fun i -> k.bk_read buf (base + (i * sz)))
  | None -> Array.init count (fun _ -> t.unpack r)

let unpack_into (t : 'a t) (r : Wire.reader) (dst : 'a array) ~pos ~count =
  if pos < 0 || count < 0 || pos + count > Array.length dst then
    invalid_arg "Datatype.unpack_into: range out of bounds";
  match t.bulk with
  | Some k ->
      let sz = t.elem_size in
      let buf, base = Wire.read_raw r (count * sz) in
      let off = ref base in
      for i = pos to pos + count - 1 do
        Array.unsafe_set dst i (k.bk_read buf !off);
        off := !off + sz
      done
  | None ->
      for i = pos to pos + count - 1 do
        Array.unsafe_set dst i (t.unpack r)
      done

(* Whether the type has a bulk kernel (i.e. takes the fast path). *)
let bulk_available t = t.bulk <> None

(* The same type with its kernel stripped: forced onto the general path.
   Benchmarks and the fast≡general equivalence property use this as the
   "before" side; it is NOT registered as a separate pool entry (same id,
   same commit state). *)
let without_bulk (t : 'a t) : 'a t = { t with bulk = None }

(* Scoped commit: commit [t] if needed, run [f t], and free [t] again if
   we were the ones to commit it.  This is how the binding layer manages
   derived types transparently (Construct-On-First-Use with guaranteed
   cleanup, §III-D1) while the raw layer keeps MPI's manual discipline. *)
let with_committed (t : 'a t) (f : 'a t -> 'b) : 'b =
  if t.kind = Builtin || is_committed t then f t
  else begin
    commit t;
    Fun.protect ~finally:(fun () -> free t) (fun () -> f t)
  end

(* A placeholder element decoded from zero bytes; used to seed freshly
   allocated receive arrays when the receiver holds no local element of the
   type.  All combinators in this module decode zero bytes successfully. *)
let zero_elem (t : 'a t) : 'a =
  let w = Wire.create_writer ~capacity:(Stdlib.max 1 t.elem_size) () in
  Wire.put_padding w t.elem_size;
  t.unpack (Wire.reader_of_bytes (Wire.contents w))

let size_of_count (t : 'a t) n = t.elem_size * n

let signature_of_count (t : 'a t) n = Signature.repeat t.signature n

let name t = t.name

let elem_size t = t.elem_size

(* A pre-compiled pack/unpack plan for a (type, count) pair.  Persistent
   requests resolve byte size and wire signature once at init so the
   per-cycle path passes cached values instead of recomputing them
   ([signature_of_count] allocates a fresh signature per call). *)
type 'a plan = {
  plan_dt : 'a t;
  plan_count : int;
  plan_bytes : int;
  plan_signature : Signature.t;
}

let plan (t : 'a t) ~count =
  if count < 0 then Errdefs.usage_error "Datatype.plan: negative count %d" count;
  {
    plan_dt = t;
    plan_count = count;
    plan_bytes = size_of_count t count;
    plan_signature = signature_of_count t count;
  }
