(* Byte-level wire format.

   Every simulated message is really packed into bytes through its datatype
   descriptor and unpacked at the receiver, so datatype layout decisions
   (paper §III-D) have genuine CPU and byte-volume consequences.

   All integers are little-endian.  [writer] is a growable buffer; [reader]
   is a bounds-checked cursor over immutable bytes. *)

exception Underflow of { wanted : int; available : int }

(* A syntactically invalid encoding (e.g. a boolean byte that is neither 0
   nor 1).  Like [Underflow], this is a wire-decode error — corrupt or
   mistyped input — not a programming error at the call site, so it gets
   its own exception rather than [Invalid_argument]. *)
exception Decode_error of { what : string; got : int }

let () =
  Printexc.register_printer (function
    | Underflow { wanted; available } ->
        Some (Printf.sprintf "Wire.Underflow: wanted %d bytes, %d available" wanted available)
    | Decode_error { what; got } ->
        Some (Printf.sprintf "Wire.Decode_error: %s (byte %d)" what got)
    | _ -> None)

type writer = { mutable buf : Bytes.t; mutable len : int }

let create_writer ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Wire.create_writer: capacity < 1";
  { buf = Bytes.create capacity; len = 0 }

let length w = w.len

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf * 2) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit w.buf 0 nb 0 w.len;
    w.buf <- nb
  end

let put_char w c =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len c;
  w.len <- w.len + 1

let put_uint8 w i =
  if i < 0 || i > 255 then invalid_arg "Wire.put_uint8";
  put_char w (Char.unsafe_chr i)

let put_int64 w (v : int64) =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len v;
  w.len <- w.len + 8

let put_int w (v : int) = put_int64 w (Int64.of_int v)

let put_int32 w (v : int32) =
  ensure w 4;
  Bytes.set_int32_le w.buf w.len v;
  w.len <- w.len + 4

let put_float w (v : float) = put_int64 w (Int64.bits_of_float v)

let put_float32 w (v : float) = put_int32 w (Int32.bits_of_float v)

let put_bool w b = put_uint8 w (if b then 1 else 0)

let put_bytes w (b : Bytes.t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Wire.put_bytes";
  ensure w len;
  Bytes.blit b pos w.buf w.len len;
  w.len <- w.len + len

let put_string w (s : string) =
  let len = String.length s in
  ensure w len;
  Bytes.blit_string s 0 w.buf w.len len;
  w.len <- w.len + len

(* Pad with [n] zero bytes (used to model alignment gaps, §III-D4). *)
let put_padding w n =
  if n < 0 then invalid_arg "Wire.put_padding";
  ensure w n;
  Bytes.fill w.buf w.len n '\000';
  w.len <- w.len + n

(* Reserve [len] bytes and return (storage, offset) for in-place writing —
   the single-bulk-copy path for trivially-copyable types. *)
let reserve w len : Bytes.t * int =
  if len < 0 then invalid_arg "Wire.reserve";
  ensure w len;
  let pos = w.len in
  w.len <- pos + len;
  (w.buf, pos)

let contents w = Bytes.sub w.buf 0 w.len

(* Hand out the underlying storage without copying; only valid as long as
   the writer is not reused.  The runtime uses this to avoid double copies
   when injecting messages. *)
let unsafe_contents w = (w.buf, w.len)

let reset w = w.len <- 0

type reader = { data : Bytes.t; limit : int; mutable pos : int }

let reader_of_bytes ?(pos = 0) ?len (data : Bytes.t) =
  let limit =
    match len with None -> Bytes.length data | Some l -> pos + l
  in
  if pos < 0 || limit > Bytes.length data || pos > limit then
    invalid_arg "Wire.reader_of_bytes";
  { data; limit; pos }

let remaining r = r.limit - r.pos

let check r n = if r.pos + n > r.limit then raise (Underflow { wanted = n; available = remaining r })

let get_char r =
  check r 1;
  let c = Bytes.unsafe_get r.data r.pos in
  r.pos <- r.pos + 1;
  c

let get_uint8 r = Char.code (get_char r)

let get_int64 r =
  check r 8;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let get_int r = Int64.to_int (get_int64 r)

let get_int32 r =
  check r 4;
  let v = Bytes.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  v

let get_float r = Int64.float_of_bits (get_int64 r)

let get_float32 r = Int32.float_of_bits (get_int32 r)

let get_bool r =
  match get_uint8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error { what = "bool must be 0 or 1"; got = n })

let get_bytes r len =
  check r len;
  let b = Bytes.sub r.data r.pos len in
  r.pos <- r.pos + len;
  b

let get_string r len =
  check r len;
  let s = Bytes.sub_string r.data r.pos len in
  r.pos <- r.pos + len;
  s

let skip r n =
  if n < 0 then invalid_arg "Wire.skip";
  check r n;
  r.pos <- r.pos + n

(* Zero-copy read access: returns (storage, offset) of the next [len]
   bytes and advances the cursor.  The storage must not be mutated. *)
let read_raw r len : Bytes.t * int =
  if len < 0 then invalid_arg "Wire.read_raw";
  check r len;
  let pos = r.pos in
  r.pos <- pos + len;
  (r.data, pos)

(* ------------------------------------------------------------------ *)
(* Writer-storage pool.

   The runtime keeps one pool per rank: a send packs into a pooled buffer,
   [unsafe_contents] transfers the storage into the injected message
   without a copy, and the consumer returns it with [recycle] once the
   payload has been unpacked.  Ownership rule: between acquire and recycle
   the storage belongs to exactly one message; after recycle any slice of
   it is dead.

   The pool is bounded both in buffer count and in retained buffer size so
   a single huge transfer cannot pin memory for the rest of the run.

   Domain safety: under the multicore scheduler the per-rank ownership
   invariant keeps a pool single-domain *almost* always — the exception is
   [recycle], which the receiver calls on the sender-side pool's buffer
   after hand-off (the runtime recycles into the receiver's own pool, but
   the API itself must not rely on that).  [set_threadsafe] arms a
   per-pool mutex guarding the free list; sequential pools never touch
   it. *)

type pool = {
  mutable free : Bytes.t list;
  mutable n_free : int;
  max_buffers : int;
  max_retain : int;  (* buffers larger than this are dropped on recycle *)
  mutable hits : int;  (* acquires served from the free list *)
  mutable misses : int;  (* acquires that had to allocate *)
  p_lock : Mutex.t;
  mutable p_ts : bool;  (* lock free-list operations (pool crosses domains) *)
}

let create_pool ?(max_buffers = 8) ?(max_retain = 1 lsl 24) () =
  if max_buffers < 0 || max_retain < 1 then invalid_arg "Wire.create_pool";
  {
    free = [];
    n_free = 0;
    max_buffers;
    max_retain;
    hits = 0;
    misses = 0;
    p_lock = Mutex.create ();
    p_ts = false;
  }

let set_pool_threadsafe pool = pool.p_ts <- true

let[@inline] with_pool_lock pool f =
  if not pool.p_ts then f ()
  else begin
    Mutex.lock pool.p_lock;
    let v = f () in
    Mutex.unlock pool.p_lock;
    v
  end

(* A fresh writer over pooled storage.  The hint only sizes a miss; a
   pooled buffer grows on demand like any other writer. *)
let acquire pool ~capacity =
  with_pool_lock pool (fun () ->
      match pool.free with
      | b :: rest ->
          pool.free <- rest;
          pool.n_free <- pool.n_free - 1;
          pool.hits <- pool.hits + 1;
          { buf = b; len = 0 }
      | [] ->
          pool.misses <- pool.misses + 1;
          create_writer ~capacity:(max 1 capacity) ())

let recycle pool (b : Bytes.t) =
  with_pool_lock pool (fun () ->
      if pool.n_free < pool.max_buffers && Bytes.length b <= pool.max_retain then begin
        pool.free <- b :: pool.free;
        pool.n_free <- pool.n_free + 1
      end)

(* Pre-warm the pool so the next [acquire] is hit-and-fits: [acquire]
   pops the head of the free list whatever its size, so the guarantee is
   specifically about the *head* buffer.  If the head is already large
   enough nothing happens; a too-small head in a full pool is replaced
   (dropping the small buffer) rather than shadowed.  Persistent requests
   call this at init so the per-cycle pack never grows a writer. *)
let preheat pool ~capacity =
  with_pool_lock pool (fun () ->
      let capacity = max 1 (min capacity pool.max_retain) in
      match pool.free with
      | b :: _ when Bytes.length b >= capacity -> ()
      | _ :: rest when pool.n_free >= pool.max_buffers ->
          pool.free <- Bytes.create capacity :: rest
      | free ->
          pool.free <- Bytes.create capacity :: free;
          pool.n_free <- pool.n_free + 1)

let pool_stats pool = (pool.hits, pool.misses, pool.n_free)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
   slice.  The chaos plane's reliable-delivery layer frames every payload
   with this checksum so bit corruption is detected at the receiver
   instead of silently unpacking garbage.  The table is built lazily: a
   run that never enables faults pays nothing. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 (b : Bytes.t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Wire.crc32";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
