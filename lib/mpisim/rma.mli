(** One-sided communication (RMA windows) with two synchronization modes:

    - active target: issue {!put}/{!get}/{!accumulate} between two
      {!fence} calls; the closing fence applies every rank's pending
      operations in deterministic (origin rank, issue order) and
      synchronizes;
    - passive target: {!lock} an exclusive or shared epoch on one target,
      issue operations against it, and {!unlock} to apply them — without
      the target participating.  {!with_locked} is the exception-safe
      guard.

    Cost model: each operation charges its origin one message
    (alpha + beta * bytes); gets additionally wait a round trip
    (2*alpha + beta * bytes) at the closing fence or unlock; a lock
    acquisition waits a round trip to the target.

    Bounds are validated when an operation is issued: an out-of-range
    target access raises ERR_RMA_RANGE at the call site (and bumps the
    [check.rma_range] counter under the sanitizer). *)

type 'a t

(** Create a window exposing [local] for one-sided access.  Collective;
    returns once every rank has registered its exposure.  The array
    remains owned by its rank; remote access goes through the window. *)
val create : Comm.t -> 'a Datatype.t -> 'a array -> 'a t

(** Queue a put of [data] into [target]'s exposure at [target_pos];
    applied at the next {!fence}, or at {!unlock} inside a lock epoch. *)
val put : 'a t -> target:int -> target_pos:int -> 'a array -> unit

(** Queue a get of [count] elements from [target]'s exposure into [into]
    at [into_pos]; the data is valid after the next {!fence} (or
    {!unlock}). *)
val get : 'a t -> target:int -> target_pos:int -> count:int -> 'a array -> into_pos:int -> unit

(** Queue an accumulate of [data] into [target]'s exposure under the
    reduction operator.  Well-defined under concurrent accumulates (all
    are applied in the deterministic order). *)
val accumulate : 'a t -> target:int -> target_pos:int -> 'a Reduce_op.t -> 'a array -> unit

(** Close the active-target access epoch: apply all pending operations
    and synchronize.  Collective.  Raises if a lock epoch is open. *)
val fence : 'a t -> unit

(** {1 Passive target (lock/unlock epochs)} *)

(** Open a passive-target epoch on [target] ([exclusive] defaults to
    [true]); blocks cooperatively until acquirable.  A shared lock
    tolerates other shared holders.  One open epoch per window per
    origin; operations issued while it is open must address [target]. *)
val lock : ?exclusive:bool -> 'a t -> target:int -> unit

(** Close the open epoch: apply this origin's operations in issue order
    and release the lock. *)
val unlock : 'a t -> unit

(** [with_locked t ~target f] runs [f] inside a lock epoch on [target];
    the epoch is closed on any exit, including exceptions. *)
val with_locked : ?exclusive:bool -> 'a t -> target:int -> (unit -> 'b) -> 'b

(** {1 Local access and lifetime} *)

(** This rank's exposed array (direct local access; observe remote writes
    only after a synchronization). *)
val local : 'a t -> 'a array

(** Free the window.  Collective.  The last rank unregisters the shared
    state from the global registry, so repeated create/free cycles hold
    no residual memory.  Raises on double free or with a lock epoch
    open. *)
val free : 'a t -> unit

(** (live windows, tracked contexts) in the global registry — a test
    hook for asserting create/free balance. *)
val registry_stats : unit -> int * int
