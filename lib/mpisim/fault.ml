(* Process-failure injection (the substrate for the ULFM plugin, §V-B).

   A rank can fail itself with [die]; other ranks observe the failure as
   ERR_PROC_FAILED when they next depend on it (receives from it,
   collectives with it).  External test harnesses can fail a rank with
   [fail_world_rank]; the victim's fiber raises [Runtime.Process_killed] at
   its next runtime operation. *)

(* Terminate the calling rank as a process failure.  Never returns. *)
let die comm : 'a =
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  Runtime.kill rt me;
  raise (Runtime.Process_killed me)

(* Mark a rank as failed from outside (e.g. a failure-injection schedule).
   A running victim observes it at its next MPI operation; a victim that
   is parked (blocked in a receive that can no longer be satisfied) is
   woken and discontinued by the scheduler's wake check on the next pass,
   so killing a blocked rank never turns into a deadlock report. *)
let fail_world_rank rt ~world_rank =
  if world_rank < 0 || world_rank >= rt.Runtime.size then
    Errdefs.usage_error "fail_world_rank: invalid rank %d" world_rank;
  Runtime.kill rt world_rank

let is_kill_exn = function Runtime.Process_killed _ -> true | _ -> false

let failed_ranks rt =
  let acc = ref [] in
  for r = rt.Runtime.size - 1 downto 0 do
    if Runtime.is_failed rt r then acc := r :: !acc
  done;
  !acc
