(* Process exit codes shared by every repro_cli subcommand.

   One registry so the CI scripts (and the --help text) have a single
   source of truth:

     0  success — clean run, no findings, no regression
     1  violation — a finding the run was asked to look for: a failed
        bench-diff gate, an analyzer race report, a model-checker
        violation, a fixture that did NOT produce its expected violation
     2  file error — unreadable/corrupt input or unwritable output
     3  clean failure — the simulated program failed in a *well-defined*
        way under fault injection (ERR_PROC_FAILED and friends with a
        replayable chaos log); distinct from 1 so chaos CI can accept
        "survived or failed cleanly" while still rejecting violations *)

let ok = 0

let violation = 1

let file_error = 2

let clean_failure = 3

let describe = function
  | 0 -> "success"
  | 1 -> "violation found (race / regression / model-checker finding)"
  | 2 -> "file error (unreadable, corrupt or unwritable)"
  | 3 -> "clean failure under fault injection (replayable chaos log)"
  | _ -> "unknown"
