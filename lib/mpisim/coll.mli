(** Blocking collective operations, implemented with real algorithms on
    top of the point-to-point layer (binomial trees, Bruck concatenation,
    ring exchange, pairwise exchange, recursive halving/doubling,
    Hillis-Steele prefix), so modelled cost emerges from each algorithm's
    message pattern.

    Operations with more than one algorithm (allreduce, allgather, bcast,
    reduce_scatter) consult {!Coll_algo.choose} per call: selection is
    keyed on payload bytes and communicator size against the thresholds
    in [Net_model.tuning], can be pinned via [MPISIM_COLL_ALGO] or
    {!Coll_algo.set_overrides}, and is observable through the
    [coll.algo.<op>.<algo>] stats counters and an [<op>.<algo>] trace
    span nested in the collective's span.

    This layer mirrors MPI's semantics: variable-size collectives require
    counts (and, for alltoallv, displacements) as the standard does —
    computing sensible defaults is the binding layer's job (paper §III-A).

    Every collective raises ERR_REVOKED / ERR_PROC_FAILED per ULFM
    semantics when the communicator is revoked or a member has failed,
    and records its name in the strong-debug-mode trace. *)

(** Exclusive prefix sum of a counts array (displacement helper). *)
val exclusive_prefix_sum : int array -> int array

(** {1 Synchronization} *)

(** Dissemination barrier, O(log p) rounds. *)
val barrier : Comm.t -> unit

(** Non-blocking barrier, completed through the returned request.  The
    NBX sparse all-to-all builds on it. *)
val ibarrier : Comm.t -> Request.t

(** {1 One-to-all / all-to-one} *)

(** Broadcast.  The root passes [Some data]; all ranks return the
    payload.  Binomial tree, or binomial scatter + ring allgather for
    long messages. *)
val bcast : Comm.t -> 'a Datatype.t -> root:int -> 'a array option -> 'a array

(** Equal-count gather; the root returns the rank-ordered concatenation,
    others the empty array. *)
val gather : Comm.t -> 'a Datatype.t -> root:int -> 'a array -> 'a array

(** Variable-count gather; the root must supply [recv_counts]. *)
val gatherv :
  Comm.t -> 'a Datatype.t -> root:int -> ?recv_counts:int array -> 'a array -> 'a array

(** Equal-count scatter; the root passes [Some data] with length divisible
    by the communicator size. *)
val scatter : Comm.t -> 'a Datatype.t -> root:int -> 'a array option -> 'a array

(** Variable-count scatter; the root must supply [send_counts] and the
    data. *)
val scatterv :
  Comm.t ->
  'a Datatype.t ->
  root:int ->
  ?send_counts:int array ->
  'a array option ->
  'a array

(** {1 All-to-all} *)

(** Equal-count allgather: Bruck concatenation (O(log p) rounds), or
    ring for long messages. *)
val allgather : Comm.t -> 'a Datatype.t -> 'a array -> 'a array

(** Ring allgather: same result, p-1 rounds; kept for the
    algorithm-choice ablation. *)
val allgather_ring : Comm.t -> 'a Datatype.t -> 'a array -> 'a array

(** Variable-count allgather (ring); [recv_counts] required on every rank
    as in MPI. *)
val allgatherv : Comm.t -> 'a Datatype.t -> recv_counts:int array -> 'a array -> 'a array

(** Uniform all-to-all (pairwise exchange); data length must be a multiple
    of the communicator size. *)
val alltoall : Comm.t -> 'a Datatype.t -> 'a array -> 'a array

(** Variable all-to-all.  All counts and displacements are required, as in
    MPI.  Empty pairs are skipped, but every rank pays the O(p) count-scan
    cost (paper §V-A). *)
val alltoallv :
  Comm.t ->
  'a Datatype.t ->
  send_counts:int array ->
  send_displs:int array ->
  recv_counts:int array ->
  recv_displs:int array ->
  'a array ->
  'a array

(** Alltoallw-style exchange: pays per-peer derived-datatype setup and
    exchanges with every peer, empty or not — models why MPL's lowering of
    vector collectives onto alltoallw is slow (paper §II). *)
val alltoallw :
  Comm.t ->
  'a Datatype.t ->
  send_counts:int array ->
  recv_counts:int array ->
  'a array ->
  'a array

(** {1 Reductions} *)

(** Elementwise reduction to the root: binomial tree for commutative
    operations, gather + rank-ordered fold otherwise. *)
val reduce : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> root:int -> 'a array -> 'a array

(** Elementwise reduction delivered to every rank: recursive doubling
    for short messages, Rabenseifner (recursive-halving reduce-scatter +
    recursive-doubling allgather) for long commutative ones, and the
    order-safe reduce+bcast lowering for non-commutative operators. *)
val allreduce : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array

(** Inclusive prefix (Hillis-Steele, order-preserving). *)
val scan : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array

(** Exclusive prefix; [None] on rank 0 (undefined in MPI). *)
val exscan : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array option

val allreduce_single : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a -> 'a

val scan_single : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a -> 'a

val exscan_single : Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a -> 'a option

(** {1 Neighborhood collectives (graph topologies, §V-A)} *)

(** Send one block to every out-neighbor; returns one block per
    in-neighbor, in source order.  Requires a topology communicator. *)
val neighbor_allgather : Comm.t -> 'a Datatype.t -> 'a array -> 'a array array

(** Variable-size neighbor exchange: block [i] of the data goes to
    [destinations.(i)]; the result concatenates one block per source. *)
val neighbor_alltoallv :
  Comm.t ->
  'a Datatype.t ->
  send_counts:int array ->
  recv_counts:int array ->
  'a array ->
  'a array

(** {1 Reduce-scatter} *)

(** Elementwise reduction of a [p * count]-element vector whose reduced
    block [r] is delivered to rank [r].  Pairwise exchange (O(n) peak
    buffer) for commutative operators; reduce + scatter otherwise. *)
val reduce_scatter_block :
  Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array

(** Per-rank block sizes: [recv_counts.(r)] reduced elements go to rank
    [r]. *)
val reduce_scatter :
  Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> recv_counts:int array -> 'a array -> 'a array

(** {1 Persistent collectives (MPI-4)}

    [*_init] freezes everything a cycle does not strictly need at init —
    the {!Coll_algo} selection for this (bytes, size) key, the
    [coll.algo.*] counter and profiling handles, working buffers, block
    tables, and a pre-warmed pooled writer — and returns a {!Request.p}
    cycled with {!Request.start}/{!Request.wait_p}.  Buffers are fixed at
    init per MPI persistent semantics; each cycle reads the current
    contents.

    The frozen algorithm (and its counter attribution) is exactly what
    every ad-hoc call with the same signature would pick, because
    {!Coll_algo.choose} only depends on inputs that change between runs.
    A single-rank cycle is fully allocation-free; multi-rank cycles still
    allocate in transport but skip all per-call setup.

    Progress semantics match the non-blocking collectives: the algorithm
    runs inside [wait_p], which every rank must reach each cycle. *)

(** Reduce [src] into [dst] each cycle ([src == dst] for in-place). *)
val allreduce_init :
  Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> src:'a array -> dst:'a array -> Request.p

(** Broadcast the root's [buf] contents into every rank's [buf] each
    cycle.  Unlike {!bcast}, the buffer argument exists on every rank
    (MPI-style), so no count rendezvous is needed. *)
val bcast_init : Comm.t -> 'a Datatype.t -> root:int -> 'a array -> Request.p

(** Reduce [src] and scatter block [r] (of [recv_counts.(r)] elements)
    into [dst] each cycle. *)
val reduce_scatter_init :
  Comm.t ->
  'a Datatype.t ->
  'a Reduce_op.t ->
  recv_counts:int array ->
  src:'a array ->
  dst:'a array ->
  Request.p

(** {1 Non-blocking collectives}

    Progress semantics: as in an MPI implementation without asynchronous
    progress, the collective advances only inside wait/test on the
    returned request (which every rank must reach).  The result cell is
    filled at completion. *)

val ibcast :
  Comm.t -> 'a Datatype.t -> root:int -> 'a array option -> Request.t * 'a array option ref

val iallreduce :
  Comm.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> Request.t * 'a array option ref

val ialltoallv :
  Comm.t ->
  'a Datatype.t ->
  send_counts:int array ->
  send_displs:int array ->
  recv_counts:int array ->
  recv_displs:int array ->
  'a array ->
  Request.t * 'a array option ref

val ireduce_scatter :
  Comm.t ->
  'a Datatype.t ->
  'a Reduce_op.t ->
  recv_counts:int array ->
  'a array ->
  Request.t * 'a array option ref
