(* Metrics registry: counters, gauges and log2-bucketed histograms.

   This generalizes the original flat call/byte profiling table
   ([Profiling] is now a facade over a [Stats.t]): the runtime feeds it
   message-size, message-latency, mailbox-depth and fiber-park-duration
   distributions, and exporters turn it into text or JSON.

   Hot-path discipline: [incr]/[add]/[set]/[observe] never allocate.
   Counters are atomic ints (domain-safe by construction: the multicore
   scheduler bumps them from several domains); gauges are
   single-mutable-float records (word-sized stores never tear under the
   OCaml memory model, so concurrent [set]s are last-writer-wins);
   histogram bucketing is a binary search over a shared power-of-two
   bounds array, and the float moments live in a float array rather than
   record fields so the updates stay box-free.  Histogram observation and
   registration are multi-field updates, so they take a lock — but only
   after {!set_threadsafe} marks the registry as shared between domains;
   sequential runs keep the original lock-free paths. *)

type counter = int Atomic.t

type gauge = { mutable value : float }

(* Bucket i counts values v with bounds.(i-1) < v <= bounds.(i); bucket 0
   counts v <= bounds.(0) (in particular all v <= 0) and the last bucket
   counts overflow beyond the largest bound. *)

let min_exp = -40

let max_exp = 40

let bounds =
  Array.init (max_exp - min_exp + 1) (fun i -> 2. ** float_of_int (min_exp + i))

let n_buckets = Array.length bounds + 1

(* moments layout: [| sum; min; max |] *)
type histogram = {
  counts : int array;
  moments : float array;
  mutable total : int;
  h_lock : Mutex.t;
  mutable h_ts : bool;  (* lock observations (registry is cross-domain) *)
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  (* registered names, newest first; iteration sorts them by name *)
  mutable counter_order : string list;
  mutable gauge_order : string list;
  mutable histogram_order : string list;
  (* Guards registration (the Hashtbls and order lists) and marks new
     histograms as lock-on-observe once [set_threadsafe] was called. *)
  reg_lock : Mutex.t;
  mutable ts : bool;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    counter_order = [];
    gauge_order = [];
    histogram_order = [];
    reg_lock = Mutex.create ();
    ts = false;
  }

(* Flip the registry into cross-domain mode: registration takes the lock
   and every histogram (existing and future) locks its observations.
   Counters are atomic and gauges tear-free either way.  One-way: a
   registry shared once stays guarded for its lifetime. *)
let set_threadsafe t =
  Mutex.lock t.reg_lock;
  t.ts <- true;
  Hashtbl.iter (fun _ h -> h.h_ts <- true) t.histograms;
  Mutex.unlock t.reg_lock

let with_reg_lock t f =
  if not t.ts then f ()
  else begin
    Mutex.lock t.reg_lock;
    match f () with
    | v ->
        Mutex.unlock t.reg_lock;
        v
    | exception e ->
        Mutex.unlock t.reg_lock;
        raise e
  end

let counter t name =
  with_reg_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.replace t.counters name c;
          t.counter_order <- name :: t.counter_order;
          c)

let gauge t name =
  with_reg_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
          let g = { value = 0. } in
          Hashtbl.replace t.gauges name g;
          t.gauge_order <- name :: t.gauge_order;
          g)

let histogram t name =
  with_reg_lock t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              counts = Array.make n_buckets 0;
              moments = [| 0.; infinity; neg_infinity |];
              total = 0;
              h_lock = Mutex.create ();
              h_ts = t.ts;
            }
          in
          Hashtbl.replace t.histograms name h;
          t.histogram_order <- name :: t.histogram_order;
          h)

let incr c = Atomic.incr c

let add c n = ignore (Atomic.fetch_and_add c n : int)

let count c = Atomic.get c

let set g v = g.value <- v

let value g = g.value

(* Index of the smallest bound >= v, or [n_buckets - 1] for overflow. *)
let bucket_of v =
  if v <= bounds.(0) then 0
  else if v > bounds.(Array.length bounds - 1) then n_buckets - 1
  else begin
    let lo = ref 0 and hi = ref (Array.length bounds - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe_unlocked h v =
  h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
  h.total <- h.total + 1;
  h.moments.(0) <- h.moments.(0) +. v;
  if v < h.moments.(1) then h.moments.(1) <- v;
  if v > h.moments.(2) then h.moments.(2) <- v

let observe h v =
  if h.h_ts then begin
    Mutex.lock h.h_lock;
    observe_unlocked h v;
    Mutex.unlock h.h_lock
  end
  else observe_unlocked h v

let observe_int h n = observe h (float_of_int n)

let total h = h.total

let sum h = h.moments.(0)

let min_value h = h.moments.(1)

let max_value h = h.moments.(2)

let mean h = if h.total = 0 then 0. else h.moments.(0) /. float_of_int h.total

(* Non-empty buckets as (lower-exclusive, upper-inclusive, count); the
   first bucket's lower bound is [neg_infinity], the last one's upper
   bound is [infinity]. *)
let buckets h : (float * float * int) list =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then begin
      let lo = if i = 0 then neg_infinity else bounds.(i - 1) in
      let hi = if i = n_buckets - 1 then infinity else bounds.(i) in
      acc := (lo, hi, h.counts.(i)) :: !acc
    end
  done;
  !acc

(* An approximate quantile from the bucket histogram: the upper bound of
   the bucket containing the q-th observation. *)
let quantile h q =
  if h.total = 0 then 0.
  else begin
    let target = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.total))) in
    let seen = ref 0 and result = ref h.moments.(2) and found = ref false in
    Array.iteri
      (fun i c ->
        if not !found then begin
          seen := !seen + c;
          if !seen >= target then begin
            found := true;
            result := (if i = n_buckets - 1 then h.moments.(2) else bounds.(i))
          end
        end)
      h.counts;
    !result
  end

(* ------------------------------------------------------------------ *)
(* Reporting *)

let default_fmt v =
  if Float.abs v >= 1e4 || (Float.abs v < 1e-3 && v <> 0.) then Printf.sprintf "%.3e" v
  else Printf.sprintf "%g" v

let fmt_bytes v =
  if v < 0. then Printf.sprintf "%g" v
  else if v < 1024. then Printf.sprintf "%.0fB" v
  else if v < 1024. *. 1024. then Printf.sprintf "%.1fKiB" (v /. 1024.)
  else if v < 1024. *. 1024. *. 1024. then Printf.sprintf "%.1fMiB" (v /. (1024. *. 1024.))
  else Printf.sprintf "%.1fGiB" (v /. (1024. *. 1024. *. 1024.))

let fmt_seconds v =
  if Float.abs v = infinity || Float.is_nan v then Printf.sprintf "%g" v
  else Sim_time.to_string v

let pp_histogram ?(fmt = default_fmt) ppf h =
  if h.total = 0 then Format.fprintf ppf "  (empty)@."
  else begin
    Format.fprintf ppf "  n=%d mean=%s min=%s max=%s p50<=%s p99<=%s@." h.total
      (fmt (mean h)) (fmt (min_value h)) (fmt (max_value h)) (fmt (quantile h 0.5))
      (fmt (quantile h 0.99));
    let biggest =
      List.fold_left (fun acc (_, _, c) -> Stdlib.max acc c) 1 (buckets h)
    in
    List.iter
      (fun (lo, hi, c) ->
        let bar = String.make (Stdlib.max 1 (40 * c / biggest)) '#' in
        let lo_s = if lo = neg_infinity then "<=0 or min" else fmt lo in
        let hi_s = if hi = infinity then "inf" else fmt hi in
        Format.fprintf ppf "  (%s, %s]: %8d %s@." lo_s hi_s c bar)
      (buckets h)
  end

(* Iteration order is sorted by name, not registration order: stats dumps
   are diffable across runs (registration order depends on which code
   path touched a metric first) and usable as bench-diff inputs. *)
let iter_counters t f =
  List.iter
    (fun name -> f name (Hashtbl.find t.counters name))
    (List.sort String.compare t.counter_order)

let iter_gauges t f =
  List.iter
    (fun name -> f name (Hashtbl.find t.gauges name))
    (List.sort String.compare t.gauge_order)

let iter_histograms t f =
  List.iter
    (fun name -> f name (Hashtbl.find t.histograms name))
    (List.sort String.compare t.histogram_order)

let pp ppf t =
  iter_counters t (fun name c ->
      let n = count c in
      if n <> 0 then Format.fprintf ppf "%-32s %d@." name n);
  iter_gauges t (fun name g -> Format.fprintf ppf "%-32s %g@." name g.value);
  iter_histograms t (fun name h ->
      let fmt =
        if String.length name >= 6 && String.sub name (String.length name - 6) 6 = "_bytes"
        then fmt_bytes
        else if
          String.length name >= 8 && String.sub name (String.length name - 8) 8 = "_seconds"
        then fmt_seconds
        else default_fmt
      in
      Format.fprintf ppf "%s:@." name;
      pp_histogram ~fmt ppf h)

(* ------------------------------------------------------------------ *)
(* JSON export *)

let json_into buf t =
  let root = Json_out.start_obj buf in
  Json_out.key root "counters";
  let cs = Json_out.start_obj buf in
  iter_counters t (fun name c -> Json_out.field_int cs name (count c));
  Json_out.end_obj cs;
  Json_out.key root "gauges";
  let gs = Json_out.start_obj buf in
  iter_gauges t (fun name g -> Json_out.field_float gs name g.value);
  Json_out.end_obj gs;
  Json_out.key root "histograms";
  let hs = Json_out.start_obj buf in
  iter_histograms t (fun name h ->
      Json_out.key hs name;
      let o = Json_out.start_obj buf in
      Json_out.field_int o "total" h.total;
      Json_out.field_float o "sum" (sum h);
      Json_out.field_float o "mean" (mean h);
      if h.total > 0 then begin
        Json_out.field_float o "min" (min_value h);
        Json_out.field_float o "max" (max_value h)
      end;
      Json_out.key o "buckets";
      let bs = Json_out.start_arr buf in
      List.iter
        (fun (lo, hi, c) ->
          Json_out.sep bs;
          let b = Json_out.start_obj buf in
          Json_out.field_float b "lo" lo;
          Json_out.field_float b "hi" hi;
          Json_out.field_int b "count" c;
          Json_out.end_obj b)
        (buckets h);
      Json_out.end_arr bs;
      Json_out.end_obj o);
  Json_out.end_obj hs;
  Json_out.end_obj root

let to_json t =
  let buf = Buffer.create 1024 in
  json_into buf t;
  Buffer.contents buf
