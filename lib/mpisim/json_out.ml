(* Minimal JSON emission on top of [Buffer].

   The observability layer (Chrome-trace export, stats dumps, benchmark
   records) only ever *writes* JSON, so a tiny append-only emitter keeps
   the simulator dependency-free.  Numbers are printed with enough digits
   to round-trip doubles; strings are escaped per RFC 8259. *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let str buf s = escape_into buf s

let int buf i = Buffer.add_string buf (string_of_int i)

(* JSON has no NaN/Infinity; clamp them to null so output always parses. *)
let float buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let bool buf b = Buffer.add_string buf (if b then "true" else "false")

(* Comma-separated sequences: [sep] tracks whether a separator is due. *)
type seq = { buf : Buffer.t; mutable first : bool }

let start_obj buf =
  Buffer.add_char buf '{';
  { buf; first = true }

let start_arr buf =
  Buffer.add_char buf '[';
  { buf; first = true }

let sep s =
  if s.first then s.first <- false else Buffer.add_char s.buf ','

(* Add one [key: ...] slot to an object; the caller then writes the value. *)
let key s k =
  sep s;
  escape_into s.buf k;
  Buffer.add_char s.buf ':'

let end_obj s = Buffer.add_char s.buf '}'

let end_arr s = Buffer.add_char s.buf ']'

(* Shorthands for scalar object fields. *)
let field_str s k v =
  key s k;
  str s.buf v

let field_int s k v =
  key s k;
  int s.buf v

let field_float s k v =
  key s k;
  float s.buf v
