(* Request objects for non-blocking operations.

   A request separates cheap completion *detection* ([ready], safe to call
   from the scheduler's poll loop) from *finalization* ([finalize], which
   runs in the owning fiber: it unpacks data, updates the owner's clock and
   may raise failure errors).  [test]/[wait] are idempotent after
   completion, per MPI semantics for inactive requests.

   Observer hook: the sanitizer ([Check]) may attach an observer to a
   request it tracks; every completion entry point — [wait], [test],
   [wait_any], [test_some] — reports through it when invoked on a request
   that has already completed (an MPI "wait on inactive request", which
   MUST-style tools flag as a use of a freed request).  Requests without an
   observer pay one pointer comparison. *)

type observer = { on_rewait : unit -> unit }

type t = {
  mutable status : Status.t option;
  ready : unit -> bool;
  finalize : unit -> Status.t;
  describe : unit -> string;
  mutable observer : observer option;
}

let make ~ready ~finalize ~describe =
  { status = None; ready; finalize; describe; observer = None }

let set_observer t o = t.observer <- Some o

let describe t = t.describe ()

(* A request that is already complete (e.g. for empty transfers). *)
let completed status =
  {
    status = Some status;
    ready = (fun () -> true);
    finalize = (fun () -> status);
    describe = (fun () -> "completed");
    observer = None;
  }

(* Shared by every entry point that touches an already-completed request:
   completion on an inactive request is the same misuse whether it arrives
   through [wait], [test], [wait_any] or [test_some]. *)
let notify_rewait t =
  match t.observer with Some o -> o.on_rewait () | None -> ()

let test t =
  match t.status with
  | Some s ->
      notify_rewait t;
      Some s
  | None ->
      if t.ready () then begin
        let s = t.finalize () in
        t.status <- Some s;
        Some s
      end
      else None

let wait t =
  match t.status with
  | Some s ->
      notify_rewait t;
      s
  | None ->
      Scheduler.park
        ~describe:(fun () -> "wait: " ^ t.describe ())
        ~poll:(fun () -> if t.ready () then Some () else None);
      let s = t.finalize () in
      t.status <- Some s;
      s

let is_complete t = t.status <> None

let wait_all ts = List.map wait ts

(* Persistent requests (MPI-4 [*_init] operations).

   A persistent request is built once — validation, algorithm selection,
   datatype plan compilation and buffer pre-acquisition all happen at init
   — and then cycled through [start]/[wait_p] many times.  The closures
   below are the *only* closures of a cycle: [start]/[wait_p] themselves
   allocate nothing (the park closure in [wait_p] is constructed only on
   the slow path, when the operation is not already complete).

   Lifecycle, per MPI semantics: init → inactive; [start] activates (error
   if already active); [wait_p]/[test_p] complete the cycle back to
   inactive, and are no-ops / immediately-true on an inactive request;
   [free_p] is an error while active. *)

type p = {
  p_describe : string;
  p_start : unit -> unit;  (* begin one cycle (post receives, inject sends) *)
  p_ready : unit -> bool;  (* cheap poll, safe from the scheduler loop *)
  p_run : unit -> unit;  (* finish the cycle in the owning fiber *)
  mutable p_active : bool;
  mutable p_freed : bool;
  mutable p_cycles : int;
}

let make_p ~describe ~start ~ready ~run =
  {
    p_describe = describe;
    p_start = start;
    p_ready = ready;
    p_run = run;
    p_active = false;
    p_freed = false;
    p_cycles = 0;
  }

let describe_p p = p.p_describe

let is_active p = p.p_active

let started_cycles p = p.p_cycles

let start p =
  if p.p_freed then
    Errdefs.usage_error "Request.start: %s has been freed" p.p_describe;
  if p.p_active then
    Errdefs.usage_error "Request.start: %s is already active (wait it first)"
      p.p_describe;
  p.p_active <- true;
  p.p_cycles <- p.p_cycles + 1;
  p.p_start ()

let wait_p p =
  if p.p_active then begin
    if not (p.p_ready ()) then
      Scheduler.park
        ~describe:(fun () -> "wait: " ^ p.p_describe)
        ~poll:(fun () -> if p.p_ready () then Some () else None);
    p.p_run ();
    p.p_active <- false
  end

let test_p p =
  if not p.p_active then true
  else if p.p_ready () then begin
    p.p_run ();
    p.p_active <- false;
    true
  end
  else false

let free_p p =
  if p.p_freed then
    Errdefs.usage_error "Request.free: %s already freed" p.p_describe;
  if p.p_active then
    Errdefs.usage_error "Request.free: %s is still active (wait it first)"
      p.p_describe;
  p.p_freed <- true

(* Wait until at least one request completes; returns its index and status.
   Raises [Invalid_argument] on an empty list. *)
let wait_any ts =
  if ts = [] then invalid_arg "Request.wait_any: empty";
  let arr = Array.of_list ts in
  let find_ready () =
    let rec go i =
      if i >= Array.length arr then None
      else if arr.(i).status <> None || arr.(i).ready () then Some i
      else go (i + 1)
    in
    go 0
  in
  let i =
    match find_ready () with
    | Some i -> i
    | None ->
        Scheduler.park
          ~describe:(fun () -> Printf.sprintf "wait_any over %d requests" (Array.length arr))
          ~poll:find_ready
  in
  let s =
    match arr.(i).status with
    | Some s ->
        (* Selecting an already-inactive request is the same misuse as
           waiting on one directly; report it instead of hiding it. *)
        notify_rewait arr.(i);
        s
    | None ->
        let s = arr.(i).finalize () in
        arr.(i).status <- Some s;
        s
  in
  (i, s)

(* Complete every currently-ready request; returns (index, status) pairs.
   Does not block. *)
let test_some ts =
  List.mapi (fun i t -> (i, t)) ts
  |> List.filter_map (fun (i, t) ->
         match test t with Some s -> Some (i, s) | None -> None)
