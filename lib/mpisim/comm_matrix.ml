(* Per-(src, dst) communication matrix with collective-algorithm
   attribution.

   Every injected message bumps one cell keyed by (source rank,
   destination rank, label), where the label is the collective algorithm
   the sender was executing ("allreduce.rabenseifner", from the same
   precomputed Coll_algo span names PR 5 introduced) or "p2p" outside any
   collective.  Coll.dispatch maintains the per-rank label around each
   algorithm body, so lowered collectives attribute to the innermost
   algorithm actually moving the bytes.

   Hot-path discipline matches Trace and Stats: the recorder is created
   disabled, and [record] is a single mutable-bool check in that state —
   no allocation, no hashing.  When enabled, the per-message cost is one
   hash lookup (the probe key tuple is short-lived minor garbage, which
   is acceptable for an explicitly requested diagnostic). *)

type cell = { mutable msgs : int; mutable bytes : int }

type t = {
  mutable enabled : bool;
  cells : (int * int * string, cell) Hashtbl.t;
  labels : string array;  (* per-rank current attribution label *)
}

let p2p_label = "p2p"

let create ~size =
  { enabled = false; cells = Hashtbl.create 256; labels = Array.make size p2p_label }

let enable t = t.enabled <- true

let enabled t = t.enabled

let label t rank = t.labels.(rank)

let set_label t rank l = t.labels.(rank) <- l

let record t ~src ~dst ~bytes =
  if t.enabled then begin
    let key = (src, dst, t.labels.(src)) in
    match Hashtbl.find_opt t.cells key with
    | Some c ->
        c.msgs <- c.msgs + 1;
        c.bytes <- c.bytes + bytes
    | None -> Hashtbl.replace t.cells key { msgs = 1; bytes }
  end

type entry = { cm_src : int; cm_dst : int; cm_label : string; cm_msgs : int; cm_bytes : int }

(* Cells sorted by (src, dst, label): deterministic, diffable output. *)
let entries t =
  Hashtbl.fold
    (fun (src, dst, lbl) c acc ->
      { cm_src = src; cm_dst = dst; cm_label = lbl; cm_msgs = c.msgs; cm_bytes = c.bytes }
      :: acc)
    t.cells []
  |> List.sort (fun a b ->
         compare (a.cm_src, a.cm_dst, a.cm_label) (b.cm_src, b.cm_dst, b.cm_label))

let totals t =
  Hashtbl.fold (fun _ c (msgs, bytes) -> (msgs + c.msgs, bytes + c.bytes)) t.cells (0, 0)

(* Aggregate per-label totals into the stats registry, so --stats output
   and stats-based regression checks see the traffic breakdown without
   carrying the full O(p^2) matrix. *)
let publish_stats t stats =
  List.iter
    (fun e ->
      Stats.add (Stats.counter stats ("comm.msgs." ^ e.cm_label)) e.cm_msgs;
      Stats.add (Stats.counter stats ("comm.bytes." ^ e.cm_label)) e.cm_bytes)
    (entries t)

let csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "src,dst,algo,msgs,bytes\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%d,%d\n" e.cm_src e.cm_dst e.cm_label e.cm_msgs
           e.cm_bytes))
    (entries t);
  Buffer.contents buf

let json_into buf t =
  let root = Json_out.start_obj buf in
  Json_out.field_int root "ranks" (Array.length t.labels);
  let msgs, bytes = totals t in
  Json_out.field_int root "total_msgs" msgs;
  Json_out.field_int root "total_bytes" bytes;
  Json_out.key root "cells";
  let arr = Json_out.start_arr buf in
  List.iter
    (fun e ->
      Json_out.sep arr;
      let o = Json_out.start_obj buf in
      Json_out.field_int o "src" e.cm_src;
      Json_out.field_int o "dst" e.cm_dst;
      Json_out.field_str o "algo" e.cm_label;
      Json_out.field_int o "msgs" e.cm_msgs;
      Json_out.field_int o "bytes" e.cm_bytes;
      Json_out.end_obj o)
    (entries t);
  Json_out.end_arr arr;
  Json_out.end_obj root

(* File export: JSON when the name ends in .json, CSV otherwise. *)
let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if Filename.check_suffix path ".json" then begin
        let buf = Buffer.create 4096 in
        json_into buf t;
        Buffer.output_buffer oc buf
      end
      else output_string oc (csv t))
