(* Point-to-point communication.

   Sends are eager (buffered): the payload is packed and injected
   immediately, so a blocking [send] never deadlocks against another send.
   [ssend] is synchronous: it completes only once the receiver has matched
   the message — the property the NBX sparse all-to-all algorithm (§V-A)
   depends on.

   Receives may be dynamic ([recv] allocates an exact-size buffer from the
   matched message) or MPI-style ([recv_into] with truncation checking).

   All functions operate in communicator ranks; translation to world ranks
   happens here. *)

let any_source = Mailbox.any_source

let any_tag = Mailbox.any_tag

(* Internal tag space for collective algorithms. *)
let internal_tag op_id = Comm.max_user_tag + 1 + op_id

let check_alive_self comm = Runtime.check_alive (Comm.runtime comm) (Comm.world_rank comm)

let check_dest_alive comm ~op dest =
  let w = Comm.world_of_rank comm dest in
  if Runtime.is_failed (Comm.runtime comm) w then
    Comm.error comm Errdefs.Err_proc_failed "%s: destination rank %d has failed" op dest

let check_revoked comm ~op =
  if Comm.is_revoked comm then
    Comm.error comm Errdefs.Err_revoked "%s: communicator revoked" op

(* Trace span around a blocking point-to-point operation.  Eager sends are
   not wrapped (the runtime's "send" instant already marks them); blocking
   receives, synchronous sends and probes are where virtual time is spent. *)
let traced comm ~op f =
  Runtime.with_span (Comm.runtime comm) (Comm.world_rank comm) ~cat:"p2p" ~name:op f

(* Sanitizer hooks.  All are guarded on the checker's level at the call
   site so the off path is one load and branch, no allocation.

   The waiting table feeds the deadlock wait-for graph: an entry is set
   just before a fiber parks on a blocking operation and cleared on normal
   resume.  Error paths deliberately leave the entry in place — when the
   scheduler aborts parked fibers on deadlock, the stale entries are
   exactly the data the cycle report needs. *)
let checker comm = (Comm.runtime comm).Runtime.check

let set_waiting_recv comm ~op ~src_world ~tag =
  Check.set_waiting (checker comm) ~rank:(Comm.world_rank comm)
    (Check.Wrecv { src = src_world; tag; ctx = Comm.context comm; op })

let clear_waiting comm = Check.clear_waiting (checker comm) ~rank:(Comm.world_rank comm)

(* Pack [count] elements of [data] starting at [pos] and inject the message.
   Returns the in-flight message.

   Zero-copy plane: the pack goes into a pooled per-rank writer, and the
   writer's storage is transferred into the message via [unsafe_contents]
   — no [Wire.contents] copy.  The storage returns to a pool when the
   receiver finishes unpacking ([Runtime.recycle_payload]). *)
let inject_message comm (dt : 'a Datatype.t) ~op ~dest ~tag ~sync (data : 'a array) ~pos
    ~count =
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  check_alive_self comm;
  (* Internal collective traffic (reserved tags) is exempt from the
     revocation entry check: the collective already checked at entry, and
     its in-flight exchanges must be allowed to drain after a revoke. *)
  if tag <= Comm.max_user_tag then check_revoked comm ~op;
  check_dest_alive comm ~op dest;
  if rt.Runtime.assertion_level >= 1 && not (Datatype.is_committed dt) then
    Errdefs.usage_error "%s: datatype %s is not committed" op (Datatype.name dt);
  let w = Runtime.acquire_writer rt me ~capacity:(max 8 (Datatype.size_of_count dt count)) in
  Datatype.pack_array dt w data ~pos ~count;
  let payload, payload_len = Wire.unsafe_contents w in
  Runtime.charge_copy rt me ~bytes:payload_len;
  let msg =
    Runtime.inject rt ~context:(Comm.context comm) ~src:me
      ~dst:(Comm.world_of_rank comm dest) ~tag ~payload ~payload_off:0 ~payload_len ~count
      ~signature:(Datatype.signature_of_count dt count)
      ~sync
  in
  Runtime.record rt ~op ~bytes:payload_len;
  msg

let send_range comm dt ~dest ?(tag = 0) (data : 'a array) ~pos ~count =
  Comm.check_rank comm dest;
  ignore (inject_message comm dt ~op:"send" ~dest ~tag ~sync:false data ~pos ~count)

let send comm dt ~dest ?(tag = 0) (data : 'a array) =
  Comm.check_user_tag comm tag;
  send_range comm dt ~dest ~tag data ~pos:0 ~count:(Array.length data)

(* Completion time of a synchronous send: the match time plus the latency
   of the (modelled) acknowledgement. *)
let ssend_complete_time rt (msg : Message.t) =
  msg.Message.matched_time +. Net_model.transit_time rt.Runtime.model

let issend_request comm (msg : Message.t) =
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  Request.make
    ~ready:(fun () -> Message.is_matched msg)
    ~finalize:(fun () ->
      Runtime.sync_clock rt me (ssend_complete_time rt msg);
      Status.make ~source:(Comm.rank comm) ~tag:msg.Message.tag ~count:msg.Message.count
        ~bytes:(Message.bytes msg))
    ~describe:(fun () -> Format.asprintf "issend %a" Message.pp msg)

let ssend comm dt ~dest ?(tag = 0) (data : 'a array) =
  Comm.check_user_tag comm tag;
  Comm.check_rank comm dest;
  let msg =
    inject_message comm dt ~op:"ssend" ~dest ~tag ~sync:true data ~pos:0
      ~count:(Array.length data)
  in
  let chk = checker comm in
  if Check.enabled chk then
    Check.set_waiting chk ~rank:(Comm.world_rank comm)
      (Check.Wssend { dst = Comm.world_of_rank comm dest; tag; op = "ssend" });
  ignore (Request.wait (issend_request comm msg));
  if Check.enabled chk then clear_waiting comm

let ssend comm dt ~dest ?tag data =
  traced comm ~op:"ssend" (fun () -> ssend comm dt ~dest ?tag data)

let isend comm dt ~dest ?(tag = 0) (data : 'a array) =
  Comm.check_user_tag comm tag;
  Comm.check_rank comm dest;
  let count = Array.length data in
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  let msg = inject_message comm dt ~op:"isend" ~dest ~tag ~sync:false data ~pos:0 ~count in
  let complete_at = Runtime.clock rt me in
  let req =
    Request.make
      ~ready:(fun () -> true)
      ~finalize:(fun () ->
        Runtime.sync_clock rt me complete_at;
        Status.make ~source:(Comm.rank comm) ~tag ~count ~bytes:(Message.bytes msg))
      ~describe:(fun () -> "isend")
  in
  if Check.enabled rt.Runtime.check then
    Check.track_request rt.Runtime.check ~rank:me ~kind:"isend" req;
  req

let issend comm dt ~dest ?(tag = 0) (data : 'a array) =
  Comm.check_user_tag comm tag;
  Comm.check_rank comm dest;
  let msg =
    inject_message comm dt ~op:"issend" ~dest ~tag ~sync:true data ~pos:0
      ~count:(Array.length data)
  in
  let req = issend_request comm msg in
  let chk = checker comm in
  if Check.enabled chk then
    Check.track_request chk ~rank:(Comm.world_rank comm) ~kind:"issend" req;
  req

(* ------------------------------------------------------------------ *)
(* Receives *)

let my_mailbox comm =
  (Comm.runtime comm).Runtime.mailboxes.(Comm.world_rank comm)

(* Multicore: a rank's mailbox is also mutated by concurrent senders
   ([Runtime.inject] delivers under the runtime lock), so the
   receiver-side queue operations take the same lock.  Plain calls in
   sequential mode ({!Runtime.locked} is then a direct application).
   Reads of an already-posted receive's [p_msg] field stay lock-free:
   it is a single mutable word, and the scheduler's round barrier
   orders the matching write before the resumed receiver's read. *)
let mb_post rt mb ~context ~src ~tag ~now =
  Runtime.locked rt (fun () -> Mailbox.post mb ~context ~src ~tag ~now)

let mb_retire rt mb p = Runtime.locked rt (fun () -> Mailbox.retire mb p)

let mb_cancel rt mb p = Runtime.locked rt (fun () -> Mailbox.cancel mb p)

let mb_find_unexpected rt mb ~context ~src ~tag =
  Runtime.locked rt (fun () -> Mailbox.find_unexpected ~remove:false mb ~context ~src ~tag)

let source_world comm source =
  if source = any_source then any_source
  else begin
    Comm.check_rank comm source;
    Comm.world_of_rank comm source
  end

(* Wildcard-race detection (heavy): a wildcard receive that could match
   two or more already-queued messages is resolved by arrival order, i.e.
   by the schedule.  Receives that park and match on delivery see exactly
   one candidate, so probing the queue just before posting captures every
   ambiguous match. *)
let note_wildcard comm ~src_world ~tag =
  if src_world = any_source || tag = any_tag then begin
    let eligible =
      Mailbox.count_eligible (my_mailbox comm) ~context:(Comm.context comm) ~src:src_world
        ~tag
    in
    if eligible >= 2 then
      Check.on_wildcard_match (checker comm) ~rank:(Comm.world_rank comm) ~src:src_world
        ~tag ~eligible
  end

(* Analyzer-mode instants: which receive was posted with which pattern
   ("post": a=src b=tag c=ctx d=post id) and which message it finally
   matched ("matched": a=post id, b=msg seq, c=ctx, d=actual src).  Only
   emitted when vector clocks are on (trace-analysis runs), so ordinary
   traces keep their exact event mix; otherwise each is one branch. *)
let note_post comm (p : Mailbox.posted) =
  let rt = Comm.runtime comm in
  if Array.length rt.Runtime.vclocks > 0 then
    Trace.instant_d rt.Runtime.trace ~rank:(Comm.world_rank comm) ~cat:"sim" ~name:"post"
      ~a:p.Mailbox.p_src ~b:p.Mailbox.p_tag ~c:p.Mailbox.p_context ~d:p.Mailbox.p_id

let note_matched comm (p : Mailbox.posted) (msg : Message.t) =
  let rt = Comm.runtime comm in
  if Array.length rt.Runtime.vclocks > 0 then
    Trace.instant_d rt.Runtime.trace ~rank:(Comm.world_rank comm) ~cat:"sim"
      ~name:"matched" ~a:p.Mailbox.p_id ~b:msg.Message.seq ~c:p.Mailbox.p_context
      ~d:msg.Message.src

let check_signature comm (dt : 'a Datatype.t) (msg : Message.t) ~op =
  let rt = Comm.runtime comm in
  if rt.Runtime.assertion_level >= 1 then begin
    let expected = Datatype.signature_of_count dt msg.Message.count in
    if not (Signature.matches expected msg.Message.signature) then
      Comm.error comm Errdefs.Err_type
        "%s: type signature mismatch: receiving as %s but message from rank %d has %s" op
        (Signature.to_string expected) msg.Message.src
        (Signature.to_string msg.Message.signature)
  end

(* Wait until the posted receive [p] matches, also waking on source failure.
   Returns the matched message or raises. *)
let await_posted comm ~op ~src_world (p : Mailbox.posted) =
  let rt = Comm.runtime comm in
  let failed_source () =
    src_world <> any_source && Runtime.is_failed rt src_world && p.Mailbox.p_msg = None
  in
  (* A revoked communicator only aborts this receive once the source has
     itself observed the revocation (or died, or is a wildcard): until
     then the source may still complete the in-flight exchange, and
     waking early would tear down collectives that could drain. *)
  let revocation_abort () =
    p.Mailbox.p_msg = None
    && Comm.revoked_flag comm
    && (src_world = any_source || Comm.revocation_reached comm ~world:src_world)
  in
  let ready () = p.Mailbox.p_msg <> None || failed_source () || revocation_abort () in
  if not (ready ()) then begin
    if Check.enabled (checker comm) then
      set_waiting_recv comm ~op ~src_world ~tag:p.Mailbox.p_tag;
    Scheduler.park
      ~describe:(fun () ->
        Printf.sprintf "%s on rank %d (ctx %d, src %d, tag %d)" op (Comm.rank comm)
          (Comm.context comm) p.Mailbox.p_src p.Mailbox.p_tag)
      ~poll:(fun () -> if ready () then Some () else None);
    if Check.enabled (checker comm) then clear_waiting comm
  end;
  match p.Mailbox.p_msg with
  | Some msg -> msg
  | None ->
      mb_cancel rt (my_mailbox comm) p;
      if revocation_abort () then
        Comm.error comm Errdefs.Err_revoked "%s: communicator revoked" op
      else
        Comm.error comm Errdefs.Err_proc_failed "%s: source rank has failed" op

(* Finish a matched receive: signature check, clock accounting, status. *)
let complete_matched comm dt ~op (msg : Message.t) =
  let rt = Comm.runtime comm in
  check_signature comm dt msg ~op;
  Runtime.complete_receive rt (Comm.world_rank comm) msg;
  Runtime.charge_copy rt (Comm.world_rank comm) ~bytes:(Message.bytes msg);
  Runtime.record rt ~op ~bytes:(Message.bytes msg);
  Status.make
    ~source:(Comm.rank_of_world comm msg.Message.src)
    ~tag:msg.Message.tag ~count:msg.Message.count ~bytes:(Message.bytes msg)

(* Dynamic receive: allocates an exact-size result from the message. *)
let recv comm (dt : 'a Datatype.t) ?(source = any_source) ?(tag = any_tag) () :
    'a array * Status.t =
  check_alive_self comm;
  let src_world = source_world comm source in
  let now = Runtime.clock (Comm.runtime comm) (Comm.world_rank comm) in
  if Check.heavy (checker comm) then note_wildcard comm ~src_world ~tag;
  let p =
    mb_post (Comm.runtime comm) (my_mailbox comm) ~context:(Comm.context comm)
      ~src:src_world ~tag ~now
  in
  note_post comm p;
  let msg = await_posted comm ~op:"recv" ~src_world p in
  mb_retire (Comm.runtime comm) (my_mailbox comm) p;
  note_matched comm p msg;
  let status = complete_matched comm dt ~op:"recv" msg in
  let r = Message.reader msg in
  let data = Datatype.unpack_array dt r ~count:msg.Message.count in
  Runtime.recycle_payload (Comm.runtime comm) msg;
  (data, status)

let recv comm dt ?source ?tag () = traced comm ~op:"recv" (fun () -> recv comm dt ?source ?tag ())

(* MPI-style receive into a caller-provided buffer. *)
let recv_into comm (dt : 'a Datatype.t) ?(source = any_source) ?(tag = any_tag)
    ?(pos = 0) ?maxcount (into : 'a array) : Status.t =
  check_alive_self comm;
  let maxcount = match maxcount with Some c -> c | None -> Array.length into - pos in
  if maxcount < 0 || pos < 0 || pos + maxcount > Array.length into then
    Errdefs.usage_error "recv_into: invalid range (pos %d, maxcount %d, len %d)" pos
      maxcount (Array.length into);
  let src_world = source_world comm source in
  let now = Runtime.clock (Comm.runtime comm) (Comm.world_rank comm) in
  if Check.heavy (checker comm) then note_wildcard comm ~src_world ~tag;
  let p =
    mb_post (Comm.runtime comm) (my_mailbox comm) ~context:(Comm.context comm)
      ~src:src_world ~tag ~now
  in
  note_post comm p;
  let msg = await_posted comm ~op:"recv" ~src_world p in
  mb_retire (Comm.runtime comm) (my_mailbox comm) p;
  note_matched comm p msg;
  if msg.Message.count > maxcount then
    Comm.error comm Errdefs.Err_truncate
      "recv: message of %d elements truncated to buffer of %d" msg.Message.count maxcount;
  let status = complete_matched comm dt ~op:"recv" msg in
  let r = Message.reader msg in
  Datatype.unpack_into dt r into ~pos ~count:msg.Message.count;
  Runtime.recycle_payload (Comm.runtime comm) msg;
  status

let recv_into comm dt ?source ?tag ?pos ?maxcount into =
  traced comm ~op:"recv_into" (fun () -> recv_into comm dt ?source ?tag ?pos ?maxcount into)

(* Non-blocking receive into a caller-provided buffer. *)
let irecv_into comm (dt : 'a Datatype.t) ?(source = any_source) ?(tag = any_tag)
    ?(pos = 0) ?maxcount (into : 'a array) : Request.t =
  check_alive_self comm;
  let maxcount = match maxcount with Some c -> c | None -> Array.length into - pos in
  if maxcount < 0 || pos < 0 || pos + maxcount > Array.length into then
    Errdefs.usage_error "irecv: invalid range";
  let src_world = source_world comm source in
  let mb = my_mailbox comm in
  let now = Runtime.clock (Comm.runtime comm) (Comm.world_rank comm) in
  let chk = checker comm in
  if Check.heavy chk then note_wildcard comm ~src_world ~tag;
  let p =
    mb_post (Comm.runtime comm) mb ~context:(Comm.context comm) ~src:src_world ~tag ~now
  in
  note_post comm p;
  let rt = Comm.runtime comm in
  let failed_source () =
    src_world <> any_source && Runtime.is_failed rt src_world && p.Mailbox.p_msg = None
  in
  let req =
    Request.make
      ~ready:(fun () -> p.Mailbox.p_msg <> None || failed_source ())
      ~finalize:(fun () ->
        match p.Mailbox.p_msg with
        | None ->
            mb_cancel rt mb p;
            Comm.error comm Errdefs.Err_proc_failed "irecv: source rank has failed"
        | Some msg ->
            mb_retire rt mb p;
            note_matched comm p msg;
            if msg.Message.count > maxcount then
              Comm.error comm Errdefs.Err_truncate "irecv: message truncated";
            let status = complete_matched comm dt ~op:"irecv" msg in
            let r = Message.reader msg in
            Datatype.unpack_into dt r into ~pos ~count:msg.Message.count;
            Runtime.recycle_payload rt msg;
            status)
      ~describe:(fun () ->
        Printf.sprintf "irecv on rank %d (src %d, tag %d)" (Comm.rank comm) source tag)
  in
  if Check.enabled chk then
    Check.track_request chk ~rank:(Comm.world_rank comm) ~kind:"irecv" req;
  req

(* ------------------------------------------------------------------ *)
(* Probing *)

let status_of_unmatched comm (msg : Message.t) =
  Status.make
    ~source:(Comm.rank_of_world comm msg.Message.src)
    ~tag:msg.Message.tag ~count:msg.Message.count ~bytes:(Message.bytes msg)

let iprobe comm ?(source = any_source) ?(tag = any_tag) () : Status.t option =
  check_alive_self comm;
  let rt = Comm.runtime comm in
  Runtime.record rt ~op:"iprobe" ~bytes:0;
  let src_world = source_world comm source in
  match
    mb_find_unexpected (Comm.runtime comm) (my_mailbox comm) ~context:(Comm.context comm)
      ~src:src_world ~tag
  with
  | None -> None
  | Some msg ->
      (* Probing observes the message only once it has arrived. *)
      Runtime.sync_clock rt (Comm.world_rank comm) msg.Message.arrival;
      Some (status_of_unmatched comm msg)

let probe comm ?(source = any_source) ?(tag = any_tag) () : Status.t =
  check_alive_self comm;
  let rt = Comm.runtime comm in
  Runtime.record rt ~op:"probe" ~bytes:0;
  let src_world = source_world comm source in
  let find () =
    mb_find_unexpected (Comm.runtime comm) (my_mailbox comm) ~context:(Comm.context comm)
      ~src:src_world ~tag
  in
  let msg =
    match find () with
    | Some m -> m
    | None ->
        if Check.enabled (checker comm) then
          set_waiting_recv comm ~op:"probe" ~src_world ~tag;
        let m =
          Scheduler.park
            ~describe:(fun () ->
              Printf.sprintf "probe on rank %d (src %d, tag %d)" (Comm.rank comm) source tag)
            ~poll:find
        in
        if Check.enabled (checker comm) then clear_waiting comm;
        m
  in
  Runtime.sync_clock rt (Comm.world_rank comm) msg.Message.arrival;
  status_of_unmatched comm msg

let probe comm ?source ?tag () = traced comm ~op:"probe" (fun () -> probe comm ?source ?tag ())

(* Combined send+receive, deadlock-free because sends are eager. *)
let sendrecv comm dt ~dest ?(send_tag = 0) ~source ?(recv_tag = any_tag) (data : 'a array)
    : 'a array * Status.t =
  send comm dt ~dest ~tag:send_tag data;
  recv comm dt ~source ~tag:recv_tag ()

(* ------------------------------------------------------------------ *)
(* Raw byte transfers (serialization fast path) and typed dynamic
   non-blocking receives *)

let blob_signature bytes_len = Signature.of_base ~count:bytes_len Signature.Blob

(* Send a raw byte payload without datatype packing; matched by
   [recv_bytes].  The element count equals the byte length.  The single
   defensive copy (the caller keeps ownership of [payload]) goes straight
   into a pooled wire buffer, so the path allocates nothing once the pool
   is warm. *)
let send_bytes comm ~dest ?(tag = 0) (payload : Bytes.t) =
  Comm.check_rank comm dest;
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  check_alive_self comm;
  check_revoked comm ~op:"send_bytes";
  check_dest_alive comm ~op:"send_bytes" dest;
  let len = Bytes.length payload in
  let w = Runtime.acquire_writer rt me ~capacity:(max 8 len) in
  Wire.put_bytes w payload ~pos:0 ~len;
  let storage, payload_len = Wire.unsafe_contents w in
  ignore
    (Runtime.inject rt ~context:(Comm.context comm) ~src:me
       ~dst:(Comm.world_of_rank comm dest) ~tag ~payload:storage ~payload_off:0
       ~payload_len ~count:len ~signature:(blob_signature len) ~sync:false);
  Runtime.record rt ~op:"send" ~bytes:len

let recv_bytes comm ?(source = any_source) ?(tag = any_tag) () : Bytes.t * Status.t =
  check_alive_self comm;
  let src_world = source_world comm source in
  let now = Runtime.clock (Comm.runtime comm) (Comm.world_rank comm) in
  if Check.heavy (checker comm) then note_wildcard comm ~src_world ~tag;
  let p =
    mb_post (Comm.runtime comm) (my_mailbox comm) ~context:(Comm.context comm)
      ~src:src_world ~tag ~now
  in
  note_post comm p;
  let msg = await_posted comm ~op:"recv" ~src_world p in
  mb_retire (Comm.runtime comm) (my_mailbox comm) p;
  note_matched comm p msg;
  let rt = Comm.runtime comm in
  Runtime.complete_receive rt (Comm.world_rank comm) msg;
  Runtime.charge_copy rt (Comm.world_rank comm) ~bytes:(Message.bytes msg);
  Runtime.record rt ~op:"recv" ~bytes:(Message.bytes msg);
  let status =
    Status.make
      ~source:(Comm.rank_of_world comm msg.Message.src)
      ~tag:msg.Message.tag ~count:msg.Message.count ~bytes:(Message.bytes msg)
  in
  let data = Message.payload_copy msg in
  Runtime.recycle_payload rt msg;
  (data, status)

let recv_bytes comm ?source ?tag () =
  traced comm ~op:"recv_bytes" (fun () -> recv_bytes comm ?source ?tag ())

(* A non-blocking receive whose buffer is allocated at completion time from
   the matched message — the substrate for the binding layer's
   ownership-safe non-blocking results (§III-E). *)
type 'a dyn_request = { base : Request.t; cell : 'a array option ref }

let irecv_dyn comm (dt : 'a Datatype.t) ?(source = any_source) ?(tag = any_tag) () :
    'a dyn_request =
  check_alive_self comm;
  let src_world = source_world comm source in
  let mb = my_mailbox comm in
  let now = Runtime.clock (Comm.runtime comm) (Comm.world_rank comm) in
  let chk = checker comm in
  if Check.heavy chk then note_wildcard comm ~src_world ~tag;
  let p =
    mb_post (Comm.runtime comm) mb ~context:(Comm.context comm) ~src:src_world ~tag ~now
  in
  note_post comm p;
  let rt = Comm.runtime comm in
  let cell = ref None in
  let failed_source () =
    src_world <> any_source && Runtime.is_failed rt src_world && p.Mailbox.p_msg = None
  in
  let base =
    Request.make
      ~ready:(fun () -> p.Mailbox.p_msg <> None || failed_source ())
      ~finalize:(fun () ->
        match p.Mailbox.p_msg with
        | None ->
            mb_cancel rt mb p;
            Comm.error comm Errdefs.Err_proc_failed "irecv: source rank has failed"
        | Some msg ->
            mb_retire rt mb p;
            note_matched comm p msg;
            let status = complete_matched comm dt ~op:"irecv" msg in
            let r = Message.reader msg in
            cell := Some (Datatype.unpack_array dt r ~count:msg.Message.count);
            Runtime.recycle_payload rt msg;
            status)
      ~describe:(fun () ->
        Printf.sprintf "irecv_dyn on rank %d (src %d, tag %d)" (Comm.rank comm) source tag)
  in
  if Check.enabled chk then
    Check.track_request chk ~rank:(Comm.world_rank comm) ~kind:"irecv_dyn" base;
  { base; cell }

let dyn_wait (r : 'a dyn_request) : 'a array * Status.t =
  let status = Request.wait r.base in
  match !(r.cell) with
  | Some data -> (data, status)
  | None -> Errdefs.usage_error "dyn_wait: request finalized without data"

let dyn_test (r : 'a dyn_request) : ('a array * Status.t) option =
  match Request.test r.base with
  | None -> None
  | Some status -> (
      match !(r.cell) with
      | Some data -> Some (data, status)
      | None -> Errdefs.usage_error "dyn_test: request finalized without data")

(* ------------------------------------------------------------------ *)
(* Persistent operations (MPI-4 MPI_Send_init / MPI_Recv_init)

   Everything a cycle does not strictly need is hoisted to init: argument
   validation, the datatype plan (byte size + wire signature), the
   profiling counter handles, rank translation, and a pre-warmed pooled
   writer large enough for the payload.  The remaining per-cycle
   allocations are the transport's own (the in-flight [Message.t], the
   3-word pooled-writer record, the posted-receive record) — the fully
   allocation-free hot path is the single-rank persistent collective,
   which skips transport entirely. *)

let send_init comm (dt : 'a Datatype.t) ~dest ?(tag = 0) (data : 'a array) ~pos ~count =
  Comm.check_user_tag comm tag;
  Comm.check_rank comm dest;
  if count < 0 || pos < 0 || pos + count > Array.length data then
    Errdefs.usage_error "send_init: invalid range (pos %d, count %d, len %d)" pos count
      (Array.length data);
  if not (Datatype.is_committed dt) then
    Errdefs.usage_error "send_init: datatype %s is not committed" (Datatype.name dt);
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  let plan = Datatype.plan dt ~count in
  let prep = Profiling.prepare rt.Runtime.profile "send" in
  let context = Comm.context comm in
  let dst_world = Comm.world_of_rank comm dest in
  Runtime.preheat_writer rt me ~capacity:(max 8 plan.Datatype.plan_bytes);
  let start () =
    Runtime.check_alive rt me;
    check_revoked comm ~op:"send";
    check_dest_alive comm ~op:"send" dest;
    let w = Runtime.acquire_writer rt me ~capacity:(max 8 plan.Datatype.plan_bytes) in
    Datatype.pack_array dt w data ~pos ~count;
    let payload, payload_len = Wire.unsafe_contents w in
    Runtime.charge_copy rt me ~bytes:payload_len;
    ignore
      (Runtime.inject rt ~context ~src:me ~dst:dst_world ~tag ~payload ~payload_off:0
         ~payload_len ~count
         ~signature:plan.Datatype.plan_signature ~sync:false);
    Profiling.record_prepared rt.Runtime.profile prep ~bytes:payload_len
  in
  (* Eager send: injected at [start], so the cycle is complete immediately. *)
  Request.make_p ~describe:"send_init" ~start ~ready:(fun () -> true) ~run:(fun () -> ())

let recv_init comm (dt : 'a Datatype.t) ?(source = any_source) ?(tag = any_tag)
    ?(pos = 0) ?maxcount (into : 'a array) =
  let maxcount = match maxcount with Some c -> c | None -> Array.length into - pos in
  if maxcount < 0 || pos < 0 || pos + maxcount > Array.length into then
    Errdefs.usage_error "recv_init: invalid range (pos %d, maxcount %d, len %d)" pos
      maxcount (Array.length into);
  if not (Datatype.is_committed dt) then
    Errdefs.usage_error "recv_init: datatype %s is not committed" (Datatype.name dt);
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  let src_world = source_world comm source in
  let context = Comm.context comm in
  let mb = my_mailbox comm in
  let prep = Profiling.prepare rt.Runtime.profile "recv" in
  let posted : Mailbox.posted option ref = ref None in
  let start () =
    Runtime.check_alive rt me;
    if Check.heavy rt.Runtime.check then note_wildcard comm ~src_world ~tag;
    let now = Runtime.clock rt me in
    let p = mb_post rt mb ~context ~src:src_world ~tag ~now in
    note_post comm p;
    posted := Some p
  in
  (* The poll must wake on the same conditions as [await_posted] — match,
     source failure, observed revocation — or a cycle receiving from a
     dead rank would park forever instead of raising. *)
  let ready () =
    match !posted with
    | None -> true
    | Some p ->
        p.Mailbox.p_msg <> None
        || (src_world <> any_source && Runtime.is_failed rt src_world)
        || Comm.revoked_flag comm
           && (src_world = any_source || Comm.revocation_reached comm ~world:src_world)
  in
  let run () =
    match !posted with
    | None -> ()
    | Some p ->
        posted := None;
        let msg = await_posted comm ~op:"recv" ~src_world p in
        mb_retire rt mb p;
        note_matched comm p msg;
        if msg.Message.count > maxcount then
          Comm.error comm Errdefs.Err_truncate
            "recv: message of %d elements truncated to buffer of %d" msg.Message.count
            maxcount;
        check_signature comm dt msg ~op:"recv";
        Runtime.complete_receive rt me msg;
        Runtime.charge_copy rt me ~bytes:(Message.bytes msg);
        Profiling.record_prepared rt.Runtime.profile prep ~bytes:(Message.bytes msg);
        let r = Message.reader msg in
        Datatype.unpack_into dt r into ~pos ~count:msg.Message.count;
        Runtime.recycle_payload rt msg
  in
  Request.make_p ~describe:"recv_init" ~start ~ready ~run
