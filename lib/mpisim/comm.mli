(** Communicators: a process group plus a private context id, so traffic
    on different communicators never cross-matches.

    Each rank holds its own handle ({!t}); the {!shared} record (context,
    group, revocation flag, rendezvous state, debug trace) is common to
    all member ranks.  Record internals are exposed for the collective
    layer (which keeps rendezvous state for the non-blocking barrier and
    ULFM shrink); applications should treat them as read-only. *)

(** Largest tag usable by applications; larger tags are reserved for the
    internal messages of collective algorithms. *)
val max_user_tag : int

type topology = { sources : int array; destinations : int array }
(** Neighbor lists in comm ranks, for the neighborhood collectives
    (§V-A). *)

type ibarrier_state = {
  ib_target : int;
  mutable ib_entered : int;
  mutable ib_max_clock : float;
  mutable ib_finalized : int;
}

type shrink_state = {
  sh_context : int;
  mutable sh_arrived : int list;
  mutable sh_max_clock : float;
  mutable sh_done : int;
  mutable sh_survivors : int list option;
      (** survivor group decided by the first rank through the
          rendezvous; later ranks reuse it so a failure {e during} the
          shrink cannot make survivors compute differing groups *)
}

type bcast_count = {
  bc_count : int;  (** element count published by the bcast root *)
  mutable bc_consumed : int;  (** ranks done with this entry; reclaimed at size *)
}
(** In real MPI every rank passes the count to [MPI_Bcast]; our binding
    takes the payload at the root only, so the collective layer publishes
    the root's count here (keyed by per-rank bcast generation) before the
    data moves.  Message-size-keyed algorithm selection reads it so all
    ranks pick the same algorithm. *)

type shared = {
  context : int;
  group : Group.t;
  inverse : (int, int) Hashtbl.t Lazy.t;
  mutable revoked : bool;
  revoke_observed : bool array;
      (** per comm rank: has that rank's control flow observed the
          revocation yet?  Receives parked before the revoke only abort
          once their source is marked here (or dead), so in-flight
          collectives can drain — revocation notice propagates
          asynchronously, as in real ULFM. *)
  ibarriers : (int, ibarrier_state) Hashtbl.t;
  bcast_counts : (int, bcast_count) Hashtbl.t;
  mutable pending_shrink : shrink_state option;
  mutable op_trace : string list array option;
}

type t = {
  rt : Runtime.t;
  shared : shared;
  rank : int;
  mutable errhandler : Errdefs.handler;
  mutable my_ibarrier_gen : int;
  mutable my_agree_gen : int;
  mutable my_bcast_gen : int;
  topology : topology option;
}

(** {1 Construction (used by the engine and communicator operations)} *)

val create_shared : Runtime.t -> Group.t -> shared

val register : Runtime.t -> shared -> unit

val find_shared : Runtime.t -> context:int -> shared option

(** Find or atomically create the shared record for (runtime, context);
    raises if an existing record has a different group. *)
val get_or_create_shared : Runtime.t -> context:int -> group:Group.t -> shared

val all_shared : Runtime.t -> shared list

val clear_registry : Runtime.t -> unit

val create_registered_shared : Runtime.t -> Group.t -> shared

(** Per-rank handle onto a shared record. *)
val attach : ?topology:topology -> Runtime.t -> shared -> rank:int -> t

(** {1 Accessors} *)

val rank : t -> int

val size : t -> int

val context : t -> int

val group : t -> Group.t

val runtime : t -> Runtime.t

(** This rank's world rank. *)
val world_rank : t -> int

(** World rank of a comm rank. *)
val world_of_rank : t -> int -> int

(** Comm rank of a world rank; raises if not a member. *)
val rank_of_world : t -> int -> int

val topology : t -> topology option

(** {1 Revocation and error handling (§III-G, §V-B)} *)

(** Whether the communicator has been revoked.  Also records that this
    rank has now observed the revocation, releasing peers whose parked
    receives were waiting on this rank (see {!revocation_reached}). *)
val is_revoked : t -> bool

(** [is_revoked] without the observation side effect: for poll loops that
    must not count as this rank abandoning its in-flight operations. *)
val revoked_flag : t -> bool

(** The communicator is revoked {e and} the revocation is visible from
    world rank [world]'s side: that rank has observed it or has failed.
    A receive parked on a specific source aborts with [ERR_REVOKED] only
    under this condition — while the source is alive and still unaware of
    the revocation, it may yet complete the in-flight exchange. *)
val revocation_reached : t -> world:int -> bool

val revoke : t -> unit

val set_errhandler : t -> Errdefs.handler -> unit

val errhandler : t -> Errdefs.handler

(** Raise (or otherwise dispatch) a runtime failure through the
    communicator's error handler. *)
val error : t -> Errdefs.code -> ('a, unit, string, 'b) format4 -> 'a

(** {1 Checks} *)

val check_rank : t -> int -> unit

val check_user_tag : t -> int -> unit

val any_member_failed : t -> bool

(** Comm ranks of failed members. *)
val failed_members : t -> int list

(** Record a collective entry in the strong-debug-mode trace. *)
val trace_collective : t -> string -> unit

(** Cross-rank consistency check of the recorded collective sequences. *)
val collective_trace_mismatch : shared -> string option

(** Common collective prologue: revocation and failure checks, trace
    recording, and — when the sanitizer is enabled — the collective
    call-order consistency check.  [root] is the comm-rank root ([-1] for
    unrooted collectives); [ty] the element-type name ({!Datatype.name},
    [""] when untyped).  Both are passed as plain immediates so the
    sanitizer-off path allocates nothing. *)
val check_collective : t -> op:string -> root:int -> ty:string -> unit
