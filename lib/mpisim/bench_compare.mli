(** Benchmark regression comparison over the harness's JSON Lines output:
    the engine behind [repro_cli bench-diff] and the CI perf gate.

    Records are matched across two files on their identity (bench name
    plus every non-metric field); each shared metric is compared under a
    relative tolerance.  Metric fields and their better-direction are
    recognized by naming convention: [*_seconds] and [*_peak_elems] lower
    is better, [*_per_second] and [speedup]/[*_speedup] higher is better.
    Metrics containing ["wall"] measure the host machine and are skipped
    unless [include_wall] is set. *)

type direction = Lower_better | Higher_better

(** [None] means the field is part of the record's identity, not a
    measurement. *)
val metric_direction : string -> direction option

val is_wall : string -> bool

type record = {
  r_bench : string;
  r_keys : (string * string) list;  (** identity fields, sorted by name *)
  r_metrics : (string * float) list;
}

(** Parse one JSON-Lines object into a record; [None] for non-objects. *)
val record_of_json : Json_in.t -> record option

(** Load every record of a JSON Lines file. *)
val load : string -> (record list, string) result

(** The matching key: bench name plus every identity field, rendered
    ["bench|k=v|..."] (also the [d_id] of reported deltas). *)
val identity : record -> string

type delta = {
  d_id : string;
  d_metric : string;
  d_old : float;
  d_new : float;
  d_ratio : float;  (** new / old *)
}

type verdict = {
  compared : int;
  skipped_wall : int;
  missing_baseline : int;  (** current records with no baseline match *)
  regressions : delta list;
  improvements : delta list;
}

(** Compare [current] against [baseline] under a relative [tolerance]
    (default 10%).  Current records without a baseline are counted, not
    failed, so new benchmarks never break the gate. *)
val diff :
  ?tolerance:float ->
  ?include_wall:bool ->
  baseline:record list ->
  current:record list ->
  unit ->
  verdict

val has_regressions : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit
