(* Error classes and the exceptions of the runtime.

   The runtime distinguishes, as the paper does (§III-G):
   - usage errors (invalid rank, count, tag, uncommitted type, ...), which
     are raised eagerly as [Usage_error] — these would be compile-time or
     assertion failures in KaMPIng;
   - failures (process death, revoked communicators, truncation), raised as
     [Mpi_error] — the recoverable class that error handlers and the ULFM
     plugin deal with. *)

type code =
  | Success
  | Err_truncate  (* receive buffer smaller than incoming message *)
  | Err_type  (* type signature mismatch on matched messages *)
  | Err_rank
  | Err_count
  | Err_tag
  | Err_comm  (* operation on an invalid or mismatched communicator *)
  | Err_request
  | Err_proc_failed  (* a participating process has failed (ULFM) *)
  | Err_revoked  (* communicator has been revoked (ULFM) *)
  | Err_deadlock
  | Err_rma_range  (* one-sided op out of the target window's bounds *)
  | Err_other of string

let code_name = function
  | Success -> "SUCCESS"
  | Err_truncate -> "ERR_TRUNCATE"
  | Err_type -> "ERR_TYPE"
  | Err_rank -> "ERR_RANK"
  | Err_count -> "ERR_COUNT"
  | Err_tag -> "ERR_TAG"
  | Err_comm -> "ERR_COMM"
  | Err_request -> "ERR_REQUEST"
  | Err_proc_failed -> "ERR_PROC_FAILED"
  | Err_revoked -> "ERR_REVOKED"
  | Err_deadlock -> "ERR_DEADLOCK"
  | Err_rma_range -> "ERR_RMA_RANGE"
  | Err_other s -> "ERR_OTHER(" ^ s ^ ")"

exception Mpi_error of { code : code; msg : string }

exception Usage_error of string

(* A sanitizer finding (Check module): the class of check that fired, the
   world rank at the violation site and a full report.  Kept separate from
   [Mpi_error] because a violation is a bug in the *program under
   simulation*, not a recoverable runtime failure. *)
exception Check_violation of { check : string; rank : int; msg : string }

let mpi_error code fmt =
  Printf.ksprintf (fun msg -> raise (Mpi_error { code; msg })) fmt

let usage_error fmt = Printf.ksprintf (fun msg -> raise (Usage_error msg)) fmt

let check_violation ~check ~rank fmt =
  Printf.ksprintf (fun msg -> raise (Check_violation { check; rank; msg })) fmt

(* Per-communicator error-handling strategy (MPI_Errhandler analogue). *)
type handler =
  | Errors_raise  (* raise Mpi_error (the default; idiomatic OCaml) *)
  | Errors_are_fatal  (* print and exit the simulation *)
  | Errors_custom of (code -> string -> unit)  (* plugin hook (§III-G) *)

let () =
  Printexc.register_printer (function
    | Mpi_error { code; msg } ->
        Some (Printf.sprintf "Mpi_error(%s): %s" (code_name code) msg)
    | Usage_error msg -> Some (Printf.sprintf "Usage_error: %s" msg)
    | Check_violation { check; rank; msg } ->
        Some (Printf.sprintf "Check_violation(%s) on rank %d:\n%s" check rank msg)
    | _ -> None)
