(* Shared simulation state: clocks, mailboxes, cost charging, failures.

   The hybrid clock (paper-reproduction design, see DESIGN.md §4): each rank
   has a virtual clock that advances by

   - the network model's costs for communication, and
   - either measured real CPU time of its fiber segments ([Measured] mode)
     or explicitly charged compute ([Virtual_only] mode).

   All communication goes through [inject]: the payload is already packed;
   we charge the sender, compute the arrival time, and hand the message to
   the destination mailbox. *)

(* Trace logging: enable with Logs.Src.set_level (e.g. in a debugging
   session) to see every message injection, match and failure event.  The
   level check makes this free when disabled. *)
let log_src = Logs.Src.create "mpisim" ~doc:"Message-passing runtime events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type clock_mode = Measured | Virtual_only

(* Cached handles into the stats registry for hot-path observations. *)
type metrics = {
  msg_size : Stats.histogram;  (* payload bytes per injected message *)
  msg_latency : Stats.histogram;  (* consumed-at minus sent-at, virtual seconds *)
  queue_depth : Stats.histogram;  (* receiver's unexpected-queue depth after delivery *)
  park_wait : Stats.histogram;  (* wall-clock seconds a fiber spent parked *)
  msgs_sent : Stats.counter;
  msgs_unexpected : Stats.counter;  (* delivered before a matching receive was posted *)
}

type t = {
  id : int;  (* unique per runtime; keys global registries *)
  size : int;
  model : Net_model.t;
  clock_mode : clock_mode;
  clocks : float array;
  mailboxes : Mailbox.t array;
  (* Per-rank pooled wire buffers: sends pack into a pooled writer whose
     storage is transferred (no copy) into the injected message; the
     receiver returns it via [recycle_payload] after unpacking. *)
  wire_pools : Wire.pool array;
  failed : bool array;
  mutable n_failed : int;
  (* The chaos plane: fault decisions come from [Chaos]; this runtime
     acts on them (kills, arrival shifts, escalation errors).  [None] —
     the default — keeps every fault path to a single branch. *)
  chaos : Chaos.t option;
  profile : Profiling.t;
  stats : Stats.t;
  trace : Trace.t;
  check : Check.t;
  metrics : metrics;
  (* Virtual-time accounting: every clock movement is either [busy] (cost
     charged by [advance_clock]: compute, send busy time, overheads) or
     [blocked] (a [sync_clock] jump: waiting for a message or a barrier),
     so busy.(r) +. blocked.(r) = clocks.(r) at all times. *)
  busy : float array;
  blocked : float array;
  (* Per-rank Lamport clocks: bumped on every injection, merged (max + 1)
     on every match.  Stamped into send/match trace instants (arg [d]),
     they give the causal walk a cheap cross-rank sanity invariant:
     a verified edge always has send-Lamport < match-Lamport. *)
  lamport : int array;
  (* Full vector clocks for the offline happens-before analyzer: a
     size × size matrix when enabled, the static empty atom when not.
     Lamport clocks order one chain of events; vector clocks are what
     the analyzer needs to *refute* an order — two sends with
     incomparable VCs are genuinely concurrent, i.e. a real MPI could
     deliver them either way.  Disabled (every normal run), the cost is
     one [Array.length] branch per injection/match. *)
  mutable vclocks : int array array;
  (* Per-(src,dst) traffic matrix with algorithm attribution; disabled
     (one branch per injection) unless explicitly requested. *)
  comm_matrix : Comm_matrix.t;
  progress : int Atomic.t;
  mutable msg_seq : int;
  mutable next_context : int;
  (* Assertion level: 0 = none, 1 = cheap local checks, 2 = checks that the
     real MPI library would need communication for (paper §III-G). *)
  mutable assertion_level : int;
  (* Multicore backend support.  Per-rank ownership invariant: a rank's
     fiber runs on exactly one domain at a time (the scheduler asserts
     it), so rank-indexed state touched only by its own fiber — clocks,
     busy/blocked, lamport, own vclock row, own trace ring — needs no
     locks.  Everything mutated *across* ranks (mailbox delivery,
     msg_seq, context allocation, rendezvous registries) serializes on
     [lock], taken only when [parallel] is set; sequential runs pay one
     branch. *)
  lock : Mutex.t;
  mutable parallel : bool;
}

exception Process_killed of int

let next_runtime_id = ref 0

(* Default sanitizer level: the MPISIM_CHECK environment variable
   (off|light|heavy), so any program can be checked without a code or CLI
   change.  Unset or unparsable means Off. *)
let default_check_level () =
  match Sys.getenv_opt "MPISIM_CHECK" with
  | None -> Check.Off
  | Some s -> (
      match Check.level_of_string (String.lowercase_ascii (String.trim s)) with
      | Some l -> l
      | None ->
          Log.warn (fun f -> f "ignoring invalid MPISIM_CHECK=%S (want off|light|heavy)" s);
          Check.Off)

let create ?(clock_mode = Measured) ?(assertion_level = 1) ?check_level ?chaos ~model
    ~size () =
  if size <= 0 then invalid_arg "Runtime.create: size must be positive";
  let id = !next_runtime_id in
  incr next_runtime_id;
  let clocks = Array.make size 0. in
  let stats = Stats.create () in
  let metrics =
    {
      msg_size = Stats.histogram stats "msg_size_bytes";
      msg_latency = Stats.histogram stats "msg_latency_seconds";
      queue_depth = Stats.histogram stats "mailbox_unexpected_depth";
      park_wait = Stats.histogram stats "fiber_park_wall_seconds";
      msgs_sent = Stats.counter stats "msg.sent";
      msgs_unexpected = Stats.counter stats "msg.unexpected";
    }
  in
  let trace = Trace.create ~clocks in
  let check = Check.create ~stats ~trace ~size () in
  Check.set_level check
    (match check_level with Some l -> l | None -> default_check_level ());
  let chaos =
    match chaos with
    | Some cfg -> Some (Chaos.create ~size ~model ~stats ~trace cfg)
    | None -> (
        (* A model carrying a fault profile implies chaos even without an
           explicit config: the profile alone defines the lossy network. *)
        match model.Net_model.faults with
        | Some _ -> Some (Chaos.create ~size ~model ~stats ~trace (Chaos.config ()))
        | None -> None)
  in
  {
    id;
    size;
    model;
    clock_mode;
    clocks;
    mailboxes = Array.init size (fun _ -> Mailbox.create ());
    wire_pools = Array.init size (fun _ -> Wire.create_pool ());
    failed = Array.make size false;
    n_failed = 0;
    chaos;
    profile = Profiling.create ~stats ();
    stats;
    trace;
    check;
    metrics;
    busy = Array.make size 0.;
    blocked = Array.make size 0.;
    lamport = Array.make size 0;
    vclocks = [||];
    comm_matrix = Comm_matrix.create ~size;
    progress = Atomic.make 0;
    msg_seq = 0;
    next_context = 0;
    assertion_level;
    lock = Mutex.create ();
    parallel = false;
  }

let bump_progress t = Atomic.incr t.progress

let progress_count t = Atomic.get t.progress

(* Switch the runtime into multicore mode: cross-rank mutations start
   taking [lock], the stats registry and the wire pools arm their own
   guards.  One-way; called by the engine before the domain-pool
   scheduler starts. *)
let set_parallel t =
  if not t.parallel then begin
    t.parallel <- true;
    Stats.set_threadsafe t.stats;
    Profiling.set_threadsafe t.profile;
    Array.iter Wire.set_pool_threadsafe t.wire_pools
  end

(* Run [f] under the global runtime lock when in multicore mode; a plain
   call sequentially.  NOT reentrant — never nest, and never park the
   fiber inside [f]. *)
let[@inline] locked t f =
  if not t.parallel then f ()
  else begin
    Mutex.lock t.lock;
    match f () with
    | v ->
        Mutex.unlock t.lock;
        v
    | exception e ->
        Mutex.unlock t.lock;
        raise e
  end

(* Switch on O(p)-per-event vector-clock stamping (trace analysis mode). *)
let enable_vector_clocks t =
  if Array.length t.vclocks = 0 then
    t.vclocks <- Array.init t.size (fun _ -> Array.make t.size 0)

let vector_clock t rank =
  if Array.length t.vclocks = 0 then [||] else Array.copy t.vclocks.(rank)

let fresh_context t =
  locked t (fun () ->
      let c = t.next_context in
      t.next_context <- c + 1;
      c)

let clock t rank = t.clocks.(rank)

let advance_clock t rank dt =
  if dt > 0. then begin
    t.clocks.(rank) <- t.clocks.(rank) +. dt;
    t.busy.(rank) <- t.busy.(rank) +. dt
  end

let sync_clock t rank time =
  if time > t.clocks.(rank) then begin
    t.blocked.(rank) <- t.blocked.(rank) +. (time -. t.clocks.(rank));
    t.clocks.(rank) <- time
  end

(* Measured CPU segments are reported by the engine through this hook.
   When tracing, the segment becomes a complete span on the rank's CPU
   track, reaching back from the post-advance clock. *)
let on_cpu_segment t rank dt =
  if t.clock_mode = Measured && rank >= 0 && rank < t.size then begin
    advance_clock t rank dt;
    if dt > 0. then Trace.complete t.trace ~rank ~cat:"sched" ~name:"segment" ~dur:dt
  end

(* Charge modelled compute explicitly (used by Virtual_only programs and by
   cost knobs that represent work our implementation does not perform). *)
let charge_compute t rank seconds = advance_clock t rank seconds

(* Pack/unpack cost: in Measured mode this CPU work is captured by segment
   measurement; in Virtual_only mode we charge the model's copy rate. *)
let charge_copy t rank ~bytes =
  if t.clock_mode = Virtual_only then
    advance_clock t rank (float_of_int bytes *. t.model.Net_model.copy_byte_time)

let is_failed t rank = t.failed.(rank)

let kill t rank =
  if not t.failed.(rank) then begin
    Log.info (fun f -> f "rank %d failed (injected)" rank);
    Trace.instant t.trace ~rank ~cat:"sim" ~name:"kill" ~a:(-1) ~b:(-1) ~c:(-1);
    t.failed.(rank) <- true;
    t.n_failed <- t.n_failed + 1;
    bump_progress t
  end

let check_alive t rank =
  if t.failed.(rank) then raise (Process_killed rank);
  match t.chaos with
  | None -> ()
  | Some ch ->
      (* Fault-plan triggers fire on the victim's own operation count or
         virtual clock, so the victim dies at a deterministic point in its
         program rather than at a scheduler-dependent one. *)
      if Chaos.tick ch ~rank ~now:t.clocks.(rank) then begin
        kill t rank;
        raise (Process_killed rank)
      end

(* Task-execution trigger point: the taskqueue plugin calls this as each
   task begins, so [fail=R@task:K] plans kill the rank at a deterministic
   task index rather than at an operation count that depends on the
   queue's message traffic. *)
let task_tick t rank =
  if t.failed.(rank) then raise (Process_killed rank);
  match t.chaos with
  | None -> ()
  | Some ch ->
      if Chaos.task_tick ch ~rank then begin
        kill t rank;
        raise (Process_killed rank)
      end

let any_failed t = t.n_failed > 0

(* A pooled writer for packing one outgoing message on [rank].  Its
   storage must end up either in an injected message (via
   [Wire.unsafe_contents]) or back in the pool. *)
let acquire_writer t rank ~capacity = Wire.acquire t.wire_pools.(rank) ~capacity

(* Pre-warm a rank's pool so the next acquire fits without allocating
   (persistent-request init). *)
let preheat_writer t rank ~capacity = Wire.preheat t.wire_pools.(rank) ~capacity

(* Return a consumed message's payload storage to the receiver's pool.
   Safe to call at most once per message; callers do so only after the
   payload has been fully unpacked or copied out. *)
let recycle_payload t (m : Message.t) =
  if not m.Message.consumed then begin
    m.Message.consumed <- true;
    if m.Message.dst >= 0 && m.Message.dst < t.size then
      Wire.recycle t.wire_pools.(m.Message.dst) m.Message.payload
  end

(* Inject a packed message.  The payload is a (storage, offset, length)
   slice whose storage the message now owns — typically a pooled writer's
   buffer handed over without a copy.  Charges the sender; returns the
   message so the caller can build a request around it (ssend completion
   etc.). *)
let inject t ~context ~src ~dst ~tag ~payload ~payload_off ~payload_len ~count ~signature
    ~sync =
  if dst < 0 || dst >= t.size then Errdefs.usage_error "send: invalid destination rank %d" dst;
  let bytes = payload_len in
  let busy = Net_model.send_busy_time t.model ~bytes in
  advance_clock t src busy;
  let sent_at = t.clocks.(src) in
  (* Cross-rank section: sequence allocation and mailbox delivery mutate
     the receiver's state, so the whole injection serializes under the
     runtime lock in multicore mode (plain call sequentially). *)
  locked t @@ fun () ->
  let seq = t.msg_seq in
  t.msg_seq <- seq + 1;
  let transit = Net_model.transit_time t.model in
  let arrival, crc, link_seq =
    match t.chaos with
    | None -> (sent_at +. transit, -1, -1)
    | Some ch ->
        (* Absolute-time failure triggers use the sender's clock as the
           global progress proxy; the scheduler's wake hook discontinues
           any victim that is currently parked. *)
        List.iter (fun r -> kill t r) (Chaos.due_time_failures ch ~now:sent_at);
        if t.failed.(src) then raise (Process_killed src);
        if src = dst then (sent_at +. transit, -1, -1)
        else begin
          (* Frame the payload before any corruption decision so the
             receiver-side CRC backstop can detect a flip end to end. *)
          let crc = Wire.crc32 payload ~pos:payload_off ~len:payload_len in
          let tr = Chaos.on_transfer ch ~src ~dst ~seq ~bytes ~now:sent_at in
          advance_clock t src tr.Chaos.tr_sender_busy;
          if tr.Chaos.tr_escalated then begin
            (* Retransmission budget exhausted: the reliable layer's
               failure detector declares the peer dead (ULFM semantics)
               and the send fails with ERR_PROC_FAILED. *)
            kill t dst;
            Errdefs.mpi_error Errdefs.Err_proc_failed
              "send %d->%d: no acknowledgement after %d attempts; peer declared failed"
              src dst tr.Chaos.tr_attempts
          end;
          if tr.Chaos.tr_corrupt then
            Chaos.corrupt_payload ch payload ~pos:payload_off ~len:payload_len;
          (sent_at +. transit +. tr.Chaos.tr_delay, crc, tr.Chaos.tr_link_seq)
        end
  in
  (* Lamport send rule: the injection is a local event, so tick first;
     the message carries the post-tick value for the receiver to merge. *)
  let lam = t.lamport.(src) + 1 in
  t.lamport.(src) <- lam;
  (* Vector-clock send rule: tick own component, stamp a snapshot into
     the message for the receiver's merge and the offline analyzer. *)
  let vc =
    if Array.length t.vclocks = 0 then [||]
    else begin
      let row = t.vclocks.(src) in
      row.(src) <- row.(src) + 1;
      Array.copy row
    end
  in
  let m =
    Message.make ~crc ~link_seq ~lamport:lam ~vc ~context ~src ~dst ~tag ~payload
      ~payload_off ~payload_len ~count ~signature ~sent_at ~arrival ~seq ~sync ()
  in
  Log.debug (fun f ->
      f "inject ctx=%d %d->%d tag=%d count=%d bytes=%d%s" context src dst tag count bytes
        (if sync then " (sync)" else ""));
  Stats.incr t.metrics.msgs_sent;
  Stats.observe_int t.metrics.msg_size bytes;
  Comm_matrix.record t.comm_matrix ~src ~dst ~bytes;
  Trace.instant_d t.trace ~rank:src ~cat:"sim" ~name:"send" ~a:dst ~b:seq ~c:bytes ~d:lam;
  if Array.length vc > 0 then begin
    (* The VC record annotates the send instant just written; the meta
       instant carries the fields the analyzer needs that the send
       instant has no room for (tag, context, sync flag). *)
    Trace.vector_clock t.trace ~rank:src ~vc;
    Trace.instant_d t.trace ~rank:src ~cat:"sim" ~name:"send_meta" ~a:tag ~b:seq ~c:context
      ~d:(if sync then 1 else 0)
  end;
  let matched = Mailbox.deliver t.mailboxes.(dst) m in
  if not matched then begin
    Stats.incr t.metrics.msgs_unexpected;
    Stats.observe_int t.metrics.queue_depth
      (Mailbox.unexpected_depth t.mailboxes.(dst))
  end;
  bump_progress t;
  m

(* Receiver-side completion accounting for a matched message: jump to the
   arrival time and pay the receive overhead.  The unpack cost itself is
   charged separately via [charge_copy] (or measured). *)
let complete_receive t rank (m : Message.t) =
  (* Reliable-layer backstop: verify the payload CRC stamped at injection.
     Only corrupted payloads that the chaos plane chose to deliver
     ([deliver_corrupt]) can reach this point with a mismatch. *)
  (if m.Message.crc >= 0 && not m.Message.consumed then begin
     let got =
       Wire.crc32 m.Message.payload ~pos:m.Message.payload_off
         ~len:m.Message.payload_len
     in
     if got <> m.Message.crc then begin
       if Check.enabled t.check then
         Check.on_crc_mismatch t.check ~rank ~src:m.Message.src
           ~expected:m.Message.crc ~got
       else
         Errdefs.mpi_error (Errdefs.Err_other "ERR_DATA_CORRUPT")
           "recv: payload CRC mismatch on message from rank %d" m.Message.src
     end
   end);
  let was_waiting = m.Message.arrival > t.clocks.(rank) in
  sync_clock t rank m.Message.arrival;
  (* Consumed-at latency: how long after the sender released the message
     the receiver actually absorbed it (transit + queueing + skew). *)
  Stats.observe t.metrics.msg_latency (t.clocks.(rank) -. m.Message.sent_at);
  (* Lamport receive rule: merge the sender's clock, then tick. *)
  let lam = (if m.Message.lamport > t.lamport.(rank) then m.Message.lamport else t.lamport.(rank)) + 1 in
  t.lamport.(rank) <- lam;
  Trace.instant_d t.trace ~rank ~cat:"sim"
    ~name:(if was_waiting then "match_wait" else "match")
    ~a:m.Message.src ~b:m.Message.seq ~c:(Message.bytes m) ~d:lam;
  (* Vector-clock receive rule: component-wise max with the message's
     snapshot, then tick own component; the record annotates the match
     instant just written (the receiver's post-merge view is the race
     analyzer's witness for everything causally before this match). *)
  if Array.length t.vclocks > 0 then begin
    let row = t.vclocks.(rank) in
    let mvc = m.Message.vc in
    if Array.length mvc > 0 then
      for i = 0 to t.size - 1 do
        if mvc.(i) > row.(i) then row.(i) <- mvc.(i)
      done;
    row.(rank) <- row.(rank) + 1;
    Trace.vector_clock t.trace ~rank ~vc:row
  end;
  advance_clock t rank t.model.Net_model.recv_overhead;
  bump_progress t

let record t ~op ~bytes = Profiling.record t.profile ~op ~bytes

(* Wall-clock park duration, reported by the engine's scheduler hooks. *)
let observe_park_wait t seconds = Stats.observe t.metrics.park_wait seconds

(* Trace span around [f] on [rank]'s virtual timeline; a plain call when
   tracing is disabled. *)
let with_span t rank ~cat ~name f = Trace.with_span t.trace ~rank ~cat ~name f

let max_clock t = Array.fold_left Float.max 0. t.clocks

let lamport_clock t rank = t.lamport.(rank)
