(** Metrics registry: counters, gauges and log2-bucketed histograms.

    The registry generalizes the per-op call/byte table of {!Profiling}
    (which is now implemented on top of it): the runtime feeds it
    message-size, message-latency, mailbox-depth and fiber-park-duration
    distributions; exporters turn it into text ({!pp}) or JSON
    ({!to_json}).

    All update operations ([incr], [add], [set], [observe]) are
    allocation-free, so they may sit on simulator hot paths.

    Domain safety: counters are atomic, so increments from any domain
    are never lost; gauges are word-sized stores (last-writer-wins,
    never torn).  Histogram observation and name registration are
    multi-field updates and take an internal lock — but only after
    {!set_threadsafe} marks the registry as shared between domains;
    purely sequential runs keep the original lock-free paths. *)

type t

type counter

type gauge

(** Histogram over floats with power-of-two buckets (2{^-40} .. 2{^40});
    values [<= 0] land in the first bucket, larger values in an overflow
    bucket.  Tracks count, sum, min and max exactly; quantiles are
    bucket-resolution approximations. *)
type histogram

val create : unit -> t

(** Flip the registry into cross-domain mode: registration and histogram
    observations lock from now on (counter/gauge updates are safe either
    way).  One-way; called by the engine when the multicore scheduler
    backend is selected. *)
val set_threadsafe : t -> unit

(** [counter t name] returns the counter registered under [name],
    creating it on first use.  The handle may be cached; updates through
    it are visible to reporting. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge

val histogram : t -> string -> histogram

val incr : counter -> unit

val add : counter -> int -> unit

val count : counter -> int

val set : gauge -> float -> unit

val value : gauge -> float

val observe : histogram -> float -> unit

val observe_int : histogram -> int -> unit

val total : histogram -> int

val sum : histogram -> float

val mean : histogram -> float

val min_value : histogram -> float

val max_value : histogram -> float

(** Non-empty buckets as [(lower-exclusive, upper-inclusive, count)];
    the first bucket's lower bound is [neg_infinity] (it also holds all
    values [<= 0]) and the overflow bucket's upper bound is [infinity]. *)
val buckets : histogram -> (float * float * int) list

(** [quantile h q] for [q] in [0,1]: the upper bound of the bucket holding
    the q-th observation (exact max for the overflow bucket). *)
val quantile : histogram -> float -> float

(** Iteration (and hence {!pp} / {!json_into} output) is sorted by metric
    name, so dumps are deterministic and diffable across runs. *)
val iter_counters : t -> (string -> counter -> unit) -> unit

val iter_gauges : t -> (string -> gauge -> unit) -> unit

val iter_histograms : t -> (string -> histogram -> unit) -> unit

(** Value formatters for histogram reports. *)
val fmt_bytes : float -> string

val fmt_seconds : float -> string

val pp_histogram : ?fmt:(float -> string) -> Format.formatter -> histogram -> unit

(** Full text dump.  Histograms whose name ends in [_bytes] / [_seconds]
    are formatted with the matching unit formatter. *)
val pp : Format.formatter -> t -> unit

val json_into : Buffer.t -> t -> unit

val to_json : t -> string
