(** PMPI-style profiling: per-operation call and byte counters.

    The paper verifies through MPI's profiling interface that the binding
    layer issues exactly the expected underlying calls when it computes
    default parameters (§III-H); tests here do the same via
    {!snapshot}/{!diff}.

    The table is a facade over a {!Stats.t} registry: each op owns the
    counter pair [mpi.<op>.calls] / [mpi.<op>.bytes], so the same numbers
    appear in the general metrics exports. *)

type t

type summary = (string * int * int) list
(** (operation, calls, bytes), sorted by operation name. *)

(** [create ?stats ()] registers the op counters in [stats] (a private
    registry if omitted). *)
val create : ?stats:Stats.t -> unit -> t

val record : t -> op:string -> bytes:int -> unit

(** Guard the op-handle cache with an internal lock from now on, so
    {!record}/{!prepare} are safe from several domains (the counters
    themselves are atomic either way).  One-way; armed by the engine's
    multicore backend. *)
val set_threadsafe : t -> unit

(** Pre-resolved counter handles for an op, for allocation-free hot paths
    (persistent-request cycles): {!prepare} pays the hash lookup once,
    {!record_prepared} is then two counter bumps. *)
type prepared

val prepare : t -> string -> prepared

val record_prepared : t -> prepared -> bytes:int -> unit

val set_enabled : t -> bool -> unit

val snapshot : t -> summary

val calls : t -> op:string -> int

val bytes : t -> op:string -> int

val total_calls : t -> int

(** Operations whose counters changed between two snapshots, with deltas.
    Symmetric: ops present only in [before] appear with negative deltas
    (a reset or rename cannot hide a change). *)
val diff : before:summary -> after:summary -> summary

val pp_summary : Format.formatter -> summary -> unit
