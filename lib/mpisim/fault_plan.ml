(* Declarative fault plans for the chaos plane.

   A plan is a list of deterministic fault actions, independent of the
   random per-link rates: fail a rank when its own operation counter or
   virtual clock reaches a threshold, drop the n-th message of a specific
   link, or partition a rank set from the rest for a window of simulated
   time.  Plans parse from a compact clause syntax so they travel well on
   a command line ([repro_cli --chaos]) and in CI logs:

     fail=2@ops:40          rank 2 fails at its 40th runtime operation
     fail=1@t:3.5e-6        rank 1 fails when its clock reaches 3.5us
     fail=3@task:7          rank 3 fails when it begins its 7th task
                            execution (taskqueue plugin workloads)
     droplink=0>1@3         the 3rd message on link 0->1 loses its first
                            transmission attempt (the reliable layer
                            retransmits it)
     partition=1,3@1e-6-5e-6  ranks {1,3} are cut off from the rest for
                            simulated time [1e-6, 5e-6)

   The interpreter lives in [Chaos]; this module is pure data + parsing. *)

type action =
  | Fail_at_ops of { rank : int; ops : int }
  | Fail_at_time of { rank : int; time : float }
  | Fail_at_task of { rank : int; task : int }
  | Drop_nth of { src : int; dst : int; n : int }
  | Partition of { ranks : int list; t_start : float; t_end : float }

type t = action list

let empty = []

let action_to_string = function
  | Fail_at_ops { rank; ops } -> Printf.sprintf "fail=%d@ops:%d" rank ops
  | Fail_at_time { rank; time } -> Printf.sprintf "fail=%d@t:%g" rank time
  | Fail_at_task { rank; task } -> Printf.sprintf "fail=%d@task:%d" rank task
  | Drop_nth { src; dst; n } -> Printf.sprintf "droplink=%d>%d@%d" src dst n
  | Partition { ranks; t_start; t_end } ->
      Printf.sprintf "partition=%s@%g-%g"
        (String.concat "," (List.map string_of_int ranks))
        t_start t_end

let to_string plan = String.concat ";" (List.map action_to_string plan)

(* ------------------------------------------------------------------ *)
(* Parsing.  Every helper returns a result so a bad spec surfaces as a
   message naming the offending clause, not as an exception. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_of clause s =
  match int_of_string_opt (String.trim s) with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: %S is not an integer" clause s)

let float_of clause s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: %S is not a number" clause s)

let split2 clause ~on s =
  match String.index_opt s on with
  | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> Error (Printf.sprintf "%s: expected %c in %S" clause on s)

let parse_fail clause rhs =
  let* rank_s, trigger = split2 clause ~on:'@' rhs in
  let* rank = int_of clause rank_s in
  if rank < 0 then Error (Printf.sprintf "%s: negative rank" clause)
  else
    let* kind, value = split2 clause ~on:':' trigger in
    match String.trim kind with
    | "ops" ->
        let* ops = int_of clause value in
        if ops < 1 then Error (Printf.sprintf "%s: op count must be >= 1" clause)
        else Ok (Fail_at_ops { rank; ops })
    | "t" ->
        let* time = float_of clause value in
        if time < 0. then Error (Printf.sprintf "%s: negative time" clause)
        else Ok (Fail_at_time { rank; time })
    | "task" ->
        let* task = int_of clause value in
        if task < 1 then Error (Printf.sprintf "%s: task index must be >= 1" clause)
        else Ok (Fail_at_task { rank; task })
    | k -> Error (Printf.sprintf "%s: unknown trigger %S (want ops:, t: or task:)" clause k)

let parse_droplink clause rhs =
  let* link, n_s = split2 clause ~on:'@' rhs in
  let* src_s, dst_s = split2 clause ~on:'>' link in
  let* src = int_of clause src_s in
  let* dst = int_of clause dst_s in
  let* n = int_of clause n_s in
  if src < 0 || dst < 0 then Error (Printf.sprintf "%s: negative rank" clause)
  else if n < 1 then Error (Printf.sprintf "%s: message index is 1-based" clause)
  else Ok (Drop_nth { src; dst; n })

(* The window separator is the first '-' that is neither a leading sign
   nor part of a scientific-notation exponent: "1e-06-5e-06" must split
   after "1e-06", not inside it (which is exactly what [to_string]
   prints for sub-microsecond windows via %g). *)
let split_window clause s =
  let n = String.length s in
  let rec find i =
    if i >= n then None
    else if s.[i] = '-' && s.[i - 1] <> 'e' && s.[i - 1] <> 'E' then Some i
    else find (i + 1)
  in
  match find 1 with
  | Some i -> Ok (String.sub s 0 i, String.sub s (i + 1) (n - i - 1))
  | None -> Error (Printf.sprintf "%s: expected start-end window in %S" clause s)

let parse_partition clause rhs =
  let* ranks_s, window = split2 clause ~on:'@' rhs in
  let* ranks =
    String.split_on_char ',' ranks_s
    |> List.fold_left
         (fun acc s ->
           let* acc = acc in
           let* r = int_of clause s in
           if r < 0 then Error (Printf.sprintf "%s: negative rank" clause)
           else Ok (r :: acc))
         (Ok [])
  in
  let ranks = List.sort_uniq compare ranks in
  if ranks = [] then Error (Printf.sprintf "%s: empty rank set" clause)
  else
    let* t0_s, t1_s = split_window clause window in
    let* t_start = float_of clause t0_s in
    let* t_end = float_of clause t1_s in
    if t_start < 0. || t_end < t_start then
      Error (Printf.sprintf "%s: window must satisfy 0 <= start <= end" clause)
    else Ok (Partition { ranks; t_start; t_end })

(* One clause, e.g. "fail=2@ops:40". *)
let parse_action (clause : string) : (action, string) result =
  let clause = String.trim clause in
  let* key, rhs = split2 clause ~on:'=' clause in
  match String.trim key with
  | "fail" -> parse_fail clause rhs
  | "droplink" -> parse_droplink clause rhs
  | "partition" -> parse_partition clause rhs
  | k -> Error (Printf.sprintf "unknown fault-plan clause %S in %S" k clause)

(* A ';'-separated clause list; empty clauses are skipped so trailing
   separators are harmless. *)
let parse (s : string) : (t, string) result =
  String.split_on_char ';' s
  |> List.fold_left
       (fun acc clause ->
         let* acc = acc in
         if String.trim clause = "" then Ok acc
         else
           let* a = parse_action clause in
           Ok (a :: acc))
       (Ok [])
  |> Result.map List.rev

let pp ppf t = Format.pp_print_string ppf (to_string t)
