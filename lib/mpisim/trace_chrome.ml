(* Chrome trace-event JSON emission, shared by the in-memory ring
   exporter (Trace) and the offline stream converter (Trace_stream).

   Both sinks record the same logical events; this module owns the
   rendering rules so the two export paths cannot drift:

   - one "thread" per rank on the virtual timeline; [Complete] events
     (scheduler CPU segments) go to a separate per-rank track so their
     overlap with operation spans cannot break B/E nesting;
   - message-flow arrows: a "send" instant opens a Chrome flow event
     (ph "s") keyed by the global message sequence number and the
     matching "match"/"match_wait" instant closes it (ph "f", bp "e"),
     so the viewer draws an arrow from injection to match;
   - zero-duration [Complete] spans are clamped to a minimum visible
     epsilon and tagged [zero_dur=1] so they do not vanish in the
     viewer. *)

type kind = Begin | End | Instant | Complete

let us ts = ts *. 1e6

(* Minimum rendered duration for a Complete span: 1ns on the microsecond
   scale the format uses.  Real spans of exactly zero virtual length are
   common in Virtual_only mode (uncharged segments). *)
let zero_dur_epsilon_us = 1e-3

(* A send instant opens a flow, a match instant closes it; the flow id is
   the global message sequence number carried in arg [b]. *)
let flow_phase ~kind ~cat ~name ~b =
  if kind <> Instant || cat <> "sim" || b < 0 then None
  else if String.equal name "send" then Some "s"
  else if String.equal name "match" || String.equal name "match_wait" then Some "f"
  else None

let write_flow buf arr ~tid ~phase ~id ~ts =
  Json_out.sep arr;
  let o = Json_out.start_obj buf in
  Json_out.field_str o "name" "msg";
  Json_out.field_str o "cat" "flow";
  Json_out.field_str o "ph" phase;
  Json_out.field_int o "id" id;
  Json_out.field_int o "pid" 0;
  Json_out.field_int o "tid" tid;
  Json_out.field_float o "ts" (us ts);
  if String.equal phase "f" then Json_out.field_str o "bp" "e";
  Json_out.end_obj o

(* Write one event (plus its flow arrow end, if any) into the
   [traceEvents] array [arr].  [nranks] fixes the CPU-track tid offset. *)
let event buf arr ~nranks ~rank ~kind ~cat ~name ~ts ~dur ~a ~b ~c ~d =
  let tid = if kind = Complete then nranks + rank else rank in
  let zero_dur = kind = Complete && dur <= 0. in
  Json_out.sep arr;
  let o = Json_out.start_obj buf in
  Json_out.field_str o "name" name;
  Json_out.field_str o "cat" cat;
  Json_out.field_str o "ph"
    (match kind with Begin -> "B" | End -> "E" | Instant -> "i" | Complete -> "X");
  Json_out.field_int o "pid" 0;
  Json_out.field_int o "tid" tid;
  (match kind with
  | Complete ->
      Json_out.field_float o "ts" (us (ts -. dur));
      Json_out.field_float o "dur" (if zero_dur then zero_dur_epsilon_us else us dur)
  | Begin | End -> Json_out.field_float o "ts" (us ts)
  | Instant ->
      Json_out.field_float o "ts" (us ts);
      Json_out.field_str o "s" "t");
  if a >= 0 || b >= 0 || c >= 0 || d >= 0 || zero_dur then begin
    Json_out.key o "args";
    let args = Json_out.start_obj buf in
    if a >= 0 then Json_out.field_int args "a" a;
    if b >= 0 then Json_out.field_int args "b" b;
    if c >= 0 then Json_out.field_int args "c" c;
    if d >= 0 then Json_out.field_int args "lamport" d;
    if zero_dur then Json_out.field_int args "zero_dur" 1;
    Json_out.end_obj args
  end;
  Json_out.end_obj o;
  match flow_phase ~kind ~cat ~name ~b with
  | Some phase -> write_flow buf arr ~tid:rank ~phase ~id:b ~ts
  | None -> ()

let write_thread_name buf arr ~tid ~name =
  Json_out.sep arr;
  let o = Json_out.start_obj buf in
  Json_out.field_str o "name" "thread_name";
  Json_out.field_str o "ph" "M";
  Json_out.field_int o "pid" 0;
  Json_out.field_int o "tid" tid;
  Json_out.key o "args";
  let args = Json_out.start_obj buf in
  Json_out.field_str args "name" name;
  Json_out.end_obj args;
  Json_out.end_obj o

let thread_names buf arr ~nranks =
  for rank = 0 to nranks - 1 do
    write_thread_name buf arr ~tid:rank ~name:(Printf.sprintf "rank %d" rank);
    write_thread_name buf arr ~tid:(nranks + rank)
      ~name:(Printf.sprintf "rank %d cpu" rank)
  done
