(* The chaos plane: a seeded, fully deterministic fault-injection engine.

   Everything random is drawn from one xoshiro256** stream in simulation
   order; because the scheduler is deterministic round-robin, identical
   (seed, fault plan, program) triples replay the exact same chaos event
   sequence — the event log is byte-identical across runs.

   The module owns fault *decisions*; the runtime *acts* on them (kills
   ranks, adjusts arrival times, raises errors), so [Chaos] depends only
   on the model/PRNG/observability layers and never on [Runtime].

   Reliable delivery is modelled at injection time: a simulated send is a
   synchronous call, so instead of literally re-entering the network we
   roll the per-attempt faults in a loop — each lost or corrupted attempt
   adds an exponential-backoff timeout to the arrival time and a
   retransmission to the sender's costs; when the attempt budget is
   exhausted the transfer escalates (the sender's failure detector
   declares the peer dead: ERR_PROC_FAILED, the ULFM path).  Consequences:

   - duplicates are counted and logged but never enqueued (the layer's
     receive-side sequence numbers discard them);
   - corruption is detected by the payload CRC, so a corrupted attempt is
     a retransmission, never silent bad data.  The [deliver_corrupt] test
     knob instead delivers the corrupted payload so the receiver-side CRC
     backstop can be exercised;
   - reordering only shifts arrival timestamps: matching order is
     restored by the sequence numbers, as in any reliable transport. *)

type config = {
  seed : int;
  rates : Net_model.link_rates option;
      (* default per-link rates; [None] falls back to the model's fault
         profile (or, with [lossy], the standard lossy rates) *)
  links : ((int * int) * Net_model.link_rates) list;  (* per-link overrides *)
  lossy : bool;  (* start from [Net_model.lossy_rates] when [rates] is None *)
  plan : Fault_plan.t;
  max_retries : int option;  (* retransmissions before escalating; None = profile *)
  rto : float option;  (* base retransmit timeout; None = profile (4 x latency) *)
  backoff : float option;  (* per-attempt timeout multiplier; None = profile *)
  jitter_cap : float option;  (* accumulated-jitter bound; None = profile *)
  deliver_corrupt : bool;  (* test knob: deliver corrupted payloads *)
}

let config ?(seed = 1) ?rates ?(links = []) ?(lossy = false) ?(plan = Fault_plan.empty)
    ?max_retries ?rto ?backoff ?jitter_cap ?(deliver_corrupt = false) () =
  { seed; rates; links; lossy; plan; max_retries; rto; backoff; jitter_cap; deliver_corrupt }

(* A deterministic plan trigger with a fired latch (so `ops >= k` cannot
   re-fire after the threshold passes). *)
type fail_trigger = {
  ft_rank : int;
  ft_kind : [ `Ops of int | `Time of float | `Task of int ];
  mutable ft_fired : bool;
}

type t = {
  cfg : config;
  rng : Xoshiro.t;
  size : int;
  profile : Net_model.fault_profile;
  max_retries : int;  (* resolved: config override or profile policy *)
  rto : float;
  backoff : float;
  jitter_cap : float;
  latency : float;
  send_overhead : float;
  trace : Trace.t;
  (* counters and the RTT histogram, exposed through the Stats registry *)
  c_dropped : Stats.counter;
  c_duplicated : Stats.counter;
  c_corrupted : Stats.counter;
  c_reordered : Stats.counter;
  c_retransmits : Stats.counter;
  c_escalations : Stats.counter;
  c_plan_failures : Stats.counter;
  h_rtt : Stats.histogram;
  (* deterministic event log (byte-identical for identical seed + plan) *)
  log : Buffer.t;
  mutable n_events : int;
  op_counts : int array;  (* per-rank runtime-operation counter *)
  task_counts : int array;  (* per-rank task-execution counter (taskqueue) *)
  triggers : fail_trigger list;
  drop_nth : ((int * int) * int) list;
  partitions : (int list * float * float) list;
  link_counts : (int * int, int ref) Hashtbl.t;
}

(* Cap the replay log so a long lossy soak cannot grow memory without
   bound; the cap is deterministic, so determinism comparisons survive
   truncation. *)
let max_log_events = 200_000

let create ~size ~(model : Net_model.t) ~stats ~trace (cfg : config) : t =
  let profile =
    match cfg.rates with
    | Some r ->
        { Net_model.default_rates = r; link_overrides = cfg.links;
          retry = Net_model.default_retry }
    | None ->
        if cfg.lossy then
          {
            Net_model.default_rates = Net_model.lossy_rates ~latency:model.Net_model.latency;
            link_overrides = cfg.links;
            retry = Net_model.default_retry;
          }
        else (
          match model.Net_model.faults with
          | Some p -> { p with Net_model.link_overrides = cfg.links @ p.Net_model.link_overrides }
          | None ->
              { Net_model.default_rates = Net_model.perfect_link;
                link_overrides = cfg.links; retry = Net_model.default_retry })
  in
  (* Retransmission policy: the profile's, with config overrides on top. *)
  let retry = profile.Net_model.retry in
  let pick opt dflt = match opt with Some v -> v | None -> dflt in
  let triggers, drop_nth, partitions =
    List.fold_left
      (fun (ts, ds, ps) -> function
        | Fault_plan.Fail_at_ops { rank; ops } ->
            ({ ft_rank = rank; ft_kind = `Ops ops; ft_fired = false } :: ts, ds, ps)
        | Fault_plan.Fail_at_time { rank; time } ->
            ({ ft_rank = rank; ft_kind = `Time time; ft_fired = false } :: ts, ds, ps)
        | Fault_plan.Fail_at_task { rank; task } ->
            ({ ft_rank = rank; ft_kind = `Task task; ft_fired = false } :: ts, ds, ps)
        | Fault_plan.Drop_nth { src; dst; n } -> (ts, ((src, dst), n) :: ds, ps)
        | Fault_plan.Partition { ranks; t_start; t_end } ->
            (ts, ds, (ranks, t_start, t_end) :: ps))
      ([], [], []) cfg.plan
  in
  {
    cfg;
    rng = Xoshiro.create ~seed:cfg.seed ~stream:0xC4A05;
    size;
    profile;
    max_retries = pick cfg.max_retries retry.Net_model.max_retries;
    rto =
      pick cfg.rto
        (pick retry.Net_model.rto (4. *. model.Net_model.latency));
    backoff = pick cfg.backoff retry.Net_model.backoff;
    jitter_cap = pick cfg.jitter_cap retry.Net_model.jitter_cap;
    latency = model.Net_model.latency;
    send_overhead = model.Net_model.send_overhead;
    trace;
    c_dropped = Stats.counter stats "chaos.dropped";
    c_duplicated = Stats.counter stats "chaos.duplicated";
    c_corrupted = Stats.counter stats "chaos.corrupted";
    c_reordered = Stats.counter stats "chaos.reordered";
    c_retransmits = Stats.counter stats "chaos.retransmits";
    c_escalations = Stats.counter stats "chaos.escalations";
    c_plan_failures = Stats.counter stats "chaos.plan_failures";
    h_rtt = Stats.histogram stats "reliable.rtt";
    log = Buffer.create 256;
    n_events = 0;
    op_counts = Array.make size 0;
    task_counts = Array.make size 0;
    triggers;
    drop_nth;
    partitions;
    link_counts = Hashtbl.create 16;
  }

let seed t = t.cfg.seed

let deliver_corrupt t = t.cfg.deliver_corrupt

let events t = t.n_events

let log_contents t = Buffer.contents t.log

(* One event: counter + replay-log line + (when tracing) an instant on
   the source rank's track. *)
let event t ~rank ~name fmt =
  Printf.ksprintf
    (fun detail ->
      t.n_events <- t.n_events + 1;
      if t.n_events <= max_log_events then begin
        Buffer.add_string t.log
          (Printf.sprintf "[%d] %s %s\n" (t.n_events - 1) name detail);
        if t.n_events = max_log_events then
          Buffer.add_string t.log "[...] chaos log truncated\n"
      end;
      if rank >= 0 && rank < t.size then
        Trace.instant t.trace ~rank ~cat:"chaos" ~name ~a:(-1) ~b:(-1) ~c:(-1))
    fmt

(* ------------------------------------------------------------------ *)
(* Plan triggers *)

(* Count one runtime operation of [rank] (called from Runtime.check_alive,
   which every MPI-level operation passes through) and report whether a
   plan trigger says the rank dies here.  [now] is the rank's own clock. *)
let tick t ~rank ~now : bool =
  t.op_counts.(rank) <- t.op_counts.(rank) + 1;
  let ops = t.op_counts.(rank) in
  List.exists
    (fun ft ->
      if ft.ft_fired || ft.ft_rank <> rank then false
      else
        let due =
          match ft.ft_kind with
          | `Ops k -> ops >= k
          | `Time time -> now >= time
          | `Task _ -> false
        in
        if due then begin
          ft.ft_fired <- true;
          Stats.incr t.c_plan_failures;
          (match ft.ft_kind with
          | `Ops k -> event t ~rank ~name:"plan_fail" "rank=%d ops=%d" rank k
          | `Time time -> event t ~rank ~name:"plan_fail" "rank=%d t=%g" rank time
          | `Task _ -> ())
        end;
        due)
    t.triggers

(* Count one task execution beginning on [rank] (fed by the taskqueue
   plugin through [Runtime.task_tick]) and report whether a
   [fail=R@task:K] trigger fells the rank here.  Deterministic: the
   counter is per-rank and advances only at task-execution starts, so a
   trigger fires at the same task no matter how the scheduler interleaves
   the queue's message traffic. *)
let task_tick t ~rank : bool =
  t.task_counts.(rank) <- t.task_counts.(rank) + 1;
  let tasks = t.task_counts.(rank) in
  List.exists
    (fun ft ->
      if ft.ft_fired || ft.ft_rank <> rank then false
      else
        match ft.ft_kind with
        | `Task k when tasks >= k ->
            ft.ft_fired <- true;
            Stats.incr t.c_plan_failures;
            event t ~rank ~name:"plan_fail" "rank=%d task=%d" rank k;
            true
        | _ -> false)
    t.triggers

(* Time-based triggers whose deadline has passed at global progress point
   [now] (a sender's clock): returns the ranks that must die now even if
   their own fibers are parked.  The caller kills them; the scheduler's
   wake check discontinues their fibers. *)
let due_time_failures t ~now : int list =
  List.filter_map
    (fun ft ->
      match ft.ft_kind with
      | `Time time when (not ft.ft_fired) && now >= time ->
          ft.ft_fired <- true;
          Stats.incr t.c_plan_failures;
          event t ~rank:ft.ft_rank ~name:"plan_fail" "rank=%d t=%g" ft.ft_rank time;
          Some ft.ft_rank
      | _ -> None)
    t.triggers

(* ------------------------------------------------------------------ *)
(* Per-transfer fault interpretation (the reliable-delivery model) *)

type transfer = {
  tr_escalated : bool;
      (* every attempt was lost: the sender's failure detector declares
         the peer dead (ERR_PROC_FAILED) *)
  tr_attempts : int;  (* 1 = clean first transmission *)
  tr_delay : float;  (* extra arrival delay: backoff + jitter + reorder *)
  tr_sender_busy : float;  (* retransmission cost charged to the sender *)
  tr_corrupt : bool;  (* payload delivered corrupted (deliver_corrupt) *)
  tr_link_seq : int;  (* this link's reliable-layer sequence number *)
}

let partition_active t ~src ~dst ~at =
  List.exists
    (fun (ranks, t0, t1) ->
      at >= t0 && at < t1 && List.mem src ranks <> List.mem dst ranks)
    t.partitions

let draw t p = p > 0. && Xoshiro.next_float t.rng < p

(* Decide the fate of one logical message on link [src -> dst] injected at
   sender time [now].  Deterministic given (seed, plan, call order). *)
let on_transfer t ~src ~dst ~seq ~bytes ~now : transfer =
  let rates = Net_model.rates_for t.profile ~src ~dst in
  let link_seq =
    let c =
      match Hashtbl.find_opt t.link_counts (src, dst) with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.replace t.link_counts (src, dst) c;
          c
    in
    incr c;
    !c
  in
  let forced_drop =
    List.exists (fun ((s, d), n) -> s = src && d = dst && n = link_seq) t.drop_nth
  in
  let max_attempts = t.max_retries + 1 in
  let rec attempt i ~delay ~busy =
    if i > max_attempts then begin
      Stats.incr t.c_escalations;
      event t ~rank:src ~name:"escalate" "%d->%d seq=%d attempts=%d" src dst seq
        max_attempts;
      {
        tr_escalated = true;
        tr_attempts = max_attempts;
        tr_delay = delay;
        tr_sender_busy = busy;
        tr_corrupt = false;
        tr_link_seq = link_seq;
      }
    end
    else begin
      let at = now +. delay in
      let lost =
        if partition_active t ~src ~dst ~at then begin
          Stats.incr t.c_dropped;
          event t ~rank:src ~name:"partition_drop" "%d->%d seq=%d attempt=%d t=%g" src
            dst seq i at;
          true
        end
        else if i = 1 && forced_drop then begin
          Stats.incr t.c_dropped;
          event t ~rank:src ~name:"plan_drop" "%d->%d link_seq=%d" src dst link_seq;
          true
        end
        else if draw t rates.Net_model.drop then begin
          Stats.incr t.c_dropped;
          event t ~rank:src ~name:"drop" "%d->%d seq=%d attempt=%d" src dst seq i;
          true
        end
        else if draw t rates.Net_model.corrupt && not t.cfg.deliver_corrupt then begin
          (* CRC fails at the receiver; to the reliable layer that is a
             lost attempt like any other. *)
          Stats.incr t.c_corrupted;
          event t ~rank:src ~name:"corrupt" "%d->%d seq=%d attempt=%d (retransmit)" src
            dst seq i;
          true
        end
        else false
      in
      if lost then begin
        Stats.incr t.c_retransmits;
        let backoff = t.rto *. (t.backoff ** float_of_int (i - 1)) in
        attempt (i + 1) ~delay:(delay +. backoff) ~busy:(busy +. t.send_overhead)
      end
      else begin
        let corrupt_delivered =
          t.cfg.deliver_corrupt && draw t rates.Net_model.corrupt
        in
        if corrupt_delivered then begin
          Stats.incr t.c_corrupted;
          event t ~rank:src ~name:"corrupt" "%d->%d seq=%d (delivered)" src dst seq
        end;
        if draw t rates.Net_model.duplicate then begin
          (* The duplicate arrives but the receive side's sequence numbers
             discard it; nothing is enqueued twice. *)
          Stats.incr t.c_duplicated;
          event t ~rank:src ~name:"duplicate" "%d->%d seq=%d" src dst seq
        end;
        let delay =
          if draw t rates.Net_model.reorder then begin
            Stats.incr t.c_reordered;
            event t ~rank:src ~name:"reorder" "%d->%d seq=%d" src dst seq;
            delay +. t.latency
          end
          else delay
        in
        let delay =
          if rates.Net_model.jitter > 0. then
            delay +. Float.min (rates.Net_model.jitter *. Xoshiro.next_float t.rng) t.jitter_cap
          else delay
        in
        Stats.observe t.h_rtt (t.latency +. delay);
        ignore bytes;
        {
          tr_escalated = false;
          tr_attempts = i;
          tr_delay = delay;
          tr_sender_busy = busy;
          tr_corrupt = corrupt_delivered;
          tr_link_seq = link_seq;
        }
      end
    end
  in
  attempt 1 ~delay:0. ~busy:0.

(* Flip one deterministic-random bit of the payload slice (the
   [deliver_corrupt] path; the CRC was computed over the pristine bytes,
   so the receiver's check must fire). *)
let corrupt_payload t (payload : Bytes.t) ~pos ~len =
  if len > 0 then begin
    let byte = pos + Xoshiro.next_int t.rng ~bound:len in
    let bit = Xoshiro.next_int t.rng ~bound:8 in
    Bytes.set payload byte
      (Char.chr (Char.code (Bytes.get payload byte) lxor (1 lsl bit)))
  end

(* ------------------------------------------------------------------ *)
(* Spec parsing: the full --chaos argument.

   Clauses, ';'-separated:
     seed=N                         PRNG seed (default 1)
     lossy                          start from Net_model.lossy_rates
     drop|dup|duplicate|reorder|corrupt=F   default-rate fields
     jitter=F                       uniform extra delay bound (seconds)
     retries=N                      retransmissions before escalation
     rto=F                          base retransmit timeout (seconds)
     backoff=F                      per-attempt timeout multiplier
     jitter_cap=F                   accumulated-jitter bound (seconds)
     deliver_corrupt                deliver corrupted payloads (test knob)
     link=A>B:drop=F,jitter=F,...   per-link override
     fail=R@ops:K | fail=R@t:T | fail=R@task:K | droplink=A>B@N
       | partition=R,S@T1-T2        fault-plan clauses (see Fault_plan)
   A spec that is a bare integer is shorthand for seed=N;lossy. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_rate clause s =
  match float_of_string_opt (String.trim s) with
  | Some f when f >= 0. -> Ok f
  | _ -> Error (Printf.sprintf "%s: %S is not a non-negative number" clause s)

let parse_rates_update clause (r : Net_model.link_rates) key v :
    (Net_model.link_rates, string) result =
  let* f = parse_rate clause v in
  match key with
  | "drop" -> Ok { r with Net_model.drop = f }
  | "dup" | "duplicate" -> Ok { r with Net_model.duplicate = f }
  | "reorder" -> Ok { r with Net_model.reorder = f }
  | "corrupt" -> Ok { r with Net_model.corrupt = f }
  | "jitter" -> Ok { r with Net_model.jitter = f }
  | k -> Error (Printf.sprintf "%s: unknown rate %S" clause k)

let parse_link clause rhs =
  match String.index_opt rhs ':' with
  | None -> Error (Printf.sprintf "%s: expected link=A>B:rate=value,..." clause)
  | Some i -> (
      let linkpart = String.sub rhs 0 i in
      let ratepart = String.sub rhs (i + 1) (String.length rhs - i - 1) in
      match String.index_opt linkpart '>' with
      | None -> Error (Printf.sprintf "%s: expected A>B before ':'" clause)
      | Some j -> (
          let a = String.trim (String.sub linkpart 0 j) in
          let b =
            String.trim (String.sub linkpart (j + 1) (String.length linkpart - j - 1))
          in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some src, Some dst when src >= 0 && dst >= 0 ->
              let* rates =
                String.split_on_char ',' ratepart
                |> List.fold_left
                     (fun acc kv ->
                       let* acc = acc in
                       match String.index_opt kv '=' with
                       | None ->
                           Error (Printf.sprintf "%s: expected rate=value in %S" clause kv)
                       | Some e ->
                           parse_rates_update clause acc
                             (String.trim (String.sub kv 0 e))
                             (String.sub kv (e + 1) (String.length kv - e - 1)))
                     (Ok Net_model.perfect_link)
              in
              Ok ((src, dst), rates)
          | _ -> Error (Printf.sprintf "%s: bad ranks in link spec" clause)))

let config_of_string (s : string) : (config, string) result =
  match int_of_string_opt (String.trim s) with
  | Some seed -> Ok (config ~seed ~lossy:true ())
  | None ->
      String.split_on_char ';' s
      |> List.fold_left
           (fun acc clause ->
             let* cfg = acc in
             let clause = String.trim clause in
             if clause = "" then Ok cfg
             else if clause = "lossy" then Ok { cfg with lossy = true }
             else if clause = "deliver_corrupt" then
               Ok { cfg with deliver_corrupt = true }
             else
               match String.index_opt clause '=' with
               | None -> Error (Printf.sprintf "unknown chaos clause %S" clause)
               | Some i -> (
                   let key = String.trim (String.sub clause 0 i) in
                   let v = String.sub clause (i + 1) (String.length clause - i - 1) in
                   match key with
                   | "seed" -> (
                       match int_of_string_opt (String.trim v) with
                       | Some seed -> Ok { cfg with seed }
                       | None -> Error (Printf.sprintf "%s: bad seed" clause))
                   | "retries" -> (
                       match int_of_string_opt (String.trim v) with
                       | Some n when n >= 0 -> Ok { cfg with max_retries = Some n }
                       | _ -> Error (Printf.sprintf "%s: bad retry count" clause))
                   | "rto" ->
                       let* f = parse_rate clause v in
                       Ok { cfg with rto = Some f }
                   | "backoff" ->
                       let* f = parse_rate clause v in
                       if f < 1. then
                         Error (Printf.sprintf "%s: backoff multiplier must be >= 1" clause)
                       else Ok { cfg with backoff = Some f }
                   | "jitter_cap" ->
                       let* f = parse_rate clause v in
                       Ok { cfg with jitter_cap = Some f }
                   | "drop" | "dup" | "duplicate" | "reorder" | "corrupt" | "jitter" ->
                       let base =
                         match cfg.rates with
                         | Some r -> r
                         | None -> Net_model.perfect_link
                       in
                       let* r = parse_rates_update clause base key v in
                       Ok { cfg with rates = Some r }
                   | "link" ->
                       let* l = parse_link clause v in
                       Ok { cfg with links = cfg.links @ [ l ] }
                   | "fail" | "droplink" | "partition" ->
                       let* a = Fault_plan.parse_action clause in
                       Ok { cfg with plan = cfg.plan @ [ a ] }
                   | k -> Error (Printf.sprintf "unknown chaos clause %S" k)))
           (Ok (config ()))

let config_to_string (cfg : config) =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ ";")) fmt in
  add "seed=%d" cfg.seed;
  if cfg.lossy then add "lossy";
  (match cfg.rates with
  | Some r ->
      if r.Net_model.drop > 0. then add "drop=%g" r.Net_model.drop;
      if r.Net_model.duplicate > 0. then add "dup=%g" r.Net_model.duplicate;
      if r.Net_model.reorder > 0. then add "reorder=%g" r.Net_model.reorder;
      if r.Net_model.corrupt > 0. then add "corrupt=%g" r.Net_model.corrupt;
      if r.Net_model.jitter > 0. then add "jitter=%g" r.Net_model.jitter
  | None -> ());
  (match cfg.max_retries with Some n -> add "retries=%d" n | None -> ());
  (match cfg.rto with Some r -> add "rto=%g" r | None -> ());
  (match cfg.backoff with Some f -> add "backoff=%g" f | None -> ());
  (match cfg.jitter_cap with Some f -> add "jitter_cap=%g" f | None -> ());
  if cfg.deliver_corrupt then add "deliver_corrupt";
  List.iter (fun a -> add "%s" (Fault_plan.action_to_string a)) cfg.plan;
  let s = Buffer.contents b in
  if String.length s > 0 then String.sub s 0 (String.length s - 1) else s
