(** Minimal JSON parser: the read-side counterpart of {!Json_out}, used
    by the bench-diff regression gate to consume the harness's JSON
    Lines output without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Parse one complete JSON value; trailing non-whitespace is an error. *)
val parse : string -> (t, string) result

(** Parse JSON Lines: one value per non-blank line. *)
val parse_lines : string -> (t list, string) result

(** Field lookup on an [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

val to_float : t -> float option

val to_str : t -> string option
