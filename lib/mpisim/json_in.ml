(* Minimal JSON parser, the read-side counterpart of Json_out.

   Exists so the bench-diff regression gate can consume the JSON Lines
   files the benchmark harness emits without adding a dependency.  It is
   a plain recursive-descent parser over a string: full value grammar,
   \uXXXX escapes decoded to UTF-8 (surrogate pairs folded), numbers via
   [float_of_string] (Json_out never emits anything it can't read
   back). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> error st "expected %C, got %C" c got
  | None -> error st "expected %C, got end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st "invalid literal"

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> error st "bad \\u escape"
        in
        v := (!v * 16) + d
    | None -> error st "bad \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 st in
                (* Fold a UTF-16 surrogate pair into one code point. *)
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  expect st '\\';
                  expect st 'u';
                  let lo = hex4 st in
                  if lo < 0xDC00 || lo > 0xDFFF then error st "lone high surrogate";
                  utf8_add buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  (* A low surrogate with no preceding high half encodes
                     no code point at all. *)
                  error st "unpaired low surrogate"
                else utf8_add buf cp
            | _ -> error st "bad escape \\%c" c);
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  if st.pos = start then error st "expected a number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> error st "malformed number"

(* Nesting bound: recursive descent burns OCaml stack per '['/'{' level,
   so adversarial input like 100k '['s must fail with a clean parse
   error, not Stack_overflow.  1000 levels is far beyond anything the
   bench harness emits. *)
let max_depth = 1000

let rec parse_value ?(depth = 0) st =
  let parse_value st = parse_value ~depth:(depth + 1) st in
  if depth > max_depth then error st "nesting deeper than %d levels" max_depth;
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> error st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> error st "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "at %d: trailing garbage" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* JSON Lines: one value per non-blank line. *)
let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (n + 1) acc rest
        else begin
          match parse line with
          | Ok v -> go (n + 1) (v :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" n msg)
        end
  in
  go 1 [] lines

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
