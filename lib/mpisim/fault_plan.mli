(** Declarative fault plans for the chaos plane: deterministic fault
    actions, independent of the random per-link rates.  Pure data plus a
    compact clause syntax ([fail=2\@ops:40], [fail=1\@t:3.5e-6],
    [fail=3\@task:7], [droplink=0>1\@3], [partition=1,3\@1e-6-5e-6],
    joined with [;]) so
    plans travel on a command line and replay from CI logs.  The
    interpreter is {!Chaos}. *)

type action =
  | Fail_at_ops of { rank : int; ops : int }
      (** the rank fails at its [ops]-th runtime operation (1-based) *)
  | Fail_at_time of { rank : int; time : float }
      (** the rank fails when its virtual clock reaches [time] *)
  | Fail_at_task of { rank : int; task : int }
      (** the rank fails when it begins its [task]-th task execution
          (1-based; counted by {!Chaos.task_tick}, fed by the taskqueue
          plugin) *)
  | Drop_nth of { src : int; dst : int; n : int }
      (** the [n]-th message (1-based) on link [src -> dst] loses its
          first transmission attempt; the reliable layer retransmits *)
  | Partition of { ranks : int list; t_start : float; t_end : float }
      (** messages crossing the boundary between [ranks] and the rest are
          dropped while the sender's clock is in [[t_start, t_end)) *)

type t = action list

val empty : t

(** Parse one clause, e.g. ["fail=2@ops:40"]. *)
val parse_action : string -> (action, string) result

(** Parse a [;]-separated clause list (empty clauses are skipped). *)
val parse : string -> (t, string) result

val action_to_string : action -> string

(** Round-trips through {!parse}. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
