(** Shared simulation state: per-rank virtual clocks, mailboxes, cost
    charging, failure flags, profiling and context-id allocation.

    The hybrid clock (DESIGN.md §4): communication advances a rank's clock
    by the network model's costs; compute advances it either by measured
    real CPU time of fiber segments ([Measured]) or by explicit charges
    ([Virtual_only], bit-exactly deterministic). *)

(** Logging source for runtime trace events (enable at debug level to see
    every message injection). *)
val log_src : Logs.src

type clock_mode = Measured | Virtual_only

(** Cached handles into the stats registry for hot-path observations. *)
type metrics = {
  msg_size : Stats.histogram;  (** payload bytes per injected message *)
  msg_latency : Stats.histogram;  (** consumed-at minus sent-at, virtual seconds *)
  queue_depth : Stats.histogram;  (** unexpected-queue depth after delivery *)
  park_wait : Stats.histogram;  (** wall-clock seconds a fiber spent parked *)
  msgs_sent : Stats.counter;
  msgs_unexpected : Stats.counter;
}

type t = {
  id : int;  (** unique per runtime; keys global registries *)
  size : int;
  model : Net_model.t;
  clock_mode : clock_mode;
  clocks : float array;
  mailboxes : Mailbox.t array;
  wire_pools : Wire.pool array;
      (** per-rank pooled wire buffers for the zero-copy send path *)
  failed : bool array;
  mutable n_failed : int;
  chaos : Chaos.t option;
      (** the chaos plane: fault decisions come from {!Chaos}, this
          runtime acts on them; [None] keeps every fault path to a single
          branch *)
  profile : Profiling.t;
  stats : Stats.t;  (** metrics registry; also backs [profile] *)
  trace : Trace.t;  (** event recorder; disabled unless enabled explicitly *)
  check : Check.t;  (** correctness sanitizer; inert at level [Off] *)
  metrics : metrics;
  busy : float array;
      (** per-rank virtual time charged by [advance_clock] (compute, send
          busy time, overheads); [busy.(r) +. blocked.(r) = clocks.(r)] *)
  blocked : float array;
      (** per-rank virtual time jumped over by [sync_clock] (waiting) *)
  lamport : int array;
      (** per-rank Lamport clocks: bumped on injection, merged (max + 1)
          on match; stamped into send/match trace instants *)
  mutable vclocks : int array array;
      (** per-rank vector clocks (size × size when enabled, [[||]] off);
          ticked on injection, merged component-wise on match, streamed
          into the binary trace for the offline happens-before analyzer *)
  comm_matrix : Comm_matrix.t;
      (** per-(src,dst) traffic matrix with collective-algorithm
          attribution; disabled (one branch per injection) by default *)
  progress : int Atomic.t;  (** monotone; drives deadlock detection *)
  mutable msg_seq : int;
  mutable next_context : int;
  mutable assertion_level : int;
      (** 0 = none, 1 = cheap local checks, 2 = heavy checks (§III-G) *)
  lock : Mutex.t;
      (** serializes cross-rank mutations in multicore mode; see
          {!locked} *)
  mutable parallel : bool;
      (** multicore backend active: {!locked} really locks *)
}

(** Raised inside a fiber whose rank was failed by injection. *)
exception Process_killed of int

(** [create] builds the shared state of one simulation.  [check_level]
    selects the {!Check} sanitizer level; it defaults to the
    [MPISIM_CHECK] environment variable (off|light|heavy), or [Off].
    [chaos] activates the fault-injection plane; omitted, it is still
    activated (with default knobs) when [model] carries a fault
    profile. *)
val create :
  ?clock_mode:clock_mode ->
  ?assertion_level:int ->
  ?check_level:Check.level ->
  ?chaos:Chaos.config ->
  model:Net_model.t ->
  size:int ->
  unit ->
  t

val bump_progress : t -> unit

(** Current value of the progress epoch (reads the atomic). *)
val progress_count : t -> int

(** Switch into multicore mode (one-way): cross-rank mutations start
    taking the runtime lock, the stats registry, profiling table and
    wire pools arm their internal guards.  Called by the engine before
    the domain-pool scheduler starts.

    Per-rank ownership invariant (asserted by the parallel scheduler): a
    rank's fiber runs on exactly one domain at a time, so rank-indexed
    state touched only by its own fiber — clocks, busy/blocked
    accounting, Lamport clocks, its own vector-clock row, its own trace
    ring — needs no locks.  Only state mutated across ranks (mailbox
    delivery and matching, [msg_seq], context allocation, communicator
    registries, collective rendezvous cells) serializes on {!locked}. *)
val set_parallel : t -> unit

(** [locked t f] runs [f] under the global runtime lock in multicore
    mode, as a plain call otherwise.  Not reentrant; never park a fiber
    inside [f]. *)
val locked : t -> (unit -> 'a) -> 'a

(** Switch on O(p)-per-event vector-clock stamping.  Sends then carry a
    VC snapshot, matches merge it, and both emit VC trace records plus a
    [send_meta] instant (tag/context/sync) — the inputs of
    [repro_cli analyze].  Off (the default) costs one branch per
    injection and match. *)
val enable_vector_clocks : t -> unit

(** A copy of the rank's current vector clock ([[||]] when disabled). *)
val vector_clock : t -> int -> int array

(** Allocate a fresh communicator context id. *)
val fresh_context : t -> int

val clock : t -> int -> float

val advance_clock : t -> int -> float -> unit

(** Move a rank's clock forward to [time] if it is behind. *)
val sync_clock : t -> int -> float -> unit

(** Measured CPU segments, reported by the engine. *)
val on_cpu_segment : t -> int -> float -> unit

(** Charge modelled compute explicitly (Virtual_only programs; modelled
    work our implementation does not perform). *)
val charge_compute : t -> int -> float -> unit

(** Pack/unpack cost: charged from the model in Virtual_only mode (it is
    measured for real in Measured mode). *)
val charge_copy : t -> int -> bytes:int -> unit

val is_failed : t -> int -> bool

(** Raise {!Process_killed} if the rank has been failed.  Also the chaos
    plane's trigger point: op-count and sim-time fault-plan actions fire
    here, killing the calling rank at a deterministic point in its own
    program. *)
val check_alive : t -> int -> unit

(** Count one task execution beginning on [rank] (called by the taskqueue
    plugin as each task starts) and raise {!Process_killed} if a
    [fail=R\@task:K] fault-plan trigger fires here.  A no-op without the
    chaos plane. *)
val task_tick : t -> int -> unit

val kill : t -> int -> unit

val any_failed : t -> bool

(** A pooled writer for packing one outgoing message on [rank].  Its
    storage must end up either in an injected message (via
    [Wire.unsafe_contents]) or back in the pool. *)
val acquire_writer : t -> int -> capacity:int -> Wire.writer

(** Pre-warm [rank]'s pool so its next [acquire_writer] returns a
    buffer of at least [capacity] bytes without allocating
    (persistent-request init; see {!Wire.preheat}). *)
val preheat_writer : t -> int -> capacity:int -> unit

(** Return a consumed message's payload storage to the receiver's pool.
    Idempotent; call only after the payload has been fully unpacked or
    copied out — any reader over the slice is dead afterwards. *)
val recycle_payload : t -> Message.t -> unit

(** Pack-and-send entry point: charges the sender, computes the arrival
    time and delivers to the destination mailbox.  The payload is a
    (storage, offset, length) slice whose storage the message takes over —
    typically a pooled writer's buffer handed over without a copy.
    Returns the in-flight message (synchronous-send requests watch its
    match flag). *)
val inject :
  t ->
  context:int ->
  src:int ->
  dst:int ->
  tag:int ->
  payload:Bytes.t ->
  payload_off:int ->
  payload_len:int ->
  count:int ->
  signature:Signature.t ->
  sync:bool ->
  Message.t

(** Receiver-side accounting for a matched message: jump to the arrival
    time and pay the receive overhead. *)
val complete_receive : t -> int -> Message.t -> unit

val record : t -> op:string -> bytes:int -> unit

(** Wall-clock park duration, reported by the engine's scheduler hooks. *)
val observe_park_wait : t -> float -> unit

(** Trace span around a closure on a rank's virtual timeline; a plain call
    when tracing is disabled. *)
val with_span : t -> int -> cat:string -> name:string -> (unit -> 'a) -> 'a

(** The makespan: the largest per-rank clock. *)
val max_clock : t -> float

(** The rank's current Lamport clock. *)
val lamport_clock : t -> int -> int
