(* Top-level entry point: run an N-rank message-passing program.

   [run ~ranks body] executes [body world_comm] on every rank as a
   cooperative fiber, with deterministic scheduling, and returns a report
   with per-rank virtual completion times and the profiling summary.

   The virtual time of rank r combines the network model's communication
   costs with either measured per-segment CPU time ([Measured], the
   default) or explicitly charged compute ([Virtual_only]); see DESIGN.md.

   A fiber that raises aborts the whole run (the exception is re-raised,
   annotated with the rank) — except injected process failures
   ([Runtime.Process_killed]), which just mark the rank failed. *)

type report = {
  ranks : int;
  times : float array;  (* per-rank virtual completion time *)
  max_time : float;
  killed : int list;  (* ranks that died via failure injection *)
  profile : Profiling.summary;
  model : Net_model.t;
  busy : float array;  (* per-rank virtual time spent working *)
  blocked : float array;  (* per-rank virtual time spent waiting *)
  stats : Stats.t;  (* the runtime's metrics registry *)
  trace : Trace.t;  (* event recorder; empty unless [trace_capacity] set *)
  comm_matrix : Comm_matrix.t;  (* per-(src,dst) traffic; empty unless [comm_matrix] set *)
  chaos_log : string option;  (* chaos event log; replay-comparable, None when chaos off *)
}

let pp_report ppf r =
  Format.fprintf ppf "ranks=%d max_time=%a killed=[%s]" r.ranks Sim_time.pp r.max_time
    (String.concat "," (List.map string_of_int r.killed))

(* Run [body] on every rank; collect each rank's result ([None] for killed
   ranks).  Non-failure exceptions propagate as [Scheduler.Aborted].

   [trace_capacity] enables event tracing with a per-rank ring buffer of
   that many events; [trace_stream] streams every event to a binary file
   instead (no per-rank buffers, nothing dropped) and wins when both are
   given; when neither is present the recorder stays disabled and costs
   nothing on the hot paths.  [comm_matrix] turns on the per-(src,dst)
   traffic matrix.

   Verification hooks: [vector_clocks] turns on O(ranks)-per-event vector
   clock stamping (the happens-before analyzer's input); [on_runtime]
   observes the runtime right after creation (the model checker captures
   it to reach the mailboxes); [on_quiescence] is forwarded to
   {!Scheduler.run} — the point where deferred wildcard matches are
   resolved. *)
(* Domain-pool sizing: [Some n] from the caller wins; otherwise the
   [MPISIM_DOMAINS] environment variable ("auto" or 0 = one domain per
   core minus the coordinator's, capped); otherwise sequential. *)
let max_auto_domains = 8

let auto_domains () = max 1 (min max_auto_domains (Domain.recommended_domain_count () - 1))

let resolve_domains = function
  | Some 0 -> auto_domains ()
  | Some n when n >= 1 -> n
  | Some n -> raise (Errdefs.Usage_error (Printf.sprintf "domains must be >= 1, got %d" n))
  | None -> (
      match Sys.getenv_opt "MPISIM_DOMAINS" with
      | None -> 1
      | Some s -> (
          match String.trim s with
          | "" -> 1
          | "auto" -> auto_domains ()
          | s -> (
              match int_of_string_opt s with
              | Some 0 -> auto_domains ()
              | Some n when n >= 1 -> n
              | _ ->
                  raise
                    (Errdefs.Usage_error
                       (Printf.sprintf
                          "MPISIM_DOMAINS must be a positive integer or \"auto\", got %S" s)))))

let run_collect ?(model = Net_model.omnipath) ?(clock_mode = Runtime.Measured)
    ?(assertion_level = 1) ?check_level ?chaos ?trace_capacity ?trace_stream
    ?(comm_matrix = false) ?(vector_clocks = false) ?on_runtime ?on_quiescence ?domains
    ~ranks (body : Comm.t -> 'a) : 'a option array * report =
  let domains = resolve_domains domains in
  let rt =
    Runtime.create ~clock_mode ~assertion_level ?check_level ?chaos ~model ~size:ranks ()
  in
  (* The sequential-only planes are incompatible with the domain pool:
     chaos decisions, the sanitizer's operation interleaving checks and
     the model checker's quiescence hook all assume one deterministic
     global fiber order.  Fail loudly rather than degrade silently. *)
  if domains > 1 then begin
    if rt.Runtime.chaos <> None then
      raise
        (Errdefs.Usage_error
           "chaos injection requires sequential scheduling; drop --chaos or use \
            --domains 1");
    if Check.enabled rt.Runtime.check then
      raise
        (Errdefs.Usage_error
           "the correctness sanitizer requires sequential scheduling; unset \
            MPISIM_CHECK or use --domains 1");
    if on_quiescence <> None then
      raise
        (Errdefs.Usage_error
           "the model checker requires sequential scheduling; use --domains 1")
  end;
  if vector_clocks then Runtime.enable_vector_clocks rt;
  (match on_runtime with Some f -> f rt | None -> ());
  (match trace_stream with
  | Some path -> Trace.enable_stream rt.Runtime.trace ~path
  | None -> (
      match trace_capacity with
      | Some capacity -> Trace.enable ~capacity rt.Runtime.trace
      | None -> ()));
  if comm_matrix then Comm_matrix.enable rt.Runtime.comm_matrix;
  Fun.protect
    ~finally:(fun () ->
      (* Flush the stream sink before control returns to the caller, so
         the file is complete (and convertible) even on an abort. *)
      Trace.close_stream rt.Runtime.trace;
      Comm.clear_registry rt)
    (fun () ->
      let world_shared = Comm.create_registered_shared rt (Group.world ~size:ranks) in
      let results : 'a option array = Array.make ranks None in
      let fiber rank =
        let comm = Comm.attach rt world_shared ~rank in
        results.(rank) <- Some (body comm)
      in
      (* Park/resume hooks: only wired when tracing, so untraced runs skip
         the extra gettimeofday per park. *)
      let on_park, on_resume =
        if trace_capacity = None && trace_stream = None then (None, None)
        else
          ( Some
              (fun rank ->
                Trace.instant rt.Runtime.trace ~rank ~cat:"sched" ~name:"park" ~a:(-1)
                  ~b:(-1) ~c:(-1)),
            Some
              (fun rank wall ->
                Runtime.observe_park_wait rt wall;
                Trace.instant rt.Runtime.trace ~rank ~cat:"sched" ~name:"resume" ~a:(-1)
                  ~b:(-1) ~c:(-1)) )
      in
      (* Wake parked victims of injected failures: a rank killed while
         blocked in a receive would otherwise only surface as a deadlock.
         The [any_failed] guard keeps the common no-failure case to one
         load and branch per parked-fiber poll. *)
      let wake_check rank =
        if Runtime.any_failed rt && Runtime.is_failed rt rank then
          Some (Runtime.Process_killed rank)
        else None
      in
      let outcomes =
        try
          if domains > 1 then begin
            Runtime.set_parallel rt;
            Scheduler.run_parallel
              ~on_segment:(Runtime.on_cpu_segment rt)
              ?on_park ?on_resume
              ~kill_filter:Fault.is_kill_exn
              ~wake_check
              ~rank_time:(fun r -> rt.Runtime.clocks.(r))
              ~domains
              ~progress:(fun () -> Runtime.progress_count rt)
              ~nfibers:ranks fiber
          end
          else
            Scheduler.run
              ~on_segment:(Runtime.on_cpu_segment rt)
              ?on_park ?on_resume
              ~kill_filter:Fault.is_kill_exn
              ~wake_check ?on_quiescence
              ~progress:(fun () -> Runtime.progress_count rt)
              ~nfibers:ranks fiber
        with
        | Scheduler.Deadlock { parked; finished; total }
          when Check.enabled rt.Runtime.check ->
            (* Upgrade the flat parked-fiber list to a named wait-for
               cycle built from the sanitizer's pending-operation table. *)
            Errdefs.mpi_error Errdefs.Err_deadlock "%s"
              (Check.deadlock_report rt.Runtime.check ~parked ~finished ~total)
      in
      let killed = ref [] in
      Array.iteri
        (fun rank outcome ->
          match outcome with
          | Scheduler.Finished -> ()
          | Scheduler.Raised (exn, _) when Fault.is_kill_exn exn ->
              killed := rank :: !killed
          | Scheduler.Raised (exn, bt) ->
              (* Unreachable: the scheduler aborts on non-kill failures. *)
              Printexc.raise_with_backtrace exn bt)
        outcomes;
      (* Strong debug mode: all ranks must have run the same collective
         sequence on every communicator (§III-G, §III-H). *)
      if assertion_level >= 2 && !killed = [] then
        List.iter
          (fun shared ->
            match Comm.collective_trace_mismatch shared with
            | Some msg -> raise (Errdefs.Usage_error msg)
            | None -> ())
          (Comm.all_shared rt);
      (* Sanitizer teardown scan (leaked requests, collective counts) —
         only meaningful for runs no rank of which was killed. *)
      if !killed = [] && Check.enabled rt.Runtime.check then
        Check.finalize_scan rt.Runtime.check;
      (* Streamed traces are complete once flushed; do it before the
         report so callers can convert the file immediately. *)
      Trace.close_stream rt.Runtime.trace;
      (* Per-algorithm traffic totals become comm.msgs.* / comm.bytes.*
         counters, so the matrix shows up in sorted --stats dumps. *)
      if Comm_matrix.enabled rt.Runtime.comm_matrix then
        Comm_matrix.publish_stats rt.Runtime.comm_matrix rt.Runtime.stats;
      let report =
        {
          ranks;
          times = Array.copy rt.Runtime.clocks;
          max_time = Runtime.max_clock rt;
          killed = List.rev !killed;
          profile = Profiling.snapshot rt.Runtime.profile;
          model;
          busy = Array.copy rt.Runtime.busy;
          blocked = Array.copy rt.Runtime.blocked;
          stats = rt.Runtime.stats;
          trace = rt.Runtime.trace;
          comm_matrix = rt.Runtime.comm_matrix;
          chaos_log = Option.map Chaos.log_contents rt.Runtime.chaos;
        }
      in
      (results, report))

let run ?model ?clock_mode ?assertion_level ?check_level ?chaos ?trace_capacity
    ?trace_stream ?comm_matrix ?vector_clocks ?on_runtime ?on_quiescence ?domains ~ranks
    (body : Comm.t -> unit) : report =
  let _, report =
    run_collect ?model ?clock_mode ?assertion_level ?check_level ?chaos ?trace_capacity
      ?trace_stream ?comm_matrix ?vector_clocks ?on_runtime ?on_quiescence ?domains ~ranks
      body
  in
  report

(* Convenience for tests: run and return every rank's value, requiring all
   ranks to survive. *)
let run_values ?model ?clock_mode ?assertion_level ~ranks (body : Comm.t -> 'a) : 'a array
    =
  let results, report = run_collect ?model ?clock_mode ?assertion_level ~ranks body in
  ignore report;
  Array.map
    (function
      | Some v -> v
      | None -> failwith "Engine.run_values: a rank was killed")
    results
