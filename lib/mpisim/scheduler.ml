(* Cooperative fiber scheduler built on OCaml effects.

   Each simulated rank runs as a fiber.  A fiber blocks by performing
   [Park { poll; describe }]: the scheduler parks it and re-polls it on
   subsequent passes; when [poll] returns [Some v] the fiber resumes with
   [v].  Scheduling is deterministic round-robin, so simulations are
   reproducible.

   Deadlock detection: if a full pass over all live fibers runs nothing and
   the caller-supplied progress counter has not moved, no poll can ever
   succeed again (all state changes come from fibers), so the scheduler
   reports a deadlock with each parked fiber's description.

   Timing: the caller may supply [on_segment], which receives the real
   monotonic CPU time of every executed fiber segment — this feeds the
   hybrid clock's "measured compute" component. *)

type 'a poll = unit -> 'a option

type _ Effect.t +=
  | Park : { poll : 'a poll; describe : unit -> string } -> 'a Effect.t
  | Yield : unit Effect.t

exception Aborted of { rank : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception
  Deadlock of { parked : (int * string) list; finished : int; total : int }

let () =
  Printexc.register_printer (function
    | Deadlock { parked; finished; total } ->
        let parked_desc =
          parked
          |> List.map (fun (r, d) -> Printf.sprintf "  rank %d: %s" r d)
          |> String.concat "\n"
        in
        Some
          (Printf.sprintf
             "Deadlock: %d/%d fibers finished, %d parked with no possible progress:\n%s"
             finished total (List.length parked) parked_desc)
    | Aborted { rank; exn; _ } ->
        Some (Printf.sprintf "rank %d raised: %s" rank (Printexc.to_string exn))
    | _ -> None)

(* Block the current fiber until [poll] returns [Some v]; returns [v].
   Fast path: if the poll succeeds immediately, no parking happens. *)
let park ~describe ~poll = Effect.perform (Park { poll; describe })

(* Let other fibers run once. *)
let yield () = Effect.perform Yield

type outcome = Finished | Raised of exn * Printexc.raw_backtrace

type parked =
  | Parked : {
      poll : 'a poll;
      describe : unit -> string;
      k : ('a, unit) Effect.Deep.continuation;
      parked_at : float;  (* wall clock at park; 0. when hooks are off *)
    }
      -> parked

type state = Ready of (unit -> unit) | Waiting of parked | Done of outcome

let now () = Unix.gettimeofday ()

type t = {
  states : state array;
  mutable live : int;
  mutable current : int;
  on_segment : int -> float -> unit;
  mutable seg_start : float;
  (* Park/resume observability hooks.  [track_park] gates the extra
     gettimeofday per park so unhooked runs pay nothing. *)
  on_park : int -> unit;
  on_resume : int -> float -> unit;  (* rank, wall seconds parked *)
  track_park : bool;
  (* A fiber may exit by raising [kill_filter]-matching exceptions without
     aborting the whole simulation (process-failure injection). *)
  kill_filter : exn -> bool;
}

let close_segment t =
  if t.current >= 0 then begin
    t.on_segment t.current (now () -. t.seg_start);
    t.current <- -1
  end

let handler (t : t) (rank : int) : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        close_segment t;
        t.states.(rank) <- Done Finished;
        t.live <- t.live - 1);
    exnc =
      (fun exn ->
        let bt = Printexc.get_raw_backtrace () in
        close_segment t;
        t.states.(rank) <- Done (Raised (exn, bt));
        t.live <- t.live - 1);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Park { poll; describe } ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                match poll () with
                | Some v -> Effect.Deep.continue k v
                | None ->
                    close_segment t;
                    let parked_at =
                      if t.track_park then begin
                        t.on_park rank;
                        now ()
                      end
                      else 0.
                    in
                    t.states.(rank) <- Waiting (Parked { poll; describe; k; parked_at }))
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                close_segment t;
                (* Always-ready poll: the fiber resumes on the next pass,
                   after every other runnable fiber has had a turn.  Being
                   always ready, it can never trip deadlock detection.
                   Yields are voluntary, not waits, so park hooks skip
                   them. *)
                t.states.(rank) <-
                  Waiting
                    (Parked
                       {
                         poll = (fun () -> Some ());
                         describe = (fun () -> "yield");
                         k;
                         parked_at = 0.;
                       }))
        | _ -> None);
  }

let start_fiber t rank thunk =
  t.current <- rank;
  t.seg_start <- now ();
  Effect.Deep.match_with thunk () (handler t rank)

let resume_fiber (type a) t rank (k : (a, unit) Effect.Deep.continuation) (v : a) =
  t.current <- rank;
  t.seg_start <- now ();
  Effect.Deep.continue k v

let discontinue_fiber t rank (Parked { k; _ }) exn =
  t.current <- rank;
  t.seg_start <- now ();
  (try Effect.Deep.discontinue k exn
   with _ ->
     close_segment t;
     (match t.states.(rank) with
     | Done _ -> ()
     | _ ->
         t.states.(rank) <- Done (Raised (exn, Printexc.get_callstack 0));
         t.live <- t.live - 1));
  match t.states.(rank) with
  | Done _ -> ()
  | _ ->
      t.states.(rank) <- Done (Raised (exn, Printexc.get_callstack 0));
      t.live <- t.live - 1

exception Abandoned_fiber

(* Run [nfibers] fibers executing [body rank] to completion.

   [progress] must return a monotone counter that changes whenever shared
   simulation state changes (message injected, matched, ...); it drives
   deadlock detection.  [kill_filter exn] returns true for exceptions that
   represent an injected process failure: such fibers end in [Raised] but do
   not abort the other fibers.

   [wake_check rank] is consulted before polling a parked fiber: [Some exn]
   discontinues the fiber with [exn] instead of resuming it.  This is how
   fault injection reaches a victim that is blocked in a receive — the poll
   could never succeed (nobody will send to a dead rank), so without the
   hook the kill would only surface as a deadlock. *)
let run ?(on_segment = fun _ _ -> ()) ?on_park ?on_resume
    ?(kill_filter = fun _ -> false) ?(wake_check = fun _ -> None)
    ?(on_quiescence = fun () -> false) ~progress ~nfibers (body : int -> unit) :
    outcome array =
  if nfibers <= 0 then invalid_arg "Scheduler.run: nfibers must be positive";
  let track_park = on_park <> None || on_resume <> None in
  let t =
    {
      states = Array.init nfibers (fun r -> Ready (fun () -> body r));
      live = nfibers;
      current = -1;
      on_segment;
      on_park = (match on_park with Some f -> f | None -> fun _ -> ());
      on_resume = (match on_resume with Some f -> f | None -> fun _ _ -> ());
      track_park;
      seg_start = 0.;
      kill_filter;
    }
  in
  let fatal : (int * exn * Printexc.raw_backtrace) option ref = ref None in
  let check_fatal rank =
    match t.states.(rank) with
    | Done (Raised (exn, bt)) when not (kill_filter exn) ->
        if !fatal = None then fatal := Some (rank, exn, bt)
    | Done _ | Ready _ | Waiting _ -> ()
  in
  let abort_parked () =
    Array.iteri
      (fun rank st ->
        match st with
        | Waiting p -> discontinue_fiber t rank p Abandoned_fiber
        | Ready _ ->
            t.states.(rank) <- Done (Raised (Abandoned_fiber, Printexc.get_callstack 0));
            t.live <- t.live - 1
        | Done _ -> ())
      t.states
  in
  let rec loop () =
    if t.live = 0 then ()
    else begin
      let progress_before = progress () in
      let ran = ref false in
      for rank = 0 to nfibers - 1 do
        if !fatal = None then begin
          match t.states.(rank) with
          | Ready thunk ->
              ran := true;
              start_fiber t rank thunk;
              check_fatal rank
          | Waiting (Parked p as parked) -> begin
              match wake_check rank with
              | Some exn ->
                  ran := true;
                  discontinue_fiber t rank parked exn;
                  check_fatal rank
              | None -> (
              match p.poll () with
              | Some v ->
                  ran := true;
                  (* Yield parks carry [parked_at = 0.] and are not real
                     waits; skip the resume hook for them. *)
                  if t.track_park && p.parked_at > 0. then
                    t.on_resume rank (now () -. p.parked_at);
                  resume_fiber t rank p.k v;
                  check_fatal rank
              | None -> ())
            end
          | Done _ -> ()
        end
      done;
      match !fatal with
      | Some (rank, exn, backtrace) ->
          abort_parked ();
          raise (Aborted { rank; exn; backtrace })
      | None ->
          if t.live = 0 then ()
          else if (not !ran) && progress () = progress_before then begin
            (* Quiescence: no fiber ran and nothing changed.  Give the
               model checker's resolver one chance to apply a deferred
               match decision (which must bump [progress]); only if it
               declines is this a genuine deadlock. *)
            if on_quiescence () then loop ()
            else begin
            let parked =
              Array.to_list t.states
              |> List.mapi (fun r st ->
                     match st with
                     | Waiting (Parked { describe; _ }) -> Some (r, describe ())
                     | Ready _ | Done _ -> None)
              |> List.filter_map Fun.id
            in
            let finished =
              Array.fold_left
                (fun acc st -> match st with Done _ -> acc + 1 | _ -> acc)
                0 t.states
            in
            abort_parked ();
            raise (Deadlock { parked; finished; total = nfibers })
            end
          end
          else loop ()
    end
  in
  loop ();
  Array.map
    (function
      | Done o -> o
      | Ready _ | Waiting _ -> assert false)
    t.states

(* ================================================================== *)
(* Multicore backend: a fixed pool of OCaml 5 domains executing the
   runnable fibers of each round concurrently.

   Round structure (the determinism barrier):

   1. Poll phase — the coordinator alone, with every worker idle at the
      barrier, scans all fibers: [Ready] fibers and parked fibers whose
      poll succeeds become this round's runnable set.  Polls may have
      side effects (consume a matched message); running them with no
      fiber executing means they need no locking and fire in rank order,
      exactly like the sequential scheduler.
   2. Virtual-time gate — only fibers within [lookahead] of the earliest
      runnable fiber's virtual clock run this round; the rest stay
      queued and the barrier advances to them once the early group
      parks.  The default lookahead is infinite (every runnable fiber
      may run), which is safe because fibers synchronize through the
      runtime's own locks; a finite [MPISIM_LOOKAHEAD] trades
      parallelism for tighter timestamp grouping.
   3. Execute phase — the runnable set is split into per-worker run
      queues; each worker drains its own queue head-first
      (fetch-and-add claim) and then steals from the other workers'
      queues (Chase-Lev-style: all claims go through the same atomic
      head, so a task runs exactly once).  The coordinator participates
      as worker 0.
   4. Barrier — the coordinator waits for every worker; mutex/condvar
      hand-off makes all fiber-state writes of the round visible before
      the next poll phase.

   Per-rank ownership invariant: a rank appears at most once in the
   runnable set, so its fiber runs on exactly one domain at a time
   (asserted per execution).  All rank-owned state — clocks, busy and
   blocked accounting, Lamport clocks, trace rings — therefore needs no
   locks; cross-rank mutations go through the runtime lock
   ({!Runtime.locked}).

   Deadlock detection is unchanged: a round whose poll phase finds
   nothing runnable while the global progress epoch is stationary can
   never make progress again (all state changes come from fibers, and
   none ran). *)

(* Per-fiber execution context: written only by the domain currently
   running the fiber; [px_running] asserts the one-domain-at-a-time
   invariant. *)
type pexec = {
  px_rank : int;
  mutable px_seg_start : float;
  mutable px_parked_at : float;
  px_running : bool Atomic.t;
}

type ptask = { pt_rank : int; pt_time : float; pt_run : unit -> unit }

(* Round hand-off between the coordinator and the worker domains. *)
type pshared = {
  ps_mutex : Mutex.t;
  ps_cond : Condition.t;
  mutable ps_round : int;  (* generation counter; bumping it releases workers *)
  mutable ps_tasks : ptask array;
  mutable ps_heads : int Atomic.t array;  (* per-worker claim head, slice-relative *)
  mutable ps_bounds : (int * int) array;  (* per-worker [lo, hi) slice of ps_tasks *)
  mutable ps_done : int;
  mutable ps_stop : bool;
  ps_workers : int;  (* participants, coordinator included *)
}

let default_lookahead () =
  match Sys.getenv_opt "MPISIM_LOOKAHEAD" with
  | None -> infinity
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f when f >= 0. -> f
      | _ -> infinity)

(* Drain queue [q]: claim tasks through its atomic head until the slice
   is exhausted.  Claims are unique (fetch-and-add), so a task runs on
   exactly one domain even when several steal from the same queue. *)
let drain_queue sh q =
  let lo, hi = sh.ps_bounds.(q) in
  let rec go () =
    let h = Atomic.fetch_and_add sh.ps_heads.(q) 1 in
    if lo + h < hi then begin
      (sh.ps_tasks.(lo + h)).pt_run ();
      go ()
    end
  in
  go ()

let work_round sh w =
  drain_queue sh w;
  (* Own queue dry: steal from the other workers' queues. *)
  for v = 0 to sh.ps_workers - 1 do
    if v <> w then drain_queue sh v
  done

let worker_body sh w =
  let rec loop last =
    Mutex.lock sh.ps_mutex;
    while (not sh.ps_stop) && sh.ps_round = last do
      Condition.wait sh.ps_cond sh.ps_mutex
    done;
    let stop = sh.ps_stop in
    let rn = sh.ps_round in
    Mutex.unlock sh.ps_mutex;
    if not stop then begin
      work_round sh w;
      Mutex.lock sh.ps_mutex;
      sh.ps_done <- sh.ps_done + 1;
      if sh.ps_done >= sh.ps_workers then Condition.broadcast sh.ps_cond;
      Mutex.unlock sh.ps_mutex;
      loop rn
    end
  in
  loop 0

let run_parallel ?(on_segment = fun _ _ -> ()) ?on_park ?on_resume
    ?(kill_filter = fun _ -> false) ?(wake_check = fun _ -> None)
    ?(rank_time = fun _ -> 0.) ?lookahead ~domains ~progress ~nfibers
    (body : int -> unit) : outcome array =
  if nfibers <= 0 then invalid_arg "Scheduler.run_parallel: nfibers must be positive";
  if domains < 2 then invalid_arg "Scheduler.run_parallel: needs at least 2 domains";
  let lookahead = match lookahead with Some l -> l | None -> default_lookahead () in
  let track_park = on_park <> None || on_resume <> None in
  let on_park = match on_park with Some f -> f | None -> fun _ -> () in
  let on_resume = match on_resume with Some f -> f | None -> fun _ _ -> () in
  let states = Array.init nfibers (fun r -> Ready (fun () -> body r)) in
  let live = Atomic.make nfibers in
  let execs =
    Array.init nfibers (fun r ->
        { px_rank = r; px_seg_start = 0.; px_parked_at = 0.; px_running = Atomic.make false })
  in
  (* The effect handler mirrors the sequential one, with the global
     current/seg_start cells replaced by the fiber's own context (the
     executing domain owns it for the duration of the segment).  The
     park fast-path poll is dropped: polls run only in the coordinator's
     poll phase, so they never race with executing fibers. *)
  let close_segment e = on_segment e.px_rank (now () -. e.px_seg_start) in
  let end_execution e = Atomic.set e.px_running false in
  let phandler (e : pexec) : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          close_segment e;
          states.(e.px_rank) <- Done Finished;
          Atomic.decr live;
          end_execution e);
      exnc =
        (fun exn ->
          let bt = Printexc.get_raw_backtrace () in
          close_segment e;
          states.(e.px_rank) <- Done (Raised (exn, bt));
          Atomic.decr live;
          end_execution e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Park { poll; describe } ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  close_segment e;
                  let parked_at =
                    if track_park then begin
                      on_park e.px_rank;
                      now ()
                    end
                    else 0.
                  in
                  states.(e.px_rank) <- Waiting (Parked { poll; describe; k; parked_at });
                  end_execution e)
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  close_segment e;
                  states.(e.px_rank) <-
                    Waiting
                      (Parked
                         {
                           poll = (fun () -> Some ());
                           describe = (fun () -> "yield");
                           k;
                           parked_at = 0.;
                         });
                  end_execution e)
          | _ -> None);
    }
  in
  let begin_execution e =
    (* One-domain-at-a-time invariant: a rank scheduled twice in a round
       (or claimed by two workers) would trip this. *)
    if not (Atomic.compare_and_set e.px_running false true) then
      invalid_arg "Scheduler.run_parallel: fiber scheduled on two domains";
    e.px_seg_start <- now ()
  in
  let start_task rank thunk =
    let e = execs.(rank) in
    {
      pt_rank = rank;
      pt_time = rank_time rank;
      pt_run =
        (fun () ->
          begin_execution e;
          Effect.Deep.match_with thunk () (phandler e));
    }
  in
  let resume_task (type a) rank (k : (a, unit) Effect.Deep.continuation) (v : a)
      ~parked_at =
    let e = execs.(rank) in
    {
      pt_rank = rank;
      pt_time = rank_time rank;
      pt_run =
        (fun () ->
          if track_park && parked_at > 0. then on_resume rank (now () -. parked_at);
          begin_execution e;
          Effect.Deep.continue k v);
    }
  in
  (* Failed discontinues run on the coordinator with no worker active,
     so the sequential-style bookkeeping below is safe. *)
  let discontinue rank (Parked { k; _ }) exn =
    let e = execs.(rank) in
    begin_execution e;
    (try Effect.Deep.discontinue k exn
     with _ -> (
       match states.(rank) with
       | Done _ -> ()
       | _ ->
           states.(rank) <- Done (Raised (exn, Printexc.get_callstack 0));
           Atomic.decr live;
           end_execution e));
    match states.(rank) with
    | Done _ -> ()
    | _ ->
        states.(rank) <- Done (Raised (exn, Printexc.get_callstack 0));
        Atomic.decr live;
        end_execution e
  in
  let abort_parked () =
    Array.iteri
      (fun rank st ->
        match st with
        | Waiting p -> discontinue rank p Abandoned_fiber
        | Ready _ ->
            states.(rank) <- Done (Raised (Abandoned_fiber, Printexc.get_callstack 0));
            Atomic.decr live
        | Done _ -> ())
      states
  in
  let sh =
    {
      ps_mutex = Mutex.create ();
      ps_cond = Condition.create ();
      ps_round = 0;
      ps_tasks = [||];
      ps_heads = [||];
      ps_bounds = [||];
      ps_done = 0;
      ps_stop = false;
      ps_workers = domains;
    }
  in
  let workers =
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_body sh (i + 1)))
  in
  let dispatch (tasks : ptask array) =
    if Array.length tasks = 1 then (tasks.(0)).pt_run ()
    else begin
      let n = Array.length tasks in
      let nw = sh.ps_workers in
      let chunk = (n + nw - 1) / nw in
      Mutex.lock sh.ps_mutex;
      sh.ps_tasks <- tasks;
      sh.ps_heads <- Array.init nw (fun _ -> Atomic.make 0);
      sh.ps_bounds <- Array.init nw (fun w -> (min n (w * chunk), min n ((w + 1) * chunk)));
      sh.ps_done <- 0;
      sh.ps_round <- sh.ps_round + 1;
      Condition.broadcast sh.ps_cond;
      Mutex.unlock sh.ps_mutex;
      work_round sh 0;
      Mutex.lock sh.ps_mutex;
      sh.ps_done <- sh.ps_done + 1;
      while sh.ps_done < sh.ps_workers do
        Condition.wait sh.ps_cond sh.ps_mutex
      done;
      Mutex.unlock sh.ps_mutex
    end
  in
  let shutdown () =
    Mutex.lock sh.ps_mutex;
    sh.ps_stop <- true;
    Condition.broadcast sh.ps_cond;
    Mutex.unlock sh.ps_mutex;
    Array.iter Domain.join workers
  in
  let fatal : (int * exn * Printexc.raw_backtrace) option ref = ref None in
  let scan_fatal () =
    Array.iteri
      (fun rank st ->
        match st with
        | Done (Raised (exn, bt)) when not (kill_filter exn) ->
            if !fatal = None then fatal := Some (rank, exn, bt)
        | Done _ | Ready _ | Waiting _ -> ())
      states
  in
  let deadlock () =
    let parked =
      Array.to_list states
      |> List.mapi (fun r st ->
             match st with
             | Waiting (Parked { describe; _ }) -> Some (r, describe ())
             | Ready _ | Done _ -> None)
      |> List.filter_map Fun.id
    in
    let finished =
      Array.fold_left
        (fun acc st -> match st with Done _ -> acc + 1 | _ -> acc)
        0 states
    in
    abort_parked ();
    raise (Deadlock { parked; finished; total = nfibers })
  in
  (* Virtual-time barrier state: fibers at or below the admission cutoff
     may be polled and run; the floor only ever advances.  With the
     default infinite lookahead every live fiber is always admitted. *)
  let barrier_floor = ref neg_infinity in
  let rec loop () =
    if Atomic.get live = 0 then ()
    else begin
      let progress_before = progress () in
      (* Admission cutoff for this round.  The gate applies BEFORE
         polling: a successful poll may consume shared state, so a fiber
         beyond the cutoff must not be polled at all this round. *)
      let cutoff =
        if lookahead = infinity then infinity
        else begin
          let tmin = ref infinity in
          Array.iteri
            (fun rank st ->
              match st with
              | Done _ -> ()
              | Ready _ | Waiting _ ->
                  let tr = rank_time rank in
                  if tr < !tmin then tmin := tr)
            states;
          Float.max !barrier_floor (!tmin +. lookahead)
        end
      in
      (* Poll phase: collect this round's runnable set in rank order. *)
      let woke = ref false in
      let deferred = ref infinity in  (* earliest gated-out virtual time *)
      let runnable = ref [] in
      let n_runnable = ref 0 in
      for rank = 0 to nfibers - 1 do
        if !fatal = None then begin
          match states.(rank) with
          | Done _ -> ()
          | (Ready _ | Waiting _) when rank_time rank > cutoff ->
              let tr = rank_time rank in
              if tr < !deferred then deferred := tr
          | Ready thunk ->
              runnable := start_task rank thunk :: !runnable;
              incr n_runnable
          | Waiting (Parked p as parked) -> begin
              match wake_check rank with
              | Some exn ->
                  woke := true;
                  discontinue rank parked exn;
                  (match states.(rank) with
                  | Done (Raised (exn, bt)) when not (kill_filter exn) ->
                      if !fatal = None then fatal := Some (rank, exn, bt)
                  | _ -> ())
              | None -> (
                  match p.poll () with
                  | Some v ->
                      runnable :=
                        resume_task rank p.k v ~parked_at:p.parked_at :: !runnable;
                      incr n_runnable
                  | None -> ())
            end
        end
      done;
      match !fatal with
      | Some (rank, exn, backtrace) ->
          abort_parked ();
          shutdown ();
          raise (Aborted { rank; exn; backtrace })
      | None ->
          if !n_runnable = 0 then begin
            if Atomic.get live = 0 then ()
            else if !woke || progress () <> progress_before then loop ()
            else if !deferred < infinity then begin
              (* Nothing admitted could run, but fibers sit beyond the
                 virtual-time barrier: advance it to the earliest of
                 them and retry.  Monotone, so detection still
                 terminates. *)
              barrier_floor := !deferred;
              loop ()
            end
            else begin
              (* [deadlock] always raises; stop the workers first. *)
              shutdown ();
              deadlock ()
            end
          end
          else begin
            dispatch (Array.of_list (List.rev !runnable));
            scan_fatal ();
            match !fatal with
            | Some (rank, exn, backtrace) ->
                abort_parked ();
                shutdown ();
                raise (Aborted { rank; exn; backtrace })
            | None -> loop ()
          end
    end
  in
  loop ();
  shutdown ();
  Array.map
    (function
      | Done o -> o
      | Ready _ | Waiting _ -> assert false)
    states
