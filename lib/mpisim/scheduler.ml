(* Cooperative fiber scheduler built on OCaml effects.

   Each simulated rank runs as a fiber.  A fiber blocks by performing
   [Park { poll; describe }]: the scheduler parks it and re-polls it on
   subsequent passes; when [poll] returns [Some v] the fiber resumes with
   [v].  Scheduling is deterministic round-robin, so simulations are
   reproducible.

   Deadlock detection: if a full pass over all live fibers runs nothing and
   the caller-supplied progress counter has not moved, no poll can ever
   succeed again (all state changes come from fibers), so the scheduler
   reports a deadlock with each parked fiber's description.

   Timing: the caller may supply [on_segment], which receives the real
   monotonic CPU time of every executed fiber segment — this feeds the
   hybrid clock's "measured compute" component. *)

type 'a poll = unit -> 'a option

type _ Effect.t +=
  | Park : { poll : 'a poll; describe : unit -> string } -> 'a Effect.t
  | Yield : unit Effect.t

exception Aborted of { rank : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception
  Deadlock of { parked : (int * string) list; finished : int; total : int }

let () =
  Printexc.register_printer (function
    | Deadlock { parked; finished; total } ->
        let parked_desc =
          parked
          |> List.map (fun (r, d) -> Printf.sprintf "  rank %d: %s" r d)
          |> String.concat "\n"
        in
        Some
          (Printf.sprintf
             "Deadlock: %d/%d fibers finished, %d parked with no possible progress:\n%s"
             finished total (List.length parked) parked_desc)
    | Aborted { rank; exn; _ } ->
        Some (Printf.sprintf "rank %d raised: %s" rank (Printexc.to_string exn))
    | _ -> None)

(* Block the current fiber until [poll] returns [Some v]; returns [v].
   Fast path: if the poll succeeds immediately, no parking happens. *)
let park ~describe ~poll = Effect.perform (Park { poll; describe })

(* Let other fibers run once. *)
let yield () = Effect.perform Yield

type outcome = Finished | Raised of exn * Printexc.raw_backtrace

type parked =
  | Parked : {
      poll : 'a poll;
      describe : unit -> string;
      k : ('a, unit) Effect.Deep.continuation;
      parked_at : float;  (* wall clock at park; 0. when hooks are off *)
    }
      -> parked

type state = Ready of (unit -> unit) | Waiting of parked | Done of outcome

let now () = Unix.gettimeofday ()

type t = {
  states : state array;
  mutable live : int;
  mutable current : int;
  on_segment : int -> float -> unit;
  mutable seg_start : float;
  (* Park/resume observability hooks.  [track_park] gates the extra
     gettimeofday per park so unhooked runs pay nothing. *)
  on_park : int -> unit;
  on_resume : int -> float -> unit;  (* rank, wall seconds parked *)
  track_park : bool;
  (* A fiber may exit by raising [kill_filter]-matching exceptions without
     aborting the whole simulation (process-failure injection). *)
  kill_filter : exn -> bool;
}

let close_segment t =
  if t.current >= 0 then begin
    t.on_segment t.current (now () -. t.seg_start);
    t.current <- -1
  end

let handler (t : t) (rank : int) : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        close_segment t;
        t.states.(rank) <- Done Finished;
        t.live <- t.live - 1);
    exnc =
      (fun exn ->
        let bt = Printexc.get_raw_backtrace () in
        close_segment t;
        t.states.(rank) <- Done (Raised (exn, bt));
        t.live <- t.live - 1);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Park { poll; describe } ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                match poll () with
                | Some v -> Effect.Deep.continue k v
                | None ->
                    close_segment t;
                    let parked_at =
                      if t.track_park then begin
                        t.on_park rank;
                        now ()
                      end
                      else 0.
                    in
                    t.states.(rank) <- Waiting (Parked { poll; describe; k; parked_at }))
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                close_segment t;
                (* Always-ready poll: the fiber resumes on the next pass,
                   after every other runnable fiber has had a turn.  Being
                   always ready, it can never trip deadlock detection.
                   Yields are voluntary, not waits, so park hooks skip
                   them. *)
                t.states.(rank) <-
                  Waiting
                    (Parked
                       {
                         poll = (fun () -> Some ());
                         describe = (fun () -> "yield");
                         k;
                         parked_at = 0.;
                       }))
        | _ -> None);
  }

let start_fiber t rank thunk =
  t.current <- rank;
  t.seg_start <- now ();
  Effect.Deep.match_with thunk () (handler t rank)

let resume_fiber (type a) t rank (k : (a, unit) Effect.Deep.continuation) (v : a) =
  t.current <- rank;
  t.seg_start <- now ();
  Effect.Deep.continue k v

let discontinue_fiber t rank (Parked { k; _ }) exn =
  t.current <- rank;
  t.seg_start <- now ();
  (try Effect.Deep.discontinue k exn
   with _ ->
     close_segment t;
     (match t.states.(rank) with
     | Done _ -> ()
     | _ ->
         t.states.(rank) <- Done (Raised (exn, Printexc.get_callstack 0));
         t.live <- t.live - 1));
  match t.states.(rank) with
  | Done _ -> ()
  | _ ->
      t.states.(rank) <- Done (Raised (exn, Printexc.get_callstack 0));
      t.live <- t.live - 1

exception Abandoned_fiber

(* Run [nfibers] fibers executing [body rank] to completion.

   [progress] must return a monotone counter that changes whenever shared
   simulation state changes (message injected, matched, ...); it drives
   deadlock detection.  [kill_filter exn] returns true for exceptions that
   represent an injected process failure: such fibers end in [Raised] but do
   not abort the other fibers.

   [wake_check rank] is consulted before polling a parked fiber: [Some exn]
   discontinues the fiber with [exn] instead of resuming it.  This is how
   fault injection reaches a victim that is blocked in a receive — the poll
   could never succeed (nobody will send to a dead rank), so without the
   hook the kill would only surface as a deadlock. *)
let run ?(on_segment = fun _ _ -> ()) ?on_park ?on_resume
    ?(kill_filter = fun _ -> false) ?(wake_check = fun _ -> None)
    ?(on_quiescence = fun () -> false) ~progress ~nfibers (body : int -> unit) :
    outcome array =
  if nfibers <= 0 then invalid_arg "Scheduler.run: nfibers must be positive";
  let track_park = on_park <> None || on_resume <> None in
  let t =
    {
      states = Array.init nfibers (fun r -> Ready (fun () -> body r));
      live = nfibers;
      current = -1;
      on_segment;
      on_park = (match on_park with Some f -> f | None -> fun _ -> ());
      on_resume = (match on_resume with Some f -> f | None -> fun _ _ -> ());
      track_park;
      seg_start = 0.;
      kill_filter;
    }
  in
  let fatal : (int * exn * Printexc.raw_backtrace) option ref = ref None in
  let check_fatal rank =
    match t.states.(rank) with
    | Done (Raised (exn, bt)) when not (kill_filter exn) ->
        if !fatal = None then fatal := Some (rank, exn, bt)
    | Done _ | Ready _ | Waiting _ -> ()
  in
  let abort_parked () =
    Array.iteri
      (fun rank st ->
        match st with
        | Waiting p -> discontinue_fiber t rank p Abandoned_fiber
        | Ready _ ->
            t.states.(rank) <- Done (Raised (Abandoned_fiber, Printexc.get_callstack 0));
            t.live <- t.live - 1
        | Done _ -> ())
      t.states
  in
  let rec loop () =
    if t.live = 0 then ()
    else begin
      let progress_before = progress () in
      let ran = ref false in
      for rank = 0 to nfibers - 1 do
        if !fatal = None then begin
          match t.states.(rank) with
          | Ready thunk ->
              ran := true;
              start_fiber t rank thunk;
              check_fatal rank
          | Waiting (Parked p as parked) -> begin
              match wake_check rank with
              | Some exn ->
                  ran := true;
                  discontinue_fiber t rank parked exn;
                  check_fatal rank
              | None -> (
              match p.poll () with
              | Some v ->
                  ran := true;
                  (* Yield parks carry [parked_at = 0.] and are not real
                     waits; skip the resume hook for them. *)
                  if t.track_park && p.parked_at > 0. then
                    t.on_resume rank (now () -. p.parked_at);
                  resume_fiber t rank p.k v;
                  check_fatal rank
              | None -> ())
            end
          | Done _ -> ()
        end
      done;
      match !fatal with
      | Some (rank, exn, backtrace) ->
          abort_parked ();
          raise (Aborted { rank; exn; backtrace })
      | None ->
          if t.live = 0 then ()
          else if (not !ran) && progress () = progress_before then begin
            (* Quiescence: no fiber ran and nothing changed.  Give the
               model checker's resolver one chance to apply a deferred
               match decision (which must bump [progress]); only if it
               declines is this a genuine deadlock. *)
            if on_quiescence () then loop ()
            else begin
            let parked =
              Array.to_list t.states
              |> List.mapi (fun r st ->
                     match st with
                     | Waiting (Parked { describe; _ }) -> Some (r, describe ())
                     | Ready _ | Done _ -> None)
              |> List.filter_map Fun.id
            in
            let finished =
              Array.fold_left
                (fun acc st -> match st with Done _ -> acc + 1 | _ -> acc)
                0 t.states
            in
            abort_parked ();
            raise (Deadlock { parked; finished; total = nfibers })
            end
          end
          else loop ()
    end
  in
  loop ();
  Array.map
    (function
      | Done o -> o
      | Ready _ | Waiting _ -> assert false)
    t.states
