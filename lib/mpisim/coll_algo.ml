(* Collective-algorithm selection.  See the interface for the contract.

   Selection must be deterministic and identical on every rank: it is a
   pure function of (model tuning, call signature) plus a global override
   table that only changes between runs.  The counter/span name tables
   are precomputed so the dispatch path in Coll allocates nothing. *)

type op = Allreduce | Allgather | Bcast | Reduce_scatter

type algo =
  | Reduce_bcast
  | Recursive_doubling
  | Rabenseifner
  | Bruck
  | Ring
  | Binomial
  | Scatter_allgather
  | Reduce_scatterv
  | Pairwise

let op_name = function
  | Allreduce -> "allreduce"
  | Allgather -> "allgather"
  | Bcast -> "bcast"
  | Reduce_scatter -> "reduce_scatter"

let algo_name = function
  | Reduce_bcast -> "reduce_bcast"
  | Recursive_doubling -> "recursive_doubling"
  | Rabenseifner -> "rabenseifner"
  | Bruck -> "bruck"
  | Ring -> "ring"
  | Binomial -> "binomial"
  | Scatter_allgather -> "scatter_allgather"
  | Reduce_scatterv -> "reduce_scatterv"
  | Pairwise -> "pairwise"

let op_index = function Allreduce -> 0 | Allgather -> 1 | Bcast -> 2 | Reduce_scatter -> 3
let all_ops = [| Allreduce; Allgather; Bcast; Reduce_scatter |]

let algo_index = function
  | Reduce_bcast -> 0
  | Recursive_doubling -> 1
  | Rabenseifner -> 2
  | Bruck -> 3
  | Ring -> 4
  | Binomial -> 5
  | Scatter_allgather -> 6
  | Reduce_scatterv -> 7
  | Pairwise -> 8

let all_algos =
  [|
    Reduce_bcast; Recursive_doubling; Rabenseifner; Bruck; Ring; Binomial; Scatter_allgather;
    Reduce_scatterv; Pairwise;
  |]

let valid_for op algo =
  match (op, algo) with
  | Allreduce, (Reduce_bcast | Recursive_doubling | Rabenseifner) -> true
  | Allgather, (Bruck | Ring) -> true
  | Bcast, (Binomial | Scatter_allgather) -> true
  | Reduce_scatter, (Reduce_scatterv | Pairwise) -> true
  | _ -> false

(* Algorithms that reassociate the reduction across non-contiguous rank
   groups; only safe for commutative operators. *)
let needs_commutative = function
  | Recursive_doubling | Rabenseifner | Pairwise -> true
  | _ -> false

let counter_names =
  Array.map
    (fun o -> Array.map (fun a -> "coll.algo." ^ op_name o ^ "." ^ algo_name a) all_algos)
    all_ops

let span_names =
  Array.map (fun o -> Array.map (fun a -> op_name o ^ "." ^ algo_name a) all_algos) all_ops

let counter_name op algo = counter_names.(op_index op).(algo_index algo)
let span_name op algo = span_names.(op_index op).(algo_index algo)

(* --- overrides ------------------------------------------------------- *)

type spec = (op * algo option) list

let overrides : algo option array = Array.make (Array.length all_ops) None

let override_for op = overrides.(op_index op)

let set_overrides spec = List.iter (fun (o, a) -> overrides.(op_index o) <- a) spec

let clear_overrides () = Array.fill overrides 0 (Array.length overrides) None

let op_of_name = function
  | "allreduce" -> Some Allreduce
  | "allgather" -> Some Allgather
  | "bcast" -> Some Bcast
  | "reduce_scatter" -> Some Reduce_scatter
  | _ -> None

let algo_of_name n = Array.find_opt (fun a -> algo_name a = n) all_algos

let parse_spec s =
  let entries =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let parse_entry e =
    match String.index_opt e '=' with
    | None -> Error (Printf.sprintf "coll-algo entry %S is not of the form op=alg" e)
    | Some i -> (
        let opname = String.trim (String.sub e 0 i) in
        let algname = String.trim (String.sub e (i + 1) (String.length e - i - 1)) in
        match op_of_name opname with
        | None -> Error (Printf.sprintf "unknown collective %S in coll-algo spec" opname)
        | Some op ->
            if algname = "auto" then Ok (op, None)
            else (
              match algo_of_name algname with
              | None -> Error (Printf.sprintf "unknown algorithm %S in coll-algo spec" algname)
              | Some a when not (valid_for op a) ->
                  Error
                    (Printf.sprintf "algorithm %s does not implement %s" algname opname)
              | Some a -> Ok (op, Some a)))
  in
  List.fold_left
    (fun acc e ->
      match (acc, parse_entry e) with
      | Error _, _ -> acc
      | _, Error m -> Error m
      | Ok l, Ok kv -> Ok (kv :: l))
    (Ok []) entries
  |> Result.map List.rev

let refresh_from_env () =
  clear_overrides ();
  match Sys.getenv_opt "MPISIM_COLL_ALGO" with
  | None | Some "" -> ()
  | Some s -> (
      match parse_spec s with
      | Ok spec -> set_overrides spec
      | Error m -> Printf.eprintf "mpisim: ignoring MPISIM_COLL_ALGO: %s\n%!" m)

let () = refresh_from_env ()

(* --- integer helpers -------------------------------------------------- *)

let ceil_log2 n =
  if n < 1 then invalid_arg "Coll_algo.ceil_log2";
  let k = ref 0 in
  let v = ref 1 in
  while !v < n do
    incr k;
    v := !v lsl 1
  done;
  !k

let floor_pow2 n =
  if n < 1 then invalid_arg "Coll_algo.floor_pow2";
  let v = ref 1 in
  while !v lsl 1 <= n do
    v := !v lsl 1
  done;
  !v

(* --- selection -------------------------------------------------------- *)

let auto (t : Net_model.coll_tuning) op ~bytes ~size ~commutative ~elems =
  match op with
  | Allreduce ->
      if not commutative then Reduce_bcast
        (* Rabenseifner needs at least one element per power-of-two block
           to beat the full-vector exchanges; MPICH uses the same guard. *)
      else if bytes <= t.Net_model.allreduce_rdbl_max_bytes || elems < floor_pow2 size then
        Recursive_doubling
      else Rabenseifner
  | Allgather -> if bytes >= t.Net_model.allgather_ring_min_bytes then Ring else Bruck
  | Bcast ->
      (* Below four ranks the scatter phase degenerates (blocks the size
         of the message over <= 3 nodes); binomial is never worse. *)
      if size >= 4 && bytes >= t.Net_model.bcast_scatter_min_bytes then Scatter_allgather
      else Binomial
  | Reduce_scatter ->
      if (not commutative) || bytes < t.Net_model.reduce_scatter_pairwise_min_bytes then
        Reduce_scatterv
      else Pairwise

let choose (model : Net_model.t) op ~bytes ~size ~commutative ~elems =
  match override_for op with
  | Some a when commutative || not (needs_commutative a) -> a
  | _ -> auto model.Net_model.tuning op ~bytes ~size ~commutative ~elems

(* --- frozen selection (persistent operations) ------------------------- *)

(* A persistent request fixes its algorithm at init time; [choose] is a
   pure function of static inputs (tuning and overrides only change
   between runs), so the frozen choice equals what every later ad-hoc
   call with the same signature would pick — the equivalence the
   persistent ≡ ad-hoc counter-parity tests rely on.  The names are
   resolved once too, so the per-cycle dispatch has no table lookups. *)
type frozen = {
  frozen_op : op;
  frozen_algo : algo;
  frozen_counter : string;
  frozen_span : string;
}

let freeze (model : Net_model.t) op ~bytes ~size ~commutative ~elems =
  let algo = choose model op ~bytes ~size ~commutative ~elems in
  {
    frozen_op = op;
    frozen_algo = algo;
    frozen_counter = counter_name op algo;
    frozen_span = span_name op algo;
  }
