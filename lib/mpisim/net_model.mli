(** Network cost model (LogGP-flavoured alpha-beta model).

    A point-to-point message of [b] bytes occupies the sender for
    [send_overhead + b * byte_time] and arrives [latency] after injection;
    the receiver pays [recv_overhead] plus unpacking.  Collectives are
    built from point-to-point messages, so their cost emerges from the
    algorithm rather than from a formula.  The extra knobs model the
    implementation artifacts the paper's experiments depend on (alltoallw
    datatype setup, dense count-array scans, topology construction). *)

(** Per-link fault rates for the chaos plane.  Probabilities are per
    transmission attempt; [jitter] bounds a uniform extra transit delay in
    seconds.  All-zero rates describe a perfect link. *)
type link_rates = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  jitter : float;
}

(** Retransmission policy of the chaos plane's reliable-delivery layer.
    [rto = None] derives the base timeout from the model (4 x latency);
    [backoff] multiplies the timeout per failed attempt; [jitter_cap]
    bounds the accumulated random extra transit delay of one delivery. *)
type retry_policy = {
  max_retries : int;  (** retransmissions before escalating to ERR_PROC_FAILED *)
  rto : float option;  (** base retransmit timeout; [None] = 4 x latency *)
  backoff : float;  (** per-attempt timeout multiplier, >= 1 *)
  jitter_cap : float;  (** upper bound on accumulated jitter, seconds *)
}

(** 8 retries, model-derived rto, binary exponential backoff, unbounded
    jitter — the historical hardcoded behaviour. *)
val default_retry : retry_policy

(** Default rates for every link plus per-link overrides, keyed by
    (src world rank, dst world rank), and the retransmission policy the
    reliable layer applies on top of them. *)
type fault_profile = {
  default_rates : link_rates;
  link_overrides : ((int * int) * link_rates) list;
  retry : retry_policy;
}

(** Thresholds steering the collective-algorithm engine ({!Coll_algo}).
    All cutoffs are payload bytes; defaults mirror the switch-over points
    real MPI implementations use. *)
type coll_tuning = {
  allreduce_rdbl_max_bytes : int;
      (** at or below: recursive-doubling allreduce; above: Rabenseifner *)
  allgather_ring_min_bytes : int;
      (** per-rank contribution at or above which ring replaces Bruck *)
  bcast_scatter_min_bytes : int;
      (** total payload at or above which scatter+ring replaces binomial *)
  reduce_scatter_pairwise_min_bytes : int;
      (** total payload at or above which pairwise exchange replaces the
          reduce-to-root + scatter reference lowering *)
}

(** 2KB recursive-doubling cutoff, 32KB ring allgather, 64KB
    scatter+allgather bcast, 2KB pairwise reduce_scatter cutoff. *)
val default_tuning : coll_tuning

type t = {
  name : string;
  latency : float;  (** wire latency per message, seconds (alpha) *)
  send_overhead : float;  (** sender CPU per message (o_s) *)
  recv_overhead : float;  (** receiver CPU per message (o_r) *)
  byte_time : float;  (** seconds per byte on the wire (beta) *)
  copy_byte_time : float;  (** local pack/unpack cost per byte *)
  alltoallw_type_setup : float;
      (** per-peer derived-datatype construction in alltoallw-style calls *)
  dense_scan_byte : float;
      (** per-rank scan cost of the O(p) count arrays of dense vector
          collectives *)
  topo_setup_per_rank : float;
      (** graph-topology communicator construction, per member rank *)
  faults : fault_profile option;
      (** lossy-network model for the chaos plane; [None] (the presets'
          value) means perfect links and costs nothing on the data path *)
  tuning : coll_tuning;
      (** collective algorithm switch-over points (presets use
          [default_tuning]) *)
}

(** All-zero link rates. *)
val perfect_link : link_rates

(** The profile equivalent of perfect links. *)
val no_faults : fault_profile

(** A moderately lossy rate set (2% drop, 1% duplicate/reorder, 0.5%
    corrupt, jitter = [latency]). *)
val lossy_rates : latency:float -> link_rates

(** [lossy m] is [m] with the default lossy profile attached. *)
val lossy : t -> t

(** [with_faults m profile] is [m] with [profile] attached. *)
val with_faults : t -> fault_profile -> t

(** The rates governing link [src -> dst] (world ranks): the override if
    one exists, the profile default otherwise. *)
val rates_for : fault_profile -> src:int -> dst:int -> link_rates

(** An OmniPath-like interconnect (~1.5us latency, 100 Gbit/s) — the
    SuperMUC-NG analogue used by the paper-reproduction benchmarks. *)
val omnipath : t

(** Commodity ethernet: 25us latency, 10 Gbit/s. *)
val ethernet : t

(** Free communication: isolates binding-layer CPU cost in
    microbenchmarks and correctness tests. *)
val zero_cost : t

(** Time the sender is busy injecting a [bytes]-byte message. *)
val send_busy_time : t -> bytes:int -> float

(** Wire transit time of a message. *)
val transit_time : t -> float

(** Receiver-side cost of accepting a [bytes]-byte message. *)
val recv_busy_time : t -> bytes:int -> float

val pp : Format.formatter -> t -> unit
