(* PMPI-style profiling: per-operation call and byte counters.

   The paper uses MPI's profiling interface to verify that the binding
   layer issues exactly the expected underlying MPI calls when it computes
   default parameters (§III-H); tests here do the same with
   [snapshot]/[diff].

   The table is a facade over a {!Stats.t} registry: each op owns a pair
   of [Stats] counters ([mpi.<op>.calls] / [mpi.<op>.bytes]), so the same
   numbers appear in the general metrics exports (text and JSON) without
   being recorded twice.  The handle pair is cached per op, keeping
   [record] at one hash lookup, as before. *)

type handles = { calls_c : Stats.counter; bytes_c : Stats.counter }

type t = {
  stats : Stats.t;
  table : (string, handles) Hashtbl.t;
  mutable enabled : bool;
  (* Handle-cache guard for multicore runs: the table is read and grown
     from several domains, so lookups lock once [set_threadsafe] was
     called.  Sequential runs keep the lock-free path. *)
  lock : Mutex.t;
  mutable ts : bool;
}

type summary = (string * int * int) list
(* (op, calls, bytes), sorted by op name *)

let create ?stats () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  { stats; table = Hashtbl.create 32; enabled = true; lock = Mutex.create (); ts = false }

let set_threadsafe t = t.ts <- true

let[@inline] with_lock t f =
  if not t.ts then f ()
  else begin
    Mutex.lock t.lock;
    let v = f () in
    Mutex.unlock t.lock;
    v
  end

let handles t op =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table op with
      | Some h -> h
      | None ->
          let h =
            {
              calls_c = Stats.counter t.stats ("mpi." ^ op ^ ".calls");
              bytes_c = Stats.counter t.stats ("mpi." ^ op ^ ".bytes");
            }
          in
          Hashtbl.replace t.table op h;
          h)

(* Hot-path variant for persistent operations: the handle pair is resolved
   once at init ([prepare]) so a per-cycle [record_prepared] is two counter
   bumps — no hash lookup, no allocation. *)
type prepared = handles

let prepare t op : prepared = handles t op

let record_prepared t (h : prepared) ~bytes =
  if t.enabled then begin
    Stats.incr h.calls_c;
    Stats.add h.bytes_c bytes
  end

let record t ~op ~bytes =
  if t.enabled then begin
    let h = handles t op in
    Stats.incr h.calls_c;
    Stats.add h.bytes_c bytes
  end

let set_enabled t b = t.enabled <- b

let snapshot t : summary =
  Hashtbl.fold
    (fun op h acc -> (op, Stats.count h.calls_c, Stats.count h.bytes_c) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let calls t ~op =
  match Hashtbl.find_opt t.table op with None -> 0 | Some h -> Stats.count h.calls_c

let bytes t ~op =
  match Hashtbl.find_opt t.table op with None -> 0 | Some h -> Stats.count h.bytes_c

let total_calls t =
  Hashtbl.fold (fun _ h acc -> acc + Stats.count h.calls_c) t.table 0

(* [diff ~before ~after] lists ops whose call or byte count changed, with
   deltas.  The diff is symmetric: an op present only in [before] (e.g.
   hidden by a reset or rename) shows up with negative deltas rather than
   being silently dropped. *)
let diff ~(before : summary) ~(after : summary) : summary =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (op, c, b) -> Hashtbl.replace tbl op (c, b)) before;
  let forward =
    List.filter_map
      (fun (op, c, b) ->
        let c0, b0 = match Hashtbl.find_opt tbl op with Some x -> x | None -> (0, 0) in
        Hashtbl.remove tbl op;
        if c - c0 = 0 && b - b0 = 0 then None else Some (op, c - c0, b - b0))
      after
  in
  (* Whatever is left in [tbl] existed only in [before]. *)
  let vanished =
    Hashtbl.fold
      (fun op (c, b) acc -> if c = 0 && b = 0 then acc else (op, -c, -b) :: acc)
      tbl []
  in
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) (forward @ vanished)

let pp_summary ppf (s : summary) =
  List.iter (fun (op, c, b) -> Format.fprintf ppf "%-24s %8d calls %12d bytes@." op c b) s
