(** Minimal append-only JSON emitter used by the observability layer
    (Chrome-trace export, stats dumps, benchmark records).

    Writers append scalars into a [Buffer]; {!seq} handles the commas of
    objects and arrays.  Non-finite floats are emitted as [null] so the
    output always parses. *)

val str : Buffer.t -> string -> unit

val int : Buffer.t -> int -> unit

val float : Buffer.t -> float -> unit

val bool : Buffer.t -> bool -> unit

(** A comma-tracking object or array in progress. *)
type seq

val start_obj : Buffer.t -> seq

val start_arr : Buffer.t -> seq

(** Write the separator due before the next array element. *)
val sep : seq -> unit

(** Write the separator and ["key":] prefix of an object field; the caller
    writes the value. *)
val key : seq -> string -> unit

val end_obj : seq -> unit

val end_arr : seq -> unit

val field_str : seq -> string -> string -> unit

val field_int : seq -> string -> int -> unit

val field_float : seq -> string -> float -> unit
