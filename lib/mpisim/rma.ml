(* One-sided communication: RMA windows with fence and lock/unlock
   synchronization (MPI_Win / MPI_Put / MPI_Get / MPI_Accumulate /
   MPI_Win_lock analogue).

   The paper positions extending the MPI-standard coverage as future work
   (§VI); boost-mpi3 is noted for one-sided support.  This module covers
   two synchronization modes:

   - active target (fence): between two fences, ranks issue
     puts/gets/accumulates against any peer's exposure; a fence completes
     all pending operations and synchronizes (barrier semantics with the
     usual dissemination cost);
   - passive target (lock/unlock): a rank opens an exclusive or shared
     epoch on one target; its operations are applied — and its gets
     become valid — at [unlock], without the target participating.
     [with_locked] is the RAII-style guard.

   Model: operations are recorded as pending at the origin and applied at
   the closing synchronization in (origin rank, issue order) for fences —
   a deterministic serialization consistent with MPI's "undefined unless
   synchronized" semantics — and in issue order at unlock.  Costs: each
   operation charges its origin one message (alpha + beta * bytes); gets
   additionally wait a round trip (2*alpha + beta * bytes) at the closing
   fence or unlock; a lock acquisition waits a round trip to the target.
   Concurrent accumulates to the same location are well-defined (applied
   in the deterministic order); overlapping puts follow the same order
   (last origin wins).

   Bounds are validated when the operation is issued, not when the
   closing fence applies it: an out-of-range access raises the named
   ERR_RMA_RANGE at the faulty call site (and bumps [check.rma_range]
   under the sanitizer) instead of surfacing as a raw [Invalid_argument]
   from a blit deep inside [fence]. *)

type 'a op =
  | Put of { target : int; target_pos : int; data : 'a array }
  | Get of { target : int; target_pos : int; count : int; into : 'a array; into_pos : int }
  | Accumulate of {
      target : int;
      target_pos : int;
      data : 'a array;
      combine : 'a -> 'a -> 'a;
    }

(* Passive-target lock word of one rank's exposure: writer-or-readers.
   [excl] is meaningful while [holders > 0]. *)
type lock_state = { mutable excl : bool; mutable holders : int }

type 'a shared = {
  exposures : 'a array array;  (* world rank -> exposed local array *)
  pending : (int * 'a op) list ref;  (* (origin world rank, op), reversed *)
  locks : lock_state array;  (* world rank -> passive-target lock *)
  key : int * int * int;  (* registry key, for unregistration at free *)
  mutable fences : int;  (* completed fence epochs *)
  mutable freed_count : int;  (* ranks that completed [free] *)
}

type 'a t = {
  comm : Comm.t;
  dt : 'a Datatype.t;
  shared : 'a shared;
  mutable lock_target : int;  (* world rank of the open lock epoch, -1 none *)
  mutable epoch_ops : 'a op list;  (* ops of the open lock epoch, reversed *)
  mutable freed : bool;
}

(* Registry so that all ranks share one window state per creation site.
   Keyed by (runtime id, context, creation sequence).  The [Obj.t]
   erasure is sound because window creation is collective and ends in a
   barrier: every rank's k-th [create] on a communicator instantiates the
   same window with the same element type, so all readers of a key agree
   on 'a.  Entries are removed by the last rank through [free], and a
   context's creation counter is reclaimed once none of its windows
   remain — a long-running sim creating and freeing windows holds no
   residual global state. *)
let registry : (int * int * int, Obj.t) Hashtbl.t = Hashtbl.create 16

let creation_counter : (int * int, int ref) Hashtbl.t = Hashtbl.create 16

(* Registry footprint (live windows, tracked contexts); tests assert it
   returns to its baseline after create/free cycles. *)
let registry_stats () = (Hashtbl.length registry, Hashtbl.length creation_counter)

(* Create a window exposing [local].  Collective.  The arrays stay owned
   by their ranks; remote access goes through the window operations. *)
let create (comm : Comm.t) (dt : 'a Datatype.t) (local : 'a array) : 'a t =
  Comm.check_collective comm ~op:"win_create" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime comm) ~op:"win_create" ~bytes:0;
  let rt = Comm.runtime comm in
  let ckey = (rt.Runtime.id, Comm.context comm) in
  (* Counter bump and shared-record install are cross-rank registry
     mutations: one locked region in multicore mode. *)
  let shared =
    Runtime.locked rt @@ fun () ->
    let counter =
      match Hashtbl.find_opt creation_counter ckey with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.replace creation_counter ckey c;
          c
    in
    (* Each rank bumps its own view of the counter; since creation is
       collective and deterministic, all ranks agree on the sequence
       number.  The first arriver allocates the shared record. *)
    let seq = !counter / Comm.size comm in
    incr counter;
    let key = (rt.Runtime.id, Comm.context comm, seq) in
    match Hashtbl.find_opt registry key with
    | Some s -> (Obj.obj s : 'a shared)
    | None ->
        let s =
          {
            exposures = Array.make rt.Runtime.size [||];
            pending = ref [];
            locks = Array.init rt.Runtime.size (fun _ -> { excl = false; holders = 0 });
            key;
            fences = 0;
            freed_count = 0;
          }
        in
        Hashtbl.replace registry key (Obj.repr s);
        s
  in
  shared.exposures.(Comm.world_rank comm) <- local;
  (* Windows become usable only after every rank registered. *)
  Coll.barrier comm;
  { comm; dt; shared; lock_target = -1; epoch_ops = []; freed = false }

let check_not_freed t ~op =
  if t.freed then Errdefs.usage_error "%s: window has been freed" op

let charge_origin t ~bytes =
  let rt = Comm.runtime t.comm in
  let me = Comm.world_rank t.comm in
  Runtime.advance_clock rt me (Net_model.send_busy_time rt.Runtime.model ~bytes);
  Runtime.bump_progress rt

(* The modelled round trip a get waits for at the closing fence/unlock:
   request out, [bytes] of payload back. *)
let get_round_trip t ~bytes =
  let model = (Comm.runtime t.comm).Runtime.model in
  (2. *. Net_model.transit_time model) +. (float_of_int bytes *. model.Net_model.byte_time)

(* Issue-time bounds validation against the target's exposure.  The
   exposure length is known on every rank once [create]'s barrier has
   completed.  Raises the named ERR_RMA_RANGE (satellite: not a raw
   [Invalid_argument] out of a blit inside [fence]) and counts the
   violation under the sanitizer. *)
let check_range t ~op ~target_world ~target ~pos ~count =
  let len = Array.length t.shared.exposures.(target_world) in
  if pos < 0 || count < 0 || pos + count > len then begin
    let chk = (Comm.runtime t.comm).Runtime.check in
    if Check.enabled chk then
      Check.on_rma_range chk ~rank:(Comm.world_rank t.comm) ~op ~target ~pos ~count ~len;
    Comm.error t.comm Errdefs.Err_rma_range
      "%s: [%d, %d) out of bounds for target %d's %d-element window" op pos (pos + count)
      target len
  end

(* Route an issued op: into the open lock epoch if one is held (where it
   must address the locked target), into the shared fence batch
   otherwise. *)
let enqueue t ~op_name ~target_world (op : 'a op) =
  if t.lock_target >= 0 then begin
    if target_world <> t.lock_target then
      Errdefs.usage_error "%s: lock epoch is open on rank %d; cannot address rank %d"
        op_name
        (Comm.rank_of_world t.comm t.lock_target)
        (Comm.rank_of_world t.comm target_world);
    t.epoch_ops <- op :: t.epoch_ops
  end
  else
    (* The fence batch is shared by all ranks of the window. *)
    Runtime.locked (Comm.runtime t.comm) (fun () ->
        t.shared.pending := (Comm.world_rank t.comm, op) :: !(t.shared.pending))

(* Queue a put of [data] into [target]'s exposure at [target_pos].
   Applied at the next fence (or at unlock inside a lock epoch). *)
let put (t : 'a t) ~target ~target_pos (data : 'a array) : unit =
  Comm.check_rank t.comm target;
  check_not_freed t ~op:"rma_put";
  let target_world = Comm.world_of_rank t.comm target in
  check_range t ~op:"rma_put" ~target_world ~target ~pos:target_pos
    ~count:(Array.length data);
  Runtime.record (Comm.runtime t.comm) ~op:"rma_put"
    ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  charge_origin t ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  enqueue t ~op_name:"rma_put" ~target_world
    (Put { target = target_world; target_pos; data = Array.copy data })

(* Queue a get of [count] elements from [target]'s exposure into [into]
   at [into_pos]; the data is valid after the next fence (or unlock). *)
let get (t : 'a t) ~target ~target_pos ~count (into : 'a array) ~into_pos : unit =
  Comm.check_rank t.comm target;
  check_not_freed t ~op:"rma_get";
  let target_world = Comm.world_of_rank t.comm target in
  check_range t ~op:"rma_get" ~target_world ~target ~pos:target_pos ~count;
  if into_pos < 0 || count < 0 || into_pos + count > Array.length into then
    Errdefs.usage_error "rma_get: invalid local range (into_pos %d, count %d, len %d)"
      into_pos count (Array.length into);
  Runtime.record (Comm.runtime t.comm) ~op:"rma_get"
    ~bytes:(Datatype.size_of_count t.dt count);
  (* The request message out; the payload's round trip is charged where
     the get completes (fence/unlock). *)
  charge_origin t ~bytes:0;
  enqueue t ~op_name:"rma_get" ~target_world
    (Get { target = target_world; target_pos; count; into; into_pos })

(* Queue an accumulate (well-defined under concurrency: all accumulates
   are applied in the deterministic fence order). *)
let accumulate (t : 'a t) ~target ~target_pos (op : 'a Reduce_op.t) (data : 'a array) :
    unit =
  Comm.check_rank t.comm target;
  check_not_freed t ~op:"rma_accumulate";
  let target_world = Comm.world_of_rank t.comm target in
  check_range t ~op:"rma_accumulate" ~target_world ~target ~pos:target_pos
    ~count:(Array.length data);
  Runtime.record (Comm.runtime t.comm) ~op:"rma_accumulate"
    ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  charge_origin t ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  enqueue t ~op_name:"rma_accumulate" ~target_world
    (Accumulate
       { target = target_world; target_pos; data = Array.copy data; combine = Reduce_op.apply op })

(* Apply one op against the exposures; bounds were validated at issue.
   [origin] pays the get round trip — the charge the module header
   promises (satellite bugfix: it used to never be charged). *)
let apply_op t ~origin (op : 'a op) =
  match op with
  | Put { target; target_pos; data } ->
      Array.blit data 0 t.shared.exposures.(target) target_pos (Array.length data)
  | Get { target; target_pos; count; into; into_pos } ->
      Array.blit t.shared.exposures.(target) target_pos into into_pos count;
      Runtime.advance_clock (Comm.runtime t.comm) origin
        (get_round_trip t ~bytes:(Datatype.size_of_count t.dt count))
  | Accumulate { target; target_pos; data; combine } ->
      let tgt = t.shared.exposures.(target) in
      Array.iteri (fun i v -> tgt.(target_pos + i) <- combine tgt.(target_pos + i) v) data

(* Close the access epoch: applies every pending operation in
   deterministic (origin rank, issue order) and synchronizes all ranks.
   Collective.  The first fiber through the entry barrier applies the
   whole batch (deterministic under the round-robin scheduler, and safe
   to charge other origins' clocks: they are between the two barriers);
   the exit barrier keeps any rank from reading early. *)
let fence (t : 'a t) : unit =
  check_not_freed t ~op:"win_fence";
  if t.lock_target >= 0 then
    Errdefs.usage_error "win_fence: a lock epoch is open; unlock before fencing";
  Comm.check_collective t.comm ~op:"win_fence" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime t.comm) ~op:"win_fence" ~bytes:0;
  Coll.barrier t.comm;
  (* Take-and-clear must be atomic in multicore mode so exactly one rank
     applies the batch (the sequential scheduler guarantees this by
     running the first fiber through the barrier to completion). *)
  let ops =
    Runtime.locked (Comm.runtime t.comm) (fun () ->
        let ops = List.rev !(t.shared.pending) in
        t.shared.pending := [];
        t.shared.fences <- t.shared.fences + 1;
        ops)
  in
  if ops <> [] then begin
    let stable = List.stable_sort (fun (o1, _) (o2, _) -> compare o1 o2) ops in
    List.iter (fun (origin, op) -> apply_op t ~origin op) stable
  end;
  Coll.barrier t.comm

(* ------------------------------------------------------------------ *)
(* Passive target: lock / unlock epochs *)

(* Open a passive-target epoch on [target].  Blocks (cooperatively) until
   the lock is acquirable: an exclusive lock needs the target free, a
   shared lock tolerates other shared holders.  One epoch per window per
   origin at a time. *)
let lock ?(exclusive = true) (t : 'a t) ~target : unit =
  Comm.check_rank t.comm target;
  check_not_freed t ~op:"win_lock";
  Runtime.check_alive (Comm.runtime t.comm) (Comm.world_rank t.comm);
  if t.lock_target >= 0 then
    Errdefs.usage_error "win_lock: an epoch on rank %d is already open"
      (Comm.rank_of_world t.comm t.lock_target);
  let target_world = Comm.world_of_rank t.comm target in
  let ls = t.shared.locks.(target_world) in
  let acquirable () = ls.holders = 0 || ((not exclusive) && not ls.excl) in
  (* Check-and-acquire must be one atomic step in multicore mode (two
     origins may race for the same target); a loser re-parks and tries
     again.  Sequentially the loop body runs at most twice, exactly as
     the straight-line version did. *)
  let try_acquire () =
    Runtime.locked (Comm.runtime t.comm) (fun () ->
        if acquirable () then begin
          if ls.holders = 0 then ls.excl <- exclusive;
          ls.holders <- ls.holders + 1;
          true
        end
        else false)
  in
  while not (try_acquire ()) do
    Scheduler.park
      ~describe:(fun () ->
        Printf.sprintf "win_lock(%s) on target %d"
          (if exclusive then "exclusive" else "shared")
          target)
      ~poll:(fun () -> if acquirable () then Some () else None)
  done;
  t.lock_target <- target_world;
  Runtime.record (Comm.runtime t.comm) ~op:"win_lock" ~bytes:0;
  (* The lock request's round trip to the target. *)
  Runtime.advance_clock (Comm.runtime t.comm) (Comm.world_rank t.comm)
    (2. *. Net_model.transit_time (Comm.runtime t.comm).Runtime.model);
  Runtime.bump_progress (Comm.runtime t.comm)

(* Close the epoch: apply this origin's queued operations in issue order
   (gets pay their round trip here) and release the lock. *)
let unlock (t : 'a t) : unit =
  check_not_freed t ~op:"win_unlock";
  if t.lock_target < 0 then Errdefs.usage_error "win_unlock: no lock epoch is open";
  let me = Comm.world_rank t.comm in
  let ops = List.rev t.epoch_ops in
  t.epoch_ops <- [];
  List.iter (fun op -> apply_op t ~origin:me op) ops;
  let ls = t.shared.locks.(t.lock_target) in
  Runtime.locked (Comm.runtime t.comm) (fun () ->
      ls.holders <- ls.holders - 1;
      if ls.holders = 0 then ls.excl <- false);
  t.lock_target <- -1;
  Runtime.record (Comm.runtime t.comm) ~op:"win_unlock" ~bytes:0;
  (* Wake peers parked in [lock]. *)
  Runtime.bump_progress (Comm.runtime t.comm)

(* RAII-style guard: the epoch is closed on any exit, including
   exceptions, so a raising body never leaves the target locked. *)
let with_locked ?exclusive (t : 'a t) ~target (f : unit -> 'b) : 'b =
  lock ?exclusive t ~target;
  Fun.protect ~finally:(fun () -> unlock t) f

(* This rank's exposed array (direct local access). *)
let local (t : 'a t) : 'a array = t.shared.exposures.(Comm.world_rank t.comm)

(* Free the window.  Collective.  The last rank through the barrier
   removes the window from the global registry, and reclaims the
   context's creation counter once no other window of that context
   remains (satellite bugfix: entries used to leak for the process
   lifetime). *)
let free (t : 'a t) : unit =
  check_not_freed t ~op:"win_free";
  if t.lock_target >= 0 then
    Errdefs.usage_error "win_free: a lock epoch is open; unlock before freeing";
  Comm.check_collective t.comm ~op:"win_free" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime t.comm) ~op:"win_free" ~bytes:0;
  t.freed <- true;
  Coll.barrier t.comm;
  Runtime.locked (Comm.runtime t.comm) (fun () ->
      t.shared.freed_count <- t.shared.freed_count + 1;
      if t.shared.freed_count = Comm.size t.comm then begin
        Hashtbl.remove registry t.shared.key;
        let rid, ctx, _ = t.shared.key in
        let any_left =
          Hashtbl.fold
            (fun (r, c, _) _ acc -> acc || (r = rid && c = ctx))
            registry false
        in
        if not any_left then Hashtbl.remove creation_counter (rid, ctx)
      end)
