(* One-sided communication: RMA windows with fence synchronization
   (MPI_Win / MPI_Put / MPI_Get / MPI_Accumulate analogue).

   The paper positions extending the MPI-standard coverage as future work
   (§VI); boost-mpi3 is noted for one-sided support.  This module covers
   the active-target (fence) subset:

   - a window exposes each rank's local array to its peers;
   - between two fences, ranks issue puts/gets/accumulates against any
     peer's exposure;
   - a fence completes all pending operations and synchronizes (barrier
     semantics with the usual dissemination cost).

   Model: operations are recorded as pending at the origin and applied at
   the closing fence in (origin rank, issue order) — a deterministic
   serialization consistent with MPI's "undefined unless synchronized"
   semantics.  Costs: each operation charges its origin one message
   (alpha + beta * bytes); gets additionally wait a round trip at the
   fence.  Concurrent accumulates to the same location are well-defined
   (applied in the deterministic order); overlapping puts follow the same
   order (last origin wins). *)

type 'a op =
  | Put of { target : int; target_pos : int; data : 'a array }
  | Get of { target : int; target_pos : int; count : int; into : 'a array; into_pos : int }
  | Accumulate of {
      target : int;
      target_pos : int;
      data : 'a array;
      combine : 'a -> 'a -> 'a;
    }

type 'a shared = {
  exposures : 'a array array;  (* world rank -> exposed local array *)
  pending : (int * 'a op) list ref;  (* (origin world rank, op), reversed *)
  mutable fences : int;  (* completed fence epochs *)
}

type 'a t = {
  comm : Comm.t;
  dt : 'a Datatype.t;
  shared : 'a shared;
}

(* Registry so that all ranks share one window state per creation site.
   Keyed by (runtime id, context, creation sequence).  The [Obj.t]
   erasure is sound because window creation is collective and ends in a
   barrier: every rank's k-th [create] on a communicator instantiates the
   same window with the same element type, so all readers of a key agree
   on 'a. *)
let registry : (int * int * int, Obj.t) Hashtbl.t = Hashtbl.create 16

let creation_counter : (int * int, int ref) Hashtbl.t = Hashtbl.create 16

(* Create a window exposing [local].  Collective.  The arrays stay owned
   by their ranks; remote access goes through the window operations. *)
let create (comm : Comm.t) (dt : 'a Datatype.t) (local : 'a array) : 'a t =
  Comm.check_collective comm ~op:"win_create" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime comm) ~op:"win_create" ~bytes:0;
  let rt = Comm.runtime comm in
  let ckey = (rt.Runtime.id, Comm.context comm) in
  let counter =
    match Hashtbl.find_opt creation_counter ckey with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace creation_counter ckey c;
        c
  in
  (* Each rank bumps its own view of the counter; since creation is
     collective and deterministic, all ranks agree on the sequence
     number.  The first arriver allocates the shared record. *)
  let seq = !counter / Comm.size comm in
  incr counter;
  let key = (rt.Runtime.id, Comm.context comm, seq) in
  let shared =
    match Hashtbl.find_opt registry key with
    | Some s -> (Obj.obj s : 'a shared)
    | None ->
        let s =
          { exposures = Array.make rt.Runtime.size [||]; pending = ref []; fences = 0 } in
        Hashtbl.replace registry key (Obj.repr s);
        s
  in
  shared.exposures.(Comm.world_rank comm) <- local;
  (* Windows become usable only after every rank registered. *)
  Coll.barrier comm;
  { comm; dt; shared }

let charge_origin t ~bytes =
  let rt = Comm.runtime t.comm in
  let me = Comm.world_rank t.comm in
  Runtime.advance_clock rt me (Net_model.send_busy_time rt.Runtime.model ~bytes);
  Runtime.bump_progress rt

(* Queue a put of [data] into [target]'s exposure at [target_pos].
   Applied at the next fence. *)
let put (t : 'a t) ~target ~target_pos (data : 'a array) : unit =
  Comm.check_rank t.comm target;
  Runtime.record (Comm.runtime t.comm) ~op:"rma_put"
    ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  charge_origin t ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  let origin = Comm.world_rank t.comm in
  t.shared.pending :=
    (origin, Put { target = Comm.world_of_rank t.comm target; target_pos; data = Array.copy data })
    :: !(t.shared.pending)

(* Queue a get of [count] elements from [target]'s exposure into [into]
   at [into_pos]; the data is valid after the next fence. *)
let get (t : 'a t) ~target ~target_pos ~count (into : 'a array) ~into_pos : unit =
  Comm.check_rank t.comm target;
  Runtime.record (Comm.runtime t.comm) ~op:"rma_get"
    ~bytes:(Datatype.size_of_count t.dt count);
  charge_origin t ~bytes:0;
  let origin = Comm.world_rank t.comm in
  t.shared.pending :=
    (origin, Get { target = Comm.world_of_rank t.comm target; target_pos; count; into; into_pos })
    :: !(t.shared.pending)

(* Queue an accumulate (well-defined under concurrency: all accumulates
   are applied in the deterministic fence order). *)
let accumulate (t : 'a t) ~target ~target_pos (op : 'a Reduce_op.t) (data : 'a array) :
    unit =
  Comm.check_rank t.comm target;
  Runtime.record (Comm.runtime t.comm) ~op:"rma_accumulate"
    ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  charge_origin t ~bytes:(Datatype.size_of_count t.dt (Array.length data));
  let origin = Comm.world_rank t.comm in
  t.shared.pending :=
    ( origin,
      Accumulate
        {
          target = Comm.world_of_rank t.comm target;
          target_pos;
          data = Array.copy data;
          combine = Reduce_op.apply op;
        } )
    :: !(t.shared.pending)

(* Close the access epoch: applies every pending operation in
   deterministic (origin rank, issue order) and synchronizes all ranks.
   Collective.  The first fiber through the entry barrier applies the
   whole batch (deterministic under the round-robin scheduler); the exit
   barrier keeps any rank from reading early. *)
let fence (t : 'a t) : unit =
  Comm.check_collective t.comm ~op:"win_fence" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime t.comm) ~op:"win_fence" ~bytes:0;
  Coll.barrier t.comm;
  let ops = List.rev !(t.shared.pending) in
  t.shared.pending := [];
  if ops <> [] then begin
    let stable = List.stable_sort (fun (o1, _) (o2, _) -> compare o1 o2) ops in
    List.iter
      (fun (_, op) ->
        match op with
        | Put { target; target_pos; data } ->
            Array.blit data 0 t.shared.exposures.(target) target_pos (Array.length data)
        | Get { target; target_pos; count; into; into_pos } ->
            Array.blit t.shared.exposures.(target) target_pos into into_pos count
        | Accumulate { target; target_pos; data; combine } ->
            let tgt = t.shared.exposures.(target) in
            Array.iteri
              (fun i v -> tgt.(target_pos + i) <- combine tgt.(target_pos + i) v)
              data)
      stable
  end;
  t.shared.fences <- t.shared.fences + 1;
  Coll.barrier t.comm

(* This rank's exposed array (direct local access). *)
let local (t : 'a t) : 'a array = t.shared.exposures.(Comm.world_rank t.comm)

(* Free the window.  Collective. *)
let free (t : 'a t) : unit =
  Comm.check_collective t.comm ~op:"win_free" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime t.comm) ~op:"win_free" ~bytes:0;
  Coll.barrier t.comm
