(** Mpicheck: an opt-in MUST-style correctness sanitizer.

    Four check classes, selected by {!level}:

    - {b collective consistency} (light): all ranks of a communicator
      must issue the same collective kinds in the same order with
      agreeing root and element type; the first divergent rank is
      reported together with both call sites;
    - {b request lifecycle} (light): non-blocking requests must be
      completed exactly once — leaks are reported at finalize, a wait on
      an already-completed request at the wait site;
    - {b deadlock diagnosis} (light): when the scheduler trips its
      detector, the per-rank pending-operation table becomes a wait-for
      graph and the shortest cycle is printed with named edges;
    - {b wildcard determinism} (heavy): an ANY_SOURCE / ANY_TAG receive
      with two or more eligible matches at match time is counted and
      logged (not raised) — the run is schedule-dependent.

    The checker is wired into the runtime like {!Trace}: created with
    the runtime, inert at {!level} [Off].  Call sites guard every hook
    with {!enabled} / {!heavy} so the off path costs one load and branch
    and allocates nothing.

    Findings bump a [check.*] counter in the {!Stats} registry, mark the
    violation site with a {!Trace} instant (category ["check"]) and —
    except for wildcard races — raise {!Errdefs.Check_violation}. *)

type t

type level = Off | Light | Heavy

val level_to_string : level -> string

val level_of_string : string -> level option

(** [create ~stats ~trace ~size ()] builds a checker for a [size]-rank
    simulation, initially at level [Off]. *)
val create : stats:Stats.t -> trace:Trace.t -> size:int -> unit -> t

val level : t -> level

val set_level : t -> level -> unit

(** [level t <> Off].  Guard every hook call site with this. *)
val enabled : t -> bool

(** [level t = Heavy]. *)
val heavy : t -> bool

(** Violations recorded so far (including wildcard races). *)
val violations : t -> int

(** {1 Collective consistency} *)

(** Rank [rank] (within the communicator identified by [context]) issues
    its next collective.  [world_rank] locates trace events; [root] is
    the comm-rank root or [-1] for unrooted collectives; [ty] is the
    element-type name ({!Datatype.name}) or [""] when untyped.  Raises
    {!Errdefs.Check_violation} on kind/root/type divergence from the
    schedule established by the first rank to reach this call slot. *)
val on_collective :
  t ->
  context:int ->
  rank:int ->
  world_rank:int ->
  op:string ->
  root:int ->
  ty:string ->
  unit

(** {1 Request lifecycle} *)

(** Track a freshly created non-blocking request of world rank [rank];
    [kind] names the originating call (["isend"], ["irecv"], ...).  Also
    attaches the re-wait observer that reports double-waits. *)
val track_request : t -> rank:int -> kind:string -> Request.t -> unit

(** Sampled structural hash of a send buffer ([Hashtbl.hash_param]);
    allocation-free. *)
val buffer_hash : 'a -> int

(** Compare the post-time and completion-time hashes of an in-flight
    send buffer; raises on mismatch (heavy level, called by the binding
    layer). *)
val check_send_buffer : t -> rank:int -> op:string -> posted:int -> now:int -> unit

(** {1 Deadlock diagnosis} *)

(** Pending blocking operation of a rank (world ranks; [src = -1] is a
    wildcard receive). *)
type waiting =
  | Wrecv of { src : int; tag : int; ctx : int; op : string }
  | Wssend of { dst : int; tag : int; op : string }

val set_waiting : t -> rank:int -> waiting -> unit

val clear_waiting : t -> rank:int -> unit

(** Upgrade of the scheduler's flat deadlock report: the shortest
    wait-for cycle with named edges when one exists, the per-rank
    pending operations otherwise.  [parked] is
    [Scheduler.Deadlock]'s payload. *)
val deadlock_report :
  t -> parked:(int * string) list -> finished:int -> total:int -> string

(** {1 Payload integrity (chaos plane)} *)

(** The reliable layer's payload CRC failed at the receiver on [rank] for
    a message from [src].  Raises {!Errdefs.Check_violation}. *)
val on_crc_mismatch : t -> rank:int -> src:int -> expected:int -> got:int -> unit

(** {1 Wildcard determinism (heavy)} *)

(** A wildcard receive on [rank] matched while [eligible] messages were
    simultaneously eligible; records a race when [eligible >= 2]. *)
val on_wildcard_match : t -> rank:int -> src:int -> tag:int -> eligible:int -> unit

(** Wildcard races recorded so far. *)
val wildcard_races : t -> int

(** {1 RMA bounds} *)

(** A one-sided op on [rank] addressed elements [pos, pos+count) outside
    the [len]-element exposure of [target]'s window.  Counts the finding
    under [check.rma_range] (the RMA layer raises the named
    [ERR_RMA_RANGE] error itself, sanitizer or not). *)
val on_rma_range :
  t -> rank:int -> op:string -> target:int -> pos:int -> count:int -> len:int -> unit

(** {1 Finalize} *)

(** End-of-run scan (engine teardown of a clean run): leaked requests
    and diverging per-rank collective counts. *)
val finalize_scan : t -> unit
