(** Typed datatype descriptors (the MPI_Datatype analogue, paper §III-D).

    A ['a t] maps values of type ['a] to the wire: per-element byte size,
    a {!Signature.t} for send/receive matching checks, and pack/unpack
    functions.  Every message really is packed through its descriptor, so
    layout decisions have genuine CPU and volume consequences.

    - builtins correspond to MPI's basic types and are permanently
      committed;
    - [record2]..[record5] build gap-skipping struct types from field
      lists — the analogue of MPI_Type_create_struct driven by PFR
      reflection: the layout cannot drift from the data because the
      fields {e are} the accessors;
    - [blob] maps a trivially-copyable value to one contiguous byte block
      (single bulk copy, alignment gaps included on the wire) — the
      library's preferred default per §III-D4;
    - [create] supports fully dynamic, runtime-sized types (§III-D2).

    Derived types must be committed before use in communication and freed
    afterwards; {!live_derived_count} lets tests assert the absence of
    resource leaks.  {!with_committed} scopes commit/free automatically
    (Construct-On-First-Use with guaranteed cleanup). *)

type kind = Builtin | Derived

(** Bulk fast-path kernel for fixed-size, contiguously-encoded element
    types: one buffer reservation and a direct-store loop per element run,
    no per-element closure dispatch.  Chosen once at type-construction
    (= commit for builtins) time; [None] means the general per-element
    path. *)
type 'a bulk_kernel

type 'a t = {
  name : string;
  id : int;
  kind : kind;
  elem_size : int;  (** wire bytes per element *)
  signature : Signature.t;  (** per element *)
  pack : Wire.writer -> 'a -> unit;
  unpack : Wire.reader -> 'a;
  bulk : 'a bulk_kernel option;
}

(** {1 Commit/free lifecycle} *)

(** Mark a derived type ready for communication.  Raises
    [Invalid_argument] if already freed. *)
val commit : 'a t -> unit

(** Release a derived type.  Raises [Invalid_argument] on double free or
    on builtins. *)
val free : 'a t -> unit

val is_committed : 'a t -> bool

(** Derived types currently committed and not freed (leak detector). *)
val live_derived_count : unit -> int

val pool_reset_for_tests : unit -> unit

(** [with_committed t f] commits [t] if needed, runs [f t], and frees [t]
    again if this call committed it. *)
val with_committed : 'a t -> ('a t -> 'b) -> 'b

(** {1 Builtins} *)

val int : int t

val int32 : int32 t

val int64 : int64 t

val float : float t

(** 32-bit floats (lossy round-trip of OCaml floats). *)
val float32 : float t

val char : char t

(** Like [char] but with an opaque [Blob] signature (MPI_BYTE). *)
val byte : char t

val bool : bool t

(** {1 Derived-type constructors} *)

(** Fully custom / dynamic type: sizes may be computed at runtime. *)
val create :
  name:string ->
  size:int ->
  signature:Signature.t ->
  pack:(Wire.writer -> 'a -> unit) ->
  unpack:(Wire.reader -> 'a) ->
  'a t

(** Fixed-count block of a base type; the array length is checked at
    pack time. *)
val contiguous : count:int -> 'a t -> 'a array t

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** Fixed-size option: one presence byte plus (possibly padding) payload
    space, so elements stay fixed-size. *)
val option_ : 'a t -> 'a option t

(** {1 Struct types from field lists} *)

type ('r, 'a) field

(** [field ?pad_after name dt get] describes one struct member;
    [pad_after] models an alignment gap after it (only meaningful to the
    gap-including constructors). *)
val field : ?pad_after:int -> string -> 'a t -> ('r -> 'a) -> ('r, 'a) field

val record2 : string -> ('r, 'a) field -> ('r, 'b) field -> ('a -> 'b -> 'r) -> 'r t

val record3 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('a -> 'b -> 'c -> 'r) ->
  'r t

val record4 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('a -> 'b -> 'c -> 'd -> 'r) ->
  'r t

val record5 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('r, 'e) field ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'r) ->
  'r t

(** Like {!record3} but alignment gaps are shipped as zero padding in one
    pass — the trivially-copyable "contiguous bytes" default of §III-D4.
    The signature is opaque ([Blob]). *)
val record3_with_gaps :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('a -> 'b -> 'c -> 'r) ->
  'r t

(** Opaque contiguous byte block written/read in place (zero-copy with the
    wire buffer).  [write buf pos v] must fill exactly [size] bytes. *)
val blob :
  name:string ->
  size:int ->
  write:(Bytes.t -> int -> 'a -> unit) ->
  read:(Bytes.t -> int -> 'a) ->
  'a t

(** {1 Bulk helpers} *)

(** The bulk helpers dispatch once on the type's kernel: builtins, [blob]
    and fixed compositions of them ([contiguous], [pair]) take a
    single-reservation fast path; everything else packs element by
    element. *)

val pack_array : 'a t -> Wire.writer -> 'a array -> pos:int -> count:int -> unit

val unpack_array : 'a t -> Wire.reader -> count:int -> 'a array

val unpack_into : 'a t -> Wire.reader -> 'a array -> pos:int -> count:int -> unit

(** Whether the type carries a bulk kernel (takes the fast path). *)
val bulk_available : 'a t -> bool

(** The same type forced onto the general per-element path (same id and
    commit state) — the "before" side for equivalence tests and overhead
    benchmarks. *)
val without_bulk : 'a t -> 'a t

(** A placeholder decoded from zero bytes; seeds freshly allocated receive
    arrays. *)
val zero_elem : 'a t -> 'a

val size_of_count : 'a t -> int -> int

val signature_of_count : 'a t -> int -> Signature.t

val name : 'a t -> string

val elem_size : 'a t -> int

(** A pre-compiled pack/unpack plan for a (type, count) pair: byte size
    and wire signature resolved once, so persistent-request cycles pass
    cached values instead of recomputing them per call. *)
type 'a plan = {
  plan_dt : 'a t;
  plan_count : int;
  plan_bytes : int;  (** = [size_of_count plan_dt plan_count] *)
  plan_signature : Signature.t;  (** = [signature_of_count plan_dt plan_count] *)
}

(** Raises [Usage_error] on a negative count. *)
val plan : 'a t -> count:int -> 'a plan
