(** Structured event tracing on the hybrid virtual clock.

    Spans mark operation extents (scheduler segments, collectives, p2p
    calls, kamping calls, timer keys) and instants mark point happenings
    (message injection and match, park/resume, failure injection).

    Two sinks: the default {e ring} sink buffers a bounded window per
    rank (evicting and counting the oldest on overflow, {!dropped}); the
    {e stream} sink ({!enable_stream}) appends every event incrementally
    to a binary {!Trace_stream} file with per-rank sequence numbers — no
    per-rank buffers at all, nothing dropped, O(1) memory per idle rank.

    The recorder is created {e disabled}: every emitter first checks a
    single mutable bool and returns without allocating, so instrumented
    hot paths cost one branch when tracing is off.  Emitters read the
    timestamp themselves from the runtime's clock array, so call sites
    never box a float on the disabled path. *)

type kind = Trace_chrome.kind = Begin | End | Instant | Complete

type event = {
  kind : kind;
  cat : string;  (** layer: ["sched"], ["sim"], ["coll"], ["p2p"], ["kamping"], ["timer"] *)
  name : string;
  ts : float;  (** virtual time; for [Complete], the span's {e end} *)
  dur : float;  (** span length, [Complete] only *)
  a : int;  (** event args, [-1] when unused. [send]: a=dst b=seq c=bytes; *)
  b : int;  (** [match]/[match_wait]: a=src b=seq c=bytes; [park]/[resume]: none *)
  c : int;
  d : int;  (** the emitting rank's Lamport clock on send/match instants *)
}

type t

(** [create ~clocks] builds a disabled recorder with one ring per entry of
    [clocks] (the runtime's per-rank virtual clocks, read at emit time). *)
val create : clocks:float array -> t

val ranks : t -> int

val enabled : t -> bool

val default_capacity : int

(** Allocate the per-rank rings (default {!default_capacity} events each)
    and start recording.  Resets previously recorded events and closes a
    previously active stream sink. *)
val enable : ?capacity:int -> t -> unit

(** Switch to the stream sink and start recording: events append to the
    binary file at [path] as they are emitted; no ring storage is
    allocated.  {!events} and post-run analysis see nothing — the file is
    the record; convert it with {!Trace_stream.convert_to_chrome}. *)
val enable_stream : t -> path:string -> unit

(** Whether the active sink is a stream. *)
val is_streaming : t -> bool

(** Flush and close the stream sink (idempotent; no-op for the ring
    sink).  Recording stops.  The engine calls this at the end of a run
    so the file is complete when the report is returned. *)
val close_stream : t -> unit

(** Events written to the stream sink so far; 0 for the ring sink. *)
val stream_events : t -> int

(** Total ring slots currently allocated across all ranks — 0 under the
    stream sink (asserted by the scale tests). *)
val ring_capacity_total : t -> int

val disable : t -> unit

val span_begin : t -> rank:int -> cat:string -> name:string -> unit

val span_end : t -> rank:int -> cat:string -> name:string -> unit

val instant : t -> rank:int -> cat:string -> name:string -> a:int -> b:int -> c:int -> unit

(** Like {!instant} with the emitting rank's Lamport clock in [d]. *)
val instant_d :
  t -> rank:int -> cat:string -> name:string -> a:int -> b:int -> c:int -> d:int -> unit

(** Attach the rank's current vector clock to its most recent event.
    Persisted by the stream sink only (tag-3 annotation records, read
    back by the offline happens-before analyzer); a single branch when
    disabled or under the ring sink. *)
val vector_clock : t -> rank:int -> vc:int array -> unit

(** A complete span reported after the fact (scheduler CPU segments): the
    timestamp is the current clock and [dur] reaches back. *)
val complete : t -> rank:int -> cat:string -> name:string -> dur:float -> unit

(** Wrap a closure in a span (exception-safe); a plain call when
    disabled. *)
val with_span : t -> rank:int -> cat:string -> name:string -> (unit -> 'a) -> 'a

(** Events evicted from [rank]'s ring so far. *)
val dropped : t -> int -> int

val total_dropped : t -> int

(** Events currently buffered for [rank]. *)
val length : t -> int -> int

(** Chronological event list of one rank. *)
val events : t -> int -> event list

val iter_events : t -> int -> (event -> unit) -> unit

(** {1 Chrome trace-event export}

    Loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.
    One thread per rank on the virtual timeline; scheduler CPU segments go
    to a separate per-rank track; send→match pairs are drawn as flow
    arrows keyed by the global message sequence number. *)

val chrome_json_into : Buffer.t -> t -> unit

val to_chrome_json : t -> string

val write_chrome_file : t -> string -> unit
