(** Per-(src, dst) message/byte counters with collective-algorithm
    attribution: every injected message bumps the cell for (source,
    destination, algorithm label), where the label is the innermost
    collective algorithm the sender was executing (the [Coll_algo] span
    name) or ["p2p"] outside any collective.

    Created disabled; {!record} is a single branch (no allocation) in
    that state, so the send hot path is unaffected unless the matrix was
    explicitly requested. *)

type t

val p2p_label : string

val create : size:int -> t

val enable : t -> unit

val enabled : t -> bool

(** The sender-side attribution label; maintained by [Coll.dispatch]. *)
val label : t -> int -> string

val set_label : t -> int -> string -> unit

(** Count one injected message; no-op when disabled. *)
val record : t -> src:int -> dst:int -> bytes:int -> unit

type entry = { cm_src : int; cm_dst : int; cm_label : string; cm_msgs : int; cm_bytes : int }

(** All non-empty cells, sorted by (src, dst, label). *)
val entries : t -> entry list

(** (total messages, total bytes) across all cells. *)
val totals : t -> int * int

(** Aggregate per-label [comm.msgs.*] / [comm.bytes.*] totals into a
    stats registry. *)
val publish_stats : t -> Stats.t -> unit

(** CSV rendering: a [src,dst,algo,msgs,bytes] header plus one sorted row
    per cell. *)
val csv : t -> string

val json_into : Buffer.t -> t -> unit

(** Write the matrix to [path]: JSON when it ends in [.json], else CSV. *)
val write_file : t -> string -> unit
