(** Byte-level wire format: every simulated message is really packed into
    bytes through its datatype descriptor, so layout decisions (paper
    §III-D) have genuine CPU and volume consequences.

    All integers are little-endian.  A {!writer} is a growable buffer; a
    {!reader} is a bounds-checked cursor over immutable bytes. *)

exception Underflow of { wanted : int; available : int }

(** A syntactically invalid encoding (e.g. a boolean byte that is neither
    0 nor 1): corrupt or mistyped input, reported like {!Underflow} rather
    than as a call-site [Invalid_argument]. *)
exception Decode_error of { what : string; got : int }

type writer

val create_writer : ?capacity:int -> unit -> writer

val length : writer -> int

val put_char : writer -> char -> unit

val put_uint8 : writer -> int -> unit

val put_int64 : writer -> int64 -> unit

val put_int : writer -> int -> unit

val put_int32 : writer -> int32 -> unit

val put_float : writer -> float -> unit

val put_float32 : writer -> float -> unit

val put_bool : writer -> bool -> unit

val put_bytes : writer -> Bytes.t -> pos:int -> len:int -> unit

val put_string : writer -> string -> unit

(** [n] zero bytes (models alignment gaps, §III-D4). *)
val put_padding : writer -> int -> unit

(** Reserve [len] bytes for in-place writing: (storage, offset) — the
    single-bulk-copy path for trivially-copyable types. *)
val reserve : writer -> int -> Bytes.t * int

(** Copy of the written bytes. *)
val contents : writer -> Bytes.t

(** The underlying storage and length, without copying; invalidated by
    further writes. *)
val unsafe_contents : writer -> Bytes.t * int

val reset : writer -> unit

type reader

val reader_of_bytes : ?pos:int -> ?len:int -> Bytes.t -> reader

val remaining : reader -> int

val get_char : reader -> char

val get_uint8 : reader -> int

val get_int64 : reader -> int64

val get_int : reader -> int

val get_int32 : reader -> int32

val get_float : reader -> float

val get_float32 : reader -> float

val get_bool : reader -> bool

val get_bytes : reader -> int -> Bytes.t

val get_string : reader -> int -> string

val skip : reader -> int -> unit

(** Zero-copy access to the next [len] bytes: (storage, offset); the
    storage must not be mutated. *)
val read_raw : reader -> int -> Bytes.t * int

(** {1 Writer-storage pool}

    One pool per rank in the runtime: a send packs into a pooled buffer,
    {!unsafe_contents} transfers the storage into the message without a
    copy, and the consumer hands it back with {!recycle} after unpacking.
    Between acquire and recycle the storage belongs to exactly one
    message; after recycle any slice of it is dead. *)

type pool

(** [create_pool ()] keeps at most [max_buffers] free buffers and drops
    buffers larger than [max_retain] bytes on recycle, so one huge
    transfer cannot pin memory. *)
val create_pool : ?max_buffers:int -> ?max_retain:int -> unit -> pool

(** Arm the pool's internal mutex: from now on acquire/recycle/preheat
    lock around the free list, making the pool safe to use from several
    domains.  One-way; a no-cost branch for pools never marked.  The
    engine marks every per-rank pool when the multicore backend is
    selected. *)
val set_pool_threadsafe : pool -> unit

(** A fresh writer over pooled (or, on a miss, newly allocated) storage.
    [capacity] only sizes a miss; pooled buffers grow on demand. *)
val acquire : pool -> capacity:int -> writer

(** Return detached writer storage to the pool. *)
val recycle : pool -> Bytes.t -> unit

(** Guarantee that the next {!acquire} returns a buffer of at least
    [capacity] bytes without allocating: ensures the head of the free
    list is large enough, replacing it when the pool is full.  Called by
    persistent requests at init so per-cycle packing never grows a
    writer.  [capacity] is clamped to the pool's retention bound. *)
val preheat : pool -> capacity:int -> unit

(** (hits, misses, currently free) — for tests and diagnostics. *)
val pool_stats : pool -> int * int * int

(** {1 Payload checksums}

    CRC-32 (IEEE 802.3) over [len] bytes of [b] starting at [pos] — the
    reliable-delivery layer's corruption check.  The 256-entry table is
    built lazily on first use. *)
val crc32 : Bytes.t -> pos:int -> len:int -> int
