(* Mpicheck: an opt-in MUST-style correctness sanitizer for the runtime.

   Four check classes, selected by level:

   - collective consistency (light): all ranks of a communicator must
     issue the same collective kinds in the same order with agreeing
     root / element type; the first divergent rank is reported together
     with both call sites;
   - request lifecycle (light): non-blocking requests must be completed
     exactly once — leaks are reported at finalize, waiting an
     already-completed (inactive) request is reported at the wait site;
   - deadlock diagnosis (light): when the scheduler trips its deadlock
     detector, the per-rank pending-operation table is turned into a
     wait-for graph and the shortest cycle is printed with each edge
     named, instead of the flat parked list;
   - wildcard determinism (heavy): an ANY_SOURCE / ANY_TAG receive that
     had two or more eligible matches at match time is recorded — the
     run's result is schedule-dependent.  This check counts and logs but
     does not raise: wildcard races are a determinism diagnostic, not a
     program error.

   The checker is wired into the runtime the same way [Trace] is: it is
   created with the runtime and does nothing at level [Off] — every hook
   is guarded by [enabled]/[heavy] at the call site so the off path costs
   one load and branch and allocates nothing.

   Diagnostics flow through the [Stats] registry (one counter per check
   class, prefix "check."), through [Trace] (an instant event at each
   violation site, category "check") and violations raise
   [Errdefs.Check_violation]. *)

let log_src = Logs.Src.create "mpisim.check" ~doc:"Correctness sanitizer findings"

module Log = (val Logs.src_log log_src : Logs.LOG)

type level = Off | Light | Heavy

let level_to_string = function Off -> "off" | Light -> "light" | Heavy -> "heavy"

let level_of_string = function
  | "off" -> Some Off
  | "light" -> Some Light
  | "heavy" -> Some Heavy
  | _ -> None

(* Pending blocking operation of a rank, for the wait-for graph.  Ranks
   and peers are world ranks; [src = -1] is a wildcard receive. *)
type waiting =
  | Wrecv of { src : int; tag : int; ctx : int; op : string }
  | Wssend of { dst : int; tag : int; op : string }

(* One slot of a communicator's collective schedule: what the first rank
   to reach call #i issued there. *)
type coll_entry = { ce_op : string; ce_root : int; ce_ty : string; ce_rank : int }

type coll_state = {
  mutable cs_entries : coll_entry array;
  mutable cs_len : int;
  cs_next : (int, int) Hashtbl.t;  (* comm rank -> next call index *)
}

type tracked = { tk_req : Request.t; tk_rank : int; tk_kind : string }

type t = {
  mutable level : level;
  stats : Stats.t;
  trace : Trace.t;
  colls : (int, coll_state) Hashtbl.t;  (* context id -> schedule *)
  mutable tracked : tracked list;  (* newest first *)
  waiting : waiting option array;  (* per world rank *)
  mutable violations : int;
}

let create ~stats ~trace ~size () =
  {
    level = Off;
    stats;
    trace;
    colls = Hashtbl.create 8;
    tracked = [];
    waiting = Array.make size None;
    violations = 0;
  }

let level t = t.level

let set_level t l = t.level <- l

let enabled t = t.level <> Off

let heavy t = t.level = Heavy

let violations t = t.violations

(* Record a finding: bump the per-class counter, mark the violation site
   on the trace, and log it.  [raise]-ing is the caller's decision. *)
let record t ~rank ~counter ~name =
  t.violations <- t.violations + 1;
  Stats.incr (Stats.counter t.stats ("check." ^ counter));
  if rank >= 0 && rank < Array.length t.waiting then
    Trace.instant t.trace ~rank ~cat:"check" ~name ~a:(-1) ~b:(-1) ~c:(-1)

let violation t ~rank ~counter ~check fmt =
  Printf.ksprintf
    (fun msg ->
      record t ~rank ~counter ~name:check;
      Log.err (fun f -> f "%s: rank %d: %s" check rank msg);
      raise (Errdefs.Check_violation { check; rank; msg }))
    fmt

(* ------------------------------------------------------------------ *)
(* (a) Collective call-order consistency *)

let coll_state t ~context =
  match Hashtbl.find_opt t.colls context with
  | Some s -> s
  | None ->
      let s = { cs_entries = [||]; cs_len = 0; cs_next = Hashtbl.create 8 } in
      Hashtbl.replace t.colls context s;
      s

let describe_call (e : coll_entry) =
  let b = Buffer.create 32 in
  Buffer.add_string b e.ce_op;
  Buffer.add_char b '(';
  if e.ce_root >= 0 then Buffer.add_string b (Printf.sprintf "root=%d" e.ce_root);
  if e.ce_ty <> "" then begin
    if e.ce_root >= 0 then Buffer.add_string b ", ";
    Buffer.add_string b ("ty=" ^ e.ce_ty)
  end;
  Buffer.add_char b ')';
  Buffer.contents b

(* Rank [rank] of communicator [context] issues its next collective.
   The first rank to reach call #i defines the schedule slot; everyone
   else must agree on kind, root and element type. *)
let on_collective t ~context ~rank ~world_rank ~op ~root ~ty =
  if t.level <> Off then begin
    let s = coll_state t ~context in
    let idx = match Hashtbl.find_opt s.cs_next rank with Some i -> i | None -> 0 in
    Hashtbl.replace s.cs_next rank (idx + 1);
    let mine = { ce_op = op; ce_root = root; ce_ty = ty; ce_rank = rank } in
    if idx < s.cs_len then begin
      let first = s.cs_entries.(idx) in
      if first.ce_op <> op || first.ce_root <> root || first.ce_ty <> ty then
        violation t ~rank:world_rank ~counter:"collective_mismatch" ~check:"collective"
          "collective call-order mismatch on communicator context %d, call #%d:\n\
          \  rank %d issued %s\n\
          \  rank %d issued %s\n\
           All ranks of a communicator must issue the same collectives in the same \
           order with agreeing root and element type."
          context idx first.ce_rank (describe_call first) rank (describe_call mine)
    end
    else begin
      if s.cs_len >= Array.length s.cs_entries then begin
        let cap = max 16 (2 * Array.length s.cs_entries) in
        let bigger = Array.make cap mine in
        Array.blit s.cs_entries 0 bigger 0 s.cs_len;
        s.cs_entries <- bigger
      end;
      s.cs_entries.(s.cs_len) <- mine;
      s.cs_len <- s.cs_len + 1
    end
  end

(* At finalize: every rank that participated in a context must have
   issued the same number of collectives (a shorter schedule means a rank
   skipped trailing collectives its peers are matching against). *)
let check_coll_counts t =
  Hashtbl.iter
    (fun context s ->
      if s.cs_len > 0 then begin
        let lo = ref max_int and lo_rank = ref (-1) in
        let hi = ref 0 and hi_rank = ref (-1) in
        Hashtbl.iter
          (fun rank n ->
            if n < !lo then begin
              lo := n;
              lo_rank := rank
            end;
            if n > !hi then begin
              hi := n;
              hi_rank := rank
            end)
          s.cs_next;
        if !lo <> !hi then
          violation t ~rank:!lo_rank ~counter:"collective_mismatch" ~check:"collective"
            "collective count mismatch on communicator context %d at finalize: rank %d \
             issued %d collectives but rank %d issued %d (last schedule entry: %s)"
            context !lo_rank !lo !hi_rank !hi
            (describe_call s.cs_entries.(s.cs_len - 1))
      end)
    t.colls

(* ------------------------------------------------------------------ *)
(* (b) Request lifecycle *)

(* Track a freshly created non-blocking request.  Also attaches the
   re-wait observer: waiting a request that has already completed is
   MPI's "wait on an inactive request" — MUST-style tools flag it as use
   of a freed request. *)
let track_request t ~rank ~kind req =
  if t.level <> Off then begin
    t.tracked <- { tk_req = req; tk_rank = rank; tk_kind = kind } :: t.tracked;
    Request.set_observer req
      {
        Request.on_rewait =
          (fun () ->
            violation t ~rank ~counter:"double_wait" ~check:"double-wait"
              "wait on an already-completed %s request (%s): a request must be \
               completed exactly once; a second wait would read a freed request in \
               MPI"
              kind (Request.describe req));
      }
  end

(* Leak scan, run at engine teardown of a clean run: every tracked request
   must have been completed by wait/test. *)
let check_request_leaks t =
  let leaked =
    List.filter (fun tk -> not (Request.is_complete tk.tk_req)) (List.rev t.tracked)
  in
  match leaked with
  | [] -> ()
  | first :: _ ->
      let describe tk =
        Printf.sprintf "  rank %d: %s (%s)" tk.tk_rank tk.tk_kind
          (Request.describe tk.tk_req)
      in
      let shown = List.filteri (fun i _ -> i < 8) leaked in
      let more = List.length leaked - List.length shown in
      violation t ~rank:first.tk_rank ~counter:"request_leak" ~check:"request-leak"
        "%d non-blocking request%s never completed (leaked at finalize):\n%s%s\n\
         Every isend/issend/irecv/non-blocking collective must be completed with \
         wait or test before the program ends."
        (List.length leaked)
        (if List.length leaked = 1 then " was" else "s were")
        (String.concat "\n" (List.map describe shown))
        (if more > 0 then Printf.sprintf "\n  ... and %d more" more else "")

(* Send-buffer integrity (heavy): hash the buffer when the send is posted
   and again at completion; a difference means the program mutated a
   buffer it no longer owned.  The hash samples large structures
   (Hashtbl.hash_param), so this is a probabilistic but allocation-free
   detector. *)
let buffer_hash (data : 'a) = Hashtbl.hash_param 256 1024 data

let check_send_buffer t ~rank ~op ~posted ~now =
  if posted <> now then
    violation t ~rank ~counter:"send_buffer_modified" ~check:"send-buffer"
      "%s buffer was modified while the send was in flight (hash %#x at post, %#x \
       at completion): a non-blocking send transfers ownership of the buffer until \
       the operation completes"
      op posted now

(* ------------------------------------------------------------------ *)
(* (c) Deadlock diagnosis *)

let set_waiting t ~rank w = t.waiting.(rank) <- Some w

let clear_waiting t ~rank = t.waiting.(rank) <- None

let describe_waiting = function
  | Wrecv { src; tag; ctx; op } ->
      if src < 0 then Printf.sprintf "%s(src=any, tag=%s, ctx=%d)" op
          (if tag < 0 then "any" else string_of_int tag)
          ctx
      else
        Printf.sprintf "%s(src=%d, tag=%s, ctx=%d)" op src
          (if tag < 0 then "any" else string_of_int tag)
          ctx
  | Wssend { dst; tag; op } -> Printf.sprintf "%s(dst=%d, tag=%d)" op dst tag

(* The rank this pending op is waiting on, if deterministic. *)
let waits_on = function
  | Wrecv { src; _ } -> if src >= 0 then Some src else None
  | Wssend { dst; _ } -> Some dst

(* Find the shortest wait-for cycle among the parked ranks.  Each rank has
   at most one outgoing edge, so every connected component contains at
   most one cycle; we walk from every parked rank and keep the shortest
   cycle discovered. *)
let find_cycle t (parked : (int * string) list) : int list option =
  let n = Array.length t.waiting in
  let parked_set = Array.make n false in
  List.iter (fun (r, _) -> if r >= 0 && r < n then parked_set.(r) <- true) parked;
  let succ r =
    if r < 0 || r >= n || not parked_set.(r) then None
    else
      match t.waiting.(r) with
      | Some w -> (
          match waits_on w with
          | Some peer when peer >= 0 && peer < n && parked_set.(peer) -> Some peer
          | _ -> None)
      | None -> None
  in
  let visited = Array.make n false in
  let best = ref None in
  List.iter
    (fun (start, _) ->
      if start >= 0 && start < n && not visited.(start) then begin
        (* Walk the (functional) successor chain, recording positions. *)
        let pos = Hashtbl.create 8 in
        let rec walk r i path =
          match Hashtbl.find_opt pos r with
          | Some j ->
              (* Cycle: the suffix of [path] from position j. *)
              let cycle = List.filteri (fun k _ -> k >= j) (List.rev path) in
              let len = List.length cycle in
              (match !best with
              | Some b when List.length b <= len -> ()
              | _ -> best := Some cycle)
          | None ->
              if not visited.(r) then begin
                visited.(r) <- true;
                Hashtbl.replace pos r i;
                match succ r with
                | Some peer -> walk peer (i + 1) (r :: path)
                | None -> ()
              end
        in
        walk start 0 []
      end)
    parked;
  !best

(* Build the upgrade of the scheduler's flat deadlock report: the named
   shortest wait-for cycle when one exists, the per-rank pending ops
   otherwise. *)
let deadlock_report t ~parked ~finished ~total =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "deadlock: %d/%d fibers finished, %d parked with no possible progress.\n"
       finished total (List.length parked));
  (match find_cycle t parked with
  | Some cycle ->
      record t ~rank:(List.hd cycle) ~counter:"deadlock" ~name:"deadlock";
      Buffer.add_string b
        (Printf.sprintf "wait-for cycle (%d ranks):\n" (List.length cycle));
      let arr = Array.of_list cycle in
      Array.iteri
        (fun i r ->
          let peer = arr.((i + 1) mod Array.length arr) in
          let opdesc =
            match t.waiting.(r) with
            | Some w -> describe_waiting w
            | None -> "blocked"
          in
          let peerdesc =
            match t.waiting.(peer) with
            | Some w -> describe_waiting w
            | None -> "blocked"
          in
          Buffer.add_string b
            (Printf.sprintf "  rank %d %s <- rank %d %s\n" r opdesc peer peerdesc))
        arr
  | None ->
      record t ~rank:(match parked with (r, _) :: _ -> r | [] -> 0)
        ~counter:"deadlock" ~name:"deadlock";
      Buffer.add_string b "no deterministic wait-for cycle; pending operations:\n";
      List.iter
        (fun (r, desc) ->
          let opdesc =
            match t.waiting.(r) with
            | Some w -> describe_waiting w
            | None -> desc
          in
          Buffer.add_string b (Printf.sprintf "  rank %d: %s\n" r opdesc))
        parked);
  Buffer.add_string b "parked fibers:\n";
  List.iter
    (fun (r, desc) -> Buffer.add_string b (Printf.sprintf "  rank %d: %s\n" r desc))
    parked;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Payload integrity (chaos plane): the reliable layer's CRC failed at
   the receiver.  With corruption modelled as loss this never fires; it
   exists as the backstop for the chaos plane's [deliver_corrupt] test
   mode and for genuine data-plane bugs (a recycled slice read after
   free would surface here). *)

let on_crc_mismatch t ~rank ~src ~expected ~got =
  violation t ~rank ~counter:"crc_mismatch" ~check:"crc"
    "payload CRC mismatch on message from rank %d (expected %#x, got %#x): the \
     payload was corrupted between injection and receive"
    src expected got

(* ------------------------------------------------------------------ *)
(* (d) Wildcard-match determinism (heavy) *)

(* An ANY_SOURCE / ANY_TAG receive matched while [eligible] messages were
   simultaneously eligible: with [eligible >= 2] the outcome depends on
   arrival order, i.e. on the schedule.  Recorded, not raised. *)
let on_wildcard_match t ~rank ~src ~tag ~eligible =
  if eligible >= 2 then begin
    record t ~rank ~counter:"wildcard_race" ~name:"wildcard_race";
    Log.warn (fun f ->
        f
          "wildcard race on rank %d: recv(src=%s, tag=%s) had %d eligible messages \
           at match time; the result is schedule-dependent"
          rank
          (if src < 0 then "any" else string_of_int src)
          (if tag < 0 then "any" else string_of_int tag)
          eligible)
  end

let wildcard_races t = Stats.count (Stats.counter t.stats "check.wildcard_race")

(* ------------------------------------------------------------------ *)
(* (e) RMA bounds *)

(* A one-sided op addressed elements outside the target's exposure.  The
   RMA layer raises a named [Mpi_error ERR_RMA_RANGE] regardless of the
   sanitizer; under the sanitizer we additionally count the violation so
   it appears in check.* diagnostics alongside the other classes. *)
let on_rma_range t ~rank ~op ~target ~pos ~count ~len =
  record t ~rank ~counter:"rma_range" ~name:"rma_range";
  Log.warn (fun f ->
      f
        "RMA range violation on rank %d: %s addressed [%d, %d) on target %d whose \
         window exposes %d elements"
        rank op pos (pos + count) target len)

(* ------------------------------------------------------------------ *)

(* Finalize-time scan, run by the engine after a clean (non-aborted,
   no-kills) run: leaked requests and diverging collective counts. *)
let finalize_scan t =
  if t.level <> Off then begin
    check_request_leaks t;
    check_coll_counts t
  end
