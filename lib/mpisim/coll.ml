(* Blocking collective operations.

   All collectives are implemented on top of the point-to-point layer with
   real algorithms (binomial trees, Bruck concatenation, ring exchange,
   pairwise exchange, Hillis-Steele prefix), so their modelled cost emerges
   from the algorithm's message pattern rather than a closed formula:

   - [bcast]: binomial tree, or binomial scatter + ring allgather for
     long messages;
   - [reduce]: binomial tree, O(log p) rounds;
   - [allreduce]: recursive doubling for short messages, Rabenseifner
     (recursive-halving reduce-scatter + recursive-doubling allgather)
     for long commutative ones, reduce+bcast otherwise;
   - [allgather]: Bruck concatenation, O(log p) rounds (any p), or ring
     for long messages;
   - [allgatherv]: ring, p-1 rounds (bandwidth-optimal);
   - [reduce_scatter]/[reduce_scatter_block]: pairwise exchange with an
     O(n) peak buffer for commutative operations; reduce + scatter(v)
     otherwise;
   - [alltoall]/[alltoallv]: pairwise exchange; [alltoallv] skips empty
     pairs but charges the O(p) count-array scan that makes dense
     collectives scale linearly in p (paper §V-A);
   - [alltoallw]: like [alltoallv] but pays per-peer datatype setup and
     cannot skip empty pairs — reproducing why MPL's lowering of vector
     collectives to alltoallw is slow (paper §II);
   - [scan]/[exscan]: Hillis-Steele, O(log p) rounds;
   - [barrier]: dissemination; [ibarrier]: rendezvous with modelled
     dissemination cost (used by the NBX sparse all-to-all);
   - neighbor collectives: direct exchange with the static graph topology.

   Where more than one algorithm exists, {!Coll_algo.choose} picks one
   per call from (payload bytes, communicator size, commutativity)
   against the thresholds in [Net_model.tuning]; the choice is counted in
   a [coll.algo.<op>.<algo>] stats counter and emitted as a nested trace
   span, and can be pinned via [MPISIM_COLL_ALGO] / [Coll_algo.set_overrides].

   Every collective starts with [Comm.check_collective], which raises
   ERR_REVOKED / ERR_PROC_FAILED per ULFM semantics and records the
   operation for the strong debug mode. *)

(* Internal tags, one per operation. *)
let tag_barrier = P2p.internal_tag 0

let tag_bcast = P2p.internal_tag 1

let tag_gather = P2p.internal_tag 2

let tag_scatter = P2p.internal_tag 3

let tag_allgather = P2p.internal_tag 4

let tag_allgatherv = P2p.internal_tag 5

let tag_alltoall = P2p.internal_tag 6

let tag_alltoallv = P2p.internal_tag 7

let tag_alltoallw = P2p.internal_tag 8

let tag_reduce = P2p.internal_tag 9

let tag_scan = P2p.internal_tag 10

let tag_neighbor = P2p.internal_tag 11

let tag_allreduce = P2p.internal_tag 12

let tag_reduce_scatter = P2p.internal_tag 13

let tag_bcast_scatter = P2p.internal_tag 14

let tag_bcast_ring = P2p.internal_tag 15

let empty_int : int array = [||]

(* [root] is the comm-rank root (-1 for unrooted collectives) and [ty] the
   element-type name ("" for untyped ops): plain immediates, so the
   sanitizer-off path stays allocation-free. *)
let prologue comm ~op ~root ~ty =
  Runtime.check_alive (Comm.runtime comm) (Comm.world_rank comm);
  Comm.check_collective comm ~op ~root ~ty

(* Trace span around one collective on the caller's virtual timeline.
   Each public operation below is shadowed by a [traced] wrapper right
   after its definition, so collectives lowered onto earlier ones
   (allreduce onto reduce + bcast, reduce_scatter onto reduce + scatterv)
   show up as nested spans. *)
let traced comm ~op f =
  Runtime.with_span (Comm.runtime comm) (Comm.world_rank comm) ~cat:"coll" ~name:op f

let record comm ~op ~bytes = Runtime.record (Comm.runtime comm) ~op ~bytes

(* The algorithm selected for this call, visible to run reports: bump the
   [coll.algo.<op>.<algo>] counter and nest an [<op>.<algo>] span inside
   the collective's own span.  Both names are preallocated in Coll_algo,
   so with tracing off this costs one counter increment. *)
let dispatch comm alg_op algo f =
  let rt = Comm.runtime comm in
  Stats.incr (Stats.counter rt.Runtime.stats (Coll_algo.counter_name alg_op algo));
  let cm = rt.Runtime.comm_matrix in
  if Comm_matrix.enabled cm then begin
    (* Attribute every message the algorithm body injects to this
       algorithm in the communication matrix.  Save/restore (rather than
       reset to "p2p") so lowered collectives attribute to the innermost
       algorithm actually moving the bytes. *)
    let me = Comm.world_rank comm in
    let prev = Comm_matrix.label cm me in
    Comm_matrix.set_label cm me (Coll_algo.span_name alg_op algo);
    Fun.protect
      ~finally:(fun () -> Comm_matrix.set_label cm me prev)
      (fun () ->
        Runtime.with_span rt me ~cat:"coll" ~name:(Coll_algo.span_name alg_op algo) f)
  end
  else
    Runtime.with_span rt (Comm.world_rank comm) ~cat:"coll"
      ~name:(Coll_algo.span_name alg_op algo) f

let choose comm alg_op ~bytes ~commutative ~elems =
  Coll_algo.choose (Comm.runtime comm).Runtime.model alg_op ~bytes ~size:(Comm.size comm)
    ~commutative ~elems

(* Charge the O(p) cost of scanning per-rank count/displacement arrays in
   dense vector collectives. *)
let charge_dense_scan comm =
  let rt = Comm.runtime comm in
  Runtime.advance_clock rt (Comm.world_rank comm)
    (float_of_int (Comm.size comm) *. rt.Runtime.model.Net_model.dense_scan_byte)

let check_root comm root = Comm.check_rank comm root

(* ------------------------------------------------------------------ *)
(* Barrier: dissemination *)

let barrier comm =
  prologue comm ~op:"barrier" ~root:(-1) ~ty:"";
  record comm ~op:"barrier" ~bytes:0;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let k = ref 1 in
  while !k < n do
    let dest = (r + !k) mod n in
    let src = (r - !k + n) mod n in
    P2p.send_range comm Datatype.int ~dest ~tag:tag_barrier empty_int ~pos:0 ~count:0;
    let (_ : int array * Status.t) = P2p.recv comm Datatype.int ~source:src ~tag:tag_barrier () in
    k := !k * 2
  done

let barrier comm = traced comm ~op:"barrier" (fun () -> barrier comm)

(* Non-blocking barrier via shared rendezvous.  Completion time is the
   latest entry clock plus a modelled dissemination term. *)
let ibarrier comm =
  prologue comm ~op:"ibarrier" ~root:(-1) ~ty:"";
  record comm ~op:"ibarrier" ~bytes:0;
  let rt = Comm.runtime comm in
  let n = Comm.size comm in
  let me = Comm.world_rank comm in
  let shared = comm.Comm.shared in
  let gen = comm.Comm.my_ibarrier_gen in
  comm.Comm.my_ibarrier_gen <- gen + 1;
  (* The rendezvous cell is shared by every rank of the communicator:
     lookup, entry count and clock merge serialize on the runtime lock
     in multicore mode. *)
  let state =
    Runtime.locked rt (fun () ->
        let state =
          match Hashtbl.find_opt shared.Comm.ibarriers gen with
          | Some s -> s
          | None ->
              let s =
                { Comm.ib_target = n; ib_entered = 0; ib_max_clock = 0.; ib_finalized = 0 }
              in
              Hashtbl.replace shared.Comm.ibarriers gen s;
              s
        in
        state.Comm.ib_entered <- state.Comm.ib_entered + 1;
        state.Comm.ib_max_clock <- Float.max state.Comm.ib_max_clock (Runtime.clock rt me);
        state)
  in
  Runtime.bump_progress rt;
  let rounds = if n <= 1 then 0 else Coll_algo.ceil_log2 n in
  let dissemination_cost =
    float_of_int rounds
    *. (rt.Runtime.model.Net_model.latency +. rt.Runtime.model.Net_model.send_overhead)
  in
  let req =
    Request.make
      ~ready:(fun () -> state.Comm.ib_entered >= state.Comm.ib_target)
      ~finalize:(fun () ->
        Runtime.sync_clock rt me (state.Comm.ib_max_clock +. dissemination_cost);
        Runtime.locked rt (fun () ->
            state.Comm.ib_finalized <- state.Comm.ib_finalized + 1;
            if state.Comm.ib_finalized >= state.Comm.ib_target then
              Hashtbl.remove shared.Comm.ibarriers gen);
        Status.make ~source:(Comm.rank comm) ~tag:0 ~count:0 ~bytes:0)
      ~describe:(fun () -> Printf.sprintf "ibarrier gen %d" gen)
  in
  if Check.enabled rt.Runtime.check then
    Check.track_request rt.Runtime.check ~rank:me ~kind:"ibarrier" req;
  req

(* ------------------------------------------------------------------ *)
(* Broadcast: binomial tree, or binomial scatter + ring allgather for
   long messages. *)

let bcast_binomial comm (dt : 'a Datatype.t) ~root (data : 'a array option) : 'a array =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let vrank = (r - root + n) mod n in
  let real v = (v + root) mod n in
  let buf = ref (match data with Some d when r = root -> d | _ -> [||]) in
  if n > 1 then begin
    (* Receive phase: find the lowest set bit of vrank. *)
    let mask = ref 1 in
    if vrank <> 0 then begin
      while vrank land !mask = 0 do
        mask := !mask lsl 1
      done;
      let src = real (vrank - !mask) in
      let d, _ = P2p.recv comm dt ~source:src ~tag:tag_bcast () in
      buf := d
    end
    else begin
      while !mask < n do
        mask := !mask lsl 1
      done
    end;
    (* Send phase: relay to children. *)
    mask := !mask lsr 1;
    while !mask > 0 do
      if vrank + !mask < n then begin
        let dest = real (vrank + !mask) in
        P2p.send_range comm dt ~dest ~tag:tag_bcast !buf ~pos:0 ~count:(Array.length !buf)
      end;
      mask := !mask lsr 1
    done
  end;
  !buf

(* Binomial-tree bcast into a caller-provided buffer holding the payload
   at the root: receives land via [recv_into], so a cycle of a persistent
   bcast allocates no result arrays.  [total] is the element count on
   every rank (persistent requests know it from the init-time buffer). *)
let bcast_binomial_into comm (dt : 'a Datatype.t) ~root ~total (buf : 'a array) : unit =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let vrank = (r - root + n) mod n in
  let real v = (v + root) mod n in
  if n > 1 then begin
    let mask = ref 1 in
    if vrank <> 0 then begin
      while vrank land !mask = 0 do
        mask := !mask lsl 1
      done;
      let src = real (vrank - !mask) in
      let st = P2p.recv_into comm dt ~source:src ~tag:tag_bcast ~pos:0 ~maxcount:total buf in
      if Status.count st <> total then
        Comm.error comm Errdefs.Err_count "bcast: expected %d elements, got %d" total
          (Status.count st)
    end
    else begin
      while !mask < n do
        mask := !mask lsl 1
      done
    end;
    mask := !mask lsr 1;
    while !mask > 0 do
      if vrank + !mask < n then
        P2p.send_range comm dt ~dest:(real (vrank + !mask)) ~tag:tag_bcast buf ~pos:0
          ~count:total;
      mask := !mask lsr 1
    done
  end

(* The per-block table of the scatter+allgather bcast: block v of the
   vector lives at [disps.(v), disps.(v+1)). *)
let bcast_block_table comm ~total =
  let n = Comm.size comm in
  let cnts = Array.make n (total / n) in
  for i = 0 to (total mod n) - 1 do
    cnts.(i) <- cnts.(i) + 1
  done;
  let disps = Array.make (n + 1) 0 in
  for i = 1 to n do
    disps.(i) <- disps.(i - 1) + cnts.(i - 1)
  done;
  (cnts, disps)

(* Long-message bcast (van de Geijn): binomial scatter of p blocks from
   the root, then a ring allgather of the blocks.  2n bytes per rank on
   the wire instead of the binomial tree's n*log p.  The core takes the
   full-size buffer on every rank and the precomputed block table, so
   persistent cycles reuse all three. *)
let bcast_scatter_allgather_core comm (dt : 'a Datatype.t) ~root ~(cnts : int array)
    ~(disps : int array) (buf : 'a array) : unit =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let vrank = (r - root + n) mod n in
  let real v = (v + root) mod n in
  (* Scatter phase over vranks: a node entered with mask m holds blocks
     [vrank, vrank + min m (n - vrank)) and forwards the upper half to the
     child at vrank + m/2 as m halves. *)
  let mask = ref 1 in
  if vrank <> 0 then begin
    while vrank land !mask = 0 do
      mask := !mask lsl 1
    done;
    let src = real (vrank - !mask) in
    let extent = Stdlib.min !mask (n - vrank) in
    let count = disps.(vrank + extent) - disps.(vrank) in
    let st =
      P2p.recv_into comm dt ~source:src ~tag:tag_bcast_scatter ~pos:disps.(vrank)
        ~maxcount:count buf
    in
    if Status.count st <> count then
      Comm.error comm Errdefs.Err_count "bcast: expected %d scattered elements, got %d"
        count (Status.count st)
  end
  else begin
    while !mask < n do
      mask := !mask lsl 1
    done
  end;
  mask := !mask lsr 1;
  while !mask > 0 do
    if vrank + !mask < n then begin
      let child = vrank + !mask in
      let extent = Stdlib.min !mask (n - child) in
      P2p.send_range comm dt ~dest:(real child) ~tag:tag_bcast_scatter buf
        ~pos:disps.(child)
        ~count:(disps.(child + extent) - disps.(child))
    end;
    mask := !mask lsr 1
  done;
  (* Ring allgather of the n blocks, in vrank space (which is the
     absolute ring shifted by [root]). *)
  let right = real ((vrank + 1) mod n) in
  let left = real ((vrank - 1 + n) mod n) in
  for s = 0 to n - 2 do
    let send_block = (vrank - s + n) mod n in
    let recv_block = (send_block - 1 + n) mod n in
    P2p.send_range comm dt ~dest:right ~tag:tag_bcast_ring buf ~pos:disps.(send_block)
      ~count:cnts.(send_block);
    let st =
      P2p.recv_into comm dt ~source:left ~tag:tag_bcast_ring ~pos:disps.(recv_block)
        ~maxcount:cnts.(recv_block) buf
    in
    if Status.count st <> cnts.(recv_block) then
      Comm.error comm Errdefs.Err_count "bcast: expected %d ring elements, got %d"
        cnts.(recv_block) (Status.count st)
  done

let bcast_scatter_allgather comm (dt : 'a Datatype.t) ~root ~total
    (data : 'a array option) : 'a array =
  let cnts, disps = bcast_block_table comm ~total in
  let buf =
    match data with
    | Some d when Comm.rank comm = root -> d
    | _ -> if total = 0 then [||] else Array.make total (Datatype.zero_elem dt)
  in
  bcast_scatter_allgather_core comm dt ~root ~cnts ~disps buf;
  buf

(* In MPI the element count of a bcast is an argument on every rank; our
   binding takes the payload at the root only, so size-keyed algorithm
   selection needs the root to publish the count through the shared
   communicator record first (simulator state, not a modelled message).
   Keyed by a per-rank generation counter — collective ordering makes the
   generations agree across ranks.  The poll also wakes on revocation or
   a member death so ULFM error semantics are preserved. *)
let bcast_count_rendezvous comm ~root ~count_at_root =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let shared = comm.Comm.shared in
  let gen = comm.Comm.my_bcast_gen in
  comm.Comm.my_bcast_gen <- gen + 1;
  let rt = Comm.runtime comm in
  if r = root then begin
    (* Cross-rank publication: serialize against the non-root lookups. *)
    Runtime.locked rt (fun () ->
        Hashtbl.replace shared.Comm.bcast_counts gen
          { Comm.bc_count = count_at_root; bc_consumed = 0 });
    Runtime.bump_progress rt
  end
  else begin
    let root_world = Comm.world_of_rank comm root in
    if not (Runtime.locked rt (fun () -> Hashtbl.mem shared.Comm.bcast_counts gen)) then
      Scheduler.park
        ~describe:(fun () -> Printf.sprintf "bcast count rendezvous gen %d" gen)
        ~poll:(fun () ->
          if
            Hashtbl.mem shared.Comm.bcast_counts gen
            || Comm.revocation_reached comm ~world:root_world
            || Comm.any_member_failed comm
          then Some ()
          else None)
  end;
  match
    Runtime.locked rt (fun () ->
        match Hashtbl.find_opt shared.Comm.bcast_counts gen with
        | Some m ->
            m.Comm.bc_consumed <- m.Comm.bc_consumed + 1;
            if m.Comm.bc_consumed >= n then Hashtbl.remove shared.Comm.bcast_counts gen;
            Some m.Comm.bc_count
        | None -> None)
  with
  | Some count -> count
  | None ->
      if Comm.revoked_flag comm then
        Comm.error comm Errdefs.Err_revoked "bcast: communicator revoked";
      Comm.error comm Errdefs.Err_proc_failed "bcast: root failed before publishing count"

(* [pin] bypasses selection (and with it the count rendezvous): used by
   the reduce+bcast allreduce lowering, whose baseline cost must be the
   seed binomial tree regardless of tuning. *)
let bcast_gen ~pin comm (dt : 'a Datatype.t) ~root (data : 'a array option) : 'a array =
  prologue comm ~op:"bcast" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  if r = root && data = None then Errdefs.usage_error "bcast: root must provide data";
  record comm ~op:"bcast"
    ~bytes:
      (if r = root then
         Datatype.size_of_count dt
           (match data with Some d -> Array.length d | None -> 0)
       else 0);
  if n = 1 then (match data with Some d -> d | None -> [||])
  else begin
    let algo, total =
      match pin with
      | Some a -> (a, -1)
      | None -> (
          match Coll_algo.override_for Coll_algo.Bcast with
          | Some Coll_algo.Binomial -> (Coll_algo.Binomial, -1)
          | _ ->
              let count_at_root =
                match data with Some d when r = root -> Array.length d | _ -> 0
              in
              let total = bcast_count_rendezvous comm ~root ~count_at_root in
              let bytes = Datatype.size_of_count dt total in
              (choose comm Coll_algo.Bcast ~bytes ~commutative:true ~elems:total, total))
    in
    dispatch comm Coll_algo.Bcast algo (fun () ->
        match algo with
        | Coll_algo.Scatter_allgather -> bcast_scatter_allgather comm dt ~root ~total data
        | _ -> bcast_binomial comm dt ~root data)
  end

let bcast comm dt ~root data = traced comm ~op:"bcast" (fun () -> bcast_gen ~pin:None comm dt ~root data)

(* ------------------------------------------------------------------ *)
(* Gather / Scatter (rooted, direct exchange) *)

let gatherv comm (dt : 'a Datatype.t) ~root ?recv_counts (data : 'a array) : 'a array =
  prologue comm ~op:"gatherv" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  charge_dense_scan comm;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  record comm ~op:"gatherv" ~bytes:(Datatype.size_of_count dt (Array.length data));
  if r <> root then begin
    P2p.send_range comm dt ~dest:root ~tag:tag_gather data ~pos:0
      ~count:(Array.length data);
    [||]
  end
  else begin
    let counts =
      match recv_counts with
      | Some c ->
          if Array.length c <> n then
            Errdefs.usage_error "gatherv: recv_counts has length %d, expected %d"
              (Array.length c) n;
          c
      | None -> Errdefs.usage_error "gatherv: root must provide recv_counts"
    in
    if counts.(root) <> Array.length data then
      Errdefs.usage_error "gatherv: own count %d does not match data length %d"
        counts.(root) (Array.length data);
    let displs = Array.make n 0 in
    for i = 1 to n - 1 do
      displs.(i) <- displs.(i - 1) + counts.(i - 1)
    done;
    let total = displs.(n - 1) + counts.(n - 1) in
    let out = if total = 0 then [||] else Array.make total (Datatype.zero_elem dt) in
    Array.blit data 0 out displs.(root) counts.(root);
    (* Receive from every source, zero-count contributions included:
       skipping them would leave stale messages that corrupt the next
       collective on the same (source, tag) pair. *)
    for src = 0 to n - 1 do
      if src <> root then begin
        let st =
          P2p.recv_into comm dt ~source:src ~tag:tag_gather ~pos:displs.(src)
            ~maxcount:counts.(src) out
        in
        if Status.count st <> counts.(src) then
          Comm.error comm Errdefs.Err_count
            "gatherv: rank %d sent %d elements, expected %d" src (Status.count st)
            counts.(src)
      end
    done;
    out
  end

let gatherv comm dt ~root ?recv_counts data =
  traced comm ~op:"gatherv" (fun () -> gatherv comm dt ~root ?recv_counts data)

let gather comm (dt : 'a Datatype.t) ~root (data : 'a array) : 'a array =
  prologue comm ~op:"gather" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let count = Array.length data in
  record comm ~op:"gather" ~bytes:(Datatype.size_of_count dt count);
  if r <> root then begin
    (* The count is uniform and known on both sides, so zero-count calls
       skip the message symmetrically. *)
    if count > 0 then P2p.send_range comm dt ~dest:root ~tag:tag_gather data ~pos:0 ~count;
    [||]
  end
  else begin
    let out = if n * count = 0 then [||] else Array.make (n * count) (Datatype.zero_elem dt) in
    if count > 0 then Array.blit data 0 out (root * count) count;
    for src = 0 to n - 1 do
      if src <> root && count > 0 then begin
        let st =
          P2p.recv_into comm dt ~source:src ~tag:tag_gather ~pos:(src * count)
            ~maxcount:count out
        in
        if Status.count st <> count then
          Comm.error comm Errdefs.Err_count
            "gather: rank %d sent %d elements, expected %d" src (Status.count st) count
      end
    done;
    out
  end

let gather comm dt ~root data = traced comm ~op:"gather" (fun () -> gather comm dt ~root data)

let scatterv comm (dt : 'a Datatype.t) ~root ?send_counts (data : 'a array option) :
    'a array =
  prologue comm ~op:"scatterv" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  charge_dense_scan comm;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  record comm ~op:"scatterv" ~bytes:0;
  if r = root then begin
    let data =
      match data with
      | Some d -> d
      | None -> Errdefs.usage_error "scatterv: root must provide data"
    in
    let counts =
      match send_counts with
      | Some c when Array.length c = n -> c
      | Some c ->
          Errdefs.usage_error "scatterv: send_counts has length %d, expected %d"
            (Array.length c) n
      | None -> Errdefs.usage_error "scatterv: root must provide send_counts"
    in
    let displs = Array.make n 0 in
    for i = 1 to n - 1 do
      displs.(i) <- displs.(i - 1) + counts.(i - 1)
    done;
    if displs.(n - 1) + counts.(n - 1) <> Array.length data then
      Errdefs.usage_error "scatterv: counts sum to %d but data has %d elements"
        (displs.(n - 1) + counts.(n - 1))
        (Array.length data);
    for dest = 0 to n - 1 do
      if dest <> root then
        P2p.send_range comm dt ~dest ~tag:tag_scatter data ~pos:displs.(dest)
          ~count:counts.(dest)
    done;
    Array.sub data displs.(root) counts.(root)
  end
  else begin
    let d, _ = P2p.recv comm dt ~source:root ~tag:tag_scatter () in
    d
  end

let scatterv comm dt ~root ?send_counts data =
  traced comm ~op:"scatterv" (fun () -> scatterv comm dt ~root ?send_counts data)

let scatter comm (dt : 'a Datatype.t) ~root (data : 'a array option) : 'a array =
  prologue comm ~op:"scatter" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  record comm ~op:"scatter" ~bytes:0;
  if r = root then begin
    let data =
      match data with
      | Some d -> d
      | None -> Errdefs.usage_error "scatter: root must provide data"
    in
    if Array.length data mod n <> 0 then
      Errdefs.usage_error "scatter: data length %d not divisible by %d" (Array.length data) n;
    let count = Array.length data / n in
    for dest = 0 to n - 1 do
      if dest <> root then
        P2p.send_range comm dt ~dest ~tag:tag_scatter data ~pos:(dest * count) ~count
    done;
    Array.sub data (root * count) count
  end
  else begin
    let d, _ = P2p.recv comm dt ~source:root ~tag:tag_scatter () in
    d
  end

let scatter comm dt ~root data = traced comm ~op:"scatter" (fun () -> scatter comm dt ~root data)

(* ------------------------------------------------------------------ *)
(* Allgather: Bruck concatenation (works for any p, O(log p) rounds) by
   default, ring exchange (p-1 rounds, bandwidth-optimal) for long
   messages. *)

let allgather_bruck comm (dt : 'a Datatype.t) (data : 'a array) : 'a array =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let count = Array.length data in
  (* [buf] holds blocks r, r+1, ..., r+held-1 (mod n), in that order. *)
  let buf = ref (Array.copy data) in
  let held = ref 1 in
  while !held < n do
    let send_blocks = Stdlib.min !held (n - !held) in
    let dest = (r - !held + n) mod n in
    let src = (r + !held) mod n in
    (* Send our first [send_blocks] blocks (they become the receiver's
       blocks [held..held+send_blocks-1]); receive symmetrically. *)
    P2p.send_range comm dt ~dest ~tag:tag_allgather !buf ~pos:0
      ~count:(send_blocks * count);
    let incoming, _ = P2p.recv comm dt ~source:src ~tag:tag_allgather () in
    buf := Array.append !buf incoming;
    held := !held + send_blocks
  done;
  (* Rotate from local order (starting at r) to absolute order. *)
  let total = n * count in
  let out = if total = 0 then [||] else Array.make total (Datatype.zero_elem dt) in
  if count > 0 then
    for b = 0 to n - 1 do
      let abs_block = (r + b) mod n in
      Array.blit !buf (b * count) out (abs_block * count) count
    done;
  out

let allgather_ring_impl comm (dt : 'a Datatype.t) (data : 'a array) : 'a array =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let count = Array.length data in
  let out = if n * count = 0 then [||] else Array.make (n * count) (Datatype.zero_elem dt) in
  if count > 0 then Array.blit data 0 out (r * count) count;
  if n > 1 && count > 0 then begin
    let right = (r + 1) mod n in
    let left = (r - 1 + n) mod n in
    for s = 0 to n - 2 do
      let send_block = (r - s + n) mod n in
      let recv_block = (send_block - 1 + n) mod n in
      P2p.send_range comm dt ~dest:right ~tag:tag_allgather out ~pos:(send_block * count)
        ~count;
      let (_ : Status.t) =
        P2p.recv_into comm dt ~source:left ~tag:tag_allgather ~pos:(recv_block * count)
          ~maxcount:count out
      in
      ()
    done
  end;
  out

let allgather comm (dt : 'a Datatype.t) (data : 'a array) : 'a array =
  prologue comm ~op:"allgather" ~root:(-1) ~ty:(Datatype.name dt);
  let n = Comm.size comm in
  let count = Array.length data in
  record comm ~op:"allgather" ~bytes:(Datatype.size_of_count dt count);
  if n = 1 then Array.copy data
  else begin
    let bytes = Datatype.size_of_count dt count in
    let algo = choose comm Coll_algo.Allgather ~bytes ~commutative:true ~elems:count in
    dispatch comm Coll_algo.Allgather algo (fun () ->
        match algo with
        | Coll_algo.Ring -> allgather_ring_impl comm dt data
        | _ -> allgather_bruck comm dt data)
  end

let allgather comm dt data = traced comm ~op:"allgather" (fun () -> allgather comm dt data)

(* Allgatherv: ring exchange with per-rank block sizes.  [recv_counts] must
   be provided on every rank (MPI semantics); the binding layer is what
   infers it when omitted (paper §III-A). *)
let allgatherv comm (dt : 'a Datatype.t) ~(recv_counts : int array) (data : 'a array) :
    'a array =
  prologue comm ~op:"allgatherv" ~root:(-1) ~ty:(Datatype.name dt);
  charge_dense_scan comm;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  if Array.length recv_counts <> n then
    Errdefs.usage_error "allgatherv: recv_counts has length %d, expected %d"
      (Array.length recv_counts) n;
  if recv_counts.(r) <> Array.length data then
    Errdefs.usage_error "allgatherv: own recv_count %d does not match data length %d"
      recv_counts.(r) (Array.length data);
  record comm ~op:"allgatherv" ~bytes:(Datatype.size_of_count dt (Array.length data));
  let displs = Array.make n 0 in
  for i = 1 to n - 1 do
    displs.(i) <- displs.(i - 1) + recv_counts.(i - 1)
  done;
  let total = displs.(n - 1) + recv_counts.(n - 1) in
  if total = 0 then [||]
  else begin
    let out = Array.make total (Datatype.zero_elem dt) in
    Array.blit data 0 out displs.(r) recv_counts.(r);
    if n > 1 then begin
      let right = (r + 1) mod n in
      let left = (r - 1 + n) mod n in
      for s = 0 to n - 2 do
        (* At step s we forward block (r - s) and receive block (r-s-1);
           empty blocks still flow to keep the ring paired up. *)
        let send_block = (r - s + n) mod n in
        let recv_block = (send_block - 1 + n) mod n in
        P2p.send_range comm dt ~dest:right ~tag:tag_allgatherv out
          ~pos:displs.(send_block) ~count:recv_counts.(send_block);
        let st =
          P2p.recv_into comm dt ~source:left ~tag:tag_allgatherv ~pos:displs.(recv_block)
            ~maxcount:recv_counts.(recv_block) out
        in
        if Status.count st <> recv_counts.(recv_block) then
          Comm.error comm Errdefs.Err_count
            "allgatherv: expected %d elements of block %d, got %d"
            recv_counts.(recv_block) recv_block (Status.count st)
      done
    end;
    out
  end

let allgatherv comm dt ~recv_counts data =
  traced comm ~op:"allgatherv" (fun () -> allgatherv comm dt ~recv_counts data)

(* ------------------------------------------------------------------ *)
(* Alltoall family: pairwise exchange *)

let exclusive_prefix_sum (counts : int array) =
  let n = Array.length counts in
  let displs = Array.make n 0 in
  for i = 1 to n - 1 do
    displs.(i) <- displs.(i - 1) + counts.(i - 1)
  done;
  displs

let alltoall comm (dt : 'a Datatype.t) (data : 'a array) : 'a array =
  prologue comm ~op:"alltoall" ~root:(-1) ~ty:(Datatype.name dt);
  let n = Comm.size comm in
  let r = Comm.rank comm in
  if Array.length data mod n <> 0 then
    Errdefs.usage_error "alltoall: data length %d not divisible by %d" (Array.length data) n;
  let count = Array.length data / n in
  record comm ~op:"alltoall" ~bytes:(Datatype.size_of_count dt (Array.length data));
  let out = Array.copy data in
  (* Self block. *)
  if count > 0 then Array.blit data (r * count) out (r * count) count;
  for s = 1 to n - 1 do
    let dest = (r + s) mod n in
    let src = (r - s + n) mod n in
    P2p.send_range comm dt ~dest ~tag:tag_alltoall data ~pos:(dest * count) ~count;
    let (_ : Status.t) =
      P2p.recv_into comm dt ~source:src ~tag:tag_alltoall ~pos:(src * count)
        ~maxcount:count out
    in
    ()
  done;
  out

let alltoall comm dt data = traced comm ~op:"alltoall" (fun () -> alltoall comm dt data)

(* Variable alltoall.  Counts and displacements are all required, as in
   MPI — computing sensible defaults is the binding layer's job (§III-A).
   Empty pairs are skipped (both sides know the counts), but every rank
   pays the O(p) count-array scan. *)
let alltoallv comm (dt : 'a Datatype.t) ~(send_counts : int array)
    ~(send_displs : int array) ~(recv_counts : int array) ~(recv_displs : int array)
    (data : 'a array) : 'a array =
  prologue comm ~op:"alltoallv" ~root:(-1) ~ty:(Datatype.name dt);
  charge_dense_scan comm;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  if Array.length send_counts <> n || Array.length recv_counts <> n then
    Errdefs.usage_error "alltoallv: counts arrays must have length %d" n;
  let sdispls = send_displs in
  let rdispls = recv_displs in
  let send_bytes =
    Datatype.size_of_count dt (Array.fold_left ( + ) 0 send_counts)
  in
  record comm ~op:"alltoallv" ~bytes:send_bytes;
  let total_recv = rdispls.(n - 1) + recv_counts.(n - 1) in
  let seed = Datatype.zero_elem dt in
  let out = if total_recv = 0 then [||] else Array.make total_recv seed in
  (* Self block. *)
  if send_counts.(r) > 0 then begin
    if send_counts.(r) <> recv_counts.(r) then
      Comm.error comm Errdefs.Err_count "alltoallv: self send/recv count mismatch";
    Array.blit data sdispls.(r) out rdispls.(r) send_counts.(r)
  end;
  for s = 1 to n - 1 do
    let dest = (r + s) mod n in
    let src = (r - s + n) mod n in
    if send_counts.(dest) > 0 then
      P2p.send_range comm dt ~dest ~tag:tag_alltoallv data ~pos:sdispls.(dest)
        ~count:send_counts.(dest);
    if recv_counts.(src) > 0 then begin
      let st =
        P2p.recv_into comm dt ~source:src ~tag:tag_alltoallv ~pos:rdispls.(src)
          ~maxcount:recv_counts.(src) out
      in
      if Status.count st <> recv_counts.(src) then
        Comm.error comm Errdefs.Err_count
          "alltoallv: expected %d elements from rank %d, got %d" recv_counts.(src) src
          (Status.count st)
    end
  done;
  out

let alltoallv comm dt ~send_counts ~send_displs ~recv_counts ~recv_displs data =
  traced comm ~op:"alltoallv" (fun () ->
      alltoallv comm dt ~send_counts ~send_displs ~recv_counts ~recv_displs data)

(* Alltoallw-style exchange: pays per-peer derived-datatype setup on every
   rank and exchanges with *all* peers, empty or not.  This models why
   lowering gatherv/alltoallv onto alltoallw (as MPL does) is costly and
   limits scalability (paper §II, [9]). *)
let alltoallw comm (dt : 'a Datatype.t) ~(send_counts : int array)
    ~(recv_counts : int array) (data : 'a array) : 'a array =
  prologue comm ~op:"alltoallw" ~root:(-1) ~ty:(Datatype.name dt);
  charge_dense_scan comm;
  let rt = Comm.runtime comm in
  let n = Comm.size comm in
  let r = Comm.rank comm in
  if Array.length send_counts <> n || Array.length recv_counts <> n then
    Errdefs.usage_error "alltoallw: counts arrays must have length %d" n;
  (* Datatype setup: one derived datatype per peer, send and receive side. *)
  Runtime.advance_clock rt (Comm.world_rank comm)
    (2. *. float_of_int n *. rt.Runtime.model.Net_model.alltoallw_type_setup);
  let sdispls = exclusive_prefix_sum send_counts in
  let rdispls = exclusive_prefix_sum recv_counts in
  record comm ~op:"alltoallw"
    ~bytes:(Datatype.size_of_count dt (Array.fold_left ( + ) 0 send_counts));
  let total_recv = rdispls.(n - 1) + recv_counts.(n - 1) in
  let seed = Datatype.zero_elem dt in
  let out = if total_recv = 0 then [||] else Array.make total_recv seed in
  if send_counts.(r) > 0 then Array.blit data sdispls.(r) out rdispls.(r) send_counts.(r);
  for s = 1 to n - 1 do
    let dest = (r + s) mod n in
    let src = (r - s + n) mod n in
    (* No empty-pair skipping: a zero-size message still flows. *)
    P2p.send_range comm dt ~dest ~tag:tag_alltoallw data ~pos:sdispls.(dest)
      ~count:send_counts.(dest);
    let st =
      P2p.recv_into comm dt ~source:src ~tag:tag_alltoallw ~pos:rdispls.(src)
        ~maxcount:recv_counts.(src) out
    in
    if Status.count st <> recv_counts.(src) then
      Comm.error comm Errdefs.Err_count "alltoallw: count mismatch from rank %d" src
  done;
  out

let alltoallw comm dt ~send_counts ~recv_counts data =
  traced comm ~op:"alltoallw" (fun () -> alltoallw comm dt ~send_counts ~recv_counts data)

(* ------------------------------------------------------------------ *)
(* Reductions *)

let combine_into (op : 'a Reduce_op.t) ~(acc : 'a array) (other : 'a array) =
  if Array.length acc <> Array.length other then
    Errdefs.usage_error "reduce: element count mismatch (%d vs %d)" (Array.length acc)
      (Array.length other);
  for i = 0 to Array.length acc - 1 do
    acc.(i) <- Reduce_op.apply op acc.(i) other.(i)
  done

(* Analyzer-mode marker: this rank is entering a reduction whose result
   depends on combine order (non-commutative op).  The offline
   happens-before pass flags any such span whose incoming messages have
   concurrent senders — on a real MPI, algorithm or arrival order could
   then change the result.  Gated like the p2p analyzer instants: only
   emitted when vector clocks are on, one branch otherwise. *)
let note_nc_order comm =
  let rt = Comm.runtime comm in
  if Array.length rt.Runtime.vclocks > 0 then
    Trace.instant rt.Runtime.trace ~rank:(Comm.world_rank comm) ~cat:"coll"
      ~name:"nc_order" ~a:(Comm.context comm) ~b:(Comm.size comm) ~c:(-1)

(* Binomial-tree reduce for commutative operations; gather + ordered fold
   for non-commutative ones (order must be rank order). *)
let reduce comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) ~root (data : 'a array) :
    'a array =
  prologue comm ~op:"reduce" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  let n = Comm.size comm in
  let r = Comm.rank comm in
  record comm ~op:"reduce" ~bytes:(Datatype.size_of_count dt (Array.length data));
  if n = 1 then Array.copy data
  else if not op.Reduce_op.commutative then begin
    note_nc_order comm;
    (* Rank-ordered fold at the root. *)
    let gathered = gather comm dt ~root data in
    if r <> root then [||]
    else begin
      let count = Array.length data in
      let acc = Array.sub gathered 0 count in
      for src = 1 to n - 1 do
        combine_into op ~acc (Array.sub gathered (src * count) count)
      done;
      acc
    end
  end
  else begin
    let vrank = (r - root + n) mod n in
    let real v = (v + root) mod n in
    let acc = Array.copy data in
    let mask = ref 1 in
    let sent = ref false in
    while (not !sent) && !mask < n do
      if vrank land !mask <> 0 then begin
        P2p.send_range comm dt ~dest:(real (vrank - !mask)) ~tag:tag_reduce acc ~pos:0
          ~count:(Array.length acc);
        sent := true
      end
      else begin
        if vrank + !mask < n then begin
          let other, _ = P2p.recv comm dt ~source:(real (vrank + !mask)) ~tag:tag_reduce () in
          combine_into op ~acc other
        end;
        mask := !mask lsl 1
      end
    done;
    if r = root then acc else [||]
  end

let reduce comm dt op ~root data = traced comm ~op:"reduce" (fun () -> reduce comm dt op ~root data)

(* Reference allreduce lowering: reduce to rank 0, then a binomial bcast.
   The bcast is pinned to the binomial tree so this path's cost stays the
   seed 2-tree lowering whatever the bcast tuning says (it is both the
   order-safe fallback and the benchmark baseline). *)
let allreduce_reduce_bcast comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    (data : 'a array) : 'a array =
  let reduced = reduce comm dt op ~root:0 data in
  let root_data = if Comm.rank comm = 0 then Some reduced else None in
  traced comm ~op:"bcast" (fun () ->
      bcast_gen ~pin:(Some Coll_algo.Binomial) comm dt ~root:0 root_data)

(* The non-power-of-two preamble shared by recursive doubling and
   Rabenseifner (MPICH's rem-rank scheme): with pof2 = 2^floor(log2 p)
   and rem = p - pof2, each of the first 2*rem ranks pairs up — evens
   fold their vector into the odd neighbour and sit out (newrank -1),
   odds continue as newrank r/2; ranks >= 2*rem continue as r - rem.
   [combine_recv] must fold a received range into the local buffer. *)
let fold_into_pof2 comm dt ~rem ~total buf ~(combine_recv : src:int -> unit) =
  let r = Comm.rank comm in
  if r < 2 * rem then
    if r land 1 = 0 then begin
      P2p.send_range comm dt ~dest:(r + 1) ~tag:tag_allreduce buf ~pos:0 ~count:total;
      -1
    end
    else begin
      combine_recv ~src:(r - 1);
      r / 2
    end
  else r - rem

(* Mirror of the preamble: odd ranks of the first 2*rem pairs hold the
   full result and copy it back to their even neighbour. *)
let unfold_from_pof2 comm dt ~rem ~total buf =
  let r = Comm.rank comm in
  if r < 2 * rem then
    if r land 1 = 1 then
      P2p.send_range comm dt ~dest:(r - 1) ~tag:tag_allreduce buf ~pos:0 ~count:total
    else begin
      let st =
        P2p.recv_into comm dt ~source:(r + 1) ~tag:tag_allreduce ~pos:0 ~maxcount:total buf
      in
      if Status.count st <> total then
        Comm.error comm Errdefs.Err_count "allreduce: expected %d elements back, got %d"
          total (Status.count st)
    end

(* Recursive-doubling allreduce: log2 p rounds of full-vector exchange.
   Latency-optimal; bandwidth n*log p, so for short messages only.
   The core works in place on [buf] (already seeded with the local
   contribution) with caller-provided [scratch], so persistent requests
   can reuse both across cycles. *)
let allreduce_rdbl_core comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) ~total
    ~(buf : 'a array) ~(scratch : 'a array) : unit =
  let n = Comm.size comm in
  let pof2 = Coll_algo.floor_pow2 n in
  let rem = n - pof2 in
  let recv_combine ~src =
    let st =
      P2p.recv_into comm dt ~source:src ~tag:tag_allreduce ~pos:0 ~maxcount:total scratch
    in
    if Status.count st <> total then
      Comm.error comm Errdefs.Err_count "allreduce: expected %d elements from %d, got %d"
        total src (Status.count st);
    for i = 0 to total - 1 do
      buf.(i) <- Reduce_op.apply op buf.(i) scratch.(i)
    done
  in
  let newrank = fold_into_pof2 comm dt ~rem ~total buf ~combine_recv:recv_combine in
  if newrank >= 0 then begin
    let real nr = if nr < rem then (nr * 2) + 1 else nr + rem in
    let mask = ref 1 in
    while !mask < pof2 do
      let dst = real (newrank lxor !mask) in
      P2p.send_range comm dt ~dest:dst ~tag:tag_allreduce buf ~pos:0 ~count:total;
      recv_combine ~src:dst;
      mask := !mask lsl 1
    done
  end;
  unfold_from_pof2 comm dt ~rem ~total buf

let allreduce_rdbl comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (data : 'a array) :
    'a array =
  let total = Array.length data in
  let buf = Array.copy data in
  let scratch = if total = 0 then [||] else Array.make total (Datatype.zero_elem dt) in
  allreduce_rdbl_core comm dt op ~total ~buf ~scratch;
  buf

(* Rabenseifner allreduce: recursive-halving reduce-scatter then
   recursive-doubling allgather over the pof2 sub-machine.  Bandwidth
   ~2n per rank instead of the 2-tree lowering's 2n*log p; the block
   bookkeeping (send_idx/recv_idx/last_idx walking the pof2 block table)
   follows MPICH's allreduce.  Like the recursive-doubling core, works in
   place on a seeded [buf]; [cnts]/[disps] are the pof2 block table
   (lengths pof2 and pof2+1), pre-filled by the caller. *)
let allreduce_rabenseifner_core comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) ~total
    ~(buf : 'a array) ~(scratch : 'a array) ~(disps : int array) : unit =
  let n = Comm.size comm in
  let pof2 = Coll_algo.floor_pow2 n in
  let rem = n - pof2 in
  let recv_combine_range ~src ~pos ~count =
    let st =
      P2p.recv_into comm dt ~source:src ~tag:tag_allreduce ~pos:0 ~maxcount:count scratch
    in
    if Status.count st <> count then
      Comm.error comm Errdefs.Err_count "allreduce: expected %d elements from %d, got %d"
        count src (Status.count st);
    for i = 0 to count - 1 do
      buf.(pos + i) <- Reduce_op.apply op buf.(pos + i) scratch.(i)
    done
  in
  let newrank =
    fold_into_pof2 comm dt ~rem ~total buf
      ~combine_recv:(fun ~src -> recv_combine_range ~src ~pos:0 ~count:total)
  in
  if newrank >= 0 && pof2 > 1 then begin
    let real nr = if nr < rem then (nr * 2) + 1 else nr + rem in
    (* Block v of the vector is [disps.(v), disps.(v+1)); blocks may be
       empty when total < pof2. *)
    let range_count lo hi = disps.(hi) - disps.(lo) in
    (* Reduce-scatter by recursive halving: each round exchanges half of
       the still-owned block range with the partner and folds the kept
       half.  After log2 pof2 rounds this rank owns one fully reduced
       block. *)
    let send_idx = ref 0 and recv_idx = ref 0 and last_idx = ref pof2 in
    let mask = ref 1 in
    while !mask < pof2 do
      let newdst = newrank lxor !mask in
      let dst = real newdst in
      let half = pof2 / (!mask * 2) in
      let s_lo, s_hi, r_lo, r_hi =
        if newrank < newdst then begin
          send_idx := !recv_idx + half;
          (!send_idx, !last_idx, !recv_idx, !send_idx)
        end
        else begin
          recv_idx := !send_idx + half;
          (!send_idx, !recv_idx, !recv_idx, !last_idx)
        end
      in
      P2p.send_range comm dt ~dest:dst ~tag:tag_allreduce buf ~pos:disps.(s_lo)
        ~count:(range_count s_lo s_hi);
      recv_combine_range ~src:dst ~pos:disps.(r_lo) ~count:(range_count r_lo r_hi);
      send_idx := r_lo;
      recv_idx := r_lo;
      mask := !mask lsl 1;
      if !mask < pof2 then last_idx := r_lo + (pof2 / !mask)
    done;
    (* Allgather by recursive doubling: walk the rounds back, exchanging
       ever larger reduced ranges. *)
    mask := pof2 asr 1;
    while !mask > 0 do
      let newdst = newrank lxor !mask in
      let dst = real newdst in
      let half = pof2 / (!mask * 2) in
      let s_lo, s_hi, r_lo, r_hi =
        if newrank < newdst then begin
          if !mask <> pof2 asr 1 then last_idx := !last_idx + half;
          recv_idx := !send_idx + half;
          (!send_idx, !recv_idx, !recv_idx, !last_idx)
        end
        else begin
          recv_idx := !send_idx - half;
          (!send_idx, !last_idx, !recv_idx, !send_idx)
        end
      in
      P2p.send_range comm dt ~dest:dst ~tag:tag_allreduce buf ~pos:disps.(s_lo)
        ~count:(range_count s_lo s_hi);
      let rcount = range_count r_lo r_hi in
      let st =
        P2p.recv_into comm dt ~source:dst ~tag:tag_allreduce ~pos:disps.(r_lo)
          ~maxcount:rcount buf
      in
      if Status.count st <> rcount then
        Comm.error comm Errdefs.Err_count "allreduce: expected %d elements from %d, got %d"
          rcount dst (Status.count st);
      if newrank > newdst then send_idx := !recv_idx;
      mask := !mask asr 1
    done
  end;
  unfold_from_pof2 comm dt ~rem ~total buf

(* Fill the pof2 block table used by the Rabenseifner core: [disps] has
   pof2+1 entries; block sizes differ by at most one. *)
let rabenseifner_disps ~total ~pof2 : int array =
  let cnts = Array.make pof2 (total / pof2) in
  for i = 0 to (total mod pof2) - 1 do
    cnts.(i) <- cnts.(i) + 1
  done;
  let disps = Array.make (pof2 + 1) 0 in
  for i = 1 to pof2 do
    disps.(i) <- disps.(i - 1) + cnts.(i - 1)
  done;
  disps

let allreduce_rabenseifner comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    (data : 'a array) : 'a array =
  let total = Array.length data in
  let buf = Array.copy data in
  let scratch = if total = 0 then [||] else Array.make total (Datatype.zero_elem dt) in
  let disps = rabenseifner_disps ~total ~pof2:(Coll_algo.floor_pow2 (Comm.size comm)) in
  allreduce_rabenseifner_core comm dt op ~total ~buf ~scratch ~disps;
  buf

let allreduce comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (data : 'a array) : 'a array =
  prologue comm ~op:"allreduce" ~root:(-1) ~ty:(Datatype.name dt);
  let elems = Array.length data in
  let bytes = Datatype.size_of_count dt elems in
  record comm ~op:"allreduce" ~bytes;
  if Comm.size comm = 1 then Array.copy data
  else begin
    let algo =
      choose comm Coll_algo.Allreduce ~bytes ~commutative:op.Reduce_op.commutative ~elems
    in
    dispatch comm Coll_algo.Allreduce algo (fun () ->
        match algo with
        | Coll_algo.Recursive_doubling -> allreduce_rdbl comm dt op data
        | Coll_algo.Rabenseifner -> allreduce_rabenseifner comm dt op data
        | _ -> allreduce_reduce_bcast comm dt op data)
  end

let allreduce comm dt op data = traced comm ~op:"allreduce" (fun () -> allreduce comm dt op data)

(* Inclusive prefix (Hillis-Steele): O(log p) rounds, order-preserving, so
   safe for non-commutative operations. *)
let scan comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (data : 'a array) : 'a array =
  prologue comm ~op:"scan" ~root:(-1) ~ty:(Datatype.name dt);
  record comm ~op:"scan" ~bytes:(Datatype.size_of_count dt (Array.length data));
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let acc = Array.copy data in
  let len = Array.length acc in
  (* One scratch buffer for every round's incoming vector: the hot loop
     neither allocates nor copies beyond the in-place fold. *)
  let scratch = if len = 0 then [||] else Array.make len (Datatype.zero_elem dt) in
  let d = ref 1 in
  while !d < n do
    if r + !d < n then P2p.send_range comm dt ~dest:(r + !d) ~tag:tag_scan acc ~pos:0 ~count:len;
    if r - !d >= 0 then begin
      let st =
        P2p.recv_into comm dt ~source:(r - !d) ~tag:tag_scan ~pos:0 ~maxcount:len scratch
      in
      if Status.count st <> len then
        Errdefs.usage_error "scan: element count mismatch (%d vs %d)" len (Status.count st);
      (* [scratch] covers ranks before ours: combine on the left, writing
         the result straight into [acc]. *)
      for i = 0 to len - 1 do
        acc.(i) <- Reduce_op.apply op scratch.(i) acc.(i)
      done
    end;
    d := !d * 2
  done;
  acc

let scan comm dt op data = traced comm ~op:"scan" (fun () -> scan comm dt op data)

(* Exclusive prefix: rank 0 receives [None] (MPI leaves it undefined). *)
let exscan comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (data : 'a array) :
    'a array option =
  prologue comm ~op:"exscan" ~root:(-1) ~ty:(Datatype.name dt);
  record comm ~op:"exscan" ~bytes:(Datatype.size_of_count dt (Array.length data));
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let inclusive = scan comm dt op data in
  (* Shift the inclusive result one rank to the right. *)
  if r + 1 < n then
    P2p.send_range comm dt ~dest:(r + 1) ~tag:tag_scan inclusive ~pos:0
      ~count:(Array.length inclusive);
  if r = 0 then None
  else begin
    let d, _ = P2p.recv comm dt ~source:(r - 1) ~tag:tag_scan () in
    Some d
  end

let exscan comm dt op data = traced comm ~op:"exscan" (fun () -> exscan comm dt op data)

(* Single-element conveniences used heavily by applications. *)
let allreduce_single comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (x : 'a) : 'a =
  (allreduce comm dt op [| x |]).(0)

let scan_single comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (x : 'a) : 'a =
  (scan comm dt op [| x |]).(0)

let exscan_single comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (x : 'a) : 'a option =
  match exscan comm dt op [| x |] with
  | None -> None
  | Some a -> Some a.(0)

(* ------------------------------------------------------------------ *)
(* Neighborhood collectives (static graph topologies, §V-A) *)

let topology_exn comm ~op =
  match Comm.topology comm with
  | Some t -> t
  | None -> Errdefs.usage_error "%s: communicator has no graph topology" op

(* Send [data] to every out-neighbor; receive one block per in-neighbor,
   returned in source order. *)
let neighbor_allgather comm (dt : 'a Datatype.t) (data : 'a array) : 'a array array =
  prologue comm ~op:"neighbor_allgather" ~root:(-1) ~ty:(Datatype.name dt);
  let topo = topology_exn comm ~op:"neighbor_allgather" in
  record comm ~op:"neighbor_allgather"
    ~bytes:(Datatype.size_of_count dt (Array.length data));
  Array.iter
    (fun dest ->
      P2p.send_range comm dt ~dest ~tag:tag_neighbor data ~pos:0
        ~count:(Array.length data))
    topo.Comm.destinations;
  Array.map
    (fun src ->
      let d, _ = P2p.recv comm dt ~source:src ~tag:tag_neighbor () in
      d)
    topo.Comm.sources

let neighbor_allgather comm dt data =
  traced comm ~op:"neighbor_allgather" (fun () -> neighbor_allgather comm dt data)

(* Variable-size neighbor exchange: block i of [data] goes to
   destinations.(i); the result concatenates one block per source, with
   [recv_counts] in source order. *)
let neighbor_alltoallv comm (dt : 'a Datatype.t) ~(send_counts : int array)
    ~(recv_counts : int array) (data : 'a array) : 'a array =
  prologue comm ~op:"neighbor_alltoallv" ~root:(-1) ~ty:(Datatype.name dt);
  let topo = topology_exn comm ~op:"neighbor_alltoallv" in
  let out_deg = Array.length topo.Comm.destinations in
  let in_deg = Array.length topo.Comm.sources in
  if Array.length send_counts <> out_deg then
    Errdefs.usage_error "neighbor_alltoallv: send_counts length %d, expected out-degree %d"
      (Array.length send_counts) out_deg;
  if Array.length recv_counts <> in_deg then
    Errdefs.usage_error "neighbor_alltoallv: recv_counts length %d, expected in-degree %d"
      (Array.length recv_counts) in_deg;
  record comm ~op:"neighbor_alltoallv"
    ~bytes:(Datatype.size_of_count dt (Array.fold_left ( + ) 0 send_counts));
  let sdispls = exclusive_prefix_sum send_counts in
  Array.iteri
    (fun i dest ->
      if send_counts.(i) > 0 then
        P2p.send_range comm dt ~dest ~tag:tag_neighbor data ~pos:sdispls.(i)
          ~count:send_counts.(i))
    topo.Comm.destinations;
  let rdispls = exclusive_prefix_sum recv_counts in
  let total = if in_deg = 0 then 0 else rdispls.(in_deg - 1) + recv_counts.(in_deg - 1) in
  let seed = Datatype.zero_elem dt in
  let out = if total = 0 then [||] else Array.make total seed in
  Array.iteri
    (fun i src ->
      if recv_counts.(i) > 0 then begin
        let st =
          P2p.recv_into comm dt ~source:src ~tag:tag_neighbor ~pos:rdispls.(i)
            ~maxcount:recv_counts.(i) out
        in
        if Status.count st <> recv_counts.(i) then
          Comm.error comm Errdefs.Err_count "neighbor_alltoallv: count mismatch from %d" src
      end)
    topo.Comm.sources;
  out

let neighbor_alltoallv comm dt ~send_counts ~recv_counts data =
  traced comm ~op:"neighbor_alltoallv" (fun () ->
      neighbor_alltoallv comm dt ~send_counts ~recv_counts data)

(* Ring allgather under its own name: always the ring algorithm,
   regardless of tuning — kept for the algorithm-choice ablation
   (DESIGN.md §4). *)
let allgather_ring comm (dt : 'a Datatype.t) (data : 'a array) : 'a array =
  prologue comm ~op:"allgather_ring" ~root:(-1) ~ty:(Datatype.name dt);
  record comm ~op:"allgather_ring" ~bytes:(Datatype.size_of_count dt (Array.length data));
  allgather_ring_impl comm dt data

let allgather_ring comm dt data =
  traced comm ~op:"allgather_ring" (fun () -> allgather_ring comm dt data)

(* ------------------------------------------------------------------ *)
(* Reduce-scatter: elementwise reduction whose result is scattered in
   blocks (MPI_Reduce_scatter_block / MPI_Reduce_scatter). *)

(* Peak per-rank working-buffer size of a reduce_scatter, in elements: a
   max-gauge, so the benchmark gate can show the pairwise algorithm stays
   O(n) where the reference lowering materializes O(p*n) at the root. *)
let note_rs_scratch comm elems =
  let g =
    Stats.gauge (Comm.runtime comm).Runtime.stats "coll.reduce_scatter.peak_scratch_elems"
  in
  if float_of_int elems > Stats.value g then Stats.set g (float_of_int elems)

(* Pairwise exchange: p-1 rounds; round s sends the block destined to
   rank r+s and folds the block received from rank r-s.  Each rank only
   ever materializes its own block plus one incoming block — O(n/p) where
   the reference lowering needs the whole O(n) vector at the root.
   Commutative operators only (blocks are folded in arrival order). *)
let reduce_scatter_pairwise_core comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    ~(recv_counts : int array) ~(displs : int array) ~(data : 'a array) ~(acc : 'a array)
    ~(scratch : 'a array) : unit =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let mine = recv_counts.(r) in
  Array.blit data displs.(r) acc 0 mine;
  note_rs_scratch comm (2 * mine);
  for s = 1 to n - 1 do
    let dest = (r + s) mod n in
    let src = (r - s + n) mod n in
    P2p.send_range comm dt ~dest ~tag:tag_reduce_scatter data ~pos:displs.(dest)
      ~count:recv_counts.(dest);
    let st =
      P2p.recv_into comm dt ~source:src ~tag:tag_reduce_scatter ~pos:0 ~maxcount:mine
        scratch
    in
    if Status.count st <> mine then
      Comm.error comm Errdefs.Err_count
        "reduce_scatter: expected %d elements from rank %d, got %d" mine src
        (Status.count st);
    for i = 0 to mine - 1 do
      acc.(i) <- Reduce_op.apply op acc.(i) scratch.(i)
    done
  done

let reduce_scatter_pairwise comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    ~(recv_counts : int array) ~(displs : int array) (data : 'a array) : 'a array =
  let mine = recv_counts.(Comm.rank comm) in
  let acc = if mine = 0 then [||] else Array.make mine (Datatype.zero_elem dt) in
  let scratch = if mine = 0 then [||] else Array.make mine (Datatype.zero_elem dt) in
  reduce_scatter_pairwise_core comm dt op ~recv_counts ~displs ~data ~acc ~scratch;
  acc

(* Equal block sizes: data has p * count elements; rank r receives the
   reduced block r. *)
let reduce_scatter_block comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    (data : 'a array) : 'a array =
  prologue comm ~op:"reduce_scatter_block" ~root:(-1) ~ty:(Datatype.name dt);
  let n = Comm.size comm in
  if Array.length data mod n <> 0 then
    Errdefs.usage_error "reduce_scatter_block: data length %d not divisible by %d"
      (Array.length data) n;
  let total = Array.length data in
  let bytes = Datatype.size_of_count dt total in
  record comm ~op:"reduce_scatter_block" ~bytes;
  if n = 1 then Array.copy data
  else begin
    let algo =
      choose comm Coll_algo.Reduce_scatter ~bytes ~commutative:op.Reduce_op.commutative
        ~elems:total
    in
    dispatch comm Coll_algo.Reduce_scatter algo (fun () ->
        match algo with
        | Coll_algo.Pairwise ->
            let count = total / n in
            let recv_counts = Array.make n count in
            let displs = Array.init n (fun i -> i * count) in
            reduce_scatter_pairwise comm dt op ~recv_counts ~displs data
        | _ ->
            if Comm.rank comm = 0 then note_rs_scratch comm total;
            let reduced = reduce comm dt op ~root:0 data in
            scatter comm dt ~root:0 (if Comm.rank comm = 0 then Some reduced else None))
  end

let reduce_scatter_block comm dt op data =
  traced comm ~op:"reduce_scatter_block" (fun () -> reduce_scatter_block comm dt op data)

(* Per-rank block sizes: [recv_counts.(r)] elements of the reduced vector
   go to rank r. *)
let reduce_scatter comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    ~(recv_counts : int array) (data : 'a array) : 'a array =
  prologue comm ~op:"reduce_scatter" ~root:(-1) ~ty:(Datatype.name dt);
  let n = Comm.size comm in
  if Array.length recv_counts <> n then
    Errdefs.usage_error "reduce_scatter: recv_counts must have length %d" n;
  let total = Array.fold_left ( + ) 0 recv_counts in
  if Array.length data <> total then
    Errdefs.usage_error "reduce_scatter: data length %d does not match counts sum %d"
      (Array.length data) total;
  let bytes = Datatype.size_of_count dt total in
  record comm ~op:"reduce_scatter" ~bytes;
  if n = 1 then Array.copy data
  else begin
    let algo =
      choose comm Coll_algo.Reduce_scatter ~bytes ~commutative:op.Reduce_op.commutative
        ~elems:total
    in
    dispatch comm Coll_algo.Reduce_scatter algo (fun () ->
        match algo with
        | Coll_algo.Pairwise ->
            let displs = exclusive_prefix_sum recv_counts in
            reduce_scatter_pairwise comm dt op ~recv_counts ~displs data
        | _ ->
            if Comm.rank comm = 0 then note_rs_scratch comm total;
            let reduced = reduce comm dt op ~root:0 data in
            scatterv comm dt ~root:0 ~send_counts:recv_counts
              (if Comm.rank comm = 0 then Some reduced else None))
  end

let reduce_scatter comm dt op ~recv_counts data =
  traced comm ~op:"reduce_scatter" (fun () -> reduce_scatter comm dt op ~recv_counts data)

(* ------------------------------------------------------------------ *)
(* Persistent collectives (MPI-4 MPI_Allreduce_init etc.).

   Everything the ad-hoc path recomputes per call is frozen at init:

   - the {!Coll_algo} choice for this (bytes, size) key — [choose] is a
     pure function of inputs that only change between runs, so the frozen
     algorithm (and its [coll.algo.*] counter) is exactly what each
     ad-hoc call would pick;
   - the [coll.algo] Stats counter and the profiling handle pair (the
     per-call [Hashtbl] lookups in [dispatch]/[Runtime.record] are the
     allocation the ad-hoc path cannot avoid);
   - working buffers (result copy, scratch vector, block tables), reused
     across cycles;
   - a pre-warmed pooled writer sized for the largest per-round payload.

   A cycle of a single-rank persistent collective is fully allocation-free
   (the Gc-asserted case); multi-rank cycles still allocate in transport
   (in-flight messages, posted-receive records) but skip every per-call
   setup allocation above.

   Like the non-blocking collectives, the persistent ones progress inside
   wait: [start] marks the cycle active and [wait_p] runs the blocking
   algorithm — legal because MPI only promises completion at wait. *)

(* The per-cycle runner: the ad-hoc prologue/record/dispatch sequence
   with every name and handle pre-resolved.  [frozen = None] is the
   single-rank path with no algorithm dispatch. *)
let persistent_runner comm ~op ~root ~ty ~prep ~bytes ~(frozen : Coll_algo.frozen option)
    (body : unit -> unit) : unit -> unit =
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  match frozen with
  | None ->
      fun () ->
        prologue comm ~op ~root ~ty;
        Profiling.record_prepared rt.Runtime.profile prep ~bytes;
        Runtime.with_span rt me ~cat:"coll" ~name:op body
  | Some fz ->
      let counter = Stats.counter rt.Runtime.stats fz.Coll_algo.frozen_counter in
      (* Same label save/restore as [dispatch]; the closures of the
         comm-matrix branch are only built when the matrix is enabled. *)
      let dispatch_body () =
        Stats.incr counter;
        let cm = rt.Runtime.comm_matrix in
        if Comm_matrix.enabled cm then begin
          let prev = Comm_matrix.label cm me in
          Comm_matrix.set_label cm me fz.Coll_algo.frozen_span;
          Fun.protect
            ~finally:(fun () -> Comm_matrix.set_label cm me prev)
            (fun () ->
              Runtime.with_span rt me ~cat:"coll" ~name:fz.Coll_algo.frozen_span body)
        end
        else Runtime.with_span rt me ~cat:"coll" ~name:fz.Coll_algo.frozen_span body
      in
      fun () ->
        prologue comm ~op ~root ~ty;
        Profiling.record_prepared rt.Runtime.profile prep ~bytes;
        Runtime.with_span rt me ~cat:"coll" ~name:op dispatch_body

let scratch_like (dt : 'a Datatype.t) n : 'a array =
  if n = 0 then [||] else Array.make n (Datatype.zero_elem dt)

(* Persistent allreduce: reduces [src] into [dst] each cycle.  Buffers
   are fixed at init per MPI persistent semantics; [src == dst] works
   (in-place). *)
let allreduce_init comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) ~(src : 'a array)
    ~(dst : 'a array) : Request.p =
  prologue comm ~op:"allreduce_init" ~root:(-1) ~ty:(Datatype.name dt);
  let elems = Array.length src in
  if Array.length dst <> elems then
    Errdefs.usage_error "allreduce_init: src has %d elements but dst has %d" elems
      (Array.length dst);
  let bytes = Datatype.size_of_count dt elems in
  record comm ~op:"allreduce_init" ~bytes;
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  let ty = Datatype.name dt in
  let prep = Profiling.prepare rt.Runtime.profile "allreduce" in
  let n = Comm.size comm in
  let run =
    if n = 1 then
      persistent_runner comm ~op:"allreduce" ~root:(-1) ~ty ~prep ~bytes ~frozen:None
        (fun () -> Array.blit src 0 dst 0 elems)
    else begin
      let frozen =
        Coll_algo.freeze rt.Runtime.model Coll_algo.Allreduce ~bytes ~size:n
          ~commutative:op.Reduce_op.commutative ~elems
      in
      Runtime.preheat_writer rt me ~capacity:(max 8 bytes);
      let body =
        match frozen.Coll_algo.frozen_algo with
        | Coll_algo.Recursive_doubling ->
            let scratch = scratch_like dt elems in
            fun () ->
              Array.blit src 0 dst 0 elems;
              allreduce_rdbl_core comm dt op ~total:elems ~buf:dst ~scratch
        | Coll_algo.Rabenseifner ->
            let scratch = scratch_like dt elems in
            let disps =
              rabenseifner_disps ~total:elems ~pof2:(Coll_algo.floor_pow2 n)
            in
            fun () ->
              Array.blit src 0 dst 0 elems;
              allreduce_rabenseifner_core comm dt op ~total:elems ~buf:dst ~scratch ~disps
        | _ ->
            (* Order-safe reference lowering; allocates per cycle like the
               ad-hoc path it wraps. *)
            fun () ->
              let res = allreduce_reduce_bcast comm dt op src in
              Array.blit res 0 dst 0 elems
      in
      persistent_runner comm ~op:"allreduce" ~root:(-1) ~ty ~prep ~bytes
        ~frozen:(Some frozen) body
    end
  in
  Request.make_p ~describe:"allreduce_init" ~start:(fun () -> ()) ~ready:(fun () -> true)
    ~run

(* Persistent bcast.  Unlike the ad-hoc binding (payload at the root
   only), the buffer argument exists on every rank — MPI-style — so the
   element count is known everywhere at init and no count rendezvous is
   needed; size-keyed selection still matches the ad-hoc choice because
   both key on the same byte total. *)
let bcast_init comm (dt : 'a Datatype.t) ~root (buf : 'a array) : Request.p =
  prologue comm ~op:"bcast_init" ~root ~ty:(Datatype.name dt);
  check_root comm root;
  let total = Array.length buf in
  let bytes = Datatype.size_of_count dt total in
  let rbytes = if Comm.rank comm = root then bytes else 0 in
  record comm ~op:"bcast_init" ~bytes:rbytes;
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  let ty = Datatype.name dt in
  let prep = Profiling.prepare rt.Runtime.profile "bcast" in
  let n = Comm.size comm in
  let run =
    if n = 1 then
      persistent_runner comm ~op:"bcast" ~root ~ty ~prep ~bytes:rbytes ~frozen:None
        (fun () -> ())
    else begin
      let frozen =
        Coll_algo.freeze rt.Runtime.model Coll_algo.Bcast ~bytes ~size:n ~commutative:true
          ~elems:total
      in
      Runtime.preheat_writer rt me ~capacity:(max 8 bytes);
      let body =
        match frozen.Coll_algo.frozen_algo with
        | Coll_algo.Scatter_allgather ->
            let cnts, disps = bcast_block_table comm ~total in
            fun () -> bcast_scatter_allgather_core comm dt ~root ~cnts ~disps buf
        | _ -> fun () -> bcast_binomial_into comm dt ~root ~total buf
      in
      persistent_runner comm ~op:"bcast" ~root ~ty ~prep ~bytes:rbytes
        ~frozen:(Some frozen) body
    end
  in
  Request.make_p ~describe:"bcast_init" ~start:(fun () -> ()) ~ready:(fun () -> true) ~run

(* Persistent reduce_scatter: reduces [src] and scatters block r into
   [dst] (whose length must be [recv_counts.(r)]). *)
let reduce_scatter_init comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t)
    ~(recv_counts : int array) ~(src : 'a array) ~(dst : 'a array) : Request.p =
  prologue comm ~op:"reduce_scatter_init" ~root:(-1) ~ty:(Datatype.name dt);
  let n = Comm.size comm in
  let r = Comm.rank comm in
  if Array.length recv_counts <> n then
    Errdefs.usage_error "reduce_scatter_init: recv_counts must have length %d" n;
  let total = Array.fold_left ( + ) 0 recv_counts in
  if Array.length src <> total then
    Errdefs.usage_error "reduce_scatter_init: src length %d does not match counts sum %d"
      (Array.length src) total;
  let mine = recv_counts.(r) in
  if Array.length dst <> mine then
    Errdefs.usage_error "reduce_scatter_init: dst length %d but this rank receives %d"
      (Array.length dst) mine;
  let bytes = Datatype.size_of_count dt total in
  record comm ~op:"reduce_scatter_init" ~bytes;
  let rt = Comm.runtime comm in
  let me = Comm.world_rank comm in
  let ty = Datatype.name dt in
  let prep = Profiling.prepare rt.Runtime.profile "reduce_scatter" in
  let displs = exclusive_prefix_sum recv_counts in
  let run =
    if n = 1 then
      persistent_runner comm ~op:"reduce_scatter" ~root:(-1) ~ty ~prep ~bytes ~frozen:None
        (fun () -> Array.blit src 0 dst 0 total)
    else begin
      let frozen =
        Coll_algo.freeze rt.Runtime.model Coll_algo.Reduce_scatter ~bytes ~size:n
          ~commutative:op.Reduce_op.commutative ~elems:total
      in
      Runtime.preheat_writer rt me
        ~capacity:(max 8 (Datatype.size_of_count dt (Array.fold_left max 0 recv_counts)));
      let body =
        match frozen.Coll_algo.frozen_algo with
        | Coll_algo.Pairwise ->
            let scratch = scratch_like dt mine in
            fun () ->
              reduce_scatter_pairwise_core comm dt op ~recv_counts ~displs ~data:src
                ~acc:dst ~scratch
        | _ ->
            (* Order-safe reference lowering; allocates per cycle. *)
            fun () ->
              if r = 0 then note_rs_scratch comm total;
              let reduced = reduce comm dt op ~root:0 src in
              let part =
                scatterv comm dt ~root:0 ~send_counts:recv_counts
                  (if r = 0 then Some reduced else None)
              in
              Array.blit part 0 dst 0 mine
      in
      persistent_runner comm ~op:"reduce_scatter" ~root:(-1) ~ty ~prep ~bytes
        ~frozen:(Some frozen) body
    end
  in
  Request.make_p ~describe:"reduce_scatter_init" ~start:(fun () -> ())
    ~ready:(fun () -> true) ~run

(* ------------------------------------------------------------------ *)
(* Non-blocking collectives.

   Progress semantics: like an MPI implementation without asynchronous
   progress threads, the collective advances only inside wait/test — the
   request defers the blocking algorithm to its finalization, which every
   rank must reach.  This provides the deferred-start pattern (post now,
   complete after independent work) without overlap guarantees. *)

let deferred_collective comm ~opname (run : unit -> unit) : Request.t =
  let rt = Comm.runtime comm in
  Runtime.record rt ~op:opname ~bytes:0;
  let cell = ref None in
  let req =
    Request.make
      ~ready:(fun () -> true)
      ~finalize:(fun () ->
        (match !cell with
        | Some () -> ()
        | None ->
            run ();
            cell := Some ());
        Status.make ~source:(Comm.rank comm) ~tag:0 ~count:0 ~bytes:0)
      ~describe:(fun () -> opname)
  in
  if Check.enabled rt.Runtime.check then
    Check.track_request rt.Runtime.check ~rank:(Comm.world_rank comm) ~kind:opname req;
  req

let ibcast comm (dt : 'a Datatype.t) ~root (data : 'a array option) :
    Request.t * 'a array option ref =
  let result = ref None in
  let req =
    deferred_collective comm ~opname:"ibcast" (fun () ->
        result := Some (bcast comm dt ~root data))
  in
  (req, result)

let iallreduce comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) (data : 'a array) :
    Request.t * 'a array option ref =
  let result = ref None in
  let req =
    deferred_collective comm ~opname:"iallreduce" (fun () ->
        result := Some (allreduce comm dt op data))
  in
  (req, result)

let ialltoallv comm (dt : 'a Datatype.t) ~send_counts ~send_displs ~recv_counts
    ~recv_displs (data : 'a array) : Request.t * 'a array option ref =
  let result = ref None in
  let req =
    deferred_collective comm ~opname:"ialltoallv" (fun () ->
        result :=
          Some (alltoallv comm dt ~send_counts ~send_displs ~recv_counts ~recv_displs data))
  in
  (req, result)

let ireduce_scatter comm (dt : 'a Datatype.t) (op : 'a Reduce_op.t) ~recv_counts
    (data : 'a array) : Request.t * 'a array option ref =
  let result = ref None in
  let req =
    deferred_collective comm ~opname:"ireduce_scatter" (fun () ->
        result := Some (reduce_scatter comm dt op ~recv_counts data))
  in
  (req, result)
