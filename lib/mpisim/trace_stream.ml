(* Streaming trace sink: length-prefixed binary records on a channel.

   The ring-buffer sink (Trace) caps memory per rank but at 10^5..10^6
   ranks the rings themselves dominate memory and overflow silently
   truncates history.  This sink instead appends every event to a file as
   it is emitted: an idle rank costs nothing beyond its per-rank sequence
   counter (O(1) memory), and nothing is ever dropped.

   Wire format (all little-endian):

     header   "MPTS", u8 version (1), i32 nranks
     record   u8 tag, i32 payload length, payload

     tag 1    string definition: i32 id, bytes (the string)
     tag 2    event: i32 rank, i32 per-rank seq, u8 kind,
              i32 cat id, i32 name id, f64 ts, f64 dur,
              i64 a, i64 b, i64 c, i64 d
     tag 3    vector clock: i32 rank, i32 event seq it annotates,
              i32 n, n x i64 clock entries

   Tag-3 records are an annotation layer: a VC record refers to the
   event of the same rank with the given sequence number (in practice
   the immediately preceding one) and carries the rank's vector clock
   at that event.  Readers that predate tag 3 skip it via the length
   prefix — no version bump needed.

   Category and name strings are interned: the first occurrence writes a
   tag-1 record, later events refer to the id.  The per-rank sequence
   numbers let any reader prove completeness (they must be contiguous
   from zero); the length prefix lets readers skip unknown tags.

   The writer batches into a bounded scratch buffer (one syscall per
   [flush_threshold] bytes rather than per event), so its memory is a
   constant independent of run length and rank count. *)

let magic = "MPTS"

let version = 1

let flush_threshold = 64 * 1024

type t = {
  oc : out_channel;
  buf : Buffer.t;
  scratch : Bytes.t;  (* fixed-size staging area for one event record *)
  intern : (string, int) Hashtbl.t;
  mutable next_id : int;
  seqs : int array;  (* per-rank event sequence numbers *)
  mutable events : int;
  mutable closed : bool;
  (* The sink is one shared buffer + channel: under the multicore
     scheduler several domains emit concurrently, so every record write
     serializes on this lock.  Uncontended (sequential runs) it is a
     couple of atomic ops per event. *)
  lock : Mutex.t;
}

(* rank + seq + cat id + name id (i32), kind (u8), ts + dur (f64),
   a..d (i64). *)
let event_payload_len = (4 * 4) + 1 + (2 * 8) + (4 * 8)

let flush t =
  Buffer.output_buffer t.oc t.buf;
  Buffer.clear t.buf

let create ~path ~ranks =
  let oc = open_out_bin path in
  let buf = Buffer.create (flush_threshold + 256) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int ranks);
  Buffer.add_bytes buf hdr;
  {
    oc;
    buf;
    scratch = Bytes.create event_payload_len;
    intern = Hashtbl.create 64;
    next_id = 0;
    seqs = Array.make ranks 0;
    events = 0;
    closed = false;
    lock = Mutex.create ();
  }

let[@inline] locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let events_written t = t.events

let seq t rank = t.seqs.(rank)

let add_record t tag payload_len add_payload =
  Buffer.add_uint8 t.buf tag;
  let len = Bytes.create 4 in
  Bytes.set_int32_le len 0 (Int32.of_int payload_len);
  Buffer.add_bytes t.buf len;
  add_payload ();
  if Buffer.length t.buf >= flush_threshold then flush t

let intern t s =
  match Hashtbl.find_opt t.intern s with
  | Some id -> id
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.intern s id;
      add_record t 1
        (4 + String.length s)
        (fun () ->
          let b = Bytes.create 4 in
          Bytes.set_int32_le b 0 (Int32.of_int id);
          Buffer.add_bytes t.buf b;
          Buffer.add_string t.buf s);
      id

let kind_code : Trace_chrome.kind -> int = function
  | Trace_chrome.Begin -> 0
  | Trace_chrome.End -> 1
  | Trace_chrome.Instant -> 2
  | Trace_chrome.Complete -> 3

let kind_of_code = function
  | 0 -> Some Trace_chrome.Begin
  | 1 -> Some Trace_chrome.End
  | 2 -> Some Trace_chrome.Instant
  | 3 -> Some Trace_chrome.Complete
  | _ -> None

let write_event t ~rank ~kind ~cat ~name ~ts ~dur ~a ~b ~c ~d =
  locked t @@ fun () ->
  if t.closed then invalid_arg "Trace_stream.write_event: writer is closed";
  let cat_id = intern t cat in
  let name_id = intern t name in
  let sq = t.seqs.(rank) in
  t.seqs.(rank) <- sq + 1;
  t.events <- t.events + 1;
  let s = t.scratch in
  Bytes.set_int32_le s 0 (Int32.of_int rank);
  Bytes.set_int32_le s 4 (Int32.of_int sq);
  Bytes.set_uint8 s 8 (kind_code kind);
  Bytes.set_int32_le s 9 (Int32.of_int cat_id);
  Bytes.set_int32_le s 13 (Int32.of_int name_id);
  Bytes.set_int64_le s 17 (Int64.bits_of_float ts);
  Bytes.set_int64_le s 25 (Int64.bits_of_float dur);
  Bytes.set_int64_le s 33 (Int64.of_int a);
  Bytes.set_int64_le s 41 (Int64.of_int b);
  Bytes.set_int64_le s 49 (Int64.of_int c);
  Bytes.set_int64_le s 57 (Int64.of_int d);
  add_record t 2 event_payload_len (fun () -> Buffer.add_bytes t.buf s)

(* Attach the rank's current vector clock to its most recent event.
   Must be called right after the [write_event] it annotates (it binds to
   sequence number [seq - 1]).  The array is copied into the stream, so
   the caller may keep mutating its live clock row. *)
let write_vc t ~rank ~vc =
  locked t @@ fun () ->
  if t.closed then invalid_arg "Trace_stream.write_vc: writer is closed";
  if t.seqs.(rank) = 0 then invalid_arg "Trace_stream.write_vc: no event to annotate";
  let n = Array.length vc in
  add_record t 3
    ((3 * 4) + (n * 8))
    (fun () ->
      let b = Bytes.create ((3 * 4) + (n * 8)) in
      Bytes.set_int32_le b 0 (Int32.of_int rank);
      Bytes.set_int32_le b 4 (Int32.of_int (t.seqs.(rank) - 1));
      Bytes.set_int32_le b 8 (Int32.of_int n);
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (12 + (i * 8)) (Int64.of_int vc.(i))
      done;
      Buffer.add_bytes t.buf b)

let close t =
  locked t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    flush t;
    close_out t.oc
  end

(* ------------------------------------------------------------------ *)
(* Reader *)

type event = {
  ev_rank : int;
  ev_seq : int;
  ev_kind : Trace_chrome.kind;
  ev_cat : string;
  ev_name : string;
  ev_ts : float;
  ev_dur : float;
  ev_a : int;
  ev_b : int;
  ev_c : int;
  ev_d : int;
}

type summary = { s_ranks : int; s_events : int }

let read_i32 b off = Int32.to_int (Bytes.get_int32_le b off)

(* Stream the records of [path] through [f], validating as we go: magic
   and version, string ids defined before use, and — the completeness
   proof — per-rank sequence numbers contiguous from zero.  [on_header]
   fires once, before the first event, with the rank count. *)
let fold_file ?(on_header = fun (_ : int) -> ())
    ?(on_vc = fun ~rank:(_ : int) ~seq:(_ : int) (_ : int array) -> ()) path ~init ~f =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> (
      let fail fmt = Printf.ksprintf failwith fmt in
      try
        let result =
          let hdr = Bytes.create 9 in
          (try really_input ic hdr 0 9
           with End_of_file -> fail "truncated header (%s)" path);
          if Bytes.sub_string hdr 0 4 <> magic then fail "bad magic: not a trace stream";
          let v = Bytes.get_uint8 hdr 4 in
          if v <> version then fail "unsupported trace-stream version %d" v;
          let nranks = read_i32 hdr 5 in
          if nranks <= 0 then fail "bad rank count %d" nranks;
          on_header nranks;
          let strings : (int, string) Hashtbl.t = Hashtbl.create 64 in
          let expect = Array.make nranks 0 in
          let events = ref 0 in
          let acc = ref init in
          let frame = Bytes.create 5 in
          let rec loop () =
            match really_input ic frame 0 5 with
            | exception End_of_file -> ()
            | () ->
                let tag = Bytes.get_uint8 frame 0 in
                let len = read_i32 frame 1 in
                if len < 0 then fail "negative record length";
                let payload = Bytes.create len in
                (try really_input ic payload 0 len
                 with End_of_file -> fail "truncated record (tag %d)" tag);
                (match tag with
                | 1 ->
                    if len < 4 then fail "short string record";
                    let id = read_i32 payload 0 in
                    Hashtbl.replace strings id (Bytes.sub_string payload 4 (len - 4))
                | 2 ->
                    if len < event_payload_len then fail "short event record";
                    let rank = read_i32 payload 0 in
                    if rank < 0 || rank >= nranks then
                      fail "event rank %d out of range" rank;
                    let sq = read_i32 payload 4 in
                    if sq <> expect.(rank) then
                      fail "rank %d: event seq %d, expected %d (dropped or reordered)"
                        rank sq expect.(rank);
                    expect.(rank) <- sq + 1;
                    let kind =
                      match kind_of_code (Bytes.get_uint8 payload 8) with
                      | Some k -> k
                      | None -> fail "unknown event kind"
                    in
                    let str off =
                      let id = read_i32 payload off in
                      match Hashtbl.find_opt strings id with
                      | Some s -> s
                      | None -> fail "undefined string id %d" id
                    in
                    let i64 off = Int64.to_int (Bytes.get_int64_le payload off) in
                    incr events;
                    acc :=
                      f !acc
                        {
                          ev_rank = rank;
                          ev_seq = sq;
                          ev_kind = kind;
                          ev_cat = str 9;
                          ev_name = str 13;
                          ev_ts = Int64.float_of_bits (Bytes.get_int64_le payload 17);
                          ev_dur = Int64.float_of_bits (Bytes.get_int64_le payload 25);
                          ev_a = i64 33;
                          ev_b = i64 41;
                          ev_c = i64 49;
                          ev_d = i64 57;
                        }
                | 3 ->
                    if len < 12 then fail "short vector-clock record";
                    let rank = read_i32 payload 0 in
                    if rank < 0 || rank >= nranks then
                      fail "vector-clock rank %d out of range" rank;
                    let sq = read_i32 payload 4 in
                    let n = read_i32 payload 8 in
                    if n < 0 || len < 12 + (n * 8) then fail "short vector-clock record";
                    let vc =
                      Array.init n (fun i ->
                          Int64.to_int (Bytes.get_int64_le payload (12 + (i * 8))))
                    in
                    on_vc ~rank ~seq:sq vc
                | _ -> () (* unknown tag: the length prefix told us how much to skip *));
                loop ()
          in
          loop ();
          (!acc, { s_ranks = nranks; s_events = !events })
        in
        close_in ic;
        Ok result
      with
      | Failure msg ->
          close_in_noerr ic;
          Error msg
      | exn ->
          close_in_noerr ic;
          raise exn)

(* Offline converter: stream file -> Chrome trace-event JSON, using the
   same rendering rules (flow arrows, zero-duration clamping, per-rank
   CPU tracks) as the in-memory exporter, in bounded memory: the output
   buffer drains to [dst] every [flush_threshold] bytes. *)
let convert_to_chrome ~src ~dst =
  match open_out dst with
  | exception Sys_error msg -> Error msg
  | oc ->
      let buf = Buffer.create (flush_threshold + 4096) in
      (* (root, traceEvents array, nranks), built once the header is read. *)
      let ctx = ref None in
      let fold_result =
        fold_file src
          ~on_header:(fun nranks ->
            let root = Json_out.start_obj buf in
            Json_out.field_str root "displayTimeUnit" "ms";
            Json_out.key root "otherData";
            let od = Json_out.start_obj buf in
            Json_out.field_int od "droppedEvents" 0;
            Json_out.field_str od "sink" "stream";
            Json_out.end_obj od;
            Json_out.key root "traceEvents";
            let arr = Json_out.start_arr buf in
            Trace_chrome.thread_names buf arr ~nranks;
            ctx := Some (root, arr, nranks))
          ~init:()
          ~f:(fun () ev ->
            match !ctx with
            | None -> ()
            | Some (_, arr, nranks) ->
                if Buffer.length buf >= flush_threshold then begin
                  Buffer.output_buffer oc buf;
                  Buffer.clear buf
                end;
                Trace_chrome.event buf arr ~nranks ~rank:ev.ev_rank ~kind:ev.ev_kind
                  ~cat:ev.ev_cat ~name:ev.ev_name ~ts:ev.ev_ts ~dur:ev.ev_dur ~a:ev.ev_a
                  ~b:ev.ev_b ~c:ev.ev_c ~d:ev.ev_d)
      in
      let result =
        match fold_result with
        | Error _ as e -> e
        | Ok ((), summary) -> (
            match !ctx with
            | None -> Error "empty trace stream: header missing"
            | Some (root, arr, _) ->
                Json_out.end_arr arr;
                Json_out.end_obj root;
                Buffer.output_buffer oc buf;
                Ok summary)
      in
      close_out oc;
      result
