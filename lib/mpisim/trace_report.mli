(** Post-run analysis of the virtual-time accounting and the event trace:
    per-rank busy/blocked/idle utilization and the makespan-bounding
    critical path. *)

(** Per-rank busy / blocked / idle table.  Needs no trace: the runtime
    splits every clock movement into busy (charged cost) and blocked
    (sync jump); idle is the tail between a rank's finish time and the
    makespan. *)
val pp_utilization :
  Format.formatter ->
  busy:float array ->
  blocked:float array ->
  times:float array ->
  max_time:float ->
  unit

(** One segment of the critical path: rank [hop_rank] was occupied on
    [hop_from .. hop_to] inside [hop_name] ("cat/name" of the tightest
    enclosing traced span, or ["compute"]); the segment started when the
    message [via_seq] from [via_src] arrived ([via_src = -1] for the
    chain's first segment). *)
type hop = {
  hop_rank : int;
  hop_from : float;
  hop_to : float;
  hop_name : string;
  via_src : int;
  via_seq : int;
  via_bytes : int;
}

(** Walk back from the rank that finished last through "match_wait"
    instants to the sends that released them (at most 64 hops; stops
    early if the trace ring evicted the relevant send).  Returns hops in
    start-to-finish order; [[]] when tracing was disabled. *)
val critical_path : Trace.t -> times:float array -> hop list

val pp_critical_path : Format.formatter -> Trace.t -> times:float array -> unit
