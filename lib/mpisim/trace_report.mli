(** Post-run analysis of the virtual-time accounting and the event trace:
    per-rank busy/blocked/idle utilization and the makespan-bounding
    critical path. *)

(** Per-rank busy / blocked / idle table.  Needs no trace: the runtime
    splits every clock movement into busy (charged cost) and blocked
    (sync jump); idle is the tail between a rank's finish time and the
    makespan. *)
val pp_utilization :
  Format.formatter ->
  busy:float array ->
  blocked:float array ->
  times:float array ->
  max_time:float ->
  unit

(** One segment of the critical path: rank [hop_rank] was occupied on
    [hop_from .. hop_to] inside [hop_name] ("cat/name" of the tightest
    enclosing traced span, or ["compute"]); the segment started when the
    message [via_seq] from [via_src] arrived ([via_src = -1] for the
    chain's first segment).  [via_latency] is match-ts minus send-ts,
    [via_slack] how long the receiver had been parked when the message
    arrived (each [-1.] when unknown), and [via_verified] says the edge
    was checked against the send table: source rank, byte count,
    timestamp order and Lamport order all consistent. *)
type hop = {
  hop_rank : int;
  hop_from : float;
  hop_to : float;
  hop_name : string;
  via_src : int;
  via_seq : int;
  via_bytes : int;
  via_latency : float;
  via_slack : float;
  via_verified : bool;
}

(** The cross-rank causal walk: back from the rank that finished last
    through binding "match_wait" instants to the sends that released
    them (the longest path through the send→recv DAG; at most 64 hops).
    The walk only crosses verified edges — an evicted or inconsistent
    send ends it.  Returns hops in start-to-finish order; [[]] when
    tracing was disabled. *)
val critical_path : Trace.t -> times:float array -> hop list

(** Number of cross-rank edges in a critical path that failed send-table
    verification ([via_verified = false]).  Published by the CLI as the
    [obs.causal.unverified_edges] counter. *)
val unverified_edges : hop list -> int

val pp_critical_path : Format.formatter -> Trace.t -> times:float array -> unit
