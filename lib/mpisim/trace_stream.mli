(** Streaming trace sink: length-prefixed binary records on a channel.

    The alternative to the per-rank ring buffers of {!Trace} for runs too
    large (or too long) to buffer in memory: every event is appended to a
    file as it is emitted, with interned category/name strings and a
    per-rank sequence number, so idle ranks cost O(1) memory and nothing
    is ever dropped.  A reader proves completeness by checking that the
    sequence numbers of every rank are contiguous from zero. *)

type t

(** Open a stream writer on [path] (truncating it) for [ranks] ranks. *)
val create : path:string -> ranks:int -> t

val write_event :
  t ->
  rank:int ->
  kind:Trace_chrome.kind ->
  cat:string ->
  name:string ->
  ts:float ->
  dur:float ->
  a:int ->
  b:int ->
  c:int ->
  d:int ->
  unit

(** Attach the rank's current vector clock to its most recently written
    event (a tag-3 annotation record; the array is copied).  Raises if no
    event has been written for [rank] yet. *)
val write_vc : t -> rank:int -> vc:int array -> unit

(** Events written so far (all ranks). *)
val events_written : t -> int

(** Next per-rank sequence number (= events written for that rank). *)
val seq : t -> int -> int

(** Flush and close the underlying channel.  Idempotent; writing after
    [close] raises. *)
val close : t -> unit

(** {1 Reader} *)

type event = {
  ev_rank : int;
  ev_seq : int;
  ev_kind : Trace_chrome.kind;
  ev_cat : string;
  ev_name : string;
  ev_ts : float;
  ev_dur : float;
  ev_a : int;
  ev_b : int;
  ev_c : int;
  ev_d : int;
}

type summary = { s_ranks : int; s_events : int }

(** Stream the records of a file through [f], validating the header, the
    string table and the per-rank sequence contiguity; [on_header] fires
    once with the rank count before the first event; [on_vc] receives
    each vector-clock annotation (the rank and sequence number of the
    event it annotates, and the clock itself).  Returns the folded value
    and a summary, or a description of the first corruption. *)
val fold_file :
  ?on_header:(int -> unit) ->
  ?on_vc:(rank:int -> seq:int -> int array -> unit) ->
  string ->
  init:'a ->
  f:('a -> event -> 'a) ->
  ('a * summary, string) result

(** Offline converter to Chrome trace-event JSON (chrome://tracing,
    Perfetto), with the same flow arrows and zero-duration clamping as
    {!Trace.chrome_json_into}; runs in bounded memory. *)
val convert_to_chrome : src:string -> dst:string -> (summary, string) result
