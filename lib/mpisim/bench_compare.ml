(* Benchmark regression comparison: the engine behind `repro_cli
   bench-diff` and the CI perf gate.

   Inputs are the JSON Lines files the benchmark harness emits
   (BENCH_PINGPONG.json, BENCH_COLL.json, or any BENCH_JSON capture): one
   object per line with a "bench" name, configuration fields and measured
   metrics.  Records are matched across the two files on their identity —
   the bench name plus every non-metric field — and each shared metric is
   compared under a relative tolerance.

   Which fields are metrics, and which direction is better, is keyed on
   the suite's naming conventions:

     *_seconds            lower is better (includes modelled latencies)
     *_per_second         higher is better (bandwidth)
     speedup, *_speedup   higher is better
     *_peak_elems         lower is better (scratch-memory ceilings)

   Metrics containing "wall" measure the host machine rather than the
   model and are skipped by default: only the deterministic modelled
   numbers are stable enough for a hard CI gate. *)

type direction = Lower_better | Higher_better

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let metric_direction name =
  if has_suffix name "_seconds" then Some Lower_better
  else if has_suffix name "_per_second" then Some Higher_better
  else if name = "speedup" || has_suffix name "_speedup" then Some Higher_better
  else if has_suffix name "_peak_elems" then Some Lower_better
  else None

let is_wall name = contains name "wall"

type record = {
  r_bench : string;
  r_keys : (string * string) list;  (* identity: non-metric fields, sorted *)
  r_metrics : (string * float) list;
}

(* Render a non-metric field for the identity key.  Integral floats print
   as integers so 64 and 64.0 match. *)
let value_string (v : Json_in.t) =
  match v with
  | Json_in.Str s -> s
  | Json_in.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        string_of_int (int_of_float f)
      else Printf.sprintf "%.17g" f
  | Json_in.Bool b -> string_of_bool b
  | Json_in.Null -> "null"
  | Json_in.Arr _ | Json_in.Obj _ -> "<composite>"

let record_of_json (j : Json_in.t) =
  match j with
  | Json_in.Obj fields ->
      let bench =
        match List.assoc_opt "bench" fields with Some (Json_in.Str s) -> s | _ -> ""
      in
      let keys = ref [] and metrics = ref [] in
      List.iter
        (fun (k, v) ->
          if k <> "bench" then begin
            match (metric_direction k, v) with
            | Some _, Json_in.Num f -> metrics := (k, f) :: !metrics
            | _ -> keys := (k, value_string v) :: !keys
          end)
        fields;
      Some
        {
          r_bench = bench;
          r_keys = List.sort compare !keys;
          r_metrics = List.rev !metrics;
        }
  | _ -> None

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json_in.parse_lines contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok values -> Ok (List.filter_map record_of_json values))

let identity r =
  r.r_bench ^ "|" ^ String.concat "|" (List.map (fun (k, v) -> k ^ "=" ^ v) r.r_keys)

type delta = {
  d_id : string;  (* human-readable record identity *)
  d_metric : string;
  d_old : float;
  d_new : float;
  d_ratio : float;  (* new / old *)
}

type verdict = {
  compared : int;  (* metric values compared *)
  skipped_wall : int;
  missing_baseline : int;  (* current records with no baseline match *)
  regressions : delta list;
  improvements : delta list;
}

let diff ?(tolerance = 0.10) ?(include_wall = false) ~baseline ~current () =
  let base = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace base (identity r) r) baseline;
  let compared = ref 0 and skipped_wall = ref 0 and missing = ref 0 in
  let regressions = ref [] and improvements = ref [] in
  List.iter
    (fun cur ->
      match Hashtbl.find_opt base (identity cur) with
      | None -> incr missing
      | Some old ->
          List.iter
            (fun (metric, nv) ->
              match List.assoc_opt metric old.r_metrics with
              | None -> ()
              | Some ov ->
                  if is_wall metric && not include_wall then incr skipped_wall
                  else begin
                    incr compared;
                    let dir = Option.get (metric_direction metric) in
                    let ratio =
                      if ov <> 0. then nv /. ov
                      else if nv = 0. then 1.
                      else match dir with Lower_better -> infinity | Higher_better -> 0.
                    in
                    let delta =
                      {
                        d_id = identity cur;
                        d_metric = metric;
                        d_old = ov;
                        d_new = nv;
                        d_ratio = ratio;
                      }
                    in
                    match dir with
                    | Lower_better ->
                        if ratio > 1. +. tolerance then regressions := delta :: !regressions
                        else if ratio < 1. -. tolerance then
                          improvements := delta :: !improvements
                    | Higher_better ->
                        if ratio < 1. -. tolerance then regressions := delta :: !regressions
                        else if ratio > 1. +. tolerance then
                          improvements := delta :: !improvements
                  end)
            cur.r_metrics)
    current;
  {
    compared = !compared;
    skipped_wall = !skipped_wall;
    missing_baseline = !missing;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
  }

let has_regressions v = v.regressions <> []

let pp_delta ppf d =
  Format.fprintf ppf "  %s :: %s  %.6g -> %.6g  (%.1f%%)" d.d_id d.d_metric d.d_old
    d.d_new
    ((d.d_ratio -. 1.) *. 100.)

let pp_verdict ppf v =
  Format.fprintf ppf "compared %d metric values (%d wall-clock skipped)@." v.compared
    v.skipped_wall;
  if v.missing_baseline > 0 then
    Format.fprintf ppf "%d record(s) have no baseline yet (not a failure)@."
      v.missing_baseline;
  if v.regressions <> [] then begin
    Format.fprintf ppf "REGRESSIONS (%d):@." (List.length v.regressions);
    List.iter (fun d -> Format.fprintf ppf "%a@." pp_delta d) v.regressions
  end;
  if v.improvements <> [] then begin
    Format.fprintf ppf "improvements (%d):@." (List.length v.improvements);
    List.iter (fun d -> Format.fprintf ppf "%a@." pp_delta d) v.improvements
  end;
  if v.regressions = [] then Format.fprintf ppf "no regressions@."
