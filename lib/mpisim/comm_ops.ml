(* Communicator construction: dup, split, graph topologies, and the ULFM
   operations (shrink, agree) that the fault-tolerance plugin (§V-B) builds
   on.

   Context-id agreement is implemented honestly through the network: rank 0
   of the parent allocates fresh context ids and distributes them, so
   communicator creation has a real collective cost.  The shrink and agree
   operations cannot be routed through a fixed rank (it may be dead), so
   they use a shared-memory rendezvous with a modelled completion cost. *)

let tag_comm = P2p.internal_tag 12

(* ------------------------------------------------------------------ *)
(* Dup *)

let dup comm =
  Runtime.check_alive (Comm.runtime comm) (Comm.world_rank comm);
  Comm.check_collective comm ~op:"comm_dup" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime comm) ~op:"comm_dup" ~bytes:0;
  let rt = Comm.runtime comm in
  let context =
    let root_ctx = if Comm.rank comm = 0 then Some [| Runtime.fresh_context rt |] else None in
    (Coll.bcast comm Datatype.int ~root:0 root_ctx).(0)
  in
  let shared = Comm.get_or_create_shared rt ~context ~group:(Comm.group comm) in
  Comm.attach rt shared ~rank:(Comm.rank comm)

(* ------------------------------------------------------------------ *)
(* Split *)

(* Split by (color, key).  A negative color means "undefined": the caller
   gets [None] (MPI_UNDEFINED semantics).  Ranks with equal color form a
   new communicator, ordered by (key, old rank). *)
let split comm ~color ?(key = 0) () : Comm.t option =
  Runtime.check_alive (Comm.runtime comm) (Comm.world_rank comm);
  Comm.check_collective comm ~op:"comm_split" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime comm) ~op:"comm_split" ~bytes:0;
  let rt = Comm.runtime comm in
  let n = Comm.size comm in
  let r = Comm.rank comm in
  (* Everyone reports (color, key) to rank 0 of the parent. *)
  if r <> 0 then P2p.send_range comm Datatype.int ~dest:0 ~tag:tag_comm [| color; key |] ~pos:0 ~count:2;
  let reply =
    if r = 0 then begin
      let entries = Array.make n (0, 0) in
      entries.(0) <- (color, key);
      for src = 1 to n - 1 do
        let d, _ = P2p.recv comm Datatype.int ~source:src ~tag:tag_comm () in
        entries.(src) <- (d.(0), d.(1))
      done;
      (* Group members by color. *)
      let colors = Hashtbl.create 8 in
      Array.iteri
        (fun rank (c, k) ->
          if c >= 0 then begin
            let members = try Hashtbl.find colors c with Not_found -> [] in
            Hashtbl.replace colors c ((k, rank) :: members)
          end)
        entries;
      (* For each color: order members, allocate a context, notify. *)
      let my_reply = ref None in
      Hashtbl.iter
        (fun c members ->
          let ordered =
            List.sort
              (fun (k1, r1) (k2, r2) -> if k1 <> k2 then compare k1 k2 else compare r1 r2)
              members
          in
          let ranks = Array.of_list (List.map snd ordered) in
          let world_ranks = Array.map (Comm.world_of_rank comm) ranks in
          let context = Runtime.fresh_context rt in
          ignore c;
          Array.iteri
            (fun new_rank old_rank ->
              let payload =
                Array.concat [ [| context; new_rank; Array.length ranks |]; world_ranks ]
              in
              if old_rank = 0 then my_reply := Some payload
              else
                P2p.send_range comm Datatype.int ~dest:old_rank ~tag:tag_comm payload
                  ~pos:0 ~count:(Array.length payload))
            ranks)
        colors;
      (* Ranks with undefined color get an empty reply. *)
      Array.iteri
        (fun rank (c, _) ->
          if c < 0 && rank <> 0 then
            P2p.send_range comm Datatype.int ~dest:rank ~tag:tag_comm [||] ~pos:0 ~count:0)
        entries;
      if color < 0 then [||] else Option.get !my_reply
    end
    else begin
      let d, _ = P2p.recv comm Datatype.int ~source:0 ~tag:tag_comm () in
      d
    end
  in
  if Array.length reply = 0 then None
  else begin
    let context = reply.(0) in
    let new_rank = reply.(1) in
    let gsize = reply.(2) in
    let world_ranks = Array.sub reply 3 gsize in
    let shared =
      Comm.get_or_create_shared rt ~context ~group:(Group.of_ranks world_ranks)
    in
    Some (Comm.attach rt shared ~rank:new_rank)
  end

(* Restrict a communicator to a subgroup (MPI_Comm_create semantics):
   collective over the parent; members get the new communicator, others
   [None]. *)
let create_from_group comm (g : Group.t) : Comm.t option =
  let my_world = Comm.world_rank comm in
  match Group.rank_of_world g my_world with
  | Some new_rank -> split comm ~color:0 ~key:new_rank ()
  | None -> split comm ~color:(-1) ()

(* ------------------------------------------------------------------ *)
(* Graph topologies (for neighborhood collectives, §V-A) *)

(* Create a communicator with a static neighbor topology.  [sources] and
   [destinations] are comm ranks of the parent (reorder is not supported,
   so ranks are preserved).  Charges the per-member topology-construction
   cost that makes rebuilding the graph before every exchange expensive
   (paper §V-A: "MPI_Neighbor_alltoallv does not scale" with rebuilds). *)
let dist_graph_create_adjacent comm ~(sources : int array) ~(destinations : int array) :
    Comm.t =
  Runtime.check_alive (Comm.runtime comm) (Comm.world_rank comm);
  Comm.check_collective comm ~op:"dist_graph_create_adjacent" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime comm) ~op:"dist_graph_create_adjacent" ~bytes:0;
  let rt = Comm.runtime comm in
  let n = Comm.size comm in
  Array.iter (Comm.check_rank comm) sources;
  Array.iter (Comm.check_rank comm) destinations;
  Runtime.advance_clock rt (Comm.world_rank comm)
    (float_of_int n *. rt.Runtime.model.Net_model.topo_setup_per_rank);
  (* Heavy assertion: edge symmetry — every destination must list us as a
     source.  Costs one alltoallv, hence only at level >= 2 (§III-G). *)
  if rt.Runtime.assertion_level >= 2 then begin
    let send_counts = Array.make n 0 in
    Array.iter (fun d -> send_counts.(d) <- send_counts.(d) + 1) destinations;
    let recv_counts = Coll.alltoall comm Datatype.int send_counts in
    let expected = Array.make n 0 in
    Array.iter (fun s -> expected.(s) <- expected.(s) + 1) sources;
    if recv_counts <> expected then
      Errdefs.usage_error
        "dist_graph_create_adjacent: sources/destinations are not symmetric";
    ()
  end;
  let context =
    let root_ctx = if Comm.rank comm = 0 then Some [| Runtime.fresh_context rt |] else None in
    (Coll.bcast comm Datatype.int ~root:0 root_ctx).(0)
  in
  let shared = Comm.get_or_create_shared rt ~context ~group:(Comm.group comm) in
  Comm.attach rt shared ~rank:(Comm.rank comm)
    ~topology:{ Comm.sources = Array.copy sources; destinations = Array.copy destinations }

(* ------------------------------------------------------------------ *)
(* ULFM: shrink and agree *)

let live_members comm =
  let rt = Comm.runtime comm in
  Array.to_list (Comm.group comm)
  |> List.mapi (fun r w -> (r, w))
  |> List.filter (fun (_, w) -> not (Runtime.is_failed rt w))
  |> List.map fst

(* Build a new communicator from the surviving processes.  Usable on a
   revoked communicator (that is its purpose). *)
let shrink comm : Comm.t =
  let rt = Comm.runtime comm in
  Runtime.check_alive rt (Comm.world_rank comm);
  Runtime.record rt ~op:"comm_shrink" ~bytes:0;
  let shared = comm.Comm.shared in
  let me = Comm.world_rank comm in
  (* The rendezvous cell is cross-rank state: creation and the arrival
     bookkeeping serialize on the runtime lock in multicore mode.
     [Runtime.fresh_context] takes the same (non-reentrant) lock, so the
     candidate context is allocated outside; if another rank installed
     the cell first, the id is simply discarded (context numbering skips
     one — harmless). *)
  let state =
    match Runtime.locked rt (fun () -> shared.Comm.pending_shrink) with
    | Some s -> s
    | None -> (
        let ctx = Runtime.fresh_context rt in
        Runtime.locked rt @@ fun () ->
        match shared.Comm.pending_shrink with
        | Some s -> s
        | None ->
            let s =
              {
                Comm.sh_context = ctx;
                sh_arrived = [];
                sh_max_clock = 0.;
                sh_done = 0;
                sh_survivors = None;
              }
            in
            shared.Comm.pending_shrink <- Some s;
            s)
  in
  Runtime.locked rt (fun () ->
      state.Comm.sh_arrived <- Comm.rank comm :: state.Comm.sh_arrived;
      state.Comm.sh_max_clock <- Float.max state.Comm.sh_max_clock (Runtime.clock rt me));
  Runtime.bump_progress rt;
  let all_survivors_arrived () =
    let live = live_members comm in
    List.for_all (fun r -> List.mem r state.Comm.sh_arrived) live
  in
  if not (all_survivors_arrived ()) then
    Scheduler.park
      ~describe:(fun () -> Printf.sprintf "comm_shrink on rank %d" (Comm.rank comm))
      ~poll:(fun () -> if all_survivors_arrived () then Some () else None);
  (* Survivors, ordered by old comm rank — decided once, by the first
     rank through the rendezvous.  Ranks resuming later must reuse that
     decision: a member may have died in between, and recomputing would
     give them a different group for the same context (tripping the
     registry's group-equality check).  A dead rank left in the stored
     group is handled by the next recovery round. *)
  let survivors =
    Runtime.locked rt (fun () ->
        match state.Comm.sh_survivors with
        | Some s -> s
        | None ->
            let s = List.sort compare (live_members comm) in
            state.Comm.sh_survivors <- Some s;
            s)
  in
  let world_ranks = Array.of_list (List.map (Comm.world_of_rank comm) survivors) in
  let new_group = Group.of_ranks world_ranks in
  let new_shared = Comm.get_or_create_shared rt ~context:state.Comm.sh_context ~group:new_group in
  (* Modelled cost of the underlying agreement protocol. *)
  let s = Array.length world_ranks in
  let rounds = if s <= 1 then 0 else int_of_float (ceil (log (float_of_int s) /. log 2.)) in
  Runtime.sync_clock rt me
    (state.Comm.sh_max_clock
    +. (2. *. float_of_int rounds
       *. (rt.Runtime.model.Net_model.latency +. rt.Runtime.model.Net_model.send_overhead)));
  (* Clear the rendezvous once every survivor that can still pass has
     done so.  Count only currently-live survivors: a member that died
     mid-shrink will never pass, and must not pin the rendezvous (which
     would poison the next shrink on this communicator).  Clearing early
     is harmless — in-flight shrinkers hold direct references to
     [state]. *)
  let passable =
    List.length
      (List.filter
         (fun r -> not (Runtime.is_failed rt (Comm.world_of_rank comm r)))
         survivors)
  in
  Runtime.locked rt (fun () ->
      state.Comm.sh_done <- state.Comm.sh_done + 1;
      if state.Comm.sh_done >= passable then shared.Comm.pending_shrink <- None);
  let my_new_rank =
    let rec index i = function
      | [] -> Errdefs.usage_error "shrink: internal error, self not in survivor list"
      | r :: _ when r = Comm.rank comm -> i
      | _ :: rest -> index (i + 1) rest
    in
    index 0 survivors
  in
  Comm.attach rt new_shared ~rank:my_new_rank

(* Agreement states, keyed by (runtime id, context, generation).
   [ag_result] is the agreed value, decided by the first rank through the
   rendezvous; later ranks must reuse it — if a contributor dies between
   two survivors' resumptions, recomputing would let them disagree on the
   "agreed" value, which defeats the operation. *)
type agree_state = {
  mutable ag_arrived : (int * bool) list;  (* (comm rank, contribution) *)
  mutable ag_max_clock : float;
  mutable ag_done : int;
  mutable ag_result : bool option;
}

let agree_states : (int * int * int, agree_state) Hashtbl.t = Hashtbl.create 16

(* Fault-tolerant agreement: returns the logical AND of the contributions
   of all

   surviving ranks.  Usable even when some members have failed. *)
let agree comm (value : bool) : bool =
  let rt = Comm.runtime comm in
  Runtime.check_alive rt (Comm.world_rank comm);
  Runtime.record rt ~op:"comm_agree" ~bytes:0;
  let me = Comm.world_rank comm in
  let gen = comm.Comm.my_agree_gen in
  comm.Comm.my_agree_gen <- gen + 1;
  let key = (rt.Runtime.id, Comm.context comm, gen) in
  (* Cross-rank rendezvous cell: serialize creation and arrival. *)
  let state =
    Runtime.locked rt (fun () ->
        let state =
          match Hashtbl.find_opt agree_states key with
          | Some s -> s
          | None ->
              let s =
                { ag_arrived = []; ag_max_clock = 0.; ag_done = 0; ag_result = None }
              in
              Hashtbl.replace agree_states key s;
              s
        in
        state.ag_arrived <- (Comm.rank comm, value) :: state.ag_arrived;
        state.ag_max_clock <- Float.max state.ag_max_clock (Runtime.clock rt me);
        state)
  in
  Runtime.bump_progress rt;
  let all_arrived () =
    let live = live_members comm in
    List.for_all (fun r -> List.mem_assoc r state.ag_arrived) live
  in
  if not (all_arrived ()) then
    Scheduler.park
      ~describe:(fun () -> Printf.sprintf "comm_agree on rank %d" (Comm.rank comm))
      ~poll:(fun () -> if all_arrived () then Some () else None);
  let live = live_members comm in
  (* The agreed value is decided once, by the first rank to resume; later
     ranks reuse it even if the live set has changed since. *)
  let result =
    Runtime.locked rt (fun () ->
        match state.ag_result with
        | Some r -> r
        | None ->
            let r =
              List.fold_left
                (fun acc r ->
                  acc && (try List.assoc r state.ag_arrived with Not_found -> true))
                true live
            in
            state.ag_result <- Some r;
            r)
  in
  let s = List.length live in
  let rounds = if s <= 1 then 0 else int_of_float (ceil (log (float_of_int s) /. log 2.)) in
  Runtime.sync_clock rt me
    (state.ag_max_clock
    +. (2. *. float_of_int rounds
       *. (rt.Runtime.model.Net_model.latency +. rt.Runtime.model.Net_model.send_overhead)));
  Runtime.locked rt (fun () ->
      state.ag_done <- state.ag_done + 1;
      if state.ag_done >= s then Hashtbl.remove agree_states key);
  result
