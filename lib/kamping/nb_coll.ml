(* Non-blocking collectives through the ownership-safe result interface:
   the collective's output is only reachable via wait/test, like the
   point-to-point results of §III-E.

   Progress follows the runtime's deferred semantics (no asynchronous
   progress: the collective advances inside wait/test, which every rank
   must reach — post, do independent work, complete). *)

open Mpisim

let c = Communicator.mpi

let of_deferred (req : Request.t) (cell : 'a array option ref) : 'a array Nb.t =
  Nb.of_request req ~fetch:(fun () ->
      match !cell with
      | Some v -> v
      | None -> Errdefs.usage_error "non-blocking collective completed without result")

let ibcast comm dt ~root ?data () : 'a array Nb.t =
  let req, cell = Coll.ibcast (c comm) dt ~root data in
  of_deferred req cell

let iallreduce comm dt op (data : 'a array) : 'a array Nb.t =
  let req, cell = Coll.iallreduce (c comm) dt op data in
  of_deferred req cell

let ireduce_scatter comm dt op ?recv_counts (data : 'a array) : 'a array Nb.t =
  let mpi = c comm in
  let recv_counts =
    match recv_counts with
    | Some rc -> rc
    | None ->
        let size = Comm.size mpi and len = Array.length data in
        Array.init size (fun r -> (len / size) + if r < len mod size then 1 else 0)
  in
  let req, cell = Coll.ireduce_scatter mpi dt op ~recv_counts data in
  of_deferred req cell

(* Counts are inferred eagerly (one alltoall now); the data exchange is
   deferred to wait/test. *)
let ialltoallv comm dt ~send_counts ?recv_counts (data : 'a array) : 'a array Nb.t =
  let mpi = c comm in
  let recv_counts =
    match recv_counts with
    | Some rc -> rc
    | None -> Coll.alltoall mpi Datatype.int send_counts
  in
  let send_displs = Coll.exclusive_prefix_sum send_counts in
  let recv_displs = Coll.exclusive_prefix_sum recv_counts in
  let req, cell =
    Coll.ialltoallv mpi dt ~send_counts ~send_displs ~recv_counts ~recv_displs data
  in
  of_deferred req cell

let ibarrier comm : unit Nb.t =
  let req = Coll.ibarrier (c comm) in
  Nb.of_request req ~fetch:(fun () -> ())
