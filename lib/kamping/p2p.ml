(* High-level point-to-point operations.

   Improvements over the raw interface (paper §III):
   - receives are dynamic by default: no count parameter, the result is
     returned by value with exactly the received size;
   - receives into existing storage take a resize policy;
   - tags default to 0. *)

open Mpisim

let c = Communicator.mpi

(* Wrap a blocking operation in a cat:"kamping" span when tracing is on.
   Plain [send] stays unwrapped — it is the hottest path and the runtime
   already leaves it span-free for the same reason; its injection instant
   (cat "sim"/"send") is the record of it.  Everything that can block
   (synchronous sends and all receives) gets a span, so waits show up as
   bars in the trace rather than gaps. *)
let traced comm ~name f =
  let mpi = c comm in
  let rt = Comm.runtime mpi in
  if Trace.enabled rt.Runtime.trace then
    Runtime.with_span rt (Comm.world_rank mpi) ~cat:"kamping" ~name f
  else f ()

let send comm dt ~dest ?tag (data : 'a array) = P2p.send (c comm) dt ~dest ?tag data

let send_single comm dt ~dest ?tag (x : 'a) = P2p.send (c comm) dt ~dest ?tag [| x |]

let ssend comm dt ~dest ?tag (data : 'a array) =
  traced comm ~name:"ssend" (fun () -> P2p.ssend (c comm) dt ~dest ?tag data)

let recv comm dt ?source ?tag () : 'a array =
  traced comm ~name:"recv" (fun () -> fst (P2p.recv (c comm) dt ?source ?tag ()))

let recv_with_status comm dt ?source ?tag () : 'a array * Status.t =
  traced comm ~name:"recv" (fun () -> P2p.recv (c comm) dt ?source ?tag ())

let recv_single comm dt ?source ?tag () : 'a =
  let data, _ =
    traced comm ~name:"recv" (fun () -> P2p.recv (c comm) dt ?source ?tag ())
  in
  if Array.length data <> 1 then
    Errdefs.usage_error "recv_single: expected 1 element, got %d" (Array.length data);
  data.(0)

let recv_into comm dt ?(policy = Resize_policy.default) ?source ?tag (buf : 'a Vec.t) :
    Status.t =
  let data, status =
    traced comm ~name:"recv" (fun () -> P2p.recv (c comm) dt ?source ?tag ())
  in
  Vec.write_array policy buf data;
  status

let probe comm ?source ?tag () : Status.t =
  traced comm ~name:"probe" (fun () -> P2p.probe (c comm) ?source ?tag ())

let iprobe comm ?source ?tag () : Status.t option = P2p.iprobe (c comm) ?source ?tag ()

let sendrecv comm dt ~dest ?send_tag ~source ?recv_tag (data : 'a array) : 'a array =
  traced comm ~name:"sendrecv" (fun () ->
      fst (P2p.sendrecv (c comm) dt ~dest ?send_tag ~source ?recv_tag data))
