(* High-level persistent operations (MPI-4 surface, paper §III).

   The binding layer's job is the same as everywhere else: compute the
   parameters MPI makes the caller spell out.  [send_init] defaults to
   the whole buffer; [reduce_scatter_init] defaults [recv_counts] to an
   equal split.  The returned {!Mpisim.Request.p} is cycled with
   {!start}/{!wait} — all per-call setup (algorithm selection, datatype
   plan, counter handles, working buffers) was paid once at init, so the
   steady state adds no binding-layer overhead on top of the transport. *)

open Mpisim

type comm = Communicator.t

let c = Communicator.mpi

let send_init comm dt ~dest ?tag (data : 'a array) : Request.p =
  P2p.send_init (c comm) dt ~dest ?tag data ~pos:0 ~count:(Array.length data)

let recv_init comm dt ?source ?tag (into : 'a array) : Request.p =
  P2p.recv_init (c comm) dt ?source ?tag into

let bcast_init comm dt ?root (buf : 'a array) : Request.p =
  let root = Option.value root ~default:0 in
  Coll.bcast_init (c comm) dt ~root buf

let allreduce_init comm dt op ~src ~dst : Request.p =
  Coll.allreduce_init (c comm) dt op ~src ~dst

(* [recv_counts] defaults to an equal split of [src] (which must then be
   divisible by the communicator size). *)
let reduce_scatter_init comm dt op ?recv_counts ~(src : 'a array) ~(dst : 'a array) () :
    Request.p =
  let mpi = c comm in
  let recv_counts =
    match recv_counts with
    | Some counts -> counts
    | None ->
        let p = Comm.size mpi in
        let n = Array.length src in
        if n mod p <> 0 then
          Errdefs.usage_error
            "reduce_scatter_init: buffer of %d elements not divisible by %d ranks (supply \
             ~recv_counts)"
            n p;
        Array.make p (n / p)
  in
  Coll.reduce_scatter_init mpi dt op ~recv_counts ~src ~dst

(* Request-cycle surface, re-exported so callers need only this module. *)
let start = Request.start

let wait = Request.wait_p

let test = Request.test_p

let free = Request.free_p
