(** High-level persistent operations (MPI-4 surface).

    [*_init] pays all per-call setup once — argument validation,
    algorithm selection, datatype plan, counter handles, working
    buffers — and returns a request cycled with {!start}/{!wait}:

    {[
      let req = Persistent.allreduce_init comm Datatype.int Reduce_op.int_sum ~src ~dst in
      for _ = 1 to iterations do
        (* ... update src in place ... *)
        Persistent.start req;
        Persistent.wait req
      done;
      Persistent.free req
    ]}

    Buffers are fixed at init per MPI persistent-request semantics; each
    cycle reads and writes their current contents. *)

type comm = Communicator.t

(** Persistent send of the whole buffer; each {!start} injects its
    current contents.  [tag] defaults to 0. *)
val send_init :
  comm -> 'a Mpisim.Datatype.t -> dest:int -> ?tag:int -> 'a array -> Mpisim.Request.p

(** Persistent receive into [into]; posted at {!start}, unpacked at
    {!wait}. *)
val recv_init :
  comm -> 'a Mpisim.Datatype.t -> ?source:int -> ?tag:int -> 'a array -> Mpisim.Request.p

(** Persistent broadcast of the root's buffer contents into every rank's
    buffer.  [root] defaults to 0. *)
val bcast_init : comm -> 'a Mpisim.Datatype.t -> ?root:int -> 'a array -> Mpisim.Request.p

(** Persistent allreduce of [src] into [dst] each cycle. *)
val allreduce_init :
  comm ->
  'a Mpisim.Datatype.t ->
  'a Mpisim.Reduce_op.t ->
  src:'a array ->
  dst:'a array ->
  Mpisim.Request.p

(** Persistent reduce-scatter; [recv_counts] defaults to an equal split
    of [src] (its length must then be divisible by the communicator
    size). *)
val reduce_scatter_init :
  comm ->
  'a Mpisim.Datatype.t ->
  'a Mpisim.Reduce_op.t ->
  ?recv_counts:int array ->
  src:'a array ->
  dst:'a array ->
  unit ->
  Mpisim.Request.p

(** {1 Request cycle (re-exports of {!Mpisim.Request})} *)

val start : Mpisim.Request.p -> unit

(** Complete the active cycle (no-op on an inactive request). *)
val wait : Mpisim.Request.p -> unit

(** [true] and completes if the cycle can finish now; [true] if
    inactive. *)
val test : Mpisim.Request.p -> bool

(** Mark the request unusable; it must be inactive. *)
val free : Mpisim.Request.p -> unit
