(** High-level collectives with default-parameter computation (paper
    §III-A, §III-B).

    OCaml's optional labelled arguments play the role of KaMPIng's named
    parameters: any subset of the MPI-level arguments can be supplied, by
    name and in any order; omitted ones are computed by the library, with
    extra communication only when unavoidable:

    - send counts default to the send buffer's length;
    - [allgatherv] receive counts default to an allgather of the send
      counts; [alltoallv]'s to an alltoall of the send counts;
      [gatherv]'s to a gather of the send counts;
    - displacements default to exclusive prefix sums.

    Operations come in up to three forms:
    - [op]: returns the receive buffer by value;
    - [op_full]: additionally returns the computed out-parameters in a
      result record with [extract_*] accessors (§III-B);
    - [op_into]: writes into a caller {!Vec.t} under a {!Resize_policy.t}
      for allocation-free steady states (§III-C).

    When every parameter is supplied, exactly one underlying collective is
    issued and no auxiliary allocation happens — the zero-overhead path,
    verified by the profiling tests and the Bechamel benchmarks. *)

open Mpisim

type comm = Communicator.t

(** Result record of vector collectives. *)
type 'a vector_result = {
  recv_buf : 'a array;
  recv_counts : int array;
  recv_displs : int array;
}

val extract_recv_buf : 'a vector_result -> 'a array

val extract_recv_counts : 'a vector_result -> int array

val extract_recv_displs : 'a vector_result -> int array

val exclusive_prefix_sum : int array -> int array

(** {1 Broadcast} *)

(** The root passes [~data]; every rank returns the payload. *)
val bcast : comm -> 'a Datatype.t -> root:int -> ?data:'a array -> unit -> 'a array

val bcast_single : comm -> 'a Datatype.t -> root:int -> ?value:'a -> unit -> 'a

(** {1 Gather family} *)

val allgather : comm -> 'a Datatype.t -> 'a array -> 'a array

(** In-place allgather (the send_recv_buf idiom, §III-G): slot [rank] of
    the buffer is this rank's contribution; all slots are filled in place
    and the array is also returned. *)
val allgather_inplace : comm -> 'a Datatype.t -> 'a array -> 'a array

val allgatherv_full :
  comm ->
  'a Datatype.t ->
  ?send_count:int ->
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  'a array ->
  'a vector_result

val allgatherv :
  comm ->
  'a Datatype.t ->
  ?send_count:int ->
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  'a array ->
  'a array

val allgatherv_into :
  comm ->
  'a Datatype.t ->
  ?policy:Resize_policy.t ->
  ?send_count:int ->
  ?recv_counts:int array ->
  recv_buf:'a Vec.t ->
  'a array ->
  unit

val gather : comm -> 'a Datatype.t -> root:int -> 'a array -> 'a array

val gatherv_full :
  comm ->
  'a Datatype.t ->
  root:int ->
  ?send_count:int ->
  ?recv_counts:int array ->
  'a array ->
  'a vector_result

val gatherv :
  comm ->
  'a Datatype.t ->
  root:int ->
  ?send_count:int ->
  ?recv_counts:int array ->
  'a array ->
  'a array

val scatter : comm -> 'a Datatype.t -> root:int -> ?data:'a array -> unit -> 'a array

val scatterv :
  comm ->
  'a Datatype.t ->
  root:int ->
  ?send_counts:int array ->
  ?data:'a array ->
  unit ->
  'a array

(** {1 All-to-all} *)

val alltoall : comm -> 'a Datatype.t -> 'a array -> 'a array

val alltoallv_full :
  comm ->
  'a Datatype.t ->
  send_counts:int array ->
  ?send_displs:int array ->
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  'a array ->
  'a vector_result

val alltoallv :
  comm ->
  'a Datatype.t ->
  send_counts:int array ->
  ?send_displs:int array ->
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  'a array ->
  'a array

val alltoallv_into :
  comm ->
  'a Datatype.t ->
  ?policy:Resize_policy.t ->
  send_counts:int array ->
  ?recv_counts:int array ->
  recv_buf:'a Vec.t ->
  'a array ->
  unit

(** {1 Reductions} *)

val reduce : comm -> 'a Datatype.t -> 'a Reduce_op.t -> root:int -> 'a array -> 'a array

val allreduce : comm -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array

val allreduce_single : comm -> 'a Datatype.t -> 'a Reduce_op.t -> 'a -> 'a

(** Reduce element-wise, then scatter blocks of the result:
    [recv_counts.(r)] reduced elements go to rank [r].  Omitted
    [recv_counts] defaults to an as-even-as-possible split of the vector
    (the first [len mod p] ranks get one extra element) — computed
    locally, no extra communication. *)
val reduce_scatter :
  comm -> 'a Datatype.t -> 'a Reduce_op.t -> ?recv_counts:int array -> 'a array -> 'a array

(** [reduce_scatter] with the uniform block size [len / p] ([len] must be
    divisible by [p]). *)
val reduce_scatter_block : comm -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array

val scan : comm -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array

val scan_single : comm -> 'a Datatype.t -> 'a Reduce_op.t -> 'a -> 'a

val exscan : comm -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array option

(** Exclusive prefix with an explicit rank-0 value — avoids MPI_Exscan's
    undefined-on-rank-0 footgun. *)
val exscan_or : comm -> 'a Datatype.t -> 'a Reduce_op.t -> init:'a array -> 'a array -> 'a array

val exscan_single_or : comm -> 'a Datatype.t -> 'a Reduce_op.t -> init:'a -> 'a -> 'a

val barrier : comm -> unit
