(* Distributed measurement timer (the measurements facility of the
   reference library; supports the paper's algorithm-engineering workflow
   of §III-C: iterative refinement and analysis through experimentation).

   Each rank accumulates named durations on the runtime's virtual clock
   ([start]/[stop] may nest and repeat); [aggregate] is a collective that
   reduces every key across ranks to (min, mean, max) — the numbers a
   scaling study reports. *)

open Mpisim

type entry = { mutable total : float; mutable count : int; mutable started_at : float option }

type t = { comm : Communicator.t; entries : (string, entry) Hashtbl.t; mutable order : string list }

let create (comm : Communicator.t) : t =
  { comm; entries = Hashtbl.create 16; order = [] }

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e = { total = 0.; count = 0; started_at = None } in
      Hashtbl.replace t.entries key e;
      t.order <- key :: t.order;
      e

let now t =
  let mpi = Communicator.mpi t.comm in
  Runtime.clock (Comm.runtime mpi) (Comm.world_rank mpi)

(* Begin timing [key] on this rank.  Raises on double start.  Timer keys
   double as trace spans (cat "timer"), so measured phases line up with
   the operations they cover in the Chrome trace view. *)
let start t key =
  let e = entry t key in
  match e.started_at with
  | Some _ -> Errdefs.usage_error "Timer.start: %S already running" key
  | None ->
      e.started_at <- Some (now t);
      let mpi = Communicator.mpi t.comm in
      Trace.span_begin (Comm.runtime mpi).Runtime.trace ~rank:(Comm.world_rank mpi)
        ~cat:"timer" ~name:key

(* Stop timing [key]; accumulates the elapsed virtual time. *)
let stop t key =
  let e = entry t key in
  match e.started_at with
  | None -> Errdefs.usage_error "Timer.stop: %S is not running" key
  | Some t0 ->
      e.started_at <- None;
      e.total <- e.total +. (now t -. t0);
      e.count <- e.count + 1;
      let mpi = Communicator.mpi t.comm in
      Trace.span_end (Comm.runtime mpi).Runtime.trace ~rank:(Comm.world_rank mpi)
        ~cat:"timer" ~name:key

(* Time a closure under [key]. *)
let time t key f =
  start t key;
  Fun.protect ~finally:(fun () -> stop t key) f

(* Local view: (key, total seconds, start/stop count), in first-use
   order. *)
let local t : (string * float * int) list =
  List.rev_map
    (fun key ->
      let e = Hashtbl.find t.entries key in
      (key, e.total, e.count))
    t.order

type aggregate = { key : string; min : float; mean : float; max : float; count : int }

(* Componentwise (min, sum, max) on per-key triples: commutative and
   associative, so a tree reduction is valid. *)
let min_sum_max =
  Reduce_op.custom ~commutative:true ~name:"min_sum_max"
    (fun (m1, s1, x1) (m2, s2, x2) -> (Float.min m1 m2, s1 +. s2, Float.max x1 x2))

(* Collective: reduce every key across ranks.  All ranks must have used
   the same keys in the same order (checked at assertion level 2 through
   the collective trace).

   One allreduce total: each rank contributes a (total, total, total)
   triple per key and the custom op folds them to (min, sum, max)
   componentwise — not three allreduces per key, which dominated
   aggregation cost for fine-grained timers. *)
let aggregate (t : t) : aggregate list =
  let keys = List.rev t.order in
  if keys = [] then []
  else begin
    let entries =
      List.map
        (fun key ->
          let e = Hashtbl.find t.entries key in
          if e.started_at <> None then
            Errdefs.usage_error "Timer.aggregate: %S still running" key;
          (key, e))
        keys
    in
    let send =
      Array.of_list (List.map (fun (_, e) -> (e.total, e.total, e.total)) entries)
    in
    let reduced =
      Datatype.with_committed
        (Datatype.triple Datatype.float Datatype.float Datatype.float)
        (fun dt3 -> Collectives.allreduce t.comm dt3 min_sum_max send)
    in
    let size = float_of_int (Communicator.size t.comm) in
    let aggs =
      List.mapi
        (fun i ((key, e) : string * entry) ->
          let mn, sum, mx = reduced.(i) in
          { key; min = mn; mean = sum /. size; max = mx; count = e.count })
        entries
    in
    (* Publish the aggregates as timer.<key>.{min,mean,max}_seconds gauges:
       they land in the sorted --stats dump and become bench-diff-able
       metrics (the _seconds suffix marks them lower-is-better).  Every
       rank computes identical values, so the repeated sets are benign. *)
    let stats = (Comm.runtime (Communicator.mpi t.comm)).Runtime.stats in
    List.iter
      (fun a ->
        Stats.set (Stats.gauge stats ("timer." ^ a.key ^ ".min_seconds")) a.min;
        Stats.set (Stats.gauge stats ("timer." ^ a.key ^ ".mean_seconds")) a.mean;
        Stats.set (Stats.gauge stats ("timer." ^ a.key ^ ".max_seconds")) a.max)
      aggs;
    aggs
  end

let pp_aggregates ppf (aggs : aggregate list) =
  List.iter
    (fun a ->
      Format.fprintf ppf "%-24s min=%s mean=%s max=%s (%d timings)@." a.key
        (Sim_time.to_string a.min) (Sim_time.to_string a.mean) (Sim_time.to_string a.max)
        a.count)
    aggs
