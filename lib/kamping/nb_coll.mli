(** Non-blocking collectives through the ownership-safe result interface
    (§III-E applied to collectives): results are only reachable via
    {!Nb.wait}/{!Nb.test}.

    Progress semantics: as in MPI without asynchronous progress, the
    collective advances inside wait/test, which every rank must reach. *)

open Mpisim

val ibcast :
  Communicator.t -> 'a Datatype.t -> root:int -> ?data:'a array -> unit -> 'a array Nb.t

val iallreduce : Communicator.t -> 'a Datatype.t -> 'a Reduce_op.t -> 'a array -> 'a array Nb.t

(** Non-blocking reduce-scatter; omitted [recv_counts] defaults to an
    as-even-as-possible split, computed locally. *)
val ireduce_scatter :
  Communicator.t ->
  'a Datatype.t ->
  'a Reduce_op.t ->
  ?recv_counts:int array ->
  'a array ->
  'a array Nb.t

(** Counts are inferred eagerly (one alltoall at call time) when omitted;
    the data exchange is deferred. *)
val ialltoallv :
  Communicator.t ->
  'a Datatype.t ->
  send_counts:int array ->
  ?recv_counts:int array ->
  'a array ->
  'a array Nb.t

val ibarrier : Communicator.t -> unit Nb.t
