(* Explicit serialization for communication (paper §III-D3, Fig. 5/11).

   Heap-structured values (strings, maps, lists, ...) cannot be described
   by fixed-size datatypes; these operations encode them through a
   {!Serial.Codec.t} into a framed archive and ship the bytes.  Usage is
   explicit — never implicit as in Boost.MPI — because serialization has
   real allocation and CPU costs that zero-overhead bindings must not hide.

   [bcast] is the operation RAxML-NG's abstraction layer needed (§IV-C,
   Fig. 11): one call replaces manual size exchange + buffer management +
   binary (de)serialization. *)

open Mpisim

let c = Communicator.mpi

let send comm (codec : 'a Serial.Codec.t) ~dest ?tag (value : 'a) : unit =
  P2p.send_bytes (c comm) ~dest ?tag (Serial.Archive.encode codec value)

let recv comm (codec : 'a Serial.Codec.t) ?source ?tag () : 'a =
  let payload, _ = P2p.recv_bytes (c comm) ?source ?tag () in
  Serial.Archive.decode codec payload

let recv_with_status comm (codec : 'a Serial.Codec.t) ?source ?tag () : 'a * Status.t =
  let payload, status = P2p.recv_bytes (c comm) ?source ?tag () in
  (Serial.Archive.decode codec payload, status)

let bcast_tag = P2p.internal_tag 32

(* Binomial-tree broadcast of a serialized value; root passes [~value]. *)
let bcast comm (codec : 'a Serial.Codec.t) ~root ?value () : 'a =
  let mpi = c comm in
  Comm.check_collective mpi ~op:"bcast_serialized" ~root ~ty:"";
  Runtime.record (Comm.runtime mpi) ~op:"bcast_serialized" ~bytes:0;
  let n = Communicator.size comm in
  let r = Communicator.rank comm in
  let vrank = (r - root + n) mod n in
  let real v = (v + root) mod n in
  let payload = ref Bytes.empty in
  if r = root then begin
    match value with
    | Some v -> payload := Serial.Archive.encode codec v
    | None -> Errdefs.usage_error "Serialized.bcast: root must provide a value"
  end;
  if n > 1 then begin
    let mask = ref 1 in
    if vrank <> 0 then begin
      while vrank land !mask = 0 do
        mask := !mask lsl 1
      done;
      let b, _ = P2p.recv_bytes mpi ~source:(real (vrank - !mask)) ~tag:bcast_tag () in
      payload := b
    end
    else
      while !mask < n do
        mask := !mask lsl 1
      done;
    mask := !mask lsr 1;
    while !mask > 0 do
      if vrank + !mask < n then
        P2p.send_bytes mpi ~dest:(real (vrank + !mask)) ~tag:bcast_tag !payload;
      mask := !mask lsr 1
    done
  end;
  match value with
  | Some v when r = root -> v (* avoid decoding our own encoding *)
  | Some _ | None -> Serial.Archive.decode codec !payload

(* Gather serialized values at the root (one list entry per rank, in rank
   order); non-roots receive the empty list. *)
let gather comm (codec : 'a Serial.Codec.t) ~root (value : 'a) : 'a list =
  let mpi = c comm in
  Comm.check_collective mpi ~op:"gather_serialized" ~root ~ty:"";
  Runtime.record (Comm.runtime mpi) ~op:"gather_serialized" ~bytes:0;
  let n = Communicator.size comm in
  let r = Communicator.rank comm in
  if r <> root then begin
    P2p.send_bytes mpi ~dest:root ~tag:bcast_tag (Serial.Archive.encode codec value);
    []
  end
  else
    List.init n (fun src ->
        if src = root then value
        else begin
          let b, _ = P2p.recv_bytes mpi ~source:src ~tag:bcast_tag () in
          Serial.Archive.decode codec b
        end)

(* All-to-all of heterogeneous serialized messages: input and output are
   (rank, value) pairs. *)
let sparse_exchange comm (codec : 'a Serial.Codec.t) (outgoing : (int * 'a) list) :
    (int * 'a) list =
  let mpi = c comm in
  let n = Communicator.size comm in
  (* Count how many messages each rank will receive. *)
  let send_counts = Array.make n 0 in
  List.iter (fun (dest, _) -> send_counts.(dest) <- send_counts.(dest) + 1) outgoing;
  let recv_counts = Coll.alltoall mpi Datatype.int send_counts in
  List.iter
    (fun (dest, v) -> P2p.send_bytes mpi ~dest ~tag:bcast_tag (Serial.Archive.encode codec v))
    outgoing;
  let incoming = ref [] in
  Array.iteri
    (fun src cnt ->
      for _ = 1 to cnt do
        let b, _ = P2p.recv_bytes mpi ~source:src ~tag:bcast_tag () in
        incoming := (src, Serial.Archive.decode codec b) :: !incoming
      done)
    recv_counts;
  List.rev !incoming
