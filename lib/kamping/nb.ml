(* Ownership-safe non-blocking communication (paper §III-E).

   A ['a Nb.t] is a "non-blocking MPI result": it encapsulates the request
   *and* the data involved in the operation.  The only way to get the data
   is [wait] (blocks, returns it) or [test] (returns [Some data] once the
   operation has completed, [None] before).  For sends, the buffer is
   conceptually moved into the call and handed back on completion, so
   well-typed user code cannot read or reuse a buffer that is still in
   flight — the analogue of the C++ ownership model, and the analogue of
   what rsmpi gets from Rust's borrow checker. *)

open Mpisim

let c = Communicator.mpi

(* Mark the post of a non-blocking operation on the trace ([a] = peer rank,
   [-1] for wildcard receives); completion shows up through the runtime's
   match/park events.  The post carries the rank's current Lamport clock
   ([d]), so causal analyses can order posts against the send/match
   events around them. *)
let post_instant comm ~name ~peer =
  let mpi = c comm in
  let rt = Comm.runtime mpi in
  if Trace.enabled rt.Runtime.trace then begin
    let rank = Comm.world_rank mpi in
    Trace.instant_d rt.Runtime.trace ~rank ~cat:"kamping" ~name ~a:peer ~b:(-1) ~c:(-1)
      ~d:(Runtime.lamport_clock rt rank)
  end

type 'a t = { request : Request.t; fetch : unit -> 'a; mutable fetched : 'a option }

let of_request ~fetch request = { request; fetch; fetched = None }

let wait (t : 'a t) : 'a =
  match t.fetched with
  | Some v -> v
  | None ->
      (* An already-complete request (pool drain, [forget]-shared handles)
         only needs its payload fetched; re-entering [Request.wait] would
         count as a double-wait for the sanitizer, which is reserved for
         user code waiting a raw request twice. *)
      if not (Request.is_complete t.request) then
        ignore (Request.wait t.request : Status.t);
      let v = t.fetch () in
      t.fetched <- Some v;
      v

let test (t : 'a t) : 'a option =
  match t.fetched with
  | Some v -> Some v
  | None ->
      (* Same guard as [wait]: a request completed elsewhere ([forget]-shared
         handles, pool drains) only needs its payload fetched, and testing it
         again through [Request.test] would read as a completion call on an
         inactive request to the sanitizer. *)
      if Request.is_complete t.request || Request.test t.request <> None then begin
        let v = t.fetch () in
        t.fetched <- Some v;
        Some v
      end
      else None

let is_complete (t : 'a t) = t.fetched <> None || Request.is_complete t.request

(* Discard the payload; useful for pooling heterogeneous results. *)
let forget (t : 'a t) : unit t =
  { request = t.request; fetch = (fun () -> ignore (t.fetch ())); fetched = None }

(* Heavy-level send-buffer integrity: hash the buffer when the send is
   posted and hand back a fetch that re-hashes at completion — a mismatch
   means the program mutated a buffer whose ownership it had transferred.
   At lighter levels the fetch is the plain identity closure. *)
let guarded_send_fetch comm ~op (data : 'a array) =
  let mpi = c comm in
  let chk = (Comm.runtime mpi).Runtime.check in
  if not (Check.heavy chk) then fun () -> data
  else begin
    let posted = Check.buffer_hash data in
    fun () ->
      Check.check_send_buffer chk ~rank:(Comm.world_rank mpi) ~op ~posted
        ~now:(Check.buffer_hash data);
      data
  end

(* Send with buffer ownership transfer: [data] is moved into the call and
   returned by [wait]/[test] once the operation has completed (Fig. 6). *)
let isend comm dt ~dest ?tag (data : 'a array) : 'a array t =
  post_instant comm ~name:"isend" ~peer:dest;
  let fetch = guarded_send_fetch comm ~op:"isend" data in
  let request = P2p.isend (c comm) dt ~dest ?tag data in
  of_request request ~fetch

(* Synchronous-mode send: completes only when the receiver has matched. *)
let issend comm dt ~dest ?tag (data : 'a array) : 'a array t =
  post_instant comm ~name:"issend" ~peer:dest;
  let fetch = guarded_send_fetch comm ~op:"issend" data in
  let request = P2p.issend (c comm) dt ~dest ?tag data in
  of_request request ~fetch

(* Dynamic non-blocking receive: the result buffer is created on completion
   with exactly the received size, so there is no window in which the user
   could observe a partially received buffer. *)
let irecv comm dt ?source ?tag () : 'a array t =
  post_instant comm ~name:"irecv" ~peer:(Option.value source ~default:(-1));
  let dreq = P2p.irecv_dyn (c comm) dt ?source ?tag () in
  of_request dreq.P2p.base ~fetch:(fun () ->
      match !(dreq.P2p.cell) with
      | Some data -> data
      | None -> Errdefs.usage_error "irecv: completed without data")

(* Receive with a known element count (capacity check only). *)
let irecv_counted comm dt ?source ?tag ~count () : 'a array t =
  post_instant comm ~name:"irecv" ~peer:(Option.value source ~default:(-1));
  let buf = Array.make count (Datatype.zero_elem dt) in
  let request = P2p.irecv_into (c comm) dt ?source ?tag buf in
  of_request request ~fetch:(fun () -> buf)
