(* High-level collectives with default-parameter computation (paper §III-A,
   §III-B).

   OCaml's optional labelled arguments play the role of KaMPIng's named
   parameters: every MPI-level argument can be supplied — in any order, by
   name — and every omitted argument is computed by the library, using
   extra communication only when unavoidable:

   - send counts default to the length of the send buffer;
   - receive counts of [allgatherv] default to an allgather of the send
     counts; of [alltoallv] to an alltoall of the send counts; of [gatherv]
     to a gather of the send counts;
   - displacements default to the exclusive prefix sum of the counts.

   Each operation comes in up to three forms:
   - [op]: returns the receive buffer by value (the paper's F.20 rule);
   - [op_full]: additionally returns the computed out-parameters in a
     result record with [extract_*] accessors (§III-B);
   - [op_into]: writes into a caller-supplied {!Vec.t} under a
     {!Resize_policy.t}, for allocation-free steady states (§III-C).

   When the caller supplies every parameter, exactly one underlying
   runtime collective is issued and no auxiliary allocation happens — the
   zero-overhead path, checked by the profiling tests. *)

open Mpisim

type comm = Communicator.t

let c = Communicator.mpi

(* Trace span around one binding-layer call.  Wrappers shadow the [_full]
   variants (and direct entry points) below, so any default-parameter
   communication — e.g. the count allgather of [allgatherv] — shows up
   inside the kamping span, nested above the underlying [Coll] spans. *)
let traced comm ~op f =
  let mpi = c comm in
  Runtime.with_span (Comm.runtime mpi) (Comm.world_rank mpi) ~cat:"kamping" ~name:op f

(* Result record for vector collectives, with paper-style extractors. *)
type 'a vector_result = {
  recv_buf : 'a array;
  recv_counts : int array;
  recv_displs : int array;
}

let extract_recv_buf r = r.recv_buf

let extract_recv_counts r = r.recv_counts

let extract_recv_displs r = r.recv_displs

let exclusive_prefix_sum (counts : int array) =
  let n = Array.length counts in
  let displs = Array.make n 0 in
  for i = 1 to n - 1 do
    displs.(i) <- displs.(i - 1) + counts.(i - 1)
  done;
  displs

(* ------------------------------------------------------------------ *)
(* Broadcast *)

(* Root passes [~data]; other ranks omit it and receive by value. *)
let bcast comm dt ~root ?data () : 'a array =
  traced comm ~op:"bcast" (fun () -> Coll.bcast (c comm) dt ~root data)

let bcast_single comm dt ~root ?value () : 'a =
  traced comm ~op:"bcast" (fun () ->
      (Coll.bcast (c comm) dt ~root (Option.map (fun v -> [| v |]) value)).(0))

(* ------------------------------------------------------------------ *)
(* Allgather *)

let allgather comm dt (send_buf : 'a array) : 'a array =
  traced comm ~op:"allgather" (fun () -> Coll.allgather (c comm) dt send_buf)

(* In-place allgather (the send_recv_buf idiom, §III-G): element [rank]
   of [buf] is this rank's contribution; all other slots are filled.  The
   array is modified in place and also returned for pipeline style. *)
let allgather_inplace comm dt (buf : 'a array) : 'a array =
  traced comm ~op:"allgather" @@ fun () ->
  let n = Communicator.size comm in
  if Array.length buf mod n <> 0 then
    Errdefs.usage_error "allgather_inplace: buffer length %d not divisible by %d"
      (Array.length buf) n;
  let count = Array.length buf / n in
  let mine = Array.sub buf (Communicator.rank comm * count) count in
  let gathered = Coll.allgather (c comm) dt mine in
  Array.blit gathered 0 buf 0 (Array.length buf);
  buf

(* ------------------------------------------------------------------ *)
(* Allgatherv *)

let allgatherv_full comm dt ?send_count ?recv_counts ?recv_displs (send_buf : 'a array) :
    'a vector_result =
  traced comm ~op:"allgatherv" @@ fun () ->
  let mpi = c comm in
  let send_count = match send_count with Some s -> s | None -> Array.length send_buf in
  let send_view =
    if send_count = Array.length send_buf then send_buf else Array.sub send_buf 0 send_count
  in
  let recv_counts =
    match recv_counts with
    | Some rc -> rc
    | None -> Coll.allgather mpi Datatype.int [| send_count |]
  in
  let recv_displs =
    match recv_displs with Some d -> d | None -> exclusive_prefix_sum recv_counts
  in
  let recv_buf = Coll.allgatherv mpi dt ~recv_counts send_view in
  { recv_buf; recv_counts; recv_displs }

let allgatherv comm dt ?send_count ?recv_counts ?recv_displs (send_buf : 'a array) :
    'a array =
  (allgatherv_full comm dt ?send_count ?recv_counts ?recv_displs send_buf).recv_buf

let allgatherv_into comm dt ?(policy = Resize_policy.default) ?send_count ?recv_counts
    ~(recv_buf : 'a Vec.t) (send_buf : 'a array) : unit =
  let r = allgatherv_full comm dt ?send_count ?recv_counts send_buf in
  Vec.write_array policy recv_buf r.recv_buf

(* ------------------------------------------------------------------ *)
(* Gather / Gatherv / Scatter / Scatterv *)

let gather comm dt ~root (send_buf : 'a array) : 'a array =
  traced comm ~op:"gather" (fun () -> Coll.gather (c comm) dt ~root send_buf)

let gatherv_full comm dt ~root ?send_count ?recv_counts (send_buf : 'a array) :
    'a vector_result =
  traced comm ~op:"gatherv" @@ fun () ->
  let mpi = c comm in
  let send_count = match send_count with Some s -> s | None -> Array.length send_buf in
  let send_view =
    if send_count = Array.length send_buf then send_buf else Array.sub send_buf 0 send_count
  in
  let recv_counts =
    match recv_counts with
    | Some rc -> rc
    | None ->
        (* One extra gather of the counts; only the root keeps it. *)
        Coll.gather mpi Datatype.int ~root [| send_count |]
  in
  let is_root = Communicator.rank comm = root in
  let recv_buf =
    if is_root then Coll.gatherv mpi dt ~root ~recv_counts send_view
    else Coll.gatherv mpi dt ~root send_view
  in
  let recv_displs = if is_root then exclusive_prefix_sum recv_counts else [||] in
  { recv_buf; recv_counts; recv_displs }

let gatherv comm dt ~root ?send_count ?recv_counts (send_buf : 'a array) : 'a array =
  (gatherv_full comm dt ~root ?send_count ?recv_counts send_buf).recv_buf

let scatter comm dt ~root ?data () : 'a array =
  traced comm ~op:"scatter" (fun () -> Coll.scatter (c comm) dt ~root data)

let scatterv comm dt ~root ?send_counts ?data () : 'a array =
  traced comm ~op:"scatterv" (fun () -> Coll.scatterv (c comm) dt ~root ?send_counts data)

(* ------------------------------------------------------------------ *)
(* Alltoall / Alltoallv *)

let alltoall comm dt (send_buf : 'a array) : 'a array =
  traced comm ~op:"alltoall" (fun () -> Coll.alltoall (c comm) dt send_buf)

let alltoallv_full comm dt ~(send_counts : int array) ?send_displs ?recv_counts
    ?recv_displs (send_buf : 'a array) : 'a vector_result =
  traced comm ~op:"alltoallv" @@ fun () ->
  let mpi = c comm in
  let recv_counts =
    match recv_counts with
    | Some rc -> rc
    | None -> Coll.alltoall mpi Datatype.int send_counts
  in
  let recv_displs =
    match recv_displs with Some d -> d | None -> exclusive_prefix_sum recv_counts
  in
  let send_displs =
    match send_displs with Some d -> d | None -> exclusive_prefix_sum send_counts
  in
  let recv_buf =
    Coll.alltoallv mpi dt ~send_counts ~send_displs ~recv_counts ~recv_displs send_buf
  in
  { recv_buf; recv_counts; recv_displs }

let alltoallv comm dt ~send_counts ?send_displs ?recv_counts ?recv_displs
    (send_buf : 'a array) : 'a array =
  (alltoallv_full comm dt ~send_counts ?send_displs ?recv_counts ?recv_displs send_buf)
    .recv_buf

let alltoallv_into comm dt ?(policy = Resize_policy.default) ~send_counts ?recv_counts
    ~(recv_buf : 'a Vec.t) (send_buf : 'a array) : unit =
  let r = alltoallv_full comm dt ~send_counts ?recv_counts send_buf in
  Vec.write_array policy recv_buf r.recv_buf

(* ------------------------------------------------------------------ *)
(* Reductions *)

let reduce comm dt op ~root (send_buf : 'a array) : 'a array =
  traced comm ~op:"reduce" (fun () -> Coll.reduce (c comm) dt op ~root send_buf)

let allreduce comm dt op (send_buf : 'a array) : 'a array =
  traced comm ~op:"allreduce" (fun () -> Coll.allreduce (c comm) dt op send_buf)

let allreduce_single comm dt op (x : 'a) : 'a =
  traced comm ~op:"allreduce" (fun () -> Coll.allreduce_single (c comm) dt op x)

(* KaMPIng-style defaulting: with no [recv_counts], split the vector as
   evenly as possible (first [len mod p] ranks get one extra element). *)
let even_split ~len ~size =
  Array.init size (fun r -> (len / size) + if r < len mod size then 1 else 0)

let reduce_scatter comm dt op ?recv_counts (send_buf : 'a array) : 'a array =
  traced comm ~op:"reduce_scatter" (fun () ->
      let mpi = c comm in
      let recv_counts =
        match recv_counts with
        | Some rc -> rc
        | None -> even_split ~len:(Array.length send_buf) ~size:(Comm.size mpi)
      in
      Coll.reduce_scatter mpi dt op ~recv_counts send_buf)

let reduce_scatter_block comm dt op (send_buf : 'a array) : 'a array =
  traced comm ~op:"reduce_scatter" (fun () -> Coll.reduce_scatter_block (c comm) dt op send_buf)

let scan comm dt op (send_buf : 'a array) : 'a array =
  traced comm ~op:"scan" (fun () -> Coll.scan (c comm) dt op send_buf)

let scan_single comm dt op (x : 'a) : 'a =
  traced comm ~op:"scan" (fun () -> Coll.scan_single (c comm) dt op x)

let exscan comm dt op (send_buf : 'a array) : 'a array option =
  traced comm ~op:"exscan" (fun () -> Coll.exscan (c comm) dt op send_buf)

(* Exclusive prefix with an explicit value on rank 0 — avoids the
   undefined-on-rank-0 footgun of MPI_Exscan. *)
let exscan_or comm dt op ~(init : 'a array) (send_buf : 'a array) : 'a array =
  match exscan comm dt op send_buf with Some v -> v | None -> init

let exscan_single_or comm dt op ~(init : 'a) (x : 'a) : 'a =
  traced comm ~op:"exscan" (fun () ->
      match Coll.exscan_single (c comm) dt op x with Some v -> v | None -> init)

let barrier comm = traced comm ~op:"barrier" (fun () -> Coll.barrier (c comm))
