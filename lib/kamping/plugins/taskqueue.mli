(** Elastic fault-tolerant task queue: farm heterogeneous serialized
    tasks over a communicator with an exactly-once guarantee on recorded
    results, surviving stragglers, message chaos and rank death
    (including death of the master).

    Collective: every rank of [comm] calls {!run} with the same task
    table; every surviving rank returns the full result vector and the
    (possibly shrunken) communicator the run committed on.

    Exactly-once here means: a task function may {e execute} more than
    once — a straggler's lease expires and the task is re-dispatched, a
    worker dies mid-task, a recovery round re-runs unrecorded work — but
    exactly one execution's result enters the final vector, and every
    surplus completion is counted in the [taskqueue.duplicates_suppressed]
    stat.  The other [taskqueue.*] counters ({!val-run} registers
    [dispatched], [completed], [redispatched], [duplicates_suppressed],
    [leases_expired], [throttled], [checkpoints], [steals]) expose the
    scheduler's behavior to [--stats] and the bench gates.

    Fault tolerance is the DESIGN.md §10 protocol: local knowledge
    tables + master checkpoint replication to its successor, resync
    gather/bcast at the start of every {!Ulfm.run_with_recovery} attempt
    (so a re-elected master resumes without re-running recorded tasks),
    and a revoke-before-agree commit so all survivors leave together. *)

type mode =
  | Master_worker  (** pull-based: comm rank 0 owns leases and dispatch *)
  | Nbx
      (** decentralized bulk-synchronous rebalancing over the sparse
          (NBX) all-to-all plugin *)

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) result

type config = {
  mode : mode;
  lease_timeout : float;
      (** base virtual-time lease per dispatched task (master mode);
          expiry requeues the task *)
  lease_backoff : float;  (** lease multiplier per re-dispatch (>= 1) *)
  max_in_flight : int;  (** bound on simultaneously leased tasks *)
  rate : float;
      (** token-bucket dispatch rate, tasks per virtual second;
          [infinity] disables the limiter *)
  burst : int;  (** token-bucket capacity *)
  checkpoint_every : int;
      (** master replicates newly recorded results to its successor
          every this many completions *)
  batch : int;  (** tasks executed per NBX round before rebalancing *)
  max_recovery_retries : int;  (** recovery rounds before giving up *)
}

(** Validating constructor; every field defaults to a sane value
    ([Master_worker], 1 ms leases, backoff 2, unbounded window, limiter
    off, checkpoint every 16, batch 4, 8 recovery retries). *)
val config :
  ?mode:mode ->
  ?lease_timeout:float ->
  ?lease_backoff:float ->
  ?max_in_flight:int ->
  ?rate:float ->
  ?burst:int ->
  ?checkpoint_every:int ->
  ?batch:int ->
  ?max_recovery_retries:int ->
  unit ->
  config

(** [run ~cfg comm ~task_codec ~result_codec ?deps ~tasks ~exec ()]
    executes [exec id tasks.(id)] for every task id exactly once
    (as recorded) and returns the result vector on every surviving rank.

    [deps] (optional) gives each task a list of earlier task ids that
    must complete before it may start — a DAG by construction; invalid
    edges raise [Err_usage].  [exec] runs on whichever rank the scheduler
    places the task on; payloads and results travel through the given
    codecs.  Raises {!Ulfm.Failure_detected} when recovery retries are
    exhausted. *)
val run :
  ?cfg:config ->
  Kamping.Communicator.t ->
  task_codec:'a Serial.Codec.t ->
  result_codec:'b Serial.Codec.t ->
  ?deps:int list array ->
  tasks:'a array ->
  exec:(int -> 'a -> 'b) ->
  unit ->
  'b array * Kamping.Communicator.t
