(* Reproducible reduction (paper §V-C, Fig. 13; Stelz [45]).

   IEEE-754 addition is not associative, so the result of a parallel sum
   normally depends on the number of processors.  This plugin fixes the
   reduction order by conceptually reducing over a single binary tree whose
   leaves are the *global element indices* — independent of how the
   elements are distributed over ranks:

   - each rank decomposes its contiguous block of the global array into
     maximal index-aligned power-of-two segments and reduces each segment
     with a fixed pairwise tree ([tree_sum]), yielding a small "forest" of
     (level, index, value) nodes — at most 2*log2(n) + 2 of them;
   - forests are merged pairwise up a binomial tree over the ranks; merging
     combines sibling nodes (always left + right) into their parent, which
     is associative AND commutative on forests, so any combination order
     yields the same bits;
   - the root folds the surviving roots in descending-position order and
     broadcasts the result.

   Only O(log n) values travel per rank — faster than gathering all n/p
   elements to the root — and the result is bit-identical for every p. *)

open Mpisim

type node = { level : int; index : int; value : float }

(* Fixed-order pairwise summation of [len] elements starting at [pos];
   [len] is a power of two.  The combination tree depends only on global
   indices, never on the rank layout. *)
let rec tree_sum ~op (xs : float array) ~pos ~len =
  if len = 1 then xs.(pos)
  else begin
    let half = len / 2 in
    op (tree_sum ~op xs ~pos ~len:half) (tree_sum ~op xs ~pos:(pos + half) ~len:half)
  end

(* Decompose [offset, offset + length) into maximal aligned power-of-two
   segments and reduce each one. *)
let local_forest ~op (xs : float array) ~(offset : int) : node list =
  let length = Array.length xs in
  let rec go pos acc =
    if pos >= offset + length then List.rev acc
    else begin
      (* Largest power-of-two segment aligned at [pos] and fitting. *)
      let max_align = if pos = 0 then max_int else pos land -pos in
      let remaining = offset + length - pos in
      let seg = ref 1 in
      while !seg * 2 <= remaining && !seg * 2 <= max_align do
        seg := !seg * 2
      done;
      (* In the corner case where alignment allows less than fit, clamp. *)
      let seg = min !seg (if max_align < !seg then max_align else !seg) in
      let level = ref 0 in
      let s = ref seg in
      while !s > 1 do
        s := !s / 2;
        incr level
      done;
      let value = tree_sum ~op xs ~pos:(pos - offset) ~len:seg in
      go (pos + seg) ({ level = !level; index = pos / seg; value } :: acc)
    end
  in
  go offset []

(* Merge two forests: insert all nodes into a map, then repeatedly combine
   sibling pairs (left + right, in that order) into their parent. *)
let merge_forests ~op (a : node list) (b : node list) : node list =
  let tbl : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  let rec insert level index value =
    let sibling = index lxor 1 in
    match Hashtbl.find_opt tbl (level, sibling) with
    | Some sv ->
        Hashtbl.remove tbl (level, sibling);
        let left, right = if index land 1 = 0 then (value, sv) else (sv, value) in
        insert (level + 1) (index / 2) (op left right)
    | None -> Hashtbl.replace tbl (level, index) value
  in
  List.iter (fun n -> insert n.level n.index n.value) a;
  List.iter (fun n -> insert n.level n.index n.value) b;
  Hashtbl.fold (fun (level, index) value acc -> { level; index; value } :: acc) tbl []

(* Fold the final forest's roots in ascending global-position order. *)
let fold_forest ~op (forest : node list) : float =
  let by_position =
    List.sort
      (fun a b -> compare (a.index lsl a.level) (b.index lsl b.level))
      forest
  in
  match by_position with
  | [] -> 0.
  | first :: rest -> List.fold_left (fun acc n -> op acc n.value) first.value rest

let node_codec : node Serial.Codec.t =
  Serial.Codec.map ~name:"repro_node"
    ~inject:(fun (level, index, value) -> { level; index; value })
    ~project:(fun n -> (n.level, n.index, n.value))
    (Serial.Codec.triple Serial.Codec.int Serial.Codec.int Serial.Codec.float)

let forest_codec = Serial.Codec.list node_codec

let repro_tag = 4243

(* Reproducible global reduction of a distributed float array under an
   arbitrary associative operation [op] (plain constants, named functions
   or lambdas, as the paper's reduce supports): the result is
   bit-identical for any processor count and any block distribution.
   Collective; every rank receives the result. *)
let reduce (comm : Kamping.Communicator.t) ~(op : float -> float -> float)
    (local : float array) : float =
  let mpi = Kamping.Communicator.mpi comm in
  Comm.check_collective mpi ~op:"repro_reduce" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime mpi) ~op:"repro_reduce" ~bytes:0;
  let n = Kamping.Communicator.size comm in
  let r = Kamping.Communicator.rank comm in
  (* Global offset of our block: exclusive prefix sum of lengths. *)
  let offset =
    Kamping.Collectives.exscan_single_or comm Datatype.int Reduce_op.int_sum ~init:0
      (Array.length local)
  in
  let forest = ref (local_forest ~op local ~offset) in
  (* Binomial-tree merge towards rank 0 with serialized forests. *)
  let mask = ref 1 in
  let sent = ref false in
  while (not !sent) && !mask < n do
    if r land !mask <> 0 then begin
      Kamping.Serialized.send comm forest_codec ~dest:(r - !mask) ~tag:repro_tag !forest;
      sent := true
    end
    else begin
      if r + !mask < n then begin
        let other =
          Kamping.Serialized.recv comm forest_codec ~source:(r + !mask) ~tag:repro_tag ()
        in
        forest := merge_forests ~op !forest other
      end;
      mask := !mask lsl 1
    end
  done;
  let result = if r = 0 then Some [| fold_forest ~op !forest |] else None in
  (Kamping.Collectives.bcast comm Datatype.float ~root:0 ?data:result ()).(0)

(* Reproducible global sum: the common case. *)
let sum (comm : Kamping.Communicator.t) (local : float array) : float =
  reduce comm ~op:( +. ) local

(* Baseline 1: gather every element to the root, sum sequentially,
   broadcast.  Also reproducible, but ships n/p elements per rank. *)
let naive_gather_sum (comm : Kamping.Communicator.t) (local : float array) : float =
  let all = Kamping.Collectives.gatherv comm Datatype.float ~root:0 local in
  let result =
    if Kamping.Communicator.rank comm = 0 then
      Some [| Array.fold_left ( +. ) 0. all |]
    else None
  in
  (Kamping.Collectives.bcast comm Datatype.float ~root:0 ?data:result ()).(0)

(* Baseline 2: ordinary allreduce — fast but NOT reproducible across p
   (per-rank partial sums depend on the distribution). *)
let plain_allreduce_sum (comm : Kamping.Communicator.t) (local : float array) : float =
  let partial = Array.fold_left ( +. ) 0. local in
  Kamping.Collectives.allreduce_single comm Datatype.float Reduce_op.float_sum partial
