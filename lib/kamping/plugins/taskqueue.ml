(* Elastic fault-tolerant task queue (ROADMAP: the TUT-HPCLIB4D
   `scheduler.run!task(range)` pattern as a KaMPIng-style plugin).

   Farms a batch of heterogeneous serialized tasks over the ranks of a
   communicator and returns the full result vector on every surviving
   rank, with an exactly-once guarantee on the *recorded* results: a task
   function may run more than once (straggler re-dispatch, rank death),
   but exactly one execution's result reaches the final vector, and every
   surplus arrival is counted in taskqueue.duplicates_suppressed.

   Two scheduling modes:

   - [Master_worker]: pull-based.  Comm rank 0 owns the authoritative
     pending/leased/done sets; workers request work, execute, and report
     results.  Leases carry virtual-time deadlines: a straggler's lease
     expires and the task is re-dispatched with exponential backoff; the
     late original result is suppressed by the duplicate table.  A
     token-bucket rate limiter and a bounded in-flight window throttle
     dispatch under overload.
   - [Nbx]: decentralized bulk-synchronous work "stealing".  Tasks start
     id-mod-p partitioned; each round every rank executes up to [batch]
     local tasks, the ranks allgather queue loads and dependency
     completions, compute one deterministic rebalancing plan, and move
     task ids through the sparse (NBX) all-to-all plugin.

   Fault tolerance (both modes) is one [Ulfm.run_with_recovery] attempt
   around a resync + drain + replicate + agree sequence:

   - every rank keeps a local knowledge table of (task, origin, nonce) ->
     result for every execution it performed, every result it recorded,
     and every checkpoint entry replicated to it;
   - an attempt starts with a resync collective (gather knowledge at the
     root, i.e. the elected master = comm rank 0 of the current,
     possibly shrunken, communicator) that rebuilds the done set, so a
     re-elected master resumes without re-running any task whose result
     survives on any living rank;
   - the master additionally replicates the entries recorded since the
     last checkpoint to its successor every [checkpoint_every]
     completions, covering the double-fault schedule where a worker dies
     after reporting and the master dies before anyone else learns the
     result;
   - the run commits through [Ulfm.agree]: every rank returns only after
     all survivors agree the result vector is complete and the
     communicator intact, so no rank can leave while others still need it
     for recovery collectives.

   A killed worker is detected by the master's failed-member poll (or by
   a failed send/receive), the communicator is revoked so parked peers
   wake, survivors shrink, and in-flight leases of dead workers are
   requeued on the shrunken communicator.  A killed master is the same
   path seen from the workers: their blocked receives raise
   ERR_PROC_FAILED, recovery shrinks, and the new comm rank 0 takes over
   from the gathered knowledge. *)

open Mpisim
module C = Kamping.Communicator

type mode = Master_worker | Nbx

let mode_to_string = function Master_worker -> "master" | Nbx -> "nbx"

let mode_of_string = function
  | "master" | "master_worker" -> Ok Master_worker
  | "nbx" -> Ok Nbx
  | s -> Error (Printf.sprintf "unknown taskqueue mode %S (want master or nbx)" s)

type config = {
  mode : mode;
  lease_timeout : float;
  lease_backoff : float;
  max_in_flight : int;
  rate : float;
  burst : int;
  checkpoint_every : int;
  batch : int;
  max_recovery_retries : int;
}

let config ?(mode = Master_worker) ?(lease_timeout = 1e-3) ?(lease_backoff = 2.0)
    ?(max_in_flight = max_int) ?(rate = infinity) ?(burst = 64) ?(checkpoint_every = 16)
    ?(batch = 4) ?(max_recovery_retries = 8) () =
  if lease_timeout <= 0. then Errdefs.usage_error "taskqueue: lease_timeout must be > 0";
  if lease_backoff < 1. then Errdefs.usage_error "taskqueue: lease_backoff must be >= 1";
  if max_in_flight < 1 then Errdefs.usage_error "taskqueue: max_in_flight must be >= 1";
  if burst < 1 then Errdefs.usage_error "taskqueue: burst must be >= 1";
  if checkpoint_every < 1 then
    Errdefs.usage_error "taskqueue: checkpoint_every must be >= 1";
  if batch < 1 then Errdefs.usage_error "taskqueue: batch must be >= 1";
  {
    mode;
    lease_timeout;
    lease_backoff;
    max_in_flight;
    rate;
    burst;
    checkpoint_every;
    batch;
    max_recovery_retries;
  }

(* Protocol tags (user tag space, clear of sparse_alltoall's 4242). *)
let t_request = 4310 (* worker -> master: give me work *)

let t_assign = 4311 (* master -> worker: Task (id, payload) | Stop *)

let t_result = 4312 (* worker -> master: (id, origin, nonce, result) *)

let t_ckpt = 4313 (* master -> successor: checkpoint entry replication *)

(* An execution is keyed by (task id, executing world rank, per-rank
   execution nonce): replication copies of one execution share the key,
   so merging them is not a duplicate; two *executions* of one task have
   different keys, and the second one to reach an authoritative store is
   what taskqueue.duplicates_suppressed counts. *)
type key = { k_task : int; k_origin : int; k_nonce : int }

let key_codec =
  Serial.Codec.map ~name:"taskqueue.key"
    ~inject:(fun (k_task, k_origin, k_nonce) -> { k_task; k_origin; k_nonce })
    ~project:(fun { k_task; k_origin; k_nonce } -> (k_task, k_origin, k_nonce))
    Serial.Codec.(triple varint varint varint)

(* Per-run counters, resolved once from the Stats registry. *)
type counters = {
  c_dispatched : Stats.counter;
  c_completed : Stats.counter;
  c_redispatched : Stats.counter;
  c_duplicates : Stats.counter;
  c_leases_expired : Stats.counter;
  c_throttled : Stats.counter;
  c_checkpoints : Stats.counter;
  c_steals : Stats.counter;
}

let counters stats =
  {
    c_dispatched = Stats.counter stats "taskqueue.dispatched";
    c_completed = Stats.counter stats "taskqueue.completed";
    c_redispatched = Stats.counter stats "taskqueue.redispatched";
    c_duplicates = Stats.counter stats "taskqueue.duplicates_suppressed";
    c_leases_expired = Stats.counter stats "taskqueue.leases_expired";
    c_throttled = Stats.counter stats "taskqueue.throttled";
    c_checkpoints = Stats.counter stats "taskqueue.checkpoints";
    c_steals = Stats.counter stats "taskqueue.steals";
  }

(* Shared per-run state that survives recovery attempts: the local
   knowledge table and the execution nonce.  Leases and queues are
   per-attempt (rebuilt by resync). *)
type 'b state = {
  cfg : config;
  n_tasks : int;
  deps : int list array;
  knowledge : (key, 'b) Hashtbl.t;  (* everything this rank knows for sure *)
  mutable nonce : int;  (* executions performed by this rank, ever *)
  ctr : counters;
}

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let trace_flow rt ~rank ~name ~a ~b ~c =
  Trace.instant_d rt.Runtime.trace ~rank ~cat:"taskqueue" ~name ~a ~b ~c
    ~d:(Runtime.lamport_clock rt rank)

(* Execute one task on this rank: chaos task trigger, span, log the
   result into local knowledge under a fresh execution key. *)
let execute state rt ~me_world ~exec ~tasks id =
  Runtime.task_tick rt me_world;
  trace_flow rt ~rank:me_world ~name:"exec" ~a:id ~b:state.nonce ~c:(-1);
  let result =
    Runtime.with_span rt me_world ~cat:"taskqueue" ~name:"task" (fun () ->
        exec id tasks.(id))
  in
  let k = { k_task = id; k_origin = me_world; k_nonce = state.nonce } in
  state.nonce <- state.nonce + 1;
  Hashtbl.replace state.knowledge k result;
  Stats.incr state.ctr.c_completed;
  (k, result)

(* Merge an entry into a table, counting a suppressed duplicate when a
   *different execution* of the same task is already present (a
   same-key merge is checkpoint/resync replication, not a re-run). *)
let merge_entry state table (k : key) result =
  let dup_execution =
    Hashtbl.fold
      (fun (k' : key) _ acc -> acc || (k'.k_task = k.k_task && k' <> k))
      table false
  in
  if dup_execution then Stats.incr state.ctr.c_duplicates
  else if not (Hashtbl.mem table k) then Hashtbl.replace table k result

let done_set table n =
  let d = Array.make n false in
  Hashtbl.iter (fun k _ -> if k.k_task < n then d.(k.k_task) <- true) table;
  d

let count_done d = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 d

(* Token bucket over virtual time.  When the bucket is empty the caller
   *waits* (charges virtual compute) until the next token accrues — the
   simulator's equivalent of sleeping on the limiter. *)
type bucket = { mutable tokens : float; mutable last : float }

let take_token state rt me_world bucket =
  if state.cfg.rate = infinity then ()
  else begin
    let refill () =
      let now = Runtime.clock rt me_world in
      let dt = now -. bucket.last in
      bucket.last <- now;
      bucket.tokens <-
        Float.min (float_of_int state.cfg.burst) (bucket.tokens +. (dt *. state.cfg.rate))
    in
    refill ();
    if bucket.tokens < 1. then begin
      Stats.incr state.ctr.c_throttled;
      Runtime.charge_compute rt me_world ((1. -. bucket.tokens) /. state.cfg.rate);
      refill ()
    end;
    bucket.tokens <- bucket.tokens -. 1.
  end

(* Drain checkpoint-replication messages into local knowledge. *)
let drain_ckpts state entry_codec mpi =
  let rec go () =
    match P2p.iprobe mpi ~tag:t_ckpt () with
    | None -> ()
    | Some st ->
        let b, _ = P2p.recv_bytes mpi ~source:(Status.source st) ~tag:t_ckpt () in
        let entries = Serial.Archive.decode entry_codec b in
        List.iter (fun (k, r) -> merge_entry state state.knowledge k r) entries;
        go ()
  in
  go ()

(* Raise out of the protocol loop as soon as any member of the
   communicator has died: the ULFM wrapper revokes, shrinks and re-enters
   the attempt on the survivors. *)
let check_members mpi =
  if Comm.any_member_failed mpi then
    raise (Ulfm.Failure_detected "taskqueue: communicator member failed")

(* ------------------------------------------------------------------ *)
(* Master/worker mode *)

type lease = { mutable l_worker : int; mutable l_deadline : float; mutable l_attempt : int }

let master_loop state entry_codec assign_codec result_codec comm (tasks : 'a array) exec =
  let mpi = C.mpi comm in
  let rt = C.runtime comm in
  let me_world = Comm.world_rank mpi in
  let n = state.n_tasks in
  let size = C.size comm in
  (* Authoritative store, rebuilt from gathered knowledge by the caller
     into [state.knowledge]; here we promote it to the master's store. *)
  let store : (key, 'b) Hashtbl.t = Hashtbl.copy state.knowledge in
  let d = done_set store n in
  let n_done = ref (count_done d) in
  (* Dependency-aware pending: ready tasks are dispatchable, blocked ones
     wait for their dependencies to be recorded. *)
  let ready = Queue.create () in
  let blocked = ref [] in
  let is_ready id = List.for_all (fun dep -> d.(dep)) state.deps.(id) in
  for id = 0 to n - 1 do
    if not d.(id) then
      if is_ready id then Queue.add (id, 0) ready else blocked := id :: !blocked
  done;
  blocked := List.rev !blocked;
  let promote () =
    let now_ready, still = List.partition is_ready !blocked in
    blocked := still;
    List.iter (fun id -> Queue.add (id, 0) ready) now_ready
  in
  let leased : (int, lease) Hashtbl.t = Hashtbl.create 64 in
  let waiting : int Queue.t = Queue.create () in
  let bucket = { tokens = float_of_int state.cfg.burst; last = Runtime.clock rt me_world } in
  let since_ckpt = ref [] in
  let record_result (k : key) result =
    if d.(k.k_task) then Stats.incr state.ctr.c_duplicates
    else begin
      Hashtbl.replace store k result;
      Hashtbl.replace state.knowledge k result;
      d.(k.k_task) <- true;
      incr n_done;
      Hashtbl.remove leased k.k_task;
      since_ckpt := (k, result) :: !since_ckpt;
      promote ();
      trace_flow rt ~rank:me_world ~name:"record" ~a:k.k_task ~b:k.k_origin ~c:k.k_nonce;
      (* Checkpoint: replicate the entries recorded since the last
         snapshot to the successor rank, so a master death does not lose
         results whose origin worker has also died. *)
      if size > 1 && List.length !since_ckpt >= state.cfg.checkpoint_every then begin
        Stats.incr state.ctr.c_checkpoints;
        P2p.send_bytes mpi ~dest:1 ~tag:t_ckpt
          (Serial.Archive.encode entry_codec !since_ckpt);
        since_ckpt := []
      end
    end
  in
  let assign worker (id, attempt) =
    take_token state rt me_world bucket;
    let now = Runtime.clock rt me_world in
    let timeout = state.cfg.lease_timeout *. (state.cfg.lease_backoff ** float_of_int attempt) in
    Hashtbl.replace leased id
      { l_worker = worker; l_deadline = now +. timeout; l_attempt = attempt };
    Stats.incr state.ctr.c_dispatched;
    if attempt > 0 then Stats.incr state.ctr.c_redispatched;
    trace_flow rt ~rank:me_world ~name:"dispatch" ~a:id ~b:worker ~c:attempt;
    P2p.send_bytes mpi ~dest:worker ~tag:t_assign
      (Serial.Archive.encode assign_codec (id, Some tasks.(id)))
  in
  (* Main pump.  Single-rank communicators (everyone else died, or p=1)
     short-circuit to local execution. *)
  while !n_done < n do
    check_members mpi;
    let progressed = ref false in
    (* Results first: they free leases and unblock dependents. *)
    (match P2p.iprobe mpi ~tag:t_result () with
    | Some st ->
        progressed := true;
        let b, _ = P2p.recv_bytes mpi ~source:(Status.source st) ~tag:t_result () in
        let k, result = Serial.Archive.decode result_codec b in
        record_result k result
    | None -> ());
    (match P2p.iprobe mpi ~tag:t_request () with
    | Some st ->
        progressed := true;
        let _, st = P2p.recv_bytes mpi ~source:(Status.source st) ~tag:t_request () in
        Queue.add (Status.source st) waiting
    | None -> ());
    (* Lease expiry: stragglers go back on the ready queue with a longer
       (backed-off) lease for the next dispatch. *)
    let now = Runtime.clock rt me_world in
    let expired =
      Hashtbl.fold (fun id l acc -> if l.l_deadline <= now then (id, l) :: acc else acc)
        leased []
    in
    List.iter
      (fun (id, (l : lease)) ->
        progressed := true;
        Hashtbl.remove leased id;
        Stats.incr state.ctr.c_leases_expired;
        trace_flow rt ~rank:me_world ~name:"lease_expired" ~a:id ~b:l.l_worker
          ~c:l.l_attempt;
        Queue.add (id, l.l_attempt + 1) ready)
      (List.sort (fun (a, _) (b, _) -> compare a b) expired);
    (* Assignments, inside the in-flight window. *)
    if size > 1 then begin
      while
        (not (Queue.is_empty waiting))
        && (not (Queue.is_empty ready))
        && Hashtbl.length leased < state.cfg.max_in_flight
      do
        progressed := true;
        assign (Queue.pop waiting) (Queue.pop ready)
      done
    end
    else begin
      (* Alone: drain the ready queue locally. *)
      while not (Queue.is_empty ready) do
        progressed := true;
        let id, attempt = Queue.pop ready in
        take_token state rt me_world bucket;
        Stats.incr state.ctr.c_dispatched;
        if attempt > 0 then Stats.incr state.ctr.c_redispatched;
        let k, r = execute state rt ~me_world ~exec ~tasks id in
        record_result k r
      done
    end;
    if !n_done < n && not !progressed then Scheduler.yield ()
  done;
  (* Drain: every live worker's next request is answered with Stop.  Late
     duplicate results keep being recorded (and suppressed) here.  Workers
     whose request was already consumed into [waiting] are answered
     first — they are parked in a receive and will send nothing more. *)
  let stopped = Array.make size false in
  stopped.(0) <- true;
  Queue.iter
    (fun w ->
      stopped.(w) <- true;
      P2p.send_bytes mpi ~dest:w ~tag:t_assign
        (Serial.Archive.encode assign_codec (-1, None)))
    waiting;
  Queue.clear waiting;
  let all_stopped () =
    let all = ref true in
    let failed = Comm.failed_members mpi in
    for r = 1 to size - 1 do
      if (not stopped.(r)) && not (List.mem r failed) then all := false
    done;
    !all
  in
  while not (all_stopped ()) do
    check_members mpi;
    let progressed = ref false in
    (match P2p.iprobe mpi ~tag:t_request () with
    | Some st ->
        progressed := true;
        let _, st = P2p.recv_bytes mpi ~source:(Status.source st) ~tag:t_request () in
        let w = Status.source st in
        stopped.(w) <- true;
        P2p.send_bytes mpi ~dest:w ~tag:t_assign
          (Serial.Archive.encode assign_codec (-1, None))
    | None -> ());
    (match P2p.iprobe mpi ~tag:t_result () with
    | Some st ->
        progressed := true;
        let b, _ = P2p.recv_bytes mpi ~source:(Status.source st) ~tag:t_result () in
        let k, result = Serial.Archive.decode result_codec b in
        record_result k result
    | None -> ());
    if not !progressed then Scheduler.yield ()
  done;
  store

let worker_loop state entry_codec assign_codec result_codec comm (tasks : 'a array) exec =
  let mpi = C.mpi comm in
  let rt = C.runtime comm in
  let me_world = Comm.world_rank mpi in
  let master = 0 in
  let continue_ = ref true in
  while !continue_ do
    drain_ckpts state entry_codec mpi;
    P2p.send_bytes mpi ~dest:master ~tag:t_request Bytes.empty;
    let b, _ = P2p.recv_bytes mpi ~source:master ~tag:t_assign () in
    match Serial.Archive.decode assign_codec b with
    | id, Some payload ->
        tasks.(id) <- payload;
        let k, result = execute state rt ~me_world ~exec ~tasks id in
        P2p.send_bytes mpi ~dest:master ~tag:t_result
          (Serial.Archive.encode result_codec (k, result))
    | _, None -> continue_ := false
  done;
  drain_ckpts state entry_codec mpi

(* ------------------------------------------------------------------ *)
(* NBX mode: bulk-synchronous decentralized rebalancing *)

(* One deterministic rebalancing plan, computed identically on every rank
   from the shared load vector: ranks above their quota ship the surplus
   to ranks below it, matched greedily in rank order. *)
let rebalance_plan (loads : int array) : (int * int * int) list =
  let p = Array.length loads in
  let total = Array.fold_left ( + ) 0 loads in
  let quota i = (total / p) + if i < total mod p then 1 else 0 in
  let surplus = ref []
  and deficit = ref [] in
  for i = p - 1 downto 0 do
    let delta = loads.(i) - quota i in
    if delta > 0 then surplus := (i, ref delta) :: !surplus
    else if delta < 0 then deficit := (i, ref (-delta)) :: !deficit
  done;
  let plan = ref [] in
  let rec go surplus deficit =
    match (surplus, deficit) with
    | [], _ | _, [] -> ()
    | (s, sc) :: stl, (d, dc) :: dtl ->
        let k = min !sc !dc in
        if k > 0 then plan := (s, d, k) :: !plan;
        sc := !sc - k;
        dc := !dc - k;
        go (if !sc = 0 then stl else surplus) (if !dc = 0 then dtl else deficit)
  in
  go !surplus !deficit;
  List.rev !plan

let nbx_loop state comm (tasks : 'a array) exec =
  let mpi = C.mpi comm in
  let rt = C.runtime comm in
  let me_world = Comm.world_rank mpi in
  let me = C.rank comm in
  let p = C.size comm in
  let n = state.n_tasks in
  (* Global done-knowledge at round boundaries: starts from the resynced
     local knowledge (identical on all ranks after the resync bcast). *)
  let d = done_set state.knowledge n in
  let my_queue : int Queue.t = Queue.create () in
  let idx = ref 0 in
  for id = 0 to n - 1 do
    if not d.(id) then begin
      if !idx mod p = me then Queue.add id my_queue;
      incr idx
    end
  done;
  let bucket = { tokens = float_of_int state.cfg.burst; last = Runtime.clock rt me_world } in
  let remaining = ref (!idx) in
  while !remaining > 0 do
    check_members mpi;
    (* Execute up to [batch] ready tasks; blocked ones rotate to the back
       until their dependencies are globally done. *)
    let newly_done = ref [] in
    let executed = ref 0 in
    let scanned = ref 0 in
    let qlen = Queue.length my_queue in
    while !executed < state.cfg.batch && !scanned < qlen && not (Queue.is_empty my_queue) do
      incr scanned;
      let id = Queue.pop my_queue in
      if List.for_all (fun dep -> d.(dep)) state.deps.(id) then begin
        take_token state rt me_world bucket;
        Stats.incr state.ctr.c_dispatched;
        incr executed;
        let _k, _r = execute state rt ~me_world ~exec ~tasks id in
        newly_done := id :: !newly_done
      end
      else Queue.add id my_queue
    done;
    (* Round exchange 1: everyone learns which tasks completed this
       round, so dependents anywhere become ready. *)
    let mine = Array.of_list (List.rev !newly_done) in
    let counts = Coll.allgather mpi Datatype.int [| Array.length mine |] in
    let all_done = Coll.allgatherv mpi Datatype.int ~recv_counts:counts mine in
    Array.iter (fun id -> d.(id) <- true) all_done;
    remaining := !remaining - Array.length all_done;
    if !remaining > 0 then begin
      (* Round exchange 2: rebalance queue loads with a deterministic
         plan; ids travel through the sparse NBX all-to-all. *)
      let loads = Coll.allgather mpi Datatype.int [| Queue.length my_queue |] in
      let plan = rebalance_plan loads in
      let outgoing =
        List.filter_map
          (fun (src, dst, k) ->
            if src <> me then None
            else begin
              let ids = Array.init k (fun _ -> Queue.pop my_queue) in
              Some (dst, ids)
            end)
          plan
      in
      let incoming = Sparse_alltoall.alltoallv comm Datatype.int outgoing in
      List.iter
        (fun (_src, ids) ->
          Stats.add state.ctr.c_steals (Array.length ids);
          Array.iter (fun id -> Queue.add id my_queue) ids)
        incoming
    end
  done

(* ------------------------------------------------------------------ *)
(* Resync, commit, and the public entry point *)

let entry_codec_of result_codec = Serial.Codec.(list (pair key_codec result_codec))

(* Gather every rank's knowledge at comm rank 0 and broadcast the union
   back: after this, every rank's knowledge holds every result any
   survivor (or checkpoint replica) had — the checkpointed state a
   re-elected master resumes from. *)
let resync state entry_codec comm =
  let entries t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] in
  let all = Kamping.Serialized.gather comm entry_codec ~root:0 (entries state.knowledge) in
  let merged =
    if C.rank comm = 0 then begin
      let table = Hashtbl.copy state.knowledge in
      List.iter (List.iter (fun (k, r) -> merge_entry state table k r)) all;
      entries table
    end
    else []
  in
  let union = Kamping.Serialized.bcast comm entry_codec ~root:0 ~value:merged () in
  List.iter (fun (k, r) -> merge_entry state state.knowledge k r) union

let assemble state n =
  let out = Array.make n None in
  Hashtbl.iter
    (fun k r -> if k.k_task < n && out.(k.k_task) = None then out.(k.k_task) <- Some r)
    state.knowledge;
  Array.mapi
    (fun i -> function
      | Some r -> r
      | None -> Errdefs.usage_error "taskqueue: task %d missing after completion" i)
    out

let run ?(cfg = config ()) (comm : C.t) ~(task_codec : 'a Serial.Codec.t)
    ~(result_codec : 'b Serial.Codec.t) ?deps ~(tasks : 'a array)
    ~(exec : int -> 'a -> 'b) () : 'b array * C.t =
  let n = Array.length tasks in
  let deps =
    match deps with
    | None -> Array.make n []
    | Some d ->
        if Array.length d <> n then
          Errdefs.usage_error "taskqueue: deps length %d <> tasks length %d"
            (Array.length d) n;
        Array.iteri
          (fun id ds ->
            List.iter
              (fun dep ->
                if dep < 0 || dep >= id then
                  Errdefs.usage_error
                    "taskqueue: task %d has invalid dependency %d (must be an earlier task)"
                    id dep)
              ds)
          d;
        d
  in
  let rt = C.runtime comm in
  let state =
    {
      cfg;
      n_tasks = n;
      deps;
      knowledge = Hashtbl.create (max 16 n);
      nonce = 0;
      ctr = counters rt.Runtime.stats;
    }
  in
  let entry_codec = entry_codec_of result_codec in
  let assign_codec = Serial.Codec.(pair int (option task_codec)) in
  let res_msg_codec = Serial.Codec.(pair key_codec result_codec) in
  (* Workers receive payloads with assignments, so they keep a private
     copy of the task table they can fill in (master mode ships payloads;
     NBX mode relies on the collectively-submitted table). *)
  let my_tasks = Array.copy tasks in
  let protocol_body c =
    Comm.check_collective (C.mpi c) ~op:"taskqueue" ~root:(-1) ~ty:(mode_to_string cfg.mode);
    drain_ckpts state entry_codec (C.mpi c);
    resync state entry_codec c;
    (match cfg.mode with
    | Master_worker ->
        if C.rank c = 0 then
          ignore (master_loop state entry_codec assign_codec res_msg_codec c my_tasks exec)
        else worker_loop state entry_codec assign_codec res_msg_codec c my_tasks exec
    | Nbx -> nbx_loop state c my_tasks exec);
    (* Replicate the full result set everywhere before committing. *)
    resync state entry_codec c;
    assemble state n
  in
  (* Revoke-before-agree commit round (the test_failures.ml chaos-recovery
     protocol): every live rank reaches [agree] exactly once per attempt —
     a rank that detects a failure revokes first (waking peers parked in
     the queue protocol's receives) and contributes [false] instead of
     raising past the agreement, so nobody can leave while a peer still
     needs them for the next round's shrink.  The agreed verdict is
     uniform: all live ranks commit together or all re-enter
     [run_with_recovery]'s shrink together. *)
  let attempt c =
    let result =
      try Some (Ulfm.detect (fun () -> protocol_body c))
      with Ulfm.Failure_detected _ ->
        if not (Ulfm.is_revoked c) then Ulfm.revoke c;
        None
    in
    let intact = not (Comm.any_member_failed (C.mpi c)) in
    let ok = Ulfm.agree c (result <> None && intact) in
    match result with
    | Some v when ok -> v
    | _ -> raise (Ulfm.Failure_detected "taskqueue: round failed, recovering")
  in
  Ulfm.run_with_recovery ~max_retries:cfg.max_recovery_retries comm attempt
