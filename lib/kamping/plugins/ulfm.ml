(* User-Level Failure Mitigation plugin (paper §V-B, Fig. 12).

   Turns the runtime's failure error codes into an idiomatic OCaml
   exception and packages the standard ULFM recovery sequence
   (detect -> revoke -> shrink) so applications write

     try work comm with
     | Failure_detected _ ->
         if not (is_revoked comm) then revoke comm;
         let comm = shrink comm in ...

   or simply use [run_with_recovery].

   Every recovery step is counted in the Stats registry
   (ulfm.{revokes,shrinks,agrees}) and [run_with_recovery] observes the
   virtual-time cost of each complete detect->shrink round in the
   ulfm.recovery_seconds histogram, so recovery cost shows up in
   [--stats] output and benches instead of only in traces. *)

open Mpisim

exception Failure_detected of string

(* Run [f], mapping process-failure and revocation errors to
   [Failure_detected]. *)
let detect (f : unit -> 'a) : 'a =
  try f () with
  | Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; msg }
  | Errdefs.Mpi_error { code = Errdefs.Err_revoked; msg } ->
      raise (Failure_detected msg)

let is_revoked = Kamping.Communicator.is_revoked

let stats comm = (Kamping.Communicator.runtime comm).Runtime.stats

let revoke comm =
  Stats.incr (Stats.counter (stats comm) "ulfm.revokes");
  Kamping.Communicator.revoke comm

let shrink comm =
  Stats.incr (Stats.counter (stats comm) "ulfm.shrinks");
  Kamping.Communicator.shrink comm

let agree comm v =
  Stats.incr (Stats.counter (stats comm) "ulfm.agrees");
  Kamping.Communicator.agree comm v

(* Fig. 12 as a combinator: run [attempt] on [comm]; on failure, revoke,
   shrink, and retry on the surviving communicator, at most [max_retries]
   times.  Returns the result together with the (possibly shrunk)
   communicator it was obtained on.

   Recovery itself must be failure-tolerant: a rank can die while the
   survivors are inside the shrink collective (chaos runs do this
   routinely).  A [Failure_detected] out of [shrink] therefore consumes a
   retry and re-runs recovery rather than escaping to the caller; the
   shrunken communicator may likewise still contain a member that died
   mid-shrink, which the next round's failed attempt shrinks out. *)
let run_with_recovery ?(max_retries = 3) (comm : Kamping.Communicator.t)
    (attempt : Kamping.Communicator.t -> 'a) : 'a * Kamping.Communicator.t =
  let rt = Kamping.Communicator.runtime comm in
  let h_recovery = Stats.histogram rt.Runtime.stats "ulfm.recovery_seconds" in
  let my_world comm = Comm.world_rank (Kamping.Communicator.mpi comm) in
  let rec recover comm retries =
    if not (is_revoked comm) then revoke comm;
    match detect (fun () -> shrink comm) with
    | comm' -> (comm', retries)
    | exception Failure_detected _ when retries > 0 -> recover comm (retries - 1)
  in
  let rec go comm retries =
    match detect (fun () -> attempt comm) with
    | v -> (v, comm)
    | exception Failure_detected _ when retries > 0 ->
        (* Virtual time from detection on this rank to a usable shrunken
           communicator: the per-round recovery cost. *)
        let t0 = Runtime.clock rt (my_world comm) in
        let comm, retries = recover comm (retries - 1) in
        Stats.observe h_recovery (Runtime.clock rt (my_world comm) -. t0);
        go comm retries
  in
  go comm max_retries
