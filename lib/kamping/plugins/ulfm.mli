(** User-Level Failure Mitigation plugin (paper §V-B, Fig. 12): turns the
    runtime's failure error codes into an idiomatic exception and packages
    the detect -> revoke -> shrink recovery sequence.

    Recovery cost is observable through the Stats registry:
    [ulfm.revokes], [ulfm.shrinks] and [ulfm.agrees] count the recovery
    primitives, and [ulfm.recovery_seconds] is a histogram of the virtual
    time each {!run_with_recovery} round spent between detecting a
    failure and obtaining a usable shrunken communicator. *)

exception Failure_detected of string

(** Run [f], mapping ERR_PROC_FAILED / ERR_REVOKED errors to
    {!Failure_detected}; other exceptions pass through. *)
val detect : (unit -> 'a) -> 'a

val is_revoked : Kamping.Communicator.t -> bool

val revoke : Kamping.Communicator.t -> unit

(** Collective over the survivors. *)
val shrink : Kamping.Communicator.t -> Kamping.Communicator.t

val agree : Kamping.Communicator.t -> bool -> bool

(** Fig. 12 as a combinator: run [attempt]; on failure revoke, shrink,
    retry (at most [max_retries] times).  Returns the result and the
    communicator it was obtained on.  A failure detected {e during}
    recovery (a rank dying inside the shrink collective) also consumes a
    retry and re-runs recovery instead of escaping.  NOTE: survivors of
    an iterative computation must additionally agree on the resume
    point — see examples/fault_tolerance.ml. *)
val run_with_recovery :
  ?max_retries:int ->
  Kamping.Communicator.t ->
  (Kamping.Communicator.t -> 'a) ->
  'a * Kamping.Communicator.t
