(* Sparse all-to-all via the NBX algorithm (Hoefler, Siebert, Lumsdaine,
   PPoPP'10) — the SparseAlltoall plugin of paper §V-A.

   MPI_Alltoallv needs an O(p) counts array even when a rank talks to a
   handful of neighbors; NBX exchanges a dynamic sparse pattern in expected
   O(#neighbors + log p) time with no O(p) term:

   1. synchronous-mode send (issend) every outgoing message;
   2. poll: receive any incoming message (probe + dynamic recv);
   3. once all local issends have completed — i.e. all our messages have
      been matched by their receivers — enter a non-blocking barrier;
   4. keep receiving until the barrier completes — at that point every
      rank's sends have been matched, so no message addressed to us is
      still outstanding.

   The input and output are (rank, block) lists; output is ordered by
   (source, arrival). *)

open Mpisim

let sparse_tag = 4242

let alltoallv (comm : Kamping.Communicator.t) (dt : 'a Datatype.t)
    (outgoing : (int * 'a array) list) : (int * 'a array) list =
  let mpi = Kamping.Communicator.mpi comm in
  Comm.check_collective mpi ~op:"sparse_alltoallv" ~root:(-1) ~ty:"";
  Runtime.record (Comm.runtime mpi) ~op:"sparse_alltoallv" ~bytes:0;
  let send_requests =
    List.map (fun (dest, data) -> P2p.issend mpi dt ~dest ~tag:sparse_tag data) outgoing
  in
  let received = ref [] in
  let barrier = ref None in
  let finished = ref false in
  while not !finished do
    (* The poll loop never parks, so it must watch for failure and
       revocation itself: a member dying mid-exchange would otherwise
       leave the ibarrier permanently incomplete and this loop spinning
       (the deadlock detector only sees parked fibers). *)
    Runtime.check_alive (Comm.runtime mpi) (Comm.world_rank mpi);
    if Comm.any_member_failed mpi then
      Comm.error mpi Errdefs.Err_proc_failed
        "sparse_alltoallv: communicator member failed mid-exchange";
    if Comm.is_revoked mpi then
      Comm.error mpi Errdefs.Err_revoked "sparse_alltoallv: communicator revoked";
    (* Drain all currently probe-able messages. *)
    let drained = ref false in
    while not !drained do
      match P2p.iprobe mpi ~tag:sparse_tag () with
      | Some status ->
          let data, st = P2p.recv mpi dt ~source:(Status.source status) ~tag:sparse_tag () in
          received := (Status.source st, data) :: !received
      | None -> drained := true
    done;
    (match !barrier with
    | None ->
        if List.for_all Request.is_complete send_requests
           || List.for_all (fun r -> Request.test r <> None) send_requests
        then barrier := Some (Coll.ibarrier mpi)
    | Some b -> if Request.test b <> None then finished := true);
    if not !finished then Scheduler.yield ()
  done;
  List.rev !received

(* Convenience: destination-table input, like {!Kamping.Flatten}. *)
let exchange_table (comm : Kamping.Communicator.t) (dt : 'a Datatype.t)
    (table : (int, 'a list) Hashtbl.t) : (int * 'a array) list =
  let outgoing =
    Hashtbl.fold (fun dest xs acc -> (dest, Array.of_list xs) :: acc) table []
  in
  alltoallv comm dt outgoing
