(** Distributed measurement timer (the measurements facility of the
    reference library), on the runtime's virtual clock.

    Accumulate named durations per rank with {!start}/{!stop}/{!time};
    {!aggregate} collectively reduces each key to (min, mean, max) across
    ranks. *)

type t

val create : Communicator.t -> t

(** Raises [Usage_error] if [key] is already running. *)
val start : t -> string -> unit

(** Raises [Usage_error] if [key] is not running. *)
val stop : t -> string -> unit

(** Time a closure under [key] (exception-safe). *)
val time : t -> string -> (unit -> 'a) -> 'a

(** This rank's (key, total seconds, timing count), in first-use order. *)
val local : t -> (string * float * int) list

type aggregate = { key : string; min : float; mean : float; max : float; count : int }

(** Collective: every rank must have used the same keys in the same
    order.  Also publishes each aggregate into the runtime's stats
    registry as [timer.<key>.{min,mean,max}_seconds] gauges, so timed
    phases appear in [--stats] dumps and are bench-diff comparable. *)
val aggregate : t -> aggregate list

val pp_aggregates : Format.formatter -> aggregate list -> unit
