(* Command-line driver for running individual experiments at arbitrary
   scale (the benchmark harness `bench/main.exe` runs everything at
   scaled-down defaults; this tool is for full-size single runs).

     kamping-repro sort    --ranks 64 --per-rank 1000000
     kamping-repro bfs     --ranks 256 --family rhg --exchanger kamping_grid
     kamping-repro suffix  --ranks 16 --length 65536
     kamping-repro phylo   --ranks 48 --iterations 500
     kamping-repro repro-reduce --ranks 64 --elements 100000 *)

open Cmdliner
open Mpisim

let ranks_arg =
  Arg.(value & opt int 16 & info [ "ranks"; "p" ] ~docv:"P" ~doc:"Number of simulated ranks.")

let model_arg =
  let model_conv =
    Arg.enum [ ("omnipath", Net_model.omnipath); ("ethernet", Net_model.ethernet) ]
  in
  Arg.(value & opt model_conv Net_model.omnipath & info [ "model" ] ~doc:"Network cost model.")

let report_line (r : Engine.report) =
  Printf.printf "ranks=%d simulated_time=%s\n" r.Engine.ranks
    (Sim_time.to_string r.Engine.max_time)

(* --- observability flags, shared by every subcommand --- *)

type obs = {
  trace_file : string option;
  trace_stream : string option;
  comm_matrix : string option;
  stats : bool;
  check : Check.level option;
  chaos : Chaos.config option;
  coll_algo : Coll_algo.spec option;
  domains : int option;
}

let obs_arg =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record an event trace and write it as Chrome trace-event JSON to \
             $(docv) (loadable in chrome://tracing or ui.perfetto.dev).")
  in
  let trace_stream =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-stream" ] ~docv:"FILE"
          ~doc:
            "Stream every trace event incrementally to $(docv) as length-prefixed \
             binary records (no in-memory rings, nothing dropped; memory stays O(1) \
             per idle rank at any scale).  Convert offline with $(b,trace-convert).  \
             Overrides $(b,--trace)'s in-memory recording.")
  in
  let comm_matrix =
    Arg.(
      value
      & opt (some string) None
      & info [ "comm-matrix" ] ~docv:"FILE"
          ~doc:
            "Record the per-(source, destination) communication matrix — messages \
             and bytes, attributed to the collective algorithm running at send \
             time — and write it to $(docv) (JSON if $(docv) ends in .json, else \
             CSV).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the per-rank busy/blocked/idle breakdown, message-size and \
             latency histograms, and the critical path bounding the makespan.")
  in
  let check =
    let levels =
      [ ("off", Check.Off); ("light", Check.Light); ("heavy", Check.Heavy) ]
    in
    Arg.(
      value
      & opt (some (enum levels)) None
      & info [ "check" ] ~docv:"LEVEL"
          ~doc:
            "Run the correctness sanitizer at $(docv) (off, light or heavy): \
             collective call-order consistency, request-lifecycle and deadlock \
             diagnosis at $(b,light); plus send-buffer integrity and \
             wildcard-race detection at $(b,heavy).  Defaults to the \
             $(b,MPISIM_CHECK) environment variable, else off.")
  in
  let chaos =
    let chaos_conv =
      ( (fun s ->
          match Chaos.config_of_string s with
          | Ok c -> `Ok c
          | Error msg -> `Error msg),
        fun ppf c -> Format.pp_print_string ppf (Chaos.config_to_string c) )
    in
    Arg.(
      value
      & opt (some chaos_conv) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Run under the fault-injection plane.  $(docv) is either a bare \
             integer (shorthand for $(b,seed=N;lossy): seeded lossy network) \
             or ';'-separated clauses: $(b,seed=N), $(b,lossy), $(b,drop=F), \
             $(b,dup=F), $(b,reorder=F), $(b,corrupt=F), $(b,jitter=F), \
             $(b,retries=N), $(b,rto=F), $(b,backoff=F), $(b,jitter_cap=F), \
             $(b,link=A>B:drop=F,...), $(b,fail=R\\@ops:K), $(b,fail=R\\@t:T), \
             $(b,fail=R\\@task:K), $(b,droplink=A>B\\@N), \
             $(b,partition=R,S\\@T1-T2).  The run prints a replay line; the \
             same spec reproduces the same faults byte for byte.")
  in
  let chaos_retries =
    let retries_conv =
      let parse s =
        let bad msg = `Error (Printf.sprintf "--chaos-retries %s: %s" s msg) in
        match String.split_on_char ':' s with
        | [] -> bad "empty"
        | n :: rest -> (
            match (int_of_string_opt n, List.map float_of_string_opt rest) with
            | None, _ -> bad "retry count must be an integer"
            | Some n, _ when n < 0 -> bad "retry count must be >= 0"
            | Some n, floats ->
                if List.exists (( = ) None) floats then bad "malformed float field"
                else
                  let at i = List.nth_opt floats i |> Option.join in
                  (match at 1 with
                  | Some b when b < 1. -> bad "backoff must be >= 1"
                  | _ -> `Ok (n, at 0, at 1, at 2)))
      in
      let print ppf (n, rto, backoff, cap) =
        Format.fprintf ppf "%d" n;
        List.iter
          (function Some f -> Format.fprintf ppf ":%g" f | None -> ())
          [ rto; backoff; cap ]
      in
      (parse, print)
    in
    Arg.(
      value
      & opt (some retries_conv) None
      & info [ "chaos-retries" ] ~docv:"N[:RTO[:BACKOFF[:JITTER_CAP]]]"
          ~doc:
            "Override the retransmission policy of the chaos plane's reliable \
             layer: $(b,N) retries before a transfer escalates to \
             ERR_PROC_FAILED, base retransmit timeout $(b,RTO) seconds, \
             per-attempt multiplier $(b,BACKOFF), and accumulated-jitter bound \
             $(b,JITTER_CAP) seconds.  Fields left out defer to the network \
             model's fault profile (see DESIGN.md \xC2\xA75).  Implies a default \
             $(b,--chaos) config when none is given.")
  in
  let coll_algo =
    let spec_conv =
      ( (fun s ->
          match Coll_algo.parse_spec s with Ok sp -> `Ok sp | Error msg -> `Error msg),
        fun ppf (sp : Coll_algo.spec) ->
          Format.pp_print_string ppf
            (String.concat ","
               (List.map
                  (fun (o, a) ->
                    Coll_algo.op_name o ^ "="
                    ^ match a with Some a -> Coll_algo.algo_name a | None -> "auto")
                  sp)) )
    in
    Arg.(
      value
      & opt (some spec_conv) None
      & info [ "coll-algo" ] ~docv:"SPEC"
          ~doc:
            "Pin collective algorithms instead of the size-keyed automatic \
             selection.  $(docv) is a ','-separated list of $(b,op=alg), e.g. \
             $(b,allreduce=rabenseifner,allgather=ring); $(b,alg) may be \
             $(b,auto).  Ops: allreduce (reduce_bcast, recursive_doubling, \
             rabenseifner), allgather (bruck, ring), bcast (binomial, \
             scatter_allgather), reduce_scatter (reduce_scatterv, pairwise).  \
             The chosen algorithm per call is visible in the \
             $(b,coll.algo.*) counters of $(b,--stats) and as trace spans.  \
             Equivalent to the $(b,MPISIM_COLL_ALGO) environment variable.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run the simulation on a pool of $(docv) OCaml domains (the \
             work-stealing multicore scheduler).  $(b,1) is the default \
             deterministic sequential scheduler; $(b,0) auto-sizes the pool \
             to the machine.  Equivalent to the $(b,MPISIM_DOMAINS) \
             environment variable (the flag wins).  The sequential-only \
             planes are rejected with a usage error when $(docv) > 1: \
             $(b,--chaos)/$(b,--chaos-retries), $(b,--check) (and \
             $(b,MPISIM_CHECK)), and the $(b,verify)/$(b,analyze) \
             subcommands.")
  in
  Term.(
    const (fun trace_file trace_stream comm_matrix stats check chaos chaos_retries
               coll_algo domains ->
        (* --chaos-retries merges into (or bootstraps) the chaos config, so
           the printed replay line carries the effective retry policy. *)
        let chaos =
          match chaos_retries with
          | None -> chaos
          | Some (n, rto, backoff, jitter_cap) ->
              let base =
                match chaos with Some c -> c | None -> Chaos.config ()
              in
              Some
                {
                  base with
                  Chaos.max_retries = Some n;
                  rto = (match rto with Some _ -> rto | None -> base.Chaos.rto);
                  backoff =
                    (match backoff with Some _ -> backoff | None -> base.Chaos.backoff);
                  jitter_cap =
                    (match jitter_cap with
                    | Some _ -> jitter_cap
                    | None -> base.Chaos.jitter_cap);
                }
        in
        { trace_file; trace_stream; comm_matrix; stats; check; chaos; coll_algo;
          domains })
    $ trace_file $ trace_stream $ comm_matrix $ stats $ check $ chaos $ chaos_retries
    $ coll_algo $ domains)

(* Exit-status documentation shared by every subcommand; the codes
   themselves live in Mpisim.Exit_codes so tests and CI scripts have the
   same single source of truth as the CLI. *)
let exits =
  Cmd.Exit.info Exit_codes.ok ~doc:(Exit_codes.describe Exit_codes.ok)
  :: Cmd.Exit.info Exit_codes.violation ~doc:(Exit_codes.describe Exit_codes.violation)
  :: Cmd.Exit.info Exit_codes.file_error ~doc:(Exit_codes.describe Exit_codes.file_error)
  :: Cmd.Exit.info Exit_codes.clean_failure
       ~doc:(Exit_codes.describe Exit_codes.clean_failure)
  :: Cmd.Exit.defaults

(* Run one experiment body under the observability flags: tracing is
   enabled iff --trace or --stats was given (--stats needs the event trace
   for the critical path), and the reports print after the run.  Vector
   clocks are stamped whenever the run streams a binary trace, so every
   --trace-stream capture is analyzable offline with `analyze`. *)
let run_with_obs ~obs ~model ~ranks body =
  let trace_capacity =
    if (obs.trace_file <> None || obs.stats) && obs.trace_stream = None then
      Some Trace.default_capacity
    else None
  in
  (match obs.coll_algo with Some spec -> Coll_algo.set_overrides spec | None -> ());
  (match obs.chaos with
  | Some cfg ->
      Printf.printf "chaos: replay with --chaos '%s'\n%!" (Chaos.config_to_string cfg)
  | None -> ());
  let report =
    try
      Engine.run ~model ?check_level:obs.check ?chaos:obs.chaos ?trace_capacity
        ?trace_stream:obs.trace_stream ?domains:obs.domains
        ~vector_clocks:(obs.trace_stream <> None)
        ~comm_matrix:(obs.comm_matrix <> None)
        ~ranks body
    with
    | Errdefs.Usage_error msg ->
        (* Bad flag combination (e.g. --chaos with --domains 2), not a
           failed run: report it the way cmdliner reports usage errors. *)
        Printf.eprintf "kamping-repro: %s\n" msg;
        exit Cmd.Exit.cli_error
    | Scheduler.Aborted { rank; exn = Errdefs.Mpi_error { code; msg }; _ } ->
        (* A chaos run ending in a clean MPI error is a valid outcome; report
           it without an OCaml backtrace so the replay line above is usable. *)
        Printf.printf "rank %d failed cleanly: %s: %s\n" rank (Errdefs.code_name code)
          msg;
        exit Exit_codes.clean_failure
    | Errdefs.Mpi_error { code; msg } ->
        Printf.printf "run failed cleanly: %s: %s\n" (Errdefs.code_name code) msg;
        exit Exit_codes.clean_failure
  in
  report_line report;
  (match (obs.chaos, report.Engine.chaos_log) with
  | Some _, Some log ->
      let count name = Stats.count (Stats.counter report.Engine.stats name) in
      Printf.printf
        "chaos: %d events (dropped=%d dup=%d reordered=%d corrupted=%d \
         retransmits=%d escalations=%d plan_failures=%d) killed=[%s]\n"
        (List.length (String.split_on_char '\n' log) - 1)
        (count "chaos.dropped") (count "chaos.duplicated") (count "chaos.reordered")
        (count "chaos.corrupted") (count "chaos.retransmits")
        (count "chaos.escalations") (count "chaos.plan_failures")
        (String.concat "," (List.map string_of_int report.Engine.killed))
  | _ -> ());
  (match obs.trace_stream with
  | Some file ->
      Printf.printf "trace stream written to %s (%d events, 0 dropped); convert with \
                     `kamping-repro trace-convert %s out.json`\n"
        file
        (Trace.stream_events report.Engine.trace)
        file
  | None -> ());
  (match obs.comm_matrix with
  | Some file -> (
      match Comm_matrix.write_file report.Engine.comm_matrix file with
      | () ->
          let msgs, bytes = Comm_matrix.totals report.Engine.comm_matrix in
          Printf.printf "communication matrix written to %s (%d messages, %d bytes)\n"
            file msgs bytes
      | exception Sys_error msg ->
          Printf.eprintf "kamping-repro: cannot write comm matrix: %s\n" msg;
          exit Exit_codes.file_error)
  | None -> ());
  (match obs.trace_file with
  | Some file when obs.trace_stream <> None ->
      Printf.eprintf
        "kamping-repro: --trace %s ignored: --trace-stream already captured the run\n"
        file
  | Some file -> (
      match Trace.write_chrome_file report.Engine.trace file with
      | () ->
          let dropped = Trace.total_dropped report.Engine.trace in
          if dropped > 0 then
            Printf.printf "trace written to %s (%d oldest events dropped)\n" file
              dropped
          else Printf.printf "trace written to %s\n" file
      | exception Sys_error msg ->
          Printf.eprintf "kamping-repro: cannot write trace: %s\n" msg;
          exit Exit_codes.file_error)
  | None -> ());
  if obs.stats then begin
    let ppf = Format.std_formatter in
    Format.fprintf ppf "@.-- utilization --@.";
    Trace_report.pp_utilization ppf ~busy:report.Engine.busy
      ~blocked:report.Engine.blocked ~times:report.Engine.times
      ~max_time:report.Engine.max_time;
    let histo name fmt title =
      let h = Stats.histogram report.Engine.stats name in
      if Stats.total h > 0 then begin
        Format.fprintf ppf "@.-- %s --@." title;
        Stats.pp_histogram ~fmt ppf h
      end
    in
    histo "msg_size_bytes" Stats.fmt_bytes "message size";
    histo "msg_latency_seconds" Stats.fmt_seconds "message latency (send to consume)";
    let algo_counts = ref [] in
    Stats.iter_counters report.Engine.stats (fun name c ->
        if
          String.length name > 10
          && String.sub name 0 10 = "coll.algo."
          && Stats.count c > 0
        then algo_counts := (name, Stats.count c) :: !algo_counts);
    if !algo_counts <> [] then begin
      Format.fprintf ppf "@.-- collective algorithms --@.";
      List.iter
        (fun (name, n) ->
          Format.fprintf ppf "%-45s %d calls@."
            (String.sub name 10 (String.length name - 10))
            n)
        (List.sort compare !algo_counts)
    end;
    Format.fprintf ppf "@.-- critical path --@.";
    Trace_report.pp_critical_path ppf report.Engine.trace ~times:report.Engine.times;
    (* Publish how much of the shown causal chain the trace could actually
       prove: nonzero unverified edges means the path crossed a send the
       ring buffer evicted or that failed consistency checks. *)
    let unverified =
      Trace_report.unverified_edges
        (Trace_report.critical_path report.Engine.trace ~times:report.Engine.times)
    in
    Stats.add
      (Stats.counter report.Engine.stats "obs.causal.unverified_edges")
      unverified;
    Format.fprintf ppf "obs.causal.unverified_edges: %d@." unverified;
    Format.pp_print_flush ppf ()
  end;
  report

(* --- sort --- *)

let sort_cmd =
  let per_rank =
    Arg.(value & opt int 100_000 & info [ "per-rank" ] ~doc:"Elements per rank.")
  in
  let run ranks per_rank model obs =
    ignore @@ run_with_obs ~obs ~model ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let rng = Xoshiro.create ~seed:1 ~stream:(Comm.rank mpi) in
        let data = Array.init per_rank (fun _ -> Xoshiro.next_int rng ~bound:max_int) in
        let sorted = Kamping_plugins.Sorter.sort comm Datatype.int data in
        assert (Kamping_plugins.Sorter.is_globally_sorted comm Datatype.int sorted))
  in
  Cmd.v (Cmd.info "sort" ~exits ~doc:"Distributed sample sort (Fig. 7/8 workload).")
    Term.(const run $ ranks_arg $ per_rank $ model_arg $ obs_arg)

(* --- bfs --- *)

let bfs_cmd =
  let family =
    let family_conv = Arg.enum [ ("gnm", `Gnm); ("rgg", `Rgg); ("rhg", `Rhg) ] in
    Arg.(value & opt family_conv `Rgg & info [ "family" ] ~doc:"Graph family.")
  in
  let exchanger =
    let ex_conv =
      Arg.enum
        (List.map (fun e -> (Bfs.Exchangers.exchanger_name e, e)) Bfs.Exchangers.all)
    in
    Arg.(
      value
      & opt ex_conv Bfs.Exchangers.Kamping
      & info [ "exchanger" ] ~doc:"Frontier exchange strategy.")
  in
  let n_per_rank =
    Arg.(value & opt int 4096 & info [ "vertices-per-rank" ] ~doc:"Vertices per rank.")
  in
  let run ranks family exchanger n_per_rank model obs =
    ignore @@ run_with_obs ~obs ~model ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let g =
          match family with
          | `Gnm ->
              Graphgen.Gnm.generate comm ~n_per_rank ~m_per_rank:(8 * n_per_rank) ~seed:1
          | `Rgg -> Graphgen.Rgg2d.generate comm ~n_per_rank ~seed:1 ()
          | `Rhg -> Graphgen.Rhg.generate comm ~n_per_rank ~seed:1 ()
        in
        ignore (Bfs.Exchangers.bfs mpi g ~source:0 ~exchanger))
  in
  Cmd.v (Cmd.info "bfs" ~exits ~doc:"Distributed BFS (Fig. 9/10 workload).")
    Term.(const run $ ranks_arg $ family $ exchanger $ n_per_rank $ model_arg $ obs_arg)

(* --- suffix --- *)

let suffix_cmd =
  let length = Arg.(value & opt int 65_536 & info [ "length" ] ~doc:"Total text length.") in
  let run ranks length model obs =
    ignore @@ run_with_obs ~obs ~model ~ranks (fun mpi ->
        let text =
          Suffix_array.Sa_common.random_text ~seed:2 ~alphabet:4 ~n:length ~p:ranks
            ~rank:(Comm.rank mpi)
        in
        ignore (Suffix_array.Sa_kamping.suffix_array mpi text))
  in
  Cmd.v
    (Cmd.info "suffix" ~exits ~doc:"Suffix array by prefix doubling (paper SIV-A workload).")
    Term.(const run $ ranks_arg $ length $ model_arg $ obs_arg)

(* --- phylo --- *)

let phylo_cmd =
  let iterations =
    Arg.(value & opt int 200 & info [ "iterations" ] ~doc:"Optimizer iterations.")
  in
  let run ranks iterations model obs =
    let score = ref 0. in
    ignore @@ run_with_obs ~obs ~model ~ranks (fun comm ->
        let s =
          Phylo.Workload.run Phylo.Workload.kamping comm ~sites_per_rank:1000 ~iterations
            ~n_branches:128 ~n_partitions:16
        in
        if Comm.rank comm = 0 then score := s);
    Printf.printf "final log-likelihood: %.6f\n" !score
  in
  Cmd.v (Cmd.info "phylo" ~exits ~doc:"Phylogenetic-inference workload (paper SIV-C).")
    Term.(const run $ ranks_arg $ iterations $ model_arg $ obs_arg)

(* --- repro-reduce --- *)

let repro_cmd =
  let elements =
    Arg.(value & opt int 100_000 & info [ "elements" ] ~doc:"Total array length.")
  in
  let run ranks elements model obs =
    let sum = ref 0. in
    ignore @@ run_with_obs ~obs ~model ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let chunk = (elements + ranks - 1) / ranks in
        let lo = min elements (Comm.rank mpi * chunk) in
        let hi = min elements (lo + chunk) in
        let local = Array.init (hi - lo) (fun j -> cos (float_of_int (lo + j))) in
        let s = Kamping_plugins.Repro_reduce.sum comm local in
        if Comm.rank mpi = 0 then sum := s);
    Printf.printf "reproducible sum: %.17g (bits %Lx)\n" !sum (Int64.bits_of_float !sum)
  in
  Cmd.v
    (Cmd.info "repro-reduce" ~exits ~doc:"Reproducible reduction (paper SV-C, Fig. 13).")
    Term.(const run $ ranks_arg $ elements $ model_arg $ obs_arg)

(* --- taskqueue --- *)

let taskqueue_cmd =
  let module TQ = Kamping_plugins.Taskqueue in
  let tasks_arg =
    Arg.(value & opt int 200 & info [ "tasks" ] ~docv:"N" ~doc:"Number of tasks to farm.")
  in
  let mode_arg =
    let mode_conv =
      ( (fun s -> match TQ.mode_of_string s with Ok m -> `Ok m | Error e -> `Error e),
        fun ppf m -> Format.pp_print_string ppf (TQ.mode_to_string m) )
    in
    Arg.(
      value
      & opt mode_conv TQ.Master_worker
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Scheduling mode: $(b,master) (pull-based master/worker with leases, \
             re-dispatch and checkpointed drain) or $(b,nbx) (decentralized \
             bulk-synchronous work stealing over the sparse NBX all-to-all).")
  in
  let lease_arg =
    Arg.(
      value & opt float 2e-3
      & info [ "lease-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Virtual-time lease per dispatched task (master mode); a straggler \
             overrunning it is re-dispatched with exponential backoff.")
  in
  let rate_arg =
    Arg.(
      value & opt float infinity
      & info [ "rate" ] ~docv:"TASKS/S"
          ~doc:"Token-bucket dispatch rate limit (virtual time); default unlimited.")
  in
  let batch_arg =
    Arg.(
      value & opt int 4
      & info [ "batch" ] ~docv:"N" ~doc:"Tasks executed per NBX round before rebalancing.")
  in
  let ckpt_arg =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Master replicates newly recorded results to its successor every \
             $(docv) completions, so a master death loses no recorded work.")
  in
  let run ranks tasks mode lease rate batch ckpt model obs =
    let n = tasks in
    let cfg =
      TQ.config ~mode ~lease_timeout:lease ~rate ~batch ~checkpoint_every:ckpt ()
    in
    let payloads = Array.init n (fun i -> 1000 + i) in
    let expected = Array.init n (fun i -> (payloads.(i) * payloads.(i)) + i) in
    (* Per-world-rank verdicts, filled in by the fibers. *)
    let verdicts = Array.make ranks None in
    let report =
      run_with_obs ~obs ~model ~ranks (fun mpi ->
          let comm = Kamping.Communicator.of_mpi mpi in
          let rt = Comm.runtime mpi in
          let me = Comm.rank mpi in
          let exec id payload =
            (* Heterogeneous modelled compute: stragglers exist even
               without chaos. *)
            Runtime.charge_compute rt me
              (2e-5
              *. float_of_int (1 + Xoshiro.hash_int ~seed:7 ~stream:0 ~counter:id ~bound:40)
              );
            (payload * payload) + id
          in
          try
            let out, _comm' =
              TQ.run ~cfg comm ~task_codec:Serial.Codec.int ~result_codec:Serial.Codec.int
                ~tasks:payloads ~exec ()
            in
            verdicts.(me) <- Some (out = expected)
          with Kamping_plugins.Ulfm.Failure_detected msg ->
            Errdefs.mpi_error (Errdefs.Err_other "RECOVERY_EXHAUSTED") "%s" msg)
    in
    let count name = Stats.count (Stats.counter report.Engine.stats name) in
    Printf.printf
      "taskqueue: mode=%s tasks=%d dispatched=%d completed=%d redispatched=%d \
       duplicates_suppressed=%d leases_expired=%d throttled=%d checkpoints=%d steals=%d\n"
      (TQ.mode_to_string mode) n
      (count "taskqueue.dispatched")
      (count "taskqueue.completed")
      (count "taskqueue.redispatched")
      (count "taskqueue.duplicates_suppressed")
      (count "taskqueue.leases_expired")
      (count "taskqueue.throttled")
      (count "taskqueue.checkpoints")
      (count "taskqueue.steals");
    (* Exactly-once verification: every surviving rank must hold the full,
       correct result vector. *)
    let ok = ref true in
    for r = 0 to ranks - 1 do
      if not (List.mem r report.Engine.killed) then
        match verdicts.(r) with
        | Some true -> ()
        | Some false ->
            ok := false;
            Printf.eprintf "kamping-repro: taskqueue: rank %d has wrong results\n" r
        | None ->
            ok := false;
            Printf.eprintf "kamping-repro: taskqueue: rank %d produced no results\n" r
    done;
    if !ok then Printf.printf "exactly-once verified on %d survivor(s)\n"
        (ranks - List.length report.Engine.killed)
    else exit Exit_codes.violation
  in
  Cmd.v
    (Cmd.info "taskqueue" ~exits
       ~doc:
         "Farm heterogeneous tasks through the elastic fault-tolerant task-queue \
          plugin and verify exactly-once results on every survivor.  Combine \
          with $(b,--chaos) (e.g. $(b,'fail=2\\@ops:50') or \
          $(b,'fail=1\\@task:3;lossy')) to exercise straggler re-dispatch, \
          duplicate suppression and master re-election under rank death.")
    Term.(
      const run $ ranks_arg $ tasks_arg $ mode_arg $ lease_arg $ rate_arg $ batch_arg
      $ ckpt_arg $ model_arg $ obs_arg)

(* --- trace-convert --- *)

let trace_convert_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Binary trace stream written by --trace-stream.")
  in
  let dst =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Chrome trace-event JSON output file.")
  in
  let run src dst =
    match Trace_stream.convert_to_chrome ~src ~dst with
    | Ok s ->
        Printf.printf "%s: %d ranks, %d events -> %s\n" src s.Trace_stream.s_ranks
          s.Trace_stream.s_events dst
    | Error msg ->
        Printf.eprintf "kamping-repro: trace-convert: %s\n" msg;
        exit Exit_codes.file_error
  in
  Cmd.v
    (Cmd.info "trace-convert" ~exits
       ~doc:
         "Convert a --trace-stream binary capture to Chrome trace-event JSON \
          (chrome://tracing, ui.perfetto.dev), validating that no events are \
          missing.")
    Term.(const run $ src $ dst)

(* --- bench-diff --- *)

let bench_diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline JSON Lines benchmark file.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Current JSON Lines benchmark file.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.10
      & info [ "tolerance" ] ~docv:"F"
          ~doc:"Relative tolerance before a change counts as a regression.")
  in
  let include_wall =
    Arg.(
      value & flag
      & info [ "include-wall" ]
          ~doc:
            "Also compare wall-clock metrics (machine-dependent; skipped by \
             default so the gate only sees deterministic modelled numbers).")
  in
  let run baseline current tolerance include_wall =
    let load path =
      match Bench_compare.load path with
      | Ok records -> records
      | Error msg ->
          Printf.eprintf "kamping-repro: bench-diff: %s\n" msg;
          exit Exit_codes.file_error
    in
    let old_records = load baseline in
    let new_records = load current in
    let verdict =
      Bench_compare.diff ~tolerance ~include_wall ~baseline:old_records
        ~current:new_records ()
    in
    Format.printf "%a@?" Bench_compare.pp_verdict verdict;
    if Bench_compare.has_regressions verdict then exit Exit_codes.violation
  in
  Cmd.v
    (Cmd.info "bench-diff" ~exits
       ~doc:
         "Compare two benchmark JSON Lines files (e.g. a committed \
          bench/history baseline against a fresh BENCH_COLL.json) and exit \
          nonzero if any metric regressed beyond the tolerance.")
    Term.(const run $ baseline $ current $ tolerance $ include_wall)

(* The verification planes (offline analyzer, model checker) are
   sequential-only: they reconstruct or enumerate the one deterministic
   schedule.  They still accept --domains so the flag is uniform across
   subcommands, but anything that resolves to a pool wider than 1 — the
   flag itself or an inherited MPISIM_DOMAINS — is a usage error, using
   the engine's own resolution rules (0/"auto" included). *)
let sequential_only_arg plane =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Accepted for uniformity with the run subcommands, but %s \
                requires sequential scheduling: any $(docv) (or \
                $(b,MPISIM_DOMAINS)) that resolves to more than one domain \
                is a usage error." plane))
  in
  let check d =
    match
      try Ok (Engine.resolve_domains d) with Errdefs.Usage_error m -> Error m
    with
    | Ok n when n <= 1 -> ()
    | Ok _ ->
        Printf.eprintf
          "kamping-repro: %s requires sequential scheduling; use --domains 1 \
           (or unset MPISIM_DOMAINS)\n"
          plane;
        exit Cmd.Exit.cli_error
    | Error m ->
        Printf.eprintf "kamping-repro: %s\n" m;
        exit Cmd.Exit.cli_error
  in
  Term.(const check $ domains)

(* --- analyze: offline happens-before race analysis of a trace stream --- *)

let analyze_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Binary trace stream written by --trace-stream (vector clocks are \
             stamped into every such capture automatically).")
  in
  let eager_threshold =
    Arg.(
      value
      & opt int Hb.default_eager_threshold
      & info [ "eager-threshold" ] ~docv:"BYTES"
          ~doc:
            "Sends of at least $(docv) bytes are treated as \
             rendezvous-protocol candidates for buffer-reuse windows.")
  in
  let include_internal =
    Arg.(
      value & flag
      & info [ "include-internal" ]
          ~doc:
            "Also report findings on internal-tag protocol messages \
             (collective lowerings, NBX); off by default because their \
             nondeterminism is resolved by the algorithms themselves.")
  in
  let run src eager_threshold include_internal () =
    match Hb.analyze ~eager_threshold ~include_internal src with
    | Error msg ->
        Printf.eprintf "kamping-repro: analyze: %s\n" msg;
        exit Exit_codes.file_error
    | Ok r ->
        Printf.printf
          "%s: %d ranks, %d events, %d sends, %d matches, %d wildcard receives, %d \
           vector clocks\n"
          src r.Hb.ranks r.Hb.events r.Hb.sends r.Hb.matches r.Hb.wildcard_posts
          r.Hb.vcs;
        if not r.Hb.had_vc then
          Printf.eprintf
            "kamping-repro: analyze: trace has no vector-clock records; re-record \
             with --trace-stream to enable happens-before analysis\n";
        if r.Hb.findings = [] then begin
          Printf.printf "no races found\n";
          exit Exit_codes.ok
        end
        else begin
          Report.print_findings Format.std_formatter r.Hb.findings;
          Printf.printf "%d finding(s): %s\n"
            (List.length r.Hb.findings)
            (String.concat ", " (Report.classes r.Hb.findings));
          exit Exit_codes.violation
        end
  in
  Cmd.v
    (Cmd.info "analyze" ~exits
       ~doc:
         "Offline happens-before analysis of a --trace-stream capture: report \
          wildcard-receive races (concurrent alternative senders, with \
          vector-clock witnesses), non-commutative reduction-order exposure \
          and unsafe send-buffer reuse windows.  Findings carry the message \
          sequence number used by the Chrome-trace flow arrows, so each one \
          can be located visually after $(b,trace-convert).  Exits 1 if any \
          finding is reported.")
    Term.(
      const run $ src $ eager_threshold $ include_internal
      $ sequential_only_arg "analyze")

(* --- verify: bounded schedule-space model checking --- *)

let prog_name_arg =
  let all = String.concat ", " (Progs.names ()) in
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROG" ~doc:(Printf.sprintf "Verification program (one of: %s)." all))

let lookup_prog name =
  match Progs.find name with
  | Some p -> p
  | None ->
      Printf.eprintf "kamping-repro: unknown program %S (have: %s)\n" name
        (String.concat ", " (Progs.names ()));
      exit Cmd.Exit.cli_error

let verify_cmd =
  let ranks =
    Arg.(
      value
      & opt (some int) None
      & info [ "ranks"; "p" ] ~docv:"P"
          ~doc:"Simulated ranks (default: the program's smallest interesting size).")
  in
  let max_schedules =
    Arg.(
      value
      & opt int Explore.default_max_schedules
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Bound on distinct schedules to execute before giving up.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCRIPT"
          ~doc:
            "Replay one decision script (comma-separated choice indices, as \
             printed in a violation witness) instead of exploring, and report \
             what that single schedule exhibits.")
  in
  let run name ranks max_schedules replay () =
    let p = lookup_prog name in
    let ranks = match ranks with Some r -> r | None -> p.Progs.ranks_hint in
    match replay with
    | Some script_s -> (
        match Choice.script_of_string script_s with
        | Error msg ->
            Printf.eprintf "kamping-repro: verify: bad --replay script: %s\n" msg;
            exit Cmd.Exit.cli_error
        | Ok script ->
            let ((outcome, decisions, _) as run) =
              Explore.replay ~ranks ~script p.Progs.body
            in
            let cls = Explore.replay_class run in
            Printf.printf "replayed %d decision(s): %s\n" (List.length decisions)
              (Choice.script_to_string
                 (List.map (fun (d : Choice.decision) -> d.Choice.d_chosen) decisions));
            (match outcome with
            | Explore.Completed -> ()
            | Explore.Violated { detail; _ } -> Printf.printf "%s\n" detail);
            Printf.printf "schedule class: %s\n" cls;
            exit (if cls = "ok" then Exit_codes.ok else Exit_codes.violation))
    | None ->
        Printf.printf "verifying %s at p=%d (%s)\n" p.Progs.name ranks p.Progs.doc;
        let r = Explore.explore ~max_schedules ~ranks p.Progs.body in
        Format.printf "%a@?" Explore.pp_result r;
        exit
          (if r.Explore.violations <> [] then Exit_codes.violation else Exit_codes.ok)
  in
  Cmd.v
    (Cmd.info "verify" ~exits
       ~doc:
         "Bounded schedule-space model checking of a named program: every \
          wildcard match choice becomes an explicit decision point, all \
          non-equivalent interleavings are executed under the heavy sanitizer \
          (non-overtaking-pruned, breadth-first), and the run either certifies \
          deadlock-freedom and match-determinism or prints one minimal \
          replayable decision trace per violation class.  Exits 1 on any \
          violation.")
    Term.(
      const run $ prog_name_arg $ ranks $ max_schedules $ replay
      $ sequential_only_arg "verify")

(* --- prog: run one named verification program under the obs flags --- *)

let prog_cmd =
  let ranks =
    Arg.(
      value
      & opt (some int) None
      & info [ "ranks"; "p" ] ~docv:"P"
          ~doc:"Simulated ranks (default: the program's smallest interesting size).")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List the available programs and exit.")
  in
  let opt_name =
    let all = String.concat ", " (Progs.names ()) in
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROG"
          ~doc:(Printf.sprintf "Verification program (one of: %s)." all))
  in
  let run_progs name ranks list model obs =
    if list then begin
      List.iter
        (fun p ->
          Printf.printf "%-15s (p>=%d)  %s\n" p.Progs.name p.Progs.ranks_hint
            p.Progs.doc)
        Progs.all;
      exit Exit_codes.ok
    end;
    let name =
      match name with
      | Some n -> n
      | None ->
          Printf.eprintf "kamping-repro: prog: missing PROG (or use --list)\n";
          exit Cmd.Exit.cli_error
    in
    let p = lookup_prog name in
    let ranks = match ranks with Some r -> r | None -> p.Progs.ranks_hint in
    let report = run_with_obs ~obs ~model ~ranks p.Progs.body in
    (* Print the sanitizer counters so a single instrumented run can be
       compared against what `analyze` finds offline (the hidden_race
       program is the demo: check.wildcard_race stays 0 here while the
       analyzer proves the race from vector clocks). *)
    if obs.check <> None then begin
      let stats = report.Engine.stats in
      (* Always show the race counter, even at zero — the hidden_race demo
         is exactly the comparison of this zero against `analyze`. *)
      Printf.printf "check.wildcard_race=%d\n"
        (Stats.count (Stats.counter stats "check.wildcard_race"));
      Stats.iter_counters stats (fun cname c ->
          if
            cname <> "check.wildcard_race"
            && String.length cname >= 6
            && String.sub cname 0 6 = "check."
          then Printf.printf "%s=%d\n" cname (Stats.count c))
    end
  in
  Cmd.v
    (Cmd.info "prog" ~exits
       ~doc:
         "Run one named verification program once, deterministically, under \
          the usual observability flags (--check, --trace-stream, --stats, \
          ...), printing the check.* counters when the sanitizer is on.  Use \
          together with $(b,analyze) and $(b,verify): a single instrumented \
          run shows what the runtime sanitizer can see; the offline analyzer \
          and the model checker show what it cannot.")
    Term.(const run_progs $ opt_name $ ranks $ list $ model_arg $ obs_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "kamping-repro" ~version:"1.0"
      ~doc:"Run kamping-ocaml paper experiments at full scale."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            sort_cmd;
            bfs_cmd;
            suffix_cmd;
            phylo_cmd;
            repro_cmd;
            taskqueue_cmd;
            trace_convert_cmd;
            bench_diff_cmd;
            analyze_cmd;
            verify_cmd;
            prog_cmd;
          ]))
