(* Tests for the observability layer: the trace recorder (span nesting,
   ring-buffer eviction, disabled-mode cost), the stats registry
   (histogram bucketing), the symmetric profiling diff, the batched timer
   aggregation, and end-to-end traces of a real collective. *)

open Mpisim

let find_events tr rank p = List.filter p (Trace.events tr rank)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- recorder basics --- *)

let test_span_nesting () =
  let clocks = [| 0. |] in
  let tr = Trace.create ~clocks in
  Trace.enable tr;
  Trace.with_span tr ~rank:0 ~cat:"outer" ~name:"a" (fun () ->
      clocks.(0) <- 1.;
      Trace.with_span tr ~rank:0 ~cat:"inner" ~name:"b" (fun () -> clocks.(0) <- 2.));
  (match Trace.events tr 0 with
  | [ e1; e2; e3; e4 ] ->
      Alcotest.(check string) "outer begin" "a" e1.Trace.name;
      Alcotest.(check bool) "outer begin kind" true (e1.Trace.kind = Trace.Begin);
      Alcotest.(check string) "inner begin" "b" e2.Trace.name;
      Alcotest.(check string) "inner end" "b" e3.Trace.name;
      Alcotest.(check bool) "inner end kind" true (e3.Trace.kind = Trace.End);
      Alcotest.(check string) "outer end" "a" e4.Trace.name;
      Alcotest.(check bool) "timestamps ordered" true
        (e1.Trace.ts <= e2.Trace.ts && e2.Trace.ts <= e3.Trace.ts
        && e3.Trace.ts <= e4.Trace.ts)
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs));
  (* Spans close even when the body raises. *)
  (try
     Trace.with_span tr ~rank:0 ~cat:"outer" ~name:"raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  let ends =
    find_events tr 0 (fun e -> e.Trace.kind = Trace.End && e.Trace.name = "raise")
  in
  Alcotest.(check int) "span closed on exception" 1 (List.length ends)

let test_ring_eviction () =
  let clocks = [| 0. |] in
  let tr = Trace.create ~clocks in
  Trace.enable ~capacity:4 tr;
  for i = 1 to 10 do
    Trace.instant tr ~rank:0 ~cat:"t" ~name:"e" ~a:i ~b:(-1) ~c:(-1)
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Trace.length tr 0);
  Alcotest.(check int) "dropped counts evictions" 6 (Trace.dropped tr 0);
  (* The survivors are the newest events, in order. *)
  let surviving = List.map (fun e -> e.Trace.a) (Trace.events tr 0) in
  Alcotest.(check (list int)) "oldest evicted first" [ 7; 8; 9; 10 ] surviving

let test_disabled_mode_is_free () =
  let clocks = [| 0. |] in
  let tr = Trace.create ~clocks in
  Alcotest.(check bool) "created disabled" false (Trace.enabled tr);
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.span_begin tr ~rank:0 ~cat:"c" ~name:"n";
    Trace.instant tr ~rank:0 ~cat:"c" ~name:"i" ~a:i ~b:0 ~c:0;
    Trace.span_end tr ~rank:0 ~cat:"c" ~name:"n"
  done;
  let allocated = Gc.minor_words () -. w0 in
  (* Not exactly 0 because reading minor_words itself boxes a float, but
     far below one word per emitter call. *)
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free when disabled (%.0f words)" allocated)
    true (allocated < 100.);
  Alcotest.(check int) "nothing recorded" 0 (Trace.length tr 0)

let test_chrome_export_parses_shape () =
  let clocks = [| 0.; 0. |] in
  let tr = Trace.create ~clocks in
  Trace.enable tr;
  Trace.with_span tr ~rank:0 ~cat:"coll" ~name:"bcast \"q\"" (fun () -> clocks.(0) <- 1e-3);
  Trace.instant tr ~rank:1 ~cat:"sim" ~name:"send" ~a:0 ~b:7 ~c:128;
  Trace.complete tr ~rank:1 ~cat:"sched" ~name:"segment" ~dur:1e-4;
  let json = Trace.to_chrome_json tr in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (contains ~needle json))
    [
      "\"traceEvents\"";
      "\"ph\":\"B\"";
      "\"ph\":\"E\"";
      "\"ph\":\"i\"";
      "\"ph\":\"X\"";
      "thread_name";
      "\\\"q\\\"" (* the quote in the span name must be escaped *);
    ]

(* --- stats registry --- *)

let test_histogram_bucketing () =
  let s = Stats.create () in
  let h = Stats.histogram s "x" in
  List.iter (Stats.observe h) [ 0.; 1.; 1.5; 2.0; 3.0; 1024.; -5. ];
  Alcotest.(check int) "total" 7 (Stats.total h);
  Alcotest.(check (float 1e-9)) "min" (-5.) (Stats.min_value h);
  Alcotest.(check (float 1e-9)) "max" 1024. (Stats.max_value h);
  let find_bucket v =
    List.find_opt (fun (lo, hi, _) -> lo < v && v <= hi) (Stats.buckets h)
  in
  (* Power-of-two upper bounds are inclusive: 1.0 lands in (0.5, 1]. *)
  (match find_bucket 1.0 with
  | Some (_, hi, n) ->
      Alcotest.(check (float 1e-12)) "1.0 bucket bound" 1.0 hi;
      Alcotest.(check int) "1.0 alone in its bucket" 1 n
  | None -> Alcotest.fail "no bucket for 1.0");
  (* 1.5 and 2.0 share (1, 2]. *)
  (match find_bucket 1.5 with
  | Some (lo, hi, n) ->
      Alcotest.(check (float 1e-12)) "lo" 1.0 lo;
      Alcotest.(check (float 1e-12)) "hi" 2.0 hi;
      Alcotest.(check int) "two values in (1,2]" 2 n
  | None -> Alcotest.fail "no bucket for 1.5");
  (* Non-positive values collapse into the first bucket. *)
  let first_lo, _, first_n = List.hd (Stats.buckets h) in
  Alcotest.(check bool) "first bucket open below" true (first_lo = neg_infinity);
  Alcotest.(check int) "0 and -5 in first bucket" 2 first_n;
  Alcotest.(check (float 1e-9)) "mean"
    ((0. +. 1. +. 1.5 +. 2.0 +. 3.0 +. 1024. -. 5.) /. 7.)
    (Stats.mean h)

let test_histogram_extremes () =
  let s = Stats.create () in
  let h = Stats.histogram s "x" in
  Stats.observe h 1e30;
  (* beyond 2^40: overflow bucket *)
  Stats.observe h 1e-30 (* below 2^-40: first finite bucket *);
  let buckets = Stats.buckets h in
  Alcotest.(check int) "two non-empty buckets" 2 (List.length buckets);
  let _, _, n_last = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check int) "overflow bucket holds the huge value" 1 n_last;
  Alcotest.(check (float 1e20)) "overflow quantile is exact max" 1e30
    (Stats.quantile h 1.0)

(* --- profiling facade --- *)

let test_profiling_diff_symmetric () =
  (* Snapshots from different tables: ops present only in [before] must
     surface with negative deltas instead of being silently dropped. *)
  let p1 = Profiling.create () in
  Profiling.record p1 ~op:"alpha" ~bytes:10;
  Profiling.record p1 ~op:"shared" ~bytes:1;
  let p2 = Profiling.create () in
  Profiling.record p2 ~op:"beta" ~bytes:20;
  Profiling.record p2 ~op:"shared" ~bytes:1;
  let d = Profiling.diff ~before:(Profiling.snapshot p1) ~after:(Profiling.snapshot p2) in
  Alcotest.(check bool) "alpha reported as removed" true
    (List.exists (fun (op, calls, bytes) -> op = "alpha" && calls = -1 && bytes = -10) d);
  Alcotest.(check bool) "beta reported as added" true
    (List.exists (fun (op, calls, bytes) -> op = "beta" && calls = 1 && bytes = 20) d);
  Alcotest.(check bool) "unchanged op not reported" true
    (not (List.exists (fun (op, _, _) -> op = "shared") d));
  (* Result stays sorted by op, like snapshots. *)
  let ops = List.map (fun (op, _, _) -> op) d in
  Alcotest.(check (list string)) "sorted" (List.sort compare ops) ops

(* --- batched timer aggregation --- *)

let test_timer_aggregate_single_allreduce () =
  let ranks = 4 in
  let per_rank, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let timer = Kamping.Timer.create comm in
        let charge s =
          Runtime.charge_compute (Comm.runtime mpi) (Comm.world_rank mpi) s
        in
        Kamping.Timer.time timer "phase1" (fun () ->
            charge (0.001 *. float_of_int (Comm.rank mpi + 1)));
        Kamping.Timer.time timer "phase2" (fun () -> charge 0.002);
        Kamping.Timer.aggregate timer)
  in
  (* The aggregate is the run's only collective: one allreduce per rank
     for ALL keys — not 3 per key per rank as the naive lowering. *)
  let allreduce_calls =
    List.fold_left
      (fun acc (op, calls, _) -> if op = "allreduce" then acc + calls else acc)
      0 report.Engine.profile
  in
  Alcotest.(check int) "one allreduce per rank for 2 keys" ranks allreduce_calls;
  Array.iter
    (fun aggs ->
      match Option.get aggs with
      | [ p1; p2 ] ->
          Alcotest.(check string) "key order" "phase1" p1.Kamping.Timer.key;
          Alcotest.(check (float 1e-9)) "phase1 min" 0.001 p1.Kamping.Timer.min;
          Alcotest.(check (float 1e-9)) "phase1 max" 0.004 p1.Kamping.Timer.max;
          Alcotest.(check (float 1e-9)) "phase1 mean" 0.0025 p1.Kamping.Timer.mean;
          Alcotest.(check (float 1e-9)) "phase2 min=mean=max" p2.Kamping.Timer.min
            p2.Kamping.Timer.max
      | l -> Alcotest.failf "expected 2 aggregates, got %d" (List.length l))
    per_rank

(* --- end-to-end traces --- *)

let test_allgather_trace_layers () =
  let _, report =
    Engine.run_collect ~trace_capacity:4096 ~ranks:4 (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        ignore (Kamping.Collectives.allgather comm Datatype.int [| Comm.rank mpi |]))
  in
  let tr = report.Engine.trace in
  for rank = 0 to 3 do
    let evs = Trace.events tr rank in
    let begins cat name =
      List.filter
        (fun e -> e.Trace.kind = Trace.Begin && e.Trace.cat = cat && e.Trace.name = name)
        evs
    in
    Alcotest.(check int)
      (Printf.sprintf "rank %d: one kamping allgather span" rank)
      1
      (List.length (begins "kamping" "allgather"));
    Alcotest.(check int)
      (Printf.sprintf "rank %d: one coll allgather span" rank)
      1
      (List.length (begins "coll" "allgather"));
    (* Nesting: the binding-layer span opens before and closes after the
       runtime collective's span. *)
    let index p =
      let r = ref (-1) in
      List.iteri (fun i e -> if !r < 0 && p e then r := i) evs;
      !r
    in
    let kb =
      index (fun e ->
          e.Trace.kind = Trace.Begin && e.Trace.cat = "kamping" && e.Trace.name = "allgather")
    and cb =
      index (fun e ->
          e.Trace.kind = Trace.Begin && e.Trace.cat = "coll" && e.Trace.name = "allgather")
    and ce =
      index (fun e ->
          e.Trace.kind = Trace.End && e.Trace.cat = "coll" && e.Trace.name = "allgather")
    and ke =
      index (fun e ->
          e.Trace.kind = Trace.End && e.Trace.cat = "kamping" && e.Trace.name = "allgather")
    in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d: kamping wraps coll" rank)
      true
      (kb >= 0 && kb < cb && cb < ce && ce < ke);
    (* Every rank of a 4-rank Bruck allgather sends at least once. *)
    let sends =
      List.filter
        (fun e -> e.Trace.kind = Trace.Instant && e.Trace.cat = "sim" && e.Trace.name = "send")
        evs
    in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d: has send instants" rank)
      true
      (List.length sends >= 1)
  done;
  (* busy/blocked accounting matches the clocks. *)
  for r = 0 to 3 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "rank %d: busy + blocked = time" r)
      report.Engine.times.(r)
      (report.Engine.busy.(r) +. report.Engine.blocked.(r))
  done

let test_critical_path_structure () =
  let _, report =
    Engine.run_collect ~trace_capacity:4096 ~ranks:4 (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        ignore
          (Kamping.Collectives.allreduce comm Datatype.int Reduce_op.int_sum
             [| Comm.rank mpi |]))
  in
  let hops =
    Trace_report.critical_path report.Engine.trace ~times:report.Engine.times
  in
  Alcotest.(check bool) "path is non-empty" true (hops <> []);
  let last = List.nth hops (List.length hops - 1) in
  let slowest = ref 0 in
  Array.iteri
    (fun i v -> if v > report.Engine.times.(!slowest) then slowest := i)
    report.Engine.times;
  Alcotest.(check int) "ends at the slowest rank" !slowest last.Trace_report.hop_rank;
  (* Hop intervals run forward in time along the chain. *)
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "hops ordered in time" true
          (a.Trace_report.hop_to <= b.Trace_report.hop_from +. 1e-12
          || a.Trace_report.hop_to <= b.Trace_report.hop_to);
        check_monotone rest
    | _ -> ()
  in
  check_monotone hops;
  List.iter
    (fun h ->
      Alcotest.(check bool) "hop interval well-formed" true
        (h.Trace_report.hop_from <= h.Trace_report.hop_to))
    hops

let test_trace_disabled_by_default () =
  let report =
    Engine.run ~ranks:2 (fun comm -> Coll.barrier comm)
  in
  Alcotest.(check bool) "trace disabled" false (Trace.enabled report.Engine.trace);
  Alcotest.(check int) "no events" 0 (Trace.length report.Engine.trace 0);
  (* Metrics still flow: the barrier's messages were counted. *)
  let sent = Stats.count (Stats.counter report.Engine.stats "msg.sent") in
  Alcotest.(check bool) "messages counted without tracing" true (sent > 0)

let tests =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "disabled mode is free" `Quick test_disabled_mode_is_free;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_parses_shape;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
    Alcotest.test_case "profiling diff symmetric" `Quick test_profiling_diff_symmetric;
    Alcotest.test_case "timer aggregate batched" `Quick
      test_timer_aggregate_single_allreduce;
    Alcotest.test_case "allgather trace layers" `Quick test_allgather_trace_layers;
    Alcotest.test_case "critical path structure" `Quick test_critical_path_structure;
    Alcotest.test_case "trace disabled by default" `Quick test_trace_disabled_by_default;
  ]

let () = Alcotest.run "trace" [ ("trace", tests) ]
