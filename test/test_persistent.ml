(* Tests for persistent operations (MPI-4 *_init / start / wait):
   request lifecycle, per-cycle buffer semantics, the equivalence of a
   persistent request started N times with N ad-hoc calls — including
   identical [coll.algo.*] counter attribution, since the frozen
   selection must match what every ad-hoc call would pick — and the
   zero-allocation guarantee of the single-rank start/wait cycle. *)

open Mpisim

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Point-to-point cycle: each start injects the buffer's current
   contents; each wait unpacks the matched message. *)

let test_send_recv_cycle () =
  let cycles = 5 in
  let results =
    Engine.run_values ~model:Net_model.zero_cost ~ranks:2 (fun comm ->
        if Comm.rank comm = 0 then begin
          let buf = Array.make 4 0 in
          let req = P2p.send_init comm Datatype.int ~dest:1 buf ~pos:0 ~count:4 in
          for c = 1 to cycles do
            Array.iteri (fun i _ -> buf.(i) <- (c * 10) + i) buf;
            Request.start req;
            Request.wait_p req
          done;
          Request.free_p req;
          [||]
        end
        else begin
          let into = Array.make 4 (-1) in
          let req = P2p.recv_init comm Datatype.int ~source:0 into in
          let seen = Array.make (cycles * 4) 0 in
          for c = 1 to cycles do
            Request.start req;
            Request.wait_p req;
            Array.blit into 0 seen ((c - 1) * 4) 4
          done;
          Request.free_p req;
          seen
        end)
  in
  let expected = Array.init (5 * 4) (fun i -> (((i / 4) + 1) * 10) + (i mod 4)) in
  Alcotest.(check (array int)) "each cycle carries the fresh buffer" expected results.(1)

(* ------------------------------------------------------------------ *)
(* Lifecycle state machine *)

let test_lifecycle_errors () =
  let expect_usage name body =
    try
      ignore (Engine.run ~model:Net_model.zero_cost ~ranks:1 body);
      Alcotest.fail (name ^ ": expected Usage_error")
    with Scheduler.Aborted { exn = Errdefs.Usage_error _; _ } -> ()
  in
  let fresh comm =
    let src = [| 1 |] and dst = [| 0 |] in
    Coll.allreduce_init comm Datatype.int Reduce_op.int_sum ~src ~dst
  in
  expect_usage "double start" (fun comm ->
      let req = P2p.send_init comm Datatype.int ~dest:0 [| 1 |] ~pos:0 ~count:1 in
      Request.start req;
      Request.start req);
  expect_usage "free while active" (fun comm ->
      let req = P2p.send_init comm Datatype.int ~dest:0 [| 1 |] ~pos:0 ~count:1 in
      Request.start req;
      Request.free_p req);
  expect_usage "start after free" (fun comm ->
      let req = fresh comm in
      Request.free_p req;
      Request.start req);
  expect_usage "double free" (fun comm ->
      let req = fresh comm in
      Request.free_p req;
      Request.free_p req)

let test_inactive_noops () =
  ignore
    (Engine.run ~model:Net_model.zero_cost ~ranks:1 (fun comm ->
         let src = [| 7 |] and dst = [| 0 |] in
         let req = Coll.allreduce_init comm Datatype.int Reduce_op.int_sum ~src ~dst in
         (* wait/test on an inactive request are no-ops, as in MPI *)
         Request.wait_p req;
         if not (Request.test_p req) then failwith "test on inactive must be true";
         if Request.is_active req then failwith "never started";
         Request.start req;
         Request.wait_p req;
         if dst.(0) <> 7 then failwith "cycle result";
         if Request.started_cycles req <> 1 then failwith "cycle count";
         Request.free_p req))

(* ------------------------------------------------------------------ *)
(* Equivalence property: a persistent request started N times produces
   byte-identical results and identical [coll.algo.*] attribution vs N
   ad-hoc calls — for non-power-of-two rank counts and non-commutative
   operators, under the heavy sanitizer (which additionally checks the
   cross-rank collective schedules of both runs). *)

let data_for ~seed ~rank ~len =
  Array.init len (fun i -> Xoshiro.hash_int ~seed ~stream:rank ~counter:i ~bound:1000 - 500)

let algo_counters report =
  let acc = ref [] in
  Stats.iter_counters report.Engine.stats (fun name c ->
      if String.starts_with ~prefix:"coll.algo." name then acc := (name, Stats.count c) :: !acc);
  List.rev !acc

let reduce_op_for ~commutative =
  if commutative then Reduce_op.int_sum
  else Reduce_op.custom ~commutative:false ~name:"lsub" (fun a b -> a - b)

(* Both variants mutate [src] the same deterministic way each cycle and
   concatenate every cycle's result. *)
let allreduce_variants ~p ~seed ~elems ~cycles ~commutative =
  let body_adhoc comm =
    let r = Comm.rank comm in
    let op = reduce_op_for ~commutative in
    let src = data_for ~seed ~rank:r ~len:elems in
    let out = Array.make (cycles * elems) 0 in
    for c = 1 to cycles do
      src.(0) <- src.(0) + c;
      let res = Coll.allreduce comm Datatype.int op src in
      Array.blit res 0 out ((c - 1) * elems) elems
    done;
    out
  in
  let body_persistent comm =
    let r = Comm.rank comm in
    let op = reduce_op_for ~commutative in
    let src = data_for ~seed ~rank:r ~len:elems in
    let dst = Array.make elems 0 in
    let req = Coll.allreduce_init comm Datatype.int op ~src ~dst in
    let out = Array.make (cycles * elems) 0 in
    for c = 1 to cycles do
      src.(0) <- src.(0) + c;
      Request.start req;
      Request.wait_p req;
      Array.blit dst 0 out ((c - 1) * elems) elems
    done;
    Request.free_p req;
    out
  in
  let run body =
    Engine.run_collect ~model:Net_model.zero_cost ~check_level:Check.Heavy ~ranks:p body
  in
  (run body_adhoc, run body_persistent)

let prop_persistent_allreduce_equals_adhoc =
  QCheck.Test.make ~name:"persistent allreduce = N ad-hoc calls" ~count:30
    QCheck.(
      quad (int_range 2 7) (int_bound 1_000_000) (int_range 1 48) (pair (int_range 1 4) bool))
    (fun (p, seed, elems, (cycles, commutative)) ->
      let (adhoc, rep_a), (pers, rep_p) =
        allreduce_variants ~p ~seed ~elems ~cycles ~commutative
      in
      Array.for_all2 (fun a b -> a = b) adhoc pers
      && algo_counters rep_a = algo_counters rep_p)

let prop_persistent_bcast_equals_adhoc =
  QCheck.Test.make ~name:"persistent bcast = N ad-hoc calls" ~count:30
    QCheck.(triple (int_range 2 7) (int_bound 1_000_000) (int_range 1 48))
    (fun (p, seed, elems) ->
      let cycles = 3 in
      let root = seed mod p in
      let run body =
        Engine.run_collect ~model:Net_model.zero_cost ~check_level:Check.Heavy ~ranks:p body
      in
      let adhoc, rep_a =
        run (fun comm ->
            let r = Comm.rank comm in
            let out = Array.make (cycles * elems) 0 in
            for c = 1 to cycles do
              let data =
                if r = root then Some (data_for ~seed:(seed + c) ~rank:root ~len:elems)
                else None
              in
              let res = Coll.bcast comm Datatype.int ~root data in
              Array.blit res 0 out ((c - 1) * elems) elems
            done;
            out)
      in
      let pers, rep_p =
        run (fun comm ->
            let r = Comm.rank comm in
            let buf = Array.make elems 0 in
            let req = Coll.bcast_init comm Datatype.int ~root buf in
            let out = Array.make (cycles * elems) 0 in
            for c = 1 to cycles do
              if r = root then
                Array.blit (data_for ~seed:(seed + c) ~rank:root ~len:elems) 0 buf 0 elems;
              Request.start req;
              Request.wait_p req;
              Array.blit buf 0 out ((c - 1) * elems) elems
            done;
            Request.free_p req;
            out)
      in
      Array.for_all2 (fun a b -> a = b) adhoc pers
      && algo_counters rep_a = algo_counters rep_p)

let prop_persistent_reduce_scatter_equals_adhoc =
  QCheck.Test.make ~name:"persistent reduce_scatter = N ad-hoc calls" ~count:30
    QCheck.(triple (int_range 2 7) (int_bound 1_000_000) (pair (int_range 0 5) bool))
    (fun (p, seed, (extra, commutative)) ->
      let cycles = 3 in
      (* uneven counts, some possibly zero *)
      let recv_counts =
        Array.init p (fun r -> Xoshiro.hash_int ~seed ~stream:91 ~counter:r ~bound:(extra + 2))
      in
      let total = Array.fold_left ( + ) 0 recv_counts in
      QCheck.assume (total > 0);
      let run body =
        Engine.run_collect ~model:Net_model.zero_cost ~check_level:Check.Heavy ~ranks:p body
      in
      let adhoc, rep_a =
        run (fun comm ->
            let r = Comm.rank comm in
            let op = reduce_op_for ~commutative in
            let src = data_for ~seed ~rank:r ~len:total in
            let mine = recv_counts.(r) in
            let out = Array.make (cycles * mine) 0 in
            for c = 1 to cycles do
              src.(0) <- src.(0) + c;
              let res = Coll.reduce_scatter comm Datatype.int op ~recv_counts src in
              Array.blit res 0 out ((c - 1) * mine) mine
            done;
            out)
      in
      let pers, rep_p =
        run (fun comm ->
            let r = Comm.rank comm in
            let op = reduce_op_for ~commutative in
            let src = data_for ~seed ~rank:r ~len:total in
            let mine = recv_counts.(r) in
            let dst = Array.make mine 0 in
            let req =
              Coll.reduce_scatter_init comm Datatype.int op ~recv_counts ~src ~dst
            in
            let out = Array.make (cycles * mine) 0 in
            for c = 1 to cycles do
              src.(0) <- src.(0) + c;
              Request.start req;
              Request.wait_p req;
              Array.blit dst 0 out ((c - 1) * mine) mine
            done;
            Request.free_p req;
            out)
      in
      Array.for_all2
        (fun a b -> a = b)
        (Array.concat (Array.to_list (Array.map (Option.value ~default:[||]) adhoc)))
        (Array.concat (Array.to_list (Array.map (Option.value ~default:[||]) pers)))
      && algo_counters rep_a = algo_counters rep_p)

(* ------------------------------------------------------------------ *)
(* The zero-allocation guarantee: on one rank (no transport) the
   start/wait cycle must not allocate at all. *)

let test_single_rank_cycle_allocation_free () =
  ignore
    (Engine.run ~model:Net_model.zero_cost ~clock_mode:Runtime.Virtual_only ~ranks:1
       (fun comm ->
         let src = Array.init 256 (fun i -> i) in
         let dst = Array.make 256 0 in
         let req = Coll.allreduce_init comm Datatype.int Reduce_op.int_sum ~src ~dst in
         for _ = 1 to 10 do
           Request.start req;
           Request.wait_p req
         done;
         let w0 = Gc.minor_words () in
         for _ = 1 to 10_000 do
           Request.start req;
           Request.wait_p req
         done;
         let words = Gc.minor_words () -. w0 in
         Request.free_p req;
         if words >= 100. then
           failwith (Printf.sprintf "start/wait allocated %.0f minor words/10k cycles" words)))

(* Multi-rank cycles allocate in transport, but must still allocate less
   than ad-hoc calls (which additionally rebuild working buffers and
   re-run selection every call). *)

let test_multi_rank_cycle_allocates_less () =
  let words_of body =
    let w0 = Gc.minor_words () in
    ignore (Engine.run ~model:Net_model.zero_cost ~clock_mode:Runtime.Virtual_only ~ranks:4 body);
    Gc.minor_words () -. w0
  in
  let elems = 2048 and cycles = 50 in
  let adhoc =
    words_of (fun comm ->
        let r = Comm.rank comm in
        let src = Array.init elems (fun i -> r + i) in
        for _ = 1 to cycles do
          ignore (Coll.allreduce comm Datatype.int Reduce_op.int_sum src)
        done)
  in
  let persistent =
    words_of (fun comm ->
        let r = Comm.rank comm in
        let src = Array.init elems (fun i -> r + i) in
        let dst = Array.make elems 0 in
        let req = Coll.allreduce_init comm Datatype.int Reduce_op.int_sum ~src ~dst in
        for _ = 1 to cycles do
          Request.start req;
          Request.wait_p req
        done;
        Request.free_p req)
  in
  Alcotest.(check bool)
    (Printf.sprintf "persistent %.0f < ad-hoc %.0f minor words" persistent adhoc)
    true (persistent < adhoc)

(* ------------------------------------------------------------------ *)
(* The kamping binding surface *)

let test_kamping_persistent () =
  let results =
    Engine.run_values ~model:Net_model.zero_cost ~ranks:4 (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let r = Kamping.Communicator.rank comm in
        let src = [| r + 1; r + 1 |] and dst = [| 0; 0 |] in
        let req = Kamping.Persistent.allreduce_init comm Datatype.int Reduce_op.int_sum ~src ~dst in
        Kamping.Persistent.start req;
        Kamping.Persistent.wait req;
        let rs_dst = [| 0 |] in
        let rs =
          Kamping.Persistent.reduce_scatter_init comm Datatype.int Reduce_op.int_sum
            ~src:[| r; r; r; r |] ~dst:rs_dst ()
        in
        Kamping.Persistent.start rs;
        Kamping.Persistent.wait rs;
        Kamping.Persistent.free rs;
        Kamping.Persistent.free req;
        (dst.(0), rs_dst.(0)))
  in
  Array.iter
    (fun (allred, rs) ->
      Alcotest.(check int) "allreduce sum" 10 allred;
      Alcotest.(check int) "reduce_scatter block" 6 rs)
    results

(* ------------------------------------------------------------------ *)
(* Regression (ISSUE 9 satellite): a fault-plan kill landing between
   [Request.start] and [Request.wait_p] of a persistent receive must
   surface ERR_PROC_FAILED out of [wait_p], not hang the parked fiber.
   Rank 0 completes one cycle (proving the request works), then its
   second send hits a [fail=0@ops:2] trigger and it dies without
   injecting; rank 1 is already parked in its second [wait_p]. *)

let test_kill_between_start_and_wait () =
  let plan = Result.get_ok (Fault_plan.parse "fail=0@ops:2") in
  let outcomes =
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
      ~check_level:Check.Heavy
      ~chaos:(Chaos.config ~plan ())
      ~ranks:2
      (fun comm ->
        if Comm.rank comm = 0 then begin
          let buf = [| 7; 8; 9 |] in
          for _c = 1 to 2 do
            P2p.send comm Datatype.int ~dest:1 buf
          done;
          `Sender
        end
        else begin
          let into = Array.make 3 (-1) in
          let req = P2p.recv_init comm Datatype.int ~source:0 into in
          Request.start req;
          Request.wait_p req;
          Alcotest.(check (array int)) "first cycle delivered" [| 7; 8; 9 |] into;
          Request.start req;
          match Request.wait_p req with
          | () -> `Completed
          | exception Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
              `Saw_proc_failed
        end)
  in
  let results, report = outcomes in
  Alcotest.(check (list int)) "rank 0 died on its second op" [ 0 ] report.Engine.killed;
  match results.(1) with
  | Some `Saw_proc_failed -> ()
  | Some `Completed -> Alcotest.fail "wait_p completed against a dead source"
  | Some `Sender | None -> Alcotest.fail "receiver produced no outcome"

let tests =
  [
    Alcotest.test_case "send/recv cycle" `Quick test_send_recv_cycle;
    Alcotest.test_case "kill between start and wait_p surfaces failure" `Quick
      test_kill_between_start_and_wait;
    Alcotest.test_case "lifecycle errors" `Quick test_lifecycle_errors;
    Alcotest.test_case "inactive wait/test no-ops" `Quick test_inactive_noops;
    Alcotest.test_case "single-rank cycle allocation-free" `Quick
      test_single_rank_cycle_allocation_free;
    Alcotest.test_case "multi-rank cycle allocates less" `Quick
      test_multi_rank_cycle_allocates_less;
    Alcotest.test_case "kamping persistent surface" `Quick test_kamping_persistent;
    qtest prop_persistent_allreduce_equals_adhoc;
    qtest prop_persistent_bcast_equals_adhoc;
    qtest prop_persistent_reduce_scatter_equals_adhoc;
  ]

let () = Alcotest.run "persistent" [ ("persistent", tests) ]
