(* Tests for the Check sanitizer: collective call-order consistency,
   request lifecycle (leaks, double-waits, send-buffer integrity),
   deadlock wait-for-cycle diagnosis, wildcard-race detection, level
   parsing, and the zero-cost guarantee of the off level. *)

open Mpisim

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_counter report name =
  Stats.count (Stats.counter report.Engine.stats ("check." ^ name))

(* Run [f] expecting a [Check_violation] of class [cls], whether raised
   directly (finalize scans) or from inside a fiber (wrapped in
   [Scheduler.Aborted]).  Returns the violation message. *)
let expect_violation ~cls f =
  match f () with
  | _ -> Alcotest.failf "expected a %S check violation, run succeeded" cls
  | exception Errdefs.Check_violation { check = c; msg; _ } ->
      Alcotest.(check string) "check class" cls c;
      msg
  | exception Scheduler.Aborted { exn = Errdefs.Check_violation { check = c; msg; _ }; _ }
    ->
      Alcotest.(check string) "check class" cls c;
      msg

let run_light body = Engine.run ~model:Net_model.zero_cost ~check_level:Check.Light ~ranks:2 body

let run_heavy ?(ranks = 2) body =
  Engine.run ~model:Net_model.zero_cost ~check_level:Check.Heavy ~ranks body

(* --- collective consistency --- *)

let test_collective_kind_mismatch () =
  let msg =
    expect_violation ~cls:"collective" (fun () ->
        run_light (fun mpi ->
            if Comm.rank mpi = 0 then Coll.barrier mpi
            else ignore (Coll.allgather mpi Datatype.int [| 1 |])))
  in
  Alcotest.(check bool) "names both ops" true
    (contains ~needle:"barrier" msg && contains ~needle:"allgather" msg);
  Alcotest.(check bool) "names both ranks" true
    (contains ~needle:"rank 0" msg && contains ~needle:"rank 1" msg)

let test_collective_root_mismatch () =
  let msg =
    expect_violation ~cls:"collective" (fun () ->
        run_light (fun mpi ->
            let r = Comm.rank mpi in
            ignore (Coll.bcast mpi Datatype.int ~root:r (Some [| r |]))))
  in
  Alcotest.(check bool) "reports the roots" true
    (contains ~needle:"root=0" msg && contains ~needle:"root=1" msg)

let test_collective_type_mismatch () =
  let msg =
    expect_violation ~cls:"collective" (fun () ->
        run_light (fun mpi ->
            if Comm.rank mpi = 0 then
              ignore (Coll.allreduce mpi Datatype.int Reduce_op.int_sum [| 1 |])
            else ignore (Coll.allreduce mpi Datatype.float Reduce_op.float_sum [| 1. |])))
  in
  Alcotest.(check bool) "reports the element types" true
    (contains ~needle:"ty=int" msg && contains ~needle:"ty=float" msg)

(* A rank that skips a trailing collective is caught by the finalize-time
   count scan (the run itself completes because bcast's root sends
   eagerly). *)
let test_collective_count_mismatch () =
  let msg =
    expect_violation ~cls:"collective" (fun () ->
        run_light (fun mpi ->
            let r = Comm.rank mpi in
            ignore (Coll.bcast mpi Datatype.int ~root:0 (if r = 0 then Some [| 1 |] else None));
            if r = 0 then ignore (Coll.bcast mpi Datatype.int ~root:0 (Some [| 2 |]))))
  in
  Alcotest.(check bool) "reports a count mismatch" true
    (contains ~needle:"count mismatch" msg)

let test_collective_clean_heavy () =
  let report =
    run_heavy ~ranks:4 (fun mpi ->
        let r = Comm.rank mpi in
        Coll.barrier mpi;
        ignore (Coll.bcast mpi Datatype.int ~root:0 (if r = 0 then Some [| 7 |] else None));
        ignore (Coll.allgather mpi Datatype.int [| r |]);
        ignore (Coll.allreduce mpi Datatype.int Reduce_op.int_sum [| r |]))
  in
  Alcotest.(check int) "no mismatches" 0 (check_counter report "collective_mismatch")

(* --- request lifecycle --- *)

let test_request_leak () =
  let msg =
    expect_violation ~cls:"request-leak" (fun () ->
        run_light (fun mpi ->
            if Comm.rank mpi = 0 then
              (* Never waited: leaked. *)
              ignore (P2p.isend mpi Datatype.int ~dest:1 [| 1; 2; 3 |])
            else ignore (P2p.recv mpi Datatype.int ~source:0 ())))
  in
  Alcotest.(check bool) "names the isend" true (contains ~needle:"isend" msg)

let test_double_wait () =
  let msg =
    expect_violation ~cls:"double-wait" (fun () ->
        run_light (fun mpi ->
            if Comm.rank mpi = 0 then begin
              let req = P2p.isend mpi Datatype.int ~dest:1 [| 1 |] in
              ignore (Request.wait req);
              ignore (Request.wait req)
            end
            else ignore (P2p.recv mpi Datatype.int ~source:0 ())))
  in
  Alcotest.(check bool) "explains the rule" true (contains ~needle:"exactly once" msg)

(* Completion-on-inactive must be flagged whichever entry point it comes
   through: [test] and [wait_any] report exactly like [wait]. *)
let test_double_completion_via_test () =
  ignore
    (expect_violation ~cls:"double-wait" (fun () ->
         run_light (fun mpi ->
             if Comm.rank mpi = 0 then begin
               let req = P2p.isend mpi Datatype.int ~dest:1 [| 1 |] in
               ignore (Request.wait req);
               ignore (Request.test req)
             end
             else ignore (P2p.recv mpi Datatype.int ~source:0 ()))))

let test_double_completion_via_wait_any () =
  ignore
    (expect_violation ~cls:"double-wait" (fun () ->
         run_light (fun mpi ->
             if Comm.rank mpi = 0 then begin
               let req = P2p.isend mpi Datatype.int ~dest:1 [| 1 |] in
               ignore (Request.wait req);
               ignore (Request.wait_any [ req ])
             end
             else ignore (P2p.recv mpi Datatype.int ~source:0 ()))))

(* Pool drains and [forget]-shared handles complete requests internally;
   none of that may count as a double-wait or leak. *)
let test_nb_pool_clean () =
  let report =
    run_heavy (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let r = Comm.rank mpi in
        let peer = 1 - r in
        let pool = Kamping.Request_pool.create () in
        for i = 0 to 2 do
          Kamping.Request_pool.add pool
            (Kamping.Nb.isend comm Datatype.int ~dest:peer [| i |])
        done;
        for _ = 0 to 2 do
          ignore (P2p.recv mpi Datatype.int ~source:peer ())
        done;
        ignore (Kamping.Request_pool.drain_completed pool);
        Kamping.Request_pool.wait_all pool)
  in
  Alcotest.(check int) "no double-waits" 0 (check_counter report "double_wait");
  Alcotest.(check int) "no leaks" 0 (check_counter report "request_leak")

let test_send_buffer_modified () =
  let msg =
    expect_violation ~cls:"send-buffer" (fun () ->
        run_heavy (fun mpi ->
            let comm = Kamping.Communicator.of_mpi mpi in
            if Comm.rank mpi = 0 then begin
              let data = [| 1; 2; 3 |] in
              let nb = Kamping.Nb.issend comm Datatype.int ~dest:1 data in
              (* Mutating a buffer whose ownership was transferred. *)
              data.(0) <- 99;
              ignore (Kamping.Nb.wait nb)
            end
            else ignore (P2p.recv mpi Datatype.int ~source:0 ())))
  in
  Alcotest.(check bool) "explains ownership" true (contains ~needle:"ownership" msg)

let test_send_buffer_clean () =
  let report =
    run_heavy (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        if Comm.rank mpi = 0 then begin
          let data = [| 1; 2; 3 |] in
          let nb = Kamping.Nb.isend comm Datatype.int ~dest:1 data in
          let returned = Kamping.Nb.wait nb in
          (* After completion the buffer is owned by the caller again. *)
          returned.(0) <- 99
        end
        else ignore (P2p.recv mpi Datatype.int ~source:0 ()))
  in
  Alcotest.(check int) "no false positive" 0 (check_counter report "send_buffer_modified")

(* --- deadlock diagnosis --- *)

let test_deadlock_recv_cycle () =
  match
    run_light (fun mpi ->
        let peer = 1 - Comm.rank mpi in
        ignore (P2p.recv mpi Datatype.int ~source:peer ~tag:3 ()))
  with
  | _ -> Alcotest.fail "expected a deadlock"
  | exception Errdefs.Mpi_error { code = Errdefs.Err_deadlock; msg } ->
      Alcotest.(check bool) "names a wait-for cycle" true
        (contains ~needle:"wait-for cycle" msg);
      Alcotest.(check bool) "edge names the operation" true
        (contains ~needle:"recv(src=1, tag=3" msg);
      Alcotest.(check bool) "both ranks appear" true
        (contains ~needle:"rank 0" msg && contains ~needle:"rank 1" msg)

let test_deadlock_ssend_cycle () =
  match
    run_light (fun mpi ->
        let peer = 1 - Comm.rank mpi in
        P2p.ssend mpi Datatype.int ~dest:peer [| 1 |])
  with
  | _ -> Alcotest.fail "expected a deadlock"
  | exception Errdefs.Mpi_error { code = Errdefs.Err_deadlock; msg } ->
      Alcotest.(check bool) "edge names the ssend" true
        (contains ~needle:"ssend(dst=" msg)

(* With the sanitizer off, the scheduler's plain exception is preserved. *)
let test_deadlock_check_off () =
  match
    Engine.run ~model:Net_model.zero_cost ~check_level:Check.Off ~ranks:2 (fun mpi ->
        let peer = 1 - Comm.rank mpi in
        ignore (P2p.recv mpi Datatype.int ~source:peer ()))
  with
  | _ -> Alcotest.fail "expected a deadlock"
  | exception Scheduler.Deadlock _ -> ()

(* --- wildcard races (heavy) --- *)

let test_wildcard_race () =
  let report =
    run_heavy (fun mpi ->
        if Comm.rank mpi = 0 then begin
          P2p.send mpi Datatype.int ~dest:1 ~tag:1 [| 10 |];
          P2p.send mpi Datatype.int ~dest:1 ~tag:2 [| 20 |];
          P2p.send mpi Datatype.int ~dest:1 ~tag:9 [| 0 |]
        end
        else begin
          (* The tag-9 receive orders us after both sends: the wildcard
             receive then has two eligible queued messages. *)
          ignore (P2p.recv mpi Datatype.int ~source:0 ~tag:9 ());
          ignore (P2p.recv mpi Datatype.int ());
          ignore (P2p.recv mpi Datatype.int ())
        end)
  in
  Alcotest.(check bool) "race recorded" true (check_counter report "wildcard_race" >= 1)

let test_wildcard_no_race () =
  let report =
    run_heavy (fun mpi ->
        if Comm.rank mpi = 0 then P2p.send mpi Datatype.int ~dest:1 [| 1 |]
        else ignore (P2p.recv mpi Datatype.int ()))
  in
  Alcotest.(check int) "single candidate is not a race" 0
    (check_counter report "wildcard_race")

(* --- levels --- *)

let test_level_parsing () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "round trip" true
        (Check.level_of_string (Check.level_to_string l) = Some l))
    [ Check.Off; Check.Light; Check.Heavy ];
  Alcotest.(check bool) "garbage rejected" true (Check.level_of_string "max" = None)

(* The off level must be free on hot paths: the call-site pattern is one
   load and branch ([Check.enabled] / [Check.heavy]) with the hook's
   arguments never evaluated.  Same technique as the trace recorder's
   disabled-mode test. *)
let test_off_level_is_free () =
  let stats = Stats.create () in
  let clocks = [| 0.; 0.; 0.; 0. |] in
  let trace = Trace.create ~clocks in
  let chk = Check.create ~stats ~trace ~size:4 () in
  Alcotest.(check bool) "created off" false (Check.enabled chk);
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    if Check.enabled chk then
      Check.on_collective chk ~context:0 ~rank:0 ~world_rank:0 ~op:"allgather" ~root:(-1)
        ~ty:"int";
    if Check.enabled chk then
      Check.set_waiting chk ~rank:0 (Check.Wrecv { src = i; tag = 0; ctx = 0; op = "recv" });
    if Check.enabled chk then Check.clear_waiting chk ~rank:0;
    if Check.heavy chk then
      Check.on_wildcard_match chk ~rank:0 ~src:(-1) ~tag:(-1) ~eligible:2
  done;
  let allocated = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f words for 40k guarded hook sites" allocated)
    true (allocated < 100.)

let () =
  Alcotest.run "check"
    [
      ( "check",
        [
          Alcotest.test_case "collective kind mismatch" `Quick test_collective_kind_mismatch;
          Alcotest.test_case "collective root mismatch" `Quick test_collective_root_mismatch;
          Alcotest.test_case "collective type mismatch" `Quick test_collective_type_mismatch;
          Alcotest.test_case "collective count mismatch" `Quick test_collective_count_mismatch;
          Alcotest.test_case "clean collectives under heavy" `Quick test_collective_clean_heavy;
          Alcotest.test_case "request leak" `Quick test_request_leak;
          Alcotest.test_case "double wait" `Quick test_double_wait;
          Alcotest.test_case "double completion via test" `Quick
            test_double_completion_via_test;
          Alcotest.test_case "double completion via wait_any" `Quick
            test_double_completion_via_wait_any;
          Alcotest.test_case "pool drain is not a double wait" `Quick test_nb_pool_clean;
          Alcotest.test_case "send buffer modified in flight" `Quick test_send_buffer_modified;
          Alcotest.test_case "send buffer clean after wait" `Quick test_send_buffer_clean;
          Alcotest.test_case "deadlock recv cycle" `Quick test_deadlock_recv_cycle;
          Alcotest.test_case "deadlock ssend cycle" `Quick test_deadlock_ssend_cycle;
          Alcotest.test_case "deadlock with check off" `Quick test_deadlock_check_off;
          Alcotest.test_case "wildcard race" `Quick test_wildcard_race;
          Alcotest.test_case "wildcard no race" `Quick test_wildcard_no_race;
          Alcotest.test_case "level parsing" `Quick test_level_parsing;
          Alcotest.test_case "off level is free" `Quick test_off_level_is_free;
        ] );
    ]
