(* Multicore backend: domain-safety of the shared primitives (wire pools,
   stats counters), parallel-vs-sequential determinism (fixed and
   randomized programs, taskqueue exactly-once), byte-compatibility of
   the sequential scheduler against a pre-multicore golden chaos trace,
   and the engine's sequential-only gates. *)

open Mpisim
module C = Kamping.Communicator
module TQ = Kamping_plugins.Taskqueue

(* ------------------------------------------------------------------ *)
(* Domain-safety hammers: the primitives the parallel scheduler leans on
   must conserve totals when hit from several domains at once. *)

let hammer_domains = 4
let hammer_iters = 25_000

let test_stats_hammer () =
  let stats = Stats.create () in
  Stats.set_threadsafe stats;
  let shared = Stats.counter stats "hammer.shared" in
  let hist = Stats.histogram stats "hammer.hist" in
  let worker d () =
    (* Concurrent registration (the registry lock) ... *)
    let local = Stats.counter stats (Printf.sprintf "hammer.domain%d" d) in
    for i = 1 to hammer_iters do
      (* ... atomic increments and adds on a shared counter ... *)
      Stats.incr shared;
      Stats.add shared 2;
      Stats.incr local;
      (* ... and locked histogram observation. *)
      if i mod 100 = 0 then Stats.observe hist 1.0
    done
  in
  let doms = Array.init hammer_domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join doms;
  Alcotest.(check int) "shared counter conserved"
    (hammer_domains * hammer_iters * 3)
    (Stats.count shared);
  for d = 0 to hammer_domains - 1 do
    Alcotest.(check int)
      (Printf.sprintf "domain %d counter conserved" d)
      hammer_iters
      (Stats.count (Stats.counter stats (Printf.sprintf "hammer.domain%d" d)))
  done;
  Alcotest.(check int) "histogram total conserved"
    (hammer_domains * (hammer_iters / 100))
    (Stats.total hist)

let test_wire_pool_hammer () =
  let pool = Wire.create_pool ~max_buffers:8 () in
  Wire.set_pool_threadsafe pool;
  let worker () =
    for i = 1 to hammer_iters do
      let w = Wire.acquire pool ~capacity:64 in
      Wire.put_int w i;
      let storage, len = Wire.unsafe_contents w in
      assert (len = 8);
      Wire.recycle pool storage;
      if i mod 1000 = 0 then Wire.preheat pool ~capacity:128
    done
  in
  let doms = Array.init hammer_domains (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join doms;
  let hits, misses, free = Wire.pool_stats pool in
  (* Every acquire is either a hit or a miss — none lost to a race. *)
  Alcotest.(check int) "acquires conserved" (hammer_domains * hammer_iters) (hits + misses);
  Alcotest.(check bool) "free list within bound" true (free <= 8)

(* ------------------------------------------------------------------ *)
(* Determinism: the same seeded Virtual_only program must produce
   identical results and identical (merged) metrics with the sequential
   scheduler and with the domain pool.  Schedule-independence holds for
   data results, virtual clocks and the per-op profile; arrival-order
   artifacts (unexpected-queue depths) are legitimately schedule-shaped
   and deliberately not compared. *)

let ring_program ~rounds comm =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let rt = Comm.runtime comm in
  let acc = ref 0 in
  for round = 1 to rounds do
    (* Rank-skewed virtual compute, so fibers do not stay in lockstep. *)
    Runtime.charge_compute rt (Comm.world_rank comm)
      (1e-6 *. float_of_int (1 + ((r + round) mod 5)));
    let v = [| (r * 1000) + round |] in
    P2p.send comm Datatype.int ~dest:((r + 1) mod n) v;
    let d, _ = P2p.recv comm Datatype.int ~source:((r + n - 1) mod n) () in
    acc := !acc + d.(0)
  done;
  let s = Coll.allreduce comm Datatype.int Reduce_op.int_sum [| !acc |] in
  ((Comm.rank comm * 1_000_000) + !acc, s.(0))

let run_ring ?domains ~ranks ~rounds () =
  Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only ?domains
    ~ranks (ring_program ~rounds)

(* The schedule-independent slice of a report: every rank's value, the
   virtual clocks, and the sorted per-op call/byte profile. *)
let fingerprint (results, report) =
  let buf = Buffer.create 256 in
  Array.iter
    (fun r ->
      match r with
      | Some (a, b) -> Buffer.add_string buf (Printf.sprintf "(%d,%d);" a b)
      | None -> Buffer.add_string buf "killed;")
    results;
  Array.iter (fun t -> Buffer.add_string buf (Printf.sprintf "%.9f;" t)) report.Engine.times;
  List.iter
    (fun (op, calls, bytes) -> Buffer.add_string buf (Printf.sprintf "%s=%d/%d;" op calls bytes))
    report.Engine.profile;
  Buffer.add_string buf
    (Printf.sprintf "sent=%d"
       (Stats.count (Stats.counter report.Engine.stats "msg.sent")));
  Buffer.contents buf

let test_ring_deterministic_across_domains () =
  let seq = fingerprint (run_ring ~ranks:4 ~rounds:25 ()) in
  List.iter
    (fun domains ->
      let par = fingerprint (run_ring ~domains ~ranks:4 ~rounds:25 ()) in
      Alcotest.(check string)
        (Printf.sprintf "domains=%d matches sequential" domains)
        seq par)
    [ 2; 4; 8 ]

(* A finite lookahead tightens the virtual-time barrier; results must not
   change.  [MPISIM_LOOKAHEAD] is read per run, so set/restore around. *)
let test_ring_with_zero_lookahead () =
  let seq = fingerprint (run_ring ~ranks:4 ~rounds:10 ()) in
  Unix.putenv "MPISIM_LOOKAHEAD" "0.0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MPISIM_LOOKAHEAD" "")
    (fun () ->
      let par = fingerprint (run_ring ~domains:4 ~ranks:4 ~rounds:10 ()) in
      Alcotest.(check string) "lookahead=0 matches sequential" seq par)

let qcheck_count =
  match int_of_string_opt (try Sys.getenv "MULTICORE_QCHECK_COUNT" with Not_found -> "")
  with
  | Some n when n > 0 -> n
  | _ -> 25

let prop_parallel_determinism =
  QCheck.Test.make ~name:"multicore: parallel == sequential" ~count:qcheck_count
    QCheck.(triple (int_range 2 6) (int_range 1 20) (int_range 2 4))
    (fun (ranks, rounds, domains) ->
      let seq = fingerprint (run_ring ~ranks ~rounds ()) in
      let par = fingerprint (run_ring ~domains ~ranks ~rounds ()) in
      if seq <> par then
        QCheck.Test.fail_reportf "ranks=%d rounds=%d domains=%d:@.seq %s@.par %s" ranks
          rounds domains seq par;
      true)

(* Taskqueue exactly-once postcondition under the domain pool: every
   surviving rank commits the full, correct result vector, and the
   dispatch accounting balances.  (Task placement is schedule-shaped, so
   per-rank execution counts are not compared against sequential.) *)
let test_taskqueue_exactly_once_parallel () =
  let n = 30 in
  let p = 4 in
  let tasks = Array.init n (fun i -> 1000 + i) in
  let expected = Array.init n (fun i -> ((1000 + i) * (1000 + i)) + i) in
  List.iter
    (fun mode ->
      let results, report =
        Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
          ~domains:4 ~ranks:p (fun mpi ->
            let comm = C.of_mpi mpi in
            let rt = C.runtime comm in
            let me = Comm.world_rank mpi in
            let exec id payload =
              Runtime.charge_compute rt me 2e-5;
              (payload * payload) + id
            in
            TQ.run
              ~cfg:(TQ.config ~mode ())
              comm ~task_codec:Serial.Codec.int ~result_codec:Serial.Codec.int ~tasks
              ~exec ())
      in
      Array.iteri
        (fun r res ->
          match res with
          | Some (out, _comm) ->
              Alcotest.(check (array int))
                (Printf.sprintf "%s rank %d results" (TQ.mode_to_string mode) r)
                expected out
          | None -> Alcotest.failf "rank %d has no result" r)
        results;
      let count name = Stats.count (Stats.counter report.Engine.stats name) in
      Alcotest.(check int)
        (Printf.sprintf "%s completions balance" (TQ.mode_to_string mode))
        n
        (count "taskqueue.completed" - count "taskqueue.duplicates_suppressed"))
    [ TQ.Master_worker; TQ.Nbx ]

(* ------------------------------------------------------------------ *)
(* Sequential byte-compatibility: the chaos replay log of the default
   scheduler must be byte-identical to the golden trace captured before
   the multicore backend existed.  Any drift here means the sequential
   path changed. *)

(* Under `dune runtest` the cwd is the test directory; under `dune exec`
   it is the project root. *)
let golden_fixture () =
  List.find Sys.file_exists
    [ "fixtures/golden_chaos_ring.log"; "test/fixtures/golden_chaos_ring.log" ]

let chaos_ring_program ~rounds comm =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let acc = ref 0 in
  for round = 1 to rounds do
    let v = [| (r * 1000) + round |] in
    P2p.send comm Datatype.int ~dest:((r + 1) mod n) v;
    let d, _ = P2p.recv comm Datatype.int ~source:((r + n - 1) mod n) () in
    acc := !acc + d.(0)
  done;
  !acc

let test_golden_chaos_replay () =
  let chaos =
    Chaos.config ~seed:99 ~lossy:true
      ~plan:(Result.get_ok (Fault_plan.parse "droplink=0>1@3"))
      ()
  in
  let results, report =
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only ~chaos
      ~ranks:4 (chaos_ring_program ~rounds:25)
  in
  Alcotest.(check (array (option int)))
    "ring results unchanged"
    [| Some 75325; Some 325; Some 25325; Some 50325 |]
    results;
  let log =
    match report.Engine.chaos_log with
    | Some l -> l
    | None -> Alcotest.fail "chaos log missing"
  in
  let ic = open_in_bin (golden_fixture ()) in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "byte-identical to pre-multicore golden trace" golden log

(* ------------------------------------------------------------------ *)
(* Engine gates: the sequential-only planes must be rejected loudly. *)

let expect_usage_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Usage_error" name
  | exception Errdefs.Usage_error _ -> ()

let test_parallel_gates () =
  expect_usage_error "chaos + domains" (fun () ->
      Engine.run ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
        ~chaos:(Chaos.config ~seed:1 ~lossy:true ())
        ~domains:2 ~ranks:2
        (fun _ -> ()));
  expect_usage_error "sanitizer + domains" (fun () ->
      Engine.run ~check_level:Check.Heavy ~domains:2 ~ranks:2 (fun _ -> ()));
  expect_usage_error "negative domains" (fun () ->
      Engine.run ~domains:(-3) ~ranks:2 (fun _ -> ()))

let test_domains_env () =
  Unix.putenv "MPISIM_DOMAINS" "2";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MPISIM_DOMAINS" "")
    (fun () ->
      let seq = fingerprint (run_ring ~domains:1 ~ranks:3 ~rounds:5 ()) in
      (* No explicit [domains]: the env var selects the pool. *)
      let par =
        fingerprint
          (Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
             ~ranks:3 (ring_program ~rounds:5))
      in
      Alcotest.(check string) "env-selected pool matches sequential" seq par)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "multicore"
    [
      ( "hammers",
        [
          quick "stats counters from 4 domains" test_stats_hammer;
          quick "wire pool from 4 domains" test_wire_pool_hammer;
        ] );
      ( "determinism",
        [
          quick "ring identical at 2/4/8 domains" test_ring_deterministic_across_domains;
          quick "zero lookahead barrier" test_ring_with_zero_lookahead;
          quick "taskqueue exactly-once at 4 domains" test_taskqueue_exactly_once_parallel;
          QCheck_alcotest.to_alcotest prop_parallel_determinism;
        ] );
      ( "sequential-compat",
        [ quick "golden chaos replay byte-identical" test_golden_chaos_replay ] );
      ( "gates",
        [
          quick "sequential-only planes rejected" test_parallel_gates;
          quick "MPISIM_DOMAINS env" test_domains_env;
        ] );
    ]
