(* Elastic task-queue plugin: exactly-once execution in both scheduling
   modes, straggler re-dispatch with duplicate suppression, dependency
   ordering, rate limiting, chaos/rank-death recovery (worker and master),
   replay determinism, and the headline randomized property. *)

open Mpisim
module C = Kamping.Communicator
module TQ = Kamping_plugins.Taskqueue

(* Deterministic workload: task [id] carries payload [1000 + id], costs a
   per-task modelled compute time, and yields [payload * payload + id].
   The cost function is where straggler tests inject slowness. *)
let payloads n = Array.init n (fun i -> 1000 + i)

let expected n = Array.init n (fun i -> ((1000 + i) * (1000 + i)) + i)

let default_cost _id = 2e-5

let run_queue ?chaos ?deps ?(cost = default_cost) ?(assert_deps = false) ~cfg ~p ~n () =
  let tasks = payloads n in
  let dep_table = match deps with Some d -> d | None -> Array.make n [] in
  (* Shared across fibers (one process): lets [exec] assert that every
     dependency finished before a dependent starts, on whatever rank. *)
  let finished = Array.make n false in
  Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
    ~check_level:Check.Heavy ?chaos ~ranks:p (fun mpi ->
      let comm = C.of_mpi mpi in
      let rt = C.runtime comm in
      let me = Comm.world_rank mpi in
      let exec id payload =
        if assert_deps then
          List.iter
            (fun dep ->
              if not finished.(dep) then
                Alcotest.failf "task %d started before dependency %d finished" id dep)
            dep_table.(id);
        Runtime.charge_compute rt me (cost id);
        finished.(id) <- true;
        (payload * payload) + id
      in
      TQ.run ~cfg comm ~task_codec:Serial.Codec.int ~result_codec:Serial.Codec.int ?deps
        ~tasks ~exec ())

let count report name = Stats.count (Stats.counter report.Engine.stats name)

let check_results ~p ~n (results, report) =
  let exp = expected n in
  let seen = ref false in
  for r = 0 to p - 1 do
    match results.(r) with
    | Some (out, _comm) ->
        seen := true;
        Alcotest.(check (array int)) (Printf.sprintf "rank %d results" r) exp out
    | None ->
        if not (List.mem r report.Engine.killed) then
          Alcotest.failf "surviving rank %d has no result" r
  done;
  Alcotest.(check bool) "at least one survivor" true !seen;
  report

(* --- Fault-free basics --- *)

let test_master_basic () =
  let cfg = TQ.config ~lease_timeout:1.0 () in
  let report = check_results ~p:4 ~n:25 (run_queue ~cfg ~p:4 ~n:25 ()) in
  Alcotest.(check int) "each task executed once" 25 (count report "taskqueue.completed");
  Alcotest.(check int) "each task dispatched once" 25 (count report "taskqueue.dispatched");
  Alcotest.(check int) "no duplicates" 0 (count report "taskqueue.duplicates_suppressed");
  Alcotest.(check int) "no expiries" 0 (count report "taskqueue.leases_expired")

let test_nbx_basic () =
  let cfg = TQ.config ~mode:TQ.Nbx ~batch:3 () in
  let report = check_results ~p:4 ~n:25 (run_queue ~cfg ~p:4 ~n:25 ()) in
  Alcotest.(check int) "each task executed once" 25 (count report "taskqueue.completed");
  Alcotest.(check int) "no duplicates" 0 (count report "taskqueue.duplicates_suppressed")

let test_single_rank () =
  let cfg = TQ.config ~lease_timeout:1.0 () in
  let report = check_results ~p:1 ~n:9 (run_queue ~cfg ~p:1 ~n:9 ()) in
  Alcotest.(check int) "alone: all executed locally" 9 (count report "taskqueue.completed")

(* --- Dependencies: a chain and a diamond, asserted at execution time --- *)

let dag_deps n =
  Array.init n (fun i ->
      if i = 0 then []
      else if i mod 3 = 0 then [ i - 1; i / 2 ]
      else if i mod 5 = 0 then [ i - 1 ]
      else [])

let test_deps_master () =
  let n = 24 in
  let cfg = TQ.config ~lease_timeout:1.0 () in
  ignore
    (check_results ~p:3 ~n
       (run_queue ~cfg ~deps:(dag_deps n) ~assert_deps:true ~p:3 ~n ()))

let test_deps_nbx () =
  let n = 24 in
  let cfg = TQ.config ~mode:TQ.Nbx ~batch:2 () in
  ignore
    (check_results ~p:3 ~n
       (run_queue ~cfg ~deps:(dag_deps n) ~assert_deps:true ~p:3 ~n ()))

let test_bad_deps_rejected () =
  let cfg = TQ.config () in
  match run_queue ~cfg ~deps:[| []; [ 1 ] |] ~p:1 ~n:2 () with
  | _ -> Alcotest.fail "forward dependency accepted"
  | exception Scheduler.Aborted { exn = Errdefs.Usage_error _; _ }
  | exception Errdefs.Usage_error _ ->
      ()

(* --- Stragglers: a slow task outlives its lease, is re-dispatched, and
   the late original result is suppressed --- *)

let test_straggler_redispatch () =
  let n = 12 in
  let cost id = if id = 5 then 0.05 else 1e-3 in
  let cfg = TQ.config ~lease_timeout:4e-3 ~lease_backoff:2.0 () in
  let report = check_results ~p:3 ~n (run_queue ~cfg ~cost ~p:3 ~n ()) in
  let completed = count report "taskqueue.completed" in
  Alcotest.(check bool) "lease expired" true (count report "taskqueue.leases_expired" > 0);
  Alcotest.(check bool) "task re-dispatched" true
    (count report "taskqueue.redispatched" > 0);
  Alcotest.(check bool) "extra executions happened" true (completed > n);
  (* Accounting: every surplus execution's result was suppressed at least
     once on its way into an authoritative store. *)
  Alcotest.(check bool) "surplus executions suppressed" true
    (count report "taskqueue.duplicates_suppressed" >= completed - n)

(* --- Token-bucket rate limiter --- *)

let test_rate_limiter () =
  let n = 10 in
  let cfg = TQ.config ~lease_timeout:1.0 ~rate:500. ~burst:1 () in
  let report = check_results ~p:2 ~n (run_queue ~cfg ~p:2 ~n ()) in
  Alcotest.(check bool) "dispatch was throttled" true
    (count report "taskqueue.throttled" > 0)

(* --- fail=R@task:K: a worker dies starting its K-th task --- *)

let chaos_of spec = Chaos.config ~plan:(Result.get_ok (Fault_plan.parse spec)) ()

let test_task_trigger_kill_master () =
  let cfg = TQ.config ~lease_timeout:1.0 ~checkpoint_every:2 () in
  let r = run_queue ~chaos:(chaos_of "fail=1@task:2") ~cfg ~p:3 ~n:14 () in
  let report = check_results ~p:3 ~n:14 r in
  Alcotest.(check (list int)) "worker 1 died" [ 1 ] report.Engine.killed;
  Alcotest.(check bool) "recovery shrank the comm" true (count report "ulfm.shrinks" > 0)

let test_task_trigger_kill_nbx () =
  let cfg = TQ.config ~mode:TQ.Nbx ~batch:2 () in
  let r = run_queue ~chaos:(chaos_of "fail=2@task:3") ~cfg ~p:4 ~n:16 () in
  let report = check_results ~p:4 ~n:16 r in
  Alcotest.(check (list int)) "worker 2 died" [ 2 ] report.Engine.killed;
  Alcotest.(check bool) "recovery shrank the comm" true (count report "ulfm.shrinks" > 0)

(* --- Master death: rank 0 dies mid-run; a survivor is re-elected master
   and resumes from gathered knowledge without losing recorded results --- *)

let test_master_death () =
  let cfg = TQ.config ~lease_timeout:1.0 ~checkpoint_every:1 () in
  let r = run_queue ~chaos:(chaos_of "fail=0@ops:60") ~cfg ~p:3 ~n:16 () in
  let report = check_results ~p:3 ~n:16 r in
  Alcotest.(check (list int)) "master died" [ 0 ] report.Engine.killed;
  Alcotest.(check bool) "recovery ran" true (count report "ulfm.shrinks" > 0);
  (* Satellite: run_with_recovery feeds the recovery-latency histogram. *)
  Alcotest.(check bool) "recovery time observed" true
    (Stats.total (Stats.histogram report.Engine.stats "ulfm.recovery_seconds") > 0)

(* --- Replay determinism: same seed + plan => byte-identical chaos log
   and identical results, in both modes --- *)

let replay_once mode =
  let cfg =
    match mode with
    | TQ.Master_worker -> TQ.config ~lease_timeout:3e-3 ~checkpoint_every:3 ()
    | TQ.Nbx -> TQ.config ~mode:TQ.Nbx ~batch:2 ()
  in
  let chaos =
    Chaos.config ~seed:77 ~lossy:true
      ~plan:(Result.get_ok (Fault_plan.parse "fail=2@task:4"))
      ()
  in
  let results, report = run_queue ~chaos ~cfg ~p:4 ~n:18 () in
  let outs =
    Array.map (function Some (out, _) -> Some (Array.to_list out) | None -> None) results
  in
  ( outs,
    (match report.Engine.chaos_log with
    | Some l -> l
    | None -> Alcotest.fail "chaos log missing"),
    report )

let test_replay_deterministic mode () =
  let o1, l1, _ = replay_once mode in
  let o2, l2, _ = replay_once mode in
  Alcotest.(check bool) "log is non-trivial" true (String.length l1 > 0);
  Alcotest.(check string) "byte-identical chaos log" l1 l2;
  Alcotest.(check bool) "identical results across replays" true (o1 = o2)

(* --- Headline property (ISSUE 9 acceptance): random task DAGs, random
   fault plans (worker and master deaths, link drops, lossy jitter), both
   modes — every surviving rank gets the full, correct result vector, or
   the run fails cleanly.  Never a deadlock, never a wrong or partial
   committed result, regardless of the fault schedule. --- *)

let qcheck_count =
  match int_of_string_opt (try Sys.getenv "TASKQUEUE_QCHECK_COUNT" with Not_found -> "") with
  | Some n when n > 0 -> n
  | _ -> 120

let prop_exactly_once_under_chaos =
  QCheck.Test.make ~name:"taskqueue: exactly-once under chaos" ~count:qcheck_count
    QCheck.(quad (int_range 2 5) (int_bound 100_000) bool (int_bound 5))
    (fun (p, seed, nbx, plan_kind) ->
      let n = 8 + (seed mod 22) in
      let victim = 1 + (seed mod (p - 1)) in
      let ops = 20 + (seed mod 60) in
      let plan_spec =
        match plan_kind with
        | 0 -> "" (* pure lossy: drops, duplicates, corruption, jitter *)
        | 1 -> Printf.sprintf "fail=%d@task:%d" victim (1 + (seed mod 4))
        | 2 -> Printf.sprintf "fail=0@ops:%d" ops (* master / rank-0 death *)
        | 3 ->
            Printf.sprintf "fail=%d@task:%d;fail=%d@ops:%d" victim
              (1 + (seed mod 3))
              ((victim mod (p - 1)) + 1)
              (ops * 2)
        | 4 -> Printf.sprintf "droplink=0>%d@%d" victim (1 + (seed mod 5))
        | _ -> Printf.sprintf "fail=%d@t:%g" victim (float_of_int (1 + (seed mod 50)) *. 1e-5)
      in
      let plan =
        match Fault_plan.parse plan_spec with
        | Ok pl -> pl
        | Error e -> Alcotest.failf "bad generated plan %S: %s" plan_spec e
      in
      let chaos = Chaos.config ~seed ~lossy:true ~plan ~max_retries:10 () in
      let deps =
        Array.init n (fun i ->
            if i > 0 && Xoshiro.hash_int ~seed ~stream:9 ~counter:i ~bound:4 = 0 then
              [ Xoshiro.hash_int ~seed ~stream:10 ~counter:i ~bound:i ]
            else [])
      in
      let cfg =
        TQ.config
          ~mode:(if nbx then TQ.Nbx else TQ.Master_worker)
          ~lease_timeout:(if seed mod 2 = 0 then 2e-3 else 0.5)
          ~batch:(1 + (seed mod 4))
          ~checkpoint_every:(1 + (seed mod 5))
          ~max_in_flight:(1 + (seed mod 8))
          ~max_recovery_retries:12 ()
      in
      let cost id =
        2e-5 *. float_of_int (1 + Xoshiro.hash_int ~seed ~stream:11 ~counter:id ~bound:40)
      in
      match run_queue ~chaos ~deps ~cost ~cfg ~p ~n () with
      | results, report ->
          let exp = Array.to_list (expected n) in
          let ok = ref true in
          for r = 0 to p - 1 do
            match results.(r) with
            | Some (out, _) -> if Array.to_list out <> exp then ok := false
            | None -> if not (List.mem r report.Engine.killed) then ok := false
          done;
          (* Exactly-once accounting: when nobody died, every surplus
             execution's result reaches a store and must be suppressed
             there.  (A rank dying between executing and reporting takes
             its surplus result to the grave — nothing to suppress.) *)
          let completed = count report "taskqueue.completed" in
          let suppressed = count report "taskqueue.duplicates_suppressed" in
          !ok
          && Array.exists (fun r -> r <> None) results
          && (report.Engine.killed <> [] || suppressed >= completed - n)
      | exception Scheduler.Aborted { exn = Errdefs.Mpi_error { code; _ }; _ }
        when code <> Errdefs.Err_deadlock ->
          true (* a clean, typed failure is an acceptable outcome *)
      | exception Scheduler.Aborted { exn = Kamping_plugins.Ulfm.Failure_detected _; _ } ->
          true (* recovery retries exhausted: clean give-up, not a hang *)
      | exception Errdefs.Mpi_error { code; _ } when code <> Errdefs.Err_deadlock -> true)

let () =
  Alcotest.run "taskqueue"
    [
      ( "basics",
        [
          Alcotest.test_case "master/worker fault-free" `Quick test_master_basic;
          Alcotest.test_case "nbx fault-free" `Quick test_nbx_basic;
          Alcotest.test_case "single-rank communicator" `Quick test_single_rank;
        ] );
      ( "deps",
        [
          Alcotest.test_case "DAG order respected (master)" `Quick test_deps_master;
          Alcotest.test_case "DAG order respected (nbx)" `Quick test_deps_nbx;
          Alcotest.test_case "forward dependency rejected" `Quick test_bad_deps_rejected;
        ] );
      ( "elasticity",
        [
          Alcotest.test_case "straggler re-dispatch + suppression" `Quick
            test_straggler_redispatch;
          Alcotest.test_case "token-bucket throttling" `Quick test_rate_limiter;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail@task kills worker (master)" `Quick
            test_task_trigger_kill_master;
          Alcotest.test_case "fail@task kills worker (nbx)" `Quick
            test_task_trigger_kill_nbx;
          Alcotest.test_case "master death and re-election" `Quick test_master_death;
        ] );
      ( "replay",
        [
          Alcotest.test_case "deterministic replay (master)" `Quick
            (test_replay_deterministic TQ.Master_worker);
          Alcotest.test_case "deterministic replay (nbx)" `Quick
            (test_replay_deterministic TQ.Nbx);
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_exactly_once_under_chaos ] );
    ]
