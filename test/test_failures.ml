(* Failure-injection coverage: every collective must surface
   ERR_PROC_FAILED when a member has failed (ULFM semantics, §V-B), and
   the Named front-end must agree with the labelled-argument API on random
   inputs. *)

open Mpisim

let qtest = QCheck_alcotest.to_alcotest

(* Run a 4-rank program where rank 2 dies first; the others then attempt
   [op] and must observe a failure (or revocation). *)
let check_collective_fails name (op : Comm.t -> unit) () =
  let observed = ref 0 in
  let _, report =
    Engine.run_collect ~ranks:4 (fun comm ->
        if Comm.rank comm = 2 then Fault.die comm
        else begin
          (* Let the victim die first. *)
          Scheduler.park
            ~describe:(fun () -> "awaiting failure")
            ~poll:(fun () ->
              if Runtime.is_failed (Comm.runtime comm) 2 then Some () else None);
          match op comm with
          | () -> ()
          | exception Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
              incr observed
          | exception Errdefs.Mpi_error { code = Errdefs.Err_revoked; _ } -> incr observed
        end)
  in
  Alcotest.(check (list int)) (name ^ ": victim recorded") [ 2 ] report.Engine.killed;
  Alcotest.(check int) (name ^ ": all survivors observed the failure") 3 !observed

let collective_failure_tests =
  let ops : (string * (Comm.t -> unit)) list =
    [
      ("barrier", fun c -> Coll.barrier c);
      ("bcast", fun c -> ignore (Coll.bcast c Datatype.int ~root:0 (if Comm.rank c = 0 then Some [| 1 |] else None)));
      ("allgather", fun c -> ignore (Coll.allgather c Datatype.int [| 1 |]));
      ( "allgatherv",
        fun c ->
          ignore (Coll.allgatherv c Datatype.int ~recv_counts:(Array.make 4 1) [| 1 |]) );
      ("alltoall", fun c -> ignore (Coll.alltoall c Datatype.int (Array.make 4 1)));
      ("gather", fun c -> ignore (Coll.gather c Datatype.int ~root:0 [| 1 |]));
      ("reduce", fun c -> ignore (Coll.reduce c Datatype.int Reduce_op.int_sum ~root:0 [| 1 |]));
      ( "allreduce",
        fun c -> ignore (Coll.allreduce_single c Datatype.int Reduce_op.int_sum 1) );
      ("scan", fun c -> ignore (Coll.scan_single c Datatype.int Reduce_op.int_sum 1));
      ( "reduce_scatter_block",
        fun c ->
          ignore (Coll.reduce_scatter_block c Datatype.int Reduce_op.int_sum (Array.make 4 1)) );
      ("comm_dup", fun c -> ignore (Comm_ops.dup c));
      ("comm_split", fun c -> ignore (Comm_ops.split c ~color:0 ()));
    ]
  in
  List.map
    (fun (name, op) ->
      Alcotest.test_case ("failure surfaces in " ^ name) `Quick
        (check_collective_fails name op))
    ops

(* Send to a failed rank raises. *)
let test_send_to_failed () =
  let caught = ref false in
  let _, _ =
    Engine.run_collect ~ranks:2 (fun comm ->
        if Comm.rank comm = 1 then Fault.die comm
        else begin
          Scheduler.park
            ~describe:(fun () -> "awaiting failure")
            ~poll:(fun () ->
              if Runtime.is_failed (Comm.runtime comm) 1 then Some () else None);
          match P2p.send comm Datatype.int ~dest:1 [| 1 |] with
          | () -> ()
          | exception Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
              caught := true
        end)
  in
  Alcotest.(check bool) "send-to-dead raises" true !caught

(* A parked victim of Fault.fail_world_rank is woken and discontinued by
   the scheduler rather than surfacing as a deadlock; its peers observe
   ERR_PROC_FAILED. *)
let test_fail_world_rank_wakes_victim () =
  let caught = ref false in
  let _, report =
    Engine.run_collect ~ranks:3 (fun comm ->
        match Comm.rank comm with
        | 1 ->
            (* Parks forever: rank 2 never sends. *)
            ignore (P2p.recv comm Datatype.int ~source:2 ())
        | 0 ->
            Scheduler.yield ();
            Scheduler.yield ();
            Fault.fail_world_rank (Comm.runtime comm) ~world_rank:1;
            (try ignore (P2p.recv comm Datatype.int ~source:1 ())
             with Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
               caught := true)
        | _ -> ())
  in
  Alcotest.(check (list int)) "victim discontinued" [ 1 ] report.Engine.killed;
  Alcotest.(check bool) "peer observed the failure" true !caught

(* --- Nonblocking completion over failed peers --- *)

(* wait_any over a mix of a satisfiable and a dead-source request must
   surface the failure instead of spinning. *)
let test_wait_any_failed_peer () =
  let caught = ref false in
  let _, report =
    Engine.run_collect ~ranks:3 (fun comm ->
        match Comm.rank comm with
        | 2 -> Fault.die comm
        | 1 -> ()
        | _ ->
            Scheduler.park
              ~describe:(fun () -> "awaiting failure")
              ~poll:(fun () ->
                if Runtime.is_failed (Comm.runtime comm) 2 then Some () else None);
            let buf1 = Array.make 1 0 and buf2 = Array.make 1 0 in
            let r1 = P2p.irecv_into comm Datatype.int ~source:1 buf1 in
            let r2 = P2p.irecv_into comm Datatype.int ~source:2 buf2 in
            (try ignore (Request.wait_any [ r1; r2 ])
             with Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
               caught := true))
  in
  Alcotest.(check (list int)) "victim recorded" [ 2 ] report.Engine.killed;
  Alcotest.(check bool) "wait_any surfaced the failure" true !caught

(* Request.test on a receive from a failed peer completes with the error
   rather than returning None forever. *)
let test_test_failed_peer () =
  let caught = ref false in
  let _, _ =
    Engine.run_collect ~ranks:2 (fun comm ->
        if Comm.rank comm = 1 then Fault.die comm
        else begin
          Scheduler.park
            ~describe:(fun () -> "awaiting failure")
            ~poll:(fun () ->
              if Runtime.is_failed (Comm.runtime comm) 1 then Some () else None);
          let req = P2p.irecv_into comm Datatype.int ~source:1 (Array.make 1 0) in
          try ignore (Request.test req)
          with Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } -> caught := true
        end)
  in
  Alcotest.(check bool) "test surfaced the failure" true !caught

(* Nonblocking collectives: the deferred operation must observe the
   failure at wait time on every survivor. *)
let test_nb_collective_failed_peer () =
  let observed = ref 0 in
  let _, report =
    Engine.run_collect ~ranks:4 (fun mpi ->
        if Comm.rank mpi = 2 then Fault.die mpi
        else begin
          Scheduler.park
            ~describe:(fun () -> "awaiting failure")
            ~poll:(fun () ->
              if Runtime.is_failed (Comm.runtime mpi) 2 then Some () else None);
          let comm = Kamping.Communicator.of_mpi mpi in
          let nb = Kamping.Nb_coll.iallreduce comm Datatype.int Reduce_op.int_sum [| 1 |] in
          match Kamping.Nb.wait nb with
          | _ -> ()
          | exception Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ }
          | exception Errdefs.Mpi_error { code = Errdefs.Err_revoked; _ } ->
              incr observed
        end)
  in
  Alcotest.(check (list int)) "victim recorded" [ 2 ] report.Engine.killed;
  Alcotest.(check int) "all survivors observed at wait" 3 !observed

(* --- A failure during recovery itself (shrink/agree store-once) --- *)

(* Rank 3 dies first; survivors enter shrink; rank 2 dies while the others
   are mid-recovery.  Without the store-once survivor group, late ranks
   recompute a differing group for the same context and the run dies with
   a usage error; with it, recovery converges over a second round. *)
let test_failure_during_shrink () =
  let final_sizes = ref [] in
  let _, report =
    Engine.run_collect ~ranks:4 (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        match Comm.rank mpi with
        | 3 -> Fault.die mpi
        | 2 ->
            Scheduler.park
              ~describe:(fun () -> "awaiting first failure")
              ~poll:(fun () ->
                if Runtime.is_failed (Comm.runtime mpi) 3 then Some () else None);
            (* Detect, recover — and die immediately after passing the
               shrink rendezvous, before ranks 0/1 resume from it.  The
               first rank through decides the survivor group {0,1,2};
               late resumers must reuse that decision even though rank 2
               is dead by the time they run (recomputing would give them
               {0,1} for the same context: a group mismatch). *)
            (try Kamping.Communicator.barrier comm
             with Errdefs.Mpi_error _ -> ());
            Kamping.Communicator.revoke comm;
            let _shrunk = Kamping.Communicator.shrink comm in
            Fault.die mpi
        | _ ->
            Scheduler.park
              ~describe:(fun () -> "awaiting first failure")
              ~poll:(fun () ->
                if Runtime.is_failed (Comm.runtime mpi) 3 then Some () else None);
            let _, comm' =
              Kamping_plugins.Ulfm.run_with_recovery ~max_retries:6 comm (fun c ->
                  (* A collective that fails while dead members remain. *)
                  Kamping.Communicator.barrier c)
            in
            final_sizes := Kamping.Communicator.size comm' :: !final_sizes)
  in
  Alcotest.(check bool) "ranks 2 and 3 died" true
    (List.sort compare report.Engine.killed = [ 2; 3 ]);
  Alcotest.(check (list int)) "survivors converged to a 2-rank comm" [ 2; 2 ]
    !final_sizes

(* --- Chaos recovery property (ISSUE 4 acceptance) --- *)

(* Under a random seed and fault plan, sample sort wrapped in a ULFM
   commit protocol must terminate with either a correctly sorted output
   over the surviving ranks or a clean [Mpi_error] — never a deadlock,
   never silent corruption (heavy sanitizer on throughout).

   The protocol is revoke-before-agree: a rank that detects a failure
   revokes the communicator first (waking every peer still parked in the
   sort's receives), then joins the agreement.  All live ranks reach
   [agree] exactly once per round; the store-once agreed value means they
   all commit in the same round or all retry, so nobody can exit while a
   peer still waits for them in the next round's shrink. *)
let prop_chaos_recovery_sort =
  let module C = Kamping.Communicator in
  let module U = Kamping_plugins.Ulfm in
  QCheck.Test.make ~name:"chaos: sort recovers or fails cleanly" ~count:120
    QCheck.(triple (int_range 3 6) (int_bound 100_000) (int_bound 3))
    (fun (p, seed, plan_kind) ->
      let victim = seed mod p in
      let ops = 5 + (seed mod 40) in
      let plan_spec =
        match plan_kind with
        | 0 -> Printf.sprintf "fail=%d@ops:%d" victim ops
        | 1 -> "" (* pure lossy: drops, duplicates, corruption, jitter *)
        | 2 ->
            Printf.sprintf "fail=%d@ops:%d;fail=%d@ops:%d" victim ops
              ((victim + 1) mod p) (ops * 3)
        | _ -> Printf.sprintf "fail=%d@t:%g" victim (float_of_int (1 + (seed mod 100)) *. 1e-5)
      in
      let plan =
        match Fault_plan.parse plan_spec with
        | Ok pl -> pl
        | Error e -> Alcotest.failf "bad generated plan %S: %s" plan_spec e
      in
      let chaos = Chaos.config ~seed ~lossy:true ~plan ~max_retries:10 () in
      let inputs =
        Array.init p (fun r ->
            Array.init (40 + r) (fun i ->
                Xoshiro.hash_int ~seed ~stream:r ~counter:i ~bound:10_000))
      in
      match
        Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
          ~check_level:Check.Heavy ~chaos ~ranks:p (fun mpi ->
            let r = Comm.rank mpi in
            let rec go comm tries =
              if tries <= 0 then
                Errdefs.mpi_error (Errdefs.Err_other "CHAOS_RETRIES_EXHAUSTED")
                  "chaos recovery: giving up after repeated failures"
              else begin
                let result =
                  try Some (Kamping_plugins.Sorter.sort comm Datatype.int inputs.(r))
                  with U.Failure_detected _ ->
                    (* Revoke before agreeing, so peers parked in the
                       sort's receives wake up and join the agreement. *)
                    if not (U.is_revoked comm) then U.revoke comm;
                    None
                in
                (* Contribute success only if the communicator is still
                   intact: a completed sort on a comm that has since lost
                   a member must not be committed, because the dead
                   member held part of the output. *)
                let intact = not (Comm.any_member_failed (C.mpi comm)) in
                let ok = U.agree comm (result <> None && intact) in
                match result with
                | Some v when ok -> v
                | _ ->
                    if not (U.is_revoked comm) then U.revoke comm;
                    go (U.shrink comm) (tries - 1)
              end
            in
            go (C.of_mpi mpi) (p + 3))
      with
      | results, report ->
          let survivors =
            List.filter (fun r -> not (List.mem r report.Engine.killed)) (List.init p Fun.id)
          in
          let out =
            Array.concat
              (List.map
                 (fun r ->
                   match results.(r) with
                   | Some a -> a
                   | None -> Alcotest.failf "survivor %d has no result" r)
                 survivors)
          in
          let sorted_list rs =
            List.sort compare (List.concat_map (fun r -> Array.to_list inputs.(r)) rs)
          in
          (* Multiset difference of sorted lists: [big - small], or [None]
             when [small] is not contained in [big]. *)
          let rec diff big small =
            match (big, small) with
            | rest, [] -> Some rest
            | [], _ :: _ -> None
            | b :: bs, s :: ss ->
                if b = s then diff bs ss
                else if b < s then Option.map (fun r -> b :: r) (diff bs (s :: ss))
                else None
          in
          let out_l = List.sort compare (Array.to_list out) in
          (* Globally sorted: the rank-order concatenation is already
             non-decreasing. *)
          Array.to_list out = out_l
          (* No silent corruption: every output element is traceable to
             some rank's input, multiset-wise — nothing invented, nothing
             duplicated.  (Data *loss* is permitted only when a rank
             died: a one-phase commit cannot save the output bucket of a
             victim that dies after the agreement — that data dies with
             it.) *)
          && diff (sorted_list (List.init p Fun.id)) out_l <> None
          (* When nobody died, the result must be exact: the union of all
             inputs, fully sorted. *)
          && (report.Engine.killed <> [] || out_l = sorted_list (List.init p Fun.id))
      | exception Scheduler.Aborted { exn = Errdefs.Mpi_error { code; _ }; _ }
        when code <> Errdefs.Err_deadlock ->
          true (* a clean, typed failure is an acceptable outcome *)
      | exception Errdefs.Mpi_error { code; _ } when code <> Errdefs.Err_deadlock -> true)

(* --- Named front-end equivalence --- *)

let prop_named_equals_labelled_allgatherv =
  QCheck.Test.make ~name:"Named.allgatherv = Collectives.allgatherv" ~count:40
    QCheck.(pair (int_range 1 8) (int_bound 10000))
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun mpi ->
            let comm = Kamping.Communicator.of_mpi mpi in
            let r = Comm.rank mpi in
            let len = Xoshiro.hash_int ~seed ~stream:2 ~counter:r ~bound:5 in
            let v = Array.init len (fun i -> (r * 100) + i) in
            let labelled = Kamping.Collectives.allgatherv comm Datatype.int v in
            let named =
              Kamping.Named.(extract_recv_buf (allgatherv comm Datatype.int [ send_buf v ]))
            in
            labelled = named)
      in
      Array.for_all Fun.id results)

let prop_named_equals_labelled_alltoallv =
  QCheck.Test.make ~name:"Named.alltoallv = Collectives.alltoallv" ~count:40
    QCheck.(pair (int_range 1 8) (int_bound 10000))
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun mpi ->
            let comm = Kamping.Communicator.of_mpi mpi in
            let r = Comm.rank mpi in
            let counts = Array.init p (fun d -> (seed + r + d) mod 3) in
            let data =
              Array.concat (List.init p (fun d -> Array.make counts.(d) ((r * 10) + d)))
            in
            let labelled =
              Kamping.Collectives.alltoallv comm Datatype.int ~send_counts:counts data
            in
            let named =
              Kamping.Named.(
                extract_recv_buf
                  (alltoallv comm Datatype.int [ send_buf data; send_counts counts ]))
            in
            labelled = named)
      in
      Array.for_all Fun.id results)

(* --- RMA accumulate property --- *)

let prop_rma_accumulate_sums =
  QCheck.Test.make ~name:"RMA accumulate totals are exact" ~count:30
    QCheck.(pair (int_range 2 8) (int_bound 10000))
    (fun (p, seed) ->
      let contributions r = Xoshiro.hash_int ~seed ~stream:r ~counter:0 ~bound:100 in
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let win = Rma.create comm Datatype.int (Array.make 1 0) in
            let r = Comm.rank comm in
            Rma.accumulate win ~target:(r mod 2) ~target_pos:0 Reduce_op.int_sum
              [| contributions r |];
            Rma.fence win;
            let v = (Rma.local win).(0) in
            Rma.free win;
            v)
      in
      let expected target =
        List.fold_left
          (fun acc r -> if r mod 2 = target then acc + contributions r else acc)
          0 (List.init p Fun.id)
      in
      results.(0) = expected 0 && results.(1) = expected 1)

let tests =
  collective_failure_tests
  @ [
      Alcotest.test_case "send to failed" `Quick test_send_to_failed;
      Alcotest.test_case "fail_world_rank wakes parked victim" `Quick
        test_fail_world_rank_wakes_victim;
      Alcotest.test_case "wait_any over failed peer" `Quick test_wait_any_failed_peer;
      Alcotest.test_case "test over failed peer" `Quick test_test_failed_peer;
      Alcotest.test_case "nonblocking collective over failed peer" `Quick
        test_nb_collective_failed_peer;
      Alcotest.test_case "failure during shrink (store-once recovery)" `Quick
        test_failure_during_shrink;
      qtest prop_chaos_recovery_sort;
      qtest prop_named_equals_labelled_allgatherv;
      qtest prop_named_equals_labelled_alltoallv;
      qtest prop_rma_accumulate_sums;
    ]

let () = Alcotest.run "failures" [ ("failures", tests) ]
