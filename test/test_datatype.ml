(* Unit and property tests for the datatype system (paper §III-D). *)

open Mpisim

let qtest = QCheck_alcotest.to_alcotest

let roundtrip (dt : 'a Datatype.t) (v : 'a) : 'a =
  let w = Wire.create_writer () in
  dt.Datatype.pack w v;
  dt.Datatype.unpack (Wire.reader_of_bytes (Wire.contents w))

let test_builtin_sizes () =
  Alcotest.(check int) "int" 8 (Datatype.elem_size Datatype.int);
  Alcotest.(check int) "int32" 4 (Datatype.elem_size Datatype.int32);
  Alcotest.(check int) "float" 8 (Datatype.elem_size Datatype.float);
  Alcotest.(check int) "float32" 4 (Datatype.elem_size Datatype.float32);
  Alcotest.(check int) "char" 1 (Datatype.elem_size Datatype.char);
  Alcotest.(check int) "bool" 1 (Datatype.elem_size Datatype.bool)

let test_builtins_committed () =
  List.iter
    (fun b -> Alcotest.(check bool) "committed" true b)
    [
      Datatype.is_committed Datatype.int;
      Datatype.is_committed Datatype.float;
      Datatype.is_committed Datatype.char;
      Datatype.is_committed Datatype.bool;
      Datatype.is_committed Datatype.byte;
    ]

let test_derived_commit_lifecycle () =
  let dt = Datatype.pair Datatype.int Datatype.float in
  Alcotest.(check bool) "fresh derived not committed" false (Datatype.is_committed dt);
  Datatype.commit dt;
  Alcotest.(check bool) "committed" true (Datatype.is_committed dt);
  Datatype.free dt;
  Alcotest.(check bool) "freed" false (Datatype.is_committed dt);
  Alcotest.check_raises "double free"
    (Invalid_argument "Datatype.free: double free: pair(int,float)") (fun () ->
      Datatype.free dt)

let test_cannot_free_builtin () =
  Alcotest.check_raises "free builtin"
    (Invalid_argument "Datatype.free: cannot free builtin") (fun () ->
      Datatype.free Datatype.int)

let test_with_committed_scopes () =
  let dt = Datatype.pair Datatype.int Datatype.int in
  let before = Datatype.live_derived_count () in
  Datatype.with_committed dt (fun dt' ->
      Alcotest.(check bool) "committed inside" true (Datatype.is_committed dt'));
  Alcotest.(check bool) "freed outside" false (Datatype.is_committed dt);
  Alcotest.(check int) "no leak" before (Datatype.live_derived_count ())

let test_uncommitted_send_rejected () =
  let dt = Datatype.pair Datatype.int Datatype.int in
  let failure = ref "" in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm dt ~dest:1 [| (1, 2) |]
            else ignore (P2p.recv comm dt ~source:0 ())))
   with Scheduler.Aborted { exn = Errdefs.Usage_error msg; _ } -> failure := msg);
  Alcotest.(check bool) "mentions commit" true
    (String.length !failure > 0
    && String.length !failure > 10
    &&
    let has_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    has_sub !failure "not committed")

let test_signature_mismatch_detected () =
  (* Send ints, receive as floats: same byte size, different signature. *)
  let caught = ref false in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm Datatype.int ~dest:1 [| 1; 2; 3 |]
            else ignore (P2p.recv comm Datatype.float ~source:0 ())))
   with Scheduler.Aborted { exn = Errdefs.Mpi_error { code = Errdefs.Err_type; _ }; _ } ->
     caught := true);
  Alcotest.(check bool) "type mismatch raises ERR_TYPE" true !caught

let test_blob_matches_any_blob () =
  (* byte <-> blob of equal total size must match (MPI_BYTE semantics). *)
  let sig_a = Signature.of_base ~count:24 Signature.Blob in
  let sig_b =
    Signature.concat
      [ Signature.of_base ~count:16 Signature.Blob; Signature.of_base ~count:8 Signature.Blob ]
  in
  Alcotest.(check bool) "normalized equal" true (Signature.matches sig_a sig_b)

let test_signature_zero_count () =
  (* A zero-count run is not a run at all: it must normalize to the empty
     signature, not a [(base, 0)] entry that would break [matches]. *)
  Alcotest.(check bool) "of_base ~count:0 is empty" true
    (Signature.of_base ~count:0 Signature.Int64 = Signature.empty);
  Alcotest.(check bool) "empty is left identity" true
    (Signature.append Signature.empty (Signature.of_base Signature.Char)
    = Signature.of_base Signature.Char);
  Alcotest.(check bool) "empty is right identity" true
    (Signature.append (Signature.of_base Signature.Char) Signature.empty
    = Signature.of_base Signature.Char);
  Alcotest.(check int) "empty has no bytes" 0 (Signature.size_in_bytes Signature.empty)

let test_signature_normalization () =
  let open Signature in
  (* Adjacent equal bases merge across every constructor. *)
  Alcotest.(check bool) "append merges runs" true
    (append (of_base ~count:2 Int64) (of_base ~count:3 Int64) = of_base ~count:5 Int64);
  Alcotest.(check bool) "concat merges runs" true
    (concat [ of_base Float64; of_base Float64; of_base ~count:2 Float64 ]
    = of_base ~count:4 Float64);
  Alcotest.(check bool) "repeat of a single run scales the count" true
    (repeat (of_base ~count:2 Char) 3 = of_base ~count:6 Char);
  Alcotest.(check bool) "repeat zero times is empty" true
    (repeat (of_base ~count:2 Char) 0 = empty);
  (* A multi-run repeat must keep the alternation (no bogus merge across
     the repetition boundary when the bases differ). *)
  let unit_sig = append (of_base Int64) (of_base Char) in
  Alcotest.(check bool) "multi-run repeat alternates" true
    (repeat unit_sig 2 = concat [ of_base Int64; of_base Char; of_base Int64; of_base Char ]);
  Alcotest.(check int) "repeat byte size" (2 * size_in_bytes unit_sig)
    (size_in_bytes (repeat unit_sig 2))

let test_blob_segmentation_independent () =
  let open Signature in
  (* MPI_BYTE semantics: how a byte region was assembled must not affect
     matching — only the total byte count does. *)
  Alcotest.(check bool) "2+2 blob matches 4 blob" true
    (matches (concat [ of_base ~count:2 Blob; of_base ~count:2 Blob ]) (of_base ~count:4 Blob));
  Alcotest.(check bool) "repeat-built blob matches" true
    (matches (repeat (of_base ~count:3 Blob) 4) (of_base ~count:12 Blob));
  Alcotest.(check bool) "different byte counts do not match" false
    (matches (of_base ~count:4 Blob) (of_base ~count:5 Blob));
  (* Segmentation independence must also hold for blob runs embedded
     between typed runs. *)
  let a = concat [ of_base Int64; of_base ~count:2 Blob; of_base ~count:6 Blob ] in
  let b = concat [ of_base Int64; of_base ~count:8 Blob ] in
  Alcotest.(check bool) "embedded blob runs merge" true (matches a b)

let test_zero_elem_decodes () =
  Alcotest.(check int) "int" 0 (Datatype.zero_elem Datatype.int);
  Alcotest.(check bool) "bool" false (Datatype.zero_elem Datatype.bool);
  let dt = Datatype.option_ Datatype.float in
  Alcotest.(check bool) "option" true (Datatype.zero_elem dt = None)

type my_record = { ra : int; rb : float; rc : char }

let my_record_dt =
  Datatype.record3 "my_record"
    (Datatype.field "ra" Datatype.int (fun r -> r.ra))
    (Datatype.field "rb" Datatype.float (fun r -> r.rb))
    (Datatype.field "rc" Datatype.char (fun r -> r.rc))
    (fun ra rb rc -> { ra; rb; rc })

let prop_record_roundtrip =
  let gen = QCheck.(triple int float printable_char) in
  QCheck.Test.make ~name:"record3 roundtrip" ~count:300 gen (fun (ra, rb, rc) ->
      let v = { ra; rb; rc } in
      let v' = roundtrip my_record_dt v in
      v'.ra = ra && Int64.bits_of_float v'.rb = Int64.bits_of_float rb && v'.rc = rc)

let prop_pair_roundtrip =
  QCheck.Test.make ~name:"pair roundtrip" ~count:300
    QCheck.(pair int int)
    (fun v -> roundtrip (Datatype.pair Datatype.int Datatype.int) v = v)

let prop_triple_roundtrip =
  QCheck.Test.make ~name:"triple roundtrip" ~count:300
    QCheck.(triple int bool int)
    (fun v -> roundtrip (Datatype.triple Datatype.int Datatype.bool Datatype.int) v = v)

let prop_option_roundtrip =
  QCheck.Test.make ~name:"option roundtrip" ~count:300
    QCheck.(option int)
    (fun v -> roundtrip (Datatype.option_ Datatype.int) v = v)

let prop_contiguous_roundtrip =
  let gen = QCheck.(array_of_size (Gen.return 5) int) in
  QCheck.Test.make ~name:"contiguous roundtrip" ~count:200 gen (fun v ->
      roundtrip (Datatype.contiguous ~count:5 Datatype.int) v = v)

let prop_array_pack_unpack =
  let gen = QCheck.(array_of_size Gen.small_nat int) in
  QCheck.Test.make ~name:"pack_array/unpack_array inverse" ~count:200 gen (fun v ->
      let w = Wire.create_writer () in
      Datatype.pack_array Datatype.int w v ~pos:0 ~count:(Array.length v);
      let r = Wire.reader_of_bytes (Wire.contents w) in
      Datatype.unpack_array Datatype.int r ~count:(Array.length v) = v)

let prop_size_matches_packed_bytes =
  let gen = QCheck.(triple int float printable_char) in
  QCheck.Test.make ~name:"elem_size = packed bytes" ~count:200 gen (fun (ra, rb, rc) ->
      let w = Wire.create_writer () in
      my_record_dt.Datatype.pack w { ra; rb; rc };
      Wire.length w = Datatype.elem_size my_record_dt)

(* ------------------------------------------------------------------ *)
(* Bulk fast path: the kernel dispatch must be an implementation detail.
   For every type that carries a kernel, packing through it and through
   the same type forced onto the general per-element path
   ([Datatype.without_bulk]) must produce byte-identical wire images, and
   each image must unpack correctly through either path. *)

let test_bulk_dispatch () =
  List.iter
    (fun (name, has) -> Alcotest.(check bool) name true has)
    [
      ("int has kernel", Datatype.bulk_available Datatype.int);
      ("float has kernel", Datatype.bulk_available Datatype.float);
      ("char has kernel", Datatype.bulk_available Datatype.char);
      ("byte has kernel", Datatype.bulk_available Datatype.byte);
      ("bool has kernel", Datatype.bulk_available Datatype.bool);
      ( "contiguous of builtin composes",
        Datatype.bulk_available (Datatype.contiguous ~count:3 Datatype.int) );
      ( "pair of builtins composes",
        Datatype.bulk_available (Datatype.pair Datatype.int Datatype.float) );
    ];
  Alcotest.(check bool) "record3 takes the general path" false
    (Datatype.bulk_available my_record_dt);
  Alcotest.(check bool) "without_bulk strips the kernel" false
    (Datatype.bulk_available (Datatype.without_bulk Datatype.int))

let bulk_equiv (type elt) ?(eq : elt -> elt -> bool = ( = )) (dt : elt Datatype.t)
    (v : elt array) : bool =
  let count = Array.length v in
  let general = Datatype.without_bulk dt in
  let pack_image d =
    let w = Wire.create_writer () in
    Datatype.pack_array d w v ~pos:0 ~count;
    Wire.contents w
  in
  let img_fast = pack_image dt and img_general = pack_image general in
  let arr_eq a b = Array.length a = Array.length b && Array.for_all2 eq a b in
  (* Cross-unpack both images through both paths, plus the in-place
     variant through the fast path. *)
  let into =
    let buf = Array.make count (Datatype.zero_elem dt) in
    Datatype.unpack_into dt (Wire.reader_of_bytes img_general) buf ~pos:0 ~count;
    buf
  in
  Bytes.equal img_fast img_general
  && arr_eq v (Datatype.unpack_array dt (Wire.reader_of_bytes img_general) ~count)
  && arr_eq v (Datatype.unpack_array general (Wire.reader_of_bytes img_fast) ~count)
  && arr_eq v into

let float_bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let prop_bulk_equals_general =
  let open QCheck in
  let arr ?(n = 32) g = Gen.(array_size (int_bound n) g) in
  let gen =
    Gen.oneof
      [
        Gen.map (fun a -> `Int a) (arr Gen.int);
        Gen.map (fun a -> `Float a) (arr Gen.float);
        Gen.map (fun a -> `Char a) (arr Gen.char);
        Gen.map (fun a -> `Bool a) (arr Gen.bool);
        Gen.map (fun a -> `Pair a) (arr ~n:16 Gen.(pair int float));
        Gen.map (fun a -> `Rows a) (arr ~n:8 Gen.(array_size (return 3) int));
      ]
  in
  QCheck.Test.make ~name:"bulk fast path = general path (wire images)" ~count:300
    (QCheck.make gen) (function
    | `Int a -> bulk_equiv Datatype.int a
    | `Float a -> bulk_equiv ~eq:float_bits_eq Datatype.float a
    | `Char a -> bulk_equiv Datatype.char a
    | `Bool a -> bulk_equiv Datatype.bool a
    | `Pair a ->
        bulk_equiv
          ~eq:(fun (i, f) (i', f') -> i = i' && float_bits_eq f f')
          (Datatype.pair Datatype.int Datatype.float)
          a
    | `Rows a -> bulk_equiv (Datatype.contiguous ~count:3 Datatype.int) a)

let test_gapped_vs_blob_sizes () =
  let gapped =
    Datatype.record3_with_gaps "gap_t"
      (Datatype.field "a" Datatype.int (fun (a, _, _) -> a))
      (Datatype.field ~pad_after:7 "b" Datatype.char (fun (_, b, _) -> b))
      (Datatype.field "c" Datatype.float (fun (_, _, c) -> c))
      (fun a b c -> (a, b, c))
  in
  Alcotest.(check int) "padded size" 24 (Datatype.elem_size gapped);
  let v = (11, 'q', 2.5) in
  Alcotest.(check bool) "roundtrip with gaps" true (roundtrip gapped v = v)

let tests =
  [
    Alcotest.test_case "builtin sizes" `Quick test_builtin_sizes;
    Alcotest.test_case "builtins committed" `Quick test_builtins_committed;
    Alcotest.test_case "derived commit lifecycle" `Quick test_derived_commit_lifecycle;
    Alcotest.test_case "cannot free builtin" `Quick test_cannot_free_builtin;
    Alcotest.test_case "with_committed scopes" `Quick test_with_committed_scopes;
    Alcotest.test_case "uncommitted send rejected" `Quick test_uncommitted_send_rejected;
    Alcotest.test_case "signature mismatch" `Quick test_signature_mismatch_detected;
    Alcotest.test_case "blob signature normalization" `Quick test_blob_matches_any_blob;
    Alcotest.test_case "zero-count signature" `Quick test_signature_zero_count;
    Alcotest.test_case "signature normalization" `Quick test_signature_normalization;
    Alcotest.test_case "blob segmentation independence" `Quick
      test_blob_segmentation_independent;
    Alcotest.test_case "zero_elem decodes" `Quick test_zero_elem_decodes;
    Alcotest.test_case "gapped struct size" `Quick test_gapped_vs_blob_sizes;
    Alcotest.test_case "bulk kernel dispatch" `Quick test_bulk_dispatch;
    qtest prop_bulk_equals_general;
    qtest prop_record_roundtrip;
    qtest prop_pair_roundtrip;
    qtest prop_triple_roundtrip;
    qtest prop_option_roundtrip;
    qtest prop_contiguous_roundtrip;
    qtest prop_array_pack_unpack;
    qtest prop_size_matches_packed_bytes;
  ]

let () = Alcotest.run "datatype" [ ("datatype", tests) ]
