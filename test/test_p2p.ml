(* Unit tests for point-to-point semantics: matching, wildcards,
   non-overtaking order, probing, synchronous sends, truncation, request
   completion, failure observation. *)

open Mpisim

let run2 body = Engine.run_values ~ranks:2 body

let test_basic_send_recv () =
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int ~dest:1 [| 1; 2; 3 |];
          [||]
        end
        else fst (P2p.recv comm Datatype.int ~source:0 ()))
  in
  Alcotest.(check (array int)) "payload" [| 1; 2; 3 |] results.(1)

let test_status_fields () =
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.float ~dest:1 ~tag:7 [| 1.5; 2.5 |];
          (0, 0, 0)
        end
        else begin
          let _, st = P2p.recv comm Datatype.float ~source:0 () in
          (Status.source st, Status.tag st, Status.count st)
        end)
  in
  Alcotest.(check (triple int int int)) "status" (0, 7, 2) results.(1)

let test_nonovertaking_same_pair () =
  (* Two same-tag messages from the same sender must arrive in order. *)
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int ~dest:1 [| 1 |];
          P2p.send comm Datatype.int ~dest:1 [| 2 |];
          P2p.send comm Datatype.int ~dest:1 [| 3 |];
          []
        end
        else
          List.init 3 (fun _ -> (fst (P2p.recv comm Datatype.int ~source:0 ())).(0)))
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] results.(1)

let test_tag_selectivity () =
  (* A tagged receive must skip earlier messages with other tags. *)
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int ~dest:1 ~tag:1 [| 100 |];
          P2p.send comm Datatype.int ~dest:1 ~tag:2 [| 200 |];
          []
        end
        else begin
          let b, _ = P2p.recv comm Datatype.int ~source:0 ~tag:2 () in
          let a, _ = P2p.recv comm Datatype.int ~source:0 ~tag:1 () in
          [ b.(0); a.(0) ]
        end)
  in
  Alcotest.(check (list int)) "tag selection" [ 200; 100 ] results.(1)

let test_any_source_oldest_first () =
  let results =
    Engine.run_values ~ranks:3 (fun comm ->
        (match Comm.rank comm with
        | 1 -> P2p.send comm Datatype.int ~dest:0 [| 11 |]
        | 2 -> P2p.send comm Datatype.int ~dest:0 [| 22 |]
        | _ -> ());
        (* Barrier so that both messages are unexpected at rank 0 before it
           posts any wildcard receive. *)
        Coll.barrier comm;
        if Comm.rank comm = 0 then begin
          let a, _ = P2p.recv comm Datatype.int () in
          let b, _ = P2p.recv comm Datatype.int () in
          [ a.(0); b.(0) ]
        end
        else [])
  in
  (* Deterministic scheduling: rank 1 injects before rank 2. *)
  Alcotest.(check (list int)) "oldest first" [ 11; 22 ] results.(0)

let test_probe_then_recv () =
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int ~dest:1 ~tag:5 [| 7; 8; 9 |];
          (0, [||])
        end
        else begin
          let st = P2p.probe comm () in
          let data, _ =
            P2p.recv comm Datatype.int ~source:(Status.source st) ~tag:(Status.tag st) ()
          in
          (Status.count st, data)
        end)
  in
  let count, data = results.(1) in
  Alcotest.(check int) "probed count" 3 count;
  Alcotest.(check (array int)) "probed data" [| 7; 8; 9 |] data

let test_iprobe_empty () =
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then P2p.iprobe comm () = None else true)
  in
  Alcotest.(check bool) "no message" true results.(0)

let test_truncation_error () =
  let caught = ref false in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm Datatype.int ~dest:1 [| 1; 2; 3; 4 |]
            else begin
              let buf = Array.make 2 0 in
              ignore (P2p.recv_into comm Datatype.int ~source:0 buf)
            end))
   with Scheduler.Aborted { exn = Errdefs.Mpi_error { code = Errdefs.Err_truncate; _ }; _ }
   -> caught := true);
  Alcotest.(check bool) "truncation raises" true !caught

let test_invalid_tag_rejected () =
  let caught = ref false in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then
              P2p.send comm Datatype.int ~dest:1 ~tag:(-3) [| 1 |]))
   with Scheduler.Aborted { exn = Errdefs.Usage_error _; _ } -> caught := true);
  Alcotest.(check bool) "negative tag rejected" true !caught

let test_invalid_rank_rejected () =
  let caught = ref false in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm Datatype.int ~dest:5 [| 1 |]))
   with Scheduler.Aborted { exn = Errdefs.Usage_error _; _ } -> caught := true);
  Alcotest.(check bool) "bad rank rejected" true !caught

let test_ssend_completes_after_match () =
  (* The sender's clock after an ssend must be >= the receiver's matching
     time: synchronous completion. *)
  let times =
    Engine.run_values ~ranks:2 (fun comm ->
        let rt = Comm.runtime comm in
        if Comm.rank comm = 0 then begin
          P2p.ssend comm Datatype.int ~dest:1 [| 1 |];
          Runtime.clock rt 0
        end
        else begin
          (* Receive only after doing some "work". *)
          Runtime.charge_compute rt 1 0.5;
          ignore (P2p.recv comm Datatype.int ~source:0 ());
          Runtime.clock rt 1
        end)
  in
  Alcotest.(check bool) "sender waited for the late receiver" true (times.(0) >= 0.5)

let test_send_is_eager () =
  (* A plain send must NOT wait for the receiver. *)
  let times =
    Engine.run_values ~ranks:2 (fun comm ->
        let rt = Comm.runtime comm in
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int ~dest:1 [| 1 |];
          Runtime.clock rt 0
        end
        else begin
          Runtime.charge_compute rt 1 0.5;
          ignore (P2p.recv comm Datatype.int ~source:0 ());
          0.
        end)
  in
  Alcotest.(check bool) "sender did not wait" true (times.(0) < 0.4)

let test_isend_irecv_wait () =
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          let req = P2p.isend comm Datatype.int ~dest:1 [| 5; 6 |] in
          ignore (Request.wait req);
          [||]
        end
        else begin
          let buf = Array.make 2 0 in
          let req = P2p.irecv_into comm Datatype.int ~source:0 buf in
          ignore (Request.wait req);
          buf
        end)
  in
  Alcotest.(check (array int)) "irecv data" [| 5; 6 |] results.(1)

let test_wait_any () =
  let results =
    Engine.run_values ~ranks:3 (fun comm ->
        match Comm.rank comm with
        | 0 ->
            (* Two dynamic receives, completed in sender order. *)
            let r1 = P2p.irecv_dyn comm Datatype.int ~source:1 () in
            let r2 = P2p.irecv_dyn comm Datatype.int ~source:2 () in
            let i, _ = Request.wait_any [ r1.P2p.base; r2.P2p.base ] in
            ignore (P2p.dyn_wait r1);
            ignore (P2p.dyn_wait r2);
            i
        | 1 ->
            P2p.send comm Datatype.int ~dest:0 [| 1 |];
            -1
        | _ ->
            P2p.send comm Datatype.int ~dest:0 [| 2 |];
            -1)
  in
  Alcotest.(check bool) "wait_any returned a valid index" true
    (results.(0) = 0 || results.(0) = 1)

let test_request_idempotent () =
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int ~dest:1 [| 9 |];
          true
        end
        else begin
          let r = P2p.irecv_dyn comm Datatype.int ~source:0 () in
          let d1, _ = P2p.dyn_wait r in
          let d2, _ = P2p.dyn_wait r in
          d1 == d2
        end)
  in
  Alcotest.(check bool) "wait is idempotent" true results.(1)

let test_recv_from_failed_raises () =
  let caught = ref false in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then Fault.die comm
            else ignore (P2p.recv comm Datatype.int ~source:0 ())))
   with
  | Scheduler.Aborted { exn = Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ }; _ }
  -> caught := true);
  Alcotest.(check bool) "recv-from-dead raises PROC_FAILED" true !caught

let test_send_bytes_roundtrip () =
  let payload = Bytes.of_string "hello wire" in
  let results =
    run2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send_bytes comm ~dest:1 payload;
          Bytes.empty
        end
        else fst (P2p.recv_bytes comm ~source:0 ()))
  in
  Alcotest.(check string) "bytes payload" "hello wire" (Bytes.to_string results.(1))

let test_sendrecv () =
  let results =
    Engine.run_values ~ranks:4 (fun comm ->
        let r = Comm.rank comm in
        let n = Comm.size comm in
        let data, _ =
          P2p.sendrecv comm Datatype.int ~dest:((r + 1) mod n) ~source:((r + n - 1) mod n)
            [| r |]
        in
        data.(0))
  in
  Alcotest.(check (array int)) "ring shift" [| 3; 0; 1; 2 |] results

(* ------------------------------------------------------------------ *)
(* Mailbox unit tests: the O(1) structures must keep MPI matching
   semantics, reclaim drained state, and refuse to cancel a matched
   receive. *)

let mk_msg ?(context = 0) ~src ~tag ~seq () =
  Message.make ~context ~src ~dst:0 ~tag ~payload:(Bytes.create 8) ~payload_off:0
    ~payload_len:8 ~count:8
    ~signature:(Signature.of_base ~count:8 Signature.Blob)
    ~sent_at:0. ~arrival:0. ~seq ~sync:false ()

let test_mailbox_cancel_after_match_fails () =
  let mb = Mailbox.create () in
  let p = Mailbox.post mb ~context:0 ~src:1 ~tag:5 ~now:0. in
  Alcotest.(check bool) "message matches the posted recv" true
    (Mailbox.deliver mb (mk_msg ~src:1 ~tag:5 ~seq:0 ()));
  let raised =
    try
      Mailbox.cancel mb p;
      false
    with Errdefs.Usage_error _ -> true
  in
  Alcotest.(check bool) "cancel after match is a usage error" true raised;
  Mailbox.retire mb p;
  (* An unmatched posted receive still cancels fine. *)
  let q = Mailbox.post mb ~context:0 ~src:1 ~tag:6 ~now:0. in
  Mailbox.cancel mb q;
  Alcotest.(check int) "posted set empty again" 0 (Mailbox.posted_depth mb)

let test_mailbox_unexpected_reclaim () =
  let mb = Mailbox.create () in
  for i = 0 to 9 do
    Alcotest.(check bool) "unexpected" false
      (Mailbox.deliver mb (mk_msg ~src:i ~tag:i ~seq:i ()))
  done;
  Alcotest.(check int) "one live key per (src, tag)" 10
    (Mailbox.unexpected_key_count mb);
  for i = 0 to 9 do
    if Mailbox.find_unexpected mb ~context:0 ~src:i ~tag:i = None then
      Alcotest.fail "delivered message not found"
  done;
  Alcotest.(check int) "drained keys reclaimed" 0 (Mailbox.unexpected_key_count mb);
  Alcotest.(check int) "no unexpected left" 0 (Mailbox.unexpected_depth mb)

let test_mailbox_posted_tombstone_bound () =
  let mb = Mailbox.create () in
  (* A long-lived receive parked at the front stops front-pruning, so the
     bound must come from compaction. *)
  let keep = Mailbox.post mb ~context:0 ~src:99 ~tag:99 ~now:0. in
  for i = 0 to 199 do
    let p = Mailbox.post mb ~context:0 ~src:1 ~tag:(i mod 7) ~now:0. in
    Mailbox.cancel mb p
  done;
  Alcotest.(check int) "one live posted recv" 1 (Mailbox.posted_depth mb);
  Alcotest.(check bool) "tombstones compacted away" true
    (Mailbox.posted_physical_length mb <= 32);
  Mailbox.cancel mb keep

let test_mailbox_wildcard_oldest_across_keys () =
  let mb = Mailbox.create () in
  (* Arrival order deliberately disagrees with key hash order. *)
  ignore (Mailbox.deliver mb (mk_msg ~src:3 ~tag:1 ~seq:7 ()));
  ignore (Mailbox.deliver mb (mk_msg ~src:1 ~tag:2 ~seq:2 ()));
  ignore (Mailbox.deliver mb (mk_msg ~src:2 ~tag:3 ~seq:5 ()));
  match
    Mailbox.find_unexpected mb ~context:0 ~src:Mailbox.any_source ~tag:Mailbox.any_tag
  with
  | Some m -> Alcotest.(check int) "oldest seq wins" 2 m.Message.seq
  | None -> Alcotest.fail "wildcard found nothing"

(* The data plane must move exactly the bytes the program sends: pooled
   buffers and slice hand-off change ownership, never volume. *)
let test_pingpong_byte_volume () =
  let iters = 5 and bytes = 64 in
  let report =
    Engine.run ~ranks:2 (fun comm ->
        let payload = Array.make bytes 'x' in
        if Comm.rank comm = 0 then
          for _ = 1 to iters do
            P2p.send comm Datatype.byte ~dest:1 payload;
            ignore (P2p.recv comm Datatype.byte ~source:1 ())
          done
        else
          for _ = 1 to iters do
            ignore (P2p.recv comm Datatype.byte ~source:0 ());
            P2p.send comm Datatype.byte ~dest:0 payload
          done)
  in
  let find op =
    match List.find_opt (fun (o, _, _) -> o = op) report.Engine.profile with
    | Some (_, calls, b) -> (calls, b)
    | None -> (0, 0)
  in
  Alcotest.(check (pair int int))
    "send calls and bytes"
    (2 * iters, 2 * iters * bytes)
    (find "send");
  Alcotest.(check (pair int int))
    "recv calls and bytes"
    (2 * iters, 2 * iters * bytes)
    (find "recv")

let tests =
  [
    Alcotest.test_case "basic send/recv" `Quick test_basic_send_recv;
    Alcotest.test_case "status fields" `Quick test_status_fields;
    Alcotest.test_case "non-overtaking order" `Quick test_nonovertaking_same_pair;
    Alcotest.test_case "tag selectivity" `Quick test_tag_selectivity;
    Alcotest.test_case "wildcard oldest-first" `Quick test_any_source_oldest_first;
    Alcotest.test_case "probe then recv" `Quick test_probe_then_recv;
    Alcotest.test_case "iprobe empty" `Quick test_iprobe_empty;
    Alcotest.test_case "truncation error" `Quick test_truncation_error;
    Alcotest.test_case "invalid tag rejected" `Quick test_invalid_tag_rejected;
    Alcotest.test_case "invalid rank rejected" `Quick test_invalid_rank_rejected;
    Alcotest.test_case "ssend synchronous completion" `Quick test_ssend_completes_after_match;
    Alcotest.test_case "send is eager" `Quick test_send_is_eager;
    Alcotest.test_case "isend/irecv/wait" `Quick test_isend_irecv_wait;
    Alcotest.test_case "wait_any" `Quick test_wait_any;
    Alcotest.test_case "request idempotence" `Quick test_request_idempotent;
    Alcotest.test_case "recv from failed" `Quick test_recv_from_failed_raises;
    Alcotest.test_case "raw bytes transfer" `Quick test_send_bytes_roundtrip;
    Alcotest.test_case "sendrecv ring" `Quick test_sendrecv;
    Alcotest.test_case "mailbox: cancel after match fails" `Quick
      test_mailbox_cancel_after_match_fails;
    Alcotest.test_case "mailbox: drained keys reclaimed" `Quick
      test_mailbox_unexpected_reclaim;
    Alcotest.test_case "mailbox: tombstones bounded" `Quick
      test_mailbox_posted_tombstone_bound;
    Alcotest.test_case "mailbox: wildcard oldest across keys" `Quick
      test_mailbox_wildcard_oldest_across_keys;
    Alcotest.test_case "pingpong byte volume" `Quick test_pingpong_byte_volume;
  ]

let () = Alcotest.run "p2p" [ ("p2p", tests) ]
