(* Intentionally-buggy programs, one per sanitizer check class.

   Each fixture is a small program containing a real bug.  Two modes:

   - default: run once under [--check heavy] and exit 0 only if the
     sanitizer reports the expected violation — so CI proves every check
     class actually fires on the kind of program it was built for, not
     just in unit tests.

       dune exec test/fixtures/check_fixtures.exe -- all
       dune exec test/fixtures/check_fixtures.exe -- deadlock

   - --verify: run the SAME buggy bodies through the bounded
     schedule-space model checker (Explore) at p=2, assert that it
     detects the expected violation class, and that the minimal decision
     trace it emits replays to the same finding — the CI contract of the
     verification plane.

       dune exec test/fixtures/check_fixtures.exe -- --verify all *)

open Mpisim

(* ---------------- the buggy program bodies ---------------- *)

(* One rank calls barrier, the other allgather: divergent collective order. *)
let collective_body mpi =
  if Comm.rank mpi = 0 then Coll.barrier mpi
  else ignore (Coll.allgather mpi Datatype.int [| 1 |])

(* An isend whose request is never completed: leaked at finalize. *)
let leak_body mpi =
  if Comm.rank mpi = 0 then ignore (P2p.isend mpi Datatype.int ~dest:1 [| 1 |])
  else ignore (P2p.recv mpi Datatype.int ~source:0 ())

(* The same request waited twice: the second wait reads a freed request. *)
let double_wait_body mpi =
  if Comm.rank mpi = 0 then begin
    let req = P2p.isend mpi Datatype.int ~dest:1 [| 1 |] in
    ignore (Request.wait req : Status.t);
    ignore (Request.wait req : Status.t)
  end
  else ignore (P2p.recv mpi Datatype.int ~source:0 ())

(* A send buffer mutated while the synchronous send is still in flight. *)
let send_buffer_body mpi =
  let comm = Kamping.Communicator.of_mpi mpi in
  if Comm.rank mpi = 0 then begin
    let data = [| 1; 2; 3 |] in
    let nb = Kamping.Nb.issend comm Datatype.int ~dest:1 data in
    data.(0) <- 99;
    ignore (Kamping.Nb.wait nb)
  end
  else ignore (P2p.recv mpi Datatype.int ~source:0 ())

(* Classic head-to-head receive deadlock. *)
let deadlock_body mpi =
  let peer = 1 - Comm.rank mpi in
  ignore (P2p.recv mpi Datatype.int ~source:peer ())

(* A wildcard receive with two eligible queued messages. *)
let wildcard_body mpi =
  if Comm.rank mpi = 0 then begin
    P2p.send mpi Datatype.int ~dest:1 ~tag:1 [| 10 |];
    P2p.send mpi Datatype.int ~dest:1 ~tag:2 [| 20 |];
    P2p.send mpi Datatype.int ~dest:1 ~tag:9 [| 0 |]
  end
  else begin
    ignore (P2p.recv mpi Datatype.int ~source:0 ~tag:9 ());
    ignore (P2p.recv mpi Datatype.int ());
    ignore (P2p.recv mpi Datatype.int ())
  end

(* ---------------- single-run mode (sanitizer must fire) ---------------- *)

let run body = Engine.run ~model:Net_model.zero_cost ~check_level:Check.Heavy ~ranks:2 body

(* Run a buggy [body], expecting a Check_violation of class [cls]. *)
let expect_violation ~cls body =
  match run body with
  | (_ : Engine.report) ->
      Printf.eprintf "FAIL: expected a %S violation, run succeeded\n" cls;
      false
  | exception Errdefs.Check_violation { check; _ }
  | exception Scheduler.Aborted { exn = Errdefs.Check_violation { check; _ }; _ } ->
      if check = cls then true
      else begin
        Printf.eprintf "FAIL: expected a %S violation, got %S\n" cls check;
        false
      end
  | exception exn ->
      Printf.eprintf "FAIL: expected a %S violation, got %s\n" cls
        (Printexc.to_string exn);
      false

let collective_mismatch () = expect_violation ~cls:"collective" collective_body

let request_leak () = expect_violation ~cls:"request-leak" leak_body

let double_wait () = expect_violation ~cls:"double-wait" double_wait_body

let send_buffer () = expect_violation ~cls:"send-buffer" send_buffer_body

(* The deadlock report must name the cycle. *)
let deadlock () =
  match run deadlock_body with
  | (_ : Engine.report) ->
      Printf.eprintf "FAIL: expected a deadlock, run succeeded\n";
      false
  | exception Errdefs.Mpi_error { code = Errdefs.Err_deadlock; msg } ->
      let contains needle =
        let nh = String.length msg and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
        go 0
      in
      if contains "wait-for cycle" && contains "recv(src=" then true
      else begin
        Printf.eprintf "FAIL: deadlock report lacks a named cycle:\n%s\n" msg;
        false
      end
  | exception exn ->
      Printf.eprintf "FAIL: expected Err_deadlock, got %s\n" (Printexc.to_string exn);
      false

(* Counted, not raised — the run completes but the race counter must be
   non-zero. *)
let wildcard_race () =
  match run wildcard_body with
  | report ->
      let races = Stats.count (Stats.counter report.Engine.stats "check.wildcard_race") in
      if races >= 1 then true
      else begin
        Printf.eprintf "FAIL: wildcard race not recorded\n";
        false
      end
  | exception exn ->
      Printf.eprintf "FAIL: wildcard fixture raised %s\n" (Printexc.to_string exn);
      false

let fixtures =
  [
    ("collective", collective_mismatch);
    ("leak", request_leak);
    ("double-wait", double_wait);
    ("send-buffer", send_buffer);
    ("deadlock", deadlock);
    ("wildcard", wildcard_race);
  ]

(* ---------------- --verify mode (model checker must detect) ----------- *)

(* Expected violation class per fixture when the schedule space is
   explored.  The wildcard fixture maps to "nondet-match": under lazy
   matching the runtime counter cannot fire (candidates are probed at
   post time, before deferral resolves), but the explorer sees the
   2-candidate decision point directly — that decision IS the race. *)
let verify_fixtures =
  [
    ("collective", collective_body, "collective");
    ("leak", leak_body, "request-leak");
    ("double-wait", double_wait_body, "double-wait");
    ("send-buffer", send_buffer_body, "send-buffer");
    ("deadlock", deadlock_body, "deadlock");
    ("wildcard", wildcard_body, "nondet-match");
  ]

let verify_one (name, body, expected) =
  let r = Explore.explore ~ranks:2 body in
  match
    List.find_opt (fun v -> v.Explore.v_class = expected) r.Explore.violations
  with
  | None ->
      Printf.eprintf "FAIL %s: explorer found %s, expected class %S\n" name
        (String.concat ","
           (List.map (fun v -> v.Explore.v_class) r.Explore.violations))
        expected;
      false
  | Some v ->
      (* The witness script must replay to the same finding. *)
      let replayed = Explore.replay ~ranks:2 ~script:v.Explore.v_script body in
      let cls = Explore.replay_class replayed in
      if cls = expected then begin
        Printf.printf "ok   %-12s %d schedule(s), witness '%s' replays to %s\n%!" name
          r.Explore.explored
          (Choice.script_to_string v.Explore.v_script)
          cls;
        true
      end
      else begin
        Printf.eprintf "FAIL %s: witness '%s' replayed to %S, expected %S\n" name
          (Choice.script_to_string v.Explore.v_script)
          cls expected;
        false
      end

let () =
  (* The fixtures print scary sanitizer output on purpose; keep the error
     log quiet so CI output stays readable. *)
  Logs.set_level (Some Logs.App);
  let verify_mode, names =
    match Array.to_list Sys.argv with
    | _ :: "--verify" :: rest ->
        (true, match rest with [] | [ "all" ] -> List.map fst fixtures | _ -> rest)
    | _ :: ([] | [ "all" ]) -> (false, List.map fst fixtures)
    | _ :: rest -> (false, rest)
    | [] -> (false, [])
  in
  let failed = ref 0 in
  List.iter
    (fun name ->
      if verify_mode then begin
        match
          List.find_opt (fun (n, _, _) -> n = name) verify_fixtures
        with
        | None ->
            Printf.eprintf "unknown fixture %S (have: %s)\n" name
              (String.concat ", " (List.map fst fixtures));
            incr failed
        | Some f -> if not (verify_one f) then incr failed
      end
      else
        match List.assoc_opt name fixtures with
        | None ->
            Printf.eprintf "unknown fixture %S (have: %s)\n" name
              (String.concat ", " (List.map fst fixtures));
            incr failed
        | Some f ->
            if f () then Printf.printf "ok   %s\n%!" name
            else begin
              Printf.printf "FAIL %s\n%!" name;
              incr failed
            end)
    names;
  exit (if !failed > 0 then 1 else 0)
