(* Chaos plane: CRC framing, fault-plan parsing, deterministic replay,
   reliable-delivery behavior (drops, duplicates, corruption, escalation)
   and the scheduler's wake-on-kill path. *)

open Mpisim

(* --- Wire CRC --- *)

(* The CRC-32 (IEEE 802.3) check vector: crc32("123456789") = 0xCBF43926. *)
let test_crc32_vector () =
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int) "check vector" 0xCBF43926 (Wire.crc32 b ~pos:0 ~len:9)

let test_crc32_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int) "slice equals whole" 0xCBF43926 (Wire.crc32 b ~pos:2 ~len:9);
  Alcotest.(check int) "empty slice" 0 (Wire.crc32 b ~pos:0 ~len:0 lxor Wire.crc32 b ~pos:0 ~len:0)

let test_crc32_detects_flip () =
  let b = Bytes.of_string "payload payload payload" in
  let len = Bytes.length b in
  let before = Wire.crc32 b ~pos:0 ~len in
  Bytes.set b 7 (Char.chr (Char.code (Bytes.get b 7) lxor 0x10));
  Alcotest.(check bool) "flip changes crc" true (before <> Wire.crc32 b ~pos:0 ~len)

(* --- Fault-plan parsing --- *)

let test_plan_parse_roundtrip () =
  let spec =
    "fail=3@ops:50;fail=1@t:0.002;fail=2@task:4;droplink=0>2@4;partition=0,1@0.001-0.003"
  in
  match Fault_plan.parse spec with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok plan ->
      Alcotest.(check int) "five actions" 5 (List.length plan);
      Alcotest.(check string) "round-trips" spec (Fault_plan.to_string plan)

let test_plan_parse_errors () =
  let bad = [ "fail=3"; "fail=x@ops:1"; "droplink=0>2"; "partition=0,1@5"; "nonsense=1" ] in
  List.iter
    (fun spec ->
      match Fault_plan.parse spec with
      | Ok _ -> Alcotest.failf "expected parse error for %S" spec
      | Error _ -> ())
    bad

let test_chaos_config_of_string () =
  (match Chaos.config_of_string "42" with
  | Ok cfg ->
      Alcotest.(check int) "bare int is seed" 42 cfg.Chaos.seed;
      Alcotest.(check bool) "bare int is lossy" true cfg.Chaos.lossy
  | Error msg -> Alcotest.failf "bare int: %s" msg);
  (match Chaos.config_of_string "seed=7;drop=0.5;retries=3;fail=1@ops:10" with
  | Ok cfg ->
      Alcotest.(check int) "seed" 7 cfg.Chaos.seed;
      Alcotest.(check (option int)) "retries" (Some 3) cfg.Chaos.max_retries;
      Alcotest.(check int) "plan size" 1 (List.length cfg.Chaos.plan);
      (match cfg.Chaos.rates with
      | Some r -> Alcotest.(check (float 1e-9)) "drop" 0.5 r.Net_model.drop
      | None -> Alcotest.fail "rates not set")
  | Error msg -> Alcotest.failf "clauses: %s" msg);
  (* Retry-policy knobs (ISSUE 9 satellite): parse, expose as options,
     and round-trip through the replay line. *)
  (match Chaos.config_of_string "seed=2;retries=5;rto=0.002;backoff=1.5;jitter_cap=0.0001" with
  | Ok cfg -> (
      Alcotest.(check (option int)) "retries knob" (Some 5) cfg.Chaos.max_retries;
      Alcotest.(check (option (float 1e-9))) "rto knob" (Some 0.002) cfg.Chaos.rto;
      Alcotest.(check (option (float 1e-9))) "backoff knob" (Some 1.5) cfg.Chaos.backoff;
      Alcotest.(check (option (float 1e-9))) "jitter_cap knob" (Some 1e-4)
        cfg.Chaos.jitter_cap;
      match Chaos.config_of_string (Chaos.config_to_string cfg) with
      | Ok cfg' -> Alcotest.(check bool) "retry knobs round-trip" true (cfg = cfg')
      | Error msg -> Alcotest.failf "retry knob replay line: %s" msg)
  | Error msg -> Alcotest.failf "retry knobs: %s" msg);
  (match Chaos.config_of_string "backoff=0.5" with
  | Ok _ -> Alcotest.fail "backoff < 1 accepted"
  | Error _ -> ());
  (* The replay line parses back. *)
  match Chaos.config_of_string "seed=5;lossy;retries=2;fail=0@ops:9" with
  | Ok cfg -> (
      match Chaos.config_of_string (Chaos.config_to_string cfg) with
      | Ok cfg' ->
          Alcotest.(check bool) "replay line round-trips" true (cfg = cfg')
      | Error msg -> Alcotest.failf "replay line: %s" msg)
  | Error msg -> Alcotest.failf "setup: %s" msg

(* --- A chaos workload: ring exchange that stresses the message plane --- *)

let ring_program ~rounds comm =
  let n = Comm.size comm in
  let r = Comm.rank comm in
  let acc = ref 0 in
  for round = 1 to rounds do
    let v = [| (r * 1000) + round |] in
    P2p.send comm Datatype.int ~dest:((r + 1) mod n) v;
    let d, _ = P2p.recv comm Datatype.int ~source:((r + n - 1) mod n) () in
    acc := !acc + d.(0)
  done;
  !acc

let run_ring ?chaos ?(ranks = 4) ?(rounds = 25) () =
  Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only ?chaos
    ~ranks (ring_program ~rounds)

(* --- Determinism: identical seed + plan => byte-identical chaos log --- *)

let test_deterministic_replay () =
  let cfg () =
    Chaos.config ~seed:99 ~lossy:true
      ~plan:(Result.get_ok (Fault_plan.parse "droplink=0>1@3")) ()
  in
  let _, r1 = run_ring ~chaos:(cfg ()) () in
  let _, r2 = run_ring ~chaos:(cfg ()) () in
  let log r =
    match r.Engine.chaos_log with Some l -> l | None -> Alcotest.fail "chaos log missing"
  in
  Alcotest.(check bool) "log is non-trivial" true (String.length (log r1) > 0);
  Alcotest.(check string) "byte-identical replay" (log r1) (log r2);
  let _, r3 = run_ring ~chaos:(Chaos.config ~seed:100 ~lossy:true ()) () in
  Alcotest.(check bool) "different seed, different log" true (log r1 <> log r3)

let test_chaos_off_no_log () =
  let _, report = run_ring () in
  Alcotest.(check bool) "no chaos log when off" true (report.Engine.chaos_log = None)

(* Lossy chaos must not change program results: the reliable layer hides
   drops/duplicates/reordering behind retransmission and arrival shifts. *)
let test_lossy_results_correct () =
  let results, report = run_ring ~chaos:(Chaos.config ~seed:3 ~lossy:true ()) () in
  let expected, _ = run_ring () in
  Alcotest.(check bool) "some chaos events happened" true
    (Stats.count (Stats.counter report.Engine.stats "chaos.dropped")
     + Stats.count (Stats.counter report.Engine.stats "chaos.duplicated")
     + Stats.count (Stats.counter report.Engine.stats "chaos.reordered")
    > 0);
  Alcotest.(check bool) "results unchanged under loss" true (results = expected)

(* --- Targeted drops: the n-th message on a link is retransmitted --- *)

let test_drop_nth () =
  let plan = Result.get_ok (Fault_plan.parse "droplink=0>1@2") in
  let _, report = run_ring ~chaos:(Chaos.config ~seed:1 ~plan ()) () in
  Alcotest.(check int) "exactly one drop" 1
    (Stats.count (Stats.counter report.Engine.stats "chaos.dropped"));
  Alcotest.(check int) "exactly one retransmit" 1
    (Stats.count (Stats.counter report.Engine.stats "chaos.retransmits"));
  Alcotest.(check (list int)) "nobody died" [] report.Engine.killed

(* --- Escalation: a fully dropped link declares the peer failed --- *)

let test_escalation () =
  let rates = { Net_model.perfect_link with Net_model.drop = 1.0 } in
  let caught = ref false in
  let _, report =
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
      ~chaos:(Chaos.config ~seed:1 ~links:[ ((0, 1), rates) ] ~max_retries:2 ())
      ~ranks:2
      (fun comm ->
        if Comm.rank comm = 0 then
          match P2p.send comm Datatype.int ~dest:1 [| 7 |] with
          | () -> ()
          | exception Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
              caught := true
        else
          (* The victim: the escalating sender declares this rank dead;
             the scheduler wakes and discontinues the parked receive. *)
          ignore (P2p.recv comm Datatype.int ~source:0 ()))
  in
  Alcotest.(check bool) "sender saw ERR_PROC_FAILED" true !caught;
  Alcotest.(check (list int)) "receiver declared failed" [ 1 ] report.Engine.killed;
  Alcotest.(check int) "escalation counted" 1
    (Stats.count (Stats.counter report.Engine.stats "chaos.escalations"))

(* --- Corruption backstop: delivered corruption trips the CRC check --- *)

let test_deliver_corrupt_crc_backstop () =
  let rates = { Net_model.perfect_link with Net_model.corrupt = 1.0 } in
  let violated = ref false in
  (try
     ignore
       (Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
          ~check_level:Check.Light
          ~chaos:(Chaos.config ~seed:1 ~rates ~deliver_corrupt:true ())
          ~ranks:2
          (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm Datatype.int ~dest:1 [| 123 |]
            else ignore (P2p.recv comm Datatype.int ~source:0 ())))
   with
  | Scheduler.Aborted { exn = Errdefs.Check_violation { check = "crc"; _ }; _ }
  | Errdefs.Check_violation { check = "crc"; _ } ->
      violated := true);
  Alcotest.(check bool) "CRC mismatch detected" true !violated

(* Without deliver_corrupt, corruption is modelled as loss: the payload
   arrives intact after retransmission and the CRC backstop stays quiet. *)
let test_corrupt_as_loss () =
  let rates = { Net_model.perfect_link with Net_model.corrupt = 0.3 } in
  let results, report =
    run_ring ~chaos:(Chaos.config ~seed:5 ~rates ()) ()
  in
  let expected, _ = run_ring () in
  Alcotest.(check bool) "corruption events occurred" true
    (Stats.count (Stats.counter report.Engine.stats "chaos.corrupted") > 0);
  Alcotest.(check bool) "results unchanged" true (results = expected)

(* --- Duplicates are counted but never double-delivered --- *)

let test_duplicates_not_delivered () =
  let rates = { Net_model.perfect_link with Net_model.duplicate = 0.5 } in
  let results, report = run_ring ~chaos:(Chaos.config ~seed:2 ~rates ()) () in
  let expected, _ = run_ring () in
  Alcotest.(check bool) "duplicates occurred" true
    (Stats.count (Stats.counter report.Engine.stats "chaos.duplicated") > 0);
  Alcotest.(check bool) "no double delivery" true (results = expected)

(* --- Plan triggers --- *)

let test_fail_at_ops () =
  let plan = Result.get_ok (Fault_plan.parse "fail=1@ops:5") in
  let observed = ref false in
  let _, report =
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
      ~chaos:(Chaos.config ~seed:1 ~plan ())
      ~ranks:2
      (fun comm ->
        if Comm.rank comm = 1 then
          for i = 1 to 100 do
            P2p.send comm Datatype.int ~dest:0 [| i |]
          done
        else
          try
            for _ = 1 to 100 do
              ignore (P2p.recv comm Datatype.int ~source:1 ())
            done
          with Errdefs.Mpi_error { code = Errdefs.Err_proc_failed; _ } ->
            observed := true)
  in
  Alcotest.(check bool) "survivor observed the failure" true !observed;
  Alcotest.(check (list int)) "rank 1 died by plan" [ 1 ] report.Engine.killed;
  Alcotest.(check int) "plan failure counted" 1
    (Stats.count (Stats.counter report.Engine.stats "chaos.plan_failures"))

(* A rank blocked in a receive when its time-based trigger fires must be
   woken and discontinued, not leave the run deadlocked (satellite 6: the
   fail_world_rank wake path, driven here via the chaos plan). *)
let test_fail_at_time_wakes_blocked_victim () =
  let plan = Result.get_ok (Fault_plan.parse "fail=1@t:0.000001") in
  let _, report =
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only
      ~chaos:(Chaos.config ~seed:1 ~plan ())
      ~ranks:3
      (fun comm ->
        match Comm.rank comm with
        | 1 ->
            (* Block forever: nobody ever sends to rank 1. *)
            ignore (P2p.recv comm Datatype.int ~source:2 ())
        | 0 ->
            (* Keep injecting so virtual time passes the trigger. *)
            for i = 1 to 50 do
              P2p.send comm Datatype.int ~dest:2 [| i |]
            done
        | _ ->
            for _ = 1 to 50 do
              ignore (P2p.recv comm Datatype.int ~source:0 ())
            done)
  in
  Alcotest.(check (list int)) "blocked victim killed, no deadlock" [ 1 ]
    report.Engine.killed

(* Same wake path, driven directly through Fault.fail_world_rank: the
   fixture that used to hang as a deadlock report before the scheduler
   grew its wake check. *)
let test_fail_world_rank_wakes_blocked_victim () =
  let _, report =
    Engine.run_collect ~ranks:3 (fun comm ->
        match Comm.rank comm with
        | 1 -> ignore (P2p.recv comm Datatype.int ~source:2 ())
        | 0 ->
            (* Give rank 1 a chance to park, then kill it. *)
            Scheduler.yield ();
            Scheduler.yield ();
            Fault.fail_world_rank (Comm.runtime comm) ~world_rank:1
        | _ -> ())
  in
  Alcotest.(check (list int)) "parked victim discontinued" [ 1 ] report.Engine.killed

(* --- Partition: traffic inside a window is treated as lost --- *)

let test_partition_heals () =
  (* Partition {0} | {1} for a window shorter than the run: messages sent
     during the window retransmit until it heals; the program completes. *)
  let plan = Result.get_ok (Fault_plan.parse "partition=0@0-0.0004") in
  let results, report =
    run_ring ~ranks:2 ~rounds:10 ~chaos:(Chaos.config ~seed:1 ~plan ~max_retries:12 ()) ()
  in
  let expected, _ = run_ring ~ranks:2 ~rounds:10 () in
  Alcotest.(check bool) "drops during window" true
    (Stats.count (Stats.counter report.Engine.stats "chaos.dropped") > 0);
  Alcotest.(check bool) "ring completes correctly after heal" true (results = expected)

(* --- Tuned collectives under chaos: deterministic replay --- *)

(* Rabenseifner allreduce and ring allgather have the most intricate
   message patterns of the algorithm engine; under a lossy link profile
   their retransmission schedule must still replay byte-identically, and
   the results must match a chaos-off run. *)
let test_coll_algo_replay () =
  (* 4096 ints = 32KB: above both the 2KB Rabenseifner cutoff and the
     32KB ring-allgather threshold, so the automatic choice exercises the
     long-message algorithms. *)
  let elems = 4_096 in
  let program comm =
    let r = Comm.rank comm in
    let sum =
      Coll.allreduce comm Datatype.int Reduce_op.int_sum
        (Array.init elems (fun i -> i + r))
    in
    let gathered = Coll.allgather comm Datatype.int (Array.init elems (fun i -> (r * elems) + i)) in
    (sum.(0), sum.(elems - 1), Array.fold_left ( + ) 0 gathered)
  in
  let run ?chaos () =
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only ?chaos
      ~ranks:4 program
  in
  (* A denser drop rate than the default lossy profile: the collectives
     send few, large messages, so 2% per attempt may never fire. *)
  let cfg () =
    Chaos.config ~seed:11
      ~rates:{ (Net_model.lossy_rates ~latency:25e-6) with Net_model.drop = 0.2 }
      ()
  in
  let res1, r1 = run ~chaos:(cfg ()) () in
  let res2, r2 = run ~chaos:(cfg ()) () in
  let expected, _ = run () in
  let log r =
    match r.Engine.chaos_log with Some l -> l | None -> Alcotest.fail "chaos log missing"
  in
  Alcotest.(check bool) "faults actually fired" true
    (Stats.count (Stats.counter r1.Engine.stats "chaos.dropped") > 0);
  Alcotest.(check int) "rabenseifner ran on every rank" 4
    (Stats.count (Stats.counter r1.Engine.stats "coll.algo.allreduce.rabenseifner"));
  Alcotest.(check int) "ring allgather ran on every rank" 4
    (Stats.count (Stats.counter r1.Engine.stats "coll.algo.allgather.ring"));
  Alcotest.(check string) "byte-identical replay" (log r1) (log r2);
  Alcotest.(check bool) "identical results across replays" true (res1 = res2);
  Alcotest.(check bool) "results match chaos-off run" true (res1 = expected)

(* --- RTT histogram is fed by the reliable layer --- *)

let test_rtt_histogram () =
  let _, report = run_ring ~chaos:(Chaos.config ~seed:1 ~lossy:true ()) () in
  let h = Stats.histogram report.Engine.stats "reliable.rtt" in
  Alcotest.(check bool) "rtt observations recorded" true (Stats.total h > 0)

(* --- Fault-plan qcheck properties --- *)

(* Random plans whose printed form must parse back to the same printed
   form (print-parse-print idempotence — exactly the property a CLI
   replay line needs).  Times are multiples of 1e-7 so %g regularly
   emits scientific notation ("1e-06"), the form the window separator
   historically mis-split. *)
let gen_action =
  QCheck.Gen.(
    let rank = int_bound 63 in
    let time k = float_of_int k *. 1e-7 in
    oneof
      [
        map2
          (fun rank ops -> Fault_plan.Fail_at_ops { rank; ops = ops + 1 })
          rank (int_bound 999);
        map2
          (fun rank k -> Fault_plan.Fail_at_time { rank; time = time k })
          rank (int_bound 999);
        map2
          (fun rank task -> Fault_plan.Fail_at_task { rank; task = task + 1 })
          rank (int_bound 99);
        map3
          (fun src dst n -> Fault_plan.Drop_nth { src; dst; n = n + 1 })
          rank rank (int_bound 99);
        map3
          (fun r0 ranks (k0, dk) ->
            let ranks = List.sort_uniq compare (r0 :: ranks) in
            Fault_plan.Partition
              { ranks; t_start = time k0; t_end = time (k0 + dk) })
          rank
          (list_size (int_bound 4) rank)
          (pair (int_bound 999) (int_bound 999));
      ])

let gen_plan =
  QCheck.make
    ~print:(fun p -> Fault_plan.to_string p)
    QCheck.Gen.(list_size (int_range 1 6) gen_action)

let prop_plan_print_parse_print =
  QCheck.Test.make ~name:"fault plan print/parse/print idempotent" ~count:500 gen_plan
    (fun plan ->
      let s = Fault_plan.to_string plan in
      match Fault_plan.parse s with
      | Error msg -> QCheck.Test.fail_reportf "%S did not parse back: %s" s msg
      | Ok plan' ->
          let s' = Fault_plan.to_string plan' in
          s = s' || QCheck.Test.fail_reportf "%S re-printed as %S" s s')

(* The historical regression: a partition window in scientific notation
   split at the exponent's '-' instead of the separator. *)
let test_partition_scientific_window () =
  let spec = "partition=1,3@1e-06-5e-06" in
  match Fault_plan.parse spec with
  | Error msg -> Alcotest.failf "scientific-notation window rejected: %s" msg
  | Ok plan -> Alcotest.(check string) "round-trips" spec (Fault_plan.to_string plan)

(* Malformed specs must come back as [Error] naming the clause, never as
   an exception or a silent acceptance. *)
let test_plan_malformed_messages () =
  List.iter
    (fun (spec, fragment) ->
      match Fault_plan.parse spec with
      | Ok _ -> Alcotest.failf "expected parse error for %S" spec
      | Error msg ->
          let contains needle =
            let nh = String.length msg and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
            go 0
          in
          if not (contains fragment) then
            Alcotest.failf "error for %S is %S; expected it to mention %S" spec msg
              fragment)
    [
      ("partition=0@1e-06", "window");
      ("partition=@1e-06-2e-06", "integer");
      ("partition=0,1@3e-06-1e-06", "start <= end");
      ("fail=1@q:3", "unknown trigger");
      ("fail=1@task:0", ">= 1");
      ("fail=1@task:x", "integer");
      ("fail=-1@ops:3", "negative rank");
      ("droplink=0>1@0", "1-based");
      ("droplink=0@3", ">");
      ("wobble=1", "unknown fault-plan clause");
    ]

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
    Alcotest.test_case "crc32 slices" `Quick test_crc32_slice;
    Alcotest.test_case "crc32 detects bit flip" `Quick test_crc32_detects_flip;
    Alcotest.test_case "fault plan round-trip" `Quick test_plan_parse_roundtrip;
    Alcotest.test_case "fault plan errors" `Quick test_plan_parse_errors;
    Alcotest.test_case "partition window in scientific notation" `Quick
      test_partition_scientific_window;
    Alcotest.test_case "malformed plans name the clause" `Quick
      test_plan_malformed_messages;
    qtest prop_plan_print_parse_print;
    Alcotest.test_case "chaos spec parsing" `Quick test_chaos_config_of_string;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    Alcotest.test_case "no log when off" `Quick test_chaos_off_no_log;
    Alcotest.test_case "lossy run is correct" `Quick test_lossy_results_correct;
    Alcotest.test_case "drop nth message" `Quick test_drop_nth;
    Alcotest.test_case "escalation to ERR_PROC_FAILED" `Quick test_escalation;
    Alcotest.test_case "delivered corruption trips CRC" `Quick
      test_deliver_corrupt_crc_backstop;
    Alcotest.test_case "corruption as loss" `Quick test_corrupt_as_loss;
    Alcotest.test_case "duplicates not delivered" `Quick test_duplicates_not_delivered;
    Alcotest.test_case "fail at op count" `Quick test_fail_at_ops;
    Alcotest.test_case "fail at time wakes blocked victim" `Quick
      test_fail_at_time_wakes_blocked_victim;
    Alcotest.test_case "fail_world_rank wakes blocked victim" `Quick
      test_fail_world_rank_wakes_blocked_victim;
    Alcotest.test_case "partition heals" `Quick test_partition_heals;
    Alcotest.test_case "reliable rtt histogram" `Quick test_rtt_histogram;
    Alcotest.test_case "tuned collectives replay deterministically" `Quick
      test_coll_algo_replay;
  ]

let () = Alcotest.run "chaos" [ ("chaos", tests) ]
