(* Tests for one-sided communication (RMA windows). *)

open Mpisim

let test_put_visible_after_fence () =
  let results =
    Engine.run_values ~ranks:4 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 4 0) in
        let r = Comm.rank comm in
        (* Everyone puts its rank into slot r of its right neighbor. *)
        Rma.put win ~target:((r + 1) mod 4) ~target_pos:r [| r |];
        Rma.fence win;
        let v = Array.copy (Rma.local win) in
        Rma.free win;
        v)
  in
  Array.iteri
    (fun r v ->
      let left = (r + 3) mod 4 in
      let expected = Array.make 4 0 in
      expected.(left) <- left;
      Alcotest.(check (array int)) (Printf.sprintf "rank %d" r) expected v)
    results

let test_get_after_fence () =
  let results =
    Engine.run_values ~ranks:3 (fun comm ->
        let r = Comm.rank comm in
        let win = Rma.create comm Datatype.int (Array.init 3 (fun i -> (r * 10) + i)) in
        Rma.fence win;
        (* read slot 1 of every peer *)
        let into = Array.make 3 (-1) in
        for t = 0 to 2 do
          Rma.get win ~target:t ~target_pos:1 ~count:1 into ~into_pos:t
        done;
        Rma.fence win;
        Rma.free win;
        into)
  in
  Array.iter
    (fun v -> Alcotest.(check (array int)) "gathered slot 1" [| 1; 11; 21 |] v)
    results

let test_accumulate_concurrent () =
  (* All ranks accumulate into rank 0's slot: the sum must include every
     contribution exactly once regardless of order. *)
  let results =
    Engine.run_values ~ranks:8 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 1 100) in
        Rma.accumulate win ~target:0 ~target_pos:0 Reduce_op.int_sum
          [| Comm.rank comm + 1 |];
        Rma.fence win;
        let v = (Rma.local win).(0) in
        Rma.free win;
        v)
  in
  Alcotest.(check int) "rank 0 accumulated all" (100 + 36) results.(0);
  Alcotest.(check int) "rank 1 untouched" 100 results.(1)

let test_put_get_epochs_isolated () =
  (* Operations queued after a fence do not affect reads before it. *)
  let results =
    Engine.run_values ~ranks:2 (fun comm ->
        let r = Comm.rank comm in
        let win = Rma.create comm Datatype.int (Array.make 1 r) in
        Rma.fence win;
        let before = (Rma.local win).(0) in
        if r = 0 then Rma.put win ~target:1 ~target_pos:0 [| 99 |];
        Rma.fence win;
        let after = (Rma.local win).(0) in
        Rma.free win;
        (before, after))
  in
  Alcotest.(check (pair int int)) "rank 1 sees the put only after the fence" (1, 99)
    results.(1)

let test_deterministic_overlapping_puts () =
  (* Two ranks put to the same slot in one epoch: the deterministic order
     (by origin rank) makes the higher origin win, every run. *)
  let run () =
    (Engine.run_values ~ranks:3 (fun comm ->
         let r = Comm.rank comm in
         let win = Rma.create comm Datatype.int (Array.make 1 0) in
         if r = 1 then Rma.put win ~target:0 ~target_pos:0 [| 111 |];
         if r = 2 then Rma.put win ~target:0 ~target_pos:0 [| 222 |];
         Rma.fence win;
         let v = (Rma.local win).(0) in
         Rma.free win;
         v)).(0)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "deterministic" a b;
  Alcotest.(check int) "last origin wins" 222 a

let test_multiple_windows () =
  let results =
    Engine.run_values ~ranks:2 (fun comm ->
        let r = Comm.rank comm in
        let w1 = Rma.create comm Datatype.int (Array.make 1 0) in
        let w2 = Rma.create comm Datatype.int (Array.make 1 0) in
        if r = 0 then begin
          Rma.put w1 ~target:1 ~target_pos:0 [| 7 |];
          Rma.put w2 ~target:1 ~target_pos:0 [| 8 |]
        end;
        Rma.fence w1;
        Rma.fence w2;
        let v = ((Rma.local w1).(0), (Rma.local w2).(0)) in
        Rma.free w1;
        Rma.free w2;
        v)
  in
  Alcotest.(check (pair int int)) "windows independent" (7, 8) results.(1)

(* ------------------------------------------------------------------ *)
(* Regression: free must unregister the shared state (it used to leak
   one registry entry per window, and the creation counter forever). *)

let test_registry_reclaimed () =
  let live0, ctx0 = Rma.registry_stats () in
  for _ = 1 to 3 do
    ignore
      (Engine.run_values ~ranks:4 (fun comm ->
           let w1 = Rma.create comm Datatype.int (Array.make 2 0) in
           let w2 = Rma.create comm Datatype.int (Array.make 2 0) in
           Rma.fence w1;
           Rma.fence w2;
           Rma.free w1;
           Rma.free w2))
  done;
  let live1, ctx1 = Rma.registry_stats () in
  Alcotest.(check int) "no leaked windows" live0 live1;
  Alcotest.(check int) "no leaked creation counters" ctx0 ctx1

(* Regression: gets must charge the promised round trip at the closing
   fence (they used to move no clock at all). *)

let test_get_charges_round_trip () =
  let time_with gets =
    let report =
      Engine.run ~clock_mode:Runtime.Virtual_only ~ranks:2 (fun comm ->
          let win = Rma.create comm Datatype.int (Array.make 8 1) in
          Rma.fence win;
          (if Comm.rank comm = 0 then
             let into = Array.make 8 0 in
             for _ = 1 to gets do
               Rma.get win ~target:1 ~target_pos:0 ~count:8 into ~into_pos:0
             done);
          Rma.fence win;
          Rma.free win)
    in
    report.Engine.max_time
  in
  let quiet = time_with 0 and loaded = time_with 50 in
  Alcotest.(check bool)
    (Printf.sprintf "gets advance modeled time (%g vs %g)" quiet loaded)
    true (loaded > quiet)

(* Regression: out-of-range operations must raise the named
   ERR_RMA_RANGE at issue time (they used to surface as a raw
   [Invalid_argument] from a blit inside [fence]), and count under the
   sanitizer. *)

let test_out_of_range_put () =
  let rt_ref = ref None in
  (try
     ignore
       (Engine.run ~model:Net_model.zero_cost ~check_level:Check.Light
          ~on_runtime:(fun rt -> rt_ref := Some rt)
          ~ranks:2
          (fun comm ->
            let win = Rma.create comm Datatype.int (Array.make 4 0) in
            Rma.put win ~target:1 ~target_pos:3 [| 1; 2 |];
            Rma.fence win;
            Rma.free win));
     Alcotest.fail "expected ERR_RMA_RANGE"
   with
  | Scheduler.Aborted { exn = Errdefs.Mpi_error { code = Errdefs.Err_rma_range; _ }; _ }
    ->
      ());
  match !rt_ref with
  | None -> Alcotest.fail "on_runtime not called"
  | Some rt ->
      Alcotest.(check bool)
        "check.rma_range counted" true
        (Stats.count (Stats.counter rt.Runtime.stats "check.rma_range") >= 1)

let test_out_of_range_get_and_accumulate () =
  let expect_range body =
    try
      ignore (Engine.run ~model:Net_model.zero_cost ~ranks:2 body);
      Alcotest.fail "expected ERR_RMA_RANGE"
    with
    | Scheduler.Aborted { exn = Errdefs.Mpi_error { code = Errdefs.Err_rma_range; _ }; _ }
      ->
        ()
  in
  expect_range (fun comm ->
      let win = Rma.create comm Datatype.int (Array.make 4 0) in
      let into = Array.make 8 0 in
      Rma.get win ~target:1 ~target_pos:(-1) ~count:2 into ~into_pos:0;
      Rma.fence win);
  expect_range (fun comm ->
      let win = Rma.create comm Datatype.int (Array.make 4 0) in
      Rma.accumulate win ~target:1 ~target_pos:4 Reduce_op.int_sum [| 1 |];
      Rma.fence win)

(* ------------------------------------------------------------------ *)
(* Passive target: lock/unlock epochs *)

let test_locked_put_visible () =
  let results =
    Engine.run_values ~ranks:2 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 2 0) in
        if Comm.rank comm = 0 then
          Rma.with_locked win ~target:1 (fun () ->
              Rma.put win ~target:1 ~target_pos:0 [| 41; 42 |]);
        Coll.barrier comm;
        let v = Array.copy (Rma.local win) in
        Rma.free win;
        v)
  in
  Alcotest.(check (array int)) "target sees the put after unlock" [| 41; 42 |] results.(1)

let test_shared_lock_accumulate () =
  let results =
    Engine.run_values ~ranks:6 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 1 0) in
        let r = Comm.rank comm in
        if r > 0 then
          Rma.with_locked ~exclusive:false win ~target:0 (fun () ->
              Rma.accumulate win ~target:0 ~target_pos:0 Reduce_op.int_sum [| r |]);
        Coll.barrier comm;
        let v = (Rma.local win).(0) in
        Rma.free win;
        v)
  in
  Alcotest.(check int) "all contributions accumulated" 15 results.(0)

let test_exclusive_lock_contention () =
  (* Two origins compete for the same exclusive lock; one parks until the
     other unlocks.  Both epochs must complete and both slots land. *)
  let results =
    Engine.run_values ~ranks:3 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 3 0) in
        let r = Comm.rank comm in
        if r > 0 then
          Rma.with_locked win ~target:0 (fun () ->
              Rma.put win ~target:0 ~target_pos:r [| 100 + r |]);
        Coll.barrier comm;
        let v = Array.copy (Rma.local win) in
        Rma.free win;
        v)
  in
  Alcotest.(check (array int)) "both epochs applied" [| 0; 101; 102 |] results.(0)

let test_lock_epoch_issue_order () =
  (* Within one epoch, a get after a put observes the put (issue order). *)
  let results =
    Engine.run_values ~ranks:2 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 1 0) in
        let into = Array.make 1 (-1) in
        if Comm.rank comm = 0 then
          Rma.with_locked win ~target:1 (fun () ->
              Rma.put win ~target:1 ~target_pos:0 [| 5 |];
              Rma.get win ~target:1 ~target_pos:0 ~count:1 into ~into_pos:0);
        Coll.barrier comm;
        Rma.free win;
        into.(0))
  in
  Alcotest.(check int) "get sees same-epoch put" 5 results.(0)

let test_with_locked_exception_safe () =
  (* A raising body must still release the lock: a second exclusive
     epoch on the same target succeeds instead of deadlocking. *)
  let results =
    Engine.run_values ~ranks:2 (fun comm ->
        let win = Rma.create comm Datatype.int (Array.make 1 0) in
        let raised = ref false in
        (if Comm.rank comm = 0 then
           try Rma.with_locked win ~target:1 (fun () -> failwith "boom")
           with Failure _ -> raised := true);
        if Comm.rank comm = 0 then
          Rma.with_locked win ~target:1 (fun () ->
              Rma.put win ~target:1 ~target_pos:0 [| 9 |]);
        Coll.barrier comm;
        let v = (Rma.local win).(0) in
        Rma.free win;
        (!raised, v))
  in
  Alcotest.(check (pair bool int)) "lock released on exception" (true, 0) results.(0);
  Alcotest.(check (pair bool int)) "second epoch applied" (false, 9) results.(1)

let test_lifecycle_errors () =
  let expect_usage name body =
    try
      ignore (Engine.run ~model:Net_model.zero_cost ~ranks:1 body);
      Alcotest.fail (name ^ ": expected Usage_error")
    with Scheduler.Aborted { exn = Errdefs.Usage_error _; _ } -> ()
  in
  expect_usage "fence under lock" (fun comm ->
      let win = Rma.create comm Datatype.int (Array.make 1 0) in
      Rma.lock win ~target:0;
      Rma.fence win);
  expect_usage "double free" (fun comm ->
      let win = Rma.create comm Datatype.int (Array.make 1 0) in
      Rma.free win;
      Rma.free win);
  expect_usage "unlock without lock" (fun comm ->
      let win = Rma.create comm Datatype.int (Array.make 1 0) in
      Rma.unlock win);
  expect_usage "op outside the locked target" (fun comm ->
      let win = Rma.create comm Datatype.int (Array.make 1 0) in
      Rma.lock win ~target:0;
      Rma.put win ~target:0 ~target_pos:0 [| 1 |];
      (* re-lock while holding: also a usage error *)
      Rma.lock win ~target:0)

let tests =
  [
    Alcotest.test_case "put visible after fence" `Quick test_put_visible_after_fence;
    Alcotest.test_case "get after fence" `Quick test_get_after_fence;
    Alcotest.test_case "concurrent accumulate" `Quick test_accumulate_concurrent;
    Alcotest.test_case "epochs isolated" `Quick test_put_get_epochs_isolated;
    Alcotest.test_case "deterministic overlapping puts" `Quick
      test_deterministic_overlapping_puts;
    Alcotest.test_case "multiple windows" `Quick test_multiple_windows;
    Alcotest.test_case "registry reclaimed after free" `Quick test_registry_reclaimed;
    Alcotest.test_case "get charges round trip" `Quick test_get_charges_round_trip;
    Alcotest.test_case "out-of-range put raises ERR_RMA_RANGE" `Quick test_out_of_range_put;
    Alcotest.test_case "out-of-range get/accumulate" `Quick
      test_out_of_range_get_and_accumulate;
    Alcotest.test_case "locked put visible" `Quick test_locked_put_visible;
    Alcotest.test_case "shared-lock accumulate" `Quick test_shared_lock_accumulate;
    Alcotest.test_case "exclusive lock contention" `Quick test_exclusive_lock_contention;
    Alcotest.test_case "lock epoch issue order" `Quick test_lock_epoch_issue_order;
    Alcotest.test_case "with_locked exception safety" `Quick
      test_with_locked_exception_safe;
    Alcotest.test_case "lifecycle errors" `Quick test_lifecycle_errors;
  ]

let () = Alcotest.run "rma" [ ("rma", tests) ]
