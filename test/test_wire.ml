(* Unit and property tests for the wire format. *)

open Mpisim

let qtest = QCheck_alcotest.to_alcotest

let test_primitive_roundtrip () =
  let w = Wire.create_writer () in
  Wire.put_int w 42;
  Wire.put_int w (-1);
  Wire.put_int w max_int;
  Wire.put_int w min_int;
  Wire.put_float w 3.14159;
  Wire.put_float w Float.neg_infinity;
  Wire.put_float w (-0.0);
  Wire.put_char w 'x';
  Wire.put_bool w true;
  Wire.put_bool w false;
  Wire.put_int32 w 0xDEADBEEFl;
  Wire.put_uint8 w 255;
  let r = Wire.reader_of_bytes (Wire.contents w) in
  Alcotest.(check int) "int" 42 (Wire.get_int r);
  Alcotest.(check int) "neg int" (-1) (Wire.get_int r);
  Alcotest.(check int) "max_int" max_int (Wire.get_int r);
  Alcotest.(check int) "min_int" min_int (Wire.get_int r);
  Alcotest.(check (float 0.)) "float" 3.14159 (Wire.get_float r);
  Alcotest.(check bool) "neg inf" true (Wire.get_float r = Float.neg_infinity);
  Alcotest.(check bool) "-0.0 bits" true
    (Int64.equal (Int64.bits_of_float (-0.0)) (Int64.bits_of_float (Wire.get_float r)));
  Alcotest.(check char) "char" 'x' (Wire.get_char r);
  Alcotest.(check bool) "true" true (Wire.get_bool r);
  Alcotest.(check bool) "false" false (Wire.get_bool r);
  Alcotest.(check int32) "int32" 0xDEADBEEFl (Wire.get_int32 r);
  Alcotest.(check int) "uint8" 255 (Wire.get_uint8 r);
  Alcotest.(check int) "drained" 0 (Wire.remaining r)

let test_underflow () =
  let w = Wire.create_writer () in
  Wire.put_int32 w 7l;
  let r = Wire.reader_of_bytes (Wire.contents w) in
  Alcotest.check_raises "underflow" (Wire.Underflow { wanted = 8; available = 4 })
    (fun () -> ignore (Wire.get_int64 r))

let test_decode_error () =
  (* A corrupt boolean byte is a decode error (the payload is framed
     correctly but holds a value outside the type's domain), distinct from
     Underflow (truncated frame) and from Invalid_argument (caller bug). *)
  let w = Wire.create_writer () in
  Wire.put_uint8 w 7;
  let r = Wire.reader_of_bytes (Wire.contents w) in
  Alcotest.check_raises "corrupt bool"
    (Wire.Decode_error { what = "bool must be 0 or 1"; got = 7 }) (fun () ->
      ignore (Wire.get_bool r))

let test_pool_reuse () =
  let pool = Wire.create_pool ~max_buffers:2 () in
  let w1 = Wire.acquire pool ~capacity:64 in
  Wire.put_int w1 42;
  let storage, len = Wire.unsafe_contents w1 in
  Alcotest.(check int) "written length" 8 len;
  Wire.recycle pool storage;
  let w2 = Wire.acquire pool ~capacity:32 in
  let storage2, len2 = Wire.unsafe_contents w2 in
  Alcotest.(check bool) "storage is reused" true (storage == storage2);
  Alcotest.(check int) "recycled writer starts empty" 0 len2;
  let hits, misses, _ = Wire.pool_stats pool in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "one miss" 1 misses

let test_pool_bounds () =
  let pool = Wire.create_pool ~max_buffers:1 ~max_retain:128 () in
  (* A buffer over the retain limit is dropped, not cached. *)
  Wire.recycle pool (Bytes.create 4096);
  let _, _, free = Wire.pool_stats pool in
  Alcotest.(check int) "oversized buffer not retained" 0 free;
  (* The free list itself is bounded. *)
  Wire.recycle pool (Bytes.create 16);
  Wire.recycle pool (Bytes.create 16);
  let _, _, free = Wire.pool_stats pool in
  Alcotest.(check int) "free list capped" 1 free

let test_padding_and_skip () =
  let w = Wire.create_writer () in
  Wire.put_padding w 5;
  Wire.put_int w 9;
  let r = Wire.reader_of_bytes (Wire.contents w) in
  Wire.skip r 5;
  Alcotest.(check int) "after padding" 9 (Wire.get_int r)

let test_reserve_matches_put () =
  let w1 = Wire.create_writer () in
  Wire.put_int64 w1 0x0102030405060708L;
  let w2 = Wire.create_writer () in
  let buf, pos = Wire.reserve w2 8 in
  Bytes.set_int64_le buf pos 0x0102030405060708L;
  Alcotest.(check bytes) "identical encodings" (Wire.contents w1) (Wire.contents w2)

let test_growth () =
  let w = Wire.create_writer ~capacity:1 () in
  for i = 0 to 999 do
    Wire.put_int w i
  done;
  Alcotest.(check int) "length" 8000 (Wire.length w);
  let r = Wire.reader_of_bytes (Wire.contents w) in
  for i = 0 to 999 do
    Alcotest.(check int) "value" i (Wire.get_int r)
  done

let test_reader_window () =
  let w = Wire.create_writer () in
  Wire.put_int w 1;
  Wire.put_int w 2;
  Wire.put_int w 3;
  let b = Wire.contents w in
  let r = Wire.reader_of_bytes ~pos:8 ~len:8 b in
  Alcotest.(check int) "windowed read" 2 (Wire.get_int r);
  Alcotest.(check int) "window exhausted" 0 (Wire.remaining r)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"wire int roundtrip" ~count:500 QCheck.int (fun x ->
      let w = Wire.create_writer () in
      Wire.put_int w x;
      Wire.get_int (Wire.reader_of_bytes (Wire.contents w)) = x)

let prop_float_roundtrip =
  QCheck.Test.make ~name:"wire float roundtrip (bitwise)" ~count:500 QCheck.float (fun x ->
      let w = Wire.create_writer () in
      Wire.put_float w x;
      let y = Wire.get_float (Wire.reader_of_bytes (Wire.contents w)) in
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"wire string roundtrip" ~count:200 QCheck.string (fun s ->
      let w = Wire.create_writer () in
      Wire.put_string w s;
      Wire.get_string (Wire.reader_of_bytes (Wire.contents w)) (String.length s) = s)

let prop_mixed_sequence =
  let gen = QCheck.(small_list (pair int bool)) in
  QCheck.Test.make ~name:"wire mixed sequence roundtrip" ~count:200 gen (fun xs ->
      let w = Wire.create_writer () in
      List.iter
        (fun (i, b) ->
          Wire.put_int w i;
          Wire.put_bool w b)
        xs;
      let r = Wire.reader_of_bytes (Wire.contents w) in
      List.for_all
        (fun (i, b) ->
          let i' = Wire.get_int r in
          let b' = Wire.get_bool r in
          i = i' && b = b')
        xs)

let tests =
  [
    Alcotest.test_case "primitive roundtrip" `Quick test_primitive_roundtrip;
    Alcotest.test_case "underflow detection" `Quick test_underflow;
    Alcotest.test_case "decode error on corrupt bool" `Quick test_decode_error;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "pool bounds" `Quick test_pool_bounds;
    Alcotest.test_case "padding and skip" `Quick test_padding_and_skip;
    Alcotest.test_case "reserve = put" `Quick test_reserve_matches_put;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "reader window" `Quick test_reader_window;
    qtest prop_int_roundtrip;
    qtest prop_float_roundtrip;
    qtest prop_string_roundtrip;
    qtest prop_mixed_sequence;
  ]

let () = Alcotest.run "wire" [ ("wire", tests) ]
