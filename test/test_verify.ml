(* The verification plane: the bounded schedule-space model checker
   (Explore over Choice-controlled lazy matching) and the offline
   happens-before analyzer (Hb over vector-clocked trace streams). *)

open Mpisim

let prog name = (Option.get (Progs.find name)).Progs.body

let counter (report : Engine.report) name =
  Stats.count (Stats.counter report.Engine.stats name)

let with_stream f =
  let path = Filename.temp_file "mpisim_verify" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Record [body] with vector clocks on and hand the trace to [f]. *)
let analyze_run ?(ranks = 2) ?(check = Check.Off) body f =
  with_stream (fun path ->
      let report =
        Engine.run ~model:Net_model.omnipath ~check_level:check ~trace_stream:path
          ~vector_clocks:true ~ranks body
      in
      match Hb.analyze path with
      | Ok r -> f report r
      | Error msg -> Alcotest.failf "analyze failed: %s" msg)

(* --- model checker: violation detection --- *)

let test_explore_wildcard () =
  let r = Explore.explore ~ranks:2 (prog "wildcard_race") in
  Alcotest.(check int) "two schedules (second recv has one head left)" 2
    r.Explore.explored;
  Alcotest.(check int) "first decision branches on both sends" 2 r.Explore.max_branching;
  Alcotest.(check bool) "nondet-match violation" true
    (List.exists (fun v -> v.Explore.v_class = "nondet-match") r.Explore.violations);
  Alcotest.(check bool) "not certified deterministic" false r.Explore.match_deterministic

let test_explore_deadlock () =
  let r = Explore.explore ~ranks:2 (prog "deadlock") in
  Alcotest.(check bool) "deadlock violation" true
    (List.exists (fun v -> v.Explore.v_class = "deadlock") r.Explore.violations);
  Alcotest.(check bool) "not deadlock-free" false r.Explore.deadlock_free

let test_explore_coll_mismatch () =
  let r = Explore.explore ~ranks:2 (prog "coll_mismatch") in
  Alcotest.(check bool) "collective violation" true
    (List.exists (fun v -> v.Explore.v_class = "collective") r.Explore.violations)

(* --- model checker: certification of clean programs --- *)

let test_certify_clean_ring () =
  let r = Explore.explore ~ranks:4 (prog "clean_ring") in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Explore.v_class) r.Explore.violations);
  Alcotest.(check int) "one deterministic schedule" 1 r.Explore.explored;
  Alcotest.(check bool) "deadlock-free" true r.Explore.deadlock_free;
  Alcotest.(check bool) "match-deterministic" true r.Explore.match_deterministic

let test_certify_clean_coll () =
  let r = Explore.explore ~ranks:4 (prog "clean_coll") in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Explore.v_class) r.Explore.violations);
  Alcotest.(check bool) "deadlock-free" true r.Explore.deadlock_free

(* The master-worker program at p=4: three concurrent senders drained by
   wildcard receives gives exactly 3! = 6 non-equivalent schedules (the
   non-overtaking reduction collapses everything else). *)
let test_hidden_race_schedule_space () =
  let r = Explore.explore ~ranks:4 (prog "hidden_race") in
  Alcotest.(check int) "3! schedules" 6 r.Explore.explored;
  Alcotest.(check int) "three-way first decision" 3 r.Explore.max_branching;
  Alcotest.(check bool) "deadlock-free in every interleaving" true r.Explore.deadlock_free;
  Alcotest.(check bool) "but not match-deterministic" false r.Explore.match_deterministic;
  Alcotest.(check bool) "nondet-match witnessed" true
    (List.exists (fun v -> v.Explore.v_class = "nondet-match") r.Explore.violations)

let test_truncation () =
  let r = Explore.explore ~max_schedules:2 ~ranks:4 (prog "hidden_race") in
  Alcotest.(check bool) "truncated" true r.Explore.truncated;
  Alcotest.(check int) "stopped at the bound" 2 r.Explore.explored;
  Alcotest.(check bool) "truncated space is not a certificate" false
    r.Explore.deadlock_free

(* --- replay --- *)

let test_witness_replays () =
  let r = Explore.explore ~ranks:2 (prog "wildcard_race") in
  let v =
    List.find (fun v -> v.Explore.v_class = "nondet-match") r.Explore.violations
  in
  let replayed = Explore.replay ~ranks:2 ~script:v.Explore.v_script (prog "wildcard_race") in
  Alcotest.(check string) "witness replays to the same class" "nondet-match"
    (Explore.replay_class replayed)

let test_replay_forces_alternative () =
  let _, decisions, _ = Explore.replay ~ranks:2 ~script:[ 1 ] (prog "wildcard_race") in
  Alcotest.(check (list int)) "scripted choice taken, then default" [ 1; 0 ]
    (List.map (fun (d : Choice.decision) -> d.Choice.d_chosen) decisions)

let test_script_roundtrip () =
  Alcotest.(check bool) "parses" true (Choice.script_of_string "1,0,2" = Ok [ 1; 0; 2 ]);
  Alcotest.(check bool) "empty is empty" true (Choice.script_of_string "" = Ok []);
  Alcotest.(check string) "prints" "1,0,2" (Choice.script_to_string [ 1; 0; 2 ]);
  Alcotest.(check bool) "garbage rejected" true
    (match Choice.script_of_string "1,x" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "negatives rejected" true
    (match Choice.script_of_string "-1" with Error _ -> true | Ok _ -> false)

(* --- vector clocks --- *)

let test_vc_concurrent () =
  let c = Report.vc_concurrent in
  Alcotest.(check bool) "incomparable" true (c [| 0; 1; 0 |] [| 0; 0; 1 |]);
  Alcotest.(check bool) "ordered" false (c [| 0; 1; 0 |] [| 1; 1; 0 |]);
  Alcotest.(check bool) "equal" false (c [| 2; 2 |] [| 2; 2 |]);
  Alcotest.(check bool) "length mismatch is not concurrency" false (c [| 1 |] [| 1; 2 |]);
  Alcotest.(check bool) "empty is not concurrency" false (c [||] [||])

let test_vc_records_round_trip () =
  with_stream (fun path ->
      let (_ : Engine.report) =
        Engine.run ~model:Net_model.omnipath ~trace_stream:path ~vector_clocks:true
          ~ranks:4 (prog "clean_ring")
      in
      let n_vc = ref 0 in
      let ok_shape = ref true in
      match
        Trace_stream.fold_file path
          ~on_vc:(fun ~rank ~seq vc ->
            incr n_vc;
            if rank < 0 || rank >= 4 || seq < 0 || Array.length vc <> 4 then
              ok_shape := false)
          ~init:0
          ~f:(fun n _ -> n + 1)
      with
      | Error msg -> Alcotest.failf "fold failed: %s" msg
      | Ok (events, _) ->
          Alcotest.(check bool) "events present" true (events > 0);
          (* one vc per send + one per match: 4 sends, 4 receives *)
          Alcotest.(check int) "vc records" 8 !n_vc;
          Alcotest.(check bool) "every vc names a valid rank/seq and has p entries"
            true !ok_shape)

(* Without ~vector_clocks the stream must contain no tag-3 records and no
   analyzer metadata — ordinary traces keep their exact event mix. *)
let test_vc_off_by_default () =
  with_stream (fun path ->
      let (_ : Engine.report) =
        Engine.run ~model:Net_model.omnipath ~trace_stream:path ~ranks:3
          (prog "hidden_race")
      in
      match Hb.analyze path with
      | Error msg -> Alcotest.failf "analyze failed: %s" msg
      | Ok r ->
          Alcotest.(check bool) "no vc records" false r.Hb.had_vc;
          Alcotest.(check int) "no vcs counted" 0 r.Hb.vcs;
          Alcotest.(check (list string)) "no findings without clocks" []
            (Report.classes r.Hb.findings))

(* --- analyzer findings --- *)

(* The tentpole scenario: the runtime race counter reports zero (each
   wildcard receive is posted before any competing send has arrived), yet
   the analyzer proves the race offline from the vector clocks. *)
let test_analyzer_beats_single_run_counter () =
  analyze_run ~ranks:3 ~check:Check.Heavy (prog "hidden_race") (fun report r ->
      Alcotest.(check int) "runtime counter blind to the race" 0
        (counter report "check.wildcard_race");
      Alcotest.(check bool) "trace had vector clocks" true r.Hb.had_vc;
      Alcotest.(check int) "both wildcard receives seen" 2 r.Hb.wildcard_posts;
      Alcotest.(check bool) "analyzer proves the race" true
        (Report.has_class r.Hb.findings "wildcard-race"))

let test_analyzer_clean_trace () =
  analyze_run ~ranks:4 (prog "clean_ring") (fun _ r ->
      Alcotest.(check (list string)) "no findings" [] (Report.classes r.Hb.findings))

let test_analyzer_nc_order () =
  analyze_run ~ranks:3 (prog "nc_reduce") (fun _ r ->
      Alcotest.(check bool) "nc-order reported" true
        (Report.has_class r.Hb.findings "nc-order"))

(* The commutative clean_coll program lowers to the same sends but must
   NOT trigger nc-order: order-insensitivity makes the concurrency
   harmless. *)
let test_analyzer_commutative_silent () =
  analyze_run ~ranks:3 (prog "clean_coll") (fun _ r ->
      Alcotest.(check bool) "no nc-order for commutative ops" false
        (Report.has_class r.Hb.findings "nc-order"))

let test_analyzer_buffer_reuse () =
  analyze_run ~ranks:2 (prog "big_send") (fun _ r ->
      Alcotest.(check bool) "buffer-reuse window reported" true
        (Report.has_class r.Hb.findings "buffer-reuse");
      let f =
        List.find (fun f -> f.Report.f_class = "buffer-reuse") r.Hb.findings
      in
      Alcotest.(check int) "anchored on the sender" 0 f.Report.f_rank)

let test_analyzer_missing_file () =
  match Hb.analyze "/nonexistent/trace.bin" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a file error"

(* --- zero-cost-when-off discipline --- *)

(* With no Choice controller installed and vector clocks off, the hooks
   the verification plane added to the p2p hot path are a single ref
   read ([Choice.deferring]) and a single [Array.length] branch; same
   harness as the Check off-level test. *)
let test_off_hooks_are_free () =
  Choice.uninstall ();
  Alcotest.(check bool) "not deferring" false (Choice.deferring ());
  let vclocks : int array array = [||] in
  let hits = ref 0 in
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    if Choice.deferring () then incr hits;
    if Array.length vclocks > 0 then incr hits
  done;
  let allocated = Gc.minor_words () -. w0 in
  Alcotest.(check int) "guards never fired" 0 !hits;
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f words for 20k guarded sites" allocated)
    true (allocated < 100.)

(* And a whole-run check: the same p2p-heavy program allocates the same
   with the verification plumbing present as the trace tests always
   measured — vector clocks off means Message.make receives the shared
   empty-array atom, not a fresh clock. *)
let test_run_without_vc_stamps_nothing () =
  (* Runtime rows only exist after enable_vector_clocks. *)
  let probed = ref (-1) in
  let (_ : Engine.report) =
    Engine.run ~model:Net_model.zero_cost
      ~on_runtime:(fun rt -> probed := Array.length rt.Runtime.vclocks)
      ~ranks:2
      (fun _ -> ())
  in
  Alcotest.(check int) "no vclock rows allocated by default" 0 !probed

let () =
  Alcotest.run "verify"
    [
      ( "explore",
        [
          Alcotest.test_case "wildcard race branches" `Quick test_explore_wildcard;
          Alcotest.test_case "deadlock cycle" `Quick test_explore_deadlock;
          Alcotest.test_case "collective mismatch" `Quick test_explore_coll_mismatch;
          Alcotest.test_case "clean ring certified" `Quick test_certify_clean_ring;
          Alcotest.test_case "clean collectives certified" `Quick test_certify_clean_coll;
          Alcotest.test_case "hidden race schedule space" `Quick
            test_hidden_race_schedule_space;
          Alcotest.test_case "bounded exploration truncates" `Quick test_truncation;
        ] );
      ( "replay",
        [
          Alcotest.test_case "witness replays to same class" `Quick test_witness_replays;
          Alcotest.test_case "script forces the alternative" `Quick
            test_replay_forces_alternative;
          Alcotest.test_case "script round trip" `Quick test_script_roundtrip;
        ] );
      ( "hb",
        [
          Alcotest.test_case "vc concurrency" `Quick test_vc_concurrent;
          Alcotest.test_case "vc records round trip" `Quick test_vc_records_round_trip;
          Alcotest.test_case "vc off by default" `Quick test_vc_off_by_default;
          Alcotest.test_case "analyzer beats single-run counter" `Quick
            test_analyzer_beats_single_run_counter;
          Alcotest.test_case "clean trace has no findings" `Quick test_analyzer_clean_trace;
          Alcotest.test_case "nc-order on non-commutative reduce" `Quick
            test_analyzer_nc_order;
          Alcotest.test_case "commutative reduce stays silent" `Quick
            test_analyzer_commutative_silent;
          Alcotest.test_case "buffer-reuse window" `Quick test_analyzer_buffer_reuse;
          Alcotest.test_case "missing file is an error" `Quick test_analyzer_missing_file;
        ] );
      ( "cost",
        [
          Alcotest.test_case "off hooks allocation-free" `Quick test_off_hooks_are_free;
          Alcotest.test_case "no vc rows without opt-in" `Quick
            test_run_without_vc_stamps_nothing;
        ] );
    ]
