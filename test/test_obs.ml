(* Observability backbone: the streaming trace sink and its offline
   Chrome converter, causal message-flow tracing (Lamport clocks and the
   verified critical-path walk), the communication matrix, sorted stats
   dumps, timer gauge publication, and the bench-diff regression engine. *)

open Mpisim

let qtest = QCheck_alcotest.to_alcotest

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("mpisim_obs_" ^ name)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let has_prefix s pre =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

(* A small mixed workload: two collectives plus a p2p exchange, so traces
   carry coll spans, kamping spans and plain sends. *)
let mixed_program mpi =
  let comm = Kamping.Communicator.of_mpi mpi in
  let me = Comm.rank mpi in
  let n = Comm.size mpi in
  let s = Kamping.Collectives.allreduce comm Datatype.int Reduce_op.int_sum [| me |] in
  let all = Kamping.Collectives.allgather comm Datatype.int [| me * 2 |] in
  P2p.send mpi Datatype.int ~dest:((me + 1) mod n) [| me; s.(0) |];
  let d, _ = P2p.recv mpi Datatype.int ~source:((me + n - 1) mod n) () in
  s.(0) + Array.length all + d.(0)

(* --- streaming sink --- *)

let test_stream_sink_complete () =
  let path = tmp "basic.bin" in
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~trace_stream:path ~ranks:4
      mixed_program
  in
  let tr = report.Engine.trace in
  Alcotest.(check int) "no ring storage under the stream sink" 0
    (Trace.ring_capacity_total tr);
  Alcotest.(check int) "nothing dropped" 0 (Trace.total_dropped tr);
  let written = Trace.stream_events tr in
  Alcotest.(check bool) "events were streamed" true (written > 0);
  (match Trace_stream.fold_file path ~init:0 ~f:(fun n _ -> n + 1) with
  | Error msg -> Alcotest.fail msg
  | Ok (n, s) ->
      (* The fold validates per-rank sequence contiguity from zero, so
         reading back exactly what the writer counted proves no event was
         lost or reordered. *)
      Alcotest.(check int) "reader sees every written event" written n;
      Alcotest.(check int) "summary event count" written s.Trace_stream.s_events;
      Alcotest.(check int) "rank count round-trips" 4 s.Trace_stream.s_ranks);
  Sys.remove path

let test_stream_convert_valid_json () =
  let path = tmp "conv.bin" and out = tmp "conv.json" in
  let _, _ =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~trace_stream:path ~ranks:4
      mixed_program
  in
  (match Trace_stream.convert_to_chrome ~src:path ~dst:out with
  | Error msg -> Alcotest.fail msg
  | Ok s -> Alcotest.(check int) "converter rank count" 4 s.Trace_stream.s_ranks);
  let json = read_file out in
  (match Json_in.parse json with
  | Error msg -> Alcotest.failf "converter output is not valid JSON: %s" msg
  | Ok v -> (
      match Json_in.member "traceEvents" v with
      | Some (Json_in.Arr evs) ->
          Alcotest.(check bool) "has events" true (evs <> []);
          let phase ph e =
            match Json_in.member "ph" e with Some (Json_in.Str s) -> s = ph | _ -> false
          in
          Alcotest.(check bool) "has flow starts" true (List.exists (phase "s") evs);
          Alcotest.(check bool) "has flow ends" true (List.exists (phase "f") evs)
      | _ -> Alcotest.fail "no traceEvents array"));
  Alcotest.(check bool) "declares zero drops" true
    (contains ~needle:"\"droppedEvents\":0" json);
  Sys.remove path;
  Sys.remove out

let test_stream_convert_deterministic () =
  let once tag =
    let path = tmp (tag ^ ".bin") and out = tmp (tag ^ ".json") in
    let _, _ =
      Engine.run_collect ~clock_mode:Runtime.Virtual_only ~trace_stream:path ~ranks:5
        mixed_program
    in
    (match Trace_stream.convert_to_chrome ~src:path ~dst:out with
    | Error msg -> Alcotest.fail msg
    | Ok _ -> ());
    let json = read_file out in
    Sys.remove path;
    Sys.remove out;
    json
  in
  Alcotest.(check bool) "two virtual-clock runs convert byte-identically" true
    (once "det1" = once "det2")

(* The scale guarantee: a 4096-rank streamed run allocates no per-rank
   ring storage at all — memory stays bounded regardless of rank count —
   and still loses nothing. *)
let test_stream_scale_bounded_memory () =
  let path = tmp "scale.bin" in
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~trace_stream:path ~ranks:4096
      (fun mpi -> Coll.barrier mpi)
  in
  let tr = report.Engine.trace in
  Alcotest.(check int) "zero ring slots at p=4096" 0 (Trace.ring_capacity_total tr);
  Alcotest.(check int) "zero dropped at p=4096" 0 (Trace.total_dropped tr);
  let written = Trace.stream_events tr in
  (match Trace_stream.fold_file path ~init:() ~f:(fun () _ -> ()) with
  | Error msg -> Alcotest.fail msg
  | Ok ((), s) ->
      Alcotest.(check int) "all 4096 ranks in the header" 4096 s.Trace_stream.s_ranks;
      Alcotest.(check int) "file holds every event" written s.Trace_stream.s_events);
  Sys.remove path

(* --- zero-duration spans in the Chrome export --- *)

let test_zero_duration_clamp () =
  let clocks = [| 0. |] in
  let tr = Trace.create ~clocks in
  Trace.enable tr;
  Trace.complete tr ~rank:0 ~cat:"sched" ~name:"segment" ~dur:0.;
  let json = Trace.to_chrome_json tr in
  match Json_in.parse json with
  | Error msg -> Alcotest.fail msg
  | Ok v -> (
      match Json_in.member "traceEvents" v with
      | Some (Json_in.Arr evs) ->
          let x =
            List.find
              (fun e ->
                match Json_in.member "ph" e with
                | Some (Json_in.Str "X") -> true
                | _ -> false)
              evs
          in
          (match Option.bind (Json_in.member "dur" x) Json_in.to_float with
          | Some dur ->
              Alcotest.(check bool) "duration clamped visible" true (dur > 0.)
          | None -> Alcotest.fail "X event has no dur");
          let tagged =
            match Json_in.member "args" x with
            | Some args -> (
                match Option.bind (Json_in.member "zero_dur" args) Json_in.to_float with
                | Some f -> f = 1.
                | None -> false)
            | None -> false
          in
          Alcotest.(check bool) "tagged zero_dur=1" true tagged
      | _ -> Alcotest.fail "no traceEvents array")

(* --- sorted stats dumps --- *)

let test_stats_sorted_iteration () =
  let s = Stats.create () in
  List.iter (fun n -> Stats.incr (Stats.counter s n)) [ "zeta"; "alpha"; "mid" ];
  Stats.set (Stats.gauge s "g2") 2.;
  Stats.set (Stats.gauge s "g1") 1.;
  let counters = ref [] and gauges = ref [] in
  Stats.iter_counters s (fun n _ -> counters := n :: !counters);
  Stats.iter_gauges s (fun n _ -> gauges := n :: !gauges);
  Alcotest.(check (list string))
    "counters sorted by name"
    [ "alpha"; "mid"; "zeta" ]
    (List.rev !counters);
  Alcotest.(check (list string)) "gauges sorted by name" [ "g1"; "g2" ]
    (List.rev !gauges)

(* --- communication matrix --- *)

let test_comm_matrix_attribution () =
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~comm_matrix:true ~ranks:4
      mixed_program
  in
  let cm = report.Engine.comm_matrix in
  let entries = Comm_matrix.entries cm in
  Alcotest.(check bool) "matrix is non-empty" true (entries <> []);
  let keys =
    List.map
      (fun e -> (e.Comm_matrix.cm_src, e.Comm_matrix.cm_dst, e.Comm_matrix.cm_label))
      entries
  in
  Alcotest.(check bool) "entries sorted by (src, dst, label)" true
    (List.sort compare keys = keys);
  Alcotest.(check bool) "collective traffic carries an algorithm label" true
    (List.exists (fun e -> e.Comm_matrix.cm_label <> Comm_matrix.p2p_label) entries);
  Alcotest.(check bool) "ring exchange attributed to p2p" true
    (List.exists
       (fun e ->
         e.Comm_matrix.cm_src = 0 && e.Comm_matrix.cm_dst = 1
         && e.Comm_matrix.cm_label = Comm_matrix.p2p_label)
       entries);
  let msgs, bytes = Comm_matrix.totals cm in
  Alcotest.(check bool) "totals positive" true (msgs > 0 && bytes > 0);
  Alcotest.(check int) "matrix counts every injected message" msgs
    (Stats.count (Stats.counter report.Engine.stats "msg.sent"));
  (* Aggregates were published into the stats registry. *)
  let published = ref false in
  Stats.iter_counters report.Engine.stats (fun n _ ->
      if has_prefix n "comm.msgs." then published := true);
  Alcotest.(check bool) "comm.msgs.* published in stats" true !published;
  Alcotest.(check bool) "csv header" true
    (has_prefix (Comm_matrix.csv cm) "src,dst,algo,msgs,bytes\n")

let test_comm_matrix_off_by_default () =
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~ranks:2 mixed_program
  in
  Alcotest.(check bool) "disabled by default" false
    (Comm_matrix.enabled report.Engine.comm_matrix);
  Alcotest.(check int) "no cells recorded" 0
    (List.length (Comm_matrix.entries report.Engine.comm_matrix))

(* --- causal tracing: Lamport clocks and the verified critical path --- *)

let test_lamport_send_match_instants () =
  let ranks = 4 in
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~trace_capacity:65536 ~ranks
      mixed_program
  in
  let tr = report.Engine.trace in
  for r = 0 to ranks - 1 do
    let ds =
      List.filter_map
        (fun e ->
          if e.Trace.kind = Trace.Instant && e.Trace.cat = "sim" && e.Trace.d >= 0 then
            Some e.Trace.d
          else None)
        (Trace.events tr r)
    in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d: has Lamport-stamped instants" r)
      true (ds <> []);
    let rec strictly_increasing = function
      | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
      | _ -> true
    in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d: Lamport clock strictly increases" r)
      true (strictly_increasing ds)
  done;
  (* Every match carries a Lamport stamp strictly above its send's. *)
  let sends = Hashtbl.create 64 in
  for r = 0 to ranks - 1 do
    List.iter
      (fun e ->
        if e.Trace.kind = Trace.Instant && e.Trace.cat = "sim" && e.Trace.name = "send"
        then Hashtbl.replace sends e.Trace.b e.Trace.d)
      (Trace.events tr r)
  done;
  let checked = ref 0 in
  for r = 0 to ranks - 1 do
    List.iter
      (fun e ->
        if
          e.Trace.kind = Trace.Instant && e.Trace.cat = "sim"
          && (e.Trace.name = "match" || e.Trace.name = "match_wait")
        then
          match Hashtbl.find_opt sends e.Trace.b with
          | Some send_lam ->
              incr checked;
              Alcotest.(check bool) "send Lamport < match Lamport" true
                (send_lam < e.Trace.d)
          | None -> ())
      (Trace.events tr r)
  done;
  Alcotest.(check bool) "checked at least one send->match edge" true (!checked > 0)

let test_critical_path_verified_edges () =
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~trace_capacity:65536 ~ranks:4
      mixed_program
  in
  let hops =
    Trace_report.critical_path report.Engine.trace ~times:report.Engine.times
  in
  Alcotest.(check bool) "path is non-empty" true (hops <> []);
  let edges =
    List.filter (fun h -> h.Trace_report.via_src >= 0) hops
  in
  Alcotest.(check bool) "path crosses at least one rank" true (edges <> []);
  List.iter
    (fun h ->
      Alcotest.(check bool) "every crossed edge is verified" true
        h.Trace_report.via_verified;
      Alcotest.(check bool) "edge latency is non-negative" true
        (h.Trace_report.via_latency >= 0.))
    edges;
  (* The report renders the verification summary and per-edge slack. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Trace_report.pp_critical_path ppf report.Engine.trace ~times:report.Engine.times;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  Alcotest.(check bool) "report mentions verified edges" true
    (contains ~needle:"edges verified send->recv" text)

(* --- timer gauges --- *)

let test_timer_publishes_gauges () =
  let _, report =
    Engine.run_collect ~clock_mode:Runtime.Virtual_only ~ranks:2 (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let timer = Kamping.Timer.create comm in
        Kamping.Timer.time timer "io" (fun () ->
            Runtime.charge_compute (Comm.runtime mpi) (Comm.world_rank mpi) 0.001);
        ignore (Kamping.Timer.aggregate timer))
  in
  let found = ref [] in
  Stats.iter_gauges report.Engine.stats (fun n _ ->
      if has_prefix n "timer.io." then found := n :: !found);
  Alcotest.(check (list string))
    "aggregate published min/mean/max gauges"
    [ "timer.io.max_seconds"; "timer.io.mean_seconds"; "timer.io.min_seconds" ]
    (List.rev !found)

(* --- disabled hot paths stay allocation-free --- *)

let test_disabled_paths_allocation_free () =
  let clocks = [| 0. |] in
  let tr = Trace.create ~clocks in
  let cm = Comm_matrix.create ~size:2 in
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.instant_d tr ~rank:0 ~cat:"c" ~name:"i" ~a:i ~b:0 ~c:0 ~d:i;
    Comm_matrix.record cm ~src:0 ~dst:1 ~bytes:i
  done;
  let allocated = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "disabled instant_d + matrix record allocate nothing (%.0f words)"
       allocated)
    true (allocated < 100.);
  Alcotest.(check int) "matrix stayed empty" 0 (List.length (Comm_matrix.entries cm))

(* --- chaos properties (qcheck) --- *)

let chaos_trace_events ~seed =
  let rates =
    { Net_model.drop = 0.05; duplicate = 0.3; reorder = 0.3; corrupt = 0.; jitter = 0. }
  in
  let chaos = Chaos.config ~seed ~rates ~max_retries:10 () in
  let ranks = 3 in
  let program mpi =
    let me = Comm.rank mpi in
    let n = Comm.size mpi in
    for round = 1 to 8 do
      P2p.send mpi Datatype.int ~dest:((me + 1) mod n) [| (me * 100) + round |];
      ignore (P2p.recv mpi Datatype.int ~source:((me + n - 1) mod n) ())
    done
  in
  match
    Engine.run_collect ~model:Net_model.ethernet ~clock_mode:Runtime.Virtual_only ~chaos
      ~trace_capacity:65536 ~ranks program
  with
  | exception Scheduler.Aborted _ -> None (* escalated to ERR_PROC_FAILED: rare, fine *)
  | exception Errdefs.Mpi_error _ -> None
  | _, report ->
      let evs = ref [] in
      for r = ranks - 1 downto 0 do
        evs := (r, Trace.events report.Engine.trace r) :: !evs
      done;
      Some !evs

(* Duplicated or retransmitted deliveries must never produce a second
   flow-end (match) event for the same flow id, and every matched flow
   has exactly one send. *)
let test_chaos_flow_dedup =
  QCheck.Test.make ~name:"chaos duplicates never double-match a flow" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      match chaos_trace_events ~seed with
      | None -> true
      | Some per_rank ->
          let sends = Hashtbl.create 128 and matches = Hashtbl.create 128 in
          List.iter
            (fun (_, evs) ->
              List.iter
                (fun e ->
                  if e.Trace.kind = Trace.Instant && e.Trace.cat = "sim" then begin
                    let bump tbl =
                      Hashtbl.replace tbl e.Trace.b
                        (1 + Option.value (Hashtbl.find_opt tbl e.Trace.b) ~default:0)
                    in
                    if e.Trace.name = "send" then bump sends
                    else if e.Trace.name = "match" || e.Trace.name = "match_wait" then
                      bump matches
                  end)
                evs)
            per_rank;
          Hashtbl.fold (fun _ n ok -> ok && n <= 1) matches true
          && Hashtbl.fold
               (fun seq _ ok -> ok && Hashtbl.find_opt sends seq = Some 1)
               matches true)

let test_chaos_lamport_monotone =
  QCheck.Test.make ~name:"Lamport clocks monotone per rank under reordering" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      match chaos_trace_events ~seed with
      | None -> true
      | Some per_rank ->
          List.for_all
            (fun (_, evs) ->
              let ds =
                List.filter_map
                  (fun e ->
                    if
                      e.Trace.kind = Trace.Instant && e.Trace.cat = "sim"
                      && e.Trace.d >= 0
                    then Some e.Trace.d
                    else None)
                  evs
              in
              let rec increasing = function
                | a :: (b :: _ as rest) -> a < b && increasing rest
                | _ -> true
              in
              increasing ds)
            per_rank)

(* --- JSON parser --- *)

let test_json_in_parses () =
  (match Json_in.parse {| {"a": 1, "b": [true, null, "x\nA"], "c": -2.5e1} |} with
  | Error msg -> Alcotest.fail msg
  | Ok v ->
      Alcotest.(check (option (float 0.))) "int field" (Some 1.)
        (Option.bind (Json_in.member "a" v) Json_in.to_float);
      Alcotest.(check (option (float 0.))) "float field" (Some (-25.))
        (Option.bind (Json_in.member "c" v) Json_in.to_float);
      (match Json_in.member "b" v with
      | Some (Json_in.Arr [ Json_in.Bool true; Json_in.Null; Json_in.Str s ]) ->
          Alcotest.(check string) "escapes decoded" "x\nA" s
      | _ -> Alcotest.fail "array shape"));
  (match Json_in.parse "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  match Json_in.parse_lines "{\"x\": 1}\n\n{\"x\": 2}\n" with
  | Ok [ _; _ ] -> ()
  | Ok l -> Alcotest.failf "expected 2 lines, got %d" (List.length l)
  | Error msg -> Alcotest.fail msg

(* Surrogate pairs decode to the astral code point; a lone surrogate or a
   truncated pair is a clean error. *)
let test_json_in_surrogates () =
  (match Json_in.parse {| "😀" |} with
  | Ok (Json_in.Str s) ->
      Alcotest.(check string) "U+1F600 as UTF-8" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error msg -> Alcotest.failf "surrogate pair rejected: %s" msg);
  (match Json_in.parse {| "pre 😀 post" |} with
  | Ok (Json_in.Str s) ->
      Alcotest.(check string) "embedded pair" "pre \xf0\x9f\x98\x80 post" s
  | Ok _ | Error _ -> Alcotest.fail "embedded surrogate pair");
  List.iter
    (fun src ->
      match Json_in.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed surrogate %S" src
      | Error _ -> ())
    [ {| "\ud83d" |}; {| "\ud83dx" |}; {| "\ud83dA" |}; {| "\ude00" |} ]

(* Deep nesting must fail with a parse error, never Stack_overflow. *)
let test_json_in_depth_bounded () =
  (* Comfortably under the cap: parses fine. *)
  let nested n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  (match Json_in.parse (nested 500) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "500 levels rejected: %s" msg);
  (* Adversarial: 100k unclosed brackets.  The old recursive descent
     overflowed the stack here. *)
  (match Json_in.parse (String.make 100_000 '[') with
  | Ok _ -> Alcotest.fail "accepted 100k open brackets"
  | Error msg ->
      Alcotest.(check bool) "names the nesting bound" true
        (String.length msg > 0)
  | exception Stack_overflow -> Alcotest.fail "stack overflow on deep nesting");
  match Json_in.parse (nested 5_000) with
  | Ok _ -> Alcotest.fail "accepted 5k levels"
  | Error _ -> ()
  | exception Stack_overflow -> Alcotest.fail "stack overflow on deep nesting"

(* Truncated documents surface as clean errors at every cut point. *)
let test_json_in_truncated () =
  let full = {|{"a": [1, true, "xA"], "b": {"c": null}}|} in
  for cut = 0 to String.length full - 1 do
    match Json_in.parse (String.sub full 0 cut) with
    | Ok _ when cut = 0 -> Alcotest.fail "accepted empty input"
    | Ok _ -> Alcotest.failf "accepted truncation at %d" cut
    | Error _ -> ()
    | exception exn ->
        Alcotest.failf "raised %s at cut %d" (Printexc.to_string exn) cut
  done

(* --- bench-diff engine --- *)

let mk bench keys metrics =
  { Bench_compare.r_bench = bench; r_keys = keys; r_metrics = metrics }

let test_bench_compare_directions () =
  Alcotest.(check bool) "seconds lower-better" true
    (Bench_compare.metric_direction "sim_seconds" = Some Bench_compare.Lower_better);
  Alcotest.(check bool) "per_second higher-better" true
    (Bench_compare.metric_direction "bytes_per_second" = Some Bench_compare.Higher_better);
  Alcotest.(check bool) "speedup higher-better" true
    (Bench_compare.metric_direction "speedup" = Some Bench_compare.Higher_better);
  Alcotest.(check bool) "peak elems lower-better" true
    (Bench_compare.metric_direction "scratch_peak_elems" = Some Bench_compare.Lower_better);
  Alcotest.(check bool) "plain config field is identity" true
    (Bench_compare.metric_direction "ranks" = None);
  Alcotest.(check bool) "wall detection" true
    (Bench_compare.is_wall "median_wall_seconds" && not (Bench_compare.is_wall "sim_seconds"))

let test_bench_compare_verdicts () =
  let baseline =
    [ mk "pingpong" [ ("ranks", "2") ] [ ("sim_seconds", 1.0); ("rate_per_second", 100.) ] ]
  in
  (* Identical runs: no regressions. *)
  let same =
    Bench_compare.diff ~baseline ~current:baseline ()
  in
  Alcotest.(check bool) "identical -> clean" false (Bench_compare.has_regressions same);
  Alcotest.(check int) "identical -> both metrics compared" 2 same.Bench_compare.compared;
  (* Injected synthetic regression: slower AND lower throughput. *)
  let bad =
    [ mk "pingpong" [ ("ranks", "2") ] [ ("sim_seconds", 1.25); ("rate_per_second", 80.) ] ]
  in
  let v = Bench_compare.diff ~baseline ~current:bad () in
  Alcotest.(check bool) "regression detected" true (Bench_compare.has_regressions v);
  Alcotest.(check int) "both directions flagged" 2
    (List.length v.Bench_compare.regressions);
  (* The same drift inside tolerance passes. *)
  let near =
    [ mk "pingpong" [ ("ranks", "2") ] [ ("sim_seconds", 1.05); ("rate_per_second", 96.) ] ]
  in
  Alcotest.(check bool) "within tolerance -> clean" false
    (Bench_compare.has_regressions (Bench_compare.diff ~baseline ~current:near ()));
  Alcotest.(check bool) "tight tolerance flags it" true
    (Bench_compare.has_regressions
       (Bench_compare.diff ~tolerance:0.01 ~baseline ~current:near ()));
  (* Improvements are reported separately, never as failures. *)
  let better =
    [ mk "pingpong" [ ("ranks", "2") ] [ ("sim_seconds", 0.5); ("rate_per_second", 200.) ] ]
  in
  let vi = Bench_compare.diff ~baseline ~current:better () in
  Alcotest.(check bool) "improvement is not a regression" false
    (Bench_compare.has_regressions vi);
  Alcotest.(check int) "improvements counted" 2 (List.length vi.Bench_compare.improvements)

let test_bench_compare_identity_and_wall () =
  let baseline =
    [ mk "coll" [ ("ranks", "64") ] [ ("sim_seconds", 1.0); ("median_wall_seconds", 1.0) ] ]
  in
  (* Different identity (ranks) never matches: counted as missing. *)
  let other = [ mk "coll" [ ("ranks", "128") ] [ ("sim_seconds", 9.9) ] ] in
  let v = Bench_compare.diff ~baseline ~current:other () in
  Alcotest.(check bool) "no cross-identity comparison" false
    (Bench_compare.has_regressions v);
  Alcotest.(check int) "missing baseline counted" 1 v.Bench_compare.missing_baseline;
  (* Wall-clock metrics are skipped unless opted in. *)
  let slow_wall =
    [ mk "coll" [ ("ranks", "64") ] [ ("sim_seconds", 1.0); ("median_wall_seconds", 5.0) ] ]
  in
  let skipped = Bench_compare.diff ~baseline ~current:slow_wall () in
  Alcotest.(check bool) "wall skipped by default" false
    (Bench_compare.has_regressions skipped);
  Alcotest.(check int) "skip counted" 1 skipped.Bench_compare.skipped_wall;
  Alcotest.(check bool) "wall gated when included" true
    (Bench_compare.has_regressions
       (Bench_compare.diff ~include_wall:true ~baseline ~current:slow_wall ()))

let test_bench_compare_record_of_json () =
  match Json_in.parse {| {"bench": "fig8", "ranks": 64.0, "algo": "bruck", "sim_seconds": 0.25} |} with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
      match Bench_compare.record_of_json j with
      | None -> Alcotest.fail "object rejected"
      | Some r ->
          Alcotest.(check string) "bench name" "fig8" r.Bench_compare.r_bench;
          (* 64.0 prints as 64, so float and int configs share an identity. *)
          Alcotest.(check bool) "identity" true
            (Bench_compare.identity r = "fig8|algo=bruck|ranks=64");
          Alcotest.(check bool) "metric split out" true
            (r.Bench_compare.r_metrics = [ ("sim_seconds", 0.25) ]))

let tests =
  [
    Alcotest.test_case "stream sink completeness" `Quick test_stream_sink_complete;
    Alcotest.test_case "stream converter valid JSON" `Quick test_stream_convert_valid_json;
    Alcotest.test_case "stream converter deterministic" `Quick
      test_stream_convert_deterministic;
    Alcotest.test_case "stream scale p=4096 bounded memory" `Slow
      test_stream_scale_bounded_memory;
    Alcotest.test_case "zero-duration clamp" `Quick test_zero_duration_clamp;
    Alcotest.test_case "stats sorted iteration" `Quick test_stats_sorted_iteration;
    Alcotest.test_case "comm matrix attribution" `Quick test_comm_matrix_attribution;
    Alcotest.test_case "comm matrix off by default" `Quick test_comm_matrix_off_by_default;
    Alcotest.test_case "lamport send/match instants" `Quick
      test_lamport_send_match_instants;
    Alcotest.test_case "critical path verified edges" `Quick
      test_critical_path_verified_edges;
    Alcotest.test_case "timer publishes gauges" `Quick test_timer_publishes_gauges;
    Alcotest.test_case "disabled paths allocation-free" `Quick
      test_disabled_paths_allocation_free;
    qtest test_chaos_flow_dedup;
    qtest test_chaos_lamport_monotone;
    Alcotest.test_case "json_in parses" `Quick test_json_in_parses;
    Alcotest.test_case "json_in surrogate pairs" `Quick test_json_in_surrogates;
    Alcotest.test_case "json_in nesting bounded" `Quick test_json_in_depth_bounded;
    Alcotest.test_case "json_in truncated input" `Quick test_json_in_truncated;
    Alcotest.test_case "bench compare directions" `Quick test_bench_compare_directions;
    Alcotest.test_case "bench compare verdicts" `Quick test_bench_compare_verdicts;
    Alcotest.test_case "bench compare identity and wall" `Quick
      test_bench_compare_identity_and_wall;
    Alcotest.test_case "bench compare record_of_json" `Quick
      test_bench_compare_record_of_json;
  ]

let () = Alcotest.run "obs" [ ("obs", tests) ]
