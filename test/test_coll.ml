(* Property tests for every collective: outputs must equal a sequential
   reference computed from all ranks' inputs, for random rank counts,
   element counts and values. *)

open Mpisim

let qtest = QCheck_alcotest.to_alcotest

(* Generator scaffolding: a rank count in 1..9 and per-rank integer data of
   varying lengths, derived deterministically from a qcheck seed. *)
let gen_p_and_seed = QCheck.(pair (int_range 1 9) (int_bound 1_000_000))

let data_for ~seed ~rank ~len =
  Array.init len (fun i -> Xoshiro.hash_int ~seed ~stream:rank ~counter:i ~bound:1000 - 500)

let len_for ~seed ~rank = Xoshiro.hash_int ~seed ~stream:77 ~counter:rank ~bound:6

(* --- allgatherv --- *)

let prop_allgatherv =
  QCheck.Test.make ~name:"allgatherv = concatenation" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let data = data_for ~seed ~rank:r ~len:(len_for ~seed ~rank:r) in
            let counts = Coll.allgather comm Datatype.int [| Array.length data |] in
            Coll.allgatherv comm Datatype.int ~recv_counts:counts data)
      in
      let expected =
        Array.concat
          (List.init p (fun r -> data_for ~seed ~rank:r ~len:(len_for ~seed ~rank:r)))
      in
      Array.for_all (fun res -> res = expected) results)

(* --- gatherv / scatterv --- *)

let prop_gatherv =
  QCheck.Test.make ~name:"gatherv = concatenation at root" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let root = seed mod p in
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let data = data_for ~seed ~rank:r ~len:(len_for ~seed ~rank:r) in
            let counts = Coll.gather comm Datatype.int ~root [| Array.length data |] in
            if r = root then Coll.gatherv comm Datatype.int ~root ~recv_counts:counts data
            else Coll.gatherv comm Datatype.int ~root data)
      in
      let expected =
        Array.concat
          (List.init p (fun r -> data_for ~seed ~rank:r ~len:(len_for ~seed ~rank:r)))
      in
      results.(root) = expected
      && Array.for_all (fun res -> res = expected || res = [||]) results)

let prop_scatterv_inverts_gatherv =
  QCheck.Test.make ~name:"scatterv splits what gatherv joins" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let counts = Array.init p (fun i -> len_for ~seed ~rank:i) in
            let total = Array.fold_left ( + ) 0 counts in
            let all = Array.init total (fun i -> i * 3) in
            let mine =
              if r = 0 then
                Coll.scatterv comm Datatype.int ~root:0 ~send_counts:counts (Some all)
              else Coll.scatterv comm Datatype.int ~root:0 None
            in
            mine)
      in
      let counts = Array.init p (fun i -> len_for ~seed ~rank:i) in
      let displs = Coll.exclusive_prefix_sum counts in
      Array.for_all
        (fun r ->
          results.(r) = Array.init counts.(r) (fun i -> (displs.(r) + i) * 3))
        (Array.init p Fun.id))

(* --- bcast --- *)

let prop_bcast =
  QCheck.Test.make ~name:"bcast reaches everyone" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let root = seed mod p in
      let payload = data_for ~seed ~rank:42 ~len:(1 + (seed mod 7)) in
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            Coll.bcast comm Datatype.int ~root
              (if Comm.rank comm = root then Some payload else None))
      in
      Array.for_all (fun res -> res = payload) results)

(* --- reduce / allreduce --- *)

let prop_reduce_sum =
  QCheck.Test.make ~name:"reduce(sum) = elementwise total" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let len = 4 in
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            Coll.reduce comm Datatype.int Reduce_op.int_sum ~root:0
              (data_for ~seed ~rank:(Comm.rank comm) ~len))
      in
      let expected =
        Array.init len (fun i ->
            List.fold_left ( + ) 0
              (List.init p (fun r -> (data_for ~seed ~rank:r ~len).(i))))
      in
      results.(0) = expected)

let prop_allreduce_min_max =
  QCheck.Test.make ~name:"allreduce min/max" ~count:60 gen_p_and_seed (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let x = Xoshiro.hash_int ~seed ~stream:5 ~counter:(Comm.rank comm) ~bound:1000 in
            ( Coll.allreduce_single comm Datatype.int Reduce_op.int_min x,
              Coll.allreduce_single comm Datatype.int Reduce_op.int_max x ))
      in
      let values =
        List.init p (fun r -> Xoshiro.hash_int ~seed ~stream:5 ~counter:r ~bound:1000)
      in
      let mn = List.fold_left min max_int values and mx = List.fold_left max min_int values in
      Array.for_all (fun (a, b) -> a = mn && b = mx) results)

(* Non-commutative reduction: string-like concatenation encoded as an int
   fold whose result depends on order. *)
let prop_reduce_noncommutative_order =
  QCheck.Test.make ~name:"non-commutative reduce preserves rank order" ~count:40
    gen_p_and_seed (fun (p, seed) ->
      ignore seed;
      let op = Reduce_op.custom ~commutative:false ~name:"append" (fun a b -> (a * 10) + b) in
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            Coll.reduce comm Datatype.int op ~root:0 [| Comm.rank comm + 1 |])
      in
      let expected = List.fold_left (fun acc r -> (acc * 10) + (r + 1)) 1 (List.init (p - 1) (fun i -> i + 1)) in
      results.(0) = [| expected |])

(* --- scan / exscan --- *)

let prop_scan =
  QCheck.Test.make ~name:"scan = inclusive prefix" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let x = Xoshiro.hash_int ~seed ~stream:6 ~counter:(Comm.rank comm) ~bound:100 in
            Coll.scan_single comm Datatype.int Reduce_op.int_sum x)
      in
      let values = List.init p (fun r -> Xoshiro.hash_int ~seed ~stream:6 ~counter:r ~bound:100) in
      let rec prefixes acc = function
        | [] -> []
        | x :: rest -> (acc + x) :: prefixes (acc + x) rest
      in
      Array.to_list results = prefixes 0 values)

let prop_exscan =
  QCheck.Test.make ~name:"exscan = exclusive prefix" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let x = Xoshiro.hash_int ~seed ~stream:6 ~counter:(Comm.rank comm) ~bound:100 in
            Coll.exscan_single comm Datatype.int Reduce_op.int_sum x)
      in
      let values = List.init p (fun r -> Xoshiro.hash_int ~seed ~stream:6 ~counter:r ~bound:100) in
      let expected =
        List.mapi
          (fun r _ ->
            if r = 0 then None
            else Some (List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < r) values)))
          values
      in
      Array.to_list results = expected)

(* --- alltoall / alltoallv / alltoallw --- *)

let prop_alltoall =
  QCheck.Test.make ~name:"alltoall = transpose" ~count:60 gen_p_and_seed (fun (p, seed) ->
      ignore seed;
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            Coll.alltoall comm Datatype.int (Array.init p (fun d -> (r * 100) + d)))
      in
      Array.for_all
        (fun d -> results.(d) = Array.init p (fun src -> (src * 100) + d))
        (Array.init p Fun.id))

let alltoall_reference ~p ~seed =
  (* what rank d receives: for each src, src's block for d *)
  Array.init p (fun d ->
      Array.concat
        (List.init p (fun src ->
             let len = (seed + src + d) mod 4 in
             Array.init len (fun i -> (src * 10000) + (d * 100) + i))))

let prop_alltoallv =
  QCheck.Test.make ~name:"alltoallv = irregular transpose" ~count:60 gen_p_and_seed
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let send_counts = Array.init p (fun d -> (seed + r + d) mod 4) in
            let data =
              Array.concat
                (List.init p (fun d ->
                     Array.init send_counts.(d) (fun i -> (r * 10000) + (d * 100) + i)))
            in
            let recv_counts = Coll.alltoall comm Datatype.int send_counts in
            let send_displs = Coll.exclusive_prefix_sum send_counts in
            let recv_displs = Coll.exclusive_prefix_sum recv_counts in
            Coll.alltoallv comm Datatype.int ~send_counts ~send_displs ~recv_counts
              ~recv_displs data)
      in
      let expected = alltoall_reference ~p ~seed in
      Array.for_all (fun d -> results.(d) = expected.(d)) (Array.init p Fun.id))

let prop_alltoallw_matches_alltoallv =
  QCheck.Test.make ~name:"alltoallw result = alltoallv result" ~count:40 gen_p_and_seed
    (fun (p, seed) ->
      let results =
        Engine.run_values ~model:Net_model.zero_cost ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let send_counts = Array.init p (fun d -> (seed + r + d) mod 4) in
            let data =
              Array.concat
                (List.init p (fun d ->
                     Array.init send_counts.(d) (fun i -> (r * 10000) + (d * 100) + i)))
            in
            let recv_counts = Coll.alltoall comm Datatype.int send_counts in
            Coll.alltoallw comm Datatype.int ~send_counts ~recv_counts data)
      in
      let expected = alltoall_reference ~p ~seed in
      Array.for_all (fun d -> results.(d) = expected.(d)) (Array.init p Fun.id))

(* --- barrier: clock synchronization --- *)

let test_barrier_synchronizes () =
  let times =
    Engine.run_values ~clock_mode:Runtime.Virtual_only ~ranks:4 (fun comm ->
        let rt = Comm.runtime comm in
        (* Rank 2 is 1 second behind everyone else. *)
        if Comm.rank comm = 2 then Runtime.charge_compute rt 2 1.0;
        Coll.barrier comm;
        Runtime.clock rt (Comm.world_rank comm))
  in
  Array.iter
    (fun t -> Alcotest.(check bool) "after the slowest rank" true (t >= 1.0))
    times

(* --- neighbor collectives --- *)

let test_neighbor_alltoallv_ring () =
  let p = 6 in
  let results =
    Engine.run_values ~ranks:p (fun comm ->
        let r = Comm.rank comm in
        let nbs = [| (r + p - 1) mod p; (r + 1) mod p |] in
        let topo = Comm_ops.dist_graph_create_adjacent comm ~sources:nbs ~destinations:nbs in
        let data = [| (r * 10) + 1; (r * 10) + 1; (r * 10) + 2 |] in
        (* 2 elements to the left neighbor, 1 to the right *)
        Coll.neighbor_alltoallv topo Datatype.int ~send_counts:[| 2; 1 |]
          ~recv_counts:[| 1; 2 |] data)
  in
  Array.iteri
    (fun r res ->
      (* from left neighbor: its 1-element right block; from right: its
         2-element left block *)
      let left = (r + p - 1) mod p and right = (r + 1) mod p in
      Alcotest.(check (array int))
        (Printf.sprintf "rank %d" r)
        [| (left * 10) + 2; (right * 10) + 1; (right * 10) + 1 |]
        res)
    results

let test_neighbor_requires_topology () =
  let caught = ref false in
  (try
     ignore
       (Engine.run ~ranks:2 (fun comm ->
            ignore (Coll.neighbor_allgather comm Datatype.int [| 1 |])))
   with Scheduler.Aborted { exn = Errdefs.Usage_error _; _ } -> caught := true);
  Alcotest.(check bool) "usage error without topology" true !caught

(* --- strong debug mode: mismatched collectives detected --- *)

let test_collective_trace_mismatch_detected () =
  let caught = ref false in
  (try
     ignore
       (Engine.run ~assertion_level:2 ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then begin
              (* Rank 0 runs barrier twice, rank 1 only once: the second
                 barrier deadlocks OR the trace check trips. *)
              Coll.barrier comm;
              ignore (Coll.allgather comm Datatype.int [| 1 |])
            end
            else begin
              ignore (Coll.allgather comm Datatype.int [| 1 |]);
              Coll.barrier comm
            end))
   with
  | Errdefs.Usage_error _ -> caught := true
  | Scheduler.Deadlock _ -> caught := true
  | Scheduler.Aborted _ -> caught := true);
  Alcotest.(check bool) "mismatch detected" true !caught


(* Regression: an empty contribution in one gatherv must not leave a stale
   message that corrupts the next gatherv on the same (source, tag). *)
let test_gatherv_empty_then_nonempty () =
  let results =
    Engine.run_values ~ranks:2 (fun comm ->
        let r = Comm.rank comm in
        let data1 = if r = 1 then [||] else [| 10 |] in
        let counts1 = if r = 0 then Some [| 1; 0 |] else None in
        let g1 = Coll.gatherv comm Datatype.int ~root:0 ?recv_counts:counts1 data1 in
        let data2 = if r = 1 then [| 21; 22 |] else [| 20 |] in
        let counts2 = if r = 0 then Some [| 1; 2 |] else None in
        let g2 = Coll.gatherv comm Datatype.int ~root:0 ?recv_counts:counts2 data2 in
        (g1, g2))
  in
  let g1, g2 = results.(0) in
  Alcotest.(check (array int)) "first gather" [| 10 |] g1;
  Alcotest.(check (array int)) "second gather" [| 20; 21; 22 |] g2

(* Exact wire volume of the allgatherv ring: every block travels p-1 hops,
   so total send (= recv) bytes are (p-1) x the gathered size.  Pooled
   buffers and slice hand-off must change ownership, never volume. *)
let test_allgatherv_byte_volume () =
  let p = 4 and elems = 8 in
  let report =
    Engine.run ~model:Net_model.zero_cost ~ranks:p (fun comm ->
        let r = Comm.rank comm in
        let data = Array.init elems (fun i -> (r * 100) + i) in
        ignore (Coll.allgatherv comm Datatype.int ~recv_counts:(Array.make p elems) data))
  in
  let bytes_of op =
    match List.find_opt (fun (o, _, _) -> o = op) report.Engine.profile with
    | Some (_, _, b) -> b
    | None -> 0
  in
  let total = p * elems * Datatype.elem_size Datatype.int in
  Alcotest.(check int) "ring sends (p-1) x total" ((p - 1) * total) (bytes_of "send");
  Alcotest.(check int) "recv volume mirrors send" ((p - 1) * total) (bytes_of "recv");
  Alcotest.(check int) "per-rank contribution recorded" total (bytes_of "allgatherv")

(* --- Algorithm-selection engine (ISSUE 5) --- *)

(* Pin algorithms for the duration of [f], then restore whatever the
   environment configures, so property iterations cannot leak into each
   other or into unrelated tests. *)
let with_overrides spec f =
  Coll_algo.set_overrides spec;
  Fun.protect ~finally:Coll_algo.refresh_from_env f

(* Heavy-sanitizer run that requires every rank to survive. *)
let run_checked ~ranks body =
  let results, _ =
    Engine.run_collect ~model:Net_model.zero_cost ~check_level:Check.Heavy ~ranks body
  in
  Array.map
    (function Some v -> v | None -> Alcotest.fail "rank died in algorithm property")
    results

(* A non-commutative fold: the result encodes the order of operands, so
   any algorithm that reassociates across ranks would change it.  The
   engine must keep non-commutative operators on the order-safe reference
   path regardless of overrides. *)
let nc_op () = Reduce_op.custom ~commutative:false ~name:"chain" (fun a b -> (a * 31) + b)

let nc_len = 3

let nc_data ~rank = Array.init nc_len (fun i -> rank + i + 1)

let nc_expected p =
  Array.init nc_len (fun i ->
      List.fold_left
        (fun acc r -> (acc * 31) + (nc_data ~rank:r).(i))
        (nc_data ~rank:0).(i)
        (List.init (p - 1) (fun r -> r + 1)))

(* Every allreduce algorithm must be element-identical to the sequential
   reference, for power-of-two and ragged communicator sizes and lengths
   including 0 — and a non-commutative operator in the same run must stay
   exact even while the commutative-only algorithm is pinned. *)
let prop_allreduce_algorithms =
  QCheck.Test.make ~name:"allreduce algorithms agree with reference" ~count:30
    gen_p_and_seed (fun (p, seed) ->
      let len = Xoshiro.hash_int ~seed ~stream:91 ~counter:0 ~bound:70 in
      let expected =
        Array.init len (fun i ->
            List.fold_left ( + ) 0
              (List.init p (fun r -> (data_for ~seed ~rank:r ~len).(i))))
      in
      let nc_exp = nc_expected p in
      List.for_all
        (fun algo ->
          let results =
            with_overrides
              [ (Coll_algo.Allreduce, Some algo) ]
              (fun () ->
                run_checked ~ranks:p (fun comm ->
                    let r = Comm.rank comm in
                    let sum =
                      Coll.allreduce comm Datatype.int Reduce_op.int_sum
                        (data_for ~seed ~rank:r ~len)
                    in
                    let chained = Coll.allreduce comm Datatype.int (nc_op ()) (nc_data ~rank:r) in
                    (sum, chained)))
          in
          Array.for_all (fun (sum, chained) -> sum = expected && chained = nc_exp) results)
        [ Coll_algo.Reduce_bcast; Coll_algo.Recursive_doubling; Coll_algo.Rabenseifner ])

let prop_allgather_algorithms =
  QCheck.Test.make ~name:"allgather algorithms agree with reference" ~count:30
    gen_p_and_seed (fun (p, seed) ->
      let len = Xoshiro.hash_int ~seed ~stream:92 ~counter:0 ~bound:9 in
      let expected =
        Array.concat (List.init p (fun r -> data_for ~seed ~rank:r ~len))
      in
      List.for_all
        (fun algo ->
          let results =
            with_overrides
              [ (Coll_algo.Allgather, Some algo) ]
              (fun () ->
                run_checked ~ranks:p (fun comm ->
                    Coll.allgather comm Datatype.int
                      (data_for ~seed ~rank:(Comm.rank comm) ~len)))
          in
          Array.for_all (fun res -> res = expected) results)
        [ Coll_algo.Bruck; Coll_algo.Ring ])

let prop_bcast_algorithms =
  QCheck.Test.make ~name:"bcast algorithms agree with reference" ~count:30 gen_p_and_seed
    (fun (p, seed) ->
      let root = seed mod p in
      let len = Xoshiro.hash_int ~seed ~stream:93 ~counter:0 ~bound:70 in
      let expected = data_for ~seed ~rank:root ~len in
      List.for_all
        (fun algo ->
          let results =
            with_overrides
              [ (Coll_algo.Bcast, Some algo) ]
              (fun () ->
                run_checked ~ranks:p (fun comm ->
                    Coll.bcast comm Datatype.int ~root
                      (if Comm.rank comm = root then Some expected else None)))
          in
          Array.for_all (fun res -> res = expected) results)
        [ Coll_algo.Binomial; Coll_algo.Scatter_allgather ])

let prop_reduce_scatter_algorithms =
  QCheck.Test.make ~name:"reduce_scatter algorithms agree with reference" ~count:30
    gen_p_and_seed (fun (p, seed) ->
      (* A ragged split, with empty blocks when the length is short. *)
      let recv_counts =
        Array.init p (fun r -> Xoshiro.hash_int ~seed ~stream:94 ~counter:r ~bound:5)
      in
      let total = Array.fold_left ( + ) 0 recv_counts in
      let displs =
        let d = Array.make p 0 in
        for r = 1 to p - 1 do
          d.(r) <- d.(r - 1) + recv_counts.(r - 1)
        done;
        d
      in
      let reduced =
        Array.init total (fun i ->
            List.fold_left ( + ) 0
              (List.init p (fun r -> (data_for ~seed ~rank:r ~len:total).(i))))
      in
      let nc_exp = nc_expected p in
      List.for_all
        (fun algo ->
          let results =
            with_overrides
              [ (Coll_algo.Reduce_scatter, Some algo) ]
              (fun () ->
                run_checked ~ranks:p (fun comm ->
                    let r = Comm.rank comm in
                    let mine =
                      Coll.reduce_scatter comm Datatype.int Reduce_op.int_sum ~recv_counts
                        (data_for ~seed ~rank:r ~len:total)
                    in
                    (* Non-commutative operator stays order-exact under any
                       override (uniform blocks so every rank gets one). *)
                    let nc =
                      if p <= nc_len then
                        Coll.reduce_scatter comm Datatype.int (nc_op ())
                          ~recv_counts:(Array.make p 1)
                          (Array.sub (nc_data ~rank:r) 0 p)
                      else [||]
                    in
                    (mine, nc)))
          in
          Array.for_all
            (fun r ->
              let mine, nc = results.(r) in
              mine = Array.sub reduced displs.(r) recv_counts.(r)
              && (p > nc_len || nc = [| nc_exp.(r) |]))
            (Array.init p Fun.id))
        [ Coll_algo.Reduce_scatterv; Coll_algo.Pairwise ])

(* MPISIM_COLL_ALGO forces the named algorithms even where the automatic
   choice would differ (tiny messages would pick recursive doubling and
   Bruck), and the choice is observable in the stats counters. *)
let test_env_override () =
  Unix.putenv "MPISIM_COLL_ALGO" "allreduce=rabenseifner,allgather=ring";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MPISIM_COLL_ALGO" "";
      Coll_algo.refresh_from_env ())
    (fun () ->
      Coll_algo.refresh_from_env ();
      let _, report =
        Engine.run_collect ~model:Net_model.omnipath ~ranks:4 (fun comm ->
            ignore
              (Coll.allreduce comm Datatype.int Reduce_op.int_sum (Array.init 8 Fun.id));
            ignore (Coll.allgather comm Datatype.int [| Comm.rank comm |]))
      in
      let count name = Stats.count (Stats.counter report.Engine.stats name) in
      Alcotest.(check int) "rabenseifner forced on all ranks" 4
        (count "coll.algo.allreduce.rabenseifner");
      Alcotest.(check int) "auto choice bypassed" 0
        (count "coll.algo.allreduce.recursive_doubling");
      Alcotest.(check int) "ring forced on all ranks" 4 (count "coll.algo.allgather.ring");
      Alcotest.(check int) "bruck bypassed" 0 (count "coll.algo.allgather.bruck"))

(* The selected algorithm is visible both as a counter and as a trace
   span nested inside the collective's span. *)
let test_algo_observability () =
  let _, report =
    Engine.run_collect ~model:Net_model.omnipath ~trace_capacity:Trace.default_capacity
      ~ranks:4 (fun comm ->
        ignore (Coll.allreduce comm Datatype.int Reduce_op.int_sum (Array.init 16 Fun.id)))
  in
  Alcotest.(check int) "counter counts one call per rank" 4
    (Stats.count
       (Stats.counter report.Engine.stats "coll.algo.allreduce.recursive_doubling"));
  let span_seen = ref false in
  Trace.iter_events report.Engine.trace 0 (fun e ->
      if e.Trace.cat = "coll" && e.Trace.name = "allreduce.recursive_doubling" then
        span_seen := true);
  Alcotest.(check bool) "trace span carries algorithm name" true !span_seen

let tests =
  [
    qtest prop_allgatherv;
    qtest prop_gatherv;
    qtest prop_scatterv_inverts_gatherv;
    qtest prop_bcast;
    qtest prop_reduce_sum;
    qtest prop_allreduce_min_max;
    qtest prop_reduce_noncommutative_order;
    qtest prop_scan;
    qtest prop_exscan;
    qtest prop_alltoall;
    qtest prop_alltoallv;
    qtest prop_alltoallw_matches_alltoallv;
    Alcotest.test_case "barrier synchronizes clocks" `Quick test_barrier_synchronizes;
    Alcotest.test_case "neighbor alltoallv on ring" `Quick test_neighbor_alltoallv_ring;
    Alcotest.test_case "neighbor requires topology" `Quick test_neighbor_requires_topology;
    Alcotest.test_case "collective order mismatch" `Quick
      test_collective_trace_mismatch_detected;
    Alcotest.test_case "gatherv empty-then-nonempty" `Quick
      test_gatherv_empty_then_nonempty;
    Alcotest.test_case "allgatherv byte volume" `Quick test_allgatherv_byte_volume;
    qtest prop_allreduce_algorithms;
    qtest prop_allgather_algorithms;
    qtest prop_bcast_algorithms;
    qtest prop_reduce_scatter_algorithms;
    Alcotest.test_case "MPISIM_COLL_ALGO overrides selection" `Quick test_env_override;
    Alcotest.test_case "algorithm choice is observable" `Quick test_algo_observability;
  ]

let () = Alcotest.run "coll" [ ("coll", tests) ]
