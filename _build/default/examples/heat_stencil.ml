(* 2-D heat diffusion with a 5-point stencil on a cartesian process grid —
   the classic halo-exchange workload (the "regular scientific computing"
   pattern that MPL's layouts target, §II/§III-D2).

   The global grid is decomposed into 2-D blocks over a cartesian
   topology.  Each iteration exchanges one-cell halos with the four
   neighbors — rows travel contiguously; columns are strided and go
   through an MPL-style {!Mpisim.Layout} datatype — then applies the
   stencil.  A reproducible-reduce of the total heat checks conservation.

     dune exec examples/heat_stencil.exe -- [ranks] [iterations] *)

open Mpisim

let () =
  let ranks = try int_of_string Sys.argv.(1) with _ -> 16 in
  let iterations = try int_of_string Sys.argv.(2) with _ -> 50 in
  let local_n = 32 in
  (* interior cells per dimension per rank *)
  let results, report =
    Engine.run_collect ~ranks (fun mpi ->
        let dims = Cart.dims_create ~nnodes:ranks ~ndims:2 in
        let cart = Cart.create mpi ~dims ~periods:[| false; false |] in
        let comm = Cart.comm cart in
        let coords = Cart.my_coords cart in
        (* Grid with a one-cell ghost border. *)
        let w = local_n + 2 in
        let grid = Array.make (w * w) 0. in
        let at i j = (i * w) + j in
        (* Initial condition: a hot square on the rank owning the global
           center. *)
        if coords.(0) = dims.(0) / 2 && coords.(1) = dims.(1) / 2 then
          for i = w / 2 - 2 to (w / 2) + 2 do
            for j = w / 2 - 2 to (w / 2) + 2 do
              grid.(at i j) <- 100.
            done
          done;
        let initial_heat =
          Kamping_plugins.Repro_reduce.sum
            (Kamping.Communicator.of_mpi comm)
            (Array.copy grid)
        in
        (* Column halos are strided: an MPL-style layout datatype selects
           them directly out of the flat grid. *)
        let col_layout j = Layout.offset ((1 * w) + j) (Layout.vector ~count:local_n ~blocklen:1 ~stride:w) in
        let next = Array.copy grid in
        for _ = 1 to iterations do
          (* Rows (dimension 0): contiguous slices. *)
          let row i = Array.sub grid (at i 1) local_n in
          let from_up, from_down =
            Cart.halo_exchange cart Datatype.float ~dim:0 ~to_prev:(row 1)
              ~to_next:(row local_n)
          in
          (match from_up with
          | Some h -> Array.blit h 0 grid (at 0 1) local_n
          | None -> ());
          (match from_down with
          | Some h -> Array.blit h 0 grid (at (local_n + 1) 1) local_n
          | None -> ());
          (* Columns (dimension 1): strided, via layouts. *)
          let col j = Layout.extract (col_layout j) grid in
          let from_left, from_right =
            Cart.halo_exchange cart Datatype.float ~dim:1 ~to_prev:(col 1)
              ~to_next:(col local_n)
          in
          (match from_left with
          | Some h -> Layout.scatter_into (col_layout 0) ~packed:h grid
          | None -> ());
          (match from_right with
          | Some h -> Layout.scatter_into (col_layout (local_n + 1)) ~packed:h grid
          | None -> ());
          (* 5-point stencil on the interior. *)
          for i = 1 to local_n do
            for j = 1 to local_n do
              next.(at i j) <-
                grid.(at i j)
                +. 0.1
                   *. (grid.(at (i - 1) j) +. grid.(at (i + 1) j) +. grid.(at i (j - 1))
                     +. grid.(at i (j + 1))
                     -. (4. *. grid.(at i j)))
            done
          done;
          Array.blit next 0 grid 0 (w * w)
        done;
        (* Zero the ghost cells before summing (they replicate neighbor
           interiors). *)
        for i = 0 to w - 1 do
          grid.(at i 0) <- 0.;
          grid.(at i (w - 1)) <- 0.;
          grid.(at 0 i) <- 0.;
          grid.(at (w - 1) i) <- 0.
        done;
        let final_heat =
          Kamping_plugins.Repro_reduce.sum (Kamping.Communicator.of_mpi comm) grid
        in
        let local_max = Array.fold_left Float.max 0. grid in
        let global_max =
          Kamping.Collectives.allreduce_single
            (Kamping.Communicator.of_mpi comm)
            Datatype.float Reduce_op.float_max local_max
        in
        (initial_heat, final_heat, global_max))
  in
  (match results.(0) with
  | Some (h0, h1, mx) ->
      Printf.printf "heat: initial=%.3f final=%.3f (loss at open boundary) peak=%.3f\n" h0
        h1 mx;
      assert (h1 <= h0 +. 1e-6)
  | None -> ());
  Printf.printf "grid: %d ranks, %d iterations; simulated time %s\n" ranks iterations
    (Sim_time.to_string report.Engine.max_time)
