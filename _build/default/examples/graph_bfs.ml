(* Distributed BFS over a generated graph (paper Fig. 9/10), with the
   frontier-exchange strategy selectable from the command line.

     dune exec examples/graph_bfs.exe -- [ranks] [family] [exchanger]

   family:    gnm | rgg | rhg
   exchanger: mpi | mpi_neighbor | mpi_neighbor_rebuild | kamping |
              kamping_sparse | kamping_grid *)

open Mpisim

let parse_family = function
  | "gnm" -> `Gnm
  | "rgg" -> `Rgg
  | "rhg" -> `Rhg
  | s -> failwith ("unknown graph family: " ^ s)

let parse_exchanger s =
  match
    List.find_opt (fun e -> Bfs.Exchangers.exchanger_name e = s) Bfs.Exchangers.all
  with
  | Some e -> e
  | None -> failwith ("unknown exchanger: " ^ s)

let () =
  let ranks = try int_of_string Sys.argv.(1) with _ -> 16 in
  let family = try parse_family Sys.argv.(2) with _ -> `Rgg in
  let exchanger = try parse_exchanger Sys.argv.(3) with _ -> Bfs.Exchangers.Kamping in
  let n_per_rank = 512 in
  let results, report =
    Engine.run_collect ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let g =
          match family with
          | `Gnm ->
              Graphgen.Gnm.generate comm ~n_per_rank ~m_per_rank:(n_per_rank * 4) ~seed:1
          | `Rgg -> Graphgen.Rgg2d.generate comm ~n_per_rank ~seed:1 ()
          | `Rhg -> Graphgen.Rhg.generate comm ~n_per_rank ~seed:1 ()
        in
        let dist = Bfs.Exchangers.bfs mpi g ~source:0 ~exchanger in
        let reached = Array.fold_left (fun a d -> if d < max_int then a + 1 else a) 0 dist in
        let eccentricity =
          Array.fold_left (fun a d -> if d < max_int && d > a then d else a) 0 dist
        in
        let stats = Graphgen.Distgraph.global_stats comm g in
        (reached, eccentricity, stats))
  in
  let reached = ref 0 and ecc = ref 0 in
  Array.iter
    (function
      | Some (r, e, _) ->
          reached := !reached + r;
          if e > !ecc then ecc := e
      | None -> ())
    results;
  let stats = match results.(0) with Some (_, _, s) -> s | None -> assert false in
  Printf.printf "graph: %d vertices, %d edge endpoints, cut fraction %.2f, max degree %d\n"
    stats.Graphgen.Distgraph.vertices stats.Graphgen.Distgraph.edge_endpoints
    stats.Graphgen.Distgraph.cut_fraction stats.Graphgen.Distgraph.max_degree;
  Printf.printf "BFS from vertex 0 reached %d vertices; max level %d\n" !reached !ecc;
  Printf.printf "exchanger: %s, simulated time: %s\n"
    (Bfs.Exchangers.exchanger_name exchanger)
    (Sim_time.to_string report.Engine.max_time)
