(* Explicit serialization (paper §III-D3, Fig. 5 and Fig. 11): sending a
   string-keyed dictionary between ranks, and broadcasting a structured
   model the way the RAxML-NG integration does.

     dune exec examples/serialization.exe *)

open Mpisim

let dict_codec = Serial.Codec.hashtbl Serial.Codec.string Serial.Codec.string

let () =
  let report =
    Engine.run ~ranks:4 (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let r = Kamping.Communicator.rank comm in

        (* Fig. 5: send an unordered_map<string,string> with
           as_serialized / as_deserializable. *)
        if r = 0 then begin
          let dict : (string, string) Hashtbl.t = Hashtbl.create 4 in
          Hashtbl.replace dict "library" "kamping-ocaml";
          Hashtbl.replace dict "venue" "SPAA'24";
          Hashtbl.replace dict "overhead" "(near) zero";
          Kamping.Serialized.send comm dict_codec ~dest:1 dict
        end
        else if r = 1 then begin
          let dict = Kamping.Serialized.recv comm dict_codec ~source:0 () in
          Printf.printf "rank 1 received %d entries: overhead = %s\n" (Hashtbl.length dict)
            (Hashtbl.find dict "overhead")
        end;

        (* Fig. 11: broadcasting a structured model object. *)
        let model =
          if r = 0 then Some (Phylo.Model.initial ~n_branches:8 ~n_partitions:2) else None
        in
        let m = Kamping.Serialized.bcast comm Phylo.Model.codec ~root:0 ?value:model () in
        if r = 3 then
          Printf.printf "rank 3 received model generation %d with %d branch lengths\n"
            m.Phylo.Model.generation
            (Array.length m.Phylo.Model.branch_lengths))
  in
  Printf.printf "simulated time: %s\n" (Sim_time.to_string report.Engine.max_time)
