examples/fault_tolerance.ml: Array Comm Datatype Engine Fault Kamping Kamping_plugins List Mpisim Printf Reduce_op Sim_time String Sys
