examples/sorting.ml: Array Comm Datatype Engine Kamping Kamping_plugins Mpisim Printf Sim_time String Sys Xoshiro
