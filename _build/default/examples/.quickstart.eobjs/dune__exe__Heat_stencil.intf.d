examples/heat_stencil.mli:
