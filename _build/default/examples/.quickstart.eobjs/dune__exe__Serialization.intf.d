examples/serialization.mli:
