examples/wordcount.mli:
