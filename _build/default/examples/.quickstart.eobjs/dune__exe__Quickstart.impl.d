examples/quickstart.ml: Array Datatype Engine Kamping Mpisim Printf Sim_time String
