examples/serialization.ml: Array Engine Hashtbl Kamping Mpisim Phylo Printf Serial Sim_time
