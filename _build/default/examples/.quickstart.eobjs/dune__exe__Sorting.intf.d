examples/sorting.mli:
