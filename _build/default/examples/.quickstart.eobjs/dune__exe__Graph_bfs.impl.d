examples/graph_bfs.ml: Array Bfs Engine Graphgen Kamping List Mpisim Printf Sim_time Sys
