examples/wordcount.ml: Array Datatype Engine Fun Hashtbl Kamping Kamping_plugins List Mpisim Printf Serial Sim_time Sys Xoshiro
