examples/graph_bfs.mli:
