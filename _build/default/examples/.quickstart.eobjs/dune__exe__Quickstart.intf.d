examples/quickstart.mli:
