examples/heat_stencil.ml: Array Cart Datatype Engine Float Kamping Kamping_plugins Layout Mpisim Printf Reduce_op Sim_time Sys
