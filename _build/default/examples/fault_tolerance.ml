(* User-level failure mitigation (paper §V-B, Fig. 12): a long-running
   iterative computation survives the failure of two ranks by revoking the
   communicator, shrinking to the survivors, and continuing.

   One subtlety the Fig. 12 snippet leaves implicit: survivors may detect
   the failure in *different* iterations (a rank that lags behind fails
   its iteration-3 collective while faster ranks fail iteration 4), so
   after shrinking they must agree on where to resume — here with an
   allreduce(min) over the per-rank iteration counters.  Without this
   resynchronization the survivors would run different numbers of
   collectives and deadlock.

     dune exec examples/fault_tolerance.exe -- [ranks] *)

open Mpisim

let iterations = 10

let () =
  let ranks = try int_of_string Sys.argv.(1) with _ -> 8 in
  let victim1 = 2 and victim2 = 5 in
  let results, report =
    Engine.run_collect ~ranks (fun mpi ->
        let comm = ref (Kamping.Communicator.of_mpi mpi) in
        let me = Comm.rank mpi in
        let completed = ref 0 in
        let iter = ref 1 in
        let recoveries = ref 0 in
        while !iter <= iterations do
          (* Two ranks fail when they reach iteration 4. *)
          if !iter = 4 && (me = victim1 || me = victim2) then Fault.die mpi;
          let step () =
            Kamping.Collectives.allreduce_single !comm Datatype.int Reduce_op.int_sum 1
          in
          match Kamping_plugins.Ulfm.detect step with
          | (_ : int) ->
              incr completed;
              incr iter
          | exception Kamping_plugins.Ulfm.Failure_detected _ ->
              incr recoveries;
              if not (Kamping_plugins.Ulfm.is_revoked !comm) then
                Kamping_plugins.Ulfm.revoke !comm;
              comm := Kamping_plugins.Ulfm.shrink !comm;
              (* Resynchronize: all survivors resume from the earliest
                 iteration any of them still has to (re)do. *)
              iter :=
                Kamping.Collectives.allreduce_single !comm Datatype.int Reduce_op.int_min
                  !iter
        done;
        (!completed, !recoveries, Kamping.Communicator.size !comm))
  in
  Array.iteri
    (fun r outcome ->
      match outcome with
      | None -> Printf.printf "rank %d: FAILED (injected)\n" r
      | Some (completed, recoveries, final_size) ->
          Printf.printf
            "rank %d: completed %d iterations (%d recoveries), final communicator size %d\n"
            r completed recoveries final_size)
    results;
  Printf.printf "killed ranks: [%s]; simulated time %s\n"
    (String.concat "; " (List.map string_of_int report.Engine.killed))
    (Sim_time.to_string report.Engine.max_time)
