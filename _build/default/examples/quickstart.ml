(* Quickstart: the vector-allgather example of the paper's Figures 1-3.

   Each rank holds a vector of different length; we want the concatenation
   everywhere.  The three versions show the gradual-migration story
   (Fig. 3): start from explicit MPI-style code, let the library infer
   more and more, and end with the one-liner.

     dune exec examples/quickstart.exe *)

open Mpisim

let () =
  let ranks = 4 in
  let report =
    Engine.run ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let r = Kamping.Communicator.rank comm in
        let v = Array.init (r + 1) (fun i -> (10 * r) + i) in

        (* Version 1: counts gathered and displacements computed by hand,
           result placed in an explicitly managed buffer. *)
        let rc = Kamping.Collectives.allgather comm Datatype.int [| Array.length v |] in
        let rd = Array.make ranks 0 in
        for i = 1 to ranks - 1 do
          rd.(i) <- rd.(i - 1) + rc.(i - 1)
        done;
        let v1 =
          Kamping.Collectives.allgatherv comm Datatype.int ~recv_counts:rc ~recv_displs:rd
            v
        in

        (* Version 2: displacements are computed implicitly. *)
        let v2 = Kamping.Collectives.allgatherv comm Datatype.int ~recv_counts:rc v in

        (* Version 3: counts are automatically exchanged and the result is
           returned by value — the one-liner. *)
        let v3 = Kamping.Collectives.allgatherv comm Datatype.int v in

        assert (v1 = v3 && v2 = v3);

        (* The _full variant also returns the computed out-parameters
           (recv_counts_out / recv_displs_out of §III-B). *)
        let result = Kamping.Collectives.allgatherv_full comm Datatype.int v in
        let counts = Kamping.Collectives.extract_recv_counts result in

        (* The same call through the paper's named-parameter objects
           (Fig. 1): factories, any order, out-parameters opt-in. *)
        let named =
          Kamping.Named.(
            allgatherv comm Datatype.int
              [ send_buf v; recv_counts_out (); recv_displs_out () ])
        in
        assert (Kamping.Named.extract_recv_buf named = v3);
        assert (Kamping.Named.extract_recv_counts named = counts);

        if r = 0 then begin
          Printf.printf "global vector: [%s]\n"
            (String.concat "; " (Array.to_list (Array.map string_of_int v3)));
          Printf.printf "recv counts:   [%s]\n"
            (String.concat "; " (Array.to_list (Array.map string_of_int counts)))
        end)
  in
  Printf.printf "simulated time: %s on %d ranks\n"
    (Sim_time.to_string report.Engine.max_time)
    ranks
