(* Distributed sample sort (paper Fig. 7) through the sorter plugin.

     dune exec examples/sorting.exe -- [ranks] [elements-per-rank] *)

open Mpisim

let () =
  let ranks = try int_of_string Sys.argv.(1) with _ -> 8 in
  let per_rank = try int_of_string Sys.argv.(2) with _ -> 100_000 in
  let results, report =
    Engine.run_collect ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        let rng = Xoshiro.create ~seed:2024 ~stream:(Comm.rank mpi) in
        let data = Array.init per_rank (fun _ -> Xoshiro.next_int rng ~bound:max_int) in
        let sorted = Kamping_plugins.Sorter.sort comm Datatype.int data in
        let ok = Kamping_plugins.Sorter.is_globally_sorted comm Datatype.int sorted in
        (ok, Array.length sorted))
  in
  let total = ref 0 in
  Array.iter
    (function
      | Some (ok, len) ->
          assert ok;
          total := !total + len
      | None -> ())
    results;
  Printf.printf "sorted %d elements on %d ranks: globally sorted = true\n" !total ranks;
  Printf.printf "simulated time: %s\n" (Sim_time.to_string report.Engine.max_time);
  Printf.printf "final local sizes: [%s]\n"
    (String.concat "; "
       (Array.to_list
          (Array.map (function Some (_, l) -> string_of_int l | None -> "-") results)))
