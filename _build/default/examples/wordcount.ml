(* Distributed word count through the Dist_array building blocks — the
   MapReduce/Thrill-inspired bulk-parallel style the paper sketches as
   future work (§VI), built directly on the binding layer (no walled
   garden: the communicator stays accessible throughout).

     dune exec examples/wordcount.exe -- [ranks] *)

open Mpisim

let vocabulary = [| "ocaml"; "mpi"; "kamping"; "zero"; "overhead"; "bindings" |]

let () =
  let ranks = try int_of_string Sys.argv.(1) with _ -> 6 in
  let words_per_rank = 10_000 in
  let n = ranks * words_per_rank in
  let results, report =
    Engine.run_collect ~ranks (fun mpi ->
        let comm = Kamping.Communicator.of_mpi mpi in
        (* "Load" the corpus: word ids, skewed towards low ids. *)
        let corpus =
          Kamping_plugins.Dist_array.init comm Datatype.int ~n (fun i ->
              let u = Xoshiro.hash_float ~seed:7 ~stream:1 ~counter:i in
              let k = Array.length vocabulary in
              min (k - 1) (int_of_float (u *. u *. float_of_int k)))
        in
        (* Shuffle + count: the classic reduce-by-key. *)
        let counts =
          Kamping_plugins.Dist_array.reduce_by_key corpus ~key_dt:Datatype.int
            ~value_dt:Datatype.int ~key_of:Fun.id
            ~value_of:(fun _ -> 1)
            ~combine:( + )
        in
        (* Bring the (tiny) result table together on rank 0. *)
        let flat = Array.concat [ Array.map fst counts; Array.map snd counts ] in
        ignore flat;
        Kamping.Serialized.gather comm
          Serial.Codec.(list (pair int int))
          ~root:0
          (Array.to_list counts))
  in
  (match results.(0) with
  | Some per_rank_tables ->
      let totals = Hashtbl.create 8 in
      List.iter
        (List.iter (fun (k, v) ->
             Hashtbl.replace totals k (v + (try Hashtbl.find totals k with Not_found -> 0))))
        per_rank_tables;
      Printf.printf "word counts over %d words on %d ranks:\n" n ranks;
      Array.iteri
        (fun k w ->
          Printf.printf "  %-10s %d\n" w (try Hashtbl.find totals k with Not_found -> 0))
        vocabulary;
      let sum = Hashtbl.fold (fun _ v acc -> acc + v) totals 0 in
      assert (sum = n)
  | None -> ());
  Printf.printf "simulated time: %s\n" (Sim_time.to_string report.Engine.max_time)
