(* The high-level communicator.

   Thin, zero-cost wrapper over the runtime's native communicator handle.
   Interoperability with native handles ([of_mpi]/[mpi]) is a design goal:
   existing code can be migrated gradually (paper §III-F). *)

type t = { mpi : Mpisim.Comm.t }

let of_mpi mpi = { mpi }

let mpi t = t.mpi

let rank t = Mpisim.Comm.rank t.mpi

let size t = Mpisim.Comm.size t.mpi

let is_root ?(root = 0) t = rank t = root

let runtime t = Mpisim.Comm.runtime t.mpi

let barrier t = Mpisim.Coll.barrier t.mpi

let dup t = of_mpi (Mpisim.Comm_ops.dup t.mpi)

let split ?key t ~color = Option.map of_mpi (Mpisim.Comm_ops.split t.mpi ~color ?key ())

(* ULFM surface (backing for the fault-tolerance plugin, §V-B). *)
let is_revoked t = Mpisim.Comm.is_revoked t.mpi

let revoke t = Mpisim.Comm.revoke t.mpi

let shrink t = of_mpi (Mpisim.Comm_ops.shrink t.mpi)

let agree t v = Mpisim.Comm_ops.agree t.mpi v

let set_errhandler t h = Mpisim.Comm.set_errhandler t.mpi h

(* Iterate over all other ranks, a common idiom in irregular exchanges. *)
let iter_other_ranks t f =
  let me = rank t in
  for r = 0 to size t - 1 do
    if r <> me then f r
  done
