(** Explicit serialization for communication (paper §III-D3, Fig. 5/11).

    Heap-structured values (strings, maps, lists) have no fixed-size
    datatype; these operations encode them through a {!Serial.Codec.t}
    into a framed archive and ship the bytes.  Usage is explicit — never
    implicit as in Boost.MPI — because serialization has real allocation
    and CPU costs that zero-overhead bindings must not hide. *)

open Mpisim

val send : Communicator.t -> 'a Serial.Codec.t -> dest:int -> ?tag:int -> 'a -> unit

val recv : Communicator.t -> 'a Serial.Codec.t -> ?source:int -> ?tag:int -> unit -> 'a

val recv_with_status :
  Communicator.t -> 'a Serial.Codec.t -> ?source:int -> ?tag:int -> unit -> 'a * Status.t

(** Binomial-tree broadcast of a serialized value; the root passes
    [~value].  This is the one-liner that replaces RAxML-NG's hand-rolled
    size-then-payload broadcast layer (§IV-C, Fig. 11). *)
val bcast : Communicator.t -> 'a Serial.Codec.t -> root:int -> ?value:'a -> unit -> 'a

(** Gather one serialized value per rank at the root (rank order);
    non-roots receive []. *)
val gather : Communicator.t -> 'a Serial.Codec.t -> root:int -> 'a -> 'a list

(** Sparse exchange of heterogeneous serialized messages: input and output
    are (rank, value) pairs. *)
val sparse_exchange :
  Communicator.t -> 'a Serial.Codec.t -> (int * 'a) list -> (int * 'a) list
