(* Distributed measurement timer (the measurements facility of the
   reference library; supports the paper's algorithm-engineering workflow
   of §III-C: iterative refinement and analysis through experimentation).

   Each rank accumulates named durations on the runtime's virtual clock
   ([start]/[stop] may nest and repeat); [aggregate] is a collective that
   reduces every key across ranks to (min, mean, max) — the numbers a
   scaling study reports. *)

open Mpisim

type entry = { mutable total : float; mutable count : int; mutable started_at : float option }

type t = { comm : Communicator.t; entries : (string, entry) Hashtbl.t; mutable order : string list }

let create (comm : Communicator.t) : t =
  { comm; entries = Hashtbl.create 16; order = [] }

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e = { total = 0.; count = 0; started_at = None } in
      Hashtbl.replace t.entries key e;
      t.order <- key :: t.order;
      e

let now t =
  let mpi = Communicator.mpi t.comm in
  Runtime.clock (Comm.runtime mpi) (Comm.world_rank mpi)

(* Begin timing [key] on this rank.  Raises on double start. *)
let start t key =
  let e = entry t key in
  match e.started_at with
  | Some _ -> Errdefs.usage_error "Timer.start: %S already running" key
  | None -> e.started_at <- Some (now t)

(* Stop timing [key]; accumulates the elapsed virtual time. *)
let stop t key =
  let e = entry t key in
  match e.started_at with
  | None -> Errdefs.usage_error "Timer.stop: %S is not running" key
  | Some t0 ->
      e.started_at <- None;
      e.total <- e.total +. (now t -. t0);
      e.count <- e.count + 1

(* Time a closure under [key]. *)
let time t key f =
  start t key;
  Fun.protect ~finally:(fun () -> stop t key) f

(* Local view: (key, total seconds, start/stop count), in first-use
   order. *)
let local t : (string * float * int) list =
  List.rev_map
    (fun key ->
      let e = Hashtbl.find t.entries key in
      (key, e.total, e.count))
    t.order

type aggregate = { key : string; min : float; mean : float; max : float; count : int }

(* Collective: reduce every key across ranks.  All ranks must have used
   the same keys in the same order (checked at assertion level 2 through
   the collective trace). *)
let aggregate (t : t) : aggregate list =
  let keys = List.rev t.order in
  List.map
    (fun key ->
      let e = Hashtbl.find t.entries key in
      if e.started_at <> None then Errdefs.usage_error "Timer.aggregate: %S still running" key;
      let stats =
        Collectives.allreduce t.comm Datatype.float Reduce_op.float_min [| e.total |]
      in
      let mx =
        Collectives.allreduce t.comm Datatype.float Reduce_op.float_max [| e.total |]
      in
      let sum =
        Collectives.allreduce t.comm Datatype.float Reduce_op.float_sum [| e.total |]
      in
      {
        key;
        min = stats.(0);
        mean = sum.(0) /. float_of_int (Communicator.size t.comm);
        max = mx.(0);
        count = e.count;
      })
    keys

let pp_aggregates ppf (aggs : aggregate list) =
  List.iter
    (fun a ->
      Format.fprintf ppf "%-24s min=%s mean=%s max=%s (%d timings)@." a.key
        (Sim_time.to_string a.min) (Sim_time.to_string a.mean) (Sim_time.to_string a.max)
        a.count)
    aggs
