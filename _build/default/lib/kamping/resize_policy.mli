(** Resize policies for user-supplied output containers (paper §III-C). *)

type t =
  | Resize_to_fit  (** container becomes exactly the result size *)
  | Grow_only  (** grows if too small, never shrinks *)
  | No_resize
      (** container used as-is; usage error if it cannot hold the result.
          The default: highly tuned code wants no hidden allocation. *)

val default : t

val to_string : t -> string
