(* Request pools (paper §III-E).

   The unbounded pool collects non-blocking results and completes them all
   with [wait_all].  A pool created with [~slots:n] keeps at most [n]
   requests in flight: adding to a full pool first waits for the oldest —
   the fixed-slot variant the paper describes as work-in-progress. *)

type t = { mutable pending : unit Nb.t list; (* newest first *) slots : int option }

let create ?slots () =
  (match slots with
  | Some s when s <= 0 -> invalid_arg "Request_pool.create: slots must be positive"
  | Some _ | None -> ());
  { pending = []; slots }

let pending_count t = List.length t.pending

(* Complete and drop the oldest pending request. *)
let wait_oldest t =
  match List.rev t.pending with
  | [] -> ()
  | oldest :: rest ->
      Nb.wait oldest;
      t.pending <- List.rev rest

let add t (nb : 'a Nb.t) =
  (match t.slots with
  | Some s when pending_count t >= s -> wait_oldest t
  | Some _ | None -> ());
  t.pending <- Nb.forget nb :: t.pending

let wait_all t =
  List.iter Nb.wait (List.rev t.pending);
  t.pending <- []

(* Drop every request that has already completed; returns how many were
   retired. *)
let drain_completed t =
  let completed, still = List.partition Nb.is_complete t.pending in
  List.iter Nb.wait completed;
  t.pending <- still;
  List.length completed
