(* Growable container used for output parameters.

   OCaml arrays are fixed-size, so resize policies need a vector type: a
   [Vec.t] is an array plus a logical length.  Collectives write results
   into vecs according to a {!Resize_policy.t}; see [write_array]. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let of_array a = { data = Array.copy a; len = Array.length a }

(* Takes ownership of [a]: no copy.  The caller must not use [a] again —
   the analogue of moving a container into a call (§III-B). *)
let of_array_move a = { data = a; len = Array.length a }

let length t = t.len

let capacity t = Array.length t.data

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v

let to_array t = Array.sub t.data 0 t.len

(* The underlying storage (may be longer than [length]). *)
let unsafe_data t = t.data

let clear t = t.len <- 0

let push t v =
  if t.len = Array.length t.data then begin
    let cap = if t.len = 0 then 8 else t.len * 2 in
    let nd = Array.make cap v in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(* Write [src] into [t] under [policy]; raises [Usage_error] if [No_resize]
   and [t] cannot hold it (paper §III-C). *)
let write_array (policy : Resize_policy.t) t (src : 'a array) =
  let n = Array.length src in
  match policy with
  | Resize_policy.Resize_to_fit ->
      t.data <- Array.copy src;
      t.len <- n
  | Resize_policy.Grow_only ->
      if Array.length t.data < n then t.data <- Array.copy src
      else Array.blit src 0 t.data 0 n;
      if t.len < n then t.len <- n
  | Resize_policy.No_resize ->
      if t.len < n then
        Mpisim.Errdefs.usage_error
          "output container too small under no_resize: need %d elements, have %d" n t.len;
      Array.blit src 0 t.data 0 n
