(** Request pools (paper §III-E).

    The unbounded pool collects non-blocking results and completes them
    with {!wait_all}.  A pool created with [~slots:n] keeps at most [n]
    requests in flight: adding to a full pool first waits for the oldest
    — the fixed-slot variant the paper describes as in progress. *)

type t

val create : ?slots:int -> unit -> t

val pending_count : t -> int

(** Add a result to the pool (its payload is discarded).  With bounded
    slots this may block on the oldest pending request. *)
val add : t -> 'a Nb.t -> unit

(** Complete and drop the oldest pending request (no-op when empty). *)
val wait_oldest : t -> unit

val wait_all : t -> unit

(** Retire every already-completed request; returns how many. *)
val drain_completed : t -> int
