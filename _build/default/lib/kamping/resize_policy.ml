(* Resize policies for user-supplied output containers (paper §III-C).

   They control what happens when a collective needs to write [n] elements
   into a container the caller provided:

   - [Resize_to_fit]: the container is resized to exactly [n];
   - [Grow_only]: the container grows if it is too small, but is never
     shrunk;
   - [No_resize]: the container is used as-is; it is a usage error if it
     cannot hold the result.  This is the default, because highly tuned
     code wants no hidden allocation. *)

type t = Resize_to_fit | Grow_only | No_resize

let default = No_resize

let to_string = function
  | Resize_to_fit -> "resize_to_fit"
  | Grow_only -> "grow_only"
  | No_resize -> "no_resize"
