(** k-dimensional grid all-to-all — the higher-dimensional generalization
    of the 2-D indirect routing that paper §VI lists as work in progress.

    Messages travel k hops through a d_1 x ... x d_k grid (one coordinate
    corrected per hop), each hop an alltoallv on a subcommunicator of size
    d_i: O(k * p^(1/k)) startups per rank instead of O(p), at the price of
    per-element destination headers and k-fold payload forwarding.  All
    traffic sharing a next hop is aggregated into one message.

    k = 2 matches {!Grid_alltoall}; k = 1 degenerates to a direct dense
    exchange. *)

open Mpisim

type t

(** Exact factorization of [p] into [k] near-equal extents (extents of 1
    possible when p lacks factors). *)
val factorize : k:int -> int -> int array

(** Collective: builds one subcommunicator per dimension (default k=3). *)
val create : ?k:int -> Kamping.Communicator.t -> t

val size : t -> int

val dims : t -> int array

(** Same contract as {!Grid_alltoall.alltoallv}.  Collective. *)
val alltoallv : t -> 'a Datatype.t -> send_counts:int array -> 'a array -> 'a array
