lib/kamping/plugins/sorter.mli: Datatype Kamping Mpisim
