lib/kamping/plugins/repro_reduce.ml: Array Comm Datatype Hashtbl Kamping List Mpisim Reduce_op Runtime Serial
