lib/kamping/plugins/dist_array.mli: Datatype Kamping Mpisim Reduce_op
