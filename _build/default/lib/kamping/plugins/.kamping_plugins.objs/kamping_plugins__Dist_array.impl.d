lib/kamping/plugins/dist_array.ml: Array Datatype Errdefs Hashtbl Kamping List Mpisim Reduce_op Sorter Stdlib
