lib/kamping/plugins/grid_alltoall.mli: Datatype Kamping Mpisim
