lib/kamping/plugins/grid_kd.ml: Array Comm Datatype Errdefs Kamping List Mpisim Runtime
