lib/kamping/plugins/sparse_alltoall.ml: Array Coll Comm Datatype Hashtbl Kamping List Mpisim P2p Request Runtime Scheduler Status
