lib/kamping/plugins/sorter.ml: Array Datatype Kamping Mpisim Reduce_op Stdlib Xoshiro
