lib/kamping/plugins/ulfm.ml: Errdefs Kamping Mpisim
