lib/kamping/plugins/grid_alltoall.ml: Array Comm Datatype Errdefs Kamping Mpisim Runtime
