lib/kamping/plugins/sparse_alltoall.mli: Datatype Hashtbl Kamping Mpisim
