lib/kamping/plugins/aggregator.ml: Array Datatype Errdefs Hashtbl Kamping List Mpisim Sparse_alltoall
