lib/kamping/plugins/grid_kd.mli: Datatype Kamping Mpisim
