lib/kamping/plugins/ulfm.mli: Kamping
