lib/kamping/plugins/repro_reduce.mli: Kamping
