lib/kamping/plugins/aggregator.mli: Datatype Kamping Mpisim
