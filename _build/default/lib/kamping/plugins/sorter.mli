(** STL-like distributed sorter plugin (paper §IV-A, Fig. 7): textbook
    sample sort.

    After {!sort}, data is globally sorted across ranks: every element on
    rank i precedes every element on rank i+1; local sizes may differ
    (splitter balance). *)

open Mpisim

val default_oversampling : int

(** Collective.  Deterministic in [seed]; [compare] defaults to
    polymorphic comparison. *)
val sort :
  Kamping.Communicator.t ->
  'a Datatype.t ->
  ?compare:('a -> 'a -> int) ->
  ?oversampling:int ->
  ?seed:int ->
  'a array ->
  'a array

(** Collective check of the global sortedness invariant; all ranks get the
    same verdict. *)
val is_globally_sorted :
  Kamping.Communicator.t ->
  'a Datatype.t ->
  ?compare:('a -> 'a -> int) ->
  'a array ->
  bool
