(** Reproducible reduction (paper §V-C, Fig. 13).

    Fixes the floating-point reduction order by reducing over a binary
    tree whose leaves are global element indices — independent of the
    processor count and the block distribution, so results are
    bit-identical for every p.  Only O(log n) partial values travel per
    rank: faster than gathering everything to the root. *)

(** Reproducible global reduction under an arbitrary associative [op]
    (constant, named function, or lambda — the operation flexibility the
    paper's reduce offers).  Collective; every rank gets the result.
    Returns 0. for an empty global array. *)
val reduce : Kamping.Communicator.t -> op:(float -> float -> float) -> float array -> float

(** Reproducible global sum of a block-distributed float array. *)
val sum : Kamping.Communicator.t -> float array -> float

(** Baseline: gather all elements to the root, reduce sequentially,
    broadcast.  Also reproducible, but ships n/p elements per rank. *)
val naive_gather_sum : Kamping.Communicator.t -> float array -> float

(** Baseline: ordinary allreduce — fast but NOT reproducible across
    processor counts. *)
val plain_allreduce_sum : Kamping.Communicator.t -> float array -> float
