(* Two-dimensional grid all-to-all (Kalé et al. [34]) — the
   GridCommunicator plugin of paper §V-A.

   Processors are arranged in a virtual (rows x cols) grid.  A message from
   r to d travels two hops:

     r --(phase 1: within r's row, to the member in d's column)-->
       intermediate --(phase 2: within d's column)--> d

   Each phase is an alltoallv on a subcommunicator of size O(sqrt p), so a
   rank pays O(sqrt p) message startups and O(sqrt p) count-scan work per
   phase instead of O(p) — the hardware-agnostic latency reduction with
   asymptotic guarantees the paper highlights.  The price is volume: each
   element carries a destination header through phase 1.

   Grid shape: we require full rows (p = rows * cols), choosing cols as
   the largest divisor of p not exceeding ceil(sqrt p) — for the powers of
   two used in scaling experiments this gives an exact near-square grid.
   (The reference implementation also handles ragged grids; we document the
   restriction instead.)  For prime p the grid degenerates to 1 x p and the
   exchange reduces to a direct alltoallv.

   Like indirect personalized communication in general, the result does not
   identify original senders; payloads must carry whatever provenance the
   application needs. *)

open Mpisim

type t = {
  comm : Kamping.Communicator.t;
  row_comm : Kamping.Communicator.t;  (* my row: ranks with my row index *)
  col_comm : Kamping.Communicator.t;  (* my column *)
  cols : int;
  rows : int;
}

let best_cols p =
  let limit = int_of_float (ceil (sqrt (float_of_int p))) in
  let rec search c = if c < 1 then 1 else if p mod c = 0 then c else search (c - 1) in
  search limit

(* Collective: builds the row and column subcommunicators. *)
let create (comm : Kamping.Communicator.t) : t =
  let p = Kamping.Communicator.size comm in
  let r = Kamping.Communicator.rank comm in
  let cols = best_cols p in
  let rows = p / cols in
  let row = r / cols in
  let col = r mod cols in
  let row_comm =
    match Kamping.Communicator.split comm ~color:row ~key:col with
    | Some c -> c
    | None -> assert false
  in
  let col_comm =
    match Kamping.Communicator.split comm ~color:(rows + col) ~key:row with
    | Some c -> c
    | None -> assert false
  in
  { comm; row_comm; col_comm; cols; rows }

let size t = Kamping.Communicator.size t.comm

(* Route a personalized exchange through the grid.  [send_counts.(d)] is
   the number of elements for global rank [d]; [data] holds them grouped
   by destination.  Returns all elements addressed to this rank (order:
   grouped by phase-2 sender, not by original sender). *)
let alltoallv (t : t) (dt : 'a Datatype.t) ~(send_counts : int array) (data : 'a array) :
    'a array =
  let p = size t in
  let me = Kamping.Communicator.rank t.comm in
  if Array.length send_counts <> p then
    Errdefs.usage_error "Grid_alltoall.alltoallv: send_counts must have length %d" p;
  Runtime.record (Comm.runtime (Kamping.Communicator.mpi t.comm)) ~op:"grid_alltoallv"
    ~bytes:0;
  Datatype.with_committed (Datatype.pair Datatype.int dt) @@ fun header_dt ->
  let displs = Array.make p 0 in
  for i = 1 to p - 1 do
    displs.(i) <- displs.(i - 1) + send_counts.(i - 1)
  done;
  (* Phase 1: bucket elements by the intermediate in my row that sits in
     the destination's column; attach the final destination. *)
  let row_size = Kamping.Communicator.size t.row_comm in
  let phase1_counts = Array.make row_size 0 in
  for d = 0 to p - 1 do
    let inter_col = d mod t.cols in
    phase1_counts.(inter_col) <- phase1_counts.(inter_col) + send_counts.(d)
  done;
  let total1 = Array.fold_left ( + ) 0 phase1_counts in
  let p1_displs = Array.make row_size 0 in
  for i = 1 to row_size - 1 do
    p1_displs.(i) <- p1_displs.(i - 1) + phase1_counts.(i - 1)
  done;
  let tagged =
    if total1 = 0 then [||] else Array.make total1 (0, Datatype.zero_elem dt)
  in
  let cursor = Array.copy p1_displs in
  for d = 0 to p - 1 do
    let inter_col = d mod t.cols in
    for k = 0 to send_counts.(d) - 1 do
      tagged.(cursor.(inter_col)) <- (d, data.(displs.(d) + k));
      cursor.(inter_col) <- cursor.(inter_col) + 1
    done
  done;
  let relay =
    Kamping.Collectives.alltoallv t.row_comm header_dt ~send_counts:phase1_counts tagged
  in
  (* Phase 2: forward within my column to the destination's row. *)
  let col_size = Kamping.Communicator.size t.col_comm in
  let phase2_counts = Array.make col_size 0 in
  Array.iter
    (fun (d, _) ->
      let dest_row = d / t.cols in
      phase2_counts.(dest_row) <- phase2_counts.(dest_row) + 1)
    relay;
  let p2_displs = Array.make col_size 0 in
  for i = 1 to col_size - 1 do
    p2_displs.(i) <- p2_displs.(i - 1) + phase2_counts.(i - 1)
  done;
  let total2 = Array.length relay in
  let forward =
    if total2 = 0 then [||] else Array.make total2 (0, Datatype.zero_elem dt)
  in
  let cursor2 = Array.copy p2_displs in
  Array.iter
    (fun ((d, _) as entry) ->
      let dest_row = d / t.cols in
      forward.(cursor2.(dest_row)) <- entry;
      cursor2.(dest_row) <- cursor2.(dest_row) + 1)
    relay;
  let arrived =
    Kamping.Collectives.alltoallv t.col_comm header_dt ~send_counts:phase2_counts forward
  in
  Array.map
    (fun (d, v) ->
      if d <> me then
        Errdefs.usage_error "Grid_alltoall: misrouted element (dest %d at rank %d)" d me;
      v)
    arrived
