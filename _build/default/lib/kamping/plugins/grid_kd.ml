(* k-dimensional grid all-to-all — the generalization of the 2-D indirect
   routing that the paper lists as work in progress (§VI: "generalizing
   the indirection patterns for all-to-all primitives to higher
   dimensions, while also incorporating message aggregation").

   Ranks are laid out in a k-dimensional grid with near-equal extents
   d_1 * d_2 * ... * d_k = p.  A message travels k hops, correcting one
   coordinate per dimension; each hop is an alltoallv on a subcommunicator
   of size d_i, so a rank pays O(sum d_i) = O(k * p^(1/k)) message
   startups per exchange instead of O(p).  Every hop aggregates all
   traffic with the same next-hop into a single message (the aggregation
   the paper mentions: with k hops, many final destinations share each
   intermediate).

   The price is header volume (each element carries its final destination)
   and k-fold forwarding of the payload bytes — the classic latency /
   volume trade.  k = 2 recovers the {!Grid_alltoall} plugin's behaviour;
   k = 1 degenerates to a direct dense exchange. *)

open Mpisim

type t = {
  comm : Kamping.Communicator.t;
  dims : int array;  (* extents, product = p *)
  dim_comms : Kamping.Communicator.t array;  (* one per dimension *)
}

(* Factor p into k near-equal extents (exact factorization; extents of 1
   are allowed when p has too few factors). *)
let factorize ~k p =
  let dims = Array.make k 1 in
  let remaining = ref p in
  for i = 0 to k - 1 do
    let dims_left = k - i in
    let target =
      int_of_float (ceil (float_of_int !remaining ** (1. /. float_of_int dims_left)))
    in
    (* Largest divisor of remaining that is <= max target, >= 1. *)
    let rec best c = if c <= 1 then 1 else if !remaining mod c = 0 then c else best (c - 1) in
    let d = best target in
    dims.(i) <- d;
    remaining := !remaining / d
  done;
  (* Fold any leftover into the last dimension. *)
  dims.(k - 1) <- dims.(k - 1) * !remaining;
  dims

let coord_of ~dims r =
  let k = Array.length dims in
  let c = Array.make k 0 in
  let rest = ref r in
  for i = k - 1 downto 0 do
    c.(i) <- !rest mod dims.(i);
    rest := !rest / dims.(i)
  done;
  c

let rank_of ~dims c =
  Array.to_list c |> List.fold_left2 (fun acc d x -> (acc * d) + x) 0 (Array.to_list dims)

let create ?(k = 3) (comm : Kamping.Communicator.t) : t =
  if k < 1 then Errdefs.usage_error "Grid_kd.create: k must be >= 1";
  let p = Kamping.Communicator.size comm in
  let r = Kamping.Communicator.rank comm in
  let dims = factorize ~k p in
  let my_coord = coord_of ~dims r in
  (* Subcommunicator for dimension i: ranks equal in all other coords.
     Color: my coordinates with coord i zeroed, tagged by dimension. *)
  let dim_comms =
    Array.init k (fun i ->
        let color =
          let c = Array.copy my_coord in
          c.(i) <- 0;
          (rank_of ~dims c * k) + i
        in
        match Kamping.Communicator.split comm ~color ~key:my_coord.(i) with
        | Some c -> c
        | None -> assert false)
  in
  { comm; dims; dim_comms }

let size t = Kamping.Communicator.size t.comm

let dims t = Array.copy t.dims

(* Personalized exchange routed through the grid.  Semantics match
   {!Grid_alltoall.alltoallv}: the result holds all elements addressed to
   this rank, without source grouping. *)
let alltoallv (t : t) (dt : 'a Datatype.t) ~(send_counts : int array) (data : 'a array) :
    'a array =
  let p = size t in
  let me = Kamping.Communicator.rank t.comm in
  let k = Array.length t.dims in
  if Array.length send_counts <> p then
    Errdefs.usage_error "Grid_kd.alltoallv: send_counts must have length %d" p;
  Runtime.record (Comm.runtime (Kamping.Communicator.mpi t.comm)) ~op:"grid_kd_alltoallv"
    ~bytes:0;
  Datatype.with_committed (Datatype.pair Datatype.int dt) @@ fun header_dt ->
  (* Start: tag every element with its final destination. *)
  let displs = Array.make p 0 in
  for i = 1 to p - 1 do
    displs.(i) <- displs.(i - 1) + send_counts.(i - 1)
  done;
  let total = Array.fold_left ( + ) 0 send_counts in
  let current = ref (if total = 0 then [||] else Array.make total (0, Datatype.zero_elem dt)) in
  let cursor = ref 0 in
  for d = 0 to p - 1 do
    for j = 0 to send_counts.(d) - 1 do
      !current.(!cursor) <- (d, data.(displs.(d) + j));
      incr cursor
    done
  done;
  (* Hop i: within the dimension-i subcommunicator, forward every element
     to the member whose coordinate i matches the destination's. *)
  for i = 0 to k - 1 do
    let sub = t.dim_comms.(i) in
    let sub_size = Kamping.Communicator.size sub in
    let counts = Array.make sub_size 0 in
    Array.iter
      (fun (d, _) ->
        let dest_coord_i = (coord_of ~dims:t.dims d).(i) in
        counts.(dest_coord_i) <- counts.(dest_coord_i) + 1)
      !current;
    let sub_displs = Array.make sub_size 0 in
    for j = 1 to sub_size - 1 do
      sub_displs.(j) <- sub_displs.(j - 1) + counts.(j - 1)
    done;
    let buf =
      if Array.length !current = 0 then [||]
      else Array.make (Array.length !current) !current.(0)
    in
    let c = Array.copy sub_displs in
    Array.iter
      (fun ((d, _) as entry) ->
        let dest_coord_i = (coord_of ~dims:t.dims d).(i) in
        buf.(c.(dest_coord_i)) <- entry;
        c.(dest_coord_i) <- c.(dest_coord_i) + 1)
      !current;
    current := Kamping.Collectives.alltoallv sub header_dt ~send_counts:counts buf
  done;
  Array.map
    (fun (d, v) ->
      if d <> me then
        Errdefs.usage_error "Grid_kd: misrouted element (dest %d at rank %d)" d me;
      v)
    !current
