(* Distributed containers with bulk-parallel operations — the paper's §VI
   vision of "lightweight bulk parallel computation inspired by MapReduce
   and Thrill, while not locking the programmer into the walled garden of
   a particular framework".

   A ['a t] is a block-distributed array: each rank owns a contiguous
   slice.  Operations are collective and compose:

   - [map], [mapi], [filter] (with rebalancing),
   - [reduce], [fold-style aggregates],
   - [sort] (through the sample-sort plugin, then rebalanced),
   - [reduce_by_key] (hash partitioning + local fold — the MapReduce
     shuffle),
   - [balance] (even redistribution via one alltoallv),
   - [to_global] (allgatherv, for small results).

   Everything is a thin composition of the binding layer's collectives, so
   user code keeps full access to the underlying communicator — no walled
   garden. *)

open Mpisim

type 'a t = {
  comm : Kamping.Communicator.t;
  dt : 'a Datatype.t;
  local : 'a array;
  offset : int;  (* global index of local.(0) *)
  n_global : int;
}

let comm t = t.comm

let local t = t.local

let local_length t = Array.length t.local

let global_length t = t.n_global

let offset t = t.offset

(* Build from per-rank local slices (any sizes); offsets are computed with
   an exscan.  Collective. *)
let of_local (comm : Kamping.Communicator.t) (dt : 'a Datatype.t) (local : 'a array) :
    'a t =
  let n_local = Array.length local in
  let offset =
    Kamping.Collectives.exscan_single_or comm Datatype.int Reduce_op.int_sum ~init:0
      n_local
  in
  let n_global =
    Kamping.Collectives.allreduce_single comm Datatype.int Reduce_op.int_sum n_local
  in
  { comm; dt; local; offset; n_global }

(* Generate a distributed array from a function of the global index, with
   an even block distribution. *)
let init (comm : Kamping.Communicator.t) (dt : 'a Datatype.t) ~(n : int)
    (f : int -> 'a) : 'a t =
  let p = Kamping.Communicator.size comm in
  let r = Kamping.Communicator.rank comm in
  let chunk = (n + p - 1) / p in
  let lo = min n (r * chunk) in
  let hi = min n (lo + chunk) in
  {
    comm;
    dt;
    local = Array.init (hi - lo) (fun j -> f (lo + j));
    offset = lo;
    n_global = n;
  }

let map (f : 'a -> 'b) (dt : 'b Datatype.t) (t : 'a t) : 'b t =
  { comm = t.comm; dt; local = Array.map f t.local; offset = t.offset; n_global = t.n_global }

(* [f] also receives the global index. *)
let mapi (f : int -> 'a -> 'b) (dt : 'b Datatype.t) (t : 'a t) : 'b t =
  {
    comm = t.comm;
    dt;
    local = Array.mapi (fun j x -> f (t.offset + j) x) t.local;
    offset = t.offset;
    n_global = t.n_global;
  }

let reduce (op : 'a Reduce_op.t) ~(init : 'a) (t : 'a t) : 'a =
  let local = Array.fold_left (Reduce_op.apply op) init t.local in
  Kamping.Collectives.allreduce_single t.comm t.dt op local

(* Even redistribution: every rank ends with floor/ceil(n/p) elements, in
   global order.  One alltoallv. *)
let balance (t : 'a t) : 'a t =
  let p = Kamping.Communicator.size t.comm in
  let n = t.n_global in
  let chunk = (n + p - 1) / p in
  let target_lo r = min n (r * chunk) in
  let target_hi r = min n (target_lo r + chunk) in
  (* Which of my elements go to which rank: element with global index g
     belongs to rank g / chunk. *)
  let send_counts = Array.make p 0 in
  Array.iteri
    (fun j _ ->
      let g = t.offset + j in
      send_counts.(min (p - 1) (g / chunk)) <- send_counts.(min (p - 1) (g / chunk)) + 1)
    t.local;
  let received = Kamping.Collectives.alltoallv t.comm t.dt ~send_counts t.local in
  let r = Kamping.Communicator.rank t.comm in
  (* Senders with lower ranks hold lower global indices, so arrival order
     (grouped by source rank) is already global order. *)
  if Array.length received <> target_hi r - target_lo r then
    Errdefs.usage_error "Dist_array.balance: expected %d elements, got %d"
      (target_hi r - target_lo r) (Array.length received);
  { t with local = received; offset = target_lo r }

(* Keep the elements satisfying [pred]; the result is rebalanced. *)
let filter (pred : 'a -> bool) (t : 'a t) : 'a t =
  let kept = Array.of_list (List.filter pred (Array.to_list t.local)) in
  balance (of_local t.comm t.dt kept)

(* Globally sort (ascending by [compare]); the result is rebalanced to an
   even distribution. *)
let sort ?compare:(cmp = Stdlib.compare) (t : 'a t) : 'a t =
  let sorted = Sorter.sort t.comm t.dt ~compare:cmp t.local in
  balance (of_local t.comm t.dt sorted)

(* The MapReduce shuffle: key every element, hash-partition by key, fold
   values with equal keys.  Returns (key, aggregate) pairs distributed by
   key hash.  [combine] must be associative. *)
let reduce_by_key (t : 'a t) ~(key_dt : 'k Datatype.t) ~(value_dt : 'v Datatype.t)
    ~(key_of : 'a -> 'k) ~(value_of : 'a -> 'v) ~(combine : 'v -> 'v -> 'v) :
    ('k * 'v) array =
  let p = Kamping.Communicator.size t.comm in
  let pair_dt = Datatype.pair key_dt value_dt in
  Datatype.with_committed pair_dt @@ fun pair_dt ->
  (* Local pre-aggregation (the combiner optimization). *)
  let local_agg : ('k, 'v) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let k = key_of x and v = value_of x in
      match Hashtbl.find_opt local_agg k with
      | Some v0 -> Hashtbl.replace local_agg k (combine v0 v)
      | None -> Hashtbl.replace local_agg k v)
    t.local;
  (* Hash partition. *)
  let table : (int, ('k * 'v) list) Hashtbl.t = Hashtbl.create p in
  Hashtbl.iter
    (fun k v ->
      let dest = Hashtbl.hash k mod p in
      Hashtbl.replace table dest ((k, v) :: (try Hashtbl.find table dest with Not_found -> [])))
    local_agg;
  let received = Kamping.Flatten.alltoallv t.comm pair_dt table in
  (* Final fold. *)
  let final : ('k, 'v) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (k, v) ->
      match Hashtbl.find_opt final k with
      | Some v0 -> Hashtbl.replace final k (combine v0 v)
      | None -> Hashtbl.replace final k v)
    received;
  let out = Hashtbl.fold (fun k v acc -> (k, v) :: acc) final [] in
  Array.of_list (List.sort compare out)

(* Materialize the whole array on every rank (small data only). *)
let to_global (t : 'a t) : 'a array =
  Kamping.Collectives.allgatherv t.comm t.dt t.local

(* Histogram-style helper: count elements per bucket. *)
let count_by (t : 'a t) ~(bucket_of : 'a -> int) ~(n_buckets : int) : int array =
  let counts = Array.make n_buckets 0 in
  Array.iter
    (fun x ->
      let b = bucket_of x in
      if b < 0 || b >= n_buckets then Errdefs.usage_error "Dist_array.count_by: bad bucket";
      counts.(b) <- counts.(b) + 1)
    t.local;
  Kamping.Collectives.allreduce t.comm Datatype.int Reduce_op.int_sum counts
