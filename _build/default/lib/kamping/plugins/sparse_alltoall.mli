(** Sparse all-to-all via the NBX algorithm (Hoefler et al., PPoPP'10) —
    the SparseAlltoall plugin of paper §V-A.

    Exchanges a dynamic sparse pattern in expected O(#neighbors + log p)
    with no O(p) term: synchronous-mode sends, probe-driven receives, and
    a non-blocking barrier entered once all local sends have been
    matched. *)

open Mpisim

(** [alltoallv comm dt outgoing] sends each (rank, block) and returns the
    incoming (source, block) pairs.  Collective (every rank must call it,
    possibly with an empty list). *)
val alltoallv :
  Kamping.Communicator.t -> 'a Datatype.t -> (int * 'a array) list -> (int * 'a array) list

(** Destination-table convenience (see {!Kamping.Flatten}). *)
val exchange_table :
  Kamping.Communicator.t ->
  'a Datatype.t ->
  (int, 'a list) Hashtbl.t ->
  (int * 'a array) list
