(* Message aggregation for irregular, fine-grained communication — the
   second half of the paper's §VI work-in-progress ("incorporating message
   aggregation ... applicable in request-reply patterns ... and algorithms
   with highly-irregular communication without hard synchronization").

   An aggregator buffers individually-pushed (destination, element) pairs
   and ships them in batches: a flush is triggered explicitly or when the
   buffered volume reaches [flush_threshold].  Exchanges use the sparse
   NBX all-to-all, so a flush costs O(#destinations-with-data), not O(p).

   The receiver side drains whole batches; elements arrive in push order
   per (sender, destination) pair. *)

open Mpisim

type 'a t = {
  comm : Kamping.Communicator.t;
  dt : 'a Datatype.t;
  flush_threshold : int;  (* max buffered elements before auto-flush *)
  buffers : (int, 'a list ref) Hashtbl.t;  (* dest -> reversed pending *)
  mutable buffered : int;
  mutable received : (int * 'a array) list;  (* drained but undelivered *)
  mutable flushes : int;
}

let create ?(flush_threshold = 4096) (comm : Kamping.Communicator.t) (dt : 'a Datatype.t)
    : 'a t =
  if flush_threshold < 1 then
    Errdefs.usage_error "Aggregator.create: flush_threshold must be positive";
  {
    comm;
    dt;
    flush_threshold;
    buffers = Hashtbl.create 16;
    buffered = 0;
    received = [];
    flushes = 0;
  }

let buffered_count t = t.buffered

let flush_count t = t.flushes

(* Exchange all buffered elements.  COLLECTIVE: every rank of the
   communicator must flush together (the sparse exchange needs global
   participation to terminate). *)
let flush (t : 'a t) : unit =
  let outgoing =
    Hashtbl.fold
      (fun dest buf acc -> (dest, Array.of_list (List.rev !buf)) :: acc)
      t.buffers []
  in
  Hashtbl.reset t.buffers;
  t.buffered <- 0;
  t.flushes <- t.flushes + 1;
  let incoming = Sparse_alltoall.alltoallv t.comm t.dt outgoing in
  t.received <- t.received @ incoming

(* Queue one element for [dest]; auto-flushes when the buffer is full.
   NOTE: auto-flush is collective — with a finite threshold, push only in
   phases where all ranks flush in lockstep, or use [push_local] +
   explicit [flush]. *)
let push (t : 'a t) ~dest (x : 'a) : unit =
  Kamping.Communicator.(if dest < 0 || dest >= size t.comm then
                          Errdefs.usage_error "Aggregator.push: invalid destination %d" dest);
  let buf =
    match Hashtbl.find_opt t.buffers dest with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.replace t.buffers dest b;
        b
  in
  buf := x :: !buf;
  t.buffered <- t.buffered + 1;
  if t.buffered >= t.flush_threshold then flush t

(* Non-flushing push, for SPMD phases with an explicit collective flush. *)
let push_local (t : 'a t) ~dest (x : 'a) : unit =
  let buf =
    match Hashtbl.find_opt t.buffers dest with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.replace t.buffers dest b;
        b
  in
  buf := x :: !buf;
  t.buffered <- t.buffered + 1

(* Take everything received so far: (source, batch) pairs in arrival
   order. *)
let drain (t : 'a t) : (int * 'a array) list =
  let r = t.received in
  t.received <- [];
  r

let drain_elements (t : 'a t) : 'a array =
  Array.concat (List.map snd (drain t))
