(** Message aggregation for fine-grained irregular communication (the
    other half of paper §VI's work in progress).

    Individually pushed (destination, element) pairs are buffered and
    shipped in batches over the NBX sparse all-to-all, so a flush costs
    O(#destinations-with-data), not O(p). *)

open Mpisim

type 'a t

val create :
  ?flush_threshold:int -> Kamping.Communicator.t -> 'a Datatype.t -> 'a t

val buffered_count : 'a t -> int

val flush_count : 'a t -> int

(** Exchange all buffered elements.  COLLECTIVE: every rank must flush
    together. *)
val flush : 'a t -> unit

(** Queue one element; auto-flushes (collectively!) at the threshold —
    only use in lockstep phases, otherwise prefer {!push_local} +
    explicit {!flush}. *)
val push : 'a t -> dest:int -> 'a -> unit

(** Non-flushing push. *)
val push_local : 'a t -> dest:int -> 'a -> unit

(** Take everything received so far: (source, batch) pairs in arrival
    order. *)
val drain : 'a t -> (int * 'a array) list

val drain_elements : 'a t -> 'a array
