(* STL-like distributed sorter plugin (paper §IV-A, Fig. 7): textbook
   sample sort [24].

   1. each rank draws 16 * log2(p) + 1 local samples;
   2. samples are allgathered and sorted; p-1 splitters are picked;
   3. local data is partitioned into p buckets by splitter binary search;
   4. one alltoallv redistributes the buckets;
   5. a local sort finishes.

   The output is globally sorted across ranks: every element on rank i
   precedes every element on rank i+1. *)

open Mpisim

let default_oversampling = 16

(* Index of the first bucket whose range contains [x]: the number of
   splitters strictly smaller than... we use upper-bound semantics so equal
   keys all land in the same bucket. *)
let bucket_of ~compare (splitters : 'a array) (x : 'a) : int =
  let lo = ref 0 and hi = ref (Array.length splitters) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare splitters.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let sort (comm : Kamping.Communicator.t) (dt : 'a Datatype.t)
    ?(compare : 'a -> 'a -> int = Stdlib.compare) ?(oversampling = default_oversampling)
    ?(seed = 0x5EED) (data : 'a array) : 'a array =
  let p = Kamping.Communicator.size comm in
  let r = Kamping.Communicator.rank comm in
  if p = 1 then begin
    let out = Array.copy data in
    Array.sort compare out;
    out
  end
  else begin
    let rng = Xoshiro.create ~seed ~stream:r in
    let num_samples =
      (oversampling * int_of_float (ceil (log (float_of_int p) /. log 2.))) + 1
    in
    let local_samples =
      if Array.length data = 0 then [||]
      else
        Array.init num_samples (fun _ ->
            data.(Xoshiro.next_int rng ~bound:(Array.length data)))
    in
    let global_samples = Kamping.Collectives.allgatherv comm dt local_samples in
    Array.sort compare global_samples;
    (* p-1 equidistant splitters. *)
    let m = Array.length global_samples in
    let splitters =
      if m = 0 then [||]
      else Array.init (p - 1) (fun i -> global_samples.(min (m - 1) ((i + 1) * m / p)))
    in
    (* Partition into buckets. *)
    let send_counts = Array.make p 0 in
    Array.iter
      (fun x ->
        let b = bucket_of ~compare splitters x in
        send_counts.(b) <- send_counts.(b) + 1)
      data;
    let displs = Array.make p 0 in
    for i = 1 to p - 1 do
      displs.(i) <- displs.(i - 1) + send_counts.(i - 1)
    done;
    let grouped =
      if Array.length data = 0 then [||]
      else begin
        let out = Array.make (Array.length data) data.(0) in
        let cursor = Array.copy displs in
        Array.iter
          (fun x ->
            let b = bucket_of ~compare splitters x in
            out.(cursor.(b)) <- x;
            cursor.(b) <- cursor.(b) + 1)
          data;
        out
      end
    in
    let received = Kamping.Collectives.alltoallv comm dt ~send_counts grouped in
    Array.sort compare received;
    received
  end

(* Check the global sortedness invariant: local arrays sorted and rank
   boundaries ordered.  Collective; returns the same verdict on all ranks.
   Used by tests and by the strong debug mode of applications. *)
let is_globally_sorted (comm : Kamping.Communicator.t) (dt : 'a Datatype.t)
    ?(compare : 'a -> 'a -> int = Stdlib.compare) (data : 'a array) : bool =
  let locally_sorted = ref true in
  for i = 0 to Array.length data - 2 do
    if compare data.(i) data.(i + 1) > 0 then locally_sorted := false
  done;
  (* Compare boundary elements of adjacent non-empty ranks: allgather
     (first, last, non-empty) triples. *)
  let firsts =
    Kamping.Collectives.allgatherv comm dt
      (if Array.length data = 0 then [||] else [| data.(0) |])
  in
  let lasts =
    Kamping.Collectives.allgatherv comm dt
      (if Array.length data = 0 then [||] else [| data.(Array.length data - 1) |])
  in
  let boundaries_ok = ref true in
  for i = 0 to Array.length lasts - 2 do
    if compare lasts.(i) firsts.(i + 1) > 0 then boundaries_ok := false
  done;
  Kamping.Collectives.allreduce_single comm Datatype.bool Reduce_op.bool_and
    (!locally_sorted && !boundaries_ok)
