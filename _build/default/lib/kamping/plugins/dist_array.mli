(** Distributed containers with bulk-parallel operations — paper §VI's
    MapReduce/Thrill-inspired building blocks, built directly on the
    binding layer (the communicator stays accessible: no walled garden).

    A ['a t] is a block-distributed array; each rank owns a contiguous
    slice and lower ranks hold lower global indices.  All operations are
    collective. *)

open Mpisim

type 'a t

val comm : 'a t -> Kamping.Communicator.t

val local : 'a t -> 'a array

val local_length : 'a t -> int

val global_length : 'a t -> int

(** Global index of the first local element. *)
val offset : 'a t -> int

(** Build from per-rank slices of any sizes (offsets via exscan). *)
val of_local : Kamping.Communicator.t -> 'a Datatype.t -> 'a array -> 'a t

(** Generate from a function of the global index, evenly distributed. *)
val init : Kamping.Communicator.t -> 'a Datatype.t -> n:int -> (int -> 'a) -> 'a t

val map : ('a -> 'b) -> 'b Datatype.t -> 'a t -> 'b t

(** [f] also receives the global index. *)
val mapi : (int -> 'a -> 'b) -> 'b Datatype.t -> 'a t -> 'b t

val reduce : 'a Reduce_op.t -> init:'a -> 'a t -> 'a

(** Even redistribution (one alltoallv), preserving global order. *)
val balance : 'a t -> 'a t

(** Keep elements satisfying the predicate; rebalanced. *)
val filter : ('a -> bool) -> 'a t -> 'a t

(** Global sort (sample sort), rebalanced. *)
val sort : ?compare:('a -> 'a -> int) -> 'a t -> 'a t

(** The MapReduce shuffle: key every element, hash-partition by key, fold
    equal keys with the associative [combine]; results are distributed by
    key hash, sorted within each rank. *)
val reduce_by_key :
  'a t ->
  key_dt:'k Datatype.t ->
  value_dt:'v Datatype.t ->
  key_of:('a -> 'k) ->
  value_of:('a -> 'v) ->
  combine:('v -> 'v -> 'v) ->
  ('k * 'v) array

(** Materialize everywhere (small data only). *)
val to_global : 'a t -> 'a array

(** Global bucket counts. *)
val count_by : 'a t -> bucket_of:('a -> int) -> n_buckets:int -> int array
