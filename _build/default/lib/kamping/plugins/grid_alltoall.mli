(** Two-dimensional grid all-to-all (Kalé et al.) — the GridCommunicator
    plugin of paper §V-A.

    Messages travel two hops through a virtual (rows x cols) grid, each
    hop an alltoallv on a subcommunicator of size O(sqrt p): a rank pays
    O(sqrt p) message startups per exchange instead of O(p), trading
    header volume for latency.

    The grid requires full rows (cols = largest divisor of p not above
    ceil(sqrt p)); for powers of two this is exact and near-square.  For
    prime p the exchange degenerates to a direct alltoallv. *)

open Mpisim

type t

(** Collective: builds the row and column subcommunicators once; reuse
    the handle across exchanges. *)
val create : Kamping.Communicator.t -> t

val size : t -> int

(** [alltoallv t dt ~send_counts data] routes a personalized exchange
    through the grid; [send_counts.(d)] elements go to global rank [d].
    The result holds every element addressed to this rank, grouped by the
    phase-2 sender rather than the original source — payloads must carry
    any provenance the application needs.  Collective. *)
val alltoallv : t -> 'a Datatype.t -> send_counts:int array -> 'a array -> 'a array
