(** The with_flattened utility (paper §IV-B, Fig. 9).

    Irregular algorithms naturally produce destination -> message-buffer
    mappings; dense exchanges want one contiguous buffer plus per-rank
    counts.  {!flatten} converts; {!alltoallv} composes the conversion
    with the exchange so a frontier exchange is a one-liner. *)

open Mpisim

(** [flatten ~size table] is (data grouped by destination rank, send
    counts).  Within a destination, elements keep their list order. *)
val flatten : size:int -> (int, 'a list) Hashtbl.t -> 'a array * int array

(** Same, for (destination, block) pairs. *)
val flatten_blocks : size:int -> (int * 'a array) list -> 'a array * int array

(** Flatten and exchange in one call. *)
val alltoallv : Communicator.t -> 'a Datatype.t -> (int, 'a list) Hashtbl.t -> 'a array
